package optimize

import (
	"math"

	"repro/internal/table"
)

// TrajectoryFigure renders a finished search as a figure: the
// goal-natural objective of every evaluated point against its step
// index, plus the running best — the visual answer to "was the search
// converging or flailing?". Infeasible and invalid steps leave gaps in
// the objective series (they have no objective) but still advance the
// x axis, so search effort reads directly off the plot.
func TrajectoryFigure(spec Spec, res *Result) *table.Figure {
	spec = spec.withDefaults()
	fig := &table.Figure{
		ID:     "optimize",
		Title:  "search trajectory (" + spec.Algorithm.String() + ", " + spec.Objective.Goal.String() + ")",
		XLabel: "evaluation step",
		YLabel: objectiveLabel(spec.Objective.Goal),
	}
	visited := fig.AddSeries("objective")
	running := fig.AddSeries("best so far")
	maximize := spec.Objective.Goal == MaxOverlap
	best := math.Inf(1)
	if maximize {
		best = math.Inf(-1)
	}
	for _, e := range res.Trace {
		if e.Status != StatusOK {
			continue
		}
		visited.Point(float64(e.Step), e.Objective)
		if maximize {
			best = math.Max(best, e.Objective)
		} else {
			best = math.Min(best, e.Objective)
		}
		running.Point(float64(e.Step), best)
	}
	return fig
}

func objectiveLabel(g Goal) string {
	switch g {
	case MaxOverlap:
		return "mean busy disks"
	case MinCostPerBlock:
		return "cost per sorted block"
	default:
		return "total merge time (s)"
	}
}
