package optimize

import (
	"math"
	"sort"
)

// nearOptimalTolerance is the fallback knee rule: when the cost–
// objective frontier is too small for the kneedle construction, the
// knee is the cheapest point within 5% of the optimum.
const nearOptimalTolerance = 0.05

// entryScore recovers the internal minimized score from a trace entry.
func entryScore(e TraceEntry, goal Goal) float64 {
	if goal == MaxOverlap {
		return -e.Objective
	}
	return e.Objective
}

// kneePoint finds the cheapest near-optimal point: the knee of the
// cost-rate vs objective Pareto frontier, kneedle-style (the frontier
// point farthest below the chord from its cheapest to its best end, in
// normalized coordinates). It returns the knee's trace index, or -1
// when no feasible point exists. bestIdx is the strict optimum's trace
// index; the knee never costs more than the optimum.
func kneePoint(trace []TraceEntry, goal Goal, bestIdx int) int {
	// Unique feasible points, first visit wins (revisits carry the
	// same values, so which one represents the point is cosmetic —
	// first keeps the trace reference stable).
	seen := make(map[string]bool)
	var idxs []int
	for i, e := range trace {
		if e.Status != StatusOK || seen[e.Hash] {
			continue
		}
		seen[e.Hash] = true
		idxs = append(idxs, i)
	}
	if len(idxs) == 0 {
		return -1
	}
	bestScore := entryScore(trace[bestIdx], goal)

	// Sort by cost, then score, then trace order for full determinism.
	sort.Slice(idxs, func(a, b int) bool {
		ea, eb := trace[idxs[a]], trace[idxs[b]]
		//detlint:allow floatcmp deterministic sort tie-break on values copied verbatim from the trace, not a tolerance decision
		if ea.CostRate != eb.CostRate {
			return ea.CostRate < eb.CostRate
		}
		sa, sb := entryScore(ea, goal), entryScore(eb, goal)
		//detlint:allow floatcmp deterministic sort tie-break on values copied verbatim from the trace, not a tolerance decision
		if sa != sb {
			return sa < sb
		}
		return idxs[a] < idxs[b]
	})

	// Lower-left Pareto staircase: keep points that strictly improve
	// the objective as cost rises.
	var frontier []int
	minScore := math.Inf(1)
	for _, i := range idxs {
		if s := entryScore(trace[i], goal); s < minScore {
			frontier = append(frontier, i)
			minScore = s
		}
	}

	// Degenerate frontiers: pick the cheapest point near the optimum.
	cheapestNear := func() int {
		tol := nearOptimalTolerance * math.Abs(bestScore)
		for _, i := range frontier {
			if entryScore(trace[i], goal) <= bestScore+tol {
				return i
			}
		}
		return bestIdx
	}
	if len(frontier) < 3 {
		return cheapestNear()
	}

	// Kneedle: normalize the frontier to the unit square and take the
	// point with the greatest drop below the first→last chord.
	first, last := trace[frontier[0]], trace[frontier[len(frontier)-1]]
	dx := last.CostRate - first.CostRate
	dy := entryScore(last, goal) - entryScore(first, goal) // negative: score falls as cost rises
	//detlint:allow floatcmp degenerate-chord guard: a zero-width axis cannot be normalized, exact equality detects it
	if dx == 0 || dy == 0 {
		return cheapestNear()
	}
	knee, maxGain := -1, 0.0
	for _, i := range frontier {
		x := (trace[i].CostRate - first.CostRate) / dx
		y := (entryScore(trace[i], goal) - entryScore(first, goal)) / dy
		// y is the fraction of the total improvement already realized
		// at normalized cost x; the chord is y = x. The knee is the
		// point with the most improvement ahead of its cost — the
		// greatest rise above the chord.
		if gain := y - x; gain > maxGain {
			knee, maxGain = i, gain
		}
	}
	if knee < 0 {
		return cheapestNear()
	}
	return knee
}
