// Package optimize inverts the simulator: instead of "what does merge
// time look like on this grid of configurations?" it answers "which
// configuration should I run?". A Spec names a template core.Config, a
// search Space (candidate values for N, C, D, K, prefetch strategy and
// placement), an Objective (minimize merge time, maximize disk overlap,
// or minimize resource cost per sorted block), optional Constraints,
// and a search driver (exhaustive grid, coordinate descent, or seeded
// simulated annealing). Run walks the space through an Evaluator —
// typically internal/service's result-cached, singleflighted engine
// front-end — and returns the optimum, a kneedle-style knee (the
// cheapest near-optimal point), and the full evaluation trace.
//
// Determinism contract: the search itself is sequential and every
// random draw comes from an internal/rng stream seeded by Spec.Seed, so
// the same seed and spec produce a byte-identical trace and identical
// optimum regardless of how many workers the underlying engine fans
// each evaluation over. The only fields that may differ between two
// runs of the same spec are the Cached flags, which report where each
// evaluation's answer came from, never what it was.
package optimize

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/layout"
)

// Algorithm selects the search driver.
type Algorithm int

const (
	// Grid enumerates the full cross product of the space in a fixed
	// lexicographic order (strategy, placement, K, D, N, cache), subject
	// to the evaluation budget.
	Grid Algorithm = iota
	// Coordinate starts from the middle of every dimension and sweeps
	// one dimension at a time, moving to the best value found, until a
	// full pass over all dimensions improves nothing.
	Coordinate
	// Anneal is simulated annealing: a random neighbor walk (one
	// dimension step at a time) accepting uphill moves with probability
	// exp(-Δ/T) under a geometric cooling schedule, driven entirely by
	// an rng stream seeded from Spec.Seed.
	Anneal
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Grid:
		return "grid"
	case Coordinate:
		return "coordinate"
	case Anneal:
		return "anneal"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm maps a driver name to its Algorithm ("" = grid).
func ParseAlgorithm(name string) (Algorithm, error) {
	switch name {
	case "", "grid":
		return Grid, nil
	case "coordinate":
		return Coordinate, nil
	case "anneal":
		return Anneal, nil
	default:
		return 0, fmt.Errorf("optimize: unknown algorithm %q (want grid, coordinate or anneal)", name)
	}
}

// Strategy is one prefetch-strategy setting: whether non-demand disks
// prefetch too (inter-run) and whether the CPU waits for the whole
// batch (synchronized). Intra-run depth is the separate N dimension.
type Strategy struct {
	InterRun     bool
	Synchronized bool
}

// String names the strategy the way the wire forms spell it.
func (s Strategy) String() string {
	base := "intra"
	if s.InterRun {
		base = "inter"
	}
	if s.Synchronized {
		return base + "-sync"
	}
	return base + "-unsync"
}

// ParseStrategy inverts String.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "intra-unsync":
		return Strategy{}, nil
	case "intra-sync":
		return Strategy{Synchronized: true}, nil
	case "inter-unsync":
		return Strategy{InterRun: true}, nil
	case "inter-sync":
		return Strategy{InterRun: true, Synchronized: true}, nil
	default:
		return Strategy{}, fmt.Errorf("optimize: unknown strategy %q (want intra-unsync, intra-sync, inter-unsync or inter-sync)", name)
	}
}

// Dimension is an ordered list of candidate values for one integer
// knob. An empty dimension pins the knob at the template's value.
type Dimension struct {
	Values []int
}

// Range returns the dimension {min, min+step, ..., ≤ max}.
func Range(min, max, step int) Dimension {
	if step <= 0 {
		step = 1
	}
	var vs []int
	for v := min; v <= max; v += step {
		vs = append(vs, v)
	}
	return Dimension{Values: vs}
}

// Cache-dimension sentinels. NaturalCache resolves to the candidate's
// own Config.DefaultCache() (kN, plus DN headroom under inter-run), so
// a space sweeping N can still ask for "the natural cache at each N".
// UnlimitedCache is the ample-cache model.
const (
	NaturalCache   = 0
	UnlimitedCache = -1
)

// Space is the search region: candidate values per knob. Empty
// dimensions are pinned at the template configuration's value, so the
// zero Space searches nothing and Spec.Validate rejects it.
type Space struct {
	K           Dimension
	D           Dimension
	N           Dimension
	CacheBlocks Dimension // values, or NaturalCache / UnlimitedCache sentinels
	Strategies  []Strategy
	Placements  []layout.Placement
}

// Goal selects what the search minimizes (or maximizes).
type Goal int

const (
	// MinTime minimizes mean total merge seconds.
	MinTime Goal = iota
	// MaxOverlap maximizes the paper's overlap metric: the mean number
	// of busy disks while any disk is busy.
	MaxOverlap
	// MinCostPerBlock minimizes (BaseCost + DiskCost·D +
	// RAMCostPerBlock·C) · seconds / merged blocks — resource-seconds
	// per sorted block, the capacity-planning objective. Under an
	// unlimited cache C is the observed peak occupancy.
	MinCostPerBlock
)

// String implements fmt.Stringer.
func (g Goal) String() string {
	switch g {
	case MinTime:
		return "min_time"
	case MaxOverlap:
		return "max_overlap"
	case MinCostPerBlock:
		return "min_cost_per_block"
	default:
		return fmt.Sprintf("Goal(%d)", int(g))
	}
}

// ParseGoal maps a goal name to its Goal ("" = min_time).
func ParseGoal(name string) (Goal, error) {
	switch name {
	case "", "min_time":
		return MinTime, nil
	case "max_overlap":
		return MaxOverlap, nil
	case "min_cost_per_block":
		return MinCostPerBlock, nil
	default:
		return 0, fmt.Errorf("optimize: unknown goal %q (want min_time, max_overlap or min_cost_per_block)", name)
	}
}

// Objective is the quantity the search optimizes. The cost weights
// also price the knee detector's x axis regardless of goal, so they
// default to something sensible (one unit per disk, 0.01 per cache
// block) instead of zero.
type Objective struct {
	Goal            Goal
	DiskCost        float64 // per input disk (default 1)
	RAMCostPerBlock float64 // per cache block (default 0.01)
	BaseCost        float64 // fixed (default 0)
}

func (o Objective) withDefaults() Objective {
	if o.DiskCost == 0 {
		o.DiskCost = 1
	}
	if o.RAMCostPerBlock == 0 {
		o.RAMCostPerBlock = 0.01
	}
	return o
}

// Constraints bound which points are feasible. A violating point stays
// in the trace (status "infeasible") but can never be the optimum.
type Constraints struct {
	MaxSeconds float64 // mean total seconds ≤ this (0 = unconstrained)
	MinSuccess float64 // mean success ratio ≥ this (0 = unconstrained)
}

// TrialPolicy is the adaptive replication rule: evaluate at Min trials
// and double toward Max until the 95% CI of mean total time is within
// RelCI95 of itself. RelCI95 = 0 fixes the count at Min. Because one
// trial has no confidence interval, RelCI95 > 0 raises the effective
// minimum to 2.
type TrialPolicy struct {
	Min, Max int
	RelCI95  float64
}

// AnnealParams tune the annealing driver. Temp is the initial relative
// temperature (uphill moves of Δ = Temp·|current| are accepted with
// probability 1/e; default 0.2); Cooling is the geometric per-step
// factor (default 0.98). Steps is the proposal budget: the walk stops
// normally after this many proposals, so Truncated stays the
// abnormal-stop signal it is for the other drivers instead of firing
// on every completed anneal. It defaults to MaxEvaluations−1 — the
// initial midpoint evaluation plus one evaluation per proposal then
// exactly fits the evaluation budget.
type AnnealParams struct {
	Temp    float64
	Cooling float64
	Steps   int
}

// Spec is one complete search problem.
type Spec struct {
	// Template is the validated base configuration; dimensions absent
	// from the Space keep its values.
	Template core.Config
	Space    Space

	Objective   Objective
	Constraints Constraints

	Algorithm Algorithm
	// Seed drives every random draw of the search (only Anneal draws
	// any). 0 means 1.
	Seed uint64
	// MaxEvaluations bounds engine evaluations (default 256). It also
	// caps total visited candidates — invalid ones included, which cost
	// no evaluation — at visitFactor times itself, so a space whose
	// cross product is mostly (or entirely) unrunnable cannot enumerate
	// and grow the trace until the context expires. A search stopped by
	// either budget reports Truncated.
	MaxEvaluations int

	Trials TrialPolicy
	Anneal AnnealParams
}

// maxDimensionValues bounds one dimension so a request cannot smuggle
// in an effectively unbounded enumeration.
const maxDimensionValues = 512

func (s Spec) withDefaults() Spec {
	s.Objective = s.Objective.withDefaults()
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.MaxEvaluations <= 0 {
		s.MaxEvaluations = 256
	}
	if s.Trials.Min <= 0 {
		s.Trials.Min = 1
	}
	if s.Trials.RelCI95 > 0 && s.Trials.Min < 2 {
		s.Trials.Min = 2
	}
	if s.Trials.Max < s.Trials.Min {
		s.Trials.Max = s.Trials.Min
	}
	if s.Anneal.Temp <= 0 {
		s.Anneal.Temp = 0.2
	}
	if s.Anneal.Cooling <= 0 || s.Anneal.Cooling >= 1 {
		s.Anneal.Cooling = 0.98
	}
	if s.Anneal.Steps <= 0 {
		s.Anneal.Steps = s.MaxEvaluations - 1
		if s.Anneal.Steps < 1 {
			s.Anneal.Steps = 1
		}
	}
	return s
}

// Validate reports the first spec error, or nil. Call on the raw spec;
// Run applies defaults itself.
func (s Spec) Validate() error {
	if err := s.Template.Validate(); err != nil {
		return fmt.Errorf("optimize: template: %w", err)
	}
	if s.Template.RunLengths != nil && (len(s.Space.K.Values) > 0 || len(s.Space.N.Values) > 0) {
		return fmt.Errorf("optimize: a template with explicit run lengths cannot search over K or N")
	}
	dims := 0
	for _, d := range []struct {
		name string
		dim  Dimension
	}{{"k", s.Space.K}, {"d", s.Space.D}, {"n", s.Space.N}, {"cache_blocks", s.Space.CacheBlocks}} {
		if len(d.dim.Values) == 0 {
			continue
		}
		dims++
		if len(d.dim.Values) > maxDimensionValues {
			return fmt.Errorf("optimize: dimension %s has %d values (limit %d)", d.name, len(d.dim.Values), maxDimensionValues)
		}
		for _, v := range d.dim.Values {
			if d.name == "cache_blocks" {
				if v < UnlimitedCache {
					return fmt.Errorf("optimize: cache_blocks value %d (want %d = unlimited, %d = natural, or a positive size)", v, UnlimitedCache, NaturalCache)
				}
			} else if v <= 0 {
				return fmt.Errorf("optimize: dimension %s value %d must be positive", d.name, v)
			}
		}
	}
	if len(s.Space.Strategies) > 0 {
		dims++
	}
	if len(s.Space.Placements) > 0 {
		dims++
	}
	if dims == 0 {
		return fmt.Errorf("optimize: search space is empty (every dimension is pinned at the template)")
	}
	if s.Trials.Min < 0 || s.Trials.Max < 0 || s.Trials.RelCI95 < 0 {
		return fmt.Errorf("optimize: negative trial policy")
	}
	if s.Trials.Max > 0 && s.Trials.Max < s.Trials.Min {
		return fmt.Errorf("optimize: trials max %d < min %d", s.Trials.Max, s.Trials.Min)
	}
	if s.Constraints.MaxSeconds < 0 || s.Constraints.MinSuccess < 0 || s.Constraints.MinSuccess > 1 {
		return fmt.Errorf("optimize: constraints out of range")
	}
	if s.Anneal.Temp < 0 {
		return fmt.Errorf("optimize: anneal temp %g (want > 0, or 0 for the default)", s.Anneal.Temp)
	}
	if s.Anneal.Cooling < 0 || s.Anneal.Cooling >= 1 {
		return fmt.Errorf("optimize: anneal cooling %g (want 0 < cooling < 1, or 0 for the default)", s.Anneal.Cooling)
	}
	if s.Anneal.Steps < 0 {
		return fmt.Errorf("optimize: anneal steps %d (want > 0, or 0 for the default)", s.Anneal.Steps)
	}
	if s.MaxEvaluations < 0 {
		return fmt.Errorf("optimize: max evaluations %d", s.MaxEvaluations)
	}
	return nil
}

// dimension indices into a point, in the fixed enumeration order.
const (
	dimStrategy = iota
	dimPlacement
	dimK
	dimD
	dimN
	dimCache
	numDims
)

// point is one candidate: an index into each dimension's value list.
type point [numDims]int

// space is the normalized search region: every dimension concrete,
// pinned dimensions holding exactly the template's value.
type space struct {
	strategies []Strategy
	placements []layout.Placement
	k, d, n, c []int
}

func newSpace(s Spec) *space {
	sp := &space{
		strategies: s.Space.Strategies,
		placements: s.Space.Placements,
		k:          s.Space.K.Values,
		d:          s.Space.D.Values,
		n:          s.Space.N.Values,
		c:          s.Space.CacheBlocks.Values,
	}
	t := s.Template
	if len(sp.strategies) == 0 {
		sp.strategies = []Strategy{{InterRun: t.InterRun, Synchronized: t.Synchronized}}
	}
	if len(sp.placements) == 0 {
		sp.placements = []layout.Placement{t.Placement}
	}
	if len(sp.k) == 0 {
		sp.k = []int{t.K}
	}
	if len(sp.d) == 0 {
		sp.d = []int{t.D}
	}
	if len(sp.n) == 0 {
		sp.n = []int{t.N}
	}
	if len(sp.c) == 0 {
		cb := t.CacheBlocks
		if cb == cache.Unlimited {
			cb = UnlimitedCache
		}
		sp.c = []int{cb}
	}
	return sp
}

// size returns the number of values in dimension i.
func (sp *space) size(i int) int {
	switch i {
	case dimStrategy:
		return len(sp.strategies)
	case dimPlacement:
		return len(sp.placements)
	case dimK:
		return len(sp.k)
	case dimD:
		return len(sp.d)
	case dimN:
		return len(sp.n)
	default:
		return len(sp.c)
	}
}

// points returns the cross-product size, saturating at math.MaxInt.
func (sp *space) points() int {
	total := 1
	for i := 0; i < numDims; i++ {
		n := sp.size(i)
		if total > math.MaxInt/n {
			return math.MaxInt
		}
		total *= n
	}
	return total
}

// mid returns the deterministic start point: the middle of every
// dimension (coordinate descent and annealing start here).
func (sp *space) mid() point {
	var p point
	for i := 0; i < numDims; i++ {
		p[i] = sp.size(i) / 2
	}
	return p
}

// Params is the human-readable identity of one candidate: the knob
// values the point sets on the template. CacheBlocks is the resolved
// capacity in blocks (-1 for unlimited).
type Params struct {
	K            int    `json:"k"`
	D            int    `json:"d"`
	N            int    `json:"n"`
	CacheBlocks  int    `json:"cache_blocks"`
	InterRun     bool   `json:"inter_run"`
	Synchronized bool   `json:"synchronized"`
	Placement    string `json:"placement"`
}

// Strategy returns the point's strategy setting.
func (p Params) Strategy() Strategy {
	return Strategy{InterRun: p.InterRun, Synchronized: p.Synchronized}
}

// materialize applies the point to a copy of the template and validates
// it. The returned Params carry the resolved cache size so cost and
// knee math never see the sentinels.
func (sp *space) materialize(tmpl core.Config, p point) (core.Config, Params, error) {
	cfg := tmpl
	st := sp.strategies[p[dimStrategy]]
	cfg.InterRun, cfg.Synchronized = st.InterRun, st.Synchronized
	cfg.Placement = sp.placements[p[dimPlacement]]
	cfg.K = sp.k[p[dimK]]
	cfg.D = sp.d[p[dimD]]
	cfg.N = sp.n[p[dimN]]

	resolved := sp.c[p[dimCache]]
	switch resolved {
	case NaturalCache:
		resolved = cfg.DefaultCache()
		cfg.CacheBlocks = resolved
	case UnlimitedCache:
		cfg.CacheBlocks = cache.Unlimited
	default:
		cfg.CacheBlocks = resolved
	}

	params := Params{
		K:            cfg.K,
		D:            cfg.D,
		N:            cfg.N,
		CacheBlocks:  resolved,
		InterRun:     cfg.InterRun,
		Synchronized: cfg.Synchronized,
		Placement:    cfg.Placement.String(),
	}
	if err := cfg.Validate(); err != nil {
		return core.Config{}, params, err
	}
	return cfg, params, nil
}
