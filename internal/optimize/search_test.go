package optimize

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
)

// fakeEvaluator computes a synthetic objective from the candidate's
// knobs and mimics the service cache: a repeated (config, trials) key
// reports Cached, exactly like a result-cache hit would.
type fakeEvaluator struct {
	fn    func(cfg core.Config) Eval
	calls int
	seen  map[string]bool
}

func (f *fakeEvaluator) Evaluate(_ context.Context, cfg core.Config, trials int) (Eval, error) {
	f.calls++
	if f.seen == nil {
		f.seen = make(map[string]bool)
	}
	h, err := cfg.Hash()
	if err != nil {
		return Eval{}, err
	}
	key := fmt.Sprintf("%s/%d", h, trials)
	e := f.fn(cfg)
	e.Cached = f.seen[key]
	f.seen[key] = true
	return e, nil
}

// flatEval fills the fields the harness needs with benign defaults.
func flatEval(seconds float64, cfg core.Config) Eval {
	return Eval{
		Seconds:   seconds,
		Success:   1,
		Overlap:   float64(cfg.D),
		CachePeak: int64(cfg.K),
		Blocks:    cfg.TotalBlocks(),
	}
}

func mustRun(t *testing.T, spec Spec, ev Evaluator) *Result {
	t.Helper()
	res, err := Run(context.Background(), spec, ev)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func traceJSON(t *testing.T, res *Result) []byte {
	t.Helper()
	b, err := json.Marshal(res.Trace)
	if err != nil {
		t.Fatalf("marshal trace: %v", err)
	}
	return b
}

// quadratic has its unique minimum at N=1, D=3 (mid starts elsewhere).
func quadratic(cfg core.Config) Eval {
	n, d := float64(cfg.N), float64(cfg.D)
	return flatEval(10+(n-1)*(n-1)+(d-3)*(d-3), cfg)
}

func quadraticSpec(alg Algorithm) Spec {
	return Spec{
		Template:  testTemplate(),
		Space:     Space{N: Dimension{Values: []int{1, 2, 4, 8}}, D: Dimension{Values: []int{1, 2, 3}}},
		Algorithm: alg,
	}
}

func TestGridFindsOptimum(t *testing.T) {
	ev := &fakeEvaluator{fn: quadratic}
	res := mustRun(t, quadraticSpec(Grid), ev)

	if res.Best == nil || res.Best.Params.N != 1 || res.Best.Params.D != 3 {
		t.Fatalf("best = %+v, want N=1 D=3", res.Best)
	}
	if math.Abs(res.Best.Objective-10) > 1e-12 {
		t.Errorf("best objective = %g, want 10", res.Best.Objective)
	}
	if want := 12; len(res.Trace) != want || res.Evaluations != want || res.Distinct != want {
		t.Errorf("trace %d evals %d distinct %d, want all %d", len(res.Trace), res.Evaluations, res.Distinct, want)
	}
	if res.CacheServed != 0 || res.Truncated {
		t.Errorf("cacheServed %d truncated %v on a cold full grid", res.CacheServed, res.Truncated)
	}
	for i, e := range res.Trace {
		if e.Step != i || e.Status != StatusOK || e.Hash == "" || e.Trials != 1 {
			t.Fatalf("trace[%d] malformed: %+v", i, e)
		}
	}
}

func TestGridBudgetTruncates(t *testing.T) {
	spec := quadraticSpec(Grid)
	spec.MaxEvaluations = 3
	res := mustRun(t, spec, &fakeEvaluator{fn: quadratic})
	if !res.Truncated || res.Evaluations != 3 || len(res.Trace) != 3 {
		t.Fatalf("truncated %v evals %d trace %d, want true/3/3", res.Truncated, res.Evaluations, len(res.Trace))
	}
}

func TestCoordinateConvergesWithFewerEvaluations(t *testing.T) {
	ev := &fakeEvaluator{fn: quadratic}
	res := mustRun(t, quadraticSpec(Coordinate), ev)

	if res.Best == nil || res.Best.Params.N != 1 || res.Best.Params.D != 3 {
		t.Fatalf("best = %+v, want N=1 D=3", res.Best)
	}
	// The convergence pass revisits settled points; those are served by
	// the (fake) cache, never fresh work.
	if res.CacheServed == 0 {
		t.Error("coordinate descent revisits produced no cache-served evaluations")
	}
	if fresh := ev.calls - res.CacheServed; fresh > 12 {
		t.Errorf("%d fresh evaluations for a 12-point space", fresh)
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	spec := quadraticSpec(Anneal)
	spec.Seed = 7
	spec.MaxEvaluations = 40

	a := mustRun(t, spec, &fakeEvaluator{fn: quadratic})
	b := mustRun(t, spec, &fakeEvaluator{fn: quadratic})
	if ja, jb := traceJSON(t, a), traceJSON(t, b); string(ja) != string(jb) {
		t.Fatalf("same seed, different traces:\n%s\n%s", ja, jb)
	}

	spec.Seed = 8
	c := mustRun(t, spec, &fakeEvaluator{fn: quadratic})
	if string(traceJSON(t, a)) == string(traceJSON(t, c)) {
		t.Error("seeds 7 and 8 walked identical traces")
	}
	if a.Best == nil || c.Best == nil {
		t.Fatal("anneal found no feasible point")
	}
}

func TestDeterministicTraceAllAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{Grid, Coordinate, Anneal} {
		spec := quadraticSpec(alg)
		spec.MaxEvaluations = 30
		a := mustRun(t, spec, &fakeEvaluator{fn: quadratic})
		b := mustRun(t, spec, &fakeEvaluator{fn: quadratic})
		if ja, jb := traceJSON(t, a), traceJSON(t, b); string(ja) != string(jb) {
			t.Errorf("%v: traces differ between identical runs", alg)
		}
	}
}

func TestAdaptiveTrialsEscalate(t *testing.T) {
	ev := &fakeEvaluator{fn: func(cfg core.Config) Eval {
		e := flatEval(10, cfg)
		e.CI95 = 1 // rel CI 0.1, recomputed below per trial count
		return e
	}}
	// The fake cannot see the trial count through fn, so wrap Evaluate:
	// CI shrinks as 0.8·seconds/trials — tight enough at 4 trials.
	wrapped := EvaluatorFunc(func(ctx context.Context, cfg core.Config, trials int) (Eval, error) {
		e, err := ev.Evaluate(ctx, cfg, trials)
		if err != nil {
			return e, err
		}
		e.CI95 = 0.8 * e.Seconds / float64(trials)
		return e, nil
	})

	spec := Spec{
		Template: testTemplate(),
		Space:    Space{N: Dimension{Values: []int{1, 2}}},
		Trials:   TrialPolicy{Max: 8, RelCI95: 0.3},
	}
	res := mustRun(t, spec, wrapped)
	// Min defaults to 2 (one trial has no CI): 2 trials → rel 0.4 (too
	// loose), 4 trials → rel 0.2 (stop). Two evaluator calls per point.
	if res.Evaluations != 4 {
		t.Errorf("evaluations = %d, want 4 (2 points × 2 ladder steps)", res.Evaluations)
	}
	for _, e := range res.Trace {
		if e.Trials != 4 {
			t.Errorf("trace entry stopped at %d trials, want 4", e.Trials)
		}
	}
}

func TestConstraintsExcludeInfeasible(t *testing.T) {
	// More disks are faster but only D=1 meets the success floor.
	ev := func(cfg core.Config) Eval {
		e := flatEval(10-float64(cfg.D), cfg)
		if cfg.D > 1 {
			e.Success = 0.5
		}
		return e
	}
	spec := Spec{
		Template:    testTemplate(),
		Space:       Space{D: Dimension{Values: []int{1, 2, 3}}},
		Constraints: Constraints{MinSuccess: 0.9},
	}
	res := mustRun(t, spec, &fakeEvaluator{fn: ev})
	if res.Best == nil || res.Best.Params.D != 1 {
		t.Fatalf("best = %+v, want the only feasible point D=1", res.Best)
	}
	infeasible := 0
	for _, e := range res.Trace {
		if e.Status == StatusInfeasible {
			infeasible++
		}
	}
	if infeasible != 2 {
		t.Errorf("%d infeasible entries, want 2", infeasible)
	}

	// An unsatisfiable constraint leaves Best and Knee empty, not an error.
	spec.Constraints.MaxSeconds = 0.001
	res = mustRun(t, spec, &fakeEvaluator{fn: ev})
	if res.Best != nil || res.Knee != nil {
		t.Errorf("all-infeasible search still picked best %+v knee %+v", res.Best, res.Knee)
	}
}

func TestInvalidCandidatesSkipEvaluation(t *testing.T) {
	ev := &fakeEvaluator{fn: quadratic}
	spec := Spec{
		Template: testTemplate(), // K = 4
		Space:    Space{D: Dimension{Values: []int{2, 8}}},
	}
	res := mustRun(t, spec, ev)
	if len(res.Trace) != 2 || res.Evaluations != 1 || res.Distinct != 1 {
		t.Fatalf("trace %d evals %d distinct %d, want 2/1/1", len(res.Trace), res.Evaluations, res.Distinct)
	}
	if res.Trace[1].Status != StatusInvalid || res.Trace[1].Params.D != 8 {
		t.Errorf("invalid entry = %+v", res.Trace[1])
	}
	if res.Best == nil || res.Best.Params.D != 2 {
		t.Errorf("best = %+v, want D=2", res.Best)
	}
}

// TestAllInvalidSpaceStopsAtVisitBudget pins the visit bound: a space
// whose every candidate fails Config.Validate costs no evaluations, so
// only the visit budget stands between it and enumerating the whole
// cross product (or, for anneal, wandering until the context dies).
func TestAllInvalidSpaceStopsAtVisitBudget(t *testing.T) {
	for _, alg := range []Algorithm{Grid, Coordinate, Anneal} {
		ev := &fakeEvaluator{fn: quadratic}
		spec := Spec{
			Template:       testTemplate(), // K = 4, so every D below is invalid
			Space:          Space{D: Dimension{Values: []int{8, 16, 32, 64, 128, 256}}},
			Algorithm:      alg,
			MaxEvaluations: 1,
			Anneal:         AnnealParams{Steps: 1 << 20},
		}
		res := mustRun(t, spec, ev)
		if max := visitFactor * spec.MaxEvaluations; len(res.Trace) > max {
			t.Errorf("%v: %d visits exceed the visit budget %d", alg, len(res.Trace), max)
		}
		if ev.calls != 0 || res.Evaluations != 0 || res.Best != nil {
			t.Errorf("%v: calls %d evals %d best %+v on an all-invalid space", alg, ev.calls, res.Evaluations, res.Best)
		}
		if !res.Truncated {
			t.Errorf("%v: a visit-budget stop did not report Truncated", alg)
		}
	}
}

// TestAnnealFinishesWithoutTruncation pins that running the cooling
// schedule to completion is a normal stop, not a truncation: the flag
// stays reserved for budget exhaustion.
func TestAnnealFinishesWithoutTruncation(t *testing.T) {
	spec := quadraticSpec(Anneal)
	spec.MaxEvaluations = 200 // ample for the default 199-proposal schedule
	res := mustRun(t, spec, &fakeEvaluator{fn: quadratic})
	if res.Truncated {
		t.Errorf("anneal that completed its schedule reported Truncated (evals %d, trace %d)", res.Evaluations, len(res.Trace))
	}
	if res.Best == nil {
		t.Fatal("anneal found no feasible point")
	}
	// And a schedule the budget cannot fund still reports the cut.
	spec.MaxEvaluations = 5
	spec.Anneal.Steps = 1000
	res = mustRun(t, spec, &fakeEvaluator{fn: quadratic})
	if !res.Truncated {
		t.Error("budget-cut anneal did not report Truncated")
	}
}

// TestZeroObjectiveSurvivesJSON pins the wire contract: a legitimate
// objective (or overlap/success) of exactly 0 must round-trip, so an
// evaluated entry is distinguished from an unevaluated one by Status,
// never by field presence.
func TestZeroObjectiveSurvivesJSON(t *testing.T) {
	spec := Spec{
		Template:  testTemplate(),
		Space:     Space{D: Dimension{Values: []int{1, 2}}},
		Objective: Objective{Goal: MaxOverlap},
	}
	res := mustRun(t, spec, &fakeEvaluator{fn: func(cfg core.Config) Eval {
		e := flatEval(10, cfg)
		e.Overlap = 0 // no two disks ever overlapped
		return e
	}})
	if res.Best == nil || res.Best.Objective != 0 {
		t.Fatalf("best = %+v, want objective exactly 0", res.Best)
	}
	var entries []map[string]json.RawMessage
	if err := json.Unmarshal(traceJSON(t, res), &entries); err != nil {
		t.Fatalf("unmarshal trace: %v", err)
	}
	for i, e := range entries {
		for _, field := range []string{"objective", "seconds", "ci95_seconds", "overlap", "success_ratio", "cost_rate", "trials"} {
			if _, ok := e[field]; !ok {
				t.Errorf("trace[%d] dropped %q for a zero value", i, field)
			}
		}
	}
}

func TestMaxOverlapGoal(t *testing.T) {
	spec := Spec{
		Template:  testTemplate(),
		Space:     Space{D: Dimension{Values: []int{1, 2, 3}}},
		Objective: Objective{Goal: MaxOverlap},
	}
	res := mustRun(t, spec, &fakeEvaluator{fn: func(cfg core.Config) Eval { return flatEval(10, cfg) }})
	if res.Best == nil || res.Best.Params.D != 3 {
		t.Fatalf("best = %+v, want the most-parallel D=3", res.Best)
	}
	if math.Abs(res.Best.Objective-3) > 1e-12 {
		t.Errorf("objective = %g, want overlap 3 reported goal-naturally", res.Best.Objective)
	}
}

func TestMinCostPerBlockGoal(t *testing.T) {
	spec := Spec{
		Template:  testTemplate(),
		Space:     Space{D: Dimension{Values: []int{1, 2, 3}}},
		Objective: Objective{Goal: MinCostPerBlock},
	}
	res := mustRun(t, spec, &fakeEvaluator{fn: func(cfg core.Config) Eval { return flatEval(10, cfg) }})
	if res.Best == nil || res.Best.Params.D != 1 {
		t.Fatalf("best = %+v, want the cheapest D=1 at equal speed", res.Best)
	}
	// cost rate = 1·D + 0.01·cache(4) = 1.04; per block over 32 blocks of 10 s.
	want := 1.04 * 10 / 32
	if math.Abs(res.Best.Objective-want) > 1e-12 {
		t.Errorf("objective = %g, want %g", res.Best.Objective, want)
	}
}

func TestKneeOnDiminishingReturns(t *testing.T) {
	// Seconds = 100/D: each extra disk buys less. The classic knee of
	// {100, 50, 33, 25, 20} against cost ∝ D is at D=2.
	spec := Spec{
		Template: testTemplate(),
		Space:    Space{D: Dimension{Values: []int{1, 2, 3, 4, 5}}},
	}
	tmpl := testTemplate()
	tmpl.K = 8 // allow D up to 5
	tmpl.CacheBlocks = tmpl.DefaultCache()
	spec.Template = tmpl
	res := mustRun(t, spec, &fakeEvaluator{fn: func(cfg core.Config) Eval {
		return flatEval(100/float64(cfg.D), cfg)
	}})
	if res.Best == nil || res.Best.Params.D != 5 {
		t.Fatalf("best = %+v, want the fastest D=5", res.Best)
	}
	if res.Knee == nil || res.Knee.Params.D != 2 {
		t.Fatalf("knee = %+v, want the diminishing-returns elbow D=2", res.Knee)
	}
}

func TestEvaluatorErrorPropagates(t *testing.T) {
	boom := fmt.Errorf("disk on fire")
	ev := EvaluatorFunc(func(context.Context, core.Config, int) (Eval, error) { return Eval{}, boom })
	if _, err := Run(context.Background(), quadraticSpec(Grid), ev); err == nil {
		t.Fatal("Run swallowed the evaluator error")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, quadraticSpec(Grid), &fakeEvaluator{fn: quadratic})
	if err == nil {
		t.Fatal("Run ignored a cancelled context")
	}
}

func TestUnknownAlgorithmRejected(t *testing.T) {
	spec := quadraticSpec(Algorithm(99))
	if _, err := Run(context.Background(), spec, &fakeEvaluator{fn: quadratic}); err == nil {
		t.Fatal("Run accepted an unknown algorithm")
	}
}

// engineEvaluator runs the real simulation engine, single-worker.
func engineEvaluator(workers int) EvaluatorFunc {
	return func(ctx context.Context, cfg core.Config, trials int) (Eval, error) {
		aggs, err := core.RunGridContext(ctx, []core.Config{cfg}, trials, workers)
		if err != nil {
			return Eval{}, err
		}
		a := aggs[0]
		var peak, blocks int64
		for _, r := range a.Results {
			if r.CachePeak > peak {
				peak = r.CachePeak
			}
			blocks = r.MergedBlocks
		}
		return Eval{
			Seconds:   a.TotalTime.Mean(),
			CI95:      a.TotalTime.CI95(),
			Success:   a.SuccessRatio.Mean(),
			Overlap:   a.Concurrency.Mean(),
			CachePeak: peak,
			Blocks:    blocks,
		}, nil
	}
}

func TestRealEngineSearch(t *testing.T) {
	tmpl := testTemplate()
	spec := Spec{
		Template: tmpl,
		Space: Space{
			N:           Dimension{Values: []int{1, 2}},
			Strategies:  []Strategy{{}, {InterRun: true}},
			CacheBlocks: Dimension{Values: []int{NaturalCache}},
		},
	}
	res := mustRun(t, spec, engineEvaluator(1))
	if res.Best == nil {
		t.Fatal("no feasible point on a real engine grid")
	}
	for i, e := range res.Trace {
		if e.Status != StatusOK || e.Seconds <= 0 {
			t.Fatalf("trace[%d] = %+v", i, e)
		}
	}
	// Prefetching can't make the merge slower than no-prefetch here.
	base := res.Trace[0]
	if base.Params.N == 1 && !base.Params.InterRun && res.Best.Seconds > base.Seconds+1e-9 {
		t.Errorf("best %.4fs worse than the no-prefetch baseline %.4fs", res.Best.Seconds, base.Seconds)
	}
}

// TestRealEngineWorkerIndependence pins the tentpole determinism claim:
// the engine may fan trials over any worker count without changing one
// byte of the search trace.
func TestRealEngineWorkerIndependence(t *testing.T) {
	spec := Spec{
		Template: testTemplate(),
		Space:    Space{N: Dimension{Values: []int{1, 2}}, D: Dimension{Values: []int{1, 2}}},
		Trials:   TrialPolicy{Min: 3},
	}
	one := mustRun(t, spec, engineEvaluator(1))
	four := mustRun(t, spec, engineEvaluator(4))
	if ja, jb := traceJSON(t, one), traceJSON(t, four); string(ja) != string(jb) {
		t.Fatalf("worker count changed the trace:\n%s\n%s", ja, jb)
	}
}

func TestTrajectoryFigure(t *testing.T) {
	spec := quadraticSpec(Grid)
	res := mustRun(t, spec, &fakeEvaluator{fn: quadratic})
	fig := TrajectoryFigure(spec, res)
	if fig.ID != "optimize" || len(fig.Series) != 2 {
		t.Fatalf("figure = %+v", fig)
	}
	obj, best := fig.Series[0], fig.Series[1]
	if len(obj.X) != 12 || len(best.X) != 12 {
		t.Fatalf("series lengths %d/%d, want 12", len(obj.X), len(best.X))
	}
	// The running best is non-increasing for a minimizing goal.
	for i := 1; i < len(best.Y); i++ {
		if best.Y[i] > best.Y[i-1]+1e-12 {
			t.Fatalf("running best rose at step %d: %v", i, best.Y)
		}
	}
}
