package optimize

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/layout"
)

// testTemplate is a tiny valid base configuration for spec-level tests.
func testTemplate() core.Config {
	cfg := core.Default()
	cfg.K = 4
	cfg.D = 2
	cfg.BlocksPerRun = 8
	cfg.N = 1
	cfg.CacheBlocks = cfg.DefaultCache()
	return cfg
}

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]Algorithm{"": Grid, "grid": Grid, "coordinate": Coordinate, "anneal": Anneal}
	for name, want := range cases {
		got, err := ParseAlgorithm(name)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", name, got, err, want)
		}
		if name != "" && got.String() != name {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), name)
		}
	}
	if _, err := ParseAlgorithm("gradient"); err == nil {
		t.Error("ParseAlgorithm accepted an unknown name")
	}
}

func TestParseStrategy(t *testing.T) {
	for _, name := range []string{"intra-unsync", "intra-sync", "inter-unsync", "inter-sync"} {
		st, err := ParseStrategy(name)
		if err != nil {
			t.Fatalf("ParseStrategy(%q): %v", name, err)
		}
		if st.String() != name {
			t.Errorf("round trip %q -> %q", name, st.String())
		}
	}
	if _, err := ParseStrategy("extra-sync"); err == nil {
		t.Error("ParseStrategy accepted an unknown name")
	}
}

func TestParseGoal(t *testing.T) {
	cases := map[string]Goal{"": MinTime, "min_time": MinTime, "max_overlap": MaxOverlap, "min_cost_per_block": MinCostPerBlock}
	for name, want := range cases {
		got, err := ParseGoal(name)
		if err != nil || got != want {
			t.Errorf("ParseGoal(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseGoal("max_fun"); err == nil {
		t.Error("ParseGoal accepted an unknown name")
	}
}

func TestRange(t *testing.T) {
	got := Range(1, 7, 2).Values
	want := []int{1, 3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("Range(1,7,2) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range(1,7,2) = %v, want %v", got, want)
		}
	}
	if vs := Range(3, 5, 0).Values; len(vs) != 3 { // step 0 behaves as 1
		t.Errorf("Range(3,5,0) = %v, want 3 values", vs)
	}
}

func TestSpecValidate(t *testing.T) {
	base := func() Spec {
		return Spec{Template: testTemplate(), Space: Space{N: Range(1, 4, 1)}}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"empty space", func(s *Spec) { s.Space = Space{} }, "search space is empty"},
		{"bad template", func(s *Spec) { s.Template.K = 0 }, "template"},
		{"run lengths vs K", func(s *Spec) {
			s.Template.RunLengths = []int{8, 8, 8, 8}
			s.Space = Space{K: Dimension{Values: []int{2, 4}}}
		}, "run lengths"},
		{"nonpositive value", func(s *Spec) { s.Space.D = Dimension{Values: []int{0}} }, "must be positive"},
		{"cache below sentinel", func(s *Spec) { s.Space.CacheBlocks = Dimension{Values: []int{-2}} }, "cache_blocks value"},
		{"oversized dimension", func(s *Spec) { s.Space.N = Range(1, maxDimensionValues+1, 1) }, "limit"},
		{"negative trials", func(s *Spec) { s.Trials.Min = -1 }, "trial policy"},
		{"max below min", func(s *Spec) { s.Trials = TrialPolicy{Min: 4, Max: 2} }, "trials max"},
		{"bad success constraint", func(s *Spec) { s.Constraints.MinSuccess = 1.5 }, "constraints"},
		{"negative temp", func(s *Spec) { s.Anneal.Temp = -1 }, "anneal temp"},
		{"cooling ge one", func(s *Spec) { s.Anneal.Cooling = 1 }, "anneal cooling"},
		{"negative budget", func(s *Spec) { s.MaxEvaluations = -1 }, "max evaluations"},
	}
	for _, tc := range cases {
		spec := base()
		tc.mut(&spec)
		err := spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestSpacePinsEmptyDimensions(t *testing.T) {
	tmpl := testTemplate()
	tmpl.InterRun = true
	tmpl.Synchronized = true
	tmpl.Placement = layout.Striped
	sp := newSpace(Spec{Template: tmpl, Space: Space{N: Dimension{Values: []int{1, 2}}}})
	if got := sp.points(); got != 2 {
		t.Fatalf("points() = %d, want 2", got)
	}
	cfg, params, err := sp.materialize(tmpl, point{0, 0, 0, 0, 1, 0})
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	if cfg.K != tmpl.K || cfg.D != tmpl.D || cfg.N != 2 || !cfg.InterRun || !cfg.Synchronized || cfg.Placement != layout.Striped {
		t.Errorf("pinned dims leaked: %+v", params)
	}
	if params.CacheBlocks != tmpl.CacheBlocks {
		t.Errorf("pinned cache = %d, want template %d", params.CacheBlocks, tmpl.CacheBlocks)
	}
}

func TestMaterializeResolvesCacheSentinels(t *testing.T) {
	tmpl := testTemplate()
	sp := newSpace(Spec{Template: tmpl, Space: Space{
		N:           Dimension{Values: []int{2}},
		CacheBlocks: Dimension{Values: []int{NaturalCache, UnlimitedCache, 16}},
	}})

	cfg, params, err := sp.materialize(tmpl, point{0, 0, 0, 0, 0, 0})
	if err != nil {
		t.Fatalf("natural: %v", err)
	}
	if want := cfg.DefaultCache(); cfg.CacheBlocks != want || params.CacheBlocks != want {
		t.Errorf("natural cache = cfg %d / params %d, want %d", cfg.CacheBlocks, params.CacheBlocks, want)
	}

	cfg, params, err = sp.materialize(tmpl, point{0, 0, 0, 0, 0, 1})
	if err != nil {
		t.Fatalf("unlimited: %v", err)
	}
	if cfg.CacheBlocks != cache.Unlimited || params.CacheBlocks != UnlimitedCache {
		t.Errorf("unlimited cache = cfg %d / params %d", cfg.CacheBlocks, params.CacheBlocks)
	}

	cfg, params, err = sp.materialize(tmpl, point{0, 0, 0, 0, 0, 2})
	if err != nil {
		t.Fatalf("explicit: %v", err)
	}
	if cfg.CacheBlocks != 16 || params.CacheBlocks != 16 {
		t.Errorf("explicit cache = cfg %d / params %d, want 16", cfg.CacheBlocks, params.CacheBlocks)
	}
}

func TestUnlimitedTemplateCachePinsToSentinel(t *testing.T) {
	tmpl := testTemplate()
	tmpl.CacheBlocks = cache.Unlimited
	sp := newSpace(Spec{Template: tmpl, Space: Space{N: Dimension{Values: []int{1, 2}}}})
	cfg, params, err := sp.materialize(tmpl, point{})
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	if cfg.CacheBlocks != cache.Unlimited || params.CacheBlocks != UnlimitedCache {
		t.Errorf("unlimited template: cfg %d / params %d", cfg.CacheBlocks, params.CacheBlocks)
	}
}

func TestMaterializeInvalidCandidate(t *testing.T) {
	tmpl := testTemplate()
	sp := newSpace(Spec{Template: tmpl, Space: Space{D: Dimension{Values: []int{8}}}}) // D > K
	if _, _, err := sp.materialize(tmpl, point{}); err == nil {
		t.Fatal("materialize accepted D > K")
	}
}

func TestMidPoint(t *testing.T) {
	sp := newSpace(Spec{Template: testTemplate(), Space: Space{
		N: Dimension{Values: []int{1, 2, 4, 8}},
		D: Dimension{Values: []int{1, 2, 3}},
	}})
	m := sp.mid()
	if m[dimN] != 2 || m[dimD] != 1 || m[dimK] != 0 {
		t.Errorf("mid() = %v", m)
	}
}
