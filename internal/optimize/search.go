package optimize

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Eval is one evaluated point's metrics, extracted from the engine's
// aggregate result by the Evaluator.
type Eval struct {
	Seconds   float64 // mean total merge time
	CI95      float64 // 95% CI half-width of Seconds
	Success   float64 // mean success ratio
	Overlap   float64 // mean busy disks while busy
	CachePeak int64   // high-water cache occupancy (max over trials)
	Blocks    int64   // merged blocks per trial
	Cached    bool    // answer came from a cache or a shared in-flight run
}

// Evaluator runs (or recalls) one simulation point. Implementations
// must be deterministic in (cfg, trials) — the service's result-cached
// engine front-end is the canonical one. Cached is pure observability:
// it reports where the answer came from, never changes what it is.
type Evaluator interface {
	Evaluate(ctx context.Context, cfg core.Config, trials int) (Eval, error)
}

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(ctx context.Context, cfg core.Config, trials int) (Eval, error)

// Evaluate implements Evaluator.
func (f EvaluatorFunc) Evaluate(ctx context.Context, cfg core.Config, trials int) (Eval, error) {
	return f(ctx, cfg, trials)
}

// Point statuses in the trace.
const (
	// StatusOK: evaluated and feasible.
	StatusOK = "ok"
	// StatusInfeasible: evaluated, but a constraint failed.
	StatusInfeasible = "infeasible"
	// StatusInvalid: the candidate does not form a runnable Config
	// (e.g. D > K); recorded without an engine evaluation.
	StatusInvalid = "invalid"
)

// TraceEntry is one visited candidate. Objective is the goal-natural
// value (seconds, overlap, or cost per block — overlap is maximized,
// the others minimized); it is meaningful only for status "ok"
// entries. The numeric result fields serialize unconditionally — a
// legitimate value of exactly 0 (possible for overlap or success
// ratio) must stay distinguishable from "not evaluated", so Status,
// not field presence, is the discriminator: "invalid" entries were
// never evaluated and carry all-zero results.
type TraceEntry struct {
	Step      int     `json:"step"`
	Params    Params  `json:"params"`
	Hash      string  `json:"hash,omitempty"`
	Status    string  `json:"status"`
	Objective float64 `json:"objective"`
	Seconds   float64 `json:"seconds"`
	CI95      float64 `json:"ci95_seconds"`
	Overlap   float64 `json:"overlap"`
	Success   float64 `json:"success_ratio"`
	CostRate  float64 `json:"cost_rate"`
	Trials    int     `json:"trials"`
	Cached    bool    `json:"cached,omitempty"`
}

// Result is a finished search.
type Result struct {
	Best *TraceEntry `json:"best,omitempty"` // nil when no feasible point exists
	Knee *TraceEntry `json:"knee,omitempty"` // cheapest near-optimal point
	// Trace lists every visited candidate in visit order. Revisits (a
	// driver returning to a point) appear again — served from the
	// result cache, which is exactly the reuse the trace makes visible.
	Trace []TraceEntry `json:"trace"`
	// Evaluations counts Evaluator calls (adaptive-trial escalations
	// included); CacheServed counts those answered without fresh engine
	// work; Distinct counts unique evaluated configurations.
	Evaluations int  `json:"evaluations"`
	CacheServed int  `json:"cache_served"`
	Distinct    int  `json:"distinct_points"`
	// Truncated reports an abnormal stop: the search exhausted
	// MaxEvaluations or the visit bound before its driver finished.
	Truncated bool `json:"truncated,omitempty"`
}

// Run executes the search and returns its result. The error is non-nil
// only for spec errors, evaluator failures, or context cancellation —
// an exhausted budget or an all-infeasible space is reported in the
// Result, not as an error.
func Run(ctx context.Context, spec Spec, ev Evaluator) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	s := &searcher{
		ctx:   ctx,
		spec:  spec,
		space: newSpace(spec),
		ev:    ev,
		seen:  make(map[string]int),
		best:  -1,
	}
	var err error
	switch spec.Algorithm {
	case Grid:
		err = s.grid()
	case Coordinate:
		err = s.coordinate()
	case Anneal:
		err = s.anneal()
	default:
		return nil, fmt.Errorf("optimize: unknown algorithm %v", spec.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	res := &Result{
		Trace:       s.trace,
		Evaluations: s.evals,
		CacheServed: s.cacheServed,
		Distinct:    len(s.seen),
		Truncated:   s.truncated,
	}
	if s.best >= 0 {
		best := s.trace[s.best]
		res.Best = &best
		if knee := kneePoint(s.trace, s.spec.Objective.Goal, s.best); knee >= 0 {
			k := s.trace[knee]
			res.Knee = &k
		}
	}
	return res, nil
}

// searcher is the shared driver harness: it owns the trace, the budget,
// the best-so-far bookkeeping, and the adaptive-trial evaluation loop.
type searcher struct {
	ctx   context.Context
	spec  Spec
	space *space
	ev    Evaluator

	trace       []TraceEntry
	seen        map[string]int // config hash → count of evaluated visits
	evals       int
	cacheServed int
	truncated   bool
	best        int     // trace index of the best feasible point, -1 if none
	bestScore   float64 // its internal (minimized) score
}

// visitFactor bounds the whole walk, not just the evaluated part of
// it: a driver may visit at most visitFactor × MaxEvaluations
// candidates. Invalid candidates cost no evaluation, so without this
// bound a space whose cross product is mostly unrunnable (say k and d
// ranges where d > k everywhere) would enumerate — and grow the trace
// — until the context expired, sidestepping MaxEvaluations entirely.
const visitFactor = 4

// stopped reports whether a budget is exhausted or the context done.
func (s *searcher) stopped() bool {
	if s.ctx.Err() != nil {
		return true
	}
	if s.evals >= s.spec.MaxEvaluations || len(s.trace) >= visitFactor*s.spec.MaxEvaluations {
		s.truncated = true
		return true
	}
	return false
}

// score converts an evaluation into the internal minimized objective.
func (s *searcher) score(params Params, ev Eval) float64 {
	switch s.spec.Objective.Goal {
	case MaxOverlap:
		return -ev.Overlap
	case MinCostPerBlock:
		return s.costPerBlock(params, ev)
	default:
		return ev.Seconds
	}
}

// natural converts an evaluation into the goal-natural reported value.
func (s *searcher) natural(params Params, ev Eval) float64 {
	switch s.spec.Objective.Goal {
	case MaxOverlap:
		return ev.Overlap
	case MinCostPerBlock:
		return s.costPerBlock(params, ev)
	default:
		return ev.Seconds
	}
}

// costRate prices one candidate's resources per second. An unlimited
// cache is priced at its observed peak occupancy.
func (s *searcher) costRate(params Params, ev Eval) float64 {
	o := s.spec.Objective
	blocks := float64(params.CacheBlocks)
	if params.CacheBlocks == UnlimitedCache {
		blocks = float64(ev.CachePeak)
	}
	return o.BaseCost + o.DiskCost*float64(params.D) + o.RAMCostPerBlock*blocks
}

func (s *searcher) costPerBlock(params Params, ev Eval) float64 {
	if ev.Blocks == 0 {
		return math.Inf(1)
	}
	return s.costRate(params, ev) * ev.Seconds / float64(ev.Blocks)
}

// feasible applies the constraints.
func (s *searcher) feasible(ev Eval) bool {
	c := s.spec.Constraints
	if c.MaxSeconds > 0 && ev.Seconds > c.MaxSeconds {
		return false
	}
	if c.MinSuccess > 0 && ev.Success < c.MinSuccess {
		return false
	}
	return true
}

// visit evaluates one candidate (adaptive trials, budget accounting,
// trace recording, best tracking) and returns its internal score:
// +Inf for infeasible or invalid points.
func (s *searcher) visit(p point) (float64, error) {
	entry := TraceEntry{Step: len(s.trace)}
	cfg, params, err := s.space.materialize(s.spec.Template, p)
	entry.Params = params
	if err != nil {
		entry.Status = StatusInvalid
		s.trace = append(s.trace, entry)
		return math.Inf(1), nil
	}
	hash, err := cfg.Hash()
	if err != nil {
		// A template that cannot be canonically encoded (callbacks,
		// caller workloads) cannot be searched over a result cache.
		return 0, fmt.Errorf("optimize: candidate has no canonical hash: %w", err)
	}
	entry.Hash = hash

	// Adaptive trials: evaluate at Min, double toward Max until the
	// relative CI of mean total time is tight enough. Every escalation
	// is its own (config, trials) cache key, so a revisited escalation
	// ladder is served entirely from cache.
	trials := s.spec.Trials.Min
	var ev Eval
	cached := true
	for {
		e, err := s.ev.Evaluate(s.ctx, cfg, trials)
		if err != nil {
			return 0, err
		}
		s.evals++
		if e.Cached {
			s.cacheServed++
		} else {
			cached = false
		}
		ev = e
		if s.spec.Trials.RelCI95 <= 0 || trials >= s.spec.Trials.Max {
			break
		}
		if stats.RelCI(ev.CI95, ev.Seconds) <= s.spec.Trials.RelCI95 {
			break
		}
		if s.evals >= s.spec.MaxEvaluations {
			s.truncated = true
			break
		}
		trials *= 2
		if trials > s.spec.Trials.Max {
			trials = s.spec.Trials.Max
		}
	}

	entry.Seconds = ev.Seconds
	entry.CI95 = ev.CI95
	entry.Overlap = ev.Overlap
	entry.Success = ev.Success
	entry.CostRate = s.costRate(params, ev)
	entry.Trials = trials
	entry.Cached = cached
	s.seen[hash]++

	score := math.Inf(1)
	if s.feasible(ev) {
		entry.Status = StatusOK
		entry.Objective = s.natural(params, ev)
		score = s.score(params, ev)
		if s.best < 0 || score < s.bestScore {
			s.best, s.bestScore = len(s.trace), score
		}
	} else {
		entry.Status = StatusInfeasible
	}
	s.trace = append(s.trace, entry)
	return score, nil
}

// grid enumerates the cross product in lexicographic dimension order.
func (s *searcher) grid() error {
	var p point
	for {
		if s.stopped() {
			return s.ctx.Err()
		}
		if _, err := s.visit(p); err != nil {
			return err
		}
		// Increment the mixed-radix counter, least-significant (cache)
		// dimension first.
		i := numDims - 1
		for ; i >= 0; i-- {
			p[i]++
			if p[i] < s.space.size(i) {
				break
			}
			p[i] = 0
		}
		if i < 0 {
			return nil
		}
	}
}

// coordinate is cyclic coordinate descent from the space's midpoint:
// sweep each dimension holding the others fixed, move to the best
// value, and stop when a full pass improves nothing. Re-evaluations of
// the incumbent are cache hits, not fresh runs.
func (s *searcher) coordinate() error {
	cur := s.space.mid()
	curScore, err := s.visit(cur)
	if err != nil {
		return err
	}
	for improved := true; improved; {
		improved = false
		for dim := 0; dim < numDims; dim++ {
			bestIdx := cur[dim]
			for idx := 0; idx < s.space.size(dim); idx++ {
				if idx == cur[dim] {
					continue
				}
				if s.stopped() {
					return s.ctx.Err()
				}
				cand := cur
				cand[dim] = idx
				sc, err := s.visit(cand)
				if err != nil {
					return err
				}
				if sc < curScore {
					curScore, bestIdx = sc, idx
				}
			}
			if bestIdx != cur[dim] {
				cur[dim] = bestIdx
				improved = true
			}
		}
	}
	return nil
}

// anneal is simulated annealing over the space's neighbor graph: one
// random dimension steps to an adjacent value (±1 index) per proposal,
// uphill moves are accepted with probability exp(-relΔ/T), and T cools
// geometrically. The walk runs its Anneal.Steps proposal budget to
// completion — that is its normal termination; Truncated fires only
// when the evaluation or visit budget cuts the schedule short. All
// randomness comes from one rng stream seeded by Spec.Seed, so the
// walk is a pure function of the spec.
func (s *searcher) anneal() error {
	r := rng.New(s.spec.Seed)
	cur := s.space.mid()
	curScore, err := s.visit(cur)
	if err != nil {
		return err
	}
	// Dimensions with at least two values are the movable ones.
	var movable []int
	for i := 0; i < numDims; i++ {
		if s.space.size(i) > 1 {
			movable = append(movable, i)
		}
	}
	if len(movable) == 0 {
		return nil
	}
	temp := s.spec.Anneal.Temp
	for step := 0; step < s.spec.Anneal.Steps; step++ {
		if s.stopped() {
			break
		}
		dim := movable[r.Intn(len(movable))]
		idx := cur[dim]
		if r.Uint64()&1 == 0 {
			idx--
		} else {
			idx++
		}
		if idx < 0 || idx >= s.space.size(dim) {
			// Walked off the edge: the proposal still spends its step
			// and cools, it just burns no evaluation.
			temp *= s.spec.Anneal.Cooling
			continue
		}
		cand := cur
		cand[dim] = idx
		sc, err := s.visit(cand)
		if err != nil {
			return err
		}
		accept := sc < curScore
		if !accept && math.IsInf(curScore, 1) {
			// Both infeasible/invalid: wander freely toward feasibility.
			accept = true
		} else if !accept && !math.IsInf(sc, 1) {
			rel := (sc - curScore) / math.Max(math.Abs(curScore), 1e-12)
			if r.Float64() < math.Exp(-rel/temp) {
				accept = true
			}
		}
		if accept {
			cur, curScore = cand, sc
		}
		temp *= s.spec.Anneal.Cooling
	}
	return s.ctx.Err()
}
