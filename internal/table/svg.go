package table

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// svgPalette holds the series colours, chosen for contrast on white.
var svgPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

// WriteSVG renders the figure as a standalone SVG: by default a line
// chart (one polyline with point markers per series, linear axes with
// rounded ticks, a legend); with Stacked set, stacked bars at
// categorical x positions. Output is deterministic for a given figure.
func (f *Figure) WriteSVG(w io.Writer, width, height int) error {
	if width < 200 || height < 150 {
		return fmt.Errorf("table: svg canvas %dx%d too small", width, height)
	}
	if f.Stacked {
		return f.writeStackedSVG(w, width, height)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range f.Series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
			points++
		}
	}
	if points == 0 {
		return fmt.Errorf("table: figure %s has no points", f.ID)
	}
	// Anchor the y axis at zero when the data is non-negative: the
	// paper's figures all plot totals and ratios from zero.
	if minY > 0 {
		minY = 0
	}
	//detlint:allow floatcmp degenerate-axis guard: both sides are the same accumulated extrema, exact equality detects a flat range
	if maxX == minX {
		maxX = minX + 1
	}
	//detlint:allow floatcmp degenerate-axis guard: both sides are the same accumulated extrema, exact equality detects a flat range
	if maxY == minY {
		maxY = minY + 1
	}

	const (
		marginL = 62
		marginR = 16
		marginT = 34
		marginB = 46
	)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	px := func(x float64) float64 { return marginL + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return float64(marginT) + (1-(y-minY)/(maxY-minY))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="11">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="13" font-weight="bold">Figure %s: %s</text>`+"\n",
		marginL, xmlEscape(f.ID), xmlEscape(f.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)

	// Ticks: ~5 per axis at rounded steps.
	for _, t := range ticks(minX, maxX, 6) {
		x := px(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			x, height-marginB, x, height-marginB+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			x, height-marginB+16, trimFloat(t))
	}
	for _, t := range ticks(minY, maxY, 6) {
		y := py(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginL-4, y, marginL, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n",
			marginL-7, y, trimFloat(t))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
			marginL, y, width-marginR, y)
	}

	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-8, xmlEscape(f.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		float64(marginT)+plotH/2, float64(marginT)+plotH/2, xmlEscape(f.YLabel))

	// Series.
	for si, s := range f.Series {
		color := svgPalette[si%len(svgPalette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n",
				px(s.X[i]), py(s.Y[i]), color)
		}
	}

	// Legend, top-right inside the plot.
	lx := float64(width-marginR) - 10
	ly := float64(marginT) + 6
	for si, s := range f.Series {
		color := svgPalette[si%len(svgPalette)]
		y := ly + float64(si)*15
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			lx-160, y, lx-140, y, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" dominant-baseline="middle">%s</text>`+"\n",
			lx-135, y, xmlEscape(s.Label))
	}

	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeStackedSVG renders stacked bars: one bar per x-grid value at
// equal categorical spacing, the series' (non-negative) values piled
// bottom-to-top in declaration order. The y axis runs from zero to the
// tallest bar, so when the series are an exhaustive attribution the
// bars visibly tile the total.
func (f *Figure) writeStackedSVG(w io.Writer, width, height int) error {
	xs := f.xGrid()
	if len(xs) == 0 {
		return fmt.Errorf("table: figure %s has no points", f.ID)
	}
	maxY := 0.0
	for _, x := range xs {
		sum := 0.0
		for _, s := range f.Series {
			if y, ok := s.valueAt(x); ok && y > 0 {
				sum += y
			}
		}
		maxY = math.Max(maxY, sum)
	}
	if maxY <= 0 {
		maxY = 1
	}

	const (
		marginL = 62
		marginR = 16
		marginT = 34
		marginB = 56
	)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	baseY := float64(height - marginB)
	slot := plotW / float64(len(xs))
	barW := math.Min(slot*0.7, 48)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="11">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="13" font-weight="bold">Figure %s: %s</text>`+"\n",
		marginL, xmlEscape(f.ID), xmlEscape(f.Title))

	// Axes and y ticks with gridlines.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	for _, t := range ticks(0, maxY, 6) {
		y := baseY - t/maxY*plotH
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginL-4, y, marginL, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n",
			marginL-7, y, trimFloat(t))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
			marginL, y, width-marginR, y)
	}

	// Bars, bottom-up in series declaration order.
	for xi, x := range xs {
		cx := float64(marginL) + (float64(xi)+0.5)*slot
		cursor := 0.0
		for si, s := range f.Series {
			y, ok := s.valueAt(x)
			if !ok || y <= 0 {
				continue
			}
			h := y / maxY * plotH
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s @ %s: %s</title></rect>`+"\n",
				cx-barW/2, baseY-cursor-h, barW, h, svgPalette[si%len(svgPalette)],
				xmlEscape(s.Label), trimFloat(x), trimFloat(y))
			cursor += h
		}
		// Rotated category label under the bar.
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="end" transform="rotate(-45 %.1f %.1f)">%s</text>`+"\n",
			cx, baseY+14, cx, baseY+14, trimFloat(x))
	}

	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
		float64(marginL)+plotW/2, height-6, xmlEscape(f.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		float64(marginT)+plotH/2, float64(marginT)+plotH/2, xmlEscape(f.YLabel))

	// Legend, top-right inside the plot; reverse declaration order so
	// the legend's top entry matches the bar's top segment.
	lx := float64(width-marginR) - 10
	ly := float64(marginT) + 6
	for row, si := 0, len(f.Series)-1; si >= 0; row, si = row+1, si-1 {
		color := svgPalette[si%len(svgPalette)]
		y := ly + float64(row)*15
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="12" height="8" fill="%s"/>`+"\n",
			lx-160, y-4, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" dominant-baseline="middle">%s</text>`+"\n",
			lx-144, y, xmlEscape(f.Series[si].Label))
	}

	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ticks returns up to n rounded tick positions covering [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	if n < 2 || hi <= lo {
		return []float64{lo}
	}
	raw := (hi - lo) / float64(n-1)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	step := mag
	for _, m := range []float64{1, 2, 2.5, 5, 10} {
		if mag*m >= raw {
			step = mag * m
			break
		}
	}
	var out []float64
	for v := math.Ceil(lo/step) * step; v <= hi+step*1e-9; v += step {
		out = append(out, v)
	}
	return out
}

// xmlEscape escapes the five XML special characters.
func xmlEscape(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")
	return r.Replace(s)
}
