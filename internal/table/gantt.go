package table

import (
	"fmt"
	"io"
	"strings"
)

// GanttRow is one labelled track of busy intervals for WriteGantt.
type GanttRow struct {
	Label     string
	Intervals [][2]float64 // [start, end) pairs, same unit as the window
}

// WriteGantt renders rows as a character timeline over the window
// [from, to): '#' marks busy cells (any overlap), '.' idle. It returns
// an error for an empty window or unusable width.
func WriteGantt(w io.Writer, rows []GanttRow, from, to float64, width int) error {
	if to <= from {
		return fmt.Errorf("table: gantt window [%v, %v) empty", from, to)
	}
	if width < 10 {
		return fmt.Errorf("table: gantt width %d too small", width)
	}
	labelW := 0
	for _, r := range rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	cell := (to - from) / float64(width)
	for _, r := range rows {
		line := make([]byte, width)
		for i := range line {
			line[i] = '.'
		}
		for _, iv := range r.Intervals {
			if iv[1] <= from || iv[0] >= to {
				continue
			}
			lo := int((maxF(iv[0], from) - from) / cell)
			hi := int((minF(iv[1], to) - from) / cell)
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi && i < width; i++ {
				line[i] = '#'
			}
		}
		if _, err := fmt.Fprintf(w, "  %s |%s|\n", pad(r.Label, labelW), line); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "  %s  %s\n  %s  %-0.6g%s%.6g\n",
		strings.Repeat(" ", labelW), strings.Repeat("-", width),
		strings.Repeat(" ", labelW), from,
		strings.Repeat(" ", max(1, width-len(fmt.Sprintf("%-0.6g", from))-len(fmt.Sprintf("%.6g", to)))), to)
	return err
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
