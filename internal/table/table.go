// Package table renders experiment output: numeric series (the paper's
// figures) as aligned text tables, CSV, and coarse ASCII charts for
// terminal inspection.
package table

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one labelled curve.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Point appends one (x, y) pair.
func (s *Series) Point(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a set of curves over a common x-axis meaning (series may
// have different x grids).
type Figure struct {
	ID     string // e.g. "3.2a"
	Title  string
	XLabel string
	YLabel string
	Series []*Series
	// Stacked renders the SVG as stacked bars: at each x the series'
	// values pile up bottom-to-top in declaration order, so the bar
	// height is their sum (an attribution figure's conservation
	// identity made visible). CSV and text renderings are unchanged.
	Stacked bool
}

// AddSeries creates, attaches and returns a new labelled series.
func (f *Figure) AddSeries(label string) *Series {
	s := &Series{Label: label}
	f.Series = append(f.Series, s)
	return s
}

// xGrid returns the sorted union of all series' x values.
func (f *Figure) xGrid() []float64 {
	//detlint:allow floatcmp grid x values are copied verbatim from series inputs, so identical bits mean identical points
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs
}

// valueAt returns the series value at x and whether it exists.
func (s *Series) valueAt(x float64) (float64, bool) {
	for i, sx := range s.X {
		//detlint:allow floatcmp x coordinates are sweep inputs copied verbatim from configs; lookup by exact value is intended
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// WriteCSV emits the figure as CSV: header then one row per x value;
// missing points are empty cells.
func (f *Figure) WriteCSV(w io.Writer) error {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Label)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, x := range f.xGrid() {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			if y, ok := s.valueAt(x); ok {
				row = append(row, trimFloat(y))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteText emits an aligned table with a title block.
func (f *Figure) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Figure %s: %s\n", f.ID, f.Title); err != nil {
		return err
	}
	fmt.Fprintf(w, "  (y: %s)\n", f.YLabel)
	widths := []int{len(f.XLabel)}
	for _, s := range f.Series {
		widths = append(widths, max(len(s.Label), 10))
	}
	header := []string{pad(f.XLabel, widths[0])}
	for i, s := range f.Series {
		header = append(header, pad(s.Label, widths[i+1]))
	}
	fmt.Fprintln(w, "  "+strings.Join(header, "  "))
	for _, x := range f.xGrid() {
		row := []string{pad(trimFloat(x), widths[0])}
		for i, s := range f.Series {
			cell := ""
			if y, ok := s.valueAt(x); ok {
				cell = fmt.Sprintf("%.3f", y)
			}
			row = append(row, pad(cell, widths[i+1]))
		}
		fmt.Fprintln(w, "  "+strings.Join(row, "  "))
	}
	return nil
}

// WriteASCIIChart draws a crude scatter of all series over a
// width×height character grid, one marker letter per series.
func (f *Figure) WriteASCIIChart(w io.Writer, width, height int) error {
	if width < 16 || height < 4 {
		return fmt.Errorf("table: chart area %dx%d too small", width, height)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return fmt.Errorf("table: figure %s has no points", f.ID)
	}
	//detlint:allow floatcmp degenerate-axis guard: both sides are the same accumulated extrema, exact equality detects a flat range
	if maxX == minX {
		maxX = minX + 1
	}
	//detlint:allow floatcmp degenerate-axis guard: both sides are the same accumulated extrema, exact equality detects a flat range
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	markers := "abcdefghijklmnopqrstuvwxyz"
	for si, s := range f.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			cx := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			cy := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			grid[height-1-cy][cx] = m
		}
	}
	fmt.Fprintf(w, "Figure %s: %s  [y: %.3g..%.3g %s]\n", f.ID, f.Title, minY, maxY, f.YLabel)
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s|\n", row)
	}
	fmt.Fprintf(w, "   %s (x: %.3g..%.3g %s)\n", strings.Repeat("-", width), minX, maxX, f.XLabel)
	for si, s := range f.Series {
		fmt.Fprintf(w, "   %c = %s\n", markers[si%len(markers)], s.Label)
	}
	return nil
}

// Table is a simple labelled grid for anchor comparisons.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends cells as one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteText emits the aligned table.
func (t *Table) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintln(w, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, 0, len(cells))
		for i, c := range cells {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			parts = append(parts, pad(c, width))
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
