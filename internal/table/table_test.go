package table

import (
	"strings"
	"testing"
)

func sample() *Figure {
	f := &Figure{ID: "3.2a", Title: "Fetching N Blocks", XLabel: "N", YLabel: "seconds"}
	a := f.AddSeries("one-disk")
	a.Point(1, 340)
	a.Point(10, 94)
	b := f.AddSeries("five-disk")
	b.Point(1, 287)
	b.Point(10, 60)
	b.Point(30, 40)
	return f
}

func TestCSVShape(t *testing.T) {
	var sb strings.Builder
	if err := sample().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "N,one-disk,five-disk" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 4 { // header + x in {1, 10, 30}
		t.Fatalf("%d lines: %v", len(lines), lines)
	}
	// x=30 exists only for five-disk: empty middle cell.
	if lines[3] != "30,,40" {
		t.Fatalf("sparse row = %q", lines[3])
	}
}

func TestCSVSortsX(t *testing.T) {
	f := &Figure{XLabel: "x"}
	s := f.AddSeries("s")
	s.Point(5, 1)
	s.Point(1, 2)
	s.Point(3, 3)
	var sb strings.Builder
	if err := f.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	want := []string{"x,s", "1,2", "3,3", "5,1"}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("lines = %v", lines)
		}
	}
}

func TestTextContainsEverything(t *testing.T) {
	var sb strings.Builder
	if err := sample().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"3.2a", "one-disk", "five-disk", "340.000", "N"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestASCIIChart(t *testing.T) {
	var sb strings.Builder
	if err := sample().WriteASCIIChart(&sb, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "a = one-disk") || !strings.Contains(out, "b = five-disk") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatal("markers missing")
	}
}

func TestASCIIChartErrors(t *testing.T) {
	f := &Figure{ID: "x"}
	var sb strings.Builder
	if err := f.WriteASCIIChart(&sb, 40, 10); err == nil {
		t.Fatal("empty figure accepted")
	}
	if err := sample().WriteASCIIChart(&sb, 2, 2); err == nil {
		t.Fatal("tiny chart accepted")
	}
}

func TestASCIIChartDegenerateRanges(t *testing.T) {
	f := &Figure{ID: "flat"}
	s := f.AddSeries("s")
	s.Point(1, 5)
	s.Point(1, 5) // single x, single y
	var sb strings.Builder
	if err := f.WriteASCIIChart(&sb, 20, 5); err != nil {
		t.Fatal(err)
	}
}

func TestTableText(t *testing.T) {
	tb := &Table{Title: "Anchors", Columns: []string{"case", "paper", "sim"}}
	tb.AddRow("eq1 k=25", "339.8", "340.1")
	tb.AddRow("eq5", "20.5", "20.45")
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Anchors", "eq1 k=25", "20.45", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1:      "1",
		1.5:    "1.5",
		0.25:   "0.25",
		340.12: "340.12",
		0:      "0",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Fatalf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestGanttBasic(t *testing.T) {
	rows := []GanttRow{
		{Label: "disk 0", Intervals: [][2]float64{{0, 50}, {80, 100}}},
		{Label: "disk 1", Intervals: [][2]float64{{25, 75}}},
	}
	var sb strings.Builder
	if err := WriteGantt(&sb, rows, 0, 100, 20); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(out, "\n")
	// Row 0: busy first half then tail; cell width = 5 units.
	if !strings.Contains(lines[0], "disk 0") || !strings.Contains(lines[0], "#") {
		t.Fatalf("row 0 = %q", lines[0])
	}
	// Disk 1 idle at the very start.
	track := lines[1][strings.Index(lines[1], "|")+1:]
	if track[0] != '.' {
		t.Fatalf("disk 1 should start idle: %q", lines[1])
	}
}

func TestGanttClipsOutOfWindow(t *testing.T) {
	rows := []GanttRow{{Label: "d", Intervals: [][2]float64{{-50, -10}, {200, 300}, {40, 60}}}}
	var sb strings.Builder
	if err := WriteGantt(&sb, rows, 0, 100, 10); err != nil {
		t.Fatal(err)
	}
	track := sb.String()
	if strings.Count(track, "#") == 0 {
		t.Fatal("in-window interval not drawn")
	}
	// Exactly the middle cells busy: [40,60) of [0,100) at 10 cells -> 2-3 cells.
	n := strings.Count(track, "#")
	if n < 2 || n > 3 {
		t.Fatalf("busy cells = %d", n)
	}
}

func TestGanttErrors(t *testing.T) {
	var sb strings.Builder
	if err := WriteGantt(&sb, nil, 5, 5, 20); err == nil {
		t.Fatal("empty window accepted")
	}
	if err := WriteGantt(&sb, nil, 0, 10, 3); err == nil {
		t.Fatal("tiny width accepted")
	}
}

func TestSVGBasic(t *testing.T) {
	var sb strings.Builder
	if err := sample().WriteSVG(&sb, 640, 400); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "circle",
		"one-disk", "five-disk", "Fetching N Blocks",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	// Two series: exactly two polylines.
	if n := strings.Count(out, "<polyline"); n != 2 {
		t.Fatalf("polylines = %d", n)
	}
	// Deterministic output.
	var sb2 strings.Builder
	if err := sample().WriteSVG(&sb2, 640, 400); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Fatal("svg not deterministic")
	}
}

func TestSVGEscapesLabels(t *testing.T) {
	f := &Figure{ID: "x", Title: `a<b&"c"`, XLabel: "x", YLabel: "y"}
	s := f.AddSeries("s<1>")
	s.Point(1, 1)
	s.Point(2, 2)
	var sb strings.Builder
	if err := f.WriteSVG(&sb, 400, 300); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "a<b&") || !strings.Contains(out, "a&lt;b&amp;") {
		t.Fatal("labels not escaped")
	}
}

func TestSVGErrors(t *testing.T) {
	var sb strings.Builder
	if err := (&Figure{ID: "e"}).WriteSVG(&sb, 640, 400); err == nil {
		t.Fatal("empty figure accepted")
	}
	if err := sample().WriteSVG(&sb, 50, 50); err == nil {
		t.Fatal("tiny canvas accepted")
	}
}

func TestTicksRounded(t *testing.T) {
	ts := ticks(0, 100, 6)
	if len(ts) < 4 || len(ts) > 7 {
		t.Fatalf("ticks = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("ticks not increasing: %v", ts)
		}
	}
	if got := ticks(5, 5, 6); len(got) != 1 {
		t.Fatalf("degenerate ticks = %v", got)
	}
}
