// Package workload supplies block-depletion models for the merge engine.
//
// The paper adopts the Kwan–Baer random depletion model: at every step,
// the next block is consumed from a run chosen uniformly at random among
// runs that still contain unmerged data. That is Uniform here. Skewed
// (Zipf-weighted) depletion and fixed replayed sequences (for tests and
// for record-driven traces captured from real merges) are provided as
// extensions.
package workload

import (
	"fmt"

	"repro/internal/rng"
)

// Model chooses which run to deplete next. Choose receives the list of
// candidate run ids (runs with unmerged blocks, in ascending order) and
// must return one element of it. Implementations may keep state.
type Model interface {
	// Choose returns one run id from active (non-empty).
	Choose(active []int) int
	// Name identifies the model in reports.
	Name() string
}

// Uniform is the paper's random depletion model.
type Uniform struct {
	R *rng.Stream
}

// Choose implements Model.
func (u *Uniform) Choose(active []int) int {
	return active[u.R.Intn(len(active))]
}

// Name implements Model.
func (u *Uniform) Name() string { return "uniform" }

// Skewed weights runs by a Zipf law over run id rank within the active
// set, modelling merges where record distributions favour some runs.
type Skewed struct {
	R     *rng.Stream
	Theta float64

	zipf *rng.Zipf
}

// Choose implements Model.
func (s *Skewed) Choose(active []int) int {
	if s.zipf == nil || s.zipf.N() != len(active) {
		s.zipf = rng.NewZipf(len(active), s.Theta)
	}
	return active[s.zipf.Draw(s.R)]
}

// Name implements Model.
func (s *Skewed) Name() string { return fmt.Sprintf("zipf(%.2f)", s.Theta) }

// Lookahead is implemented by models that know their future choices —
// replayed traces do, random models do not. Peek(0) is the choice the
// next Choose will consider first.
type Lookahead interface {
	// Peek returns the run id `ahead` positions into the future, and
	// whether it exists.
	Peek(ahead int) (run int, ok bool)
}

// Sequence replays a fixed depletion order, e.g. a trace captured from a
// real record-level merge. When an entry names a run that is no longer
// active (or the trace is exhausted) it falls back to the first active
// run, so short or slightly inconsistent traces still terminate.
type Sequence struct {
	Runs []int

	pos int
}

// Peek implements Lookahead.
func (s *Sequence) Peek(ahead int) (int, bool) {
	if ahead < 0 {
		return 0, false
	}
	i := s.pos + ahead
	if i >= len(s.Runs) {
		return 0, false
	}
	return s.Runs[i], true
}

// Choose implements Model.
func (s *Sequence) Choose(active []int) int {
	for s.pos < len(s.Runs) {
		r := s.Runs[s.pos]
		s.pos++
		for _, a := range active {
			if a == r {
				return r
			}
		}
	}
	return active[0]
}

// Name implements Model.
func (s *Sequence) Name() string { return "sequence" }

// Position returns how many trace entries have been consumed.
func (s *Sequence) Position() int { return s.pos }
