package workload

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestUniformChoosesAllRuns(t *testing.T) {
	u := &Uniform{R: rng.New(1)}
	active := []int{3, 7, 11, 19}
	counts := map[int]int{}
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[u.Choose(active)]++
	}
	if len(counts) != len(active) {
		t.Fatalf("only %d of %d runs chosen", len(counts), len(active))
	}
	want := float64(draws) / float64(len(active))
	for r, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("run %d chosen %d times, want ~%v", r, c, want)
		}
	}
	if u.Name() != "uniform" {
		t.Fatal("name wrong")
	}
}

func TestUniformChoosesMember(t *testing.T) {
	u := &Uniform{R: rng.New(2)}
	active := []int{42}
	for i := 0; i < 100; i++ {
		if u.Choose(active) != 42 {
			t.Fatal("chose non-member")
		}
	}
}

func TestSkewedFavoursEarlyRuns(t *testing.T) {
	s := &Skewed{R: rng.New(3), Theta: 1.0}
	active := []int{0, 1, 2, 3, 4, 5, 6, 7}
	counts := map[int]int{}
	for i := 0; i < 50000; i++ {
		counts[s.Choose(active)]++
	}
	if !(counts[0] > counts[3] && counts[3] > counts[7]) {
		t.Fatalf("skew not monotone: %v", counts)
	}
	if s.Name() != "zipf(1.00)" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestSkewedAdaptsToShrinkingActiveSet(t *testing.T) {
	s := &Skewed{R: rng.New(4), Theta: 0.5}
	got := s.Choose([]int{1, 2, 3, 4})
	if got < 1 || got > 4 {
		t.Fatalf("chose %d", got)
	}
	got = s.Choose([]int{9, 10}) // smaller set: sampler must rebuild
	if got != 9 && got != 10 {
		t.Fatalf("chose %d from {9,10}", got)
	}
}

func TestSequenceReplaysTrace(t *testing.T) {
	s := &Sequence{Runs: []int{2, 0, 1, 2}}
	active := []int{0, 1, 2}
	want := []int{2, 0, 1, 2}
	for i, w := range want {
		if got := s.Choose(active); got != w {
			t.Fatalf("step %d: got %d, want %d", i, got, w)
		}
	}
	if s.Position() != 4 {
		t.Fatalf("position = %d", s.Position())
	}
}

func TestSequenceSkipsInactiveEntries(t *testing.T) {
	s := &Sequence{Runs: []int{5, 1}}
	got := s.Choose([]int{0, 1}) // 5 inactive, skip to 1
	if got != 1 {
		t.Fatalf("got %d, want 1", got)
	}
}

func TestSequenceExhaustedFallsBack(t *testing.T) {
	s := &Sequence{Runs: nil}
	if got := s.Choose([]int{7, 8}); got != 7 {
		t.Fatalf("exhausted fallback = %d, want first active", got)
	}
	if s.Name() != "sequence" {
		t.Fatal("name wrong")
	}
}

func TestSequencePeekDirect(t *testing.T) {
	s := &Sequence{Runs: []int{3, 1, 4}}
	if r, ok := s.Peek(0); !ok || r != 3 {
		t.Fatalf("Peek(0) = %d,%v", r, ok)
	}
	if r, ok := s.Peek(2); !ok || r != 4 {
		t.Fatalf("Peek(2) = %d,%v", r, ok)
	}
	if _, ok := s.Peek(3); ok {
		t.Fatal("Peek past end succeeded")
	}
	if _, ok := s.Peek(-1); ok {
		t.Fatal("negative Peek succeeded")
	}
	s.Choose([]int{1, 3, 4})
	if r, ok := s.Peek(0); !ok || r != 1 {
		t.Fatalf("Peek after Choose = %d,%v", r, ok)
	}
	// Sequence satisfies the Lookahead contract.
	var _ Lookahead = s
}
