package sim

import "fmt"

// Time is a point on (or a span of) the simulated clock, in milliseconds.
// Milliseconds are the natural unit of the paper's disk model (seek,
// rotation and transfer are all quoted in ms), so the library uses them
// throughout and offers helpers for display in seconds.
//
//detlint:unit ms
type Time float64

// Common spans.
const (
	Millisecond Time = 1
	Second      Time = 1000
)

// Ms constructs a Time from a millisecond count.
func Ms(ms float64) Time { return Time(ms) }

// Seconds reports t as a float64 count of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1000 }

// Milliseconds reports t as a float64 count of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) }

// String formats t adaptively: sub-second values in ms, larger in s.
func (t Time) String() string {
	if t < Second && t > -Second {
		return fmt.Sprintf("%.4gms", float64(t))
	}
	return fmt.Sprintf("%.4gs", t.Seconds())
}
