package sim

import (
	"math"
	"strings"
	"testing"
)

func TestResourceExclusive(t *testing.T) {
	k := New()
	r := k.NewResource(1)
	var log []string
	worker := func(name string, hold Time) func(p *Proc) {
		return func(p *Proc) {
			p.Acquire(r)
			log = append(log, name+"-in")
			p.Sleep(hold)
			log = append(log, name+"-out")
			r.Release()
		}
	}
	k.Spawn("a", worker("a", 10))
	k.Spawn("b", worker("b", 10))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a-in", "a-out", "b-in", "b-out"}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
	if k.Now() != 20 {
		t.Fatalf("finished at %v, want 20", k.Now())
	}
}

func TestResourceFCFS(t *testing.T) {
	k := New()
	r := k.NewResource(1)
	var order []int
	// Holder occupies [0, 10); three waiters arrive at 1, 2, 3.
	k.Spawn("holder", func(p *Proc) {
		p.Acquire(r)
		p.Sleep(10)
		r.Release()
	})
	for i := 1; i <= 3; i++ {
		i := i
		k.Spawn("w", func(p *Proc) {
			p.Sleep(Time(i))
			p.Acquire(r)
			order = append(order, i)
			p.Sleep(1)
			r.Release()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("acquisition order = %v, want FCFS", order)
		}
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	k := New()
	r := k.NewResource(2)
	maxInUse := 0
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(p *Proc) {
			p.Acquire(r)
			if r.InUse() > maxInUse {
				maxInUse = r.InUse()
			}
			p.Sleep(10)
			r.Release()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInUse != 2 {
		t.Fatalf("max in use = %d, want 2", maxInUse)
	}
	// 5 holders, 10 each, 2 servers: 3 rounds -> 30.
	if k.Now() != 30 {
		t.Fatalf("finished at %v, want 30", k.Now())
	}
}

func TestTryAcquire(t *testing.T) {
	k := New()
	r := k.NewResource(1)
	var got []bool
	k.Spawn("a", func(p *Proc) {
		got = append(got, r.TryAcquire())
		got = append(got, r.TryAcquire())
		r.Release()
		got = append(got, r.TryAcquire())
		r.Release()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TryAcquire results = %v", got)
		}
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	k := New()
	r := k.NewResource(1)
	panicked := false
	k.At(0, func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		r.Release()
	})
	_ = k.Run()
	if !panicked {
		t.Fatal("Release of idle resource did not panic")
	}
}

func TestResourceUtilization(t *testing.T) {
	k := New()
	r := k.NewResource(1)
	k.Spawn("a", func(p *Proc) {
		p.Sleep(10)
		p.Acquire(r)
		p.Sleep(10) // busy [10, 20)
		r.Release()
		p.Sleep(20) // idle to 40
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if u := r.Utilization(); math.Abs(u-0.25) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
}

func TestResourceMeanWait(t *testing.T) {
	k := New()
	r := k.NewResource(1)
	k.Spawn("holder", func(p *Proc) {
		p.Acquire(r)
		p.Sleep(10)
		r.Release()
	})
	k.Spawn("waiter", func(p *Proc) {
		p.Sleep(2)
		p.Acquire(r) // waits 8
		r.Release()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.MeanWait(); math.Abs(float64(got)-4) > 1e-9 { // (0+8)/2
		t.Fatalf("mean wait = %v, want 4", got)
	}
	if r.Acquired() != 2 {
		t.Fatalf("acquired = %d", r.Acquired())
	}
}

func TestResourceAccessorsAndValidation(t *testing.T) {
	k := New()
	r := k.NewResource(3)
	if r.Capacity() != 3 || r.QueueLen() != 0 {
		t.Fatalf("capacity/queue = %d/%d", r.Capacity(), r.QueueLen())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewResource(0) did not panic")
		}
	}()
	k.NewResource(0)
}

func TestProcKernelAccessor(t *testing.T) {
	k := New()
	var got *Kernel
	k.Spawn("p", func(p *Proc) { got = p.Kernel() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != k {
		t.Fatal("Proc.Kernel returned wrong kernel")
	}
}

func TestWriterTracer(t *testing.T) {
	var sb strings.Builder
	tr := WriterTracer{W: &sb}
	tr.Event(12.5, "proc-start", "cpu")
	if !strings.Contains(sb.String(), "proc-start") || !strings.Contains(sb.String(), "cpu") {
		t.Fatalf("tracer output %q", sb.String())
	}
}

func TestWakeFinishedProcPanics(t *testing.T) {
	k := New()
	var proc *Proc
	k.Spawn("p", func(p *Proc) { proc = p })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("waking finished proc did not panic")
		}
	}()
	proc.wake()
}
