package sim

import "fmt"

// Proc is a simulation process: a goroutine whose execution is
// interleaved with the kernel so that exactly one of (kernel, any
// process) runs at a time. A Proc may only be used from its own body
// function; sharing a Proc across goroutines is a programming error.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	done   bool

	// gen counts parks; wakers capture it so a waker left behind by an
	// abandoned registration (AwaitAny, AwaitTimeout, WaitFor loops)
	// can never wake a later, unrelated park.
	gen uint64

	// wakeFn caches the wake method value: Sleep is the hottest process
	// operation and would otherwise allocate a fresh closure per call.
	wakeFn func()
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the process name given to Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.k.now }

// Spawn creates a process and schedules its body to start at the current
// time (after already-pending events at this timestamp). The body runs
// under kernel control: when it blocks on simulated time or a
// synchronization object, control returns to the kernel; when it
// returns, the process ends.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	p.wakeFn = p.wake
	k.live++
	k.After(0, func() {
		go func() {
			defer func() {
				p.done = true
				k.live--
				if k.trace != nil {
					k.trace.Event(k.now, "proc-end", p.name)
				}
				// Hand control back to whoever resumed us last.
				k.park <- struct{}{}
			}()
			if k.trace != nil {
				k.trace.Event(k.now, "proc-start", p.name)
			}
			body(p)
		}()
		<-k.park // wait for the body to park or finish
	})
	return p
}

// yield parks the process and transfers control back to the kernel (or
// to the event callback that resumed it). The process resumes when some
// event calls wake; the park generation advances so stale wakers from
// this park are invalidated.
func (p *Proc) yield() {
	p.k.park <- struct{}{}
	<-p.resume
	p.gen++
}

// waker returns a single-park wake function: it wakes p only if p is
// still parked on the same park as when waker was created. Synchronization
// objects store wakers, never bare Procs, so abandoned registrations are
// harmless.
func (p *Proc) waker() func() {
	gen := p.gen
	return func() {
		if p.done || p.gen != gen {
			return
		}
		p.wake()
	}
}

// wake resumes a parked process from kernel context (inside an event
// callback) and blocks until the process parks again or ends. It must
// never be called from process context.
func (p *Proc) wake() {
	if p.done {
		panic(fmt.Sprintf("sim: waking finished process %q", p.name))
	}
	p.resume <- struct{}{}
	<-p.k.park
}

// Sleep suspends the process for d simulated time. Sleep(0) yields to
// other events scheduled at the current instant.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: Sleep with negative duration")
	}
	p.k.After(d, p.wakeFn)
	p.yield()
}

// SleepUntil suspends the process until absolute time t (>= now).
func (p *Proc) SleepUntil(t Time) {
	p.k.At(t, p.wakeFn)
	p.yield()
}
