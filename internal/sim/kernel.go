// Package sim is a deterministic process-oriented discrete-event
// simulation kernel. It is the Go substrate standing in for the Rice CSIM
// package the paper's simulator was built on.
//
// The kernel owns a virtual clock and an event calendar. Work is
// expressed either as plain scheduled callbacks (Kernel.At / Kernel.After)
// or as processes: goroutines that run one at a time under the kernel's
// control and may block on simulated time (Proc.Sleep), on one-shot
// completions (Completion), on broadcast signals (Signal), or on FCFS
// resources (Resource).
//
// Determinism: at any instant exactly one goroutine — the kernel's or one
// process's — is runnable; handoffs use unbuffered channels, and
// simultaneous events fire in schedule order (a monotone sequence number
// breaks ties). Two runs of the same program with the same inputs produce
// identical event orderings, which the validation tests rely on.
package sim

import (
	"errors"
	"fmt"
	"sync"
)

// ErrDeadlock is returned by Run when processes remain parked but the
// event calendar is empty: no event can ever wake them.
var ErrDeadlock = errors.New("sim: deadlock: live processes but no pending events")

// ErrStopped is returned by Run when the simulation was halted by Stop
// before the calendar drained.
var ErrStopped = errors.New("sim: stopped")

type event struct {
	at  Time
	seq uint64
	fn  func()
}

// ekey is an event's ordering key. The pending set stores keys and
// callbacks in parallel arrays so ordering comparisons touch a dense
// 16-byte-per-entry key array and moves copy a key and a pointer
// instead of a 24-byte struct.
type ekey struct {
	at  Time
	seq uint64
}

// before orders events by time, then by scheduling order.
func (k ekey) before(o ekey) bool {
	//detlint:allow floatcmp event timestamps are copied, never recomputed, so tie-breaking on exact equality is sound
	if k.at != o.at {
		return k.at < o.at
	}
	return k.seq < o.seq
}

// calendar is the pending-event set, specialized to event so pushes and
// pops never box through `any` or call through a heap.Interface. Two
// structures back it:
//
//   - sorted: parallel key/callback arrays held ascending by (at, seq)
//     with a read cursor. Chained block deliveries keep the pending set
//     in the single digits (about one timed event per busy disk plus
//     the merge's own timer), and at that size a sorted array beats any
//     heap: pop is a cursor bump, and a push is usually a plain append
//     because new events land later than everything already pending.
//   - fifo: a ring of events scheduled AT the current instant while the
//     clock already stands there. Wakers, signal broadcasts and
//     completion callbacks all schedule at the current time (After(0)),
//     which is the hottest path of a process-oriented simulation; those
//     events append and pop in O(1) without disturbing the sorted set.
//
// The fifo invariant: every buffered event has at == the clock's current
// instant, and its seq is greater than any event pushed earlier. The
// clock cannot advance while the fifo is non-empty (its events are never
// later than any sorted-set event), so the invariant is stable; ordering
// between the fifo front and the sorted-set head is decided by (at, seq)
// as it would be in a single queue.
type calendar struct {
	hkey  []ekey   // pending keys, ascending by (at, seq); live in [hhead:]
	hfn   []func() // pending callbacks, parallel to hkey
	hhead int      // sorted-set read cursor
	fifo  []event
	head  int // fifo read cursor
}

func (c *calendar) len() int { return len(c.hkey) - c.hhead + len(c.fifo) - c.head }

// nextAt returns the timestamp of the earliest pending event. The fifo,
// when non-empty, holds events at the current instant, which no timed
// event can precede.
func (c *calendar) nextAt() Time {
	if c.head < len(c.fifo) {
		return c.fifo[c.head].at
	}
	return c.hkey[c.hhead].at
}

// push inserts e scheduled from the current instant now. Same-instant
// events take the fifo unless the ring holds events from another
// instant (only possible after RunUntil rewound the clock to an earlier
// horizon); those fall through to the sorted set, which orders anything.
func (c *calendar) push(e event, now Time) {
	//detlint:allow floatcmp same-instant FIFO admission compares copied timestamps; exact equality is the intended semantics
	if e.at == now && (len(c.fifo) == c.head || c.fifo[len(c.fifo)-1].at == e.at) {
		//detlint:allow hotalloc amortized: the FIFO ring reaches steady-state capacity and is reused
		c.fifo = append(c.fifo, e)
		return
	}
	if c.hhead > 32 && c.hhead > len(c.hkey)-c.hhead {
		c.compact()
	}
	k := ekey{at: e.at, seq: e.seq}
	kk := c.hkey
	// Tail fast path: later than everything pending (the common case —
	// handlers schedule their next event a service time into the future).
	if n := len(kk); n == c.hhead || !k.before(kk[n-1]) {
		//detlint:allow hotalloc amortized: the pending-set arrays reach steady-state capacity and are reused
		c.hkey = append(kk, k)
		//detlint:allow hotalloc amortized: grows in lockstep with hkey above
		c.hfn = append(c.hfn, e.fn)
		return
	}
	// Head fast path: earlier than everything pending, with slack from
	// earlier pops to absorb it without moving anything.
	if c.hhead > 0 && k.before(kk[c.hhead]) {
		c.hhead--
		kk[c.hhead] = k
		c.hfn[c.hhead] = e.fn
		return
	}
	// General insert: scan from the tail and shift the later suffix up
	// one slot. The pending set stays tiny, so the shift is a handful of
	// element copies.
	//detlint:allow hotalloc amortized: the pending-set arrays reach steady-state capacity and are reused
	c.hkey = append(kk, ekey{})
	//detlint:allow hotalloc amortized: grows in lockstep with hkey above
	c.hfn = append(c.hfn, nil)
	kk, fns := c.hkey, c.hfn
	i := len(kk) - 1
	for i > c.hhead && k.before(kk[i-1]) {
		kk[i] = kk[i-1]
		fns[i] = fns[i-1]
		i--
	}
	kk[i] = k
	fns[i] = e.fn
}

// compact slides the live region down over the consumed prefix so the
// backing arrays stop growing while the set merely turns over.
func (c *calendar) compact() {
	n := copy(c.hkey, c.hkey[c.hhead:])
	copy(c.hfn, c.hfn[c.hhead:])
	clear(c.hfn[n:]) // drop stale closure references
	c.hkey = c.hkey[:n]
	c.hfn = c.hfn[:n]
	c.hhead = 0
}

// pop removes and returns the earliest pending event (ties broken by
// schedule order). len() must be positive.
func (c *calendar) pop() event {
	if c.head < len(c.fifo) {
		// The sorted-set head can only precede the fifo front when both
		// sit at the same instant and the timed event was scheduled
		// earlier.
		f := &c.fifo[c.head]
		if len(c.hkey) == c.hhead || (ekey{at: f.at, seq: f.seq}).before(c.hkey[c.hhead]) {
			e := *f
			c.head++
			if c.head == len(c.fifo) {
				// Drained: clear stale closure references and reuse the ring.
				clear(c.fifo)
				c.fifo = c.fifo[:0]
				c.head = 0
			}
			return e
		}
	}
	return c.popSorted()
}

func (c *calendar) popSorted() event {
	h := c.hhead
	e := event{at: c.hkey[h].at, seq: c.hkey[h].seq, fn: c.hfn[h]}
	c.hfn[h] = nil // drop the closure reference
	h++
	if h == len(c.hkey) {
		// Drained: reuse the arrays from the start.
		c.hkey = c.hkey[:0]
		c.hfn = c.hfn[:0]
		h = 0
	}
	c.hhead = h
	return e
}

// calendarPool recycles drained backing arrays across kernels: a sweep
// creates one kernel per simulation point × trial, and reusing grown
// arrays spares every new kernel the append-regrowth ramp.
var calendarPool = sync.Pool{New: func() any { return new(calendar) }}

// release returns a drained calendar's storage to the pool. The arrays
// were cleared as they drained, so no event closures are retained.
func (c *calendar) release() {
	if c.hkey == nil && c.fifo == nil {
		return
	}
	//detlint:allow hotalloc once per kernel run, after the dispatch loop has drained
	recycled := &calendar{hkey: c.hkey[:0], hfn: c.hfn[:0], fifo: c.fifo[:0]}
	c.hkey, c.hfn, c.hhead, c.fifo, c.head = nil, nil, 0, nil, 0
	calendarPool.Put(recycled)
}

// Kernel is a single simulated timeline. A Kernel and everything
// scheduled on it must be used from one OS thread of control at a time;
// the process mechanism enforces this for processes it manages.
type Kernel struct {
	now     Time
	cal     calendar
	seq     uint64
	stopped bool

	// park is the rendezvous on which a running process hands control
	// back to the kernel (or to whichever event callback resumed it).
	park chan struct{}

	// live counts processes that have started and not yet finished.
	live int

	trace Tracer
}

// New returns an empty kernel with the clock at zero.
func New() *Kernel {
	k := &Kernel{park: make(chan struct{})}
	k.cal = *calendarPool.Get().(*calendar)
	return k
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// SetTracer installs t to observe kernel activity; nil disables tracing.
func (k *Kernel) SetTracer(t Tracer) { k.trace = t }

// Tracer returns the installed tracer, or nil.
func (k *Kernel) Tracer() Tracer { return k.trace }

// Retain registers an event-driven actor with the kernel's liveness
// accounting. A retained actor counts exactly like a spawned process:
// if the calendar drains while any actor is still retained, Run reports
// ErrDeadlock instead of silently ending with work outstanding. State
// machines dispatched directly on the calendar (the event-mode merge
// engine) call Retain at start and Release when they reach a terminal
// state.
func (k *Kernel) Retain() { k.live++ }

// Release undoes one Retain.
func (k *Kernel) Release() { k.live-- }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it would silently reorder the timeline.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	k.cal.push(event{at: t, seq: k.seq, fn: fn}, k.now)
}

// After schedules fn to run d from now. Negative d panics.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// Stop halts the run loop after the current event completes. Pending
// events are dropped; parked processes are abandoned (their goroutines
// are left blocked and will be collected when unreachable — callers that
// need clean teardown should drain instead of stopping).
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in timestamp order until the calendar is empty.
// It returns nil on a drained calendar with no live processes,
// ErrDeadlock if processes remain parked with nothing to wake them, and
// ErrStopped if Stop was called.
func (k *Kernel) Run() error { return k.RunUntil(-1) }

// RunUntil executes events with timestamps <= horizon (a negative horizon
// means "forever"). The clock never advances past the last executed
// event; if the calendar still holds later events when the horizon is
// reached, RunUntil sets the clock to the horizon and returns nil.
//
//detlint:hotpath
func (k *Kernel) RunUntil(horizon Time) error {
	for k.cal.len() > 0 {
		if k.stopped {
			return ErrStopped
		}
		if horizon >= 0 && k.cal.nextAt() > horizon {
			k.now = horizon
			return nil
		}
		e := k.cal.pop()
		k.now = e.at
		e.fn()
	}
	k.cal.release()
	if k.stopped {
		return ErrStopped
	}
	if k.live > 0 {
		return ErrDeadlock
	}
	return nil
}
