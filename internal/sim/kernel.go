// Package sim is a deterministic process-oriented discrete-event
// simulation kernel. It is the Go substrate standing in for the Rice CSIM
// package the paper's simulator was built on.
//
// The kernel owns a virtual clock and an event calendar. Work is
// expressed either as plain scheduled callbacks (Kernel.At / Kernel.After)
// or as processes: goroutines that run one at a time under the kernel's
// control and may block on simulated time (Proc.Sleep), on one-shot
// completions (Completion), on broadcast signals (Signal), or on FCFS
// resources (Resource).
//
// Determinism: at any instant exactly one goroutine — the kernel's or one
// process's — is runnable; handoffs use unbuffered channels, and
// simultaneous events fire in schedule order (a monotone sequence number
// breaks ties). Two runs of the same program with the same inputs produce
// identical event orderings, which the validation tests rely on.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// ErrDeadlock is returned by Run when processes remain parked but the
// event calendar is empty: no event can ever wake them.
var ErrDeadlock = errors.New("sim: deadlock: live processes but no pending events")

// ErrStopped is returned by Run when the simulation was halted by Stop
// before the calendar drained.
var ErrStopped = errors.New("sim: stopped")

type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap orders events by time, then by scheduling order.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }

// Kernel is a single simulated timeline. A Kernel and everything
// scheduled on it must be used from one OS thread of control at a time;
// the process mechanism enforces this for processes it manages.
type Kernel struct {
	now     Time
	cal     eventHeap
	seq     uint64
	stopped bool

	// park is the rendezvous on which a running process hands control
	// back to the kernel (or to whichever event callback resumed it).
	park chan struct{}

	// live counts processes that have started and not yet finished.
	live int

	trace Tracer
}

// New returns an empty kernel with the clock at zero.
func New() *Kernel {
	return &Kernel{park: make(chan struct{})}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// SetTracer installs t to observe kernel activity; nil disables tracing.
func (k *Kernel) SetTracer(t Tracer) { k.trace = t }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it would silently reorder the timeline.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	k.cal.pushEvent(event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d from now. Negative d panics.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// Stop halts the run loop after the current event completes. Pending
// events are dropped; parked processes are abandoned (their goroutines
// are left blocked and will be collected when unreachable — callers that
// need clean teardown should drain instead of stopping).
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in timestamp order until the calendar is empty.
// It returns nil on a drained calendar with no live processes,
// ErrDeadlock if processes remain parked with nothing to wake them, and
// ErrStopped if Stop was called.
func (k *Kernel) Run() error { return k.RunUntil(-1) }

// RunUntil executes events with timestamps <= horizon (a negative horizon
// means "forever"). The clock never advances past the last executed
// event; if the calendar still holds later events when the horizon is
// reached, RunUntil sets the clock to the horizon and returns nil.
func (k *Kernel) RunUntil(horizon Time) error {
	for len(k.cal) > 0 {
		if k.stopped {
			return ErrStopped
		}
		if horizon >= 0 && k.cal.peek().at > horizon {
			k.now = horizon
			return nil
		}
		e := k.cal.popEvent()
		k.now = e.at
		e.fn()
	}
	if k.stopped {
		return ErrStopped
	}
	if k.live > 0 {
		return ErrDeadlock
	}
	return nil
}
