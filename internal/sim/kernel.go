// Package sim is a deterministic process-oriented discrete-event
// simulation kernel. It is the Go substrate standing in for the Rice CSIM
// package the paper's simulator was built on.
//
// The kernel owns a virtual clock and an event calendar. Work is
// expressed either as plain scheduled callbacks (Kernel.At / Kernel.After)
// or as processes: goroutines that run one at a time under the kernel's
// control and may block on simulated time (Proc.Sleep), on one-shot
// completions (Completion), on broadcast signals (Signal), or on FCFS
// resources (Resource).
//
// Determinism: at any instant exactly one goroutine — the kernel's or one
// process's — is runnable; handoffs use unbuffered channels, and
// simultaneous events fire in schedule order (a monotone sequence number
// breaks ties). Two runs of the same program with the same inputs produce
// identical event orderings, which the validation tests rely on.
package sim

import (
	"errors"
	"fmt"
	"sync"
)

// ErrDeadlock is returned by Run when processes remain parked but the
// event calendar is empty: no event can ever wake them.
var ErrDeadlock = errors.New("sim: deadlock: live processes but no pending events")

// ErrStopped is returned by Run when the simulation was halted by Stop
// before the calendar drained.
var ErrStopped = errors.New("sim: stopped")

type event struct {
	at  Time
	seq uint64
	fn  func()
}

// before orders events by time, then by scheduling order.
func (e event) before(o event) bool {
	//detlint:allow floatcmp event timestamps are copied, never recomputed, so tie-breaking on exact equality is sound
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// calendar is the pending-event set, specialized to event so pushes and
// pops never box through `any` or call through a heap.Interface. Two
// structures back it:
//
//   - heap: an inline 4-ary min-heap on (at, seq). 4-ary beats binary
//     here because sift-down touches one cache line of children per
//     level and the tree is half as deep.
//   - fifo: a ring of events scheduled AT the current instant while the
//     clock already stands there. Wakers, signal broadcasts and
//     completion callbacks all schedule at the current time (After(0)),
//     which is the hottest path of a process-oriented simulation; those
//     events append and pop in O(1) without disturbing the heap.
//
// The fifo invariant: every buffered event has at == the clock's current
// instant, and its seq is greater than any event pushed earlier. The
// clock cannot advance while the fifo is non-empty (its events are never
// later than any heap event), so the invariant is stable; ordering
// between the fifo front and the heap top is decided by (at, seq) as it
// would be in a single heap.
type calendar struct {
	heap []event
	fifo []event
	head int // fifo read cursor
}

func (c *calendar) len() int { return len(c.heap) + len(c.fifo) - c.head }

// nextAt returns the timestamp of the earliest pending event. The fifo,
// when non-empty, holds events at the current instant, which no heap
// event can precede.
func (c *calendar) nextAt() Time {
	if c.head < len(c.fifo) {
		return c.fifo[c.head].at
	}
	return c.heap[0].at
}

// push inserts e scheduled from the current instant now. Same-instant
// events take the fifo unless the ring holds events from another
// instant (only possible after RunUntil rewound the clock to an earlier
// horizon); those fall through to the heap, which orders anything.
func (c *calendar) push(e event, now Time) {
	//detlint:allow floatcmp same-instant FIFO admission compares copied timestamps; exact equality is the intended semantics
	if e.at == now && (len(c.fifo) == c.head || c.fifo[len(c.fifo)-1].at == e.at) {
		c.fifo = append(c.fifo, e)
		return
	}
	c.heap = append(c.heap, event{})
	i := len(c.heap) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.before(c.heap[p]) {
			break
		}
		c.heap[i] = c.heap[p]
		i = p
	}
	c.heap[i] = e
}

// pop removes and returns the earliest pending event (ties broken by
// schedule order). len() must be positive.
func (c *calendar) pop() event {
	if c.head < len(c.fifo) {
		// The heap top can only precede the fifo front when both sit at
		// the same instant and the heap event was scheduled earlier.
		if len(c.heap) == 0 || c.fifo[c.head].before(c.heap[0]) {
			e := c.fifo[c.head]
			c.head++
			if c.head == len(c.fifo) {
				// Drained: clear stale closure references and reuse the ring.
				clear(c.fifo)
				c.fifo = c.fifo[:0]
				c.head = 0
			}
			return e
		}
	}
	return c.popHeap()
}

func (c *calendar) popHeap() event {
	h := c.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // drop the closure reference
	h = h[:n]
	c.heap = h
	if n > 0 {
		i := 0
		for {
			child := i<<2 + 1
			if child >= n {
				break
			}
			m := child
			end := child + 4
			if end > n {
				end = n
			}
			for j := child + 1; j < end; j++ {
				if h[j].before(h[m]) {
					m = j
				}
			}
			if !h[m].before(last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return top
}

// calendarPool recycles drained backing arrays across kernels: a sweep
// creates one kernel per simulation point × trial, and reusing grown
// arrays spares every new kernel the append-regrowth ramp.
var calendarPool = sync.Pool{New: func() any { return new(calendar) }}

// release returns a drained calendar's storage to the pool. The arrays
// were cleared as they drained, so no event closures are retained.
func (c *calendar) release() {
	if c.heap == nil && c.fifo == nil {
		return
	}
	recycled := &calendar{heap: c.heap[:0], fifo: c.fifo[:0]}
	c.heap, c.fifo, c.head = nil, nil, 0
	calendarPool.Put(recycled)
}

// Kernel is a single simulated timeline. A Kernel and everything
// scheduled on it must be used from one OS thread of control at a time;
// the process mechanism enforces this for processes it manages.
type Kernel struct {
	now     Time
	cal     calendar
	seq     uint64
	stopped bool

	// park is the rendezvous on which a running process hands control
	// back to the kernel (or to whichever event callback resumed it).
	park chan struct{}

	// live counts processes that have started and not yet finished.
	live int

	trace Tracer
}

// New returns an empty kernel with the clock at zero.
func New() *Kernel {
	k := &Kernel{park: make(chan struct{})}
	k.cal = *calendarPool.Get().(*calendar)
	return k
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// SetTracer installs t to observe kernel activity; nil disables tracing.
func (k *Kernel) SetTracer(t Tracer) { k.trace = t }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it would silently reorder the timeline.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	k.cal.push(event{at: t, seq: k.seq, fn: fn}, k.now)
}

// After schedules fn to run d from now. Negative d panics.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// Stop halts the run loop after the current event completes. Pending
// events are dropped; parked processes are abandoned (their goroutines
// are left blocked and will be collected when unreachable — callers that
// need clean teardown should drain instead of stopping).
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in timestamp order until the calendar is empty.
// It returns nil on a drained calendar with no live processes,
// ErrDeadlock if processes remain parked with nothing to wake them, and
// ErrStopped if Stop was called.
func (k *Kernel) Run() error { return k.RunUntil(-1) }

// RunUntil executes events with timestamps <= horizon (a negative horizon
// means "forever"). The clock never advances past the last executed
// event; if the calendar still holds later events when the horizon is
// reached, RunUntil sets the clock to the horizon and returns nil.
func (k *Kernel) RunUntil(horizon Time) error {
	for k.cal.len() > 0 {
		if k.stopped {
			return ErrStopped
		}
		if horizon >= 0 && k.cal.nextAt() > horizon {
			k.now = horizon
			return nil
		}
		e := k.cal.pop()
		k.now = e.at
		e.fn()
	}
	k.cal.release()
	if k.stopped {
		return ErrStopped
	}
	if k.live > 0 {
		return ErrDeadlock
	}
	return nil
}
