package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// Example demonstrates the process-oriented kernel: two processes
// sharing a unit resource under simulated time.
func Example() {
	k := sim.New()
	server := k.NewResource(1)

	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("client-%d", i)
		k.Spawn(name, func(p *sim.Proc) {
			p.Acquire(server)
			p.Sleep(10 * sim.Millisecond)
			fmt.Printf("%s served at %v\n", p.Name(), p.Now())
			server.Release()
		})
	}
	if err := k.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("utilization: %.0f%%\n", 100*server.Utilization())
	// Output:
	// client-0 served at 10ms
	// client-1 served at 20ms
	// utilization: 100%
}

// ExampleCompletion shows one-shot synchronization between processes.
func ExampleCompletion() {
	k := sim.New()
	done := k.NewCompletion()

	k.Spawn("io", func(p *sim.Proc) {
		p.Sleep(25)
		done.Complete()
	})
	k.Spawn("cpu", func(p *sim.Proc) {
		p.Await(done)
		fmt.Printf("resumed at %v\n", p.Now())
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	// Output:
	// resumed at 25ms
}
