package sim

import (
	"testing"
)

func TestProcSleepAdvancesClock(t *testing.T) {
	k := New()
	var wake Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(42)
		wake = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != 42 {
		t.Fatalf("woke at %v, want 42", wake)
	}
}

func TestProcSequentialSleeps(t *testing.T) {
	k := New()
	var marks []Time
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(10)
			marks = append(marks, p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 20, 30, 40}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	k := New()
	var log []string
	k.Spawn("a", func(p *Proc) {
		p.Sleep(1)
		log = append(log, "a1")
		p.Sleep(2) // wakes at 3
		log = append(log, "a3")
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(2)
		log = append(log, "b2")
		p.Sleep(1) // wakes at 3, scheduled after a's wake
		log = append(log, "b3")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b2", "a3", "b3"}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := New()
	var childAt Time
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(5)
		k.Spawn("child", func(c *Proc) {
			c.Sleep(5)
			childAt = c.Now()
		})
		p.Sleep(1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != 10 {
		t.Fatalf("child finished at %v, want 10", childAt)
	}
}

func TestSleepZeroYields(t *testing.T) {
	k := New()
	var log []string
	k.Spawn("a", func(p *Proc) {
		log = append(log, "a-pre")
		p.Sleep(0)
		log = append(log, "a-post")
	})
	k.Spawn("b", func(p *Proc) {
		log = append(log, "b")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// a starts first, parks on Sleep(0); b runs; then a resumes.
	want := []string{"a-pre", "b", "a-post"}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestSleepNegativePanics(t *testing.T) {
	k := New()
	panicked := false
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		p.Sleep(-1)
	})
	_ = k.Run()
	if !panicked {
		t.Fatal("Sleep(-1) did not panic")
	}
}

func TestSleepUntil(t *testing.T) {
	k := New()
	var at Time
	k.Spawn("p", func(p *Proc) {
		p.SleepUntil(17)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 17 {
		t.Fatalf("woke at %v", at)
	}
}

func TestCompletionAwait(t *testing.T) {
	k := New()
	c := k.NewCompletion()
	var awaitedAt Time
	k.Spawn("waiter", func(p *Proc) {
		p.Await(c)
		awaitedAt = p.Now()
	})
	k.Spawn("completer", func(p *Proc) {
		p.Sleep(9)
		c.Complete()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if awaitedAt != 9 {
		t.Fatalf("waiter resumed at %v, want 9", awaitedAt)
	}
	if !c.Done() || c.At() != 9 {
		t.Fatalf("completion state: done=%v at=%v", c.Done(), c.At())
	}
}

func TestAwaitAlreadyComplete(t *testing.T) {
	k := New()
	c := k.NewCompletion()
	var at Time = -1
	k.Spawn("completer", func(p *Proc) {
		c.Complete()
	})
	k.Spawn("late", func(p *Proc) {
		p.Sleep(5)
		p.Await(c) // must not park
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5 {
		t.Fatalf("late waiter resumed at %v, want 5", at)
	}
}

func TestAwaitAllWaitsForLatest(t *testing.T) {
	k := New()
	c1, c2, c3 := k.NewCompletion(), k.NewCompletion(), k.NewCompletion()
	k.At(3, c1.Complete)
	k.At(8, c2.Complete)
	k.At(5, c3.Complete)
	var at Time
	k.Spawn("w", func(p *Proc) {
		p.AwaitAll(c1, c2, c3)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 8 {
		t.Fatalf("AwaitAll resumed at %v, want 8", at)
	}
}

func TestCompleteTwicePanics(t *testing.T) {
	k := New()
	c := k.NewCompletion()
	panicked := false
	k.At(1, func() {
		c.Complete()
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		c.Complete()
	})
	_ = k.Run()
	if !panicked {
		t.Fatal("double Complete did not panic")
	}
}

func TestSignalBroadcastWakesAll(t *testing.T) {
	k := New()
	s := k.NewSignal()
	woke := 0
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(p *Proc) {
			p.Wait(s)
			woke++
		})
	}
	k.At(4, s.Broadcast)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 3 {
		t.Fatalf("woke %d, want 3", woke)
	}
}

func TestSignalNoMemory(t *testing.T) {
	k := New()
	s := k.NewSignal()
	k.At(1, s.Broadcast) // nobody waiting: must be lost
	deadlocked := false
	k.Spawn("late", func(p *Proc) {
		p.Sleep(2)
		p.Wait(s) // no further broadcast: deadlock expected
	})
	err := k.Run()
	if err == ErrDeadlock {
		deadlocked = true
	}
	if !deadlocked {
		t.Fatalf("expected deadlock, got %v", err)
	}
}

func TestWaitForRechecks(t *testing.T) {
	k := New()
	s := k.NewSignal()
	n := 0
	var at Time
	k.Spawn("w", func(p *Proc) {
		p.WaitFor(s, func() bool { return n >= 3 })
		at = p.Now()
	})
	for i := 1; i <= 5; i++ {
		tt := Time(i)
		k.At(tt, func() { n++; s.Broadcast() })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 3 {
		t.Fatalf("WaitFor satisfied at %v, want 3", at)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := New()
	c := k.NewCompletion()
	k.Spawn("stuck", func(p *Proc) {
		p.Await(c) // never completed
	})
	if err := k.Run(); err != ErrDeadlock {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestTracerSeesProcLifecycle(t *testing.T) {
	k := New()
	tr := NewCountingTracer()
	k.SetTracer(tr)
	k.Spawn("p", func(p *Proc) { p.Sleep(1) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.Counts["proc-start"] != 1 || tr.Counts["proc-end"] != 1 {
		t.Fatalf("tracer counts = %v", tr.Counts)
	}
}
