package sim

// Resource is a counted resource with a FCFS wait queue, in the style of
// CSIM facilities. Acquire parks the calling process until one of the
// capacity units is free; Release hands the unit to the longest-waiting
// process, if any.
//
// The disk model implements its own queueing (it needs per-request
// service times computed at dispatch), so Resource mostly serves user
// code built on the library: bounded channels to memory, CPU pools, etc.
type Resource struct {
	k        *Kernel
	capacity int
	inUse    int
	queue    []*Proc

	// Accumulated statistics.
	acquired   int64
	waited     int64
	waitTime   Time
	busyTime   Time
	lastChange Time
}

// NewResource returns a resource with the given capacity (> 0).
func (k *Kernel) NewResource(capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: NewResource with capacity <= 0")
	}
	return &Resource{k: k, capacity: capacity}
}

// Capacity returns the configured number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of parked acquirers.
func (r *Resource) QueueLen() int { return len(r.queue) }

func (r *Resource) accumulate() {
	r.busyTime += Time(r.inUse) * (r.k.now - r.lastChange)
	r.lastChange = r.k.now
}

// Acquire obtains one unit, parking p FCFS behind earlier waiters.
func (p *Proc) Acquire(r *Resource) {
	r.acquired++
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.accumulate()
		r.inUse++
		return
	}
	start := p.k.now
	r.waited++
	r.queue = append(r.queue, p)
	p.yield()
	r.waitTime += p.k.now - start
}

// TryAcquire obtains a unit without waiting; it reports whether it did.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.accumulate()
		r.acquired++
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit. If a process is waiting, the unit passes
// directly to the head of the queue (it wakes at the current instant).
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource")
	}
	if len(r.queue) > 0 {
		// Hand off: inUse stays constant, ownership changes.
		head := r.queue[0]
		r.queue = r.queue[1:]
		r.k.After(0, head.wake)
		return
	}
	r.accumulate()
	r.inUse--
}

// Utilization returns average units-in-use over [0, now] divided by
// capacity, in [0, 1].
func (r *Resource) Utilization() float64 {
	if r.k.now == 0 {
		return 0
	}
	busy := r.busyTime + Time(r.inUse)*(r.k.now-r.lastChange)
	return float64(busy) / float64(Time(r.capacity)*r.k.now)
}

// Acquired returns the total number of Acquire/TryAcquire successes plus
// queued Acquires.
func (r *Resource) Acquired() int64 { return r.acquired }

// MeanWait returns the average time Acquire callers spent queued,
// counting non-waiting acquisitions as zero wait.
func (r *Resource) MeanWait() Time {
	if r.acquired == 0 {
		return 0
	}
	return r.waitTime / Time(r.acquired)
}
