package sim

// Mailbox is an unbounded FIFO message queue between processes, in the
// style of CSIM mailboxes. Senders never block; receivers park until a
// message arrives. Messages are delivered in send order, receivers are
// served in arrival order.
type Mailbox struct {
	k        *Kernel
	messages []any
	waiters  []func()

	sent     int64
	received int64
}

// NewMailbox returns an empty mailbox on kernel k.
func (k *Kernel) NewMailbox() *Mailbox { return &Mailbox{k: k} }

// Len returns the number of queued, unreceived messages.
func (m *Mailbox) Len() int { return len(m.messages) }

// Sent returns the total number of messages sent.
func (m *Mailbox) Sent() int64 { return m.sent }

// Received returns the total number of messages received.
func (m *Mailbox) Received() int64 { return m.received }

// Send enqueues msg and wakes the longest-waiting receiver, if any.
// It may be called from process or event context.
func (m *Mailbox) Send(msg any) {
	m.sent++
	m.messages = append(m.messages, msg)
	if len(m.waiters) > 0 {
		head := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.k.After(0, head)
	}
}

// Receive returns the next message, parking p until one is available.
func (p *Proc) Receive(m *Mailbox) any {
	for len(m.messages) == 0 {
		m.waiters = append(m.waiters, p.waker())
		p.yield()
	}
	msg := m.messages[0]
	m.messages = m.messages[1:]
	m.received++
	return msg
}

// TryReceive returns the next message without waiting; ok reports
// whether one was available.
func (m *Mailbox) TryReceive() (msg any, ok bool) {
	if len(m.messages) == 0 {
		return nil, false
	}
	msg = m.messages[0]
	m.messages = m.messages[1:]
	m.received++
	return msg, true
}

// AwaitAny parks p until at least one of cs is complete and returns
// the index of the first completed one (by slice order among those
// already complete, or the first to complete thereafter). It panics on
// an empty slice.
func (p *Proc) AwaitAny(cs ...*Completion) int {
	if len(cs) == 0 {
		panic("sim: AwaitAny of nothing")
	}
	for {
		for i, c := range cs {
			if c.complete {
				return i
			}
		}
		// Register with every pending completion; the first Complete
		// call wakes us. Registrations on the others remain, so a
		// Completion may wake us spuriously later — the loop re-checks,
		// and wake ordering keeps this safe because each Complete wakes
		// every waiter exactly once.
		w := p.waker()
		for _, c := range cs {
			if !c.complete {
				c.waiters = append(c.waiters, w)
			}
		}
		p.yield()
	}
}

// AwaitTimeout parks p until c completes or d elapses; it reports
// whether c completed within the window.
func (p *Proc) AwaitTimeout(c *Completion, d Time) bool {
	if c.complete {
		return true
	}
	deadline := p.k.now + d
	timer := p.k.NewCompletion()
	p.k.At(deadline, func() {
		if !timer.complete {
			timer.Complete()
		}
	})
	for {
		if c.complete {
			return true
		}
		if timer.complete {
			return false
		}
		w := p.waker()
		c.waiters = append(c.waiters, w)
		timer.waiters = append(timer.waiters, w)
		p.yield()
	}
}
