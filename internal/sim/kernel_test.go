package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	k := New()
	var order []Time
	for _, at := range []Time{5, 1, 3, 2, 4} {
		tt := at
		k.At(tt, func() { order = append(order, tt) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("events out of order: %v", order)
		}
	}
	if k.Now() != 5 {
		t.Fatalf("clock = %v, want 5", k.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	k := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(7, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	k := New()
	var at Time
	k.At(10, func() {
		k.After(5, func() { at = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := New()
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	_ = k.Run()
}

func TestRunUntilHorizon(t *testing.T) {
	k := New()
	fired := map[Time]bool{}
	for _, at := range []Time{1, 2, 3, 10, 20} {
		tt := at
		k.At(tt, func() { fired[tt] = true })
	}
	if err := k.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if !fired[1] || !fired[2] || !fired[3] || fired[10] || fired[20] {
		t.Fatalf("wrong events fired: %v", fired)
	}
	if k.Now() != 5 {
		t.Fatalf("clock = %v, want horizon 5", k.Now())
	}
	// Resume to the end.
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired[20] || k.Now() != 20 {
		t.Fatalf("resume failed: now=%v fired=%v", k.Now(), fired)
	}
}

func TestStop(t *testing.T) {
	k := New()
	ran := 0
	k.At(1, func() { ran++; k.Stop() })
	k.At(2, func() { ran++ })
	if err := k.Run(); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if ran != 1 {
		t.Fatalf("ran %d events after Stop, want 1", ran)
	}
}

func TestHeapPropertyQuick(t *testing.T) {
	// Property: any multiset of (time, insertion index) pairs comes out
	// sorted by (time, insertion order).
	err := quick.Check(func(raw []uint16) bool {
		k := New()
		type rec struct {
			at  Time
			idx int
		}
		var got []rec
		for i, r := range raw {
			at := Time(r % 64)
			i := i
			k.At(at, func() { got = append(got, rec{at, i}) })
		}
		if err := k.Run(); err != nil {
			return false
		}
		want := make([]rec, len(got))
		copy(want, got)
		sort.SliceStable(want, func(a, b int) bool {
			if want[a].at != want[b].at {
				return want[a].at < want[b].at
			}
			return want[a].idx < want[b].idx
		})
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []string {
		k := New()
		var log []string
		k.Spawn("a", func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.Sleep(2)
				log = append(log, "a")
			}
		})
		k.Spawn("b", func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.Sleep(3)
				log = append(log, "b")
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		again := run()
		if len(again) != len(first) {
			t.Fatal("replay length differs")
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("replay diverged at %d: %v vs %v", i, first, again)
			}
		}
	}
}

func TestTimeString(t *testing.T) {
	if s := Ms(3.5).String(); s != "3.5ms" {
		t.Fatalf("Ms(3.5) = %q", s)
	}
	if s := (20 * Second).String(); s != "20s" {
		t.Fatalf("20s = %q", s)
	}
	if Ms(1500).Seconds() != 1.5 {
		t.Fatal("Seconds conversion wrong")
	}
	if (2 * Millisecond).Milliseconds() != 2 {
		t.Fatal("Milliseconds conversion wrong")
	}
}
