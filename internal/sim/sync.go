package sim

// Completion is a one-shot event: it is either pending or complete.
// Processes that Await a pending completion park until Complete is
// called; awaiting an already-complete completion returns immediately.
// It models "this I/O request has finished" and similar latches.
type Completion struct {
	k        *Kernel
	complete bool
	at       Time
	waiters  []func()
}

// NewCompletion returns a pending completion on kernel k.
func (k *Kernel) NewCompletion() *Completion { return &Completion{k: k} }

// Done reports whether Complete has been called.
func (c *Completion) Done() bool { return c.complete }

// At returns the time Complete was called; it is meaningful only when
// Done reports true.
func (c *Completion) At() Time { return c.at }

// Complete marks the completion done and wakes all waiters, in the order
// they arrived, at the current instant. Completing twice panics — it
// almost always indicates two owners of one request.
func (c *Completion) Complete() {
	if c.complete {
		panic("sim: Completion completed twice")
	}
	c.complete = true
	c.at = c.k.now
	waiters := c.waiters
	c.waiters = nil
	for _, w := range waiters {
		c.k.After(0, w)
	}
}

// Await parks p until the completion is done.
func (p *Proc) Await(c *Completion) {
	for !c.complete {
		c.waiters = append(c.waiters, p.waker())
		p.yield()
	}
}

// AwaitAll parks p until every completion in cs is done.
func (p *Proc) AwaitAll(cs ...*Completion) {
	for _, c := range cs {
		p.Await(c)
	}
}

// Signal is a broadcast condition variable on simulated time. Waiters
// park until the next Broadcast; there is no memory (a broadcast with no
// waiters is a no-op), so it is always used in a re-check loop:
//
//	for !cond() {
//		p.Wait(sig)
//	}
type Signal struct {
	k       *Kernel
	waiters []func()
}

// NewSignal returns a signal on kernel k.
func (k *Kernel) NewSignal() *Signal { return &Signal{k: k} }

// Broadcast wakes every currently-parked waiter at the current instant.
// Processes that start waiting after the broadcast wait for the next one.
func (s *Signal) Broadcast() {
	waiters := s.waiters
	s.waiters = nil
	for _, w := range waiters {
		s.k.After(0, w)
	}
}

// Wait parks p until the next Broadcast on s.
func (p *Proc) Wait(s *Signal) {
	s.waiters = append(s.waiters, p.waker())
	p.yield()
}

// WaitFor parks p until cond() holds, re-checking after each broadcast
// of s. If cond() already holds it returns immediately.
func (p *Proc) WaitFor(s *Signal, cond func() bool) {
	for !cond() {
		p.Wait(s)
	}
}
