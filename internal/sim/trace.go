package sim

import (
	"fmt"
	"io"
)

// Tracer observes kernel activity. Implementations must not call back
// into the kernel.
type Tracer interface {
	// Event records a named occurrence at simulated time t. args are
	// free-form context values.
	Event(t Time, kind string, args ...any)
}

// WriterTracer writes one line per event to an io.Writer; useful for
// debugging simulations.
type WriterTracer struct {
	W io.Writer
}

// Event implements Tracer.
func (wt WriterTracer) Event(t Time, kind string, args ...any) {
	fmt.Fprintf(wt.W, "%12.4f  %-14s", float64(t), kind)
	for _, a := range args {
		fmt.Fprintf(wt.W, " %v", a)
	}
	fmt.Fprintln(wt.W)
}

// CountingTracer counts events by kind; useful in tests.
type CountingTracer struct {
	Counts map[string]int
}

// NewCountingTracer returns an empty CountingTracer.
func NewCountingTracer() *CountingTracer {
	return &CountingTracer{Counts: make(map[string]int)}
}

// Event implements Tracer.
func (ct *CountingTracer) Event(t Time, kind string, args ...any) {
	ct.Counts[kind]++
}
