package sim

import "testing"

func TestMailboxSendReceive(t *testing.T) {
	k := New()
	m := k.NewMailbox()
	var got []any
	k.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, p.Receive(m))
		}
	})
	k.Spawn("send", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(5)
			m.Send(i)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("messages = %v", got)
		}
	}
	if m.Sent() != 3 || m.Received() != 3 || m.Len() != 0 {
		t.Fatalf("counters: sent=%d received=%d len=%d", m.Sent(), m.Received(), m.Len())
	}
}

func TestMailboxBuffersWhenNoReceiver(t *testing.T) {
	k := New()
	m := k.NewMailbox()
	k.At(0, func() { m.Send("a"); m.Send("b") })
	var got []any
	k.Spawn("late", func(p *Proc) {
		p.Sleep(10)
		got = append(got, p.Receive(m))
		got = append(got, p.Receive(m))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
}

func TestMailboxFIFOAcrossReceivers(t *testing.T) {
	k := New()
	m := k.NewMailbox()
	var order []string
	for i := 0; i < 2; i++ {
		name := string(rune('A' + i))
		k.Spawn(name, func(p *Proc) {
			msg := p.Receive(m)
			order = append(order, p.Name()+":"+msg.(string))
		})
	}
	k.At(5, func() { m.Send("first") })
	k.At(6, func() { m.Send("second") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// A registered before B: A gets the first message.
	if order[0] != "A:first" || order[1] != "B:second" {
		t.Fatalf("order = %v", order)
	}
}

func TestTryReceive(t *testing.T) {
	k := New()
	m := k.NewMailbox()
	if _, ok := m.TryReceive(); ok {
		t.Fatal("empty TryReceive succeeded")
	}
	m.Send(7)
	if v, ok := m.TryReceive(); !ok || v != 7 {
		t.Fatalf("TryReceive = %v, %v", v, ok)
	}
}

func TestAwaitAnyFirstWins(t *testing.T) {
	k := New()
	c1, c2, c3 := k.NewCompletion(), k.NewCompletion(), k.NewCompletion()
	k.At(30, c1.Complete)
	k.At(10, c2.Complete)
	k.At(20, c3.Complete)
	var idx int
	var at Time
	k.Spawn("w", func(p *Proc) {
		idx = p.AwaitAny(c1, c2, c3)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if idx != 1 || at != 10 {
		t.Fatalf("AwaitAny = %d at %v, want 1 at 10", idx, at)
	}
}

func TestAwaitAnyAlreadyComplete(t *testing.T) {
	k := New()
	c1, c2 := k.NewCompletion(), k.NewCompletion()
	k.At(0, c2.Complete)
	var idx int
	k.Spawn("w", func(p *Proc) {
		p.Sleep(1)
		idx = p.AwaitAny(c1, c2)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("idx = %d", idx)
	}
}

func TestAwaitAnyEmptyPanics(t *testing.T) {
	k := New()
	panicked := false
	k.Spawn("w", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		p.AwaitAny()
	})
	_ = k.Run()
	if !panicked {
		t.Fatal("AwaitAny() did not panic")
	}
}

// TestStaleWakerCannotDisturbLaterPark is the regression test for the
// generation-checked wake protocol: after AwaitAny returns, the other
// completion's leftover registration must not wake the process out of
// an unrelated sleep.
func TestStaleWakerCannotDisturbLaterPark(t *testing.T) {
	k := New()
	c1, c2 := k.NewCompletion(), k.NewCompletion()
	k.At(10, c1.Complete)
	k.At(20, c2.Complete) // fires mid-sleep of the waiter
	var wokeAt Time
	k.Spawn("w", func(p *Proc) {
		p.AwaitAny(c1, c2) // returns at 10 with a stale waker on c2
		p.Sleep(100)       // c2 completes at 20: must NOT cut this short
		wokeAt = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt != 110 {
		t.Fatalf("sleep disturbed: woke at %v, want 110", wokeAt)
	}
}

func TestAwaitTimeoutCompletes(t *testing.T) {
	k := New()
	c := k.NewCompletion()
	k.At(5, c.Complete)
	var ok bool
	var at Time
	k.Spawn("w", func(p *Proc) {
		ok = p.AwaitTimeout(c, 50)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok || at != 5 {
		t.Fatalf("AwaitTimeout = %v at %v", ok, at)
	}
}

func TestAwaitTimeoutExpires(t *testing.T) {
	k := New()
	c := k.NewCompletion()
	k.At(100, c.Complete)
	var ok bool
	var at Time
	k.Spawn("w", func(p *Proc) {
		ok = p.AwaitTimeout(c, 30)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ok || at != 30 {
		t.Fatalf("AwaitTimeout = %v at %v, want timeout at 30", ok, at)
	}
}

func TestAwaitTimeoutAlreadyComplete(t *testing.T) {
	k := New()
	c := k.NewCompletion()
	k.At(0, c.Complete)
	var ok bool
	k.Spawn("w", func(p *Proc) {
		p.Sleep(1)
		ok = p.AwaitTimeout(c, 10)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("already-complete AwaitTimeout reported timeout")
	}
}
