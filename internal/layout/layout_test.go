package layout

import (
	"testing"
	"testing/quick"
)

func TestRoundRobinAssignment(t *testing.T) {
	l, err := New(RoundRobin, 25, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 25; r++ {
		if l.HomeDisk(r) != r%5 {
			t.Fatalf("run %d on disk %d, want %d", r, l.HomeDisk(r), r%5)
		}
	}
	for d := 0; d < 5; d++ {
		if got := len(l.RunsOnDisk(d)); got != 5 {
			t.Fatalf("disk %d holds %d runs, want 5", d, got)
		}
	}
	if l.MaxBlocksOnDisk() != 5000 {
		t.Fatalf("max blocks on disk = %d, want 5000", l.MaxBlocksOnDisk())
	}
}

func TestRoundRobinPacking(t *testing.T) {
	l, _ := New(RoundRobin, 10, 2, 100)
	// Disk 0 holds runs 0,2,4,6,8 packed in that order.
	wantStart := 0
	for _, r := range l.RunsOnDisk(0) {
		ext := l.Extents(r, 0, 100)
		if len(ext) != 1 {
			t.Fatalf("contiguous run decomposed into %d extents", len(ext))
		}
		if ext[0].Start != wantStart {
			t.Fatalf("run %d starts at %d, want %d", r, ext[0].Start, wantStart)
		}
		wantStart += 100
	}
}

func TestClusteredAssignment(t *testing.T) {
	l, err := New(Clustered, 50, 10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 50; r++ {
		if l.HomeDisk(r) != r/5 {
			t.Fatalf("run %d on disk %d, want %d", r, l.HomeDisk(r), r/5)
		}
	}
}

func TestExtentsSingleForContiguous(t *testing.T) {
	l, _ := New(RoundRobin, 25, 5, 1000)
	ext := l.Extents(7, 250, 10)
	if len(ext) != 1 {
		t.Fatalf("%d extents", len(ext))
	}
	e := ext[0]
	if e.Disk != 2 { // 7 mod 5
		t.Fatalf("disk = %d", e.Disk)
	}
	// Run 7 is the second run on disk 2 (after run 2): starts at 1000.
	if e.Start != 1250 {
		t.Fatalf("start = %d, want 1250", e.Start)
	}
	if e.Count != 10 || e.FromIdx != 250 || e.Stride != 1 {
		t.Fatalf("extent = %+v", e)
	}
	if e.BlockIndex(3) != 253 {
		t.Fatalf("BlockIndex(3) = %d", e.BlockIndex(3))
	}
}

func TestStripedCoversAllBlocksExactlyOnce(t *testing.T) {
	l, err := New(Striped, 6, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 6; r++ {
		seen := make(map[int]bool)
		exts := l.Extents(r, 0, 20)
		for _, e := range exts {
			for j := 0; j < e.Count; j++ {
				idx := e.BlockIndex(j)
				if idx < 0 || idx >= 20 || seen[idx] {
					t.Fatalf("run %d: block %d missing or duplicated (%+v)", r, idx, exts)
				}
				seen[idx] = true
			}
		}
		if len(seen) != 20 {
			t.Fatalf("run %d: covered %d of 20 blocks", r, len(seen))
		}
	}
}

func TestStripedBlockDiskMapping(t *testing.T) {
	l, _ := New(Striped, 4, 2, 10)
	for r := 0; r < 4; r++ {
		for b := 0; b < 10; b++ {
			exts := l.Extents(r, b, 1)
			if len(exts) != 1 {
				t.Fatalf("single block in %d extents", len(exts))
			}
			want := (r + b) % 2
			if exts[0].Disk != want {
				t.Fatalf("run %d block %d on disk %d, want %d", r, b, exts[0].Disk, want)
			}
		}
	}
}

func TestStripedExtentsPartialRange(t *testing.T) {
	l, _ := New(Striped, 3, 3, 30)
	exts := l.Extents(1, 5, 10) // blocks 5..14
	total := 0
	seen := make(map[int]bool)
	for _, e := range exts {
		total += e.Count
		for j := 0; j < e.Count; j++ {
			idx := e.BlockIndex(j)
			if idx < 5 || idx > 14 || seen[idx] {
				t.Fatalf("bad index %d in %+v", idx, exts)
			}
			seen[idx] = true
		}
	}
	if total != 10 {
		t.Fatalf("extents cover %d blocks, want 10", total)
	}
}

func TestStripedDistinctRunsDistinctAddresses(t *testing.T) {
	l, _ := New(Striped, 5, 5, 25)
	type loc struct{ disk, addr int }
	seen := make(map[loc][2]int)
	for r := 0; r < 5; r++ {
		for _, e := range l.Extents(r, 0, 25) {
			for j := 0; j < e.Count; j++ {
				pos := loc{e.Disk, e.Start + j}
				if prev, dup := seen[pos]; dup {
					t.Fatalf("runs %v and [%d %d] share disk address %+v", prev, r, e.BlockIndex(j), pos)
				}
				seen[pos] = [2]int{r, e.BlockIndex(j)}
			}
		}
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		p         Placement
		k, d, bpr int
	}{
		{RoundRobin, 0, 1, 10},
		{RoundRobin, 5, 0, 10},
		{RoundRobin, 5, 6, 10},
		{RoundRobin, 5, 2, 0},
		{Striped, 5, 4, 3},
	}
	for _, c := range cases {
		if _, err := New(c.p, c.k, c.d, c.bpr); err == nil {
			t.Fatalf("New(%v, %d, %d, %d) did not fail", c.p, c.k, c.d, c.bpr)
		}
	}
}

func TestExtentsPanicsOutOfRange(t *testing.T) {
	l, _ := New(RoundRobin, 5, 1, 100)
	for _, fn := range []func(){
		func() { l.Extents(-1, 0, 1) },
		func() { l.Extents(5, 0, 1) },
		func() { l.Extents(0, 95, 10) },
		func() { l.Extents(0, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range Extents did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestExtentsPropertyAllPlacements(t *testing.T) {
	err := quick.Check(func(pk, pd, pfrom, pn uint8) bool {
		k := int(pk%10) + 1
		d := int(pd%uint8(k)) + 1
		bpr := 24
		from := int(pfrom) % bpr
		n := int(pn)%(bpr-from) + 1
		for _, p := range []Placement{RoundRobin, Clustered, Striped} {
			l, err := New(p, k, d, bpr)
			if err != nil {
				return false
			}
			seen := make(map[int]bool)
			for _, e := range l.Extents(0, from, n) {
				if e.Disk < 0 || e.Disk >= d || e.Count <= 0 || e.Start < 0 {
					return false
				}
				for j := 0; j < e.Count; j++ {
					idx := e.BlockIndex(j)
					if idx < from || idx >= from+n || seen[idx] {
						return false
					}
					seen[idx] = true
				}
			}
			if len(seen) != n {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPlacementStrings(t *testing.T) {
	if RoundRobin.String() != "round-robin" || Clustered.String() != "clustered" ||
		Striped.String() != "striped" {
		t.Fatal("placement String values wrong")
	}
}

func TestAccessors(t *testing.T) {
	l, err := NewLengths(RoundRobin, []int{10, 20, 30}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l.K() != 3 || l.D() != 2 {
		t.Fatalf("K/D = %d/%d", l.K(), l.D())
	}
	if l.RunLength(1) != 20 {
		t.Fatalf("RunLength(1) = %d", l.RunLength(1))
	}
	if l.TotalBlocks() != 60 {
		t.Fatalf("TotalBlocks = %d", l.TotalBlocks())
	}
	if l.Placement() != RoundRobin {
		t.Fatalf("Placement = %v", l.Placement())
	}
	// Disk 0 holds runs 0 and 2: 40 blocks; disk 1 holds run 1: 20.
	if l.MaxBlocksOnDisk() != 40 {
		t.Fatalf("MaxBlocksOnDisk = %d", l.MaxBlocksOnDisk())
	}
}

func TestUnequalLengthsPacking(t *testing.T) {
	l, err := NewLengths(RoundRobin, []int{5, 7, 11}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// All on one disk, packed: starts 0, 5, 12.
	wantStart := []int{0, 5, 12}
	for r, want := range wantStart {
		ext := l.Extents(r, 0, 1)
		if ext[0].Start != want {
			t.Fatalf("run %d starts at %d, want %d", r, ext[0].Start, want)
		}
	}
}

func TestStripedUnequalLengths(t *testing.T) {
	l, err := NewLengths(Striped, []int{6, 9, 12}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l.MaxBlocksOnDisk() != 2+3+4 { // ceil per run
		t.Fatalf("MaxBlocksOnDisk = %d", l.MaxBlocksOnDisk())
	}
	// Coverage: every block of each run exactly once.
	for r, length := range []int{6, 9, 12} {
		seen := map[int]bool{}
		for _, e := range l.Extents(r, 0, length) {
			for j := 0; j < e.Count; j++ {
				idx := e.BlockIndex(j)
				if seen[idx] {
					t.Fatalf("run %d block %d duplicated", r, idx)
				}
				seen[idx] = true
			}
		}
		if len(seen) != length {
			t.Fatalf("run %d covered %d of %d", r, len(seen), length)
		}
	}
}

func TestNewLengthsValidation(t *testing.T) {
	if _, err := NewLengths(RoundRobin, nil, 1); err == nil {
		t.Fatal("empty lengths accepted")
	}
	if _, err := NewLengths(RoundRobin, []int{5, 0}, 1); err == nil {
		t.Fatal("zero-length run accepted")
	}
	if _, err := NewLengths(Striped, []int{5, 2}, 3); err == nil {
		t.Fatal("striped run shorter than D accepted")
	}
	if Placement(99).String() == "" {
		t.Fatal("unknown placement string empty")
	}
}
