// Package layout places the k sorted runs on the D input disks and maps
// (run, block-within-run) coordinates to per-disk block addresses.
//
// The paper's arrangement is contiguous: each run occupies one disk,
// runs are dealt round-robin across disks, and each disk packs its runs
// back to back from cylinder 0 — which is what makes the expected seek
// distance m·(k/3D) cylinders. Alternative placements (clustered
// assignment, block-striped runs) are provided for the placement
// ablation benches.
//
// Runs may have unequal lengths (replacement selection produces them);
// NewLengths accepts per-run block counts, and New is the uniform
// convenience constructor.
package layout

import "fmt"

// Placement selects a run-to-disk arrangement.
type Placement int

const (
	// RoundRobin assigns run r to disk r mod D and packs each disk's
	// runs contiguously in run order (the paper's layout).
	RoundRobin Placement = iota
	// Clustered assigns runs 0..k/D-1 to disk 0, the next k/D to disk 1,
	// and so on. Per-disk structure is identical to RoundRobin under a
	// uniform workload; it exists as a null-effect control.
	Clustered
	// Striped spreads every run over all D disks: block b of run r
	// lives on disk (r+b) mod D. On each disk a run's stripe is stored
	// contiguously. An N-block fetch therefore decomposes into up to D
	// per-disk extents (placement ablation).
	Striped
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case Clustered:
		return "clustered"
	case Striped:
		return "striped"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// ParsePlacement inverts String: it maps a placement name (the same
// names the mergesim flags and the simd wire forms use) back to its
// Placement, with "" meaning the paper's round-robin default.
func ParsePlacement(name string) (Placement, error) {
	switch name {
	case "", "round-robin":
		return RoundRobin, nil
	case "clustered":
		return Clustered, nil
	case "striped":
		return Striped, nil
	default:
		return 0, fmt.Errorf("layout: unknown placement %q (want round-robin, clustered or striped)", name)
	}
}

// Extent is a contiguous span of blocks on one disk, covering the
// run-relative block indices FromIdx, FromIdx+Stride, ... (Count of
// them).
type Extent struct {
	Disk  int
	Start int // disk block address of the first block
	Count int

	// FromIdx and Stride recover the run-relative indices the extent
	// carries: block j of the extent (0-based) is run block
	// FromIdx + j*Stride.
	FromIdx int
	Stride  int
}

// BlockIndex returns the run-relative index of the extent's j-th block.
func (e Extent) BlockIndex(j int) int { return e.FromIdx + j*e.Stride }

// Layout is an immutable placement of runs on D disks.
type Layout struct {
	d         int
	runLen    []int
	placement Placement

	// runDisk[r] is the disk of run r (contiguous placements only).
	runDisk []int
	// runStart[r] is the disk block address where run r (or its stripe
	// base, for Striped) begins.
	runStart []int
	// runsOnDisk[d] lists runs resident on disk d (every run, under
	// Striped).
	runsOnDisk [][]int
}

// New builds a uniform layout of k runs of blocksPerRun blocks each.
func New(p Placement, k, d, blocksPerRun int) (*Layout, error) {
	if k <= 0 {
		return nil, fmt.Errorf("layout: k = %d", k)
	}
	if blocksPerRun <= 0 {
		return nil, fmt.Errorf("layout: blocksPerRun = %d", blocksPerRun)
	}
	lengths := make([]int, k)
	for i := range lengths {
		lengths[i] = blocksPerRun
	}
	return NewLengths(p, lengths, d)
}

// NewLengths builds a layout of len(lengths) runs whose i-th run holds
// lengths[i] blocks. d must be in [1, k]; Striped additionally requires
// every run to hold at least d blocks.
func NewLengths(p Placement, lengths []int, d int) (*Layout, error) {
	k := len(lengths)
	switch {
	case k == 0:
		return nil, fmt.Errorf("layout: no runs")
	case d <= 0 || d > k:
		return nil, fmt.Errorf("layout: d = %d not in [1, %d]", d, k)
	}
	for r, n := range lengths {
		if n <= 0 {
			return nil, fmt.Errorf("layout: run %d has %d blocks", r, n)
		}
		if p == Striped && n < d {
			return nil, fmt.Errorf("layout: striped needs every run >= d blocks (run %d has %d < %d)", r, n, d)
		}
	}
	l := &Layout{
		d:          d,
		runLen:     append([]int(nil), lengths...),
		placement:  p,
		runDisk:    make([]int, k),
		runStart:   make([]int, k),
		runsOnDisk: make([][]int, d),
	}
	switch p {
	case RoundRobin, Clustered:
		next := make([]int, d) // next free block address per disk
		for r := 0; r < k; r++ {
			var dk int
			if p == RoundRobin {
				dk = r % d
			} else {
				per := (k + d - 1) / d
				dk = r / per
			}
			l.runDisk[r] = dk
			l.runStart[r] = next[dk]
			next[dk] += lengths[r]
			l.runsOnDisk[dk] = append(l.runsOnDisk[dk], r)
		}
	case Striped:
		// Each run holds a stripe of ceil(len/d) blocks on every disk;
		// stripes are packed run by run at the same offset on all disks.
		base := 0
		for r := 0; r < k; r++ {
			l.runDisk[r] = -1 // no single home
			l.runStart[r] = base
			base += (lengths[r] + d - 1) / d
		}
		for dk := 0; dk < d; dk++ {
			for r := 0; r < k; r++ {
				l.runsOnDisk[dk] = append(l.runsOnDisk[dk], r)
			}
		}
	default:
		return nil, fmt.Errorf("layout: unknown placement %v", p)
	}
	return l, nil
}

// K returns the number of runs.
func (l *Layout) K() int { return len(l.runLen) }

// D returns the number of disks.
func (l *Layout) D() int { return l.d }

// RunLength returns the block count of run r.
func (l *Layout) RunLength(r int) int { return l.runLen[r] }

// TotalBlocks returns the sum of all run lengths.
func (l *Layout) TotalBlocks() int {
	total := 0
	for _, n := range l.runLen {
		total += n
	}
	return total
}

// Placement returns the arrangement in use.
func (l *Layout) Placement() Placement { return l.placement }

// HomeDisk returns the disk wholly containing run r, or -1 when the run
// is striped over all disks.
func (l *Layout) HomeDisk(r int) int { return l.runDisk[r] }

// RunStart returns the disk block address where run r (or its stripe
// base, for Striped) begins.
func (l *Layout) RunStart(r int) int { return l.runStart[r] }

// RunsOnDisk returns the runs resident on disk d. Callers must not
// modify the returned slice.
func (l *Layout) RunsOnDisk(d int) []int { return l.runsOnDisk[d] }

// MaxBlocksOnDisk returns the largest number of blocks any disk holds,
// which the disk geometry must accommodate.
func (l *Layout) MaxBlocksOnDisk() int {
	if l.placement == Striped {
		total := 0
		for _, n := range l.runLen {
			total += (n + l.d - 1) / l.d
		}
		return total
	}
	most := 0
	for dk := 0; dk < l.d; dk++ {
		sum := 0
		for _, r := range l.runsOnDisk[dk] {
			sum += l.runLen[r]
		}
		if sum > most {
			most = sum
		}
	}
	return most
}

// Extents decomposes the fetch of run r's blocks [from, from+n) into
// per-disk contiguous extents. For the paper's contiguous placements the
// result is a single extent; for Striped up to D extents. It panics on
// out-of-range coordinates, which always indicate an engine bug.
func (l *Layout) Extents(r, from, n int) []Extent {
	return l.AppendExtents(nil, r, from, n)
}

// AppendExtents is Extents appending into dst, so steady-state callers
// can reuse one backing array across fetches instead of allocating a
// slice per I/O decision.
func (l *Layout) AppendExtents(dst []Extent, r, from, n int) []Extent {
	if r < 0 || r >= len(l.runLen) {
		panic(fmt.Sprintf("layout: run %d out of range", r))
	}
	if from < 0 || n <= 0 || from+n > l.runLen[r] {
		panic(fmt.Sprintf("layout: blocks [%d,%d) out of run range %d", from, from+n, l.runLen[r]))
	}
	if l.placement != Striped {
		return append(dst, Extent{
			Disk:    l.runDisk[r],
			Start:   l.runStart[r] + from,
			Count:   n,
			FromIdx: from,
			Stride:  1,
		})
	}
	for dk := 0; dk < l.d; dk++ {
		// Run r block b lives on disk (r+b) mod d at stripe offset b/d.
		// The b in [from, from+n) landing on disk dk form an arithmetic
		// progression with step d and contiguous stripe offsets — one
		// extent per disk.
		res := ((dk-r)%l.d + l.d) % l.d
		first := from + ((res-from)%l.d+l.d)%l.d
		if first >= from+n {
			continue
		}
		count := (from + n - first + l.d - 1) / l.d
		dst = append(dst, Extent{
			Disk:    dk,
			Start:   l.runStart[r] + first/l.d,
			Count:   count,
			FromIdx: first,
			Stride:  l.d,
		})
	}
	return dst
}

// DiskOf returns the disk holding run r's idx-th block: the run's home
// disk for contiguous placements, (r+idx) mod D under striping.
func (l *Layout) DiskOf(r, idx int) int {
	if l.placement != Striped {
		return l.runDisk[r]
	}
	return (r + idx) % l.d
}
