// Package stats provides the summary statistics the experiment harness
// reports: running means and variances, confidence intervals across
// simulation trials, time-weighted averages (e.g. average number of busy
// disks), and simple histograms.
package stats

import (
	"fmt"
	"math"
)

// Summary accumulates a stream of observations with Welford's online
// algorithm, so variance is numerically stable regardless of magnitude.
// The zero value is ready to use.
type Summary struct {
	n        int64
	mean     float64
	m2       float64
	min, max float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the observation count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of an approximate 95% confidence interval
// for the mean. For the small trial counts typical of the experiments it
// uses Student-t critical values; beyond the table it uses 1.96.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return tCrit95(int(s.n-1)) * s.StdErr()
}

// RelCI returns a confidence half-width as a fraction of the mean's
// magnitude — the stopping statistic for adaptive-trial loops
// ("simulate until the estimate is within x% of itself"). It is 0 when
// the half-width is 0 and +Inf when the mean is exactly zero while the
// half-width is not.
func RelCI(halfWidth, mean float64) float64 {
	if halfWidth == 0 {
		return 0
	}
	if mean == 0 {
		return math.Inf(1)
	}
	return halfWidth / math.Abs(mean)
}

// RelCI95 returns RelCI of the summary's 95% confidence half-width and
// mean.
func (s *Summary) RelCI95() float64 { return RelCI(s.CI95(), s.mean) }

// tCrit95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom.
func tCrit95(df int) float64 {
	table := []float64{
		0,                                                             // df 0 unused
		12.706,                                                        // 1
		4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, // 2..10
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, // 11..20
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042, // 21..30
	}
	if df <= 0 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}

// String formats the summary compactly.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g [%.4g, %.4g]",
		s.n, s.mean, s.CI95(), s.min, s.max)
}

// TimeWeighted tracks the time-average of a piecewise-constant quantity,
// such as the number of concurrently busy disks. Call Update with every
// change; Mean integrates value·dt over the observation window.
type TimeWeighted struct {
	started  bool
	startT   float64
	lastT    float64
	lastV    float64
	integral float64
	maxV     float64
}

// Update records that the quantity has value v from time t onward.
// Times must be non-decreasing.
func (w *TimeWeighted) Update(t, v float64) {
	if !w.started {
		w.started = true
		w.startT, w.lastT, w.lastV, w.maxV = t, t, v, v
		return
	}
	if t < w.lastT {
		panic("stats: TimeWeighted.Update with decreasing time")
	}
	w.integral += w.lastV * (t - w.lastT)
	w.lastT, w.lastV = t, v
	if v > w.maxV {
		w.maxV = v
	}
}

// Finish closes the observation window at time t, extending the last
// value to t.
func (w *TimeWeighted) Finish(t float64) { w.Update(t, w.lastV) }

// Mean returns the time-average over [start, last update].
func (w *TimeWeighted) Mean() float64 {
	span := w.lastT - w.startT
	if span <= 0 {
		return w.lastV
	}
	return w.integral / span
}

// Max returns the largest value observed.
func (w *TimeWeighted) Max() float64 { return w.maxV }

// Histogram counts observations in equal-width bins over [lo, hi);
// values outside the range land in the under/overflow counters.
type Histogram struct {
	lo, hi float64
	bins   []int64
	under  int64
	over   int64
	n      int64
	sum    float64
}

// NewHistogram builds a histogram with nbins bins over [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int64, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.n++
	h.sum += x
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
		if i >= len(h.bins) { // float edge case at hi boundary
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.n }

// Mean returns the mean of all observations (including out-of-range).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int64 { return h.bins[i] }

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over int64) { return h.under, h.over }

// Quantile returns an approximate q-quantile (0 <= q <= 1) assuming
// observations are uniform within bins. Out-of-range observations are
// clamped to the range edges.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := q * float64(h.n)
	acc := float64(h.under)
	if acc >= target {
		return h.lo
	}
	width := (h.hi - h.lo) / float64(len(h.bins))
	for i, c := range h.bins {
		if acc+float64(c) >= target && c > 0 {
			frac := (target - acc) / float64(c)
			return h.lo + (float64(i)+frac)*width
		}
		acc += float64(c)
	}
	return h.hi
}
