package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if !almost(s.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", s.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if !almost(s.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.CI95() != 0 {
		t.Fatal("empty summary not all zero")
	}
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Variance() != 0 || s.Min() != 3.5 || s.Max() != 3.5 {
		t.Fatal("single-observation summary wrong")
	}
}

func TestSummaryMatchesNaiveComputation(t *testing.T) {
	err := quick.Check(func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var s Summary
		sum := 0.0
		for _, v := range raw {
			s.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		ss := 0.0
		for _, v := range raw {
			d := float64(v) - mean
			ss += d * d
		}
		wantVar := ss / float64(len(raw)-1)
		return almost(s.Mean(), mean, 1e-6*(1+math.Abs(mean))) &&
			almost(s.Variance(), wantVar, 1e-6*(1+wantVar))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCI95KnownCase(t *testing.T) {
	var s Summary
	for _, x := range []float64{10, 12, 14, 16, 18} {
		s.Add(x)
	}
	// sd = sqrt(10), se = sqrt(2), t(4) = 2.776
	want := 2.776 * math.Sqrt2 * math.Sqrt(10) / math.Sqrt(10)
	_ = want
	se := s.StdErr()
	if !almost(s.CI95(), 2.776*se, 1e-9) {
		t.Fatalf("CI95 = %v, want %v", s.CI95(), 2.776*se)
	}
}

func TestTCritTails(t *testing.T) {
	if tCrit95(1) != 12.706 {
		t.Fatal("df=1 critical value wrong")
	}
	if tCrit95(1000) != 1.96 {
		t.Fatal("large-df critical value wrong")
	}
	if tCrit95(0) != 0 {
		t.Fatal("df=0 should be 0")
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var w TimeWeighted
	w.Update(0, 1)  // value 1 on [0, 10)
	w.Update(10, 3) // value 3 on [10, 20)
	w.Finish(20)
	if !almost(w.Mean(), 2, 1e-12) {
		t.Fatalf("mean = %v, want 2", w.Mean())
	}
	if w.Max() != 3 {
		t.Fatalf("max = %v", w.Max())
	}
}

func TestTimeWeightedZeroSpan(t *testing.T) {
	var w TimeWeighted
	w.Update(5, 7)
	if w.Mean() != 7 {
		t.Fatalf("zero-span mean = %v, want last value", w.Mean())
	}
}

func TestTimeWeightedDecreasingTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("decreasing time did not panic")
		}
	}()
	var w TimeWeighted
	w.Update(10, 1)
	w.Update(5, 2)
}

func TestTimeWeightedConcurrencyShape(t *testing.T) {
	// Simulates 2 disks: disk A busy [0,10), disk B busy [5,15).
	var w TimeWeighted
	w.Update(0, 1)
	w.Update(5, 2)
	w.Update(10, 1)
	w.Update(15, 0)
	// Integral = 1*5 + 2*5 + 1*5 = 20 over 15.
	if !almost(w.Mean(), 20.0/15.0, 1e-12) {
		t.Fatalf("mean busy = %v", w.Mean())
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i := 0; i < 10; i++ {
		if h.Bin(i) != 1 {
			t.Fatalf("bin %d = %d, want 1", i, h.Bin(i))
		}
	}
	h.Add(-1)
	h.Add(11)
	under, over := h.OutOfRange()
	if under != 1 || over != 1 {
		t.Fatalf("under/over = %d/%d", under, over)
	}
	if h.N() != 12 {
		t.Fatalf("n = %d", h.N())
	}
}

func TestHistogramMeanAndQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i) - 0.5)
	}
	if !almost(h.Mean(), 50, 1e-9) {
		t.Fatalf("mean = %v", h.Mean())
	}
	med := h.Quantile(0.5)
	if med < 49 || med > 51 {
		t.Fatalf("median = %v", med)
	}
	p90 := h.Quantile(0.9)
	if p90 < 89 || p90 > 91 {
		t.Fatalf("p90 = %v", p90)
	}
}

func TestHistogramInvalidShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram did not panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	h.Add(5)
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("q0 = %v", q)
	}
	if q := h.Quantile(1); q < 5 || q > 6 {
		t.Fatalf("q1 = %v", q)
	}
}

func TestSummaryStringSmoke(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(2)
	if s.String() == "" {
		t.Fatal("empty String")
	}
}
