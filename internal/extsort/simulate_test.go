package extsort

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
)

// sortForSim runs a real sort sized to produce a healthy number of runs
// and returns its store block counts and trace.
func sortForSim(t *testing.T, seed uint64, records int, formation RunFormation) ([]int, *Trace) {
	t.Helper()
	cfg := testConfig()
	cfg.MemoryBlocks = 16 // 16-block runs so prefetch depths up to 4 are meaningful
	cfg.Formation = formation
	in, err := NewSliceReader(randomData(seed, records), cfg.RecordSize)
	if err != nil {
		t.Fatal(err)
	}
	store := NewMemStore()
	w := NewCountingWriter(cfg)
	st, err := Sort(cfg, in, store, w)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Ordered() {
		t.Fatal("sort output unordered")
	}
	return store.RunBlocks(), st.Trace
}

func simBase(d, n int, inter bool) core.Config {
	base := core.Default()
	base.D = d
	base.N = n
	base.InterRun = inter
	base.CacheBlocks = cache.Unlimited
	base.Disk.Rotational = disk.RotConstant
	return base
}

func TestSimulateMergeRealTrace(t *testing.T) {
	runBlocks, trace := sortForSim(t, 11, 600, LoadSort)
	if len(runBlocks) < 4 {
		t.Fatalf("only %d runs", len(runBlocks))
	}
	res, err := SimulateMerge(runBlocks, trace, simBase(2, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range runBlocks {
		total += b
	}
	if res.MergedBlocks != int64(total) {
		t.Fatalf("simulated %d blocks, sort had %d", res.MergedBlocks, total)
	}
	if res.TotalTime <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestSimulateMergeStrategiesOrdering(t *testing.T) {
	// On a real trace, the paper's ordering must hold: combined
	// prefetching beats intra-run beats none.
	runBlocks, trace := sortForSim(t, 12, 1500, LoadSort)
	none, err := SimulateMerge(runBlocks, trace, simBase(4, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	intra, err := SimulateMerge(runBlocks, trace, simBase(4, 4, false))
	if err != nil {
		t.Fatal(err)
	}
	inter, err := SimulateMerge(runBlocks, trace, simBase(4, 4, true))
	if err != nil {
		t.Fatal(err)
	}
	if !(inter.TotalTime < intra.TotalTime && intra.TotalTime < none.TotalTime) {
		t.Fatalf("ordering violated on real trace: inter=%v intra=%v none=%v",
			inter.TotalTime, intra.TotalTime, none.TotalTime)
	}
}

func TestSimulateMergeUnequalRuns(t *testing.T) {
	// Replacement selection produces unequal runs; the simulator must
	// accept them via RunLengths.
	runBlocks, trace := sortForSim(t, 13, 900, ReplacementSelection)
	unequal := false
	for _, b := range runBlocks[1:] {
		if b != runBlocks[0] {
			unequal = true
		}
	}
	if !unequal && len(runBlocks) > 2 {
		t.Log("note: replacement selection produced equal runs this seed")
	}
	res, err := SimulateMerge(runBlocks, trace, simBase(2, 2, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestSimulateMergeValidation(t *testing.T) {
	if _, err := SimulateMerge(nil, &Trace{Runs: []int{0}}, simBase(1, 1, false)); err == nil {
		t.Fatal("no runs accepted")
	}
	if _, err := SimulateMerge([]int{3}, nil, simBase(1, 1, false)); err == nil {
		t.Fatal("nil trace accepted")
	}
	if _, err := SimulateMerge([]int{3}, &Trace{Runs: []int{0, 0}}, simBase(1, 1, false)); err == nil {
		t.Fatal("trace/block mismatch accepted")
	}
}

func TestSimulateMergeClampsD(t *testing.T) {
	// Two runs but a 5-disk base: D must clamp to K.
	runBlocks, trace := sortForSim(t, 14, 60, LoadSort)
	if len(runBlocks) >= 5 {
		t.Skip("seed produced too many runs for the clamp case")
	}
	res, err := SimulateMerge(runBlocks, trace, simBase(5, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerDisk) > len(runBlocks) {
		t.Fatalf("%d disks for %d runs", len(res.PerDisk), len(runBlocks))
	}
}
