package extsort

import "fmt"

// RunStore holds sorted runs as sequences of fixed-size blocks. The
// in-memory implementation below is the library's default; callers can
// provide their own (e.g. file-backed) store.
type RunStore interface {
	// CreateRun opens a new run for writing; runs are numbered in
	// creation order starting at 0.
	CreateRun() (RunWriter, error)
	// OpenRun returns a reader for run i.
	OpenRun(i int) (RunReader, error)
	// NumRuns returns the number of completed runs.
	NumRuns() int
}

// RunWriter receives a run's blocks in order.
type RunWriter interface {
	// WriteBlock appends one block (its length may be short for the
	// final block of a run).
	WriteBlock(p []byte) error
	// Close finishes the run; the run becomes visible to OpenRun.
	Close() error
}

// RunReader reads a run's blocks by index.
type RunReader interface {
	// ReadBlock copies block idx into p and returns its length.
	ReadBlock(idx int, p []byte) (int, error)
	// Blocks returns the number of blocks in the run.
	Blocks() int
}

// MemStore is an in-memory RunStore.
type MemStore struct {
	runs [][][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

type memRunWriter struct {
	store  *MemStore
	blocks [][]byte
	closed bool
}

// CreateRun implements RunStore.
func (s *MemStore) CreateRun() (RunWriter, error) {
	return &memRunWriter{store: s}, nil
}

// WriteBlock implements RunWriter.
func (w *memRunWriter) WriteBlock(p []byte) error {
	if w.closed {
		return fmt.Errorf("extsort: write to closed run")
	}
	if len(p) == 0 {
		return fmt.Errorf("extsort: empty block write")
	}
	block := make([]byte, len(p))
	copy(block, p)
	w.blocks = append(w.blocks, block)
	return nil
}

// Close implements RunWriter.
func (w *memRunWriter) Close() error {
	if w.closed {
		return fmt.Errorf("extsort: run closed twice")
	}
	w.closed = true
	w.store.runs = append(w.store.runs, w.blocks)
	return nil
}

type memRunReader struct {
	blocks [][]byte
}

// OpenRun implements RunStore.
func (s *MemStore) OpenRun(i int) (RunReader, error) {
	if i < 0 || i >= len(s.runs) {
		return nil, fmt.Errorf("extsort: run %d of %d", i, len(s.runs))
	}
	return &memRunReader{blocks: s.runs[i]}, nil
}

// NumRuns implements RunStore.
func (s *MemStore) NumRuns() int { return len(s.runs) }

// ReadBlock implements RunReader.
func (r *memRunReader) ReadBlock(idx int, p []byte) (int, error) {
	if idx < 0 || idx >= len(r.blocks) {
		return 0, fmt.Errorf("extsort: block %d of %d", idx, len(r.blocks))
	}
	n := copy(p, r.blocks[idx])
	if n < len(r.blocks[idx]) {
		return n, fmt.Errorf("extsort: buffer %d too small for block of %d", len(p), len(r.blocks[idx]))
	}
	return n, nil
}

// Blocks implements RunReader.
func (r *memRunReader) Blocks() int { return len(r.blocks) }

// RunBlocks returns the block counts of all runs, in run order.
func (s *MemStore) RunBlocks() []int {
	out := make([]int, len(s.runs))
	for i, run := range s.runs {
		out[i] = len(run)
	}
	return out
}

// RunBlocksOf returns the per-run block counts of any store, in run
// order, by opening each run. Both built-in stores also expose
// RunBlocks directly.
func RunBlocksOf(s RunStore) ([]int, error) {
	out := make([]int, s.NumRuns())
	for i := range out {
		r, err := s.OpenRun(i)
		if err != nil {
			return nil, err
		}
		out[i] = r.Blocks()
	}
	return out, nil
}
