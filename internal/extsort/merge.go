package extsort

import (
	"fmt"
)

// Trace is the block-depletion sequence of a merge: entry i names the
// run whose block was the i-th to be fully consumed. Replaying a Trace
// through workload.Sequence times a real merge under the paper's
// prefetching strategies.
type Trace struct {
	Runs []int
}

// runCursor streams one run's records during the merge.
type runCursor struct {
	cfg    Config
	reader RunReader
	run    int

	block    []byte
	blockLen int
	blockIdx int // next block to read
	off      int // byte offset into block

	exhausted bool
	trace     *Trace
}

func newRunCursor(cfg Config, reader RunReader, run int, trace *Trace) (*runCursor, error) {
	c := &runCursor{
		cfg:    cfg,
		reader: reader,
		run:    run,
		block:  make([]byte, cfg.BlockSize),
		trace:  trace,
	}
	if err := c.loadNext(); err != nil {
		return nil, err
	}
	return c, nil
}

// loadNext reads the next block, marking exhaustion at end of run.
func (c *runCursor) loadNext() error {
	if c.blockIdx >= c.reader.Blocks() {
		c.exhausted = true
		return nil
	}
	n, err := c.reader.ReadBlock(c.blockIdx, c.block)
	if err != nil {
		return err
	}
	if n == 0 || n%c.cfg.RecordSize != 0 {
		return fmt.Errorf("extsort: run %d block %d has %d bytes (record size %d)",
			c.run, c.blockIdx, n, c.cfg.RecordSize)
	}
	c.blockLen = n
	c.blockIdx++
	c.off = 0
	return nil
}

// current returns the cursor's leading record; only valid when not
// exhausted.
func (c *runCursor) current() []byte {
	return c.block[c.off : c.off+c.cfg.RecordSize]
}

// advance consumes the leading record, loading the next block when the
// current one empties (and recording the depletion in the trace).
func (c *runCursor) advance() error {
	c.off += c.cfg.RecordSize
	if c.off >= c.blockLen {
		if c.trace != nil {
			c.trace.Runs = append(c.trace.Runs, c.run)
		}
		return c.loadNext()
	}
	return nil
}

// loserTree is a tournament tree over k cursors: node values hold the
// losing cursor index, the overall winner sits above the root. This is
// the classic structure for k-way merges (Knuth 5.4.1): each
// replacement costs ⌈log₂ k⌉ comparisons.
type loserTree struct {
	cfg     Config
	cursors []*runCursor
	tree    []int // internal nodes: losers; tree[0] is the winner
	k       int
}

// newLoserTree builds the tree with all cursors loaded.
func newLoserTree(cfg Config, cursors []*runCursor) *loserTree {
	k := len(cursors)
	lt := &loserTree{cfg: cfg, cursors: cursors, k: k, tree: make([]int, k)}
	for i := range lt.tree {
		lt.tree[i] = -1
	}
	for i := 0; i < k; i++ {
		lt.seed(i)
	}
	return lt
}

// seed plays cursor i into a partially built tree: the first visitor to
// a node parks there; the second plays the match and sends the winner
// up. Exactly one player reaches tree[0].
func (lt *loserTree) seed(i int) {
	winner := i
	node := (i + lt.k) / 2
	for node > 0 {
		if lt.tree[node] == -1 {
			lt.tree[node] = winner
			return
		}
		if lt.better(lt.tree[node], winner) {
			lt.tree[node], winner = winner, lt.tree[node]
		}
		node /= 2
	}
	lt.tree[0] = winner
}

// better reports whether cursor a beats (sorts before) cursor b.
// Exhausted cursors always lose; ties break on index for stability.
func (lt *loserTree) better(a, b int) bool {
	if b < 0 {
		return true
	}
	if a < 0 {
		return false
	}
	ca, cb := lt.cursors[a], lt.cursors[b]
	if ca.exhausted {
		return false
	}
	if cb.exhausted {
		return true
	}
	if lt.cfg.less(ca.current(), cb.current()) {
		return true
	}
	if lt.cfg.less(cb.current(), ca.current()) {
		return false
	}
	return a < b
}

// replay pushes cursor i up from its leaf, recording losers, and
// installs the final winner at tree[0].
func (lt *loserTree) replay(i int) {
	winner := i
	node := (i + lt.k) / 2
	for node > 0 {
		if lt.better(lt.tree[node], winner) {
			lt.tree[node], winner = winner, lt.tree[node]
		}
		node /= 2
	}
	lt.tree[0] = winner
}

// winner returns the cursor index holding the smallest record, or -1
// when all are exhausted.
func (lt *loserTree) winner() int {
	w := lt.tree[0]
	if w < 0 || lt.cursors[w].exhausted {
		return -1
	}
	return w
}

// Merge performs the k-way merge of every run in store, writing records
// to out. If trace is non-nil, the block-depletion order is appended to
// it. It returns the number of records written.
func Merge(cfg Config, store RunStore, out RecordWriter, trace *Trace) (int64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	k := store.NumRuns()
	if k == 0 {
		return 0, nil
	}
	cursors := make([]*runCursor, k)
	for i := 0; i < k; i++ {
		r, err := store.OpenRun(i)
		if err != nil {
			return 0, err
		}
		c, err := newRunCursor(cfg, r, i, trace)
		if err != nil {
			return 0, err
		}
		cursors[i] = c
	}
	lt := newLoserTree(cfg, cursors)
	var written int64
	for {
		w := lt.winner()
		if w < 0 {
			return written, nil
		}
		cur := cursors[w]
		if err := out.Write(cur.current()); err != nil {
			return written, err
		}
		written++
		if err := cur.advance(); err != nil {
			return written, err
		}
		lt.replay(w)
	}
}

// Sort forms runs from input and merges them to output in one call,
// returning the sort statistics.
func Sort(cfg Config, input RecordReader, store RunStore, out RecordWriter) (SortStats, error) {
	read, err := FormRuns(cfg, input, store)
	if err != nil {
		return SortStats{}, err
	}
	trace := &Trace{}
	written, err := Merge(cfg, store, out, trace)
	if err != nil {
		return SortStats{}, err
	}
	if written != read {
		return SortStats{}, fmt.Errorf("extsort: read %d records but wrote %d", read, written)
	}
	return SortStats{Records: read, Runs: store.NumRuns(), Trace: trace}, nil
}

// SortStats reports a completed sort.
type SortStats struct {
	Records int64
	Runs    int
	Trace   *Trace
}
