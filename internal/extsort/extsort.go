// Package extsort is a real external mergesort over actual records —
// the workload whose merge phase the paper's simulator models. It
// provides run formation (memory-load sorting and replacement
// selection), a loser-tree k-way merge, pluggable run storage, and a
// depletion-trace hook: the merge records the exact order in which it
// exhausts run blocks, and that trace can be replayed through the
// simulation engine (workload.Sequence) to time a *real* merge under
// any of the paper's prefetching strategies instead of the uniform
// random model.
package extsort

import (
	"bytes"
	"errors"
	"fmt"
	"io"
)

// Config shapes a sort.
type Config struct {
	// RecordSize is the fixed record length in bytes. The paper's
	// calibration (4096-byte blocks of ~50 records) corresponds to
	// 80-byte records.
	RecordSize int

	// KeySize is the length of the comparison prefix; 0 compares whole
	// records.
	KeySize int

	// BlockSize is the I/O unit in bytes; records never span blocks.
	BlockSize int

	// MemoryBlocks is the working memory for run formation, in blocks.
	MemoryBlocks int

	// Formation selects the run formation algorithm.
	Formation RunFormation
}

// RunFormation selects how initial runs are produced.
type RunFormation int

const (
	// LoadSort fills memory, sorts it, and writes one run per load —
	// the scheme the paper describes.
	LoadSort RunFormation = iota
	// ReplacementSelection streams records through a selection heap,
	// producing runs that average twice the memory size (Knuth 5.4.1).
	ReplacementSelection
)

// String implements fmt.Stringer.
func (f RunFormation) String() string {
	switch f {
	case LoadSort:
		return "load-sort"
	case ReplacementSelection:
		return "replacement-selection"
	default:
		return fmt.Sprintf("RunFormation(%d)", int(f))
	}
}

// DefaultConfig mirrors the paper's block geometry: 80-byte records in
// 4096-byte blocks (51 records per block), one memory-load of 100
// blocks, load-sort formation.
func DefaultConfig() Config {
	return Config{
		RecordSize:   80,
		KeySize:      0,
		BlockSize:    4096,
		MemoryBlocks: 100,
		Formation:    LoadSort,
	}
}

// RecordsPerBlock returns how many records fit one block.
func (c Config) RecordsPerBlock() int { return c.BlockSize / c.RecordSize }

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.RecordSize <= 0:
		return fmt.Errorf("extsort: RecordSize = %d", c.RecordSize)
	case c.BlockSize < c.RecordSize:
		return fmt.Errorf("extsort: BlockSize %d < RecordSize %d", c.BlockSize, c.RecordSize)
	case c.KeySize < 0 || c.KeySize > c.RecordSize:
		return fmt.Errorf("extsort: KeySize %d outside [0, %d]", c.KeySize, c.RecordSize)
	case c.MemoryBlocks < 1:
		return fmt.Errorf("extsort: MemoryBlocks = %d", c.MemoryBlocks)
	case c.Formation != LoadSort && c.Formation != ReplacementSelection:
		return fmt.Errorf("extsort: unknown formation %d", int(c.Formation))
	}
	return nil
}

// less compares two records under the configured key prefix.
func (c Config) less(a, b []byte) bool {
	if c.KeySize > 0 {
		return bytes.Compare(a[:c.KeySize], b[:c.KeySize]) < 0
	}
	return bytes.Compare(a, b) < 0
}

// RecordReader yields fixed-size records; io.EOF ends the stream.
type RecordReader interface {
	// Next returns the next record. The returned slice is only valid
	// until the following call.
	Next() ([]byte, error)
}

// RecordWriter consumes records.
type RecordWriter interface {
	Write(rec []byte) error
}

// SliceReader reads records from a flat byte slice.
type SliceReader struct {
	data       []byte
	recordSize int
	off        int
}

// NewSliceReader wraps data (whose length must be a record multiple).
func NewSliceReader(data []byte, recordSize int) (*SliceReader, error) {
	if recordSize <= 0 || len(data)%recordSize != 0 {
		return nil, fmt.Errorf("extsort: data length %d not a multiple of record size %d", len(data), recordSize)
	}
	return &SliceReader{data: data, recordSize: recordSize}, nil
}

// Next implements RecordReader.
func (r *SliceReader) Next() ([]byte, error) {
	if r.off >= len(r.data) {
		return nil, io.EOF
	}
	rec := r.data[r.off : r.off+r.recordSize]
	r.off += r.recordSize
	return rec, nil
}

// StreamReader adapts an io.Reader of concatenated fixed-size records
// to a RecordReader, so sorts can consume files, pipes and network
// streams. A trailing partial record is an error.
type StreamReader struct {
	r          io.Reader
	recordSize int
	buf        []byte
}

// NewStreamReader wraps r, reading recordSize-byte records.
func NewStreamReader(r io.Reader, recordSize int) (*StreamReader, error) {
	if recordSize <= 0 {
		return nil, fmt.Errorf("extsort: record size %d", recordSize)
	}
	return &StreamReader{r: r, recordSize: recordSize, buf: make([]byte, recordSize)}, nil
}

// Next implements RecordReader.
func (s *StreamReader) Next() ([]byte, error) {
	n, err := io.ReadFull(s.r, s.buf)
	switch {
	case err == nil:
		return s.buf, nil
	case errors.Is(err, io.EOF) && n == 0:
		return nil, io.EOF
	case errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF):
		return nil, fmt.Errorf("extsort: %d trailing bytes do not form a record: %w", n, ErrShortRecord)
	default:
		return nil, err
	}
}

// SliceWriter collects records into memory.
type SliceWriter struct {
	Data []byte
}

// Write implements RecordWriter.
func (w *SliceWriter) Write(rec []byte) error {
	w.Data = append(w.Data, rec...)
	return nil
}

// CountingWriter counts records and verifies ordering as they pass.
type CountingWriter struct {
	cfg     Config
	n       int64
	prev    []byte
	ordered bool
}

// NewCountingWriter returns a writer that checks output order under cfg.
func NewCountingWriter(cfg Config) *CountingWriter {
	return &CountingWriter{cfg: cfg, ordered: true}
}

// Write implements RecordWriter.
func (w *CountingWriter) Write(rec []byte) error {
	if w.prev != nil && w.cfg.less(rec, w.prev) {
		w.ordered = false
	}
	w.prev = append(w.prev[:0], rec...)
	w.n++
	return nil
}

// Count returns how many records were written.
func (w *CountingWriter) Count() int64 { return w.n }

// Ordered reports whether every record was >= its predecessor.
func (w *CountingWriter) Ordered() bool { return w.ordered }

// ErrShortRecord is returned when an input record has the wrong length.
var ErrShortRecord = errors.New("extsort: record length does not match RecordSize")
