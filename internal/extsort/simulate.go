package extsort

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// SimulateMerge times the merge phase of a completed sort under the
// paper's I/O model: it replays the sort's block-depletion trace
// through the simulation engine with the given strategy configuration.
// base supplies the strategy knobs (D, N, InterRun, Synchronized,
// CacheBlocks, disk parameters...); K, run lengths and the workload are
// taken from the sort.
//
// This is the link between the two halves of the library: the paper
// validates its strategies under a random depletion model, and this
// function answers "what would my actual merge have cost" for real
// data.
func SimulateMerge(runBlocks []int, trace *Trace, base core.Config) (core.Result, error) {
	if len(runBlocks) == 0 {
		return core.Result{}, fmt.Errorf("extsort: no runs to simulate")
	}
	if trace == nil || len(trace.Runs) == 0 {
		return core.Result{}, fmt.Errorf("extsort: empty depletion trace")
	}
	total := 0
	for _, n := range runBlocks {
		total += n
	}
	if len(trace.Runs) != total {
		return core.Result{}, fmt.Errorf("extsort: trace has %d depletions for %d blocks", len(trace.Runs), total)
	}
	cfg := base
	cfg.K = len(runBlocks)
	cfg.RunLengths = runBlocks
	cfg.BlocksPerRun = 0
	cfg.Workload = &workload.Sequence{Runs: trace.Runs}
	if cfg.D > cfg.K {
		cfg.D = cfg.K
	}
	if cfg.CacheBlocks < cfg.K {
		cfg.CacheBlocks = cfg.DefaultCache()
	}
	return core.Run(cfg)
}
