package extsort

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/rng"
)

// TestSystemEndToEnd is the whole-library integration test: a
// file-backed, memory-bounded, multi-pass external sort of one million
// records, verified record by record, with every pass's real depletion
// trace replayed through the paper's I/O model. It exercises run
// formation, the loser tree, block re-packing between passes, the file
// store, trace capture and the simulator in one flow.
func TestSystemEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("system test skipped in -short mode")
	}
	cfg := Config{
		RecordSize:   16,
		BlockSize:    4096, // 256 records per block
		MemoryBlocks: 32,   // 8192 records per memory load
		Formation:    ReplacementSelection,
	}
	const records = 1_000_000

	r := rng.New(2026)
	data := make([]byte, records*cfg.RecordSize)
	for i := 0; i < len(data); i += 8 {
		binary.BigEndian.PutUint64(data[i:], r.Uint64())
	}

	in, err := NewStreamReader(bytes.NewReader(data), cfg.RecordSize)
	if err != nil {
		t.Fatal(err)
	}
	out := NewCountingWriter(cfg)
	res, err := MultiPassSort(cfg, 8, in, func() RunStore {
		s, err := NewFileStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}, out)
	if err != nil {
		t.Fatal(err)
	}
	if out.Count() != records || !out.Ordered() {
		t.Fatalf("verification failed: count=%d ordered=%v", out.Count(), out.Ordered())
	}
	if len(res.Passes) < 2 {
		t.Fatalf("expected a genuinely multi-pass sort, got %d passes", len(res.Passes))
	}

	base := core.Default()
	base.D = 5
	base.N = 8
	base.InterRun = true
	base.CacheBlocks = cache.Unlimited
	perPass, total, err := SimulatePasses(res, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(perPass) != len(res.Passes) || total <= 0 {
		t.Fatalf("simulation incoherent: %v passes, total %v", len(perPass), total)
	}

	// The simulated inter-run merge must beat no-prefetch on the same
	// real traces, pass for pass.
	slow := base
	slow.N = 1
	slow.InterRun = false
	slowPer, slowTotal, err := SimulatePasses(res, slow)
	if err != nil {
		t.Fatal(err)
	}
	if slowTotal <= total {
		t.Fatalf("no-prefetch (%v) not slower than inter+intra (%v)", slowTotal, total)
	}
	for i := range perPass {
		if slowPer[i] <= perPass[i] {
			t.Fatalf("pass %d: no-prefetch (%v) not slower (%v)", i, slowPer[i], perPass[i])
		}
	}
}
