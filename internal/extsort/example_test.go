package extsort_test

import (
	"encoding/binary"
	"fmt"

	"repro/internal/extsort"
	"repro/internal/rng"
)

// ExampleSort sorts ten thousand 8-byte records externally and checks
// the result.
func ExampleSort() {
	cfg := extsort.Config{
		RecordSize:   8,
		BlockSize:    512, // 64 records per block
		MemoryBlocks: 4,   // 256 records per memory load
		Formation:    extsort.LoadSort,
	}

	r := rng.New(7)
	data := make([]byte, 10_000*8)
	for i := 0; i < len(data); i += 8 {
		binary.BigEndian.PutUint64(data[i:], r.Uint64())
	}
	in, err := extsort.NewSliceReader(data, cfg.RecordSize)
	if err != nil {
		panic(err)
	}

	store := extsort.NewMemStore()
	out := extsort.NewCountingWriter(cfg)
	stats, err := extsort.Sort(cfg, in, store, out)
	if err != nil {
		panic(err)
	}
	fmt.Printf("records: %d, runs: %d, ordered: %v\n",
		stats.Records, stats.Runs, out.Ordered())
	fmt.Printf("depletion trace covers %d blocks\n", len(stats.Trace.Runs))
	// Output:
	// records: 10000, runs: 40, ordered: true
	// depletion trace covers 157 blocks
}

// ExampleSortStats_replay demonstrates replacement selection producing
// fewer, longer runs than load-sort on the same input.
func ExampleSortStats_replay() {
	mk := func(f extsort.RunFormation) int {
		cfg := extsort.Config{RecordSize: 8, BlockSize: 512, MemoryBlocks: 4, Formation: f}
		r := rng.New(7)
		data := make([]byte, 10_000*8)
		for i := 0; i < len(data); i += 8 {
			binary.BigEndian.PutUint64(data[i:], r.Uint64())
		}
		in, err := extsort.NewSliceReader(data, cfg.RecordSize)
		if err != nil {
			panic(err)
		}
		st, err := extsort.Sort(cfg, in, extsort.NewMemStore(), &extsort.SliceWriter{})
		if err != nil {
			panic(err)
		}
		return st.Runs
	}
	ls := mk(extsort.LoadSort)
	rs := mk(extsort.ReplacementSelection)
	fmt.Printf("load-sort: %d runs; replacement selection: %d runs (about half)\n", ls, rs)
	// Output:
	// load-sort: 40 runs; replacement selection: 21 runs (about half)
}
