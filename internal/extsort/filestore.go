package extsort

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
)

// FileStore is a RunStore backed by one file per run in a directory,
// for sorts whose runs exceed memory. Each run file is a sequence of
// length-prefixed blocks: a 4-byte big-endian block length followed by
// the block bytes (the final block of a run may be short).
//
// FileStore is not safe for concurrent use, matching the sequential
// structure of the sort.
type FileStore struct {
	dir  string
	runs []fileRunMeta
}

type fileRunMeta struct {
	path    string
	offsets []int64 // byte offset of each block's length prefix
	sizes   []int   // payload length of each block
}

// NewFileStore creates a store rooted at dir, which must exist and be
// writable. Existing run files from a previous store are not reloaded.
func NewFileStore(dir string) (*FileStore, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("extsort: filestore dir: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("extsort: filestore path %q is not a directory", dir)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *FileStore) Dir() string { return s.dir }

type fileRunWriter struct {
	store  *FileStore
	f      *os.File
	meta   fileRunMeta
	off    int64
	closed bool
}

// CreateRun implements RunStore.
func (s *FileStore) CreateRun() (RunWriter, error) {
	path := filepath.Join(s.dir, fmt.Sprintf("run-%06d.blocks", len(s.runs)))
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("extsort: create run: %w", err)
	}
	return &fileRunWriter{store: s, f: f, meta: fileRunMeta{path: path}}, nil
}

// WriteBlock implements RunWriter.
func (w *fileRunWriter) WriteBlock(p []byte) error {
	if w.closed {
		return fmt.Errorf("extsort: write to closed run")
	}
	if len(p) == 0 {
		return fmt.Errorf("extsort: empty block write")
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(p)))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.f.Write(p); err != nil {
		return err
	}
	w.meta.offsets = append(w.meta.offsets, w.off)
	w.meta.sizes = append(w.meta.sizes, len(p))
	w.off += int64(4 + len(p))
	return nil
}

// Close implements RunWriter.
func (w *fileRunWriter) Close() error {
	if w.closed {
		return fmt.Errorf("extsort: run closed twice")
	}
	w.closed = true
	if err := w.f.Close(); err != nil {
		return err
	}
	w.store.runs = append(w.store.runs, w.meta)
	return nil
}

type fileRunReader struct {
	f    *os.File
	meta fileRunMeta
}

// OpenRun implements RunStore.
func (s *FileStore) OpenRun(i int) (RunReader, error) {
	if i < 0 || i >= len(s.runs) {
		return nil, fmt.Errorf("extsort: run %d of %d", i, len(s.runs))
	}
	f, err := os.Open(s.runs[i].path)
	if err != nil {
		return nil, err
	}
	return &fileRunReader{f: f, meta: s.runs[i]}, nil
}

// NumRuns implements RunStore.
func (s *FileStore) NumRuns() int { return len(s.runs) }

// RunBlocks returns per-run block counts, like MemStore.RunBlocks.
func (s *FileStore) RunBlocks() []int {
	out := make([]int, len(s.runs))
	for i, m := range s.runs {
		out[i] = len(m.offsets)
	}
	return out
}

// ReadBlock implements RunReader.
func (r *fileRunReader) ReadBlock(idx int, p []byte) (int, error) {
	if idx < 0 || idx >= len(r.meta.offsets) {
		return 0, fmt.Errorf("extsort: block %d of %d", idx, len(r.meta.offsets))
	}
	size := r.meta.sizes[idx]
	if len(p) < size {
		return 0, fmt.Errorf("extsort: buffer %d too small for block of %d", len(p), size)
	}
	if _, err := r.f.ReadAt(p[:size], r.meta.offsets[idx]+4); err != nil {
		return 0, err
	}
	return size, nil
}

// Blocks implements RunReader.
func (r *fileRunReader) Blocks() int { return len(r.meta.offsets) }

// Close releases the underlying file. Merge holds every run open for
// its duration; callers using FileStore directly should close readers
// they open. (The merge path tolerates readers without Close.)
func (r *fileRunReader) Close() error { return r.f.Close() }
