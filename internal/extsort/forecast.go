package extsort

import (
	"fmt"
	"sort"
)

// ForecastTrace computes the exact block-depletion order of the k-way
// merge of store's runs without performing the merge, using the
// forecasting principle (Knuth 5.4.6): a block is exhausted when its
// last record is output, records are output in global sorted order
// (ties resolved by run index, matching the merge's stable loser
// tree), and within a run blocks exhaust in position order. Sorting
// every block's last record therefore yields the depletion sequence.
//
// This is what lets a real merge drive oracle prefetching (the
// simulator's OracleRun policy) before a single record is merged: the
// forecast reads only the final record of each block.
func ForecastTrace(cfg Config, store RunStore) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	type blockKey struct {
		run, idx int
		last     []byte
	}
	var keys []blockKey
	buf := make([]byte, cfg.BlockSize)
	for r := 0; r < store.NumRuns(); r++ {
		reader, err := store.OpenRun(r)
		if err != nil {
			return nil, err
		}
		for b := 0; b < reader.Blocks(); b++ {
			n, err := reader.ReadBlock(b, buf)
			if err != nil {
				return nil, err
			}
			if n == 0 || n%cfg.RecordSize != 0 {
				return nil, fmt.Errorf("extsort: forecast: run %d block %d has %d bytes", r, b, n)
			}
			last := make([]byte, cfg.RecordSize)
			copy(last, buf[n-cfg.RecordSize:n])
			keys = append(keys, blockKey{run: r, idx: b, last: last})
		}
	}
	sort.SliceStable(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if cfg.less(a.last, b.last) {
			return true
		}
		if cfg.less(b.last, a.last) {
			return false
		}
		// Equal last records: the stable merge drains the lower run
		// index first; within a run, earlier blocks first.
		if a.run != b.run {
			return a.run < b.run
		}
		return a.idx < b.idx
	})
	t := &Trace{Runs: make([]int, len(keys))}
	for i, k := range keys {
		t.Runs[i] = k.run
	}
	return t, nil
}
