package extsort

import (
	"errors"
	"fmt"
	"io"
	"slices"
)

// FormRuns consumes input and writes sorted runs into store using the
// configured formation algorithm. It returns the number of records
// processed.
func FormRuns(cfg Config, input RecordReader, store RunStore) (int64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	switch cfg.Formation {
	case LoadSort:
		return formLoadSort(cfg, input, store)
	case ReplacementSelection:
		return formReplacementSelection(cfg, input, store)
	default:
		return 0, fmt.Errorf("extsort: unknown formation %v", cfg.Formation)
	}
}

// writeRun writes records (already sorted) as blocks of a new run.
func writeRun(cfg Config, store RunStore, records [][]byte) error {
	w, err := store.CreateRun()
	if err != nil {
		return err
	}
	perBlock := cfg.RecordsPerBlock()
	block := make([]byte, 0, cfg.BlockSize)
	inBlock := 0
	for _, rec := range records {
		block = append(block, rec...)
		inBlock++
		if inBlock == perBlock {
			if err := w.WriteBlock(block); err != nil {
				return err
			}
			block = block[:0]
			inBlock = 0
		}
	}
	if inBlock > 0 {
		if err := w.WriteBlock(block); err != nil {
			return err
		}
	}
	return w.Close()
}

// formLoadSort sorts one memory load at a time: the scheme the paper's
// merge phase assumes ("sorting one memory-load of data at a time, and
// writing each run out to external disk storage").
func formLoadSort(cfg Config, input RecordReader, store RunStore) (int64, error) {
	capacity := cfg.MemoryBlocks * cfg.RecordsPerBlock()
	buf := make([][]byte, 0, capacity)
	arena := make([]byte, 0, capacity*cfg.RecordSize)
	var total int64

	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		// Stable + a deterministic comparator means the sorted order is
		// unique, so the non-reflective sort is byte-equivalent to
		// sort.SliceStable and roughly twice as fast on the hot path.
		slices.SortStableFunc(buf, func(a, b []byte) int {
			if cfg.less(a, b) {
				return -1
			}
			if cfg.less(b, a) {
				return 1
			}
			return 0
		})
		if err := writeRun(cfg, store, buf); err != nil {
			return err
		}
		buf = buf[:0]
		arena = arena[:0]
		return nil
	}

	for {
		rec, err := input.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return total, err
		}
		if len(rec) != cfg.RecordSize {
			return total, ErrShortRecord
		}
		start := len(arena)
		arena = append(arena, rec...)
		buf = append(buf, arena[start:len(arena):len(arena)])
		total++
		if len(buf) == capacity {
			if err := flush(); err != nil {
				return total, err
			}
		}
	}
	return total, flush()
}

// rsItem is a replacement-selection heap entry: records tagged with the
// run epoch they belong to. Ordering is (epoch, key).
type rsItem struct {
	epoch int
	rec   []byte
}

// rsHeap is a binary min-heap of rsItems.
type rsHeap struct {
	cfg   Config
	items []rsItem
}

func (h *rsHeap) less(a, b rsItem) bool {
	if a.epoch != b.epoch {
		return a.epoch < b.epoch
	}
	return h.cfg.less(a.rec, b.rec)
}

func (h *rsHeap) push(it rsItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *rsHeap) pop() rsItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.less(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < len(h.items) && h.less(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

// formReplacementSelection streams records through a selection heap
// (Knuth 5.4.1R): records smaller than the last output are fenced into
// the next run's epoch. Expected run length is twice the memory size
// for random input.
func formReplacementSelection(cfg Config, input RecordReader, store RunStore) (int64, error) {
	capacity := cfg.MemoryBlocks * cfg.RecordsPerBlock()
	h := &rsHeap{cfg: cfg}
	var total int64

	readOne := func() (rsItem, bool, error) {
		rec, err := input.Next()
		if errors.Is(err, io.EOF) {
			return rsItem{}, false, nil
		}
		if err != nil {
			return rsItem{}, false, err
		}
		if len(rec) != cfg.RecordSize {
			return rsItem{}, false, ErrShortRecord
		}
		cp := make([]byte, len(rec))
		copy(cp, rec)
		total++
		return rsItem{rec: cp}, true, nil
	}

	// Prime the heap.
	for len(h.items) < capacity {
		it, ok, err := readOne()
		if err != nil {
			return total, err
		}
		if !ok {
			break
		}
		h.push(it)
	}
	if len(h.items) == 0 {
		return 0, nil
	}

	epoch := 0
	var current [][]byte // records of the run being emitted
	flush := func() error {
		if len(current) == 0 {
			return nil
		}
		if err := writeRun(cfg, store, current); err != nil {
			return err
		}
		current = nil
		return nil
	}

	for len(h.items) > 0 {
		it := h.pop()
		if it.epoch > epoch {
			// Every remaining item belongs to a later run: close this one.
			if err := flush(); err != nil {
				return total, err
			}
			epoch = it.epoch
		}
		current = append(current, it.rec)

		next, ok, err := readOne()
		if err != nil {
			return total, err
		}
		if ok {
			next.epoch = epoch
			// A record smaller than the one just emitted cannot join the
			// current run; fence it into the next epoch.
			if cfg.less(next.rec, it.rec) {
				next.epoch = epoch + 1
			}
			h.push(next)
		}
	}
	return total, flush()
}
