package extsort

import (
	"bytes"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
)

func runMultiPass(t *testing.T, cfg Config, fanIn int, data []byte) (MultiPassResult, []byte) {
	t.Helper()
	in, err := NewSliceReader(data, cfg.RecordSize)
	if err != nil {
		t.Fatal(err)
	}
	var out SliceWriter
	res, err := MultiPassSort(cfg, fanIn, in, func() RunStore { return NewMemStore() }, &out)
	if err != nil {
		t.Fatal(err)
	}
	return res, out.Data
}

func TestMultiPassSortsCorrectly(t *testing.T) {
	cfg := testConfig() // 8 records per memory load
	data := randomData(51, 1000)
	res, got := runMultiPass(t, cfg, 4, data)
	if !bytes.Equal(got, sortedCopy(data, 8)) {
		t.Fatal("multi-pass output wrong")
	}
	if res.Records != 1000 {
		t.Fatalf("records = %d", res.Records)
	}
	// 1000 records / 8 per load = 125 runs; fan-in 4: 125 -> 32 -> 8 -> 2 -> 1.
	if len(res.Passes) != 4 {
		t.Fatalf("passes = %d, want 4", len(res.Passes))
	}
	wantRuns := []int{125, 32, 8, 2}
	for i, p := range res.Passes {
		if p.RunsIn != wantRuns[i] {
			t.Fatalf("pass %d runs in = %d, want %d", i, p.RunsIn, wantRuns[i])
		}
		if len(p.GroupTraces) != (p.RunsIn+3)/4 {
			t.Fatalf("pass %d groups = %d", i, len(p.GroupTraces))
		}
	}
	if res.Passes[len(res.Passes)-1].RunsOut != 1 {
		t.Fatal("last pass did not finish")
	}
}

func TestMultiPassSinglePassWhenFanInCovers(t *testing.T) {
	cfg := testConfig()
	data := randomData(52, 100) // 13 runs
	res, got := runMultiPass(t, cfg, 16, data)
	if !bytes.Equal(got, sortedCopy(data, 8)) {
		t.Fatal("output wrong")
	}
	if len(res.Passes) != 1 {
		t.Fatalf("passes = %d, want 1", len(res.Passes))
	}
}

func TestMultiPassTraceConservation(t *testing.T) {
	// Every pass processes every block exactly once: its group traces
	// must sum to the pass's total input blocks, and group run counts
	// must match trace lengths.
	cfg := testConfig()
	data := randomData(53, 600)
	res, _ := runMultiPass(t, cfg, 3, data)
	for _, p := range res.Passes {
		traced := 0
		for g, tr := range p.GroupTraces {
			want := 0
			for _, b := range p.GroupRunBlocks[g] {
				want += b
			}
			if len(tr.Runs) != want {
				t.Fatalf("pass %d group %d: trace %d entries for %d blocks",
					p.Index, g, len(tr.Runs), want)
			}
			traced += len(tr.Runs)
		}
		// The pass reads all data blocks (ragged tails may change the
		// block count between passes, but only by packing).
		if traced == 0 {
			t.Fatalf("pass %d traced nothing", p.Index)
		}
	}
}

func TestMultiPassEmptyAndValidation(t *testing.T) {
	cfg := testConfig()
	res, got := runMultiPass(t, cfg, 4, nil)
	if len(got) != 0 || len(res.Passes) != 0 {
		t.Fatal("empty input mishandled")
	}
	in, _ := NewSliceReader(nil, cfg.RecordSize)
	if _, err := MultiPassSort(cfg, 1, in, func() RunStore { return NewMemStore() }, &SliceWriter{}); err == nil {
		t.Fatal("fan-in 1 accepted")
	}
	bad := cfg
	bad.RecordSize = 0
	if _, err := MultiPassSort(bad, 4, in, func() RunStore { return NewMemStore() }, &SliceWriter{}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestSimulatePasses(t *testing.T) {
	cfg := testConfig()
	cfg.MemoryBlocks = 8 // 32-record runs -> 8 blocks per run
	data := randomData(54, 2000)
	res, got := runMultiPass(t, cfg, 4, data)
	if !bytes.Equal(got, sortedCopy(data, 8)) {
		t.Fatal("output wrong")
	}

	base := core.Default()
	base.D = 2
	base.N = 2
	base.InterRun = true
	base.CacheBlocks = cache.Unlimited
	base.Disk.Rotational = disk.RotConstant

	perPass, total, err := SimulatePasses(res, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(perPass) != len(res.Passes) {
		t.Fatalf("per-pass count %d != passes %d", len(perPass), len(res.Passes))
	}
	var sum float64
	for i, p := range perPass {
		if p <= 0 {
			t.Fatalf("pass %d time = %v", i, p)
		}
		sum += float64(p)
	}
	if float64(total) != sum {
		t.Fatalf("total %v != sum %v", total, sum)
	}

	// Prefetching must help multi-pass sorts too.
	slow := base
	slow.N = 1
	slow.InterRun = false
	_, slowTotal, err := SimulatePasses(res, slow)
	if err != nil {
		t.Fatal(err)
	}
	if slowTotal <= total {
		t.Fatalf("no-prefetch (%v) not slower than inter+intra (%v)", slowTotal, total)
	}
}

func TestSubStoreReadOnly(t *testing.T) {
	s := &subStore{parent: NewMemStore()}
	if _, err := s.CreateRun(); err == nil {
		t.Fatal("subStore CreateRun succeeded")
	}
	if _, err := s.OpenRun(0); err == nil {
		t.Fatal("subStore OpenRun of missing run succeeded")
	}
}

func TestBlockSinkRaggedTail(t *testing.T) {
	cfg := testConfig() // 4 records per block
	store := NewMemStore()
	w, _ := store.CreateRun()
	sink := newBlockSink(cfg, w)
	rec := make([]byte, 8)
	for i := 0; i < 6; i++ { // 1.5 blocks
		if err := sink.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := store.OpenRun(0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks() != 2 {
		t.Fatalf("blocks = %d, want 2", r.Blocks())
	}
	buf := make([]byte, 64)
	n, err := r.ReadBlock(1, buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 16 { // 2 ragged records
		t.Fatalf("tail block = %d bytes", n)
	}
}
