package extsort

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func newTestFileStore(t *testing.T) *FileStore {
	t.Helper()
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFileStoreRoundTrip(t *testing.T) {
	s := newTestFileStore(t)
	w, err := s.CreateRun()
	if err != nil {
		t.Fatal(err)
	}
	blocks := [][]byte{
		bytes.Repeat([]byte{0xAA}, 32),
		bytes.Repeat([]byte{0xBB}, 32),
		bytes.Repeat([]byte{0xCC}, 16), // short final block
	}
	for _, b := range blocks {
		if err := w.WriteBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if s.NumRuns() != 1 {
		t.Fatalf("runs = %d", s.NumRuns())
	}
	r, err := s.OpenRun(0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks() != 3 {
		t.Fatalf("blocks = %d", r.Blocks())
	}
	buf := make([]byte, 32)
	for i, want := range blocks {
		n, err := r.ReadBlock(i, buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf[:n], want) {
			t.Fatalf("block %d mismatch", i)
		}
	}
}

func TestFileStoreFullSort(t *testing.T) {
	cfg := testConfig()
	data := randomData(31, 500)
	in, err := NewSliceReader(data, cfg.RecordSize)
	if err != nil {
		t.Fatal(err)
	}
	store := newTestFileStore(t)
	var out SliceWriter
	st, err := Sort(cfg, in, store, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Data, sortedCopy(data, 8)) {
		t.Fatal("file-backed sort output wrong")
	}
	if st.Runs != store.NumRuns() {
		t.Fatalf("stats runs %d != store runs %d", st.Runs, store.NumRuns())
	}
	// Run files actually exist on disk.
	entries, err := os.ReadDir(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != store.NumRuns() {
		t.Fatalf("%d files for %d runs", len(entries), store.NumRuns())
	}
}

func TestFileStoreMatchesMemStore(t *testing.T) {
	cfg := testConfig()
	cfg.Formation = ReplacementSelection
	data := randomData(32, 700)

	runSort := func(store RunStore) ([]byte, []int) {
		in, err := NewSliceReader(data, cfg.RecordSize)
		if err != nil {
			t.Fatal(err)
		}
		var out SliceWriter
		if _, err := Sort(cfg, in, store, &out); err != nil {
			t.Fatal(err)
		}
		var blocks []int
		switch st := store.(type) {
		case *MemStore:
			blocks = st.RunBlocks()
		case *FileStore:
			blocks = st.RunBlocks()
		}
		return out.Data, blocks
	}

	memOut, memBlocks := runSort(NewMemStore())
	fileOut, fileBlocks := runSort(newTestFileStore(t))
	if !bytes.Equal(memOut, fileOut) {
		t.Fatal("file and memory stores produced different outputs")
	}
	if len(memBlocks) != len(fileBlocks) {
		t.Fatalf("run counts differ: %v vs %v", memBlocks, fileBlocks)
	}
	for i := range memBlocks {
		if memBlocks[i] != fileBlocks[i] {
			t.Fatalf("run %d block counts differ: %v vs %v", i, memBlocks, fileBlocks)
		}
	}
}

func TestFileStoreErrors(t *testing.T) {
	if _, err := NewFileStore(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing dir accepted")
	}
	f := filepath.Join(t.TempDir(), "afile")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileStore(f); err == nil {
		t.Fatal("file path accepted as dir")
	}

	s := newTestFileStore(t)
	if _, err := s.OpenRun(0); err == nil {
		t.Fatal("open of missing run accepted")
	}
	w, err := s.CreateRun()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBlock(nil); err == nil {
		t.Fatal("empty block accepted")
	}
	if err := w.WriteBlock([]byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("double close accepted")
	}
	if err := w.WriteBlock([]byte{1}); err == nil {
		t.Fatal("write after close accepted")
	}
	r, err := s.OpenRun(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBlock(9, make([]byte, 8)); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if _, err := r.ReadBlock(0, make([]byte, 1)); err == nil {
		t.Fatal("short buffer accepted")
	}
}
