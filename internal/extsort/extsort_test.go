package extsort

import (
	"bytes"
	"encoding/binary"
	"io"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// testConfig returns a small geometry: 8-byte records, 32-byte blocks
// (4 records/block), 2 blocks of memory (8 records per load).
func testConfig() Config {
	return Config{RecordSize: 8, BlockSize: 32, MemoryBlocks: 2, Formation: LoadSort}
}

// randomData returns n 8-byte records with uniform random content.
func randomData(seed uint64, n int) []byte {
	r := rng.New(seed)
	data := make([]byte, 8*n)
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(data[i*8:], r.Uint64())
	}
	return data
}

// sortedCopy returns the records of data sorted with the stdlib, for
// comparison against the external sort.
func sortedCopy(data []byte, recSize int) []byte {
	n := len(data) / recSize
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = data[i*recSize : (i+1)*recSize]
	}
	sort.SliceStable(recs, func(i, j int) bool { return bytes.Compare(recs[i], recs[j]) < 0 })
	out := make([]byte, 0, len(data))
	for _, r := range recs {
		out = append(out, r...)
	}
	return out
}

func sortAll(t *testing.T, cfg Config, data []byte) ([]byte, SortStats, *MemStore) {
	t.Helper()
	in, err := NewSliceReader(data, cfg.RecordSize)
	if err != nil {
		t.Fatal(err)
	}
	store := NewMemStore()
	var out SliceWriter
	st, err := Sort(cfg, in, store, &out)
	if err != nil {
		t.Fatal(err)
	}
	return out.Data, st, store
}

func TestSortMatchesStdlib(t *testing.T) {
	cfg := testConfig()
	data := randomData(1, 100)
	got, st, _ := sortAll(t, cfg, data)
	want := sortedCopy(data, 8)
	if !bytes.Equal(got, want) {
		t.Fatal("external sort output differs from stdlib sort")
	}
	if st.Records != 100 {
		t.Fatalf("records = %d", st.Records)
	}
	// 100 records / 8 per load = 13 runs under load-sort.
	if st.Runs != 13 {
		t.Fatalf("runs = %d, want 13", st.Runs)
	}
}

func TestSortEmptyInput(t *testing.T) {
	cfg := testConfig()
	got, st, _ := sortAll(t, cfg, nil)
	if len(got) != 0 || st.Records != 0 || st.Runs != 0 {
		t.Fatalf("empty input: %d bytes, %+v", len(got), st)
	}
}

func TestSortSingleRecord(t *testing.T) {
	cfg := testConfig()
	data := randomData(2, 1)
	got, st, _ := sortAll(t, cfg, data)
	if !bytes.Equal(got, data) || st.Runs != 1 {
		t.Fatalf("single record mishandled: runs=%d", st.Runs)
	}
}

func TestSortWithDuplicates(t *testing.T) {
	cfg := testConfig()
	var data []byte
	for i := 0; i < 60; i++ {
		rec := make([]byte, 8)
		binary.BigEndian.PutUint64(rec, uint64(i%5))
		data = append(data, rec...)
	}
	got, _, _ := sortAll(t, cfg, data)
	if !bytes.Equal(got, sortedCopy(data, 8)) {
		t.Fatal("duplicate-heavy input sorted wrong")
	}
}

func TestSortAlreadySorted(t *testing.T) {
	cfg := testConfig()
	data := sortedCopy(randomData(3, 64), 8)
	got, _, _ := sortAll(t, cfg, data)
	if !bytes.Equal(got, data) {
		t.Fatal("sorted input not preserved")
	}
}

func TestSortReverseSorted(t *testing.T) {
	cfg := testConfig()
	sorted := sortedCopy(randomData(4, 64), 8)
	var rev []byte
	for i := 63; i >= 0; i-- {
		rev = append(rev, sorted[i*8:(i+1)*8]...)
	}
	got, _, _ := sortAll(t, cfg, rev)
	if !bytes.Equal(got, sorted) {
		t.Fatal("reverse input sorted wrong")
	}
}

func TestSortPropertyQuick(t *testing.T) {
	cfg := testConfig()
	seedCounter := uint64(100)
	err := quick.Check(func(sz uint16) bool {
		n := int(sz % 300)
		seedCounter++
		data := randomData(seedCounter, n)
		in, err := NewSliceReader(data, cfg.RecordSize)
		if err != nil {
			return false
		}
		var out SliceWriter
		if _, err := Sort(cfg, in, NewMemStore(), &out); err != nil {
			return false
		}
		return bytes.Equal(out.Data, sortedCopy(data, 8))
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReplacementSelectionSortsCorrectly(t *testing.T) {
	cfg := testConfig()
	cfg.Formation = ReplacementSelection
	data := randomData(5, 200)
	got, _, _ := sortAll(t, cfg, data)
	if !bytes.Equal(got, sortedCopy(data, 8)) {
		t.Fatal("replacement-selection sort output wrong")
	}
}

func TestReplacementSelectionLongerRuns(t *testing.T) {
	// Knuth: replacement selection produces runs averaging 2x memory on
	// random input, so it should need materially fewer runs.
	lsCfg := testConfig()
	rsCfg := lsCfg
	rsCfg.Formation = ReplacementSelection
	data := randomData(6, 400)
	_, lsStats, _ := sortAll(t, lsCfg, data)
	_, rsStats, _ := sortAll(t, rsCfg, data)
	if rsStats.Runs >= lsStats.Runs {
		t.Fatalf("replacement selection runs %d >= load-sort runs %d", rsStats.Runs, lsStats.Runs)
	}
	// Should approach half as many (2x run length).
	if float64(rsStats.Runs) > 0.75*float64(lsStats.Runs) {
		t.Fatalf("replacement selection not ~2x: %d vs %d", rsStats.Runs, lsStats.Runs)
	}
}

func TestReplacementSelectionSortedInputOneRun(t *testing.T) {
	cfg := testConfig()
	cfg.Formation = ReplacementSelection
	data := sortedCopy(randomData(7, 100), 8)
	_, st, _ := sortAll(t, cfg, data)
	if st.Runs != 1 {
		t.Fatalf("sorted input produced %d runs, want 1", st.Runs)
	}
}

func TestKeyPrefixComparison(t *testing.T) {
	cfg := testConfig()
	cfg.KeySize = 2
	// Records with equal 2-byte keys must keep stable payload handling;
	// ordering is checked on keys only.
	data := randomData(8, 80)
	got, _, _ := sortAll(t, cfg, data)
	for i := 8; i < len(got); i += 8 {
		if bytes.Compare(got[i:i+2], got[i-8:i-6]) < 0 {
			t.Fatal("key-prefix ordering violated")
		}
	}
}

func TestTraceCountsEveryBlock(t *testing.T) {
	cfg := testConfig()
	data := randomData(9, 120)
	_, st, store := sortAll(t, cfg, data)
	total := 0
	counts := map[int]int{}
	for _, r := range st.Trace.Runs {
		counts[r]++
		total++
	}
	for r, blocks := range store.RunBlocks() {
		if counts[r] != blocks {
			t.Fatalf("run %d depleted %d times, has %d blocks", r, counts[r], blocks)
		}
	}
	if total != len(st.Trace.Runs) {
		t.Fatal("trace accounting inconsistent")
	}
}

func TestMergeOfManualRuns(t *testing.T) {
	cfg := testConfig()
	store := NewMemStore()
	// Two interleaved runs: evens and odds.
	for _, start := range []int{0, 1} {
		var recs [][]byte
		for v := start; v < 40; v += 2 {
			rec := make([]byte, 8)
			binary.BigEndian.PutUint64(rec, uint64(v))
			recs = append(recs, rec)
		}
		if err := writeRun(cfg, store, recs); err != nil {
			t.Fatal(err)
		}
	}
	w := NewCountingWriter(cfg)
	n, err := Merge(cfg, store, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 || w.Count() != 40 || !w.Ordered() {
		t.Fatalf("merge: n=%d count=%d ordered=%v", n, w.Count(), w.Ordered())
	}
}

func TestMergeManyRunsLoserTree(t *testing.T) {
	// Exercise non-power-of-two fan-in (loser tree edge cases).
	for _, k := range []int{1, 2, 3, 5, 7, 13} {
		cfg := testConfig()
		store := NewMemStore()
		r := rng.New(uint64(k))
		var all []byte
		for run := 0; run < k; run++ {
			n := 3 + r.Intn(9)
			data := randomData(uint64(1000+run*31+k), n)
			sorted := sortedCopy(data, 8)
			all = append(all, sorted...)
			var recs [][]byte
			for i := 0; i < n; i++ {
				recs = append(recs, sorted[i*8:(i+1)*8])
			}
			if err := writeRun(cfg, store, recs); err != nil {
				t.Fatal(err)
			}
		}
		var out SliceWriter
		if _, err := Merge(cfg, store, &out, nil); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Data, sortedCopy(all, 8)) {
			t.Fatalf("k=%d merge wrong", k)
		}
	}
}

func TestShortRecordRejected(t *testing.T) {
	cfg := testConfig()
	in := &oddReader{}
	if _, err := FormRuns(cfg, in, NewMemStore()); err != ErrShortRecord {
		t.Fatalf("err = %v, want ErrShortRecord", err)
	}
	cfg.Formation = ReplacementSelection
	if _, err := FormRuns(cfg, &oddReader{}, NewMemStore()); err != ErrShortRecord {
		t.Fatalf("rs err = %v, want ErrShortRecord", err)
	}
}

type oddReader struct{ done bool }

func (o *oddReader) Next() ([]byte, error) {
	if o.done {
		return nil, io.EOF
	}
	o.done = true
	return []byte{1, 2, 3}, nil
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{RecordSize: 0, BlockSize: 32, MemoryBlocks: 1},
		{RecordSize: 64, BlockSize: 32, MemoryBlocks: 1},
		{RecordSize: 8, BlockSize: 32, MemoryBlocks: 0},
		{RecordSize: 8, BlockSize: 32, MemoryBlocks: 1, KeySize: 9},
		{RecordSize: 8, BlockSize: 32, MemoryBlocks: 1, Formation: RunFormation(9)},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if DefaultConfig().RecordsPerBlock() != 51 {
		t.Fatalf("paper geometry: %d records/block, want 51", DefaultConfig().RecordsPerBlock())
	}
}

func TestSliceReaderValidation(t *testing.T) {
	if _, err := NewSliceReader(make([]byte, 10), 8); err == nil {
		t.Fatal("misaligned data accepted")
	}
	r, err := NewSliceReader(make([]byte, 16), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestMemStoreErrors(t *testing.T) {
	s := NewMemStore()
	if _, err := s.OpenRun(0); err == nil {
		t.Fatal("open of missing run accepted")
	}
	w, _ := s.CreateRun()
	if err := w.WriteBlock(nil); err == nil {
		t.Fatal("empty block accepted")
	}
	if err := w.WriteBlock([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("double close accepted")
	}
	if err := w.WriteBlock([]byte{1}); err == nil {
		t.Fatal("write after close accepted")
	}
	r, err := s.OpenRun(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBlock(5, make([]byte, 4)); err == nil {
		t.Fatal("out-of-range block accepted")
	}
	if _, err := r.ReadBlock(0, make([]byte, 0)); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestCountingWriterDetectsDisorder(t *testing.T) {
	cfg := testConfig()
	w := NewCountingWriter(cfg)
	a := make([]byte, 8)
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(a, 5)
	binary.BigEndian.PutUint64(b, 3)
	_ = w.Write(a)
	_ = w.Write(b)
	if w.Ordered() {
		t.Fatal("disorder not detected")
	}
	if w.Count() != 2 {
		t.Fatalf("count = %d", w.Count())
	}
}

func TestFormationString(t *testing.T) {
	if LoadSort.String() != "load-sort" || ReplacementSelection.String() != "replacement-selection" {
		t.Fatal("formation strings wrong")
	}
}

func TestStreamReaderRoundTrip(t *testing.T) {
	data := randomData(61, 20)
	sr, err := NewStreamReader(bytes.NewReader(data), 8)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec...)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("stream reader mangled data")
	}
}

func TestStreamReaderTrailingBytes(t *testing.T) {
	sr, err := NewStreamReader(bytes.NewReader(make([]byte, 11)), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err == nil {
		t.Fatal("trailing partial record accepted")
	}
}

func TestStreamReaderValidation(t *testing.T) {
	if _, err := NewStreamReader(bytes.NewReader(nil), 0); err == nil {
		t.Fatal("record size 0 accepted")
	}
}

func TestSortFromStream(t *testing.T) {
	cfg := testConfig()
	data := randomData(62, 150)
	sr, err := NewStreamReader(bytes.NewReader(data), cfg.RecordSize)
	if err != nil {
		t.Fatal(err)
	}
	var out SliceWriter
	if _, err := Sort(cfg, sr, NewMemStore(), &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Data, sortedCopy(data, 8)) {
		t.Fatal("stream-fed sort wrong")
	}
}

func TestRunBlocksOf(t *testing.T) {
	cfg := testConfig()
	_, _, store := sortAll(t, cfg, randomData(71, 100))
	got, err := RunBlocksOf(store)
	if err != nil {
		t.Fatal(err)
	}
	want := store.RunBlocks()
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %v vs %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("RunBlocksOf = %v, want %v", got, want)
		}
	}
}
