package extsort

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

// TestForecastMatchesActualMerge is the forecasting theorem in test
// form: the trace predicted from last keys alone equals the trace the
// real merge records.
func TestForecastMatchesActualMerge(t *testing.T) {
	cfg := testConfig()
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		data := randomData(seed*100+41, 300)
		in, err := NewSliceReader(data, cfg.RecordSize)
		if err != nil {
			t.Fatal(err)
		}
		store := NewMemStore()
		var out SliceWriter
		st, err := Sort(cfg, in, store, &out)
		if err != nil {
			t.Fatal(err)
		}
		forecast, err := ForecastTrace(cfg, store)
		if err != nil {
			t.Fatal(err)
		}
		if len(forecast.Runs) != len(st.Trace.Runs) {
			t.Fatalf("seed %d: forecast %d entries, actual %d",
				seed, len(forecast.Runs), len(st.Trace.Runs))
		}
		for i := range forecast.Runs {
			if forecast.Runs[i] != st.Trace.Runs[i] {
				t.Fatalf("seed %d: traces diverge at %d: forecast %d, actual %d",
					seed, i, forecast.Runs[i], st.Trace.Runs[i])
			}
		}
	}
}

func TestForecastMatchesWithDuplicateKeys(t *testing.T) {
	// Heavy duplication stresses the tie-break rules.
	cfg := testConfig()
	var data []byte
	for i := 0; i < 240; i++ {
		rec := make([]byte, 8)
		binary.BigEndian.PutUint64(rec, uint64(i%7))
		data = append(data, rec...)
	}
	in, err := NewSliceReader(data, cfg.RecordSize)
	if err != nil {
		t.Fatal(err)
	}
	store := NewMemStore()
	var out SliceWriter
	st, err := Sort(cfg, in, store, &out)
	if err != nil {
		t.Fatal(err)
	}
	forecast, err := ForecastTrace(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	for i := range forecast.Runs {
		if forecast.Runs[i] != st.Trace.Runs[i] {
			t.Fatalf("duplicate-key traces diverge at %d", i)
		}
	}
}

func TestForecastMatchesReplacementSelection(t *testing.T) {
	cfg := testConfig()
	cfg.Formation = ReplacementSelection
	data := randomData(77, 500)
	in, err := NewSliceReader(data, cfg.RecordSize)
	if err != nil {
		t.Fatal(err)
	}
	store := NewMemStore()
	var out SliceWriter
	st, err := Sort(cfg, in, store, &out)
	if err != nil {
		t.Fatal(err)
	}
	forecast, err := ForecastTrace(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	for i := range forecast.Runs {
		if forecast.Runs[i] != st.Trace.Runs[i] {
			t.Fatalf("rs traces diverge at %d", i)
		}
	}
}

func TestForecastPropertyQuick(t *testing.T) {
	cfg := testConfig()
	seed := uint64(9000)
	err := quick.Check(func(sz uint16) bool {
		n := int(sz%200) + 1
		seed++
		data := randomData(seed, n)
		in, err := NewSliceReader(data, cfg.RecordSize)
		if err != nil {
			return false
		}
		store := NewMemStore()
		var out SliceWriter
		st, err := Sort(cfg, in, store, &out)
		if err != nil {
			return false
		}
		forecast, err := ForecastTrace(cfg, store)
		if err != nil {
			return false
		}
		if len(forecast.Runs) != len(st.Trace.Runs) {
			return false
		}
		for i := range forecast.Runs {
			if forecast.Runs[i] != st.Trace.Runs[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForecastEmptyStore(t *testing.T) {
	forecast, err := ForecastTrace(testConfig(), NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	if len(forecast.Runs) != 0 {
		t.Fatal("empty store produced entries")
	}
}

func TestForecastRejectsBadConfig(t *testing.T) {
	cfg := testConfig()
	cfg.RecordSize = 0
	if _, err := ForecastTrace(cfg, NewMemStore()); err == nil {
		t.Fatal("bad config accepted")
	}
}
