package extsort

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// subStore exposes a subset of a parent store's runs as a RunStore, so
// one merge group of a pass can be driven by the ordinary Merge.
type subStore struct {
	parent RunStore
	runs   []int
}

func (s *subStore) CreateRun() (RunWriter, error) {
	return nil, fmt.Errorf("extsort: subStore is read-only")
}

func (s *subStore) OpenRun(i int) (RunReader, error) {
	if i < 0 || i >= len(s.runs) {
		return nil, fmt.Errorf("extsort: sub-run %d of %d", i, len(s.runs))
	}
	return s.parent.OpenRun(s.runs[i])
}

func (s *subStore) NumRuns() int { return len(s.runs) }

// blockSink re-blocks a record stream into a RunWriter: the output of
// one merge group becomes a single run of the next pass.
type blockSink struct {
	cfg    Config
	w      RunWriter
	block  []byte
	inBuf  int
	blocks int
}

func newBlockSink(cfg Config, w RunWriter) *blockSink {
	return &blockSink{cfg: cfg, w: w, block: make([]byte, 0, cfg.BlockSize)}
}

// Write implements RecordWriter.
func (b *blockSink) Write(rec []byte) error {
	b.block = append(b.block, rec...)
	b.inBuf++
	if b.inBuf == b.cfg.RecordsPerBlock() {
		return b.flush()
	}
	return nil
}

func (b *blockSink) flush() error {
	if b.inBuf == 0 {
		return nil
	}
	if err := b.w.WriteBlock(b.block); err != nil {
		return err
	}
	b.block = b.block[:0]
	b.inBuf = 0
	b.blocks++
	return nil
}

// Close flushes the ragged tail and closes the run.
func (b *blockSink) Close() error {
	if err := b.flush(); err != nil {
		return err
	}
	return b.w.Close()
}

// PassResult describes one executed merge pass of a multi-pass sort.
type PassResult struct {
	Index   int
	RunsIn  int
	RunsOut int
	FanIn   int

	// GroupTraces holds the block-depletion trace of every merge group,
	// aligned with GroupRunBlocks (the per-run block counts of each
	// group's inputs). Together they replay through the simulator.
	GroupTraces    []*Trace
	GroupRunBlocks [][]int
}

// MultiPassResult describes a completed multi-pass sort.
type MultiPassResult struct {
	Records int64
	Passes  []PassResult
}

// MultiPassSort sorts input into out, merging at most fanIn runs at a
// time: run formation, then as many merge passes as needed. Every
// intermediate pass materializes its output runs through stores
// produced by newStore (called once per pass). The returned result
// carries the real depletion traces of every merge group, ready for
// SimulateMerge.
func MultiPassSort(cfg Config, fanIn int, input RecordReader, newStore func() RunStore, out RecordWriter) (MultiPassResult, error) {
	if err := cfg.Validate(); err != nil {
		return MultiPassResult{}, err
	}
	if fanIn < 2 {
		return MultiPassResult{}, fmt.Errorf("extsort: fan-in %d < 2", fanIn)
	}
	store := newStore()
	records, err := FormRuns(cfg, input, store)
	if err != nil {
		return MultiPassResult{}, err
	}
	result := MultiPassResult{Records: records}
	if store.NumRuns() == 0 {
		return result, nil
	}

	blocksOf := func(s RunStore, run int) (int, error) {
		r, err := s.OpenRun(run)
		if err != nil {
			return 0, err
		}
		return r.Blocks(), nil
	}

	passIdx := 0
	for store.NumRuns() > 1 {
		runsIn := store.NumRuns()
		pass := PassResult{Index: passIdx, RunsIn: runsIn, FanIn: fanIn}
		lastPass := (runsIn+fanIn-1)/fanIn == 1

		var next RunStore
		if !lastPass {
			next = newStore()
		}
		for lo := 0; lo < runsIn; lo += fanIn {
			hi := lo + fanIn
			if hi > runsIn {
				hi = runsIn
			}
			group := &subStore{parent: store}
			var groupBlocks []int
			for r := lo; r < hi; r++ {
				group.runs = append(group.runs, r)
				n, err := blocksOf(store, r)
				if err != nil {
					return MultiPassResult{}, err
				}
				groupBlocks = append(groupBlocks, n)
			}
			trace := &Trace{}

			var sink RecordWriter
			var bs *blockSink
			if lastPass {
				sink = out
			} else {
				w, err := next.CreateRun()
				if err != nil {
					return MultiPassResult{}, err
				}
				bs = newBlockSink(cfg, w)
				sink = bs
			}
			if _, err := Merge(cfg, group, sink, trace); err != nil {
				return MultiPassResult{}, err
			}
			if bs != nil {
				if err := bs.Close(); err != nil {
					return MultiPassResult{}, err
				}
			}
			pass.GroupTraces = append(pass.GroupTraces, trace)
			pass.GroupRunBlocks = append(pass.GroupRunBlocks, groupBlocks)
		}
		if lastPass {
			pass.RunsOut = 1
		} else {
			pass.RunsOut = next.NumRuns()
			store = next
		}
		result.Passes = append(result.Passes, pass)
		passIdx++
		if lastPass {
			break
		}
	}
	return result, nil
}

// SimulatePasses times every merge group of a multi-pass sort under
// the given strategy configuration and returns the per-pass and total
// simulated I/O times. Groups within a pass run on distinct data, so
// their times add when executed back to back on one input array (the
// conservative sequential schedule).
func SimulatePasses(res MultiPassResult, base core.Config) (perPass []sim.Time, total sim.Time, err error) {
	for _, pass := range res.Passes {
		var passTime sim.Time
		for g := range pass.GroupTraces {
			r, err := SimulateMerge(pass.GroupRunBlocks[g], pass.GroupTraces[g], base)
			if err != nil {
				return nil, 0, fmt.Errorf("extsort: pass %d group %d: %w", pass.Index, g, err)
			}
			passTime += r.TotalTime
		}
		perPass = append(perPass, passTime)
		total += passTime
	}
	return perPass, total, nil
}
