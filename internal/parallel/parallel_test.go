package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestDoRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 100
		counts := make([]int32, n)
		Do(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoEmpty(t *testing.T) {
	Do(0, 4, func(int) { t.Fatal("job ran") })
	Do(-1, 4, func(int) { t.Fatal("job ran") })
}

func TestDoSerialIsInOrder(t *testing.T) {
	var order []int
	Do(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial Do out of order: %v", order)
		}
	}
}

func TestDoBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak int32
	Do(50, workers, func(int) {
		c := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		atomic.AddInt32(&cur, -1)
	})
	if peak > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", peak, workers)
	}
}

func TestDoContextCompletesWithoutCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran int32
		if err := DoContext(context.Background(), 20, workers, func(int) {
			atomic.AddInt32(&ran, 1)
		}); err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if ran != 20 {
			t.Fatalf("workers=%d: ran %d of 20 jobs", workers, ran)
		}
	}
}

func TestDoContextStopsDispatchOnCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran int32
		err := DoContext(ctx, 1000, workers, func(i int) {
			if atomic.AddInt32(&ran, 1) == 5 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// In-flight jobs may finish, but dispatch must stop promptly:
		// nothing close to the full grid can have run.
		if n := atomic.LoadInt32(&ran); n >= 1000 {
			t.Fatalf("workers=%d: all %d jobs ran despite cancellation", workers, n)
		}
	}
}

// TestDoContextLateCancelStillSucceeds: a cancellation that only lands
// after every job has been dispatched and completed must not fail the
// run — callers like core.RunGridContext would otherwise throw away a
// fully computed result.
func TestDoContextLateCancelStillSucceeds(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran int32
		// The job that observes the full count cancels: every job was
		// dispatched by then, so the run completed despite ctx being
		// done before DoContext returns.
		err := DoContext(ctx, 20, workers, func(int) {
			if atomic.AddInt32(&ran, 1) == 20 {
				cancel()
			}
		})
		cancel()
		if err != nil {
			t.Fatalf("workers=%d: err = %v after all jobs ran", workers, err)
		}
		if ran != 20 {
			t.Fatalf("workers=%d: ran %d of 20 jobs", workers, ran)
		}
	}
}

func TestDoContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := DoContext(ctx, 10, 4, func(int) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	got, err := Map(20, 4, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}

func TestMapFirstErrorWins(t *testing.T) {
	want := errors.New("boom-3")
	_, err := Map(10, 4, func(i int) (int, error) {
		if i >= 3 {
			return 0, fmt.Errorf("boom-%d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != want.Error() {
		t.Fatalf("err = %v, want lowest-index error %v", err, want)
	}
}
