// Package parallel is the shared bounded-worker sweep executor. Every
// layer that fans independent simulation points out over the machine —
// core.RunGrid trials, the experiment grid sweeps, cmd/figures' spec
// runner — funnels through Do or Map, so the worker discipline and the
// determinism contract live in one place.
//
// The determinism contract: jobs are identified by index, results are
// collected by index, and nothing a job computes may depend on which
// worker ran it or in what wall-clock order jobs completed. Seeds must
// derive from the job index (or from configuration), never from worker
// identity. Under that contract a parallel run is observationally
// identical to a serial one, which the figure regression tests assert
// byte-for-byte.
package parallel

import (
	"context"
	"runtime"
	"sync"
)

// Workers returns the default worker count: GOMAXPROCS.
func Workers() int { return runtime.GOMAXPROCS(0) }

// Do runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 means Workers()). Jobs are handed out dynamically, so
// uneven job costs still saturate the pool. Do returns when every job
// has finished. With one worker or one job it runs inline, in index
// order, with no goroutines — the serial reference the parallel path
// must match.
func Do(n, workers int, fn func(i int)) {
	DoContext(context.Background(), n, workers, fn)
}

// DoContext is Do with cooperative cancellation: once ctx is done, no
// further jobs are started, already-running jobs are allowed to finish
// (jobs themselves are not interrupted — cancellation granularity is
// one job), and DoContext returns ctx.Err(). All spawned goroutines
// have exited by the time it returns, cancelled or not, so callers
// never leak workers. Error and completion correspond exactly: nil
// means every job ran, non-nil means at least one job was skipped — a
// cancellation that lands only after the last job completed does not
// fail the run.
func DoContext(ctx context.Context, n, workers int, fn func(i int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	done := ctx.Done()
	dispatchedAll := true
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			dispatchedAll = false
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if dispatchedAll {
		return nil
	}
	return ctx.Err()
}

// Map evaluates fn for every index in [0, n) across at most workers
// goroutines and returns the results in index order. If any job fails,
// Map returns the error of the lowest-index failed job — the same error
// a serial run would surface first — with the partial results.
func Map[R any](n, workers int, fn func(i int) (R, error)) ([]R, error) {
	results := make([]R, n)
	errs := make([]error, n)
	Do(n, workers, func(i int) {
		results[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
