package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one loaded, parsed and fully type-checked package ready
// for analysis.
type Package struct {
	Path        string
	Dir         string
	Fset        *token.FileSet
	Files       []*ast.File
	Types       *types.Package
	Info        *types.Info
	TestGoFiles []string
	ModRoot     string
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Module       *struct {
		Path string
		Dir  string
	}
}

// The expensive parts of loading are shared process-wide: one FileSet,
// one source importer (so the standard library is parsed and
// type-checked once, not once per Load call or per test fixture), one
// memoized `go list` invocation per (dir, patterns), and memoized
// type-checked module packages. `make lint` and the analyzer self-test
// suite each hit the stdlib importer dozens of times; before this cache
// every hit re-type-checked fmt-and-friends from GOROOT source.
var shared struct {
	once    sync.Once
	mu      sync.Mutex
	fset    *token.FileSet
	std     types.Importer
	lists   map[string][]byte    // `go list` stdout by dir+patterns
	checked map[string]*Package  // type-checked module packages by dir+path
	meta    map[string]*listedPkg // listed metadata by dir+path
}

func sharedInit() {
	shared.once.Do(func() {
		// The source importer type-checks stdlib dependencies from GOROOT
		// source; turning cgo off keeps it on the pure-Go variants of net &
		// friends, which avoids invoking the cgo tool entirely.
		ctxt := build.Default
		ctxt.CgoEnabled = false
		build.Default = ctxt
		shared.fset = token.NewFileSet()
		shared.std = importer.ForCompiler(shared.fset, "source", nil)
		shared.lists = make(map[string][]byte)
		shared.checked = make(map[string]*Package)
		shared.meta = make(map[string]*listedPkg)
	})
}

// SharedFset returns the process-wide FileSet every loaded package (and
// linttest fixture) is positioned in.
func SharedFset() *token.FileSet {
	sharedInit()
	return shared.fset
}

// StdImporter returns the process-wide stdlib source importer. Not safe
// for concurrent use; callers serialize through LoadMu.
func StdImporter() types.Importer {
	sharedInit()
	return shared.std
}

// LockLoader serializes access to the shared loader state (the source
// importer caches internally without locking). It returns the unlock.
func LockLoader() func() {
	sharedInit()
	shared.mu.Lock()
	return shared.mu.Unlock
}

// ResetLoadCache drops the memoized `go list` output and type-checked
// module packages while keeping the FileSet and the stdlib importer —
// the expensive part. The detlint front-end calls it at the top of each
// invocation so the module is re-read from disk (a -fix rewrite, an
// edit between runs), while the many Load calls *within* one invocation
// still share everything.
func ResetLoadCache() {
	defer LockLoader()()
	shared.lists = make(map[string][]byte)
	shared.checked = make(map[string]*Package)
	shared.meta = make(map[string]*listedPkg)
}

// loader resolves and type-checks packages of the current module from
// source, delegating out-of-module imports (the standard library) to
// the shared source importer. Everything works offline: `go list` only
// inspects the local tree because the module has no external
// dependencies.
type loader struct {
	dir string // where go list runs
}

// Load type-checks the packages matching patterns (relative to dir, in
// the usual `go list` pattern syntax) along with their in-module
// dependencies, and returns the packages the patterns named. Results
// are memoized process-wide: a second Load of the same packages is
// effectively free.
func Load(dir string, patterns ...string) ([]*Package, error) {
	defer LockLoader()()
	ld := &loader{dir: dir}
	targets, err := ld.list(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, path := range targets {
		pkg, err := ld.check(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func (ld *loader) key(path string) string { return ld.dir + "\x00" + path }

// list runs `go list -deps -json` once per (dir, patterns), caches the
// metadata of every in-module package in the dependency closure, and
// returns the import paths the patterns matched directly.
func (ld *loader) list(patterns []string) ([]string, error) {
	cacheKey := ld.dir + "\x00" + strings.Join(patterns, "\x00")
	out, ok := shared.lists[cacheKey]
	if !ok {
		args := append([]string{"list", "-deps", "-json=ImportPath,Dir,GoFiles,TestGoFiles,XTestGoFiles,Module,DepOnly"}, patterns...)
		cmd := exec.Command("go", args...)
		cmd.Dir = ld.dir
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		var err error
		out, err = cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
		}
		shared.lists[cacheKey] = out
	}
	var targets []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct {
			listedPkg
			DepOnly bool
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Module != nil {
			pkg := p.listedPkg
			shared.meta[ld.key(p.ImportPath)] = &pkg
		}
		if !p.DepOnly {
			targets = append(targets, p.ImportPath)
		}
	}
	return targets, nil
}

// check parses and type-checks one in-module package, memoized
// process-wide.
func (ld *loader) check(path string) (*Package, error) {
	if pkg, ok := shared.checked[ld.key(path)]; ok {
		return pkg, nil
	}
	meta, ok := shared.meta[ld.key(path)]
	if !ok {
		return nil, fmt.Errorf("lint: package %s is not in the module dependency closure", path)
	}
	var files []*ast.File
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(shared.fset, filepath.Join(meta.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: (*chainImporter)(ld)}
	tpkg, err := conf.Check(path, shared.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   meta.Dir,
		Fset:  shared.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	names := make([]string, 0, len(meta.TestGoFiles)+len(meta.XTestGoFiles))
	names = append(names, meta.TestGoFiles...)
	names = append(names, meta.XTestGoFiles...)
	sort.Strings(names)
	for _, name := range names {
		pkg.TestGoFiles = append(pkg.TestGoFiles, filepath.Join(meta.Dir, name))
	}
	if meta.Module != nil {
		pkg.ModRoot = meta.Module.Dir
	}
	shared.checked[ld.key(path)] = pkg
	return pkg, nil
}

// chainImporter satisfies types.Importer: in-module packages are
// type-checked from source by the loader itself, everything else (the
// standard library) goes to the shared source importer.
type chainImporter loader

func (c *chainImporter) Import(path string) (*types.Package, error) {
	ld := (*loader)(c)
	if _, ok := shared.meta[ld.key(path)]; ok {
		pkg, err := ld.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return shared.std.Import(path)
}
