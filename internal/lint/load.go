package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// A Package is one loaded, parsed and fully type-checked package ready
// for analysis.
type Package struct {
	Path        string
	Dir         string
	Fset        *token.FileSet
	Files       []*ast.File
	Types       *types.Package
	Info        *types.Info
	TestGoFiles []string
	ModRoot     string
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Module       *struct {
		Path string
		Dir  string
	}
}

// loader resolves and type-checks packages of the current module from
// source, delegating out-of-module imports (the standard library) to
// the stock source importer. Everything works offline: `go list` only
// inspects the local tree because the module has no external
// dependencies.
type loader struct {
	dir     string // where go list runs
	fset    *token.FileSet
	meta    map[string]*listedPkg // module packages by import path
	checked map[string]*Package
	std     types.Importer
}

// Load type-checks the packages matching patterns (relative to dir, in
// the usual `go list` pattern syntax) along with their in-module
// dependencies, and returns the packages the patterns named.
func Load(dir string, patterns ...string) ([]*Package, error) {
	// The source importer type-checks stdlib dependencies from GOROOT
	// source; turning cgo off keeps it on the pure-Go variants of net &
	// friends, which avoids invoking the cgo tool entirely.
	ctxt := build.Default
	ctxt.CgoEnabled = false
	build.Default = ctxt

	ld := &loader{
		dir:     dir,
		fset:    token.NewFileSet(),
		meta:    make(map[string]*listedPkg),
		checked: make(map[string]*Package),
	}
	ld.std = importer.ForCompiler(ld.fset, "source", nil)

	targets, err := ld.list(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, path := range targets {
		pkg, err := ld.check(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// list runs `go list -deps -json` once, caches the metadata of every
// in-module package in the dependency closure, and returns the import
// paths the patterns matched directly.
func (ld *loader) list(patterns []string) ([]string, error) {
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,GoFiles,TestGoFiles,XTestGoFiles,Module,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = ld.dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var targets []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct {
			listedPkg
			DepOnly bool
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Module != nil {
			pkg := p.listedPkg
			ld.meta[p.ImportPath] = &pkg
		}
		if !p.DepOnly {
			targets = append(targets, p.ImportPath)
		}
	}
	return targets, nil
}

// check parses and type-checks one in-module package, memoized.
func (ld *loader) check(path string) (*Package, error) {
	if pkg, ok := ld.checked[path]; ok {
		return pkg, nil
	}
	meta, ok := ld.meta[path]
	if !ok {
		return nil, fmt.Errorf("lint: package %s is not in the module dependency closure", path)
	}
	var files []*ast.File
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(meta.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: (*chainImporter)(ld)}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   meta.Dir,
		Fset:  ld.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	for _, name := range meta.TestGoFiles {
		pkg.TestGoFiles = append(pkg.TestGoFiles, filepath.Join(meta.Dir, name))
	}
	for _, name := range meta.XTestGoFiles {
		pkg.TestGoFiles = append(pkg.TestGoFiles, filepath.Join(meta.Dir, name))
	}
	if meta.Module != nil {
		pkg.ModRoot = meta.Module.Dir
	}
	ld.checked[path] = pkg
	return pkg, nil
}

// chainImporter satisfies types.Importer: in-module packages are
// type-checked from source by the loader itself, everything else (the
// standard library) goes to the stock source importer.
type chainImporter loader

func (c *chainImporter) Import(path string) (*types.Package, error) {
	ld := (*loader)(c)
	if _, ok := ld.meta[path]; ok {
		pkg, err := ld.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}
