package lint

import (
	"bufio"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A Baseline is a set of accepted findings: new analyzers can land
// strict while the existing debt is paid down incrementally. Entries
// are keyed by (module-relative file, analyzer, message) with a count —
// line numbers are deliberately excluded so unrelated edits above a
// baselined finding do not churn the file. CI commits the baseline and
// fails any PR whose regenerated baseline grows (see the lint job):
// shrinking is free, growing needs a fix or a reasoned //detlint:allow.
type Baseline struct {
	Counts map[BaselineKey]int
}

// A BaselineKey identifies one class of accepted finding.
type BaselineKey struct {
	File     string // module-relative, forward slashes
	Analyzer string
	Message  string
}

// NewBaseline returns an empty baseline.
func NewBaseline() *Baseline {
	return &Baseline{Counts: make(map[BaselineKey]int)}
}

// baselineHeader starts every serialized baseline; it doubles as a
// format version marker.
const baselineHeader = "# detlint baseline v1: count<TAB>file<TAB>analyzer<TAB>quoted-message"

// FormatBaseline serializes b deterministically: header, then sorted
// tab-separated entries with the message strconv-quoted (messages may
// contain anything).
func FormatBaseline(b *Baseline) string {
	keys := make([]BaselineKey, 0, len(b.Counts))
	for k := range b.Counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, c := keys[i], keys[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	var sb strings.Builder
	sb.WriteString(baselineHeader)
	sb.WriteByte('\n')
	for _, k := range keys {
		fmt.Fprintf(&sb, "%d\t%s\t%s\t%s\n", b.Counts[k], k.File, k.Analyzer, strconv.Quote(k.Message))
	}
	return sb.String()
}

// ParseBaseline reads a serialized baseline, rejecting anything
// malformed — a corrupt baseline must fail loudly, never quietly
// suppress (the same philosophy as the allow directive).
func ParseBaseline(r io.Reader) (*Baseline, error) {
	b := NewBaseline()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("baseline line %d: want count<TAB>file<TAB>analyzer<TAB>message, got %q", lineNo, line)
		}
		count, err := strconv.Atoi(parts[0])
		if err != nil || count <= 0 {
			return nil, fmt.Errorf("baseline line %d: bad count %q", lineNo, parts[0])
		}
		file, analyzer := parts[1], parts[2]
		if file == "" || strings.Contains(file, "\\") {
			return nil, fmt.Errorf("baseline line %d: bad file %q (module-relative, forward slashes)", lineNo, file)
		}
		if analyzer == "" || !wordRx.MatchString(analyzer) {
			return nil, fmt.Errorf("baseline line %d: bad analyzer %q", lineNo, analyzer)
		}
		msg, err := strconv.Unquote(parts[3])
		if err != nil {
			return nil, fmt.Errorf("baseline line %d: message not a quoted string: %v", lineNo, err)
		}
		key := BaselineKey{File: file, Analyzer: analyzer, Message: msg}
		if _, dup := b.Counts[key]; dup {
			return nil, fmt.Errorf("baseline line %d: duplicate entry for %s:%s", lineNo, file, analyzer)
		}
		b.Counts[key] = count
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// BaselineFromDiags builds the baseline that would accept exactly the
// given findings, with files rewritten relative to modRoot.
func BaselineFromDiags(diags []Diagnostic, modRoot string) *Baseline {
	b := NewBaseline()
	for _, d := range diags {
		b.Counts[baselineKeyFor(d, modRoot)]++
	}
	return b
}

// FilterBaseline splits diags into (new, accepted): each finding
// matching a baseline key consumes one count; findings beyond the
// baselined count — and every finding of an un-baselined class — are
// new. Deterministic because diags arrive position-sorted.
func FilterBaseline(diags []Diagnostic, b *Baseline, modRoot string) (fresh, accepted []Diagnostic) {
	remaining := make(map[BaselineKey]int, len(b.Counts))
	for k, n := range b.Counts {
		remaining[k] = n
	}
	for _, d := range diags {
		key := baselineKeyFor(d, modRoot)
		if remaining[key] > 0 {
			remaining[key]--
			accepted = append(accepted, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	return fresh, accepted
}

func baselineKeyFor(d Diagnostic, modRoot string) BaselineKey {
	file := d.Pos.Filename
	if modRoot != "" {
		if rel, err := filepath.Rel(modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return BaselineKey{File: filepath.ToSlash(file), Analyzer: d.Analyzer, Message: d.Message}
}
