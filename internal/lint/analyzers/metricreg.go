package analyzers

import (
	"go/ast"
	"go/token"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint"
)

// MetricReg audits the hand-rolled Prometheus text exposition: every
// metric family declared with a `# TYPE` line must be unique and
// well-formed, carry a `# HELP` line, have every emitted sample line
// resolve to a declared family, and be referenced by at least one test
// or document — an unreferenced metric is either dead instrumentation
// or a dashboard query that silently broke when someone renamed it.
//
// Histogram families get four extra checks on their emitted samples:
// a histogram never exposes a bare-name sample (only _bucket/_sum/
// _count series), every _bucket sample carries an le label, a family
// that emits any series emits all three, and its buckets include
// le="+Inf". Bucket le values spelled out inside one literal must also
// ascend — a misordered bucket ladder makes every cumulative count a
// lie. (le values produced by format verbs are checked at runtime by
// the exposition tests, not here.)
//
// The analyzer triggers only on packages whose sources contain `# TYPE`
// string literals, so it is safe to run repo-wide.
var MetricReg = &lint.Analyzer{
	Name: "metricreg",
	Doc:  "Prometheus families must be unique, well-formed, HELP'd, and referenced by a test or doc",
	Run:  runMetricReg,
}

var (
	metricNameRx = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	typeLineRx   = regexp.MustCompile(`# TYPE ([^ \n]+) ([a-z]+)`)
	helpLineRx   = regexp.MustCompile(`# HELP ([^ \n]+) `)
	// sampleRx matches an exposition sample at the start of a line:
	// a metric name followed by a label block, a space, or a format verb.
	sampleRx = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{| %)`)
	// leValueRx extracts bucket le label values for the ordering check.
	leValueRx = regexp.MustCompile(`le="([^"]*)"`)
)

// validFamilyTypes are the Prometheus exposition metric types.
var validFamilyTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

func runMetricReg(pass *lint.Pass) error {
	type family struct {
		pos     token.Pos
		kind    string
		hasHelp bool
	}
	families := map[string]*family{}
	var order []string
	type sample struct {
		name string
		pos  token.Pos
		line string // the exposition line the sample heads
	}
	var samples []sample

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bl, ok := n.(*ast.BasicLit)
			if !ok || bl.Kind != token.STRING {
				return true
			}
			text, err := strconv.Unquote(bl.Value)
			if err != nil {
				return true
			}
			for _, m := range typeLineRx.FindAllStringSubmatch(text, -1) {
				name, kind := m[1], m[2]
				if prev, seen := families[name]; seen {
					if prev.kind != "" {
						pass.Reportf(bl.Pos(), "metric family %q declared twice (previous # TYPE at %s)", name, pass.Fset.Position(prev.pos))
						continue
					}
					prev.kind = kind // HELP line preceded its TYPE line
				} else {
					families[name] = &family{pos: bl.Pos(), kind: kind}
					order = append(order, name)
				}
				if !metricNameRx.MatchString(name) {
					pass.Reportf(bl.Pos(), "metric family %q is not a well-formed Prometheus name (want %s)", name, metricNameRx)
				}
				if !validFamilyTypes[kind] {
					pass.Reportf(bl.Pos(), "metric family %q has unknown type %q", name, kind)
				}
			}
			for _, m := range helpLineRx.FindAllStringSubmatch(text, -1) {
				if f, ok := families[m[1]]; ok {
					f.hasHelp = true
				} else {
					// HELP before TYPE in a later literal is fine; record
					// it as a pre-declared family with no type yet.
					families[m[1]] = &family{pos: bl.Pos(), hasHelp: true, kind: ""}
					order = append(order, m[1])
				}
			}
			for _, ln := range strings.Split(text, "\n") {
				if strings.HasPrefix(ln, "# ") {
					continue
				}
				if m := sampleRx.FindStringSubmatch(ln); m != nil {
					samples = append(samples, sample{name: m[1], pos: bl.Pos(), line: ln})
				}
			}
			// Bucket le values spelled out inside one literal must ascend.
			// Values produced by format verbs don't parse and are skipped;
			// "+Inf" parses as infinity, so it must come last.
			prevLe := math.Inf(-1)
			for _, m := range leValueRx.FindAllStringSubmatch(text, -1) {
				v, err := strconv.ParseFloat(m[1], 64)
				if err != nil {
					continue
				}
				if v < prevLe {
					pass.Reportf(bl.Pos(), "histogram buckets out of order: le=%q after le=\"%g\" (le values must ascend)", m[1], prevLe)
					break
				}
				prevLe = v
			}
			return true
		})
	}
	if len(order) == 0 {
		return nil // not an exposition package
	}

	for _, name := range order {
		f := families[name]
		if f.kind == "" {
			pass.Reportf(f.pos, "metric family %q has # HELP but no # TYPE line", name)
		} else if !f.hasHelp {
			pass.Reportf(f.pos, "metric family %q has no # HELP line", name)
		}
	}

	// Every sample must belong to a declared family. Histograms emit
	// _bucket/_sum/_count series and quantile lines under the base name.
	resolves := func(name string) bool {
		if _, ok := families[name]; ok {
			return true
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base, found := strings.CutSuffix(name, suffix)
			if !found {
				continue
			}
			if f, ok := families[base]; ok && (f.kind == "histogram" || f.kind == "summary") {
				return true
			}
		}
		return false
	}
	for _, s := range samples {
		if !resolves(s.name) {
			pass.Reportf(s.pos, "sample line emits %q but no # TYPE declares that family — typo between declaration and emission?", s.name)
		}
	}

	// Histogram-specific sample validation.
	type histState struct {
		bucket, sum, count bool
		sawInf             bool
	}
	hists := map[string]*histState{}
	for name, f := range families {
		if f.kind == "histogram" {
			hists[name] = &histState{}
		}
	}
	for _, s := range samples {
		if _, bare := hists[s.name]; bare {
			pass.Reportf(s.pos, "histogram family %q emits a bare sample line; histograms expose only _bucket/_sum/_count series", s.name)
			continue
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base, found := strings.CutSuffix(s.name, suffix)
			if !found {
				continue
			}
			st, ok := hists[base]
			if !ok {
				continue
			}
			switch suffix {
			case "_bucket":
				st.bucket = true
				if !strings.Contains(s.line, "le=") {
					pass.Reportf(s.pos, "histogram bucket sample %q has no le label", s.name)
				}
				if strings.Contains(s.line, `le="+Inf"`) {
					st.sawInf = true
				}
			case "_sum":
				st.sum = true
			case "_count":
				st.count = true
			}
		}
	}
	histNames := make([]string, 0, len(hists))
	for name := range hists {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		st := hists[name]
		if !st.bucket && !st.sum && !st.count {
			continue // declared here, emitted elsewhere — nothing to judge
		}
		var missing []string
		for _, p := range []struct {
			ok     bool
			suffix string
		}{{st.bucket, "_bucket"}, {st.sum, "_sum"}, {st.count, "_count"}} {
			if !p.ok {
				missing = append(missing, p.suffix)
			}
		}
		if len(missing) > 0 {
			pass.Reportf(families[name].pos, "histogram family %q is missing its %s series", name, strings.Join(missing, ", "))
		} else if !st.sawInf {
			pass.Reportf(families[name].pos, "histogram family %q has no le=\"+Inf\" bucket sample", name)
		}
	}

	// Reference check: each family name must appear in a test file of
	// the package or in a markdown/YAML doc in the repo, so renames
	// break loudly.
	refs := referenceCorpus(pass)
	names := make([]string, 0, len(families))
	names = append(names, order...)
	sort.Strings(names)
	for _, name := range names {
		if !strings.Contains(refs, name) {
			pass.Reportf(families[name].pos, "metric family %q is not referenced by any test or doc; add it to a test assertion or the metrics table in DESIGN.md", name)
		}
	}
	return nil
}

// referenceCorpus concatenates the package's test files and the repo's
// markdown and workflow docs — the places a metric name should appear
// at least once.
func referenceCorpus(pass *lint.Pass) string {
	var sb strings.Builder
	for _, path := range pass.TestGoFiles {
		if b, err := os.ReadFile(path); err == nil {
			sb.Write(b)
		}
	}
	root := pass.ModRoot
	if root == "" {
		root = pass.Dir
	}
	_ = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			name := d.Name()
			dotDir := strings.HasPrefix(name, ".") && path != root && name != ".github"
			if name == "testdata" || name == "figures-out" || dotDir {
				return filepath.SkipDir
			}
			return nil
		}
		switch filepath.Ext(path) {
		case ".md", ".yml", ".yaml":
			if b, err := os.ReadFile(path); err == nil {
				sb.Write(b)
			}
		}
		return nil
	})
	return sb.String()
}
