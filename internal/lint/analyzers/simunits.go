package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"repro/internal/lint"
)

// SimUnits is dimensional analysis for simulated quantities. The
// paper's model mixes four families of numbers — simulated time,
// block counts, byte counts, event counts — that are all plain ints and
// floats to the Go type system; one seconds/blocks mixup silently
// invalidates every figure. A named type or struct field tagged
//
//	//detlint:unit <unit>
//
// declares its dimension (the repo uses ms, blocks, bytes, events,
// cylinders; any lowercase word works). Units propagate through local
// assignments by forward dataflow over the framework CFG, and through
// call results via per-function facts (a function whose every return
// has one known unit exports it, so dependents see it across package
// boundaries). The analyzer flags cross-unit addition, subtraction and
// comparison, conversions into a tagged named type from a value of a
// different unit, and assignments of a known unit into a field tagged
// with another. Multiplication and division legitimately change
// dimension, so they only launder units into "unknown" — conservative
// by construction: a finding always involves two *known*, different
// units.
var SimUnits = &lint.Analyzer{
	Name:  "simunits",
	Doc:   "flag arithmetic, comparisons and conversions that mix tagged simulation units (ms, blocks, bytes, events)",
	Order: lint.DepsFirst,
	Run:   runSimUnits,
}

const unitPrefix = "//detlint:unit"

var unitWordRx = regexp.MustCompile(`^[a-z][a-z0-9-]*$`)

// unitFact is the dimension exported for a TypeName, a struct-field
// Var, or (when inferred from returns) a Func.
type unitFact string

type unitChecker struct {
	pass *lint.Pass
	// local return-unit summaries for this package's functions,
	// resolved before the reporting pass so in-package call order does
	// not matter.
	returns map[*types.Func]string
	// env is the current block's local-variable units during dataflow.
	env map[types.Object]string
	// reported dedups findings across dataflow revisits.
	reported map[string]bool
	reports  []lint.Diagnostic
}

func runSimUnits(pass *lint.Pass) error {
	c := &unitChecker{
		pass:     pass,
		returns:  make(map[*types.Func]string),
		reported: make(map[string]bool),
	}
	c.collectTags()

	// Round 1 infers return units (no reporting) so round 2 sees every
	// in-package callee summary regardless of declaration order; two
	// rounds of inference reach the fixpoint for chains of unit-typed
	// helpers one deep per round, which covers the tree.
	for i := 0; i < 2; i++ {
		c.forEachFunc(func(fd *ast.FuncDecl) { c.inferReturns(fd) })
	}
	for fn, unit := range c.returns {
		if unit != "" {
			pass.ExportObjectFact(fn, unitFact(unit))
		}
	}
	c.forEachFunc(func(fd *ast.FuncDecl) { c.checkFunc(fd) })

	sort.Slice(c.reports, func(i, j int) bool {
		a, b := c.reports[i], c.reports[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	for _, d := range c.reports {
		pass.Report(d)
	}
	return nil
}

func (c *unitChecker) forEachFunc(fn func(*ast.FuncDecl)) {
	for _, file := range c.pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// collectTags parses //detlint:unit directives on type declarations and
// struct fields, exporting a fact per tagged object.
func (c *unitChecker) collectTags() {
	for _, file := range c.pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				unit := c.unitDirective(ts.Doc, ts.Comment, gd.Doc)
				if unit != "" {
					if obj := c.pass.TypesInfo.Defs[ts.Name]; obj != nil {
						c.pass.ExportObjectFact(obj, unitFact(unit))
					}
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					c.collectFieldTags(st)
				}
			}
		}
	}
}

func (c *unitChecker) collectFieldTags(st *ast.StructType) {
	for _, field := range st.Fields.List {
		unit := c.unitDirective(field.Doc, field.Comment, nil)
		if unit == "" {
			continue
		}
		for _, name := range field.Names {
			if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
				c.pass.ExportObjectFact(obj, unitFact(unit))
			}
		}
	}
}

// unitDirective extracts the unit word from the first //detlint:unit
// line in the given comment groups, reporting malformed tags.
func (c *unitChecker) unitDirective(groups ...*ast.CommentGroup) string {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, cm := range cg.List {
			if !strings.HasPrefix(cm.Text, unitPrefix) {
				continue
			}
			word := strings.TrimSpace(strings.TrimPrefix(cm.Text, unitPrefix))
			if !unitWordRx.MatchString(word) {
				c.pass.Reportf(cm.Pos(), "//detlint:unit wants one lowercase unit word (ms, blocks, bytes, events, ...), got %q", word)
				return ""
			}
			return word
		}
	}
	return ""
}

// typeUnit returns the unit a type carries through its name, or "".
func (c *unitChecker) typeUnit(t types.Type) string {
	if t == nil {
		return ""
	}
	if named, ok := t.(*types.Named); ok {
		if f, ok := c.pass.ImportObjectFact(named.Obj()).(unitFact); ok {
			return string(f)
		}
	}
	return ""
}

// objUnit returns the declared unit of a field or type object, or "".
func (c *unitChecker) objUnit(obj types.Object) string {
	if obj == nil {
		return ""
	}
	if f, ok := c.pass.ImportObjectFact(obj).(unitFact); ok {
		return string(f)
	}
	return ""
}

// isConst reports whether e is a compile-time constant: constants are
// dimensionless glue (`x - 1`, `t < 0`) and adopt the other operand's
// unit.
func (c *unitChecker) isConst(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// unitOf computes the unit of an expression under env. Purely
// computational: checks and reports happen in checkNode.
func (c *unitChecker) unitOf(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.unitOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return c.unitOf(e.X)
		}
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[e]; obj != nil {
			if u, ok := c.env[obj]; ok {
				return u
			}
			if u := c.objUnit(obj); u != "" {
				return u // a package var or param declared with a tagged field type? (fields only, in practice)
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if u := c.objUnit(sel.Obj()); u != "" {
				return u
			}
		}
	case *ast.CallExpr:
		if tv, ok := c.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			return c.typeUnit(tv.Type) // conversion: the target type's unit
		}
		if fn := c.calleeFunc(e); fn != nil {
			if u, ok := c.returns[fn]; ok && u != "" {
				return u
			}
			if u := c.objUnit(fn); u != "" {
				return u
			}
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB:
			x, y := c.unitOf(e.X), c.unitOf(e.Y)
			switch {
			case x == y:
				return x
			case x != "" && (y == "" && c.isConst(e.Y)):
				return x
			case y != "" && (x == "" && c.isConst(e.X)):
				return y
			}
			return ""
		case token.MUL, token.QUO, token.REM:
			// Dimension changes; a constant factor keeps it (2*R is
			// still time).
			x, y := c.unitOf(e.X), c.unitOf(e.Y)
			if x != "" && c.isConst(e.Y) {
				return x
			}
			if y != "" && c.isConst(e.X) && e.Op == token.MUL {
				return y
			}
			return ""
		}
		return ""
	}
	// Fall back to the static type's tag (covers composite selectors,
	// index expressions, method results of tagged named types, ...).
	if tv, ok := c.pass.TypesInfo.Types[e]; ok {
		return c.typeUnit(tv.Type)
	}
	return ""
}

// calleeFunc resolves a call's static callee, or nil for dynamic calls.
func (c *unitChecker) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := c.pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// inferReturns records fn's return unit when it has exactly one result
// and every return expression agrees on one known unit.
func (c *unitChecker) inferReturns(fd *ast.FuncDecl) {
	obj, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	if sig.Results().Len() != 1 {
		return
	}
	c.env = map[types.Object]string{} // returns are inferred without local flow: tags and callee facts only
	unit, consistent := "", true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if len(n.Results) != 1 {
				consistent = false
				return true
			}
			u := c.unitOf(n.Results[0])
			if u == "" && c.isConst(n.Results[0]) {
				return true // `return 0` adopts the other returns' unit
			}
			if u == "" || (unit != "" && u != unit) {
				consistent = false
				return true
			}
			unit = u
		}
		return true
	})
	if consistent && unit != "" {
		c.returns[obj] = unit
	}
}

// checkFunc runs the forward dataflow over fd's CFG and reports unit
// conflicts.
func (c *unitChecker) checkFunc(fd *ast.FuncDecl) {
	cfg := lint.NewCFG(fd.Body)
	preds := make([][]*lint.Block, len(cfg.Blocks))
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b)
		}
	}
	in := make([]map[types.Object]string, len(cfg.Blocks))
	out := make([]map[types.Object]string, len(cfg.Blocks))
	in[cfg.Entry.Index] = map[types.Object]string{}

	// Iterate to fixpoint: the lattice per variable is tiny (unknown or
	// one unit word, meets collapse to unknown), so this terminates
	// fast; the visit order is block index for determinism.
	changed := true
	for rounds := 0; changed && rounds < len(cfg.Blocks)+2; rounds++ {
		changed = false
		for _, b := range cfg.Blocks {
			newIn := meetEnvs(preds[b.Index], out, b == cfg.Entry)
			c.env = copyEnv(newIn)
			for _, n := range b.Nodes {
				c.transfer(n)
			}
			if !envEqual(in[b.Index], newIn) || !envEqual(out[b.Index], c.env) {
				changed = true
			}
			in[b.Index] = newIn
			out[b.Index] = c.env
		}
	}
	// Reporting pass: stable envs, walk each block once.
	for _, b := range cfg.Blocks {
		c.env = copyEnv(in[b.Index])
		for _, n := range b.Nodes {
			c.checkNode(n)
			c.transfer(n)
		}
	}
}

func meetEnvs(preds []*lint.Block, out []map[types.Object]string, isEntry bool) map[types.Object]string {
	if isEntry || len(preds) == 0 {
		return map[types.Object]string{}
	}
	merged := map[types.Object]string{}
	first := true
	for _, p := range preds {
		o := out[p.Index]
		if o == nil {
			continue // unprocessed predecessor this round: optimistic skip
		}
		if first {
			for k, v := range o {
				merged[k] = v
			}
			first = false
			continue
		}
		for k, v := range merged {
			if o[k] != v {
				delete(merged, k)
			}
		}
	}
	return merged
}

func copyEnv(env map[types.Object]string) map[types.Object]string {
	out := make(map[types.Object]string, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

func envEqual(a, b map[types.Object]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// transfer updates env for one atomic node (assignments and short var
// declarations; everything else leaves env alone).
func (c *unitChecker) transfer(n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			// Multi-value assignment: units of tuple results are not
			// tracked; drop stale knowledge about the targets.
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					c.forgetIdent(id)
				}
			}
			return
		}
		for i, lhs := range n.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			u := c.unitOf(n.Rhs[i])
			obj := c.identObj(id)
			if obj == nil {
				continue
			}
			if u != "" {
				c.env[obj] = u
			} else {
				delete(c.env, obj)
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != len(vs.Names) {
				continue
			}
			for i, name := range vs.Names {
				if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
					if u := c.unitOf(vs.Values[i]); u != "" {
						c.env[obj] = u
					}
				}
			}
		}
	}
}

func (c *unitChecker) identObj(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

func (c *unitChecker) forgetIdent(id *ast.Ident) {
	if obj := c.identObj(id); obj != nil {
		delete(c.env, obj)
	}
}

// checkNode walks one atomic node and reports every unit conflict in
// it: mixed +/-, mixed comparisons, cross-unit conversions into tagged
// named types, cross-unit stores into tagged fields, and cross-unit
// compound assignment.
func (c *unitChecker) checkNode(n ast.Node) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			return false // literals get their own CFG? no — v2 keeps to declared functions
		case *ast.BinaryExpr:
			c.checkBinary(node)
		case *ast.CallExpr:
			c.checkConversion(node)
		case *ast.AssignStmt:
			c.checkAssign(node)
		}
		return true
	})
}

func (c *unitChecker) checkBinary(e *ast.BinaryExpr) {
	switch e.Op {
	case token.ADD, token.SUB, token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
	default:
		return
	}
	if c.isConst(e.X) || c.isConst(e.Y) {
		return
	}
	x, y := c.unitOf(e.X), c.unitOf(e.Y)
	if x == "" || y == "" || x == y {
		return
	}
	what := "adds"
	switch e.Op {
	case token.SUB:
		what = "subtracts"
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		what = "compares"
	}
	c.reportf(e.OpPos, "%s %s %q and %q: cross-unit arithmetic on simulated quantities", e.Op, what, x, y)
}

func (c *unitChecker) checkConversion(call *ast.CallExpr) {
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	target := c.typeUnit(tv.Type)
	if target == "" {
		return
	}
	if c.isConst(call.Args[0]) {
		return
	}
	from := c.unitOf(call.Args[0])
	if from == "" || from == target {
		return
	}
	c.reportf(call.Pos(), "conversion of a %q value into %s (unit %q) crosses units", from, tv.Type, target)
}

func (c *unitChecker) checkAssign(n *ast.AssignStmt) {
	// Compound ops are additive: unit on both sides must agree.
	compound := n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		rhsUnit := c.unitOf(n.Rhs[i])
		if rhsUnit == "" || c.isConst(n.Rhs[i]) {
			continue
		}
		var lhsUnit string
		var fieldName string
		switch l := lhs.(type) {
		case *ast.SelectorExpr:
			if sel, ok := c.pass.TypesInfo.Selections[l]; ok && sel.Kind() == types.FieldVal {
				lhsUnit = c.objUnit(sel.Obj())
				fieldName = sel.Obj().Name()
			}
		case *ast.Ident:
			if !compound {
				continue // plain stores to locals retag, handled by transfer
			}
			lhsUnit = c.unitOf(l)
			fieldName = l.Name
		}
		if lhsUnit == "" || lhsUnit == rhsUnit {
			continue
		}
		c.reportf(n.TokPos, "stores a %q value into %s (unit %q)", rhsUnit, fieldName, lhsUnit)
	}
}

func (c *unitChecker) reportf(pos token.Pos, format string, args ...any) {
	p := c.pass.Fset.Position(pos)
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%s:%d:%d:%s", p.Filename, p.Line, p.Column, msg)
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.reports = append(c.reports, lint.Diagnostic{Pos: p, Analyzer: c.pass.Analyzer.Name, Message: msg})
}
