// Package analyzers holds the repo-specific detlint analyzers: the
// machine-checked form of the determinism and cache-key invariants that
// the paper reproduction (and the simd result cache built on it)
// depends on. See DESIGN.md §10 for the catalogue and rationale.
package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Nondet flags sources of run-to-run nondeterminism in the simulation
// packages: wall-clock reads, the process-global math/rand generators,
// environment lookups, and map iteration whose order can leak into
// results. Simulation time must come from sim.Time, randomness from
// repro/internal/rng streams, and configuration from core.Config — a
// single stray time.Now() silently breaks byte-identical figures and
// poisons the canonical-hash result cache. Legitimate uses (the HTTP
// service layer measuring request latency) are annotated one by one
// with //detlint:allow, never exempted wholesale.
var Nondet = &lint.Analyzer{
	Name: "nondet",
	Doc:  "flag wall clocks, global math/rand, env lookups and order-dependent map iteration in deterministic packages",
	Run:  runNondet,
}

// forbiddenFuncs maps package path → package-level identifiers whose
// use is nondeterministic. An empty set means every exported name in
// the package is forbidden (math/rand's package-level funcs all share
// the unseeded global source).
var forbiddenFuncs = map[string]map[string]string{
	"time": {
		"Now":       "wall-clock read",
		"Since":     "wall-clock read",
		"Until":     "wall-clock read",
		"After":     "wall-clock timer",
		"AfterFunc": "wall-clock timer",
		"Tick":      "wall-clock ticker",
		"NewTimer":  "wall-clock timer",
		"NewTicker": "wall-clock ticker",
	},
	"os": {
		"Getenv":    "environment lookup",
		"LookupEnv": "environment lookup",
		"Environ":   "environment lookup",
	},
	"math/rand":    nil, // any use: the repo's RNG is repro/internal/rng
	"math/rand/v2": nil,
}

func runNondet(pass *lint.Pass) error {
	for _, file := range pass.Files {
		checkForbiddenIdents(pass, file)
		checkMapRanges(pass, file)
	}
	return nil
}

// checkForbiddenIdents reports every use of a forbidden package-level
// function, resolved through the type checker so aliased imports and
// shadowing are handled correctly.
func checkForbiddenIdents(pass *lint.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		names, watched := forbiddenFuncs[obj.Pkg().Path()]
		if !watched || obj.Parent() != obj.Pkg().Scope() {
			return true
		}
		if names == nil {
			pass.Reportf(id.Pos(), "use of %s.%s: deterministic code draws randomness from repro/internal/rng streams, never math/rand", obj.Pkg().Path(), obj.Name())
			return true
		}
		if kind, bad := names[obj.Name()]; bad {
			pass.Reportf(id.Pos(), "%s.%s is a %s: simulation state must be a pure function of core.Config (use sim.Time for simulated clocks)", obj.Pkg().Name(), obj.Name(), kind)
		}
		return true
	})
}

// checkMapRanges flags `range` over a map when the loop body feeds
// iteration-order-dependent state outward: appending to a slice
// declared outside the loop, writing output, or sending on a channel.
// The one blessed shape — collecting keys and sorting them before use —
// is recognized: an append target that is passed to sort/slices
// ordering later in the same function is not reported.
func checkMapRanges(pass *lint.Pass, file *ast.File) {
	// Walk with an explicit node stack so the sorted-later check can
	// find the enclosing function body. ast.Inspect signals post-visit
	// with a nil node, one per visited node, so the stack pops on nil.
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if rs, ok := n.(*ast.RangeStmt); ok {
			tv, ok := pass.TypesInfo.Types[rs.X]
			if ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					reportOrderSinks(pass, rs, enclosingFunc(stack))
				}
			}
		}
		stack = append(stack, n)
		return true
	})
}

// enclosingFunc returns the innermost function declaration or literal
// on the node stack, or nil.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// reportOrderSinks scans one map-range body for order-dependent sinks.
func reportOrderSinks(pass *lint.Pass, loop *ast.RangeStmt, enclosing ast.Node) {
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside a map-range loop publishes values in map iteration order")
		case *ast.CallExpr:
			if name := outputCallName(pass, n); name != "" {
				pass.Reportf(n.Pos(), "%s inside a map-range loop emits output in map iteration order; iterate a sorted key slice instead", name)
			}
		case *ast.AssignStmt:
			checkOuterAppend(pass, n, loop, enclosing)
		}
		return true
	})
}

// outputCallName reports a human name for calls that write output
// (fmt printers, io.Writer methods), or "" if the call is not one.
func outputCallName(pass *lint.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && obj.Imported().Path() == "fmt" {
			switch sel.Sel.Name {
			case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
				return "fmt." + sel.Sel.Name
			}
			return ""
		}
	}
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
		switch sel.Sel.Name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			if recvWritesOutput(s.Recv()) {
				return typeShortName(s.Recv()) + "." + sel.Sel.Name
			}
		}
	}
	return ""
}

// recvWritesOutput reports whether a Write* method receiver is an
// output sink worth flagging (io.Writer implementations; string/byte
// builders count — they usually feed rendered output).
func recvWritesOutput(t types.Type) bool {
	switch typeShortName(t) {
	case "strings.Builder", "bytes.Buffer", "bufio.Writer":
		return true
	}
	// Any other receiver implementing io.Writer-shaped methods is
	// treated as a writer too; the method-name filter above already
	// narrowed this to Write/WriteString/WriteByte/WriteRune.
	return true
}

func typeShortName(t types.Type) string {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		return named.Obj().Pkg().Name() + "." + named.Obj().Name()
	}
	return t.String()
}

// checkOuterAppend flags `s = append(s, ...)` inside a map-range loop
// when s is declared outside the loop — unless s is later handed to a
// sort, which restores a canonical order.
func checkOuterAppend(pass *lint.Pass, assign *ast.AssignStmt, loop *ast.RangeStmt, enclosing ast.Node) {
	for _, rhs := range assign.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			continue
		}
		if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
			continue
		}
		target, ok := call.Args[0].(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.Uses[target]
		if obj == nil || obj.Pos() == token.NoPos {
			continue
		}
		if obj.Pos() >= loop.Pos() && obj.Pos() < loop.End() {
			continue // declared inside the loop: order cannot escape
		}
		if sortedLater(pass, obj, loop, enclosing) {
			continue
		}
		pass.Reportf(assign.Pos(), "append to %q inside a map-range loop accumulates in map iteration order; collect keys, sort, then iterate (or sort %q before use)", target.Name, target.Name)
	}
}

// sortedLater reports whether obj is passed to a sort/slices ordering
// call after the loop within the enclosing function — the canonical
// collect-keys-then-sort idiom.
func sortedLater(pass *lint.Pass, obj types.Object, loop *ast.RangeStmt, enclosing ast.Node) bool {
	if enclosing == nil {
		return false
	}
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < loop.End() || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
