package analyzers

import "repro/internal/lint"

// All returns every detlint analyzer, in the order findings are
// documented in DESIGN.md §10. Each analyzer self-gates on package
// content (confighash needs a Config/CanonicalJSON pair, metricreg a
// Prometheus exposition), so running the full suite over a package is
// always safe.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{Nondet, ConfigHash, FloatCmp, MetricReg}
}
