package analyzers

import "repro/internal/lint"

// All returns every detlint analyzer: the four v1 syntax-local checks
// (DESIGN.md §10) followed by the four v2 dataflow analyzers
// (DESIGN.md §15). Each analyzer self-gates on package content
// (confighash needs a Config/CanonicalJSON pair, metricreg a
// Prometheus exposition, simunits //detlint:unit tags, hotalloc
// //detlint:hotpath roots, ctxflow/lockdisc the concurrent packages),
// so running the full suite over a package is always safe.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{Nondet, ConfigHash, FloatCmp, MetricReg, SimUnits, CtxFlow, LockDisc, HotAlloc}
}
