package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// LockDisc enforces lock discipline in the service and cache layers,
// where a mutex guards in-memory maps but the expensive work — engine
// runs, disk cache file I/O, channel rendezvous — must happen outside
// it. Two layers of checking:
//
//   - Linear held-set tracking per function: a sync.Mutex/RWMutex
//     Lock/RLock adds to the held set, Unlock removes, a deferred
//     Unlock pins it to function exit. While anything is held, channel
//     sends, os.* file I/O, and core engine runs are findings. The
//     walk is branch-local (a Lock inside an if does not leak out),
//     which trades a little soundness for zero false positives on the
//     straight-line Lock/defer-Unlock idiom the repo uses.
//
//   - A derived lock-ordering check over the fact store: every
//     acquisition that happens while another identified lock is held
//     exports an ordering edge on the held lock's field object. An
//     acquisition that inverts an already-exported edge — B then A
//     after some function established A then B — is reported at the
//     second site, across packages, because all passes share one
//     object-identity fact store.
var LockDisc = &lint.Analyzer{
	Name: "lockdisc",
	Doc:  "no engine runs, disk I/O or channel sends under a lock; consistent lock acquisition order",
	Run:  runLockDisc,
}

// lockEdge records "this lock was acquired at pos while the fact's
// owner was held".
type lockEdge struct {
	obj  types.Object
	name string
	pos  token.Position
}

// lockFact is the per-lock ordering summary: the locks acquired while
// this one was held, anywhere in the module so far.
type lockFact struct {
	name  string
	after []lockEdge
}

// heldLock is one entry of the walker's held set.
type heldLock struct {
	key  string       // types.ExprString of the receiver, for display + set identity
	obj  types.Object // the mutex field/var, nil when the receiver is too dynamic to name
	pos  token.Pos
}

func runLockDisc(pass *lint.Pass) error {
	if !concurrencyScoped(pass.Pkg.Path()) {
		return nil
	}
	w := &lockWalker{pass: pass}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w.stmts(fd.Body.List, nil)
			}
		}
	}
	return nil
}

type lockWalker struct {
	pass *lint.Pass
}

func (w *lockWalker) stmts(list []ast.Stmt, held []heldLock) []heldLock {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

// stmt threads the held set through one statement. Branch bodies get a
// copy: what a branch locks stays in the branch.
func (w *lockWalker) stmt(s ast.Stmt, held []heldLock) []heldLock {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if lk, acquire := w.lockOp(s.X); lk != nil {
			if acquire {
				return w.acquire(*lk, held)
			}
			return w.release(*lk, held)
		}
		w.check(s, held)
	case *ast.DeferStmt:
		if lk, acquire := w.lockOp(s.Call); lk != nil && !acquire {
			return held // deferred unlock: held until function exit, by design
		}
		w.check(s.Call, held)
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.check(s.Cond, held)
		w.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Cond != nil {
			w.check(s.Cond, held)
		}
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		w.check(s.X, held)
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			clauses = sw.Body.List
		}
		for _, c := range clauses {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.check(e, held)
				}
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		// A select with a default case never blocks, so its sends are
		// tolerated under a lock; without one, every comm clause can
		// block indefinitely and gets checked.
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm != nil && !hasDefault {
				w.check(cc.Comm, held)
			}
			w.stmts(cc.Body, copyHeld(held))
		}
	default:
		w.check(s, held)
	}
	return held
}

func copyHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

// lockOp recognizes X.Lock/RLock (acquire=true) and X.Unlock/RUnlock
// (acquire=false) on a sync.Mutex or sync.RWMutex, returning the lock's
// identity.
func (w *lockWalker) lockOp(e ast.Expr) (*heldLock, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return nil, false
	}
	fn, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false
	}
	lk := heldLock{key: types.ExprString(sel.X), pos: call.Pos()}
	// Identify the mutex object when the receiver is a plain variable or
	// a field selection — that identity is what the ordering facts hang
	// off.
	switch recv := sel.X.(type) {
	case *ast.Ident:
		lk.obj = w.pass.TypesInfo.Uses[recv]
	case *ast.SelectorExpr:
		if s, ok := w.pass.TypesInfo.Selections[recv]; ok && s.Kind() == types.FieldVal {
			lk.obj = s.Obj()
		} else {
			lk.obj = w.pass.TypesInfo.Uses[recv.Sel]
		}
	}
	return &lk, acquire
}

// acquire adds lk to the held set and maintains the ordering facts: an
// edge held→lk is exported, and an existing lk→held edge anywhere in
// the module is an inversion.
func (w *lockWalker) acquire(lk heldLock, held []heldLock) []heldLock {
	for _, h := range held {
		if h.obj == nil || lk.obj == nil || h.obj == lk.obj {
			continue
		}
		// Inversion: someone already established lk-then-h.
		if f, ok := w.pass.ImportObjectFact(lk.obj).(*lockFact); ok {
			for _, e := range f.after {
				if e.obj == h.obj {
					w.pass.Reportf(lk.pos, "acquiring %s while %s is held inverts the lock order established at %s:%d", lk.key, h.key, filebase(e.pos.Filename), e.pos.Line)
				}
			}
		}
		f, _ := w.pass.ImportObjectFact(h.obj).(*lockFact)
		if f == nil {
			f = &lockFact{name: h.key}
		}
		known := false
		for _, e := range f.after {
			if e.obj == lk.obj {
				known = true
			}
		}
		if !known {
			f.after = append(f.after, lockEdge{obj: lk.obj, name: lk.key, pos: w.pass.Fset.Position(lk.pos)})
		}
		w.pass.ExportObjectFact(h.obj, f)
	}
	return append(held, lk)
}

func (w *lockWalker) release(lk heldLock, held []heldLock) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].key == lk.key {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

func filebase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// check scans one node for work that must not happen under a lock.
// Function literals are skipped: a closure body runs when it is called,
// not where it is written.
func (w *lockWalker) check(n ast.Node, held []heldLock) {
	if len(held) == 0 || n == nil {
		return
	}
	holder := held[len(held)-1].key
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			w.pass.Reportf(n.Pos(), "channel send while %s is held: a slow receiver stalls every caller of this lock", holder)
		case *ast.CallExpr:
			w.checkCall(n, holder)
		}
		return true
	})
}

// checkCall flags disk I/O (the os package, *os.File methods) and
// engine runs (repro/internal/core Run*) under a lock.
func (w *lockWalker) checkCall(call *ast.CallExpr, holder string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch {
	case fn.Pkg().Path() == "os":
		w.pass.Reportf(call.Pos(), "os.%s while %s is held: file I/O under a lock serializes every caller on the disk", sel.Sel.Name, holder)
	case isOSFileMethod(fn):
		w.pass.Reportf(call.Pos(), "file %s while %s is held: file I/O under a lock serializes every caller on the disk", sel.Sel.Name, holder)
	case strings.HasSuffix(fn.Pkg().Path(), "internal/core") && strings.HasPrefix(fn.Name(), "Run"):
		w.pass.Reportf(call.Pos(), "engine run %s.%s while %s is held: a simulation can take seconds, run it outside the lock", fn.Pkg().Name(), fn.Name(), holder)
	}
}

// isOSFileMethod reports whether fn is a method of *os.File.
func isOSFileMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}
