// Package lockdisc is the intentional-violation fixture for the lock
// discipline analyzer: blocking work under a mutex and a lock-order
// inversion.
package lockdisc

import (
	"os"
	"sync"
)

type cache struct {
	mu    sync.Mutex
	aux   sync.Mutex
	items map[string][]byte
	out   chan []byte
}

// sendUnder holds mu across a channel send: a slow receiver stalls
// every other caller.
func (c *cache) sendUnder(b []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.out <- b // want `channel send while c.mu is held`
}

// readUnder does file I/O with the lock held.
func (c *cache) readUnder(path string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return os.ReadFile(path) // want `os.ReadFile while c.mu is held`
}

// readOutside is the clean shape: copy under the lock, touch the disk
// after releasing it.
func (c *cache) readOutside(path string) ([]byte, error) {
	c.mu.Lock()
	_, cached := c.items[path]
	c.mu.Unlock()
	if cached {
		return nil, nil
	}
	return os.ReadFile(path)
}

// trySend is tolerated: a select with a default case cannot block.
func (c *cache) trySend(b []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case c.out <- b:
	default:
	}
}

// flush documents a deliberate send-under-lock with a reasoned allow.
func (c *cache) flush(b []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//detlint:allow lockdisc out is buffered with one slot per possible waiter
	c.out <- b
}

// ordered establishes the order mu, then aux.
func (c *cache) ordered() {
	c.mu.Lock()
	c.aux.Lock()
	c.aux.Unlock()
	c.mu.Unlock()
}

// inverted acquires the same pair the other way around: with ordered's
// edge in the fact store this is a deadlock-in-waiting.
func (c *cache) inverted() {
	c.aux.Lock()
	c.mu.Lock() // want `acquiring c.mu while c.aux is held inverts the lock order`
	c.mu.Unlock()
	c.aux.Unlock()
}
