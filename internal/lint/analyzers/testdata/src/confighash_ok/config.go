// Package confighash_ok is a detlint fixture mirroring the shape of
// core.Config's canonical encoder: scalar fields copied directly,
// a nested fault-spec struct traversed field by field, a wholesale
// slice copy (Outages) whose element fields need no mention, and a
// callback field that is rejected rather than encoded. The confighash
// analyzer must report nothing here.
package confighash_ok

import (
	"encoding/json"
	"errors"
)

// Window is encoded wholesale via its json tags; its fields are never
// referenced individually in the encoder.
type Window struct {
	StartMs float64 `json:"start_ms"`
	EndMs   float64 `json:"end_ms"`
}

type DiskSpec struct {
	Disk     int
	Slowdown float64
	Outages  []Window
}

type Spec struct {
	Disks []DiskSpec
}

type Config struct {
	K        int
	Seed     uint64
	Faults   *Spec
	OnResult func()
}

type canonicalConfig struct {
	K      int              `json:"k"`
	Seed   uint64           `json:"seed"`
	Faults []canonicalFault `json:"faults,omitempty"`
}

type canonicalFault struct {
	Disk     int      `json:"disk"`
	Slowdown float64  `json:"slowdown,omitempty"`
	Outages  []Window `json:"outages,omitempty"`
}

func (c Config) CanonicalJSON() ([]byte, error) {
	if c.OnResult != nil {
		return nil, errors.New("config with a callback has no canonical encoding")
	}
	cc := canonicalConfig{K: c.K, Seed: c.Seed}
	if c.Faults != nil {
		for _, ds := range c.Faults.Disks {
			cc.Faults = append(cc.Faults, canonicalFault{
				Disk:     ds.Disk,
				Slowdown: ds.Slowdown,
				Outages:  ds.Outages,
			})
		}
	}
	return json.Marshal(cc)
}
