// Package nondet is a detlint fixture exercising every nondeterminism
// rule: wall clocks, global math/rand, environment lookups, and
// order-dependent map iteration — plus the shapes that must NOT be
// flagged (loop-local appends, collect-then-sort) and the
// //detlint:allow escape hatch.
package nondet

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"
)

func clocks() time.Time {
	t := time.Now()             // want `wall-clock read`
	_ = time.Since(t)           // want `wall-clock read`
	_ = time.After(time.Second) // want `wall-clock timer`
	return t
}

func env() string {
	return os.Getenv("HOME") // want `environment lookup`
}

func globalRand() int {
	return rand.Intn(6) // want `never math/rand`
}

func seededRandStillFlagged() *rand.Rand { // want `never math/rand`
	return rand.New(rand.NewSource(1)) // want `never math/rand` // want `never math/rand`
}

func mapAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `map iteration order`
	}
	return out
}

// The blessed idiom: collect keys, sort, iterate. Not flagged.
func mapAppendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `map iteration order`
	}
}

func mapSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `map iteration order`
	}
}

// Loop-local accumulation and order-independent reduction: not flagged.
func mapReduce(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// Slice iteration is ordered; nothing to flag.
func sliceAppend(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

func allowedTrailing() time.Time {
	return time.Now() //detlint:allow fixture demonstrates the unscoped escape hatch
}

func allowedLineAbove(m map[int]int, ch chan int) {
	for k := range m {
		//detlint:allow nondet fixture demonstrates the analyzer-scoped escape hatch
		ch <- k
	}
}

// --- Event-core idioms (the state-machine engine, PR "event-driven
// engine core"). These pin the shapes the hot path relies on as
// unflagged, and the shapes it must avoid as flagged.

// Map membership probed from a deterministic cursor — the cache's
// out-of-order arrival drain. Lookups and deletes at computed keys are
// not iteration; never flagged.
func mapCursorDrain(arrived map[int]bool) int {
	next := 0
	for arrived[next] {
		delete(arrived, next)
		next++
	}
	return next
}

// A method value bound once and re-scheduled for every step (the
// machine's stepFn / a disk's unparkFn): deterministic, not flagged.
type stepper struct {
	n     int
	calls []func()
}

func (s *stepper) step() { s.n++ }

func bindOnce() *stepper {
	s := &stepper{}
	fn := s.step
	s.calls = append(s.calls, fn, fn)
	return s
}

// Fanning callbacks out of a map into an outer schedule leaks
// iteration order into event order; the event core keys pending work
// by integer index precisely to avoid this shape.
func mapCallbackFanout(pending map[int]func()) []func() {
	var schedule []func()
	for _, fn := range pending {
		schedule = append(schedule, fn) // want `map iteration order`
	}
	return schedule
}
