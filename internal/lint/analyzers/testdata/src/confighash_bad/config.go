// Package confighash_bad is the intentional-violation fixture for the
// confighash analyzer: a Config field the encoder ignores (Skew), a
// nested spec field the encoder ignores (Retries), and a canonical
// mirror field that is never assigned (Unused). Each must be rejected —
// an unserialized Config field is exactly the cache-poisoning bug the
// analyzer exists to stop.
package confighash_bad

import "encoding/json"

type DiskSpec struct {
	Disk    int
	Retries int // want `Config.Faults.Disks.Retries does not feed CanonicalJSON`
}

type Spec struct {
	Disks []DiskSpec
}

type Config struct {
	K      int
	Skew   float64 // want `Config.Skew does not feed CanonicalJSON`
	Faults *Spec
}

type canonicalConfig struct {
	K      int              `json:"k"`
	Unused int              `json:"unused"` // want `canonicalConfig.Unused is never assigned`
	Faults []canonicalFault `json:"faults,omitempty"`
}

type canonicalFault struct {
	Disk int `json:"disk"`
}

func (c Config) CanonicalJSON() ([]byte, error) {
	cc := canonicalConfig{K: c.K}
	if c.Faults != nil {
		for _, ds := range c.Faults.Disks {
			cc.Faults = append(cc.Faults, canonicalFault{Disk: ds.Disk})
		}
	}
	return json.Marshal(cc)
}
