// Package floatcmp is a detlint fixture for the exact-float-equality
// rule: computed comparisons are flagged (including named float types),
// constant sentinels and allowlisted tolerance helpers are not.
package floatcmp

type duration float64

func computed(a, b float64) bool {
	return a == b // want `exact ==`
}

func namedFloat(a, b duration) bool {
	return a != b // want `exact !=`
}

func float32Too(a, b float32) bool {
	return a == b // want `exact ==`
}

// Comparison against a compile-time constant is exact by construction:
// the zero sentinel and config constants are not flagged.
func sentinels(a float64) bool {
	return a == 0 || a != 1.5
}

func ints(a, b int) bool {
	return a == b
}

// approxEqual is an allowlisted tolerance helper: the raw equality is
// its legitimate fast path.
func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func allowed(a, b float64) bool {
	return a == b //detlint:allow floatcmp fixture demonstrates the scoped escape hatch
}
