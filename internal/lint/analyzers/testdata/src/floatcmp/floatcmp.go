// Package floatcmp is a detlint fixture for the exact-float-equality
// rule: computed comparisons are flagged (including named float types),
// constant sentinels and allowlisted tolerance helpers are not.
package floatcmp

type duration float64

func computed(a, b float64) bool {
	return a == b // want `exact ==`
}

func namedFloat(a, b duration) bool {
	return a != b // want `exact !=`
}

func float32Too(a, b float32) bool {
	return a == b // want `exact ==`
}

// Comparison against a compile-time constant is exact by construction:
// the zero sentinel and config constants are not flagged.
func sentinels(a float64) bool {
	return a == 0 || a != 1.5
}

func ints(a, b int) bool {
	return a == b
}

// approxEqual is an allowlisted tolerance helper: the raw equality is
// its legitimate fast path.
func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func allowed(a, b float64) bool {
	return a == b //detlint:allow floatcmp fixture demonstrates the scoped escape hatch
}

// A switch over a float tag hides an exact == in every case.
func switchCases(x, y float64) int {
	switch x {
	case y: // want `exact switch case on a computed floating-point value`
		return 1
	case 0: // constant case: exact by construction, like a == 0
		return 2
	}
	switch { // tagless: conditions are ordinary comparisons
	case x > y:
		return 3
	}
	return 0
}

// A float-keyed map demands exact bit equality on every lookup.
type index map[duration]int // want `floating-point map key`

func collect(times []duration) int {
	seen := map[float64]bool{} // want `floating-point map key`
	for _, t := range times {
		seen[float64(t)] = true
	}
	byCount := map[int][]duration{} // integer key: fine
	_ = byCount
	return len(seen)
}
