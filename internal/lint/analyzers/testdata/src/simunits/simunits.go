// Package simunits is the intentional-violation fixture for the
// dimensional analyzer: simulated seconds and block counts mixed in
// arithmetic, comparisons, conversions and field stores.
package simunits

// Seconds is a span of simulated time.
//
//detlint:unit seconds
type Seconds float64

// Blocks is a count of transfer blocks.
//
//detlint:unit blocks
type Blocks int

// Config mixes tagged basic fields with tagged named types.
type Config struct {
	CacheBlocks int //detlint:unit blocks
	RunBytes    int //detlint:unit bytes

	Deadline Seconds
	Untagged int
}

// transferTime is the seeded seconds/blocks mixup the acceptance
// criteria call for: a block count lands in a time slot.
func transferTime(c Config) Seconds {
	blocks := c.CacheBlocks
	return Seconds(blocks) // want `conversion of a "blocks" value into simunits.Seconds \(unit "seconds"\) crosses units`
}

func arithmetic(c Config, t Seconds) {
	_ = c.CacheBlocks + c.RunBytes // want `\+ adds "blocks" and "bytes"`
	_ = float64(t) - float64(c.CacheBlocks)

	// Units survive local assignment chains (the dataflow part).
	cached := c.CacheBlocks
	spare := cached
	_ = spare + c.RunBytes // want `\+ adds "blocks" and "bytes"`

	// Constants are dimensionless glue: no findings.
	_ = c.CacheBlocks + 1
	_ = 2 * t
	if c.CacheBlocks > 0 {
		_ = cached - 1
	}
}

func comparisons(c Config, t Seconds) bool {
	if c.CacheBlocks > c.RunBytes { // want `> compares "blocks" and "bytes"`
		return true
	}
	return float64(c.Untagged) > float64(t)
}

func fieldStores(c *Config) {
	b := c.CacheBlocks
	c.RunBytes = b  // want `stores a "blocks" value into RunBytes \(unit "bytes"\)`
	c.RunBytes += b // want `stores a "blocks" value into RunBytes \(unit "bytes"\)`
	c.CacheBlocks = b
}

// blockBudget returns blocks from every path, so callers inherit the
// unit through the function's exported fact.
func blockBudget(c Config) int {
	if c.Untagged > 0 {
		return c.CacheBlocks
	}
	return 0 // dimensionless zero adopts the other returns' unit
}

func callerInherits(c Config) {
	_ = blockBudget(c) + c.RunBytes // want `\+ adds "blocks" and "bytes"`
}

// merge joins must agree before a unit survives: after the if/else,
// mixed is unknown and draws no finding, kept is still blocks.
func joins(c Config, cond bool) {
	mixed := c.CacheBlocks
	kept := c.CacheBlocks
	if cond {
		mixed = c.RunBytes // no finding: a plain store to a local retags it
		kept = c.CacheBlocks
	}
	_ = mixed + c.Untagged
	_ = kept + c.RunBytes // want `\+ adds "blocks" and "bytes"`
}

// A reasoned allow silences a deliberate dimensional trick, the same
// escape hatch every analyzer shares.
func meanTime(total Seconds, n Blocks) Seconds {
	//detlint:allow simunits deliberate time-per-block ratio, dimensionally seconds/blocks
	return total / Seconds(n)
}

type badTag struct {
	X int //detlint:unit Not A Unit // want `wants one lowercase unit word`
}
