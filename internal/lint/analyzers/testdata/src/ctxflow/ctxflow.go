// Package ctxflow is the intentional-violation fixture for the
// goroutine-lifecycle and context-propagation analyzer.
package ctxflow

import "context"

type worker struct {
	ctx  context.Context
	done chan struct{}
}

// spinner spawns a goroutine whose every path loops forever: no exit.
func spinner(events chan int) {
	go func() { // want `goroutine has no exit path`
		for {
			select {
			case <-events:
			}
		}
	}()
}

// pump never returns either, and the finding lands on the go statement
// that spawns it, not the declaration.
func pump(events chan int) {
	for {
		<-events
	}
}

func startPump(events chan int) {
	go pump(events) // want `goroutine has no exit path`
}

// watcher is the shape the analyzer demands: the ctx.Done() case
// returns, so the CFG reaches its exit.
func watcher(ctx context.Context, events chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-events:
			}
		}
	}()
}

// drainer exits when the channel is closed by the producer.
func drainer(events chan int) {
	go func() {
		for range events {
		}
	}()
}

// bounded loops a fixed number of times.
func bounded(events chan int) {
	go func() {
		for i := 0; i < 8; i++ {
			<-events
		}
	}()
}

// bind stores the received context into a struct, detaching
// cancellation from the call tree.
func (w *worker) bind(ctx context.Context) {
	w.ctx = ctx // want `context stored into field ctx`
}

func newWorker(ctx context.Context) *worker {
	return &worker{ctx: ctx, done: make(chan struct{})} // want `context stored into field ctx via literal`
}

// lookup drops the caller's deadline by conjuring a fresh root; the
// finding carries a suggested fix replacing the call with ctx.
func lookup(ctx context.Context, keys chan string) {
	query(context.Background(), keys) // want `context.Background\(\) discards the received ctx`
}

func query(ctx context.Context, keys chan string) {
	select {
	case <-ctx.Done():
	case <-keys:
	}
}

// detach documents a deliberate detachment with a reasoned allow.
func detach(ctx context.Context, keys chan string) {
	//detlint:allow ctxflow cleanup must finish even if the caller is cancelled
	query(context.Background(), keys)
	_ = ctx
}
