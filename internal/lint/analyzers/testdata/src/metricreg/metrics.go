// Package metricreg is a detlint fixture for the Prometheus exposition
// audit: well-formed referenced families pass; duplicate declarations,
// malformed names, unknown types, HELP/TYPE mismatches, samples without
// a declaring family, and families no test or doc mentions are flagged.
package metricreg

import (
	"fmt"
	"io"
)

func write(w io.Writer, reqs, lat int) {
	fmt.Fprintln(w, "# HELP app_requests_total Completed requests.")
	fmt.Fprintln(w, "# TYPE app_requests_total counter")
	fmt.Fprintf(w, "app_requests_total{code=%q} %d\n", "200", reqs)

	fmt.Fprintln(w, "# HELP app_lat_seconds Request latency.") // want `no le="\+Inf" bucket`
	fmt.Fprintln(w, "# TYPE app_lat_seconds histogram")
	fmt.Fprintf(w, "app_lat_seconds_bucket{le=\"1\"} %d\n", lat)
	fmt.Fprintf(w, "app_lat_seconds_sum %d\n", lat)
	fmt.Fprintf(w, "app_lat_seconds_count %d\n", lat)
	fmt.Fprintf(w, "app_lat_seconds{quantile=\"0.99\"} %d\n", lat) // want `emits a bare sample line`

	fmt.Fprintln(w, "# HELP app_ok_seconds A fully well-formed histogram.")
	fmt.Fprintln(w, "# TYPE app_ok_seconds histogram")
	fmt.Fprintf(w, "app_ok_seconds_bucket{le=\"0.1\"} %d\n", lat)
	fmt.Fprintf(w, "app_ok_seconds_bucket{le=\"1\"} %d\n", lat)
	fmt.Fprintf(w, "app_ok_seconds_bucket{le=\"+Inf\"} %d\n", lat)
	fmt.Fprintf(w, "app_ok_seconds_sum %d\n", lat)
	fmt.Fprintf(w, "app_ok_seconds_count %d\n", lat)

	fmt.Fprintln(w, "# HELP app_nole_seconds A bucket without its le label.")
	fmt.Fprintln(w, "# TYPE app_nole_seconds histogram")
	fmt.Fprintf(w, "app_nole_seconds_bucket{code=%q} %d\n", "200", lat) // want `has no le label`
	fmt.Fprintf(w, "app_nole_seconds_bucket{le=\"+Inf\"} %d\n", lat)
	fmt.Fprintf(w, "app_nole_seconds_sum %d\n", lat)
	fmt.Fprintf(w, "app_nole_seconds_count %d\n", lat)

	fmt.Fprintln(w, "# HELP app_partial_seconds A histogram missing series.") // want `missing its _sum, _count series`
	fmt.Fprintln(w, "# TYPE app_partial_seconds histogram")
	fmt.Fprintf(w, "app_partial_seconds_bucket{le=\"+Inf\"} %d\n", lat)

	fmt.Fprintln(w, "# HELP app_ooo_seconds Buckets out of ascending le order.")
	fmt.Fprintln(w, "# TYPE app_ooo_seconds histogram")
	fmt.Fprint(w, "app_ooo_seconds_bucket{le=\"5\"} 1\napp_ooo_seconds_bucket{le=\"1\"} 2\napp_ooo_seconds_bucket{le=\"+Inf\"} 3\n") // want `buckets out of order`
	fmt.Fprintf(w, "app_ooo_seconds_sum %d\n", lat)
	fmt.Fprintf(w, "app_ooo_seconds_count %d\n", lat)

	fmt.Fprintln(w, "# TYPE app_dup_total counter") // want `no # HELP line`
	fmt.Fprintln(w, "# TYPE app_dup_total counter") // want `declared twice`
	fmt.Fprintf(w, "app_dup_total %d\n", reqs)

	fmt.Fprintln(w, "# HELP app-bad-total Dashes are not legal in metric names.")
	fmt.Fprintln(w, "# TYPE app-bad-total counter") // want `not a well-formed`

	fmt.Fprintln(w, "# HELP app_weird_total A family of an unknown type.")
	fmt.Fprintln(w, "# TYPE app_weird_total wibble") // want `unknown type`
	fmt.Fprintf(w, "app_weird_total %d\n", reqs)

	fmt.Fprintln(w, "# HELP app_notype_total Declared but never typed.") // want `has # HELP but no # TYPE`

	fmt.Fprintf(w, "app_ghost_total %d\n", reqs) // want `no # TYPE declares`

	fmt.Fprintln(w, "# HELP app_unreferenced_total No test or doc mentions this.") // want `not referenced by any test or doc`
	fmt.Fprintln(w, "# TYPE app_unreferenced_total counter")
	fmt.Fprintf(w, "app_unreferenced_total %d\n", reqs)
}
