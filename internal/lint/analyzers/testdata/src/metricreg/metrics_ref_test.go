// This test file is the fixture's reference corpus: every family named
// here counts as "referenced by a test" for the metricreg analyzer. One
// family in metrics.go is deliberately absent from this list so the
// unreferenced-family rule has a target.
package metricreg

// Referenced families: app_requests_total app_lat_seconds app_dup_total
// app-bad-total app_weird_total app_notype_total app_ghost_total
// app_ok_seconds app_nole_seconds app_partial_seconds app_ooo_seconds
