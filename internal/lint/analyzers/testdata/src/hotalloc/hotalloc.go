// Package hotalloc is the intentional-violation fixture for the
// hot-path allocation analyzer: a tagged dispatch root, a callee made
// hot by reachability, and the allocating constructs seeded inside it.
package hotalloc

import "fmt"

type request struct {
	start, count int
}

type state struct {
	pending []request
	handler func(request)
}

// dispatch stands in for the calendar pop loop: the root the analyzer
// walks from.
//
//detlint:hotpath
func dispatch(s *state, r request) {
	stage(s, r)
	trace(r)
	if s.handler != nil {
		s.handler(r) // dynamic call: the walk stops here
	}
}

// stage is hot by reachability, not by tag: the seeded closure the
// acceptance criteria call for lives here.
func stage(s *state, r request) {
	reset := func() { s.pending = s.pending[:0] } // want `closure allocation in stage, which is on the hot path rooted at dispatch`
	reset()
	s.pending = append(s.pending, r) // want `append \(may grow its backing array\) in stage`
	keep(spill(r))
}

func spill(r request) *request {
	if r.count < 0 {
		panic(fmt.Sprintf("negative count %d", r.count)) // a panic ends the hot path: not flagged
	}
	return &request{start: r.start} // want `heap-allocated composite literal in spill`
}

func keep(r *request) {}

func trace(r request) {
	fmt.Println("req", r.start) // want `fmt.Println \(interface boxing and formatting state\) in trace`
	sink(r.count) // want `interface conversion of a concrete value \(boxes on the heap\) in trace`
}

func sink(v any) {}

// cold owns the same constructs but is unreachable from any root: no
// findings.
func cold(s *state) {
	s.handler = func(r request) {}
	s.pending = append(s.pending, request{})
	fmt.Println("cold")
}

// warmup documents a deliberate one-time allocation on a tagged root.
//
//detlint:hotpath
func warmup(s *state) {
	//detlint:allow hotalloc one-time warmup allocation, amortized over the whole run
	s.pending = make([]request, 0, 64)
}
