package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// ConfigHash cross-checks the fields of a package's `Config` struct
// against its `CanonicalJSON` encoder. The encoder's output hashes into
// the simd result-cache key, so a Config field the encoder ignores is a
// cache-poisoning incident waiting to happen: two configs that differ
// only in that field would collide on the same cached result. The
// analyzer makes that a lint-time error instead.
//
// Coverage rules, applied to each exported field (recursively through
// in-module struct types, so nested fault specs are checked too):
//
//  1. The field's value is copied wholesale into the encoding — its
//     selector terminates a receiver-rooted chain in a value position
//     (assignment RHS, composite-literal element, call argument,
//     return). Sub-fields need no further checking; encoding/json
//     handles them via struct tags.
//  2. The field is an in-module struct (or pointer/slice of one) that
//     is only *traversed* (nil-checked, ranged over): every exported
//     sub-field must itself be covered.
//  3. Any other field (scalars, funcs, interfaces) counts as covered if
//     it is mentioned at all — the guard clauses that refuse
//     un-encodable callback fields are exactly such mentions.
//
// The reverse direction is checked as well: every field of the
// `canonical*` mirror structs must actually be assigned in the encoder,
// so a mirror field that silently stays zero is also an error.
//
// Packages without a Config/CanonicalJSON pair are skipped, so the
// analyzer is safe to run repo-wide.
var ConfigHash = &lint.Analyzer{
	Name: "confighash",
	Doc:  "every Config field must participate in the CanonicalJSON cache key",
	Run:  runConfigHash,
}

func runConfigHash(pass *lint.Pass) error {
	cfgObj := pass.Pkg.Scope().Lookup("Config")
	tn, ok := cfgObj.(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	cfgStruct, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	decl := findMethodDecl(pass, "Config", "CanonicalJSON")
	if decl == nil || decl.Body == nil {
		return nil
	}

	names := collectChains(pass, decl)

	visiting := map[types.Type]bool{}
	for i := 0; i < cfgStruct.NumFields(); i++ {
		checkFieldCovered(pass, cfgStruct.Field(i), "Config", names, visiting)
	}

	checkCanonicalAssigned(pass, decl)
	return nil
}

// findMethodDecl locates the FuncDecl for recvType.method in the pass.
func findMethodDecl(pass *lint.Pass, recvType, method string) *ast.FuncDecl {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != method || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			t := fd.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if id, ok := t.(*ast.Ident); ok && id.Name == recvType {
				return fd
			}
		}
	}
	return nil
}

// chainNames is the evidence collected from the encoder body: which
// struct fields terminate a config-rooted chain in a value position,
// and which are mentioned at all. The sets are keyed by the field
// objects themselves, not names, so Config.Disk and DiskSpec.Disk (or
// WriteConfig.Disks and Spec.Disks) never alias each other.
type chainNames struct {
	terminalValue map[types.Object]bool
	anywhere      map[types.Object]bool
}

// collectChains walks the encoder body tracking (a) which variables are
// derived from the receiver (the receiver itself, plus range/assign
// bindings rooted at it, transitively) and (b) every selector chain
// rooted at a derived variable, classified by position.
func collectChains(pass *lint.Pass, decl *ast.FuncDecl) chainNames {
	names := chainNames{terminalValue: map[types.Object]bool{}, anywhere: map[types.Object]bool{}}

	derived := map[types.Object]bool{}
	if rf := decl.Recv.List[0]; len(rf.Names) == 1 {
		if obj := pass.TypesInfo.Defs[rf.Names[0]]; obj != nil {
			derived[obj] = true
		}
	}

	rootObj := func(e ast.Expr) types.Object {
		for {
			switch x := e.(type) {
			case *ast.Ident:
				if o := pass.TypesInfo.Uses[x]; o != nil {
					return o
				}
				return pass.TypesInfo.Defs[x]
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			case *ast.CallExpr:
				e = x.Fun
			default:
				return nil
			}
		}
	}

	// Derivation pass: Go's declare-before-use order means a single
	// in-order walk settles the derived set.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if o := rootObj(rhs); o != nil && derived[o] {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if def := pass.TypesInfo.Defs[id]; def != nil {
							derived[def] = true
						} else if use := pass.TypesInfo.Uses[id]; use != nil {
							derived[use] = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			if o := rootObj(n.X); o != nil && derived[o] {
				for _, v := range []ast.Expr{n.Key, n.Value} {
					if id, ok := v.(*ast.Ident); ok {
						if def := pass.TypesInfo.Defs[id]; def != nil {
							derived[def] = true
						}
					}
				}
			}
		}
		return true
	})

	// Selector pass: record every field selector on a derived chain.
	// A selector is "terminal" unless it is the X of an enclosing field
	// selector (method selectors consume the whole value, so a chain
	// ending in a method call keeps its last field terminal).
	intermediate := map[*ast.SelectorExpr]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if inner, ok := sel.X.(*ast.SelectorExpr); ok {
				if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
					intermediate[inner] = true
				}
			}
		}
		return true
	})

	var walk func(n ast.Node, inValue bool)
	record := func(sel *ast.SelectorExpr, inValue bool) {
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return
		}
		if o := rootObj(sel); o == nil || !derived[o] {
			return
		}
		field := s.Obj()
		names.anywhere[field] = true
		if inValue && !intermediate[sel] {
			names.terminalValue[field] = true
		}
	}
	walkExpr := func(e ast.Expr, inValue bool) { walk(e, inValue) }
	walk = func(n ast.Node, inValue bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.SelectorExpr:
			record(n, inValue)
			walkExpr(n.X, inValue)
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				walkExpr(l, false)
			}
			for _, r := range n.Rhs {
				walkExpr(r, true)
			}
		case *ast.RangeStmt:
			walkExpr(n.X, false)
			walk(n.Body, false)
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				walkExpr(r, true)
			}
		case *ast.CallExpr:
			walkExpr(n.Fun, inValue)
			for _, a := range n.Args {
				walkExpr(a, true)
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					walkExpr(kv.Value, true)
					continue
				}
				walkExpr(el, true)
			}
		default:
			// Generic traversal preserving the current position class.
			ast.Inspect(n, func(c ast.Node) bool {
				if c == n {
					return true
				}
				walk(c, inValue)
				return false
			})
		}
	}
	walk(decl.Body, false)
	return names
}

// checkFieldCovered applies the coverage rules to one field, recursing
// through in-module struct types.
func checkFieldCovered(pass *lint.Pass, f *types.Var, path string, names chainNames, visiting map[types.Type]bool) {
	if !f.Exported() {
		return
	}
	fieldPath := path + "." + f.Name()
	if names.terminalValue[f] {
		return // wholesale copy into the encoding
	}
	if st, local := inModuleStruct(pass, f.Type()); local {
		if visiting[st] {
			return
		}
		visiting[st] = true
		for i := 0; i < st.NumFields(); i++ {
			checkFieldCovered(pass, st.Field(i), fieldPath, names, visiting)
		}
		delete(visiting, st)
		return
	}
	if names.anywhere[f] {
		return
	}
	pass.Reportf(f.Pos(), "%s does not feed CanonicalJSON: add it to the canonical encoding (or reject it like the callback fields) so it participates in the result-cache key", fieldPath)
}

// inModuleStruct unwraps pointers/slices/arrays and reports whether the
// element is a struct defined in this module (same leading path element
// as the analyzed package), returning its struct type.
func inModuleStruct(pass *lint.Pass, t types.Type) (*types.Struct, bool) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		case *types.Array:
			t = u.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, false
	}
	self := pass.Pkg.Path()
	defPkg := named.Obj().Pkg().Path()
	if defPkg == self {
		return st, true
	}
	if i := strings.IndexByte(self, '/'); i > 0 && strings.HasPrefix(defPkg, self[:i+1]) {
		return st, true
	}
	return nil, false
}

// checkCanonicalAssigned verifies the reverse direction: every field of
// each canonical* mirror struct is assigned somewhere in the encoder
// body (as a composite-literal key or an lvalue selector), so no mirror
// field can silently encode as its zero value forever.
func checkCanonicalAssigned(pass *lint.Pass, decl *ast.FuncDecl) {
	assigned := map[string]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if !isCanonicalType(pass, pass.TypesInfo.Types[n].Type) {
				return true
			}
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						assigned[typeKey(pass.TypesInfo.Types[n].Type)+"."+id.Name] = true
					}
				}
			}
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				sel, ok := l.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if t := pass.TypesInfo.Types[sel.X].Type; isCanonicalType(pass, t) {
					assigned[typeKey(t)+"."+sel.Sel.Name] = true
				}
			}
		}
		return true
	})

	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "canonical") {
			continue
		}
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !assigned[name+"."+f.Name()] {
				pass.Reportf(f.Pos(), "%s.%s is never assigned in CanonicalJSON: it would encode as a constant zero and never differentiate cache keys", name, f.Name())
			}
		}
	}
}

func isCanonicalType(pass *lint.Pass, t types.Type) bool {
	return strings.HasPrefix(typeKey(t), "canonical")
}

func typeKey(t types.Type) string {
	if t == nil {
		return ""
	}
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return fmt.Sprintf("%v", t)
}
