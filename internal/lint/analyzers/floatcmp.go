package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// FloatCmp flags == and != between computed floating-point simulation
// quantities (including named float types like sim.Time). Two runs of
// the same derivation can differ in the last ulp the moment anyone
// reorders an accumulation, so exact comparison is both a correctness
// and a reproducibility hazard. Comparisons against compile-time
// constants are deliberately not flagged: `x == 0` tests the
// uninitialized sentinel and is exact under IEEE 754, and the paper's
// configs use exact constants (0, 1, 0.5) throughout. Tolerance helpers
// (approxEqual and friends) are allowlisted by name so the blessed
// replacement can itself be implemented.
var FloatCmp = &lint.Analyzer{
	Name: "floatcmp",
	Doc:  "flag exact ==/!= between computed floating-point quantities",
	Run:  runFloatCmp,
}

// floatCmpHelperNames are functions allowed to contain raw float
// equality: the tolerance helpers themselves, where the exact compare
// is the fast path before the epsilon check.
var floatCmpHelperNames = map[string]bool{
	"approxEqual": true, "ApproxEqual": true,
	"almostEqual": true, "AlmostEqual": true,
	"floatEqual": true, "FloatEqual": true,
}

func runFloatCmp(pass *lint.Pass) error {
	for _, file := range pass.Files {
		// The node stack (popped on ast.Inspect's nil post-visit) lets
		// the check find its innermost enclosing named function.
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkFloatEq(pass, n, stack)
			case *ast.SwitchStmt:
				checkFloatSwitch(pass, n)
			case *ast.MapType:
				if t, ok := pass.TypesInfo.Types[n.Key]; ok && isFloat(t.Type) {
					pass.Reportf(n.Key.Pos(), "floating-point map key (%s): every lookup is an exact bit comparison; key by an integer quantity instead", t.Type)
				}
			}
			stack = append(stack, n)
			return true
		})
	}
	return nil
}

// checkFloatEq reports cmp if it is an exact equality between computed
// float operands outside an allowlisted tolerance helper.
func checkFloatEq(pass *lint.Pass, cmp *ast.BinaryExpr, stack []ast.Node) {
	if cmp.Op != token.EQL && cmp.Op != token.NEQ {
		return
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			if floatCmpHelperNames[fd.Name.Name] {
				return
			}
			break // only the innermost named function is consulted
		}
	}
	x, y := pass.TypesInfo.Types[cmp.X], pass.TypesInfo.Types[cmp.Y]
	if !isFloat(x.Type) && !isFloat(y.Type) {
		return
	}
	if x.Value != nil || y.Value != nil {
		return // constant operand: exact by construction
	}
	pass.Reportf(cmp.OpPos, "exact %s between computed floating-point values (%s); compare with a tolerance helper, or //detlint:allow with the reason exactness holds", cmp.Op, x.Type)
}

// checkFloatSwitch flags computed case expressions in a switch over a
// float-typed tag: each case is an implicit exact ==. Constant cases
// keep the same exemption as constant binary comparisons.
func checkFloatSwitch(pass *lint.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return // tagless switch: its conditions are BinaryExprs, checked above
	}
	tag, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok || !isFloat(tag.Type) {
		return
	}
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value == nil {
				pass.Reportf(e.Pos(), "exact switch case on a computed floating-point value (%s); rewrite as a tagless switch with tolerance comparisons", tag.Type)
			}
		}
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
