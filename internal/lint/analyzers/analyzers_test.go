package analyzers_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analyzers"
	"repro/internal/lint/linttest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestNondet(t *testing.T) {
	linttest.Run(t, fixture("nondet"), analyzers.Nondet)
}

func TestFloatCmp(t *testing.T) {
	linttest.Run(t, fixture("floatcmp"), analyzers.FloatCmp)
}

// TestConfigHashOK pins the zero-finding contract on a fixture shaped
// like core.Config's real encoder (guarded callback, traversed nested
// spec, wholesale slice copy).
func TestConfigHashOK(t *testing.T) {
	linttest.Run(t, fixture("confighash_ok"), analyzers.ConfigHash)
}

// TestConfigHashBad is the intentional-violation fixture: a Config
// field missing from the encoder (the cache-poisoning hazard), a nested
// spec field missing from it, and a mirror field never assigned.
func TestConfigHashBad(t *testing.T) {
	linttest.Run(t, fixture("confighash_bad"), analyzers.ConfigHash)
}

func TestMetricReg(t *testing.T) {
	linttest.Run(t, fixture("metricreg"), analyzers.MetricReg)
}

// TestSimUnits covers the dimensional dataflow: the seeded
// seconds/blocks conversion, arithmetic and comparisons across units,
// tagged-field stores, return-unit facts, and join behavior.
func TestSimUnits(t *testing.T) {
	linttest.Run(t, fixture("simunits"), analyzers.SimUnits)
}

// TestCtxFlow covers goroutine exit proofs over the CFG, context
// stores into structs, and dropped-context findings with fixes.
func TestCtxFlow(t *testing.T) {
	linttest.Run(t, fixture("ctxflow"), analyzers.CtxFlow)
}

// TestLockDisc covers blocking work under a mutex and the fact-store
// lock-order inversion.
func TestLockDisc(t *testing.T) {
	linttest.Run(t, fixture("lockdisc"), analyzers.LockDisc)
}

// TestHotAlloc covers the call-graph walk from a //detlint:hotpath
// root, including the seeded closure in a reachable callee.
func TestHotAlloc(t *testing.T) {
	linttest.Run(t, fixture("hotalloc"), analyzers.HotAlloc)
}

// TestSuiteSelfGates runs the full suite over every fixture: analyzers
// must not fire outside their domain (confighash on a package without
// a Config, metricreg on a package without an exposition, ...), so the
// multichecker can safely run everything everywhere.
func TestSuiteSelfGates(t *testing.T) {
	linttest.Run(t, fixture("confighash_ok"), analyzers.All()...)
}
