package analyzers_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analyzers"
	"repro/internal/lint/linttest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestNondet(t *testing.T) {
	linttest.Run(t, fixture("nondet"), analyzers.Nondet)
}

func TestFloatCmp(t *testing.T) {
	linttest.Run(t, fixture("floatcmp"), analyzers.FloatCmp)
}

// TestConfigHashOK pins the zero-finding contract on a fixture shaped
// like core.Config's real encoder (guarded callback, traversed nested
// spec, wholesale slice copy).
func TestConfigHashOK(t *testing.T) {
	linttest.Run(t, fixture("confighash_ok"), analyzers.ConfigHash)
}

// TestConfigHashBad is the intentional-violation fixture: a Config
// field missing from the encoder (the cache-poisoning hazard), a nested
// spec field missing from it, and a mirror field never assigned.
func TestConfigHashBad(t *testing.T) {
	linttest.Run(t, fixture("confighash_bad"), analyzers.ConfigHash)
}

func TestMetricReg(t *testing.T) {
	linttest.Run(t, fixture("metricreg"), analyzers.MetricReg)
}

// TestSuiteSelfGates runs the full suite over every fixture: analyzers
// must not fire outside their domain (confighash on a package without
// a Config, metricreg on a package without an exposition, ...), so the
// multichecker can safely run everything everywhere.
func TestSuiteSelfGates(t *testing.T) {
	linttest.Run(t, fixture("confighash_ok"), analyzers.All()...)
}
