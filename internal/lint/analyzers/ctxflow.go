package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// CtxFlow guards goroutine lifecycles and context plumbing in the
// concurrent packages (internal/service, internal/parallel,
// internal/diskcache — the packages the cluster and real-I/O roadmap
// items will multiply). Three rules:
//
//  1. Every goroutine must have a provable exit path: the spawned
//     body's control-flow graph must reach its exit — a bounded or
//     conditional loop, a range over a closeable channel, or an
//     infinite loop with a reachable return/break (the shape of a
//     ctx.Done() select). A body that can never return is a leak the
//     moment its spawner is called twice.
//  2. A received context.Context must not be stored into a struct
//     field (the context package's own first rule): storing detaches
//     cancellation from the call tree.
//  3. A function that receives a ctx must not conjure a fresh root
//     with context.Background()/TODO() — that drops the caller's
//     deadline and cancellation. The finding carries a suggested fix
//     (replace with the in-scope parameter) applied by detlint -fix;
//     deliberate detachment (the service's singleflight leader) is a
//     reasoned //detlint:allow.
var CtxFlow = &lint.Analyzer{
	Name: "ctxflow",
	Doc:  "goroutines need provable exit paths; contexts must be propagated, not stored or re-rooted",
	Run:  runCtxFlow,
}

// concurrencyScoped reports whether the package is one the concurrency
// analyzers apply to: the repo's concurrent packages, or any
// single-segment path (the linttest fixtures).
func concurrencyScoped(path string) bool {
	if !strings.Contains(path, "/") {
		return true
	}
	for _, seg := range []string{"/service", "/parallel", "/diskcache"} {
		if strings.HasSuffix(path, seg) {
			return true
		}
	}
	return false
}

func runCtxFlow(pass *lint.Pass) error {
	if !concurrencyScoped(pass.Pkg.Path()) {
		return nil
	}
	decls := localFuncDecls(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkGoroutineExit(pass, n, decls)
			case *ast.AssignStmt:
				checkCtxStored(pass, n)
			case *ast.CompositeLit:
				checkCtxInLiteral(pass, n)
			}
			return true
		})
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkCtxDropped(pass, fd)
			}
		}
	}
	return nil
}

// localFuncDecls indexes the package's function declarations by their
// types.Func, so `go name()` resolves to a body.
func localFuncDecls(pass *lint.Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd
				}
			}
		}
	}
	return out
}

// checkGoroutineExit resolves the spawned body and requires its CFG to
// reach the exit block.
func checkGoroutineExit(pass *lint.Pass, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) {
	var body *ast.BlockStmt
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				body = fd.Body
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				body = fd.Body
			}
		}
	}
	if body == nil {
		return // external or dynamic target: nothing to prove here
	}
	cfg := lint.NewCFG(body)
	if !cfg.Reaches(cfg.Entry, cfg.Exit) {
		pass.Reportf(g.Pos(), "goroutine has no exit path: every loop spins forever (add a ctx.Done()/closed-channel case that returns, or bound the loop)")
	}
}

// checkCtxStored flags assignments of a context into a struct field.
func checkCtxStored(pass *lint.Pass, n *ast.AssignStmt) {
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			continue
		}
		if isContextType(pass.TypesInfo.Types[n.Rhs[i]].Type) {
			pass.Reportf(n.Pos(), "context stored into field %s: contexts flow down call frames, never into structs (pass ctx per call)", sel.Sel.Name)
		}
	}
}

// checkCtxInLiteral flags composite literals that smuggle a context
// into a field (the keyed form of storing it).
func checkCtxInLiteral(pass *lint.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	if _, isStruct := tv.Type.Underlying().(*types.Struct); !isStruct {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if isContextType(pass.TypesInfo.Types[kv.Value].Type) {
			if key, ok := kv.Key.(*ast.Ident); ok {
				pass.Reportf(kv.Pos(), "context stored into field %s via literal: contexts flow down call frames, never into structs", key.Name)
			}
		}
	}
}

// checkCtxDropped flags context.Background()/TODO() inside a function
// that already receives a context, with a fix substituting the param.
func checkCtxDropped(pass *lint.Pass, fd *ast.FuncDecl) {
	ctxName := ""
	for _, field := range fd.Type.Params.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && isContextType(tv.Type) {
			for _, name := range field.Names {
				if name.Name != "_" {
					ctxName = name.Name
				}
			}
		}
	}
	if ctxName == "" {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName); !ok || pn.Imported().Path() != "context" {
			return true
		}
		fix := lint.SuggestedFix{
			Message: "propagate the received context",
			Edits:   []lint.TextEdit{{Pos: call.Pos(), End: call.End(), NewText: ctxName}},
		}
		pass.ReportFix(call.Pos(), fix, "context.%s() discards the received %s: propagate it (or //detlint:allow with the detachment rationale)", sel.Sel.Name, ctxName)
		return true
	})
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
