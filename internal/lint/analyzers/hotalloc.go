package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// HotAlloc walks the static call graph from //detlint:hotpath roots —
// the calendar dispatch loop and the DiskRequest issue path, whose
// zero-allocation property CI enforces with a benchmark gate — and
// flags allocating constructs in every function reachable from one:
// closures, fmt calls, append growth, make/new, composite-literal
// addresses, and concrete values converted to interfaces at call
// boundaries. The benchmark gate proves the property for the one path
// the benchmark drives; this analyzer names the allocation site for
// any path, before a run ever reaches the profiler.
//
// The analyzer visits dependents before dependencies: a package that
// calls into a callee it imports exports a hot-reachability fact on
// the callee's object, and the callee's own package picks it up when
// its pass runs later. Dynamic calls (function values, interface
// methods) end the walk — the engine's handler tables are covered by
// tagging the handlers themselves.
var HotAlloc = &lint.Analyzer{
	Name:  "hotalloc",
	Doc:   "no allocating constructs reachable from //detlint:hotpath roots",
	Order: lint.DependentsFirst,
	Run:   runHotAlloc,
}

// hotFact marks a function as reachable from a hot-path root; Root
// names the root for the report.
type hotFact struct {
	Root string
}

const hotpathDirective = "//detlint:hotpath"

func runHotAlloc(pass *lint.Pass) error {
	decls := localFuncDecls(pass)

	// Seed the worklist: locally tagged roots plus functions a
	// dependent package already marked hot.
	hot := make(map[*types.Func]string)
	var work []*types.Func
	mark := func(fn *types.Func, root string) {
		if _, seen := hot[fn]; seen {
			return
		}
		hot[fn] = root
		work = append(work, fn)
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasHotpathTag(fd) {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				mark(fn, fn.Name())
			}
		}
	}
	for fn := range decls {
		if f, ok := pass.ImportObjectFact(fn).(*hotFact); ok {
			mark(fn, f.Root)
		}
	}
	if len(hot) == 0 {
		return nil
	}

	// Propagate along static call edges. Callees without a local body
	// get a fact export so their own package's pass roots from them.
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		fd := decls[fn]
		if fd == nil {
			if fn.Pkg() != pass.Pkg {
				pass.ExportObjectFact(fn, &hotFact{Root: hot[fn]})
			}
			continue
		}
		root := hot[fn]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				return false // a spawned goroutine is off the hot path
			case *ast.FuncLit:
				return false // runs when called; the closure itself is flagged below
			case *ast.CallExpr:
				if callee := staticCallee(pass, n); callee != nil && inModule(callee) {
					mark(callee, root)
				}
			}
			return true
		})
	}

	// Report allocating constructs in every hot function with a local
	// body.
	for fn, root := range hot {
		if fd := decls[fn]; fd != nil {
			checkHotBody(pass, fd, root)
		}
	}
	return nil
}

func hasHotpathTag(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathDirective {
			return true
		}
	}
	return false
}

// staticCallee resolves a call to a declared function or method, or nil
// for builtins, conversions and dynamic calls.
func staticCallee(pass *lint.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		// Skip interface-method calls: dynamic dispatch ends the walk.
		if sel, ok := pass.TypesInfo.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return nil
			}
		}
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// inModule keeps the walk inside repro: stdlib callees are taken as
// vetted (and unannotatable anyway). Fixture packages have single-
// segment paths and count as in-module.
func inModule(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return strings.HasPrefix(path, "repro/") || !strings.Contains(path, "/")
}

// checkHotBody reports every allocating construct in one hot function.
func checkHotBody(pass *lint.Pass, fd *ast.FuncDecl, root string) {
	report := func(pos ast.Node, what string) {
		pass.Reportf(pos.Pos(), "%s in %s, which is on the hot path rooted at %s: the zero-alloc gate will catch this under load", what, fd.Name.Name, root)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.FuncLit:
			report(n, "closure allocation")
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n, "heap-allocated composite literal")
					return false
				}
			}
		case *ast.CompositeLit:
			switch pass.TypesInfo.Types[n].Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				report(n, "slice/map literal allocation")
				return false
			}
		case *ast.CallExpr:
			// A panic ends the hot path: whatever its arguments
			// allocate, no dispatch follows it.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					return false
				}
			}
			checkHotCall(pass, n, report)
		}
		return true
	})
}

func checkHotCall(pass *lint.Pass, call *ast.CallExpr, report func(ast.Node, string)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				report(call, "append (may grow its backing array)")
			case "make", "new":
				report(call, b.Name()+" allocation")
			}
			return
		}
	}
	fn := staticCallee(pass, call)
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(call, "fmt."+fn.Name()+" (interface boxing and formatting state)")
		return
	}
	// Concrete non-pointer values passed to interface parameters box.
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= params.Len()-1 {
			pi = params.Len() - 1
		}
		if pi >= params.Len() {
			break
		}
		pt := params.At(pi).Type()
		if sig.Variadic() && pi == params.Len()-1 {
			if sl, ok := pt.(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.Types[arg].Type
		if at == nil || types.IsInterface(at) {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if pass.TypesInfo.Types[arg].IsNil() {
			continue
		}
		report(arg, "interface conversion of a concrete value (boxes on the heap)")
	}
}
