// Package lint is a small, self-contained static-analysis framework in
// the shape of golang.org/x/tools/go/analysis, built only on the
// standard library's go/ast and go/types (the container that grows this
// repo has no module proxy, so x/tools itself is unavailable).
//
// It exists to machine-check the repo's determinism and cache-key
// invariants: the paper validation depends on exactly repeatable
// simulation runs, and the simd result cache depends on
// core.Config.CanonicalJSON covering every config field. The concrete
// analyzers live in internal/lint/analyzers; cmd/detlint is the
// multichecker front-end wired into `make lint` and CI.
//
// A finding can be suppressed at its site with
//
//	//detlint:allow <reason>           — suppress every analyzer here
//	//detlint:allow <analyzer> <reason> — suppress one analyzer here
//
// placed either at the end of the offending line or alone on the line
// directly above it. The reason is mandatory: a bare directive is
// itself reported, so every exemption carries its justification in the
// source.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. It mirrors
// x/tools/go/analysis.Analyzer closely enough that the analyzers could
// be ported to the real framework if the dependency ever becomes
// available.
type Analyzer struct {
	// Name identifies the analyzer in output and in scoped
	// //detlint:allow directives. Lowercase, no spaces.
	Name string

	// Doc is a one-paragraph description of what the analyzer guards.
	Doc string

	// Run inspects one package and reports findings through
	// pass.Report. Returning an error aborts the whole run (reserved
	// for internal failures, not findings).
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Dir is the package directory; TestGoFiles lists the package's
	// test sources (absolute paths, unparsed — analyzers that need
	// them, like metricreg's referenced-by-a-test check, read them as
	// text). ModRoot is the module root, for repo-level artifacts such
	// as docs.
	Dir         string
	TestGoFiles []string
	ModRoot     string

	// Report records one finding. The runner applies //detlint:allow
	// suppression afterwards, so analyzers always report unconditionally.
	Report func(Diagnostic)
}

// A Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf is a convenience for analyzers: position + formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowDirective is one parsed //detlint:allow comment.
type allowDirective struct {
	pos      token.Position
	analyzer string // "" = all analyzers
	reason   string
}

const allowPrefix = "//detlint:allow"

var directiveRx = regexp.MustCompile(`^//detlint:(\S+)`)

// parseAllows extracts the allow directives of a file and reports
// malformed ones (unknown verbs, missing reasons) as diagnostics so a
// broken escape hatch can never silently suppress nothing.
func parseAllows(fset *token.FileSet, file *ast.File, known map[string]bool, report func(Diagnostic)) []allowDirective {
	var out []allowDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			m := directiveRx.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			if verb := m[1]; verb != "allow" {
				report(Diagnostic{Pos: pos, Analyzer: "detlint", Message: fmt.Sprintf("unknown directive //detlint:%s (only //detlint:allow exists)", verb)})
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
			dir := allowDirective{pos: pos}
			if first, reason, _ := strings.Cut(rest, " "); known[first] {
				dir.analyzer = first
				dir.reason = strings.TrimSpace(reason)
			} else {
				dir.reason = rest
			}
			if dir.reason == "" {
				report(Diagnostic{Pos: pos, Analyzer: "detlint", Message: "//detlint:allow needs a reason: //detlint:allow [analyzer] <why this is sound>"})
				continue
			}
			out = append(out, dir)
		}
	}
	return out
}

// suppressed reports whether d is covered by an allow directive: same
// file, same line or the line directly above, matching analyzer scope.
func suppressed(d Diagnostic, allows []allowDirective) bool {
	for _, a := range allows {
		if a.pos.Filename != d.Pos.Filename {
			continue
		}
		if a.pos.Line != d.Pos.Line && a.pos.Line != d.Pos.Line-1 {
			continue
		}
		if a.analyzer == "" || a.analyzer == d.Analyzer {
			return true
		}
	}
	return false
}

// RunPackages applies every analyzer to every package and returns the
// surviving findings sorted by position — the linter's own output must
// be deterministic. Directive diagnostics (malformed //detlint:allow)
// are included.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }

	for _, pkg := range pkgs {
		var allows []allowDirective
		for _, f := range pkg.Files {
			allows = append(allows, parseAllows(pkg.Fset, f, known, collect)...)
		}
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:    a,
				Fset:        pkg.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				TypesInfo:   pkg.Info,
				Dir:         pkg.Dir,
				TestGoFiles: pkg.TestGoFiles,
				ModRoot:     pkg.ModRoot,
				Report:      func(d Diagnostic) { raw = append(raw, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		for _, d := range raw {
			if !suppressed(d, allows) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
