// Package lint is a small, self-contained static-analysis framework in
// the shape of golang.org/x/tools/go/analysis, built only on the
// standard library's go/ast and go/types (the container that grows this
// repo has no module proxy, so x/tools itself is unavailable).
//
// It exists to machine-check the repo's determinism and cache-key
// invariants: the paper validation depends on exactly repeatable
// simulation runs, and the simd result cache depends on
// core.Config.CanonicalJSON covering every config field. The concrete
// analyzers live in internal/lint/analyzers; cmd/detlint is the
// multichecker front-end wired into `make lint` and CI.
//
// Since detlint v2 the framework also carries a lightweight dataflow
// layer: an intra-procedural CFG builder (cfg.go), a cross-package fact
// store for per-function summaries (facts.go), suggested fixes applied
// by `detlint -fix` (fix.go), and a findings baseline so new analyzers
// can land strict without a big-bang cleanup (baseline.go).
//
// A finding can be suppressed at its site with
//
//	//detlint:allow <reason>           — suppress every analyzer here
//	//detlint:allow <analyzer> <reason> — suppress one analyzer here
//
// placed either at the end of the offending line or alone on the line
// directly above it. The reason is mandatory: a bare directive is
// itself reported, so every exemption carries its justification in the
// source. Two more directives feed the v2 analyzers: //detlint:unit
// tags a named type or struct field with its simulated dimension, and
// //detlint:hotpath marks a function as a zero-allocation call-graph
// root (see the simunits and hotalloc analyzers).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"time"
)

// PackageOrder selects the order an analyzer visits packages, which is
// the direction its facts flow.
type PackageOrder int

const (
	// DepsFirst visits dependencies before dependents: a pass sees the
	// facts of everything it imports (how simunits learns the return
	// units of core helpers before analyzing their callers).
	DepsFirst PackageOrder = iota
	// DependentsFirst visits dependents before dependencies: a pass
	// sees which of its functions downstream packages reach (how
	// hotalloc roots the sim calendar from core's kernel dispatch).
	DependentsFirst
)

// An Analyzer describes one invariant check. It mirrors
// x/tools/go/analysis.Analyzer closely enough that the analyzers could
// be ported to the real framework if the dependency ever becomes
// available.
type Analyzer struct {
	// Name identifies the analyzer in output and in scoped
	// //detlint:allow directives. Lowercase, no spaces.
	Name string

	// Doc is a one-paragraph description of what the analyzer guards.
	Doc string

	// Order selects the package-visit order (the fact-flow direction).
	// The zero value, DepsFirst, is right for analyzers that summarize
	// callees for callers.
	Order PackageOrder

	// Run inspects one package and reports findings through
	// pass.Report. Returning an error aborts the whole run (reserved
	// for internal failures, not findings).
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Dir is the package directory; TestGoFiles lists the package's
	// test sources (absolute paths, unparsed — analyzers that need
	// them, like metricreg's referenced-by-a-test check, read them as
	// text). ModRoot is the module root, for repo-level artifacts such
	// as docs.
	Dir         string
	TestGoFiles []string
	ModRoot     string

	// Report records one finding. The runner applies //detlint:allow
	// suppression afterwards, so analyzers always report unconditionally.
	Report func(Diagnostic)

	facts *Facts
}

// A TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// A SuggestedFix is one self-contained rewrite that resolves a finding.
// `detlint -fix` applies it; `-diff` previews it.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// A Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string

	// SuggestedFixes, when non-empty, are machine-applicable resolutions;
	// only the first is applied by -fix.
	SuggestedFixes []SuggestedFix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf is a convenience for analyzers: position + formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix is Reportf with one suggested rewrite attached.
func (p *Pass) ReportFix(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:            p.Fset.Position(pos),
		Analyzer:       p.Analyzer.Name,
		Message:        fmt.Sprintf(format, args...),
		SuggestedFixes: []SuggestedFix{fix},
	})
}

// ExportObjectFact associates fact with obj for this analyzer; passes
// over packages visited later in the analyzer's order can import it.
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	p.facts.set(p.Analyzer.Name, obj, fact)
}

// ImportObjectFact returns the fact a previous pass of the same
// analyzer exported for obj, or nil.
func (p *Pass) ImportObjectFact(obj types.Object) any {
	return p.facts.get(p.Analyzer.Name, obj)
}

// AllObjectFacts enumerates every fact this analyzer has exported so
// far (current package included), in export order — for analyzers that
// aggregate a global structure such as a lock-ordering graph.
func (p *Pass) AllObjectFacts() []ObjectFact {
	return p.facts.all(p.Analyzer.Name)
}

// allowDirective is one parsed //detlint:allow comment.
type allowDirective struct {
	pos      token.Position
	analyzer string // "" = all analyzers
	reason   string
}

const allowPrefix = "//detlint:allow"

var directiveRx = regexp.MustCompile(`^//detlint:(\S+)`)

// directiveVerbs are the comment directives the framework understands.
// allow is handled here; unit and hotpath are data for the simunits and
// hotalloc analyzers, which parse them at their attachment sites.
var directiveVerbs = map[string]bool{"allow": true, "unit": true, "hotpath": true}

// wordRx matches a bare lowercase identifier — the shape of an analyzer
// name, used to catch scoped-allow typos.
var wordRx = regexp.MustCompile(`^[a-z][a-z0-9]*$`)

// parseAllows extracts the allow directives of a file and reports
// malformed ones (unknown verbs, missing reasons, misspelled analyzer
// scopes) as diagnostics so a broken escape hatch can never silently
// suppress nothing.
func parseAllows(fset *token.FileSet, file *ast.File, known map[string]bool, report func(Diagnostic)) []allowDirective {
	var out []allowDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			m := directiveRx.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			if verb := m[1]; verb != "allow" {
				if !directiveVerbs[verb] {
					report(Diagnostic{Pos: pos, Analyzer: "detlint", Message: fmt.Sprintf("unknown directive //detlint:%s (the directives are allow, unit and hotpath)", verb)})
				}
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
			dir := allowDirective{pos: pos}
			if first, reason, _ := strings.Cut(rest, " "); known[first] {
				dir.analyzer = first
				dir.reason = strings.TrimSpace(reason)
			} else {
				// A near-miss of an analyzer name is a typo, not a
				// reason: "//detlint:allow nondett ..." must error, or
				// the misspelled scope would silently widen to every
				// analyzer.
				if name := nearAnalyzer(first, known); name != "" {
					report(Diagnostic{Pos: pos, Analyzer: "detlint", Message: fmt.Sprintf("//detlint:allow %s: unknown analyzer (did you mean %q?)", first, name)})
					continue
				}
				dir.reason = rest
			}
			if dir.reason == "" {
				report(Diagnostic{Pos: pos, Analyzer: "detlint", Message: "//detlint:allow needs a reason: //detlint:allow [analyzer] <why this is sound>"})
				continue
			}
			out = append(out, dir)
		}
	}
	return out
}

// nearAnalyzer returns the known analyzer name within edit distance 2
// of word (a bare identifier), or "". Prose reasons start with ordinary
// words nowhere near an analyzer name, so they pass through.
func nearAnalyzer(word string, known map[string]bool) string {
	if !wordRx.MatchString(word) {
		return ""
	}
	best, bestDist := "", 3
	names := make([]string, 0, len(known))
	for name := range known {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if d := editDistance(word, name); d < bestDist {
			best, bestDist = name, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance, for typo detection only
// (inputs are short analyzer names).
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// generatedRx matches the conventional marker line of machine-written
// Go source (https://go.dev/s/generatedcode).
var generatedRx = regexp.MustCompile(`^// Code generated .* DO NOT EDIT\.$`)

// isGenerated reports whether file carries the generated-code marker
// before its package clause. Findings in generated files are dropped
// wholesale: the fix belongs in the generator, and a human cannot
// meaningfully //detlint:allow output they must not edit.
func isGenerated(file *ast.File) bool {
	for _, cg := range file.Comments {
		if cg.Pos() >= file.Package {
			break
		}
		for _, c := range cg.List {
			if generatedRx.MatchString(c.Text) {
				return true
			}
		}
	}
	return false
}

// suppressed reports whether d is covered by an allow directive: same
// file, same line or the line directly above, matching analyzer scope.
func suppressed(d Diagnostic, allows []allowDirective) bool {
	for _, a := range allows {
		if a.pos.Filename != d.Pos.Filename {
			continue
		}
		if a.pos.Line != d.Pos.Line && a.pos.Line != d.Pos.Line-1 {
			continue
		}
		if a.analyzer == "" || a.analyzer == d.Analyzer {
			return true
		}
	}
	return false
}

// A Timing records one analyzer's aggregate wall time over every
// package it visited, for `detlint -v`.
type Timing struct {
	Analyzer string
	Elapsed  time.Duration
	Findings int
}

// RunPackages applies every analyzer to every package and returns the
// surviving findings sorted by position — the linter's own output must
// be deterministic. Directive diagnostics (malformed //detlint:allow)
// are included.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunPackagesTimed(pkgs, analyzers)
	return diags, err
}

// RunPackagesTimed is RunPackages reporting per-analyzer wall time.
// Analyzers run analyzer-major so each one sees packages in its fact
// order: DepsFirst analyzers walk imports before importers,
// DependentsFirst the reverse.
func RunPackagesTimed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Timing, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }

	// Allow directives and directive diagnostics are per-package, not
	// per-analyzer: parse once. Generated files are exempt end to end —
	// no directive diagnostics, no findings.
	allowsByPkg := make(map[*Package][]allowDirective, len(pkgs))
	genByPkg := make(map[*Package]map[string]bool, len(pkgs))
	for _, pkg := range pkgs {
		gen := make(map[string]bool)
		var allows []allowDirective
		for _, f := range pkg.Files {
			if isGenerated(f) {
				gen[pkg.Fset.Position(f.Pos()).Filename] = true
				continue
			}
			allows = append(allows, parseAllows(pkg.Fset, f, known, collect)...)
		}
		allowsByPkg[pkg] = allows
		genByPkg[pkg] = gen
	}

	depsFirst := topoOrder(pkgs)
	dependentsFirst := make([]*Package, len(depsFirst))
	for i, p := range depsFirst {
		dependentsFirst[len(depsFirst)-1-i] = p
	}

	facts := NewFacts()
	var timings []Timing
	for _, a := range analyzers {
		order := depsFirst
		if a.Order == DependentsFirst {
			order = dependentsFirst
		}
		start := time.Now()
		found := 0
		for _, pkg := range order {
			var raw []Diagnostic
			pass := &Pass{
				Analyzer:    a,
				Fset:        pkg.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				TypesInfo:   pkg.Info,
				Dir:         pkg.Dir,
				TestGoFiles: pkg.TestGoFiles,
				ModRoot:     pkg.ModRoot,
				Report:      func(d Diagnostic) { raw = append(raw, d) },
				facts:       facts,
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range raw {
				if !suppressed(d, allowsByPkg[pkg]) && !genByPkg[pkg][d.Pos.Filename] {
					diags = append(diags, d)
					found++
				}
			}
		}
		timings = append(timings, Timing{Analyzer: a.Name, Elapsed: time.Since(start), Findings: found})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, timings, nil
}

// topoOrder sorts pkgs dependencies-first. Only edges between the
// loaded packages matter; ties and roots keep a stable path order so
// the fact flow (and therefore the findings) is deterministic.
func topoOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	sorted := make([]*Package, 0, len(pkgs))
	state := make(map[string]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p.Path] != 0 {
			return
		}
		state[p.Path] = 1
		var paths []string
		if p.Types != nil {
			for _, imp := range p.Types.Imports() {
				paths = append(paths, imp.Path())
			}
		}
		sort.Strings(paths)
		for _, path := range paths {
			if dep, ok := byPath[path]; ok {
				visit(dep)
			}
		}
		state[p.Path] = 2
		sorted = append(sorted, p)
	}
	roots := make([]*Package, len(pkgs))
	copy(roots, pkgs)
	sort.Slice(roots, func(i, j int) bool { return roots[i].Path < roots[j].Path })
	for _, p := range roots {
		visit(p)
	}
	return sorted
}
