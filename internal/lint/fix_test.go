package lint

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixture writes src to a temp file and returns its path plus a
// FileSet that has the file tokenized (so token.Pos values resolve).
func writeFixture(t *testing.T, src string) (string, *token.FileSet, token.Pos) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fix.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return path, fset, f.Pos()
}

func TestApplyAndWriteFixes(t *testing.T) {
	src := "package p\n\nvar x = old()\n"
	path, fset, base := writeFixture(t, src)
	at := func(off int) token.Pos { return base + token.Pos(off) }
	// Replace "old" (offset 19..22 from file start) with "new".
	off := strings.Index(src, "old")
	d := Diagnostic{
		Pos:      fset.Position(at(off)),
		Analyzer: "demo",
		Message:  "use new",
		SuggestedFixes: []SuggestedFix{{
			Message: "replace old with new",
			Edits:   []TextEdit{{Pos: at(off), End: at(off + 3), NewText: "new"}},
		}},
	}
	edits := CollectEdits(fset, []Diagnostic{d})
	if len(edits) != 1 {
		t.Fatalf("collected %d edits, want 1", len(edits))
	}
	files, err := WriteFixes(edits)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0] != path {
		t.Fatalf("wrote %v, want [%s]", files, path)
	}
	got, _ := os.ReadFile(path)
	if want := "package p\n\nvar x = new()\n"; string(got) != want {
		t.Fatalf("fixed file:\n%q\nwant\n%q", got, want)
	}
}

func TestOverlappingFixesDropLater(t *testing.T) {
	src := "package p\n\nvar x = aaaa\n"
	_, fset, base := writeFixture(t, src)
	off := strings.Index(src, "aaaa")
	at := func(o int) token.Pos { return base + token.Pos(o) }
	mk := func(lo, hi int, text string) Diagnostic {
		return Diagnostic{
			Pos: fset.Position(at(lo)), Analyzer: "demo", Message: "m",
			SuggestedFixes: []SuggestedFix{{Edits: []TextEdit{{Pos: at(lo), End: at(hi), NewText: text}}}},
		}
	}
	edits := CollectEdits(fset, []Diagnostic{
		mk(off, off+4, "bbbb"),
		mk(off+2, off+6, "cccc"), // overlaps the first: must be dropped
	})
	if len(edits) != 1 || edits[0].NewText != "bbbb" {
		t.Fatalf("overlap not dropped: %+v", edits)
	}
}

func TestDiffFixesShowsHunk(t *testing.T) {
	src := "package p\n\nvar keep = 1\nvar x = old()\nvar keep2 = 2\n"
	path, fset, base := writeFixture(t, src)
	off := strings.Index(src, "old")
	d := Diagnostic{
		Pos: fset.Position(base + token.Pos(off)), Analyzer: "demo", Message: "m",
		SuggestedFixes: []SuggestedFix{{Edits: []TextEdit{{Pos: base + token.Pos(off), End: base + token.Pos(off+3), NewText: "new"}}}},
	}
	diff, err := DiffFixes(CollectEdits(fset, []Diagnostic{d}))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"--- " + path, "-var x = old()", "+var x = new()", "@@"} {
		if !strings.Contains(diff, want) {
			t.Fatalf("diff missing %q:\n%s", want, diff)
		}
	}
	// Preview must not modify the file.
	got, _ := os.ReadFile(path)
	if string(got) != src {
		t.Fatal("DiffFixes modified the file")
	}
}
