package lint

import "go/types"

// Facts is the cross-package fact store: per-analyzer summaries keyed
// by the defining object (a function, type or field). All packages in
// one RunPackages invocation share a loader and therefore a single
// types.Object identity per declaration, so a fact exported while
// analyzing repro/internal/sim is found again when a dependent package
// resolves the same object through its imports.
//
// Facts deliberately carry `any` payloads: each analyzer defines its
// own summary type and is the only reader of its own namespace, so
// there is nothing to gain from generics here and the store stays one
// map.
type Facts struct {
	m map[factKey]any
	// order preserves insertion so enumeration (AllObjectFacts) is
	// deterministic: the runner visits packages in a fixed order and
	// analyzers export in source order.
	order []factKey
}

type factKey struct {
	analyzer string
	obj      types.Object
}

// An ObjectFact pairs one exported fact with its object, for
// enumeration by analyzers that aggregate globally (lockdisc's
// lock-ordering graph).
type ObjectFact struct {
	Obj  types.Object
	Fact any
}

// NewFacts returns an empty store. The runner creates one per
// RunPackages invocation; tests that drive passes by hand can too.
func NewFacts() *Facts {
	return &Facts{m: make(map[factKey]any)}
}

func (f *Facts) set(analyzer string, obj types.Object, fact any) {
	k := factKey{analyzer, obj}
	if _, seen := f.m[k]; !seen {
		f.order = append(f.order, k)
	}
	f.m[k] = fact
}

func (f *Facts) get(analyzer string, obj types.Object) any {
	return f.m[factKey{analyzer, obj}]
}

func (f *Facts) all(analyzer string) []ObjectFact {
	var out []ObjectFact
	for _, k := range f.order {
		if k.analyzer == analyzer {
			out = append(out, ObjectFact{Obj: k.obj, Fact: f.m[k]})
		}
	}
	return out
}
