package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseOne turns source text into a one-file Package with no type
// information — enough for directive and suppression tests.
func parseOne(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "fixture", Fset: fset, Files: []*ast.File{f}}
}

// lineReporter reports one finding on every line carrying a marker
// comment, so suppression can be tested without a real analyzer.
var lineReporter = &Analyzer{
	Name: "marker",
	Doc:  "reports on every MARK comment",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.Contains(c.Text, "MARK") {
						pass.Reportf(c.Pos(), "marked line")
					}
				}
			}
		}
		return nil
	},
}

func TestAllowSuppression(t *testing.T) {
	pkg := parseOne(t, `package fixture

func a() {
	_ = 1 // MARK (unsuppressed)
	_ = 2 /* MARK */ //detlint:allow demonstrating same-line suppression
	//detlint:allow marker demonstrating line-above scoped suppression
	_ = 3 // MARK
	//detlint:allow otheranalyzer this scope does not match marker
	_ = 4 // MARK
}
`)
	diags, err := RunPackages([]*Package{pkg}, []*Analyzer{lineReporter, {Name: "otheranalyzer", Doc: "never fires", Run: func(*Pass) error { return nil }}})
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, d := range diags {
		lines = append(lines, d.Pos.Line)
	}
	// Line 4 is unsuppressed, and line 9 survives because the directive
	// above it is scoped to a different analyzer. Lines 5 and 7 are
	// suppressed (same-line and line-above).
	want := []int{4, 9}
	if len(lines) != 2 || lines[0] != want[0] || lines[1] != want[1] {
		t.Fatalf("diagnostics on lines %v, want %v (%v)", lines, want, diags)
	}
}

func TestAllowScopeMismatchDoesNotSuppress(t *testing.T) {
	pkg := parseOne(t, `package fixture

func a() {
	//detlint:allow missing reason is required below
	_ = 1 // MARK
}
`)
	// "missing" is not an analyzer name, so the whole comment is an
	// unscoped allow with a reason — it suppresses.
	diags, err := RunPackages([]*Package{pkg}, []*Analyzer{lineReporter})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("expected suppression, got %v", diags)
	}
}

func TestMalformedDirectives(t *testing.T) {
	pkg := parseOne(t, `package fixture

func a() {
	//detlint:allow
	_ = 1 // MARK
	//detlint:frobnicate whatever
	_ = 2
}
`)
	diags, err := RunPackages([]*Package{pkg}, []*Analyzer{lineReporter})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	if len(diags) != 3 {
		t.Fatalf("want 3 diagnostics (bare allow, unknown verb, unsuppressed MARK), got %d: %v", len(diags), msgs)
	}
	assertContains(t, msgs, "needs a reason")
	assertContains(t, msgs, "unknown directive")
	assertContains(t, msgs, "marked line") // a reasonless allow must not suppress
}

func TestScopedAllowOnlySuppressesItsAnalyzer(t *testing.T) {
	pkg := parseOne(t, `package fixture

func a() {
	//detlint:allow marker scoped to the marker analyzer only
	_ = 1 // MARK
}
`)
	second := &Analyzer{
		Name: "second",
		Doc:  "also fires on MARK",
		Run:  lineReporter.Run,
	}
	// Both report on line 5; only marker's finding is suppressed. The
	// second analyzer reports under its own name via pass.Analyzer.
	diags, err := RunPackages([]*Package{pkg}, []*Analyzer{lineReporter, second})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "second" {
		t.Fatalf("want exactly the second analyzer's finding, got %v", diags)
	}
}

// TestAllowMultiStatementLine pins the directive's granularity: allow
// is line-scoped, so one directive covers every finding its analyzer
// raises on that line — including multiple statements jammed onto it.
func TestAllowMultiStatementLine(t *testing.T) {
	pkg := parseOne(t, `package fixture

func a() {
	_ = 1 /* MARK */; _ = 2 /* MARK */ //detlint:allow marker one directive covers the whole line

	_ = 3 /* MARK */; _ = 4 // MARK
}
`)
	diags, err := RunPackages([]*Package{pkg}, []*Analyzer{lineReporter})
	if err != nil {
		t.Fatal(err)
	}
	// Line 4's two findings are both suppressed; line 6's two both
	// survive (the blank line 5 keeps them out of the directive's
	// line-below reach).
	if len(diags) != 2 {
		t.Fatalf("want the 2 unsuppressed findings of line 6, got %v", diags)
	}
	for _, d := range diags {
		if d.Pos.Line != 6 {
			t.Fatalf("finding escaped from the allowed line: %v", diags)
		}
	}
}

// TestAllowAnalyzerTypo pins the near-miss rule: a misspelled analyzer
// scope is an error, and crucially the finding it meant to suppress
// still fires — a typo must never silently widen or void the escape
// hatch.
func TestAllowAnalyzerTypo(t *testing.T) {
	pkg := parseOne(t, `package fixture

func a() {
	//detlint:allow markr the scope is misspelled
	_ = 1 // MARK
}
`)
	diags, err := RunPackages([]*Package{pkg}, []*Analyzer{lineReporter})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	if len(diags) != 2 {
		t.Fatalf("want typo error + unsuppressed finding, got %v", msgs)
	}
	assertContains(t, msgs, `did you mean "marker"`)
	assertContains(t, msgs, "marked line")
}

// TestGeneratedFilesExempt pins that machine-written files produce no
// findings and no directive diagnostics: the fix belongs in the
// generator.
func TestGeneratedFilesExempt(t *testing.T) {
	fset := token.NewFileSet()
	gen, err := parser.ParseFile(fset, "gen.go", `// Code generated by fixturegen. DO NOT EDIT.

package fixture

func g() {
	//detlint:allow
	_ = 1 // MARK
}
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	hand, err := parser.ParseFile(fset, "hand.go", `package fixture

func h() {
	_ = 1 // MARK
}
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Path: "fixture", Fset: fset, Files: []*ast.File{gen, hand}}
	diags, err := RunPackages([]*Package{pkg}, []*Analyzer{lineReporter})
	if err != nil {
		t.Fatal(err)
	}
	// gen.go contributes nothing — not its MARK finding, not its bare
	// reasonless allow. hand.go still reports.
	if len(diags) != 1 || diags[0].Pos.Filename != "hand.go" {
		t.Fatalf("want only hand.go's finding, got %v", diags)
	}
}

// TestGeneratedMarkerMustPrecedePackage pins the convention's position
// rule: the marker only counts before the package clause.
func TestGeneratedMarkerMustPrecedePackage(t *testing.T) {
	pkg := parseOne(t, `package fixture

// Code generated by fixturegen. DO NOT EDIT.

func a() {
	_ = 1 // MARK
}
`)
	diags, err := RunPackages([]*Package{pkg}, []*Analyzer{lineReporter})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("marker after package clause must not exempt the file, got %v", diags)
	}
}

func TestDiagnosticsSorted(t *testing.T) {
	pkg := parseOne(t, `package fixture

func a() {
	_ = 2 // MARK
	_ = 1 // MARK
}
`)
	diags, err := RunPackages([]*Package{pkg}, []*Analyzer{lineReporter})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 || diags[0].Pos.Line > diags[1].Pos.Line {
		t.Fatalf("diagnostics not sorted by position: %v", diags)
	}
}

func assertContains(t *testing.T, msgs []string, substr string) {
	t.Helper()
	for _, m := range msgs {
		if strings.Contains(m, substr) {
			return
		}
	}
	t.Errorf("no diagnostic contains %q in %v", substr, msgs)
}
