package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildCFG parses one function body and builds its CFG.
func buildCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return NewCFG(fd.Body)
}

func TestCFGStraightLine(t *testing.T) {
	cfg := buildCFG(t, "x := 1\n_ = x\nreturn")
	if !cfg.Reaches(cfg.Entry, cfg.Exit) {
		t.Fatal("straight-line body must reach exit")
	}
	if len(cfg.Entry.Nodes) != 3 {
		t.Fatalf("entry block has %d nodes, want 3", len(cfg.Entry.Nodes))
	}
}

func TestCFGInfiniteLoopWithoutBreakDoesNotReachExit(t *testing.T) {
	cfg := buildCFG(t, "for {\n_ = 1\n}")
	if cfg.Reaches(cfg.Entry, cfg.Exit) {
		t.Fatal("for{} with no break must not reach exit")
	}
}

func TestCFGInfiniteLoopWithBreakReachesExit(t *testing.T) {
	cfg := buildCFG(t, "for {\nbreak\n}")
	if !cfg.Reaches(cfg.Entry, cfg.Exit) {
		t.Fatal("for{break} must reach exit")
	}
}

func TestCFGLabeledBreakEscapesOuterLoop(t *testing.T) {
	cfg := buildCFG(t, "outer:\nfor {\nfor {\nbreak outer\n}\n}")
	if !cfg.Reaches(cfg.Entry, cfg.Exit) {
		t.Fatal("labeled break out of nested infinite loops must reach exit")
	}
	// Without the label, the inner break only escapes one level.
	cfg = buildCFG(t, "for {\nfor {\nbreak\n}\n}")
	if cfg.Reaches(cfg.Entry, cfg.Exit) {
		t.Fatal("unlabeled break escapes only the inner loop; outer for{} still spins")
	}
}

func TestCFGConditionalLoopReachesExit(t *testing.T) {
	cfg := buildCFG(t, "for i := 0; i < 10; i++ {\n_ = i\n}")
	if !cfg.Reaches(cfg.Entry, cfg.Exit) {
		t.Fatal("bounded for must reach exit")
	}
}

func TestCFGSelectWithReturnCase(t *testing.T) {
	cfg := buildCFG(t, `ch := make(chan int)
for {
	select {
	case <-ch:
		return
	case v := <-ch:
		_ = v
	}
}`)
	if !cfg.Reaches(cfg.Entry, cfg.Exit) {
		t.Fatal("loop with a returning select case must reach exit")
	}
}

func TestCFGEmptySelectBlocksForever(t *testing.T) {
	cfg := buildCFG(t, "select {}\n_ = 1")
	if cfg.Reaches(cfg.Entry, cfg.Exit) {
		t.Fatal("select{} never proceeds; exit must be unreachable")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	cfg := buildCFG(t, `switch 1 {
case 1:
	fallthrough
case 2:
	_ = 2
}`)
	if !cfg.Reaches(cfg.Entry, cfg.Exit) {
		t.Fatal("switch must reach exit")
	}
}

func TestCFGReturnEndsFlow(t *testing.T) {
	cfg := buildCFG(t, "return\n_ = 1")
	// The trailing statement lives in a block with no inbound edges.
	var orphan *Block
	for _, b := range cfg.Blocks {
		if len(b.Nodes) == 1 {
			if _, ok := b.Nodes[0].(*ast.AssignStmt); ok {
				orphan = b
			}
		}
	}
	if orphan == nil {
		t.Fatal("expected a block holding the unreachable assignment")
	}
	if cfg.Reaches(cfg.Entry, orphan) {
		t.Fatal("code after return must be unreachable")
	}
}
