package lint

import (
	"go/token"
	"reflect"
	"strings"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	b := NewBaseline()
	b.Counts[BaselineKey{"internal/core/engine.go", "simunits", `mixing "blocks" and "ms"`}] = 2
	b.Counts[BaselineKey{"internal/service/cache.go", "lockdisc", "send while cache.mu held"}] = 1
	b.Counts[BaselineKey{"a.go", "hotalloc", "message with\ttab and\nnewline"}] = 3

	text := FormatBaseline(b)
	got, err := ParseBaseline(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parsing formatted baseline: %v", err)
	}
	if !reflect.DeepEqual(got.Counts, b.Counts) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got.Counts, b.Counts)
	}
	// Deterministic serialization: format(parse(format(x))) == format(x).
	if again := FormatBaseline(got); again != text {
		t.Fatalf("format not canonical:\n%q\nvs\n%q", again, text)
	}
}

func TestBaselineRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"1\tonly\ttwo",                      // missing field
		"0\ta.go\tnondet\t\"m\"",            // zero count
		"-3\ta.go\tnondet\t\"m\"",           // negative count
		"x\ta.go\tnondet\t\"m\"",            // non-numeric count
		"1\ta.go\tnondet\tunquoted",         // message not quoted
		"1\ta.go\tNot-An-Analyzer\t\"m\"",   // bad analyzer name
		"1\t\tnondet\t\"m\"",                // empty file
		"1\ta\\b.go\tnondet\t\"m\"",         // backslash path
		"1\ta.go\tnondet\t\"m\"\n1\ta.go\tnondet\t\"m\"", // duplicate key
	} {
		if _, err := ParseBaseline(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseBaseline(%q) succeeded, want error", bad)
		}
	}
}

func TestBaselineFilter(t *testing.T) {
	diag := func(file, analyzer, msg string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: "/mod/" + file, Line: 1}, Analyzer: analyzer, Message: msg}
	}
	diags := []Diagnostic{
		diag("a.go", "simunits", "m1"),
		diag("a.go", "simunits", "m1"), // second occurrence of a baselined-once class
		diag("b.go", "ctxflow", "m2"),
	}
	b := NewBaseline()
	b.Counts[BaselineKey{"a.go", "simunits", "m1"}] = 1

	fresh, accepted := FilterBaseline(diags, b, "/mod")
	if len(accepted) != 1 || len(fresh) != 2 {
		t.Fatalf("got %d accepted, %d fresh; want 1, 2", len(accepted), len(fresh))
	}
	if fresh[0].Analyzer != "simunits" || fresh[1].Analyzer != "ctxflow" {
		t.Fatalf("wrong fresh findings: %v", fresh)
	}
}

func TestBaselineFromDiagsRelativizes(t *testing.T) {
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "/mod/internal/x.go"}, Analyzer: "nondet", Message: "m"},
		{Pos: token.Position{Filename: "/elsewhere/y.go"}, Analyzer: "nondet", Message: "m"},
	}
	b := BaselineFromDiags(diags, "/mod")
	if b.Counts[BaselineKey{"internal/x.go", "nondet", "m"}] != 1 {
		t.Fatalf("in-module path not relativized: %v", b.Counts)
	}
	if b.Counts[BaselineKey{"/elsewhere/y.go", "nondet", "m"}] != 1 {
		t.Fatalf("out-of-module path mangled: %v", b.Counts)
	}
}
