package lint

import (
	"go/parser"
	"go/token"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseAllowDirective feeds arbitrary comment text through the
// directive parser. Invariants: no panic; every surviving directive
// carries a non-empty reason; a scoped directive names a known
// analyzer; and a directive that draws a diagnostic never also
// suppresses (the escape hatch is valid or loud, never both).
func FuzzParseAllowDirective(f *testing.F) {
	f.Add("//detlint:allow nondet measured wall time, not simulation state")
	f.Add("//detlint:allow reason without scope")
	f.Add("//detlint:allow")
	f.Add("//detlint:allow nondett typo in the analyzer name")
	f.Add("//detlint:unit blocks")
	f.Add("//detlint:frobnicate nope")
	f.Add("//detlint:allow \t  ")
	f.Fuzz(func(t *testing.T, comment string) {
		if strings.ContainsAny(comment, "\n\r") || !strings.HasPrefix(comment, "//") {
			t.Skip()
		}
		src := "package p\n" + comment + "\nfunc f() {}\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil {
			t.Skip()
		}
		known := map[string]bool{"nondet": true, "floatcmp": true, "simunits": true}
		var diags []Diagnostic
		dirs := parseAllows(fset, file, known, func(d Diagnostic) { diags = append(diags, d) })
		for _, dir := range dirs {
			if dir.reason == "" {
				t.Fatalf("directive with empty reason survived: %q", comment)
			}
			if dir.analyzer != "" && !known[dir.analyzer] {
				t.Fatalf("scoped directive with unknown analyzer %q survived: %q", dir.analyzer, comment)
			}
		}
		if len(diags) > 0 && len(dirs) > 0 {
			t.Fatalf("comment %q both errored and suppressed", comment)
		}
	})
}

// FuzzBaselineRoundTrip: any parseable baseline must reserialize to a
// canonical form that parses back to the identical value, and the
// canonical form must be a fixed point.
func FuzzBaselineRoundTrip(f *testing.F) {
	f.Add(baselineHeader + "\n1\tinternal/core/engine.go\tsimunits\t\"mixing units\"\n")
	f.Add("2\ta.go\thotalloc\t\"closure in hot path\"\n")
	f.Add("# comment only\n")
	f.Add("")
	f.Add("1\ta.go\tnondet\t\"tab\\tand\\nnewline\"\n")
	f.Fuzz(func(t *testing.T, text string) {
		b, err := ParseBaseline(strings.NewReader(text))
		if err != nil {
			t.Skip() // malformed input is allowed to fail; it must not panic
		}
		canon := FormatBaseline(b)
		b2, err := ParseBaseline(strings.NewReader(canon))
		if err != nil {
			t.Fatalf("canonical form failed to parse: %v\n%q", err, canon)
		}
		if !reflect.DeepEqual(b.Counts, b2.Counts) {
			t.Fatalf("round trip changed the baseline:\n%v\nvs\n%v", b.Counts, b2.Counts)
		}
		if again := FormatBaseline(b2); again != canon {
			t.Fatalf("format not a fixed point:\n%q\nvs\n%q", again, canon)
		}
	})
}
