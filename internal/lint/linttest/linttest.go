// Package linttest runs detlint analyzers over fixture packages in
// testdata directories and checks their findings against `// want`
// comments, in the style of x/tools' analysistest: every diagnostic
// must be expected, and every expectation must be matched.
//
// Fixture packages live under testdata/src/<name>/ (the go tool ignores
// testdata directories, so intentional violations never break the
// build) and may import only the standard library. A line expecting a
// finding carries a trailing comment:
//
//	t := time.Now() // want `wall-clock`
//
// where the backquoted text is a regular expression matched against the
// diagnostic message. Multiple `// want` comments on one line expect
// multiple findings. //detlint:allow directives work in fixtures too,
// which is how the escape hatch itself is tested.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
)

var wantRx = regexp.MustCompile("// want `([^`]*)`")

// Run loads the fixture package at dir, applies the analyzers, and
// reports every mismatch between findings and `// want` expectations.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkg, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := lint.RunPackages([]*lint.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	type expectation struct {
		file    string
		line    int
		pattern *regexp.Regexp
		matched bool
	}
	var wants []*expectation
	for _, path := range fixtureFiles(t, dir) {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, lineText := range strings.Split(string(src), "\n") {
			for _, m := range wantRx.FindAllStringSubmatch(lineText, -1) {
				rx, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
				}
				wants = append(wants, &expectation{file: path, line: i + 1, pattern: rx})
			}
		}
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// fixtureFiles lists the fixture's Go sources (tests included — `want`
// comments may appear there too), sorted for determinism.
func fixtureFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out
}

// loadFixture parses and type-checks every non-test Go file in dir as
// one package. Imports resolve against the standard library only,
// through the process-wide shared importer so the whole fixture suite
// type-checks the stdlib once.
func loadFixture(dir string) (*lint.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	defer lint.LockLoader()()
	fset := lint.SharedFset()
	var files []*ast.File
	var testFiles []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			testFiles = append(testFiles, filepath.Join(dir, name))
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: lint.StdImporter()}
	tpkg, err := conf.Check(filepath.Base(dir), fset, files, info)
	if err != nil {
		return nil, err
	}
	return &lint.Package{
		Path:        filepath.Base(dir),
		Dir:         dir,
		Fset:        fset,
		Files:       files,
		Types:       tpkg,
		Info:        info,
		TestGoFiles: testFiles,
		ModRoot:     dir,
	}, nil
}
