package lint

import (
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"
)

// This file applies suggested fixes. detlint -fix rewrites the files in
// place; -diff renders the same edits as a unified diff instead. Edits
// are byte-offset splices resolved through the FileSet, applied
// back-to-front per file so earlier offsets stay valid, and refused
// when two fixes overlap (the second finding will reappear on the next
// run once the first fix lands — fixpoint over fancy merging).

// A FileEdit is the resolved form of one TextEdit: byte offsets into
// the named file.
type FileEdit struct {
	File     string
	Offset   int
	End      int
	NewText  string
	Analyzer string
}

// CollectEdits resolves the first suggested fix of every diagnostic
// into per-file byte edits, dropping any fix that overlaps an
// already-collected one (deterministically: diagnostics arrive sorted).
func CollectEdits(fset *token.FileSet, diags []Diagnostic) []FileEdit {
	var edits []FileEdit
	for _, d := range diags {
		if len(d.SuggestedFixes) == 0 {
			continue
		}
		fix := d.SuggestedFixes[0]
		resolved := make([]FileEdit, 0, len(fix.Edits))
		ok := true
		for _, e := range fix.Edits {
			pos, end := fset.Position(e.Pos), fset.Position(e.End)
			if !pos.IsValid() || !end.IsValid() || pos.Filename != end.Filename || end.Offset < pos.Offset {
				ok = false
				break
			}
			fe := FileEdit{File: pos.Filename, Offset: pos.Offset, End: end.Offset, NewText: e.NewText, Analyzer: d.Analyzer}
			for _, prev := range edits {
				if prev.File == fe.File && fe.Offset < prev.End && prev.Offset < fe.End {
					ok = false // overlap: defer to a later run
					break
				}
			}
			if !ok {
				break
			}
			resolved = append(resolved, fe)
		}
		if ok {
			edits = append(edits, resolved...)
		}
	}
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].File != edits[j].File {
			return edits[i].File < edits[j].File
		}
		return edits[i].Offset < edits[j].Offset
	})
	return edits
}

// ApplyEdits splices the edits into their files' current contents and
// returns the new content per file (files without edits are absent).
func ApplyEdits(edits []FileEdit) (map[string][]byte, error) {
	byFile := make(map[string][]FileEdit)
	for _, e := range edits {
		byFile[e.File] = append(byFile[e.File], e)
	}
	out := make(map[string][]byte, len(byFile))
	for file, list := range byFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("lint: applying fixes: %w", err)
		}
		// Back-to-front so earlier offsets survive each splice.
		sort.Slice(list, func(i, j int) bool { return list[i].Offset > list[j].Offset })
		for _, e := range list {
			if e.End > len(src) {
				return nil, fmt.Errorf("lint: fix in %s spans [%d,%d) past EOF %d (file changed since analysis?)", file, e.Offset, e.End, len(src))
			}
			src = append(src[:e.Offset:e.Offset], append([]byte(e.NewText), src[e.End:]...)...)
		}
		out[file] = src
	}
	return out, nil
}

// WriteFixes applies the edits and rewrites each touched file in place,
// returning the touched paths sorted.
func WriteFixes(edits []FileEdit) ([]string, error) {
	fixed, err := ApplyEdits(edits)
	if err != nil {
		return nil, err
	}
	files := make([]string, 0, len(fixed))
	for file := range fixed {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		info, err := os.Stat(file)
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(file, fixed[file], info.Mode().Perm()); err != nil {
			return nil, err
		}
	}
	return files, nil
}

// DiffFixes renders the edits as a unified diff without touching any
// file — the -diff preview.
func DiffFixes(edits []FileEdit) (string, error) {
	fixed, err := ApplyEdits(edits)
	if err != nil {
		return "", err
	}
	files := make([]string, 0, len(fixed))
	for file := range fixed {
		files = append(files, file)
	}
	sort.Strings(files)
	var sb strings.Builder
	for _, file := range files {
		old, err := os.ReadFile(file)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "--- %s\n+++ %s (fixed)\n", file, file)
		sb.WriteString(unifiedDiff(strings.Split(string(old), "\n"), strings.Split(string(fixed[file]), "\n")))
	}
	return sb.String(), nil
}

// unifiedDiff is a minimal LCS line diff: hunks of -/+ lines with one
// line of context and @@ headers. Quadratic, fine for source files.
func unifiedDiff(a, b []string) string {
	// lcs[i][j] = length of the LCS of a[i:] and b[j:].
	lcs := make([][]int, len(a)+1)
	for i := range lcs {
		lcs[i] = make([]int, len(b)+1)
	}
	for i := len(a) - 1; i >= 0; i-- {
		for j := len(b) - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	type op struct {
		kind byte // ' ', '-', '+'
		text string
		aLn  int
		bLn  int
	}
	var ops []op
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			ops = append(ops, op{' ', a[i], i + 1, j + 1})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, op{'-', a[i], i + 1, j})
			i++
		default:
			ops = append(ops, op{'+', b[j], i, j + 1})
			j++
		}
	}
	for ; i < len(a); i++ {
		ops = append(ops, op{'-', a[i], i + 1, j})
	}
	for ; j < len(b); j++ {
		ops = append(ops, op{'+', b[j], i, j + 1})
	}

	var sb strings.Builder
	for k := 0; k < len(ops); {
		if ops[k].kind == ' ' {
			k++
			continue
		}
		// Hunk: expand to one context line on each side.
		start := k
		end := k
		for end < len(ops) && !(ops[end].kind == ' ' && end+1 < len(ops) && ops[end+1].kind == ' ') {
			end++
		}
		lo := start
		if lo > 0 {
			lo--
		}
		hi := end
		if hi < len(ops) {
			hi++
		}
		aStart, bStart := ops[lo].aLn, ops[lo].bLn
		if aStart == 0 {
			aStart = 1
		}
		if bStart == 0 {
			bStart = 1
		}
		var aCount, bCount int
		for _, o := range ops[lo:hi] {
			if o.kind != '+' {
				aCount++
			}
			if o.kind != '-' {
				bCount++
			}
		}
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", aStart, aCount, bStart, bCount)
		for _, o := range ops[lo:hi] {
			sb.WriteByte(o.kind)
			sb.WriteString(o.text)
			sb.WriteByte('\n')
		}
		k = hi
	}
	return sb.String()
}
