package lint

import "go/ast"

// This file is the framework's intra-procedural control-flow facility:
// a function body decomposed into basic blocks of atomic nodes (simple
// statements plus the control expressions that guard transfers), with
// successor edges for structured control flow, break/continue (labeled
// included), switch/select clauses and fallthrough. It is deliberately
// small — goto is over-approximated as an edge to the exit block, and
// panics are treated as ordinary calls — because its clients are
// forward dataflow analyses (simunits' unit propagation, ctxflow's
// exit-path reasoning) whose soundness only needs edges to be a
// superset of real transfers.

// A CFG is the control-flow graph of one function body. Entry starts
// the body; Exit is the single synthetic return target (no Nodes).
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// A Block is a maximal straight-line sequence of atomic nodes. Nodes
// holds simple statements (assignments, declarations, calls, sends,
// incdec, go/defer) and bare control expressions (an if/for condition,
// a range operand, a switch tag, case expressions) in execution order.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// NewCFG builds the control-flow graph of body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	last := b.stmts(b.cfg.Entry, body.List, nil)
	b.edge(last, b.cfg.Exit)
	return b.cfg
}

type loopScope struct {
	label         string // "" for unlabeled
	breakTarget   *Block
	continueTgt   *Block // nil for switch/select scopes
	fallthroughTo *Block // next case clause, switch scopes only
}

type cfgBuilder struct {
	cfg    *CFG
	scopes []loopScope
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// stmts threads the statement list through cur and returns the block
// control falls out of (nil when the list always transfers away).
func (b *cfgBuilder) stmts(cur *Block, list []ast.Stmt, label *string) *Block {
	for _, s := range list {
		cur = b.stmt(cur, s, label)
		label = nil
	}
	return cur
}

// findScope returns the innermost scope matching label ("" = innermost
// that accepts the verb: break matches any scope, continue only loops).
func (b *cfgBuilder) findScope(label string, needContinue bool) *loopScope {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := &b.scopes[i]
		if needContinue && sc.continueTgt == nil {
			continue
		}
		if label == "" || sc.label == label {
			return sc
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(cur *Block, s ast.Stmt, label *string) *Block {
	if cur == nil {
		// Unreachable code still gets blocks (analyses may want to see
		// it), just no inbound edges.
		cur = b.newBlock()
	}
	switch s := s.(type) {
	case *ast.LabeledStmt:
		name := s.Label.Name
		return b.stmt(cur, s.Stmt, &name)

	case *ast.BlockStmt:
		return b.stmts(cur, s.List, nil)

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.edge(cur, b.cfg.Exit)
		return nil

	case *ast.BranchStmt:
		lbl := ""
		if s.Label != nil {
			lbl = s.Label.Name
		}
		switch s.Tok.String() {
		case "break":
			if sc := b.findScope(lbl, false); sc != nil {
				b.edge(cur, sc.breakTarget)
			} else {
				b.edge(cur, b.cfg.Exit)
			}
		case "continue":
			if sc := b.findScope(lbl, true); sc != nil {
				b.edge(cur, sc.continueTgt)
			} else {
				b.edge(cur, b.cfg.Exit)
			}
		case "fallthrough":
			if sc := b.findScope("", false); sc != nil && sc.fallthroughTo != nil {
				b.edge(cur, sc.fallthroughTo)
			}
		default: // goto: over-approximate as leaving the function
			b.edge(cur, b.cfg.Exit)
		}
		return nil

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		after := b.newBlock()
		thenBlk := b.newBlock()
		b.edge(cur, thenBlk)
		b.edge(b.stmts(thenBlk, s.Body.List, nil), after)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(cur, elseBlk)
			b.edge(b.stmt(elseBlk, s.Else, nil), after)
		} else {
			b.edge(cur, after)
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		after := b.newBlock()
		post := b.newBlock()
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		b.edge(post, head)
		if s.Cond != nil {
			b.edge(head, after)
		}
		b.pushScope(label, after, post, nil)
		body := b.newBlock()
		b.edge(head, body)
		b.edge(b.stmts(body, s.Body.List, nil), post)
		b.popScope()
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(cur, head)
		head.Nodes = append(head.Nodes, s)
		after := b.newBlock()
		b.edge(head, after) // a range always may be exhausted (or the channel closed)
		b.pushScope(label, after, head, nil)
		body := b.newBlock()
		b.edge(head, body)
		b.edge(b.stmts(body, s.Body.List, nil), head)
		b.popScope()
		return after

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.clauses(cur, s.Body.List, label, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.clauses(cur, s.Body.List, label, true)

	case *ast.SelectStmt:
		return b.clauses(cur, s.Body.List, label, false)

	case *ast.GoStmt, *ast.DeferStmt, *ast.ExprStmt, *ast.AssignStmt,
		*ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		cur.Nodes = append(cur.Nodes, s)
		return cur

	default:
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// clauses builds switch/type-switch/select clause blocks. hasDefaultArm
// tracks whether fallthrough applies (switches only).
func (b *cfgBuilder) clauses(cur *Block, list []ast.Stmt, label *string, isSwitch bool) *Block {
	after := b.newBlock()
	// Pre-create the clause body blocks so fallthrough can target the
	// next clause before it is built.
	bodies := make([]*Block, len(list))
	for i := range list {
		bodies[i] = b.newBlock()
		b.edge(cur, bodies[i])
	}
	hasDefault := false
	for i, clause := range list {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				bodies[i].Nodes = append(bodies[i].Nodes, e)
			}
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				bodies[i].Nodes = append(bodies[i].Nodes, c.Comm)
			} else {
				hasDefault = true
			}
			stmts = c.Body
		}
		var ft *Block
		if isSwitch && i+1 < len(list) {
			ft = bodies[i+1]
		}
		b.pushScope(label, after, nil, ft)
		b.edge(b.stmts(bodies[i], stmts, nil), after)
		b.popScope()
	}
	if isSwitch && !hasDefault {
		// No default: the tag may match nothing and fall straight through.
		b.edge(cur, after)
	}
	// A `select {}` with no clauses blocks forever: after keeps no
	// inbound edge, correctly marking trailing code unreachable.
	return after
}

func (b *cfgBuilder) pushScope(label *string, brk, cont, ft *Block) {
	sc := loopScope{breakTarget: brk, continueTgt: cont, fallthroughTo: ft}
	if label != nil {
		sc.label = *label
	}
	b.scopes = append(b.scopes, sc)
}

func (b *cfgBuilder) popScope() { b.scopes = b.scopes[:len(b.scopes)-1] }

// Reaches reports whether to is reachable from from along CFG edges.
func (c *CFG) Reaches(from, to *Block) bool {
	seen := make([]bool, len(c.Blocks))
	stack := []*Block{from}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if blk == to {
			return true
		}
		if seen[blk.Index] {
			continue
		}
		seen[blk.Index] = true
		stack = append(stack, blk.Succs...)
	}
	return false
}
