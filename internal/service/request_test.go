package service

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/disk"
	"repro/internal/layout"
)

func TestRequestDefaultsMatchPaperBaseline(t *testing.T) {
	cfg, err := SimulateRequest{}.config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.K != 25 || cfg.D != 5 || cfg.N != 1 || cfg.BlocksPerRun != 1000 {
		t.Fatalf("defaults = k=%d d=%d n=%d blocks=%d", cfg.K, cfg.D, cfg.N, cfg.BlocksPerRun)
	}
	if cfg.CacheBlocks != cfg.DefaultCache() {
		t.Fatalf("default cache = %d, want natural %d", cfg.CacheBlocks, cfg.DefaultCache())
	}
	if cfg.Seed != 1 {
		t.Fatalf("default seed = %d", cfg.Seed)
	}
}

func TestRequestEnumNames(t *testing.T) {
	cfg, err := SimulateRequest{
		Schedule:  "scan",
		Placement: "striped",
		Admission: "greedy",
		RunPolicy: "least-buffered",
		Disk:      "modern",
		N:         4,
	}.config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Disk.Discipline != disk.SCAN {
		t.Errorf("discipline = %v", cfg.Disk.Discipline)
	}
	if cfg.Placement != layout.Striped {
		t.Errorf("placement = %v", cfg.Placement)
	}
	if cfg.Admission != cache.Greedy {
		t.Errorf("admission = %v", cfg.Admission)
	}
	if cfg.Disk.BlockBytes != disk.ModernParams().BlockBytes || cfg.Disk.Geometry != disk.ModernParams().Geometry {
		t.Errorf("disk model not modern: %+v", cfg.Disk)
	}
}

// TestRequestRejections pins the HTTP boundary's rejection behavior:
// every invalid input yields a *requestError (HTTP 400) whose text
// names the offending field or value.
func TestRequestRejections(t *testing.T) {
	cases := []struct {
		name    string
		req     SimulateRequest
		wantSub string
	}{
		{"bad schedule", SimulateRequest{Schedule: "elevator"}, `schedule "elevator"`},
		{"bad placement", SimulateRequest{Placement: "diagonal"}, `placement "diagonal"`},
		{"bad admission", SimulateRequest{Admission: "optimistic"}, `admission "optimistic"`},
		{"bad run policy", SimulateRequest{RunPolicy: "psychic"}, `run_policy "psychic"`},
		{"bad disk", SimulateRequest{Disk: "ssd"}, `disk "ssd"`},
		{"k too small", SimulateRequest{K: 1}, "k = 1"},
		{"d too large", SimulateRequest{K: 4, D: 8}, "D = 8"},
		{"negative n", SimulateRequest{N: -3}, "N = -3"},
		{"cache below demand minimum", SimulateRequest{K: 10, D: 2, CacheBlocks: 5}, "cache 5 blocks < K = 10"},
		{"negative cache sentinel", SimulateRequest{CacheBlocks: -7}, "cache_blocks = -7"},
		{"run lengths mismatch", SimulateRequest{K: 3, D: 2, RunLengths: []int{10, 10}}, "2 run lengths for K = 3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.req.config()
			if err == nil {
				t.Fatal("config() accepted an invalid request")
			}
			var reqErr *requestError
			if !errors.As(err, &reqErr) {
				t.Fatalf("error %v is not a requestError (would not map to 400)", err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
