package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// latencyBuckets are the histogram upper bounds in seconds, spanning a
// cached lookup (~µs) to a long sweep. Prometheus convention: each
// bucket counts observations ≤ its bound; +Inf is implicit.
var latencyBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05,
	.1, .25, .5, 1, 2.5, 5, 10, 30, 60,
}

// metrics is the daemon's instrumentation: request counters by endpoint
// and status code, serving-path counters (cache, singleflight,
// admission) and a request-latency histogram from which the p50/p95/p99
// summary lines are interpolated. All methods are safe for concurrent
// use; Prometheus text rendering takes the same lock, so a scrape sees
// a consistent snapshot.
type metrics struct {
	mu sync.Mutex

	requests map[reqKey]int64
	inFlight int64

	cacheHits   int64
	cacheMisses int64
	dedupShared int64
	shed        int64
	timeouts    int64
	panics      int64

	latCounts []int64 // parallel to latencyBuckets
	latInf    int64
	latSum    float64
	latCount  int64
}

// reqKey labels one requests-total series.
type reqKey struct {
	endpoint string
	code     int
}

func newMetrics() *metrics {
	return &metrics{
		requests:  make(map[reqKey]int64),
		latCounts: make([]int64, len(latencyBuckets)),
	}
}

func (m *metrics) requestStarted() {
	m.mu.Lock()
	m.inFlight++
	m.mu.Unlock()
}

// requestFinished records one completed request: its endpoint, HTTP
// status code and wall-clock latency in seconds.
func (m *metrics) requestFinished(endpoint string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inFlight--
	m.requests[reqKey{endpoint, code}]++
	m.latSum += seconds
	m.latCount++
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			m.latCounts[i]++
			return
		}
	}
	m.latInf++
}

func (m *metrics) addCacheHits(n int64)   { m.mu.Lock(); m.cacheHits += n; m.mu.Unlock() }
func (m *metrics) addCacheMisses(n int64) { m.mu.Lock(); m.cacheMisses += n; m.mu.Unlock() }
func (m *metrics) addDedupShared(n int64) { m.mu.Lock(); m.dedupShared += n; m.mu.Unlock() }
func (m *metrics) addShed()               { m.mu.Lock(); m.shed++; m.mu.Unlock() }
func (m *metrics) addTimeout()            { m.mu.Lock(); m.timeouts++; m.mu.Unlock() }
func (m *metrics) addPanic()              { m.mu.Lock(); m.panics++; m.mu.Unlock() }

// snapshot returns (hits, misses, shared) for tests and logs.
func (m *metrics) snapshot() (hits, misses, shared int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cacheHits, m.cacheMisses, m.dedupShared
}

// quantile interpolates the q-quantile (0 < q < 1) of the latency
// histogram in seconds, Prometheus histogram_quantile style: linear
// within the winning bucket. Returns 0 with no observations.
func (m *metrics) quantileLocked(q float64) float64 {
	if m.latCount == 0 {
		return 0
	}
	rank := q * float64(m.latCount)
	var cum int64
	lower := 0.0
	for i, ub := range latencyBuckets {
		prev := cum
		cum += m.latCounts[i]
		if float64(cum) >= rank {
			if m.latCounts[i] == 0 {
				return ub
			}
			frac := (rank - float64(prev)) / float64(m.latCounts[i])
			return lower + frac*(ub-lower)
		}
		lower = ub
	}
	// The quantile falls in the +Inf bucket; report the largest finite
	// bound, the conventional floor for an unbounded tail.
	return latencyBuckets[len(latencyBuckets)-1]
}

// writePrometheus renders the Prometheus text exposition format.
// queueDepth, cacheEntries and cacheBytes are sampled by the caller at
// scrape time (they live in the gate and the LRU, not here).
func (m *metrics) writePrometheus(w io.Writer, queueDepth, cacheEntries int, cacheBytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP simd_requests_total Completed HTTP requests by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE simd_requests_total counter")
	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "simd_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.requests[k])
	}

	fmt.Fprintln(w, "# HELP simd_in_flight Requests currently being served.")
	fmt.Fprintln(w, "# TYPE simd_in_flight gauge")
	fmt.Fprintf(w, "simd_in_flight %d\n", m.inFlight)

	fmt.Fprintln(w, "# HELP simd_cache_hits_total Simulation points served from the result cache.")
	fmt.Fprintln(w, "# TYPE simd_cache_hits_total counter")
	fmt.Fprintf(w, "simd_cache_hits_total %d\n", m.cacheHits)
	fmt.Fprintln(w, "# HELP simd_cache_misses_total Simulation points that required an engine run.")
	fmt.Fprintln(w, "# TYPE simd_cache_misses_total counter")
	fmt.Fprintf(w, "simd_cache_misses_total %d\n", m.cacheMisses)
	fmt.Fprintln(w, "# HELP simd_cache_entries Result-cache occupancy.")
	fmt.Fprintln(w, "# TYPE simd_cache_entries gauge")
	fmt.Fprintf(w, "simd_cache_entries %d\n", cacheEntries)
	fmt.Fprintln(w, "# HELP simd_cache_bytes Total bytes of cached response bodies.")
	fmt.Fprintln(w, "# TYPE simd_cache_bytes gauge")
	fmt.Fprintf(w, "simd_cache_bytes %d\n", cacheBytes)

	fmt.Fprintln(w, "# HELP simd_dedup_shared_total Requests that joined an identical in-flight run.")
	fmt.Fprintln(w, "# TYPE simd_dedup_shared_total counter")
	fmt.Fprintf(w, "simd_dedup_shared_total %d\n", m.dedupShared)

	fmt.Fprintln(w, "# HELP simd_admission_shed_total Requests shed with 429 because the queue was full.")
	fmt.Fprintln(w, "# TYPE simd_admission_shed_total counter")
	fmt.Fprintf(w, "simd_admission_shed_total %d\n", m.shed)
	fmt.Fprintln(w, "# HELP simd_request_timeouts_total Requests that expired while queued or running.")
	fmt.Fprintln(w, "# TYPE simd_request_timeouts_total counter")
	fmt.Fprintf(w, "simd_request_timeouts_total %d\n", m.timeouts)
	fmt.Fprintln(w, "# HELP simd_panics_total Handler panics recovered into 500 responses.")
	fmt.Fprintln(w, "# TYPE simd_panics_total counter")
	fmt.Fprintf(w, "simd_panics_total %d\n", m.panics)
	fmt.Fprintln(w, "# HELP simd_queue_depth Callers waiting for an engine slot.")
	fmt.Fprintln(w, "# TYPE simd_queue_depth gauge")
	fmt.Fprintf(w, "simd_queue_depth %d\n", queueDepth)

	fmt.Fprintln(w, "# HELP simd_request_latency_seconds Request latency.")
	fmt.Fprintln(w, "# TYPE simd_request_latency_seconds histogram")
	var cum int64
	for i, ub := range latencyBuckets {
		cum += m.latCounts[i]
		fmt.Fprintf(w, "simd_request_latency_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += m.latInf
	fmt.Fprintf(w, "simd_request_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "simd_request_latency_seconds_sum %g\n", m.latSum)
	fmt.Fprintf(w, "simd_request_latency_seconds_count %d\n", m.latCount)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		fmt.Fprintf(w, "simd_request_latency_seconds{quantile=\"%g\"} %g\n", q, m.quantileLocked(q))
	}
}
