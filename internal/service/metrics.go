package service

import (
	"fmt"
	"io"
	"runtime/debug"
	"sort"
	"sync"

	"repro/internal/diskcache"
)

// latencyBuckets are the histogram upper bounds in seconds, spanning a
// cached lookup (~µs) to a long sweep. Prometheus convention: each
// bucket counts observations ≤ its bound; +Inf closes the ladder.
var latencyBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05,
	.1, .25, .5, 1, 2.5, 5, 10, 30, 60,
}

// sizeBuckets are the response-size upper bounds in bytes: an error
// body is tens of bytes, a single-trial result ~1 KiB, a MaxPoints
// sweep of MaxTrials trials hundreds of KiB.
var sizeBuckets = []float64{
	128, 512, 2048, 8192, 32768, 131072, 524288, 2097152,
}

// hist is one fixed-bucket histogram. Not self-locking: the owning
// metrics mutex guards it.
type hist struct {
	buckets []float64 // upper bounds, ascending
	counts  []int64   // parallel to buckets, non-cumulative
	inf     int64
	sum     float64
	count   int64
}

func newHist(buckets []float64) *hist {
	return &hist{buckets: buckets, counts: make([]int64, len(buckets))}
}

func (h *hist) observe(v float64) {
	h.sum += v
	h.count++
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i]++
			return
		}
	}
	h.inf++
}

// metrics is the daemon's instrumentation: request counters by endpoint
// and status code, serving-path counters (cache, singleflight,
// admission), and per-endpoint latency and response-size histograms.
// All methods are safe for concurrent use; Prometheus text rendering
// takes the same lock, so a scrape sees a consistent snapshot.
type metrics struct {
	mu sync.Mutex

	requests map[reqKey]int64
	inFlight int64

	cacheHits   int64
	cacheMisses int64
	dedupShared int64
	rejected    int64 // memory-tier bodies refused for exceeding the whole byte budget
	shed        int64
	timeouts    int64
	panics      int64

	// traceTruncated counts traced or explained runs whose recorder hit
	// its event cap — responses flagged trace_truncated on the wire.
	traceTruncated int64

	optRequests    int64
	optEvaluations int64
	optCacheServed int64
	optSearch      *hist // search duration, seconds

	latency map[string]*hist // per endpoint, seconds
	size    map[string]*hist // per endpoint, response bytes

	// Build identity, resolved once at startup.
	goVersion string
	version   string
}

// reqKey labels one requests-total series.
type reqKey struct {
	endpoint string
	code     int
}

func newMetrics() *metrics {
	m := &metrics{
		requests:  make(map[reqKey]int64),
		latency:   make(map[string]*hist),
		size:      make(map[string]*hist),
		optSearch: newHist(latencyBuckets),
		goVersion: "unknown",
		version:   "unknown",
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		m.goVersion = bi.GoVersion
		if bi.Main.Version != "" {
			m.version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				m.version = s.Value
			}
		}
	}
	return m
}

func (m *metrics) requestStarted() {
	m.mu.Lock()
	m.inFlight++
	m.mu.Unlock()
}

// requestFinished records one completed request: its endpoint, HTTP
// status code, wall-clock latency in seconds, and response body bytes.
func (m *metrics) requestFinished(endpoint string, code int, seconds float64, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inFlight--
	m.requests[reqKey{endpoint, code}]++
	lh := m.latency[endpoint]
	if lh == nil {
		lh = newHist(latencyBuckets)
		m.latency[endpoint] = lh
	}
	lh.observe(seconds)
	sh := m.size[endpoint]
	if sh == nil {
		sh = newHist(sizeBuckets)
		m.size[endpoint] = sh
	}
	sh.observe(float64(bytes))
}

func (m *metrics) addCacheHits(n int64)   { m.mu.Lock(); m.cacheHits += n; m.mu.Unlock() }
func (m *metrics) addCacheMisses(n int64) { m.mu.Lock(); m.cacheMisses += n; m.mu.Unlock() }
func (m *metrics) addDedupShared(n int64) { m.mu.Lock(); m.dedupShared += n; m.mu.Unlock() }
func (m *metrics) addRejected(n int64)    { m.mu.Lock(); m.rejected += n; m.mu.Unlock() }
func (m *metrics) addShed()               { m.mu.Lock(); m.shed++; m.mu.Unlock() }

// addOptimize records one finished search: its evaluation counts and
// end-to-end duration in seconds.
func (m *metrics) addOptimize(evals, served int64, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.optRequests++
	m.optEvaluations += evals
	m.optCacheServed += served
	m.optSearch.observe(seconds)
}

// optimizeSnapshot returns (searches, evaluations, cache-served) for
// tests and logs.
func (m *metrics) optimizeSnapshot() (requests, evals, served int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.optRequests, m.optEvaluations, m.optCacheServed
}
func (m *metrics) addTimeout() { m.mu.Lock(); m.timeouts++; m.mu.Unlock() }
func (m *metrics) addPanic()   { m.mu.Lock(); m.panics++; m.mu.Unlock() }

// addTraceTruncated records one traced run clipped by the event cap.
func (m *metrics) addTraceTruncated() { m.mu.Lock(); m.traceTruncated++; m.mu.Unlock() }

// traceTruncatedSnapshot returns the truncated-trace count (tests).
func (m *metrics) traceTruncatedSnapshot() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.traceTruncated
}

// panicsSnapshot returns the recovered-panic count (tests).
func (m *metrics) panicsSnapshot() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.panics
}

// snapshot returns (hits, misses, shared) for tests and logs.
func (m *metrics) snapshot() (hits, misses, shared int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cacheHits, m.cacheMisses, m.dedupShared
}

// sortedEndpoints returns the keys of a per-endpoint histogram map in
// deterministic order, so consecutive scrapes diff cleanly.
func sortedEndpoints(hs map[string]*hist) []string {
	eps := make([]string, 0, len(hs))
	for ep := range hs {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	return eps
}

// writePrometheus renders the Prometheus text exposition format
// (version 0.0.4). queueDepth, cacheEntries, cacheBytes and the disk
// tier's snapshot are sampled by the caller at scrape time (they live
// in the gate, the LRU and the diskcache, not here). The
// simd_disk_cache_* families are emitted even when no disk tier is
// configured — constant zeros and a closed-state gauge, so dashboards
// and alerts keep one shape across both deployments. Every family ends
// its last sample line with a newline, as the format requires.
func (m *metrics) writePrometheus(w io.Writer, queueDepth, cacheEntries int, cacheBytes int64, ds diskcache.Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP simd_build_info Build identity of the running daemon; the value is always 1.")
	fmt.Fprintln(w, "# TYPE simd_build_info gauge")
	fmt.Fprintf(w, "simd_build_info{goversion=%q,version=%q} 1\n", m.goVersion, m.version)

	fmt.Fprintln(w, "# HELP simd_requests_total Completed HTTP requests by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE simd_requests_total counter")
	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "simd_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.requests[k])
	}

	fmt.Fprintln(w, "# HELP simd_in_flight Requests currently being served.")
	fmt.Fprintln(w, "# TYPE simd_in_flight gauge")
	fmt.Fprintf(w, "simd_in_flight %d\n", m.inFlight)

	fmt.Fprintln(w, "# HELP simd_cache_hits_total Simulation points served from the result cache.")
	fmt.Fprintln(w, "# TYPE simd_cache_hits_total counter")
	fmt.Fprintf(w, "simd_cache_hits_total %d\n", m.cacheHits)
	fmt.Fprintln(w, "# HELP simd_cache_misses_total Simulation points that required an engine run.")
	fmt.Fprintln(w, "# TYPE simd_cache_misses_total counter")
	fmt.Fprintf(w, "simd_cache_misses_total %d\n", m.cacheMisses)
	fmt.Fprintln(w, "# HELP simd_cache_entries Result-cache occupancy.")
	fmt.Fprintln(w, "# TYPE simd_cache_entries gauge")
	fmt.Fprintf(w, "simd_cache_entries %d\n", cacheEntries)
	fmt.Fprintln(w, "# HELP simd_cache_bytes Total bytes of cached response bodies.")
	fmt.Fprintln(w, "# TYPE simd_cache_bytes gauge")
	fmt.Fprintf(w, "simd_cache_bytes %d\n", cacheBytes)

	fmt.Fprintln(w, "# HELP simd_cache_rejected_total Result bodies a cache tier refused because they exceed its whole byte budget; every future request for such a point is an engine run.")
	fmt.Fprintln(w, "# TYPE simd_cache_rejected_total counter")
	fmt.Fprintf(w, "simd_cache_rejected_total{tier=\"memory\"} %d\n", m.rejected)
	fmt.Fprintf(w, "simd_cache_rejected_total{tier=\"disk\"} %d\n", ds.Rejected)

	fmt.Fprintln(w, "# HELP simd_disk_cache_hits_total Points served from the persistent disk tier (CRC-verified on read).")
	fmt.Fprintln(w, "# TYPE simd_disk_cache_hits_total counter")
	fmt.Fprintf(w, "simd_disk_cache_hits_total %d\n", ds.Hits)
	fmt.Fprintln(w, "# HELP simd_disk_cache_misses_total Disk-tier lookups not served, breaker skips included.")
	fmt.Fprintln(w, "# TYPE simd_disk_cache_misses_total counter")
	fmt.Fprintf(w, "simd_disk_cache_misses_total %d\n", ds.Misses)
	fmt.Fprintln(w, "# HELP simd_disk_cache_writes_total Entries durably written to the disk tier (fsync + atomic rename).")
	fmt.Fprintln(w, "# TYPE simd_disk_cache_writes_total counter")
	fmt.Fprintf(w, "simd_disk_cache_writes_total %d\n", ds.Writes)
	fmt.Fprintln(w, "# HELP simd_disk_cache_evictions_total Disk-tier entries removed to fit the byte budget.")
	fmt.Fprintln(w, "# TYPE simd_disk_cache_evictions_total counter")
	fmt.Fprintf(w, "simd_disk_cache_evictions_total %d\n", ds.Evictions)
	fmt.Fprintln(w, "# HELP simd_disk_cache_quarantined_total Corrupt entry files moved to the quarantine directory (recovery scan and read path); quarantined entries are never served.")
	fmt.Fprintln(w, "# TYPE simd_disk_cache_quarantined_total counter")
	fmt.Fprintf(w, "simd_disk_cache_quarantined_total %d\n", ds.Quarantined)
	fmt.Fprintln(w, "# HELP simd_disk_cache_state Disk-tier circuit-breaker state: 0 closed (healthy), 1 half-open (probing), 2 open (memory-only).")
	fmt.Fprintln(w, "# TYPE simd_disk_cache_state gauge")
	fmt.Fprintf(w, "simd_disk_cache_state %d\n", ds.State)
	fmt.Fprintln(w, "# HELP simd_disk_cache_bytes Total size of servable disk-tier entry files.")
	fmt.Fprintln(w, "# TYPE simd_disk_cache_bytes gauge")
	fmt.Fprintf(w, "simd_disk_cache_bytes %d\n", ds.Bytes)

	fmt.Fprintln(w, "# HELP simd_dedup_shared_total Requests that joined an identical in-flight run.")
	fmt.Fprintln(w, "# TYPE simd_dedup_shared_total counter")
	fmt.Fprintf(w, "simd_dedup_shared_total %d\n", m.dedupShared)

	fmt.Fprintln(w, "# HELP simd_optimize_requests_total Completed configuration searches.")
	fmt.Fprintln(w, "# TYPE simd_optimize_requests_total counter")
	fmt.Fprintf(w, "simd_optimize_requests_total %d\n", m.optRequests)
	fmt.Fprintln(w, "# HELP simd_optimize_evaluations_total Candidate evaluations performed by searches, adaptive-trial escalations included.")
	fmt.Fprintln(w, "# TYPE simd_optimize_evaluations_total counter")
	fmt.Fprintf(w, "simd_optimize_evaluations_total %d\n", m.optEvaluations)
	fmt.Fprintln(w, "# HELP simd_optimize_cache_served_total Search evaluations answered from the result cache or a shared in-flight run.")
	fmt.Fprintln(w, "# TYPE simd_optimize_cache_served_total counter")
	fmt.Fprintf(w, "simd_optimize_cache_served_total %d\n", m.optCacheServed)
	fmt.Fprintln(w, "# HELP simd_optimize_search_seconds End-to-end configuration-search duration.")
	fmt.Fprintln(w, "# TYPE simd_optimize_search_seconds histogram")
	{
		h := m.optSearch
		var cum int64
		for i, ub := range h.buckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "simd_optimize_search_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
		}
		cum += h.inf
		fmt.Fprintf(w, "simd_optimize_search_seconds_bucket{le=\"+Inf\"} %d\n", cum)
		fmt.Fprintf(w, "simd_optimize_search_seconds_sum %g\n", h.sum)
		fmt.Fprintf(w, "simd_optimize_search_seconds_count %d\n", h.count)
	}

	fmt.Fprintln(w, "# HELP simd_admission_shed_total Requests shed with 429 because the queue was full.")
	fmt.Fprintln(w, "# TYPE simd_admission_shed_total counter")
	fmt.Fprintf(w, "simd_admission_shed_total %d\n", m.shed)
	fmt.Fprintln(w, "# HELP simd_request_timeouts_total Requests that expired while queued or running.")
	fmt.Fprintln(w, "# TYPE simd_request_timeouts_total counter")
	fmt.Fprintf(w, "simd_request_timeouts_total %d\n", m.timeouts)
	fmt.Fprintln(w, "# HELP simd_panics_total Handler panics recovered into 500 responses.")
	fmt.Fprintln(w, "# TYPE simd_panics_total counter")
	fmt.Fprintf(w, "simd_panics_total %d\n", m.panics)
	fmt.Fprintln(w, "# HELP simd_trace_truncated_total Traced or explained runs whose trace hit the event cap and was clipped.")
	fmt.Fprintln(w, "# TYPE simd_trace_truncated_total counter")
	fmt.Fprintf(w, "simd_trace_truncated_total %d\n", m.traceTruncated)
	fmt.Fprintln(w, "# HELP simd_queue_depth Callers waiting for an engine slot.")
	fmt.Fprintln(w, "# TYPE simd_queue_depth gauge")
	fmt.Fprintf(w, "simd_queue_depth %d\n", queueDepth)

	fmt.Fprintln(w, "# HELP simd_request_latency_seconds Request latency by endpoint.")
	fmt.Fprintln(w, "# TYPE simd_request_latency_seconds histogram")
	for _, ep := range sortedEndpoints(m.latency) {
		h := m.latency[ep]
		var cum int64
		for i, ub := range h.buckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "simd_request_latency_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", ep, ub, cum)
		}
		cum += h.inf
		fmt.Fprintf(w, "simd_request_latency_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		fmt.Fprintf(w, "simd_request_latency_seconds_sum{endpoint=%q} %g\n", ep, h.sum)
		fmt.Fprintf(w, "simd_request_latency_seconds_count{endpoint=%q} %d\n", ep, h.count)
	}

	fmt.Fprintln(w, "# HELP simd_response_bytes Response body size by endpoint.")
	fmt.Fprintln(w, "# TYPE simd_response_bytes histogram")
	for _, ep := range sortedEndpoints(m.size) {
		h := m.size[ep]
		var cum int64
		for i, ub := range h.buckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "simd_response_bytes_bucket{endpoint=%q,le=\"%g\"} %d\n", ep, ub, cum)
		}
		cum += h.inf
		fmt.Fprintf(w, "simd_response_bytes_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		fmt.Fprintf(w, "simd_response_bytes_sum{endpoint=%q} %g\n", ep, h.sum)
		fmt.Fprintf(w, "simd_response_bytes_count{endpoint=%q} %d\n", ep, h.count)
	}
}
