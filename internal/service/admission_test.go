package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGateCapAndQueue(t *testing.T) {
	g := newGate(1, 1)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Second caller queues; third is shed immediately.
	queued := make(chan error, 1)
	entered := make(chan struct{})
	go func() {
		close(entered)
		queued <- g.acquire(context.Background())
	}()
	<-entered
	// Wait for the queued caller to register.
	deadline := time.Now().Add(time.Second)
	for g.depth() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("queued caller never registered; depth = %d", g.depth())
		}
		time.Sleep(time.Millisecond)
	}
	if err := g.acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third acquire: err = %v, want ErrOverloaded", err)
	}

	g.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire failed: %v", err)
	}
	g.release()
}

func TestGateQueueTimesOutWithContext(t *testing.T) {
	g := newGate(1, 4)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if g.depth() != 0 {
		t.Fatalf("depth = %d after timed-out waiter left", g.depth())
	}
}

func TestGateConcurrencyNeverExceedsCap(t *testing.T) {
	const maxRuns = 3
	g := newGate(maxRuns, 100)
	var mu sync.Mutex
	cur, peak := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			cur++
			if cur > peak {
				peak = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			g.release()
		}()
	}
	wg.Wait()
	if peak > maxRuns {
		t.Fatalf("peak concurrency %d exceeds cap %d", peak, maxRuns)
	}
}

func TestFlightGroupDedups(t *testing.T) {
	var g flightGroup
	c1, lead1 := g.lead("k")
	c2, lead2 := g.lead("k")
	if !lead1 || lead2 {
		t.Fatalf("leadership: %v, %v — want true, false", lead1, lead2)
	}
	if c1 != c2 {
		t.Fatal("same key produced different calls")
	}
	g.finish("k", c1, []byte("v"), nil)
	<-c2.done
	if string(c2.val) != "v" {
		t.Fatalf("waiter saw %q", c2.val)
	}
	// After finish, the key leads a fresh flight.
	if _, lead := g.lead("k"); !lead {
		t.Fatal("finished key did not retire")
	}
}
