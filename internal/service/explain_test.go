package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// explainBody is the subset of the explain response the tests assert.
type explainBody struct {
	K              int  `json:"k"`
	TraceTruncated bool `json:"trace_truncated"`
	Explain        *struct {
		MakespanMs float64 `json:"makespan_ms"`
		Truncated  bool    `json:"truncated"`
		CPU        struct {
			StallMs float64 `json:"stall_ms"`
		} `json:"cpu"`
		Disks []struct {
			Name        string  `json:"name"`
			BusyMs      float64 `json:"busy_ms"`
			IdleMs      float64 `json:"idle_ms"`
			Utilization float64 `json:"utilization"`
		} `json:"disks"`
		Stall struct {
			TotalMs        float64 `json:"total_ms"`
			UnattributedMs float64 `json:"unattributed_ms"`
		} `json:"stall"`
	} `json:"explain"`
}

func TestExplainEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	p := fastPoint(11)
	resp, body := postJSON(t, ts.URL+"/v1/explain", p)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first explain X-Cache = %q, want miss", got)
	}
	var eb explainBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("bad explain body: %v\n%s", err, body)
	}
	if eb.K != 4 || eb.Explain == nil {
		t.Fatalf("explain body missing fields: %s", body)
	}
	if eb.Explain.MakespanMs <= 0 {
		t.Fatalf("nonpositive makespan: %s", body)
	}
	if len(eb.Explain.Disks) != 2 {
		t.Fatalf("want 2 disks, got %d", len(eb.Explain.Disks))
	}
	for _, d := range eb.Explain.Disks {
		if d.Utilization <= 0 {
			t.Fatalf("disk %s has zero utilization", d.Name)
		}
		if diff := d.BusyMs + d.IdleMs - eb.Explain.MakespanMs; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("disk %s does not tile the makespan: busy %v + idle %v vs %v",
				d.Name, d.BusyMs, d.IdleMs, eb.Explain.MakespanMs)
		}
	}
	if eb.Explain.Truncated || eb.TraceTruncated {
		t.Fatalf("small run flagged truncated: %s", body)
	}

	// Repeat request: served from the report cache byte-identically,
	// with no second engine run.
	resp2, body2 := postJSON(t, ts.URL+"/v1/explain", p)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat explain X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Fatalf("cached explain differs from computed one")
	}

	// The engine run also populated the plain result cache.
	resp3, body3 := postJSON(t, ts.URL+"/v1/simulate", p)
	if got := resp3.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("untraced simulate after explain X-Cache = %q, want hit; %s", got, body3)
	}
	if bytes.Contains(body3, []byte(`"explain"`)) {
		t.Fatalf("plain cached body leaked the report: %s", body3)
	}
}

func TestExplainRejectsTraceAndTrials(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	p := fastPoint(11)
	p.Trace = true
	resp, body := postJSON(t, ts.URL+"/v1/explain", p)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trace flag: status %d, want 400; %s", resp.StatusCode, body)
	}
	p.Trace = false
	p.Trials = 3
	resp, body = postJSON(t, ts.URL+"/v1/explain", p)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trials 3: status %d, want 400; %s", resp.StatusCode, body)
	}
}

// TestExplainTruncatedNotCachedAndCounted: with a tiny event cap the
// report is flagged truncated, the counter increments, and the body is
// not cached (a bigger cap should be able to answer properly later).
func TestExplainTruncatedNotCachedAndCounted(t *testing.T) {
	svc, ts := newTestServer(t, Options{MaxTraceEvents: 40})
	p := fastPoint(11)
	resp, body := postJSON(t, ts.URL+"/v1/explain", p)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var eb explainBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Explain == nil || !eb.Explain.Truncated || !eb.TraceTruncated {
		t.Fatalf("tiny cap not flagged truncated: %s", body)
	}
	if got := svc.met.traceTruncatedSnapshot(); got != 1 {
		t.Fatalf("trace-truncated counter = %d, want 1", got)
	}
	resp2, _ := postJSON(t, ts.URL+"/v1/explain", p)
	if got := resp2.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("truncated explain was cached: X-Cache = %q", got)
	}
	if got := svc.met.traceTruncatedSnapshot(); got != 2 {
		t.Fatalf("trace-truncated counter = %d, want 2", got)
	}
}

// TestMetricsGoFamilies: the /metrics scrape carries the runtime
// self-metrics and the truncation counter with HELP/TYPE headers.
func TestMetricsGoFamilies(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, family := range []string{
		"simd_go_goroutines",
		"simd_go_heap_objects_bytes",
		"simd_go_gc_pause_seconds",
		"simd_trace_truncated_total",
	} {
		if !strings.Contains(out, "# HELP "+family+" ") {
			t.Fatalf("scrape missing HELP for %s", family)
		}
		if !strings.Contains(out, "# TYPE "+family+" ") {
			t.Fatalf("scrape missing TYPE for %s", family)
		}
		if !strings.Contains(out, family) {
			t.Fatalf("scrape missing samples for %s", family)
		}
	}
	if !strings.Contains(out, `simd_go_gc_pause_seconds_bucket{le="+Inf"}`) {
		t.Fatalf("gc pause histogram missing +Inf bucket")
	}
}
