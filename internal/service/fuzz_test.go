package service

import (
	"bytes"
	"net/http/httptest"
	"testing"
)

// FuzzDecodeSimulateRequest drives arbitrary bytes through the exact
// request path a client reaches: the strict bounded JSON decode, then
// request→Config materialization, then the canonical hash that keys the
// result cache. None of it may panic, and a body that decodes to a
// valid config must hash identically on every call — a flaky hash would
// silently split the cache.
func FuzzDecodeSimulateRequest(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"k":25,"d":5,"n":1,"blocks_per_run":1000,"seed":1}`))
	f.Add([]byte(`{"k":4,"d":2,"run_lengths":[10,20,30,40],"cache_blocks":-1,"trials":3}`))
	f.Add([]byte(`{"schedule":"scan","placement":"striped","admission":"greedy","run_policy":"oracle","disk":"modern"}`))
	f.Add([]byte(`{"write":{"shared":true,"disks":2,"batch_blocks":4,"buffer_blocks":16}}`))
	f.Add([]byte(`{"faults":[{"disk":0,"slowdown":2.5,"read_error_prob":0.01,"max_retries":3,"outages":[{"start_ms":10,"end_ms":20}]}]}`))
	f.Add([]byte(`{"k":1e999}`))
	f.Add([]byte(`{"k":2}{"k":3}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`"a string, not an object"`))
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, body []byte) {
		var req SimulateRequest
		rec := httptest.NewRecorder()
		hr := httptest.NewRequest("POST", "/simulate", bytes.NewReader(body))
		if code := decodeBody(rec, hr, &req); code != 0 {
			return // rejected bodies are fine; not panicking is the contract
		}
		cfg, err := req.config()
		if err != nil {
			return
		}
		h1, err := cfg.Hash()
		if err != nil {
			// A wire request can't smuggle in callbacks or workload
			// models, so every validated config must be hashable.
			t.Fatalf("valid request produced unhashable config: %v", err)
		}
		h2, err := cfg.Hash()
		if err != nil || h1 != h2 {
			t.Fatalf("hash not stable: %q then %q (err %v)", h1, h2, err)
		}
	})
}

// FuzzDecodeOptimizeRequest drives arbitrary bytes through the optimize
// request path: strict decode, then spec construction and validation.
// Nothing may panic, and a body that builds a valid spec must build it
// identically on every call — the spec is the cache-key surface of a
// whole search, so instability would split every evaluation's key.
func FuzzDecodeOptimizeRequest(f *testing.F) {
	f.Add([]byte(`{"space":{"n":{"values":[1,2,4]}}}`))
	f.Add([]byte(`{"template":{"k":4,"d":2,"blocks_per_run":40},"space":{"d":{"min":1,"max":2},"strategies":["intra-unsync","inter-sync"]}}`))
	f.Add([]byte(`{"space":{"cache_blocks":{"values":[-1,0,25]}},"objective":{"goal":"min_cost_per_block","disk_cost":2}}`))
	f.Add([]byte(`{"space":{"n":{"min":1,"max":8,"step":2}},"search":{"algorithm":"anneal","seed":9,"max_evaluations":32,"temp":0.5,"cooling":0.9,"steps":20}}`))
	f.Add([]byte(`{"space":{"d":{"min":5,"max":9}},"search":{"steps":-1}}`))
	f.Add([]byte(`{"space":{"k":{"values":[4,8]}},"trials":{"min":2,"max":8,"rel_ci95":0.1},"constraints":{"max_seconds":100,"min_success":0.5}}`))
	f.Add([]byte(`{"space":{"placements":["striped","clustered"]},"figure":true}`))
	f.Add([]byte(`{"space":{}}`))
	f.Add([]byte(`{"space":{"n":{"values":[1]}},"search":{"max_evaluations":1e999}}`))
	f.Add([]byte(`null`))
	f.Add([]byte{0x7b, 0xff})

	svc := New(Options{})
	f.Fuzz(func(t *testing.T, body []byte) {
		var req OptimizeRequest
		rec := httptest.NewRecorder()
		hr := httptest.NewRequest("POST", "/v1/optimize", bytes.NewReader(body))
		if code := decodeBody(rec, hr, &req); code != 0 {
			return // rejected bodies are fine; not panicking is the contract
		}
		spec1, err := svc.buildSpec(req)
		if err != nil {
			return
		}
		h1, err := spec1.Template.Hash()
		if err != nil {
			t.Fatalf("valid spec has unhashable template: %v", err)
		}
		spec2, err := svc.buildSpec(req)
		if err != nil {
			t.Fatalf("spec built once, failed twice: %v", err)
		}
		h2, err := spec2.Template.Hash()
		if err != nil || h1 != h2 {
			t.Fatalf("template hash not stable: %q then %q (err %v)", h1, h2, err)
		}
	})
}
