package service

import (
	"bytes"
	"net/http/httptest"
	"testing"
)

// FuzzDecodeSimulateRequest drives arbitrary bytes through the exact
// request path a client reaches: the strict bounded JSON decode, then
// request→Config materialization, then the canonical hash that keys the
// result cache. None of it may panic, and a body that decodes to a
// valid config must hash identically on every call — a flaky hash would
// silently split the cache.
func FuzzDecodeSimulateRequest(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"k":25,"d":5,"n":1,"blocks_per_run":1000,"seed":1}`))
	f.Add([]byte(`{"k":4,"d":2,"run_lengths":[10,20,30,40],"cache_blocks":-1,"trials":3}`))
	f.Add([]byte(`{"schedule":"scan","placement":"striped","admission":"greedy","run_policy":"oracle","disk":"modern"}`))
	f.Add([]byte(`{"write":{"shared":true,"disks":2,"batch_blocks":4,"buffer_blocks":16}}`))
	f.Add([]byte(`{"faults":[{"disk":0,"slowdown":2.5,"read_error_prob":0.01,"max_retries":3,"outages":[{"start_ms":10,"end_ms":20}]}]}`))
	f.Add([]byte(`{"k":1e999}`))
	f.Add([]byte(`{"k":2}{"k":3}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`"a string, not an object"`))
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, body []byte) {
		var req SimulateRequest
		rec := httptest.NewRecorder()
		hr := httptest.NewRequest("POST", "/simulate", bytes.NewReader(body))
		if code := decodeBody(rec, hr, &req); code != 0 {
			return // rejected bodies are fine; not panicking is the contract
		}
		cfg, err := req.config()
		if err != nil {
			return
		}
		h1, err := cfg.Hash()
		if err != nil {
			// A wire request can't smuggle in callbacks or workload
			// models, so every validated config must be hashable.
			t.Fatalf("valid request produced unhashable config: %v", err)
		}
		h2, err := cfg.Hash()
		if err != nil || h1 != h2 {
			t.Fatalf("hash not stable: %q then %q (err %v)", h1, h2, err)
		}
	})
}
