package service

import (
	"bytes"
	"context"
	"encoding/json"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/optimize"
)

// OptimizeRequest is the wire form of one configuration search. The
// template is an ordinary SimulateRequest naming the fixed knobs (its
// trials and trace fields must stay unset — replication is the trial
// policy's job, and a search result has no single timeline to trace);
// the space lists candidate values for the searched knobs; everything
// else tunes the search itself.
type OptimizeRequest struct {
	Template    *SimulateRequest     `json:"template,omitempty"`
	Space       OptimizeSpaceRequest `json:"space"`
	Objective   *ObjectiveRequest    `json:"objective,omitempty"`
	Constraints *ConstraintsRequest  `json:"constraints,omitempty"`
	Search      *SearchRequest       `json:"search,omitempty"`
	Trials      *TrialPolicyRequest  `json:"trials,omitempty"`

	// Figure embeds an SVG of the search trajectory in the response.
	Figure bool `json:"figure,omitempty"`
}

// DimensionRequest is one searched knob: either an explicit value list
// or an inclusive min/max range with a step (default 1). For
// cache_blocks the values 0 (natural size at each candidate) and -1
// (unlimited) are meaningful; ranges must be positive.
type DimensionRequest struct {
	Values []int `json:"values,omitempty"`
	Min    int   `json:"min,omitempty"`
	Max    int   `json:"max,omitempty"`
	Step   int   `json:"step,omitempty"`
}

// OptimizeSpaceRequest is the wire form of the search space. Omitted
// dimensions are pinned at the template's value.
type OptimizeSpaceRequest struct {
	K           *DimensionRequest `json:"k,omitempty"`
	D           *DimensionRequest `json:"d,omitempty"`
	N           *DimensionRequest `json:"n,omitempty"`
	CacheBlocks *DimensionRequest `json:"cache_blocks,omitempty"`
	// Strategies: intra-unsync | intra-sync | inter-unsync | inter-sync.
	Strategies []string `json:"strategies,omitempty"`
	// Placements: round-robin | clustered | striped.
	Placements []string `json:"placements,omitempty"`
}

// ObjectiveRequest selects and prices the objective.
type ObjectiveRequest struct {
	Goal            string  `json:"goal,omitempty"` // min_time | max_overlap | min_cost_per_block
	DiskCost        float64 `json:"disk_cost,omitempty"`
	RAMCostPerBlock float64 `json:"ram_cost_per_block,omitempty"`
	BaseCost        float64 `json:"base_cost,omitempty"`
}

// ConstraintsRequest bounds feasibility.
type ConstraintsRequest struct {
	MaxSeconds float64 `json:"max_seconds,omitempty"`
	MinSuccess float64 `json:"min_success,omitempty"`
}

// SearchRequest tunes the driver.
type SearchRequest struct {
	Algorithm      string  `json:"algorithm,omitempty"` // grid | coordinate | anneal
	Seed           uint64  `json:"seed,omitempty"`
	MaxEvaluations int     `json:"max_evaluations,omitempty"`
	Temp           float64 `json:"temp,omitempty"`    // anneal initial temperature
	Cooling        float64 `json:"cooling,omitempty"` // anneal geometric cooling
	Steps          int     `json:"steps,omitempty"`   // anneal proposal budget (0 = max_evaluations − 1)
}

// TrialPolicyRequest is the adaptive replication rule: start at min
// trials and double toward max until the 95% CI of mean merge time is
// within rel_ci95 of itself.
type TrialPolicyRequest struct {
	Min     int     `json:"min,omitempty"`
	Max     int     `json:"max,omitempty"`
	RelCI95 float64 `json:"rel_ci95,omitempty"`
}

// optimizeResponse is the wire form of a finished search.
type optimizeResponse struct {
	Algorithm string `json:"algorithm"`
	Goal      string `json:"goal"`
	Seed      uint64 `json:"seed"`
	optimize.Result
	FigureSVG string `json:"figure_svg,omitempty"`
}

// dimension materializes one wire dimension.
func (d *DimensionRequest) dimension(name string) (optimize.Dimension, error) {
	if d == nil {
		return optimize.Dimension{}, nil
	}
	if len(d.Values) > 0 {
		if d.Min != 0 || d.Max != 0 || d.Step != 0 {
			return optimize.Dimension{}, badRequestf("space.%s: give values or min/max, not both", name)
		}
		return optimize.Dimension{Values: d.Values}, nil
	}
	if d.Min == 0 && d.Max == 0 {
		return optimize.Dimension{}, badRequestf("space.%s: empty dimension (omit it to pin at the template value)", name)
	}
	if d.Min <= 0 || d.Max < d.Min {
		return optimize.Dimension{}, badRequestf("space.%s: range [%d, %d] (want 0 < min <= max; sentinels only in values)", name, d.Min, d.Max)
	}
	if d.Step < 0 {
		return optimize.Dimension{}, badRequestf("space.%s: step %d", name, d.Step)
	}
	return optimize.Range(d.Min, d.Max, d.Step), nil
}

// buildSpec materializes the wire request into a validated search spec.
// Every error return is a 400: specs are fully checked before any
// engine work starts.
func (s *Service) buildSpec(req OptimizeRequest) (optimize.Spec, error) {
	tmpl := req.Template
	if tmpl == nil {
		tmpl = &SimulateRequest{}
	}
	if tmpl.Trials != 0 {
		return optimize.Spec{}, badRequestf("template.trials is not allowed; set the trials policy at the top level")
	}
	if tmpl.Trace {
		return optimize.Spec{}, badRequestf("template.trace is not allowed; a search has no single timeline to trace")
	}
	cfg, err := tmpl.config()
	if err != nil {
		return optimize.Spec{}, err
	}

	var spec optimize.Spec
	spec.Template = cfg
	if spec.Space.K, err = req.Space.K.dimension("k"); err != nil {
		return optimize.Spec{}, err
	}
	for _, v := range spec.Space.K.Values {
		if v < 2 {
			return optimize.Spec{}, badRequestf("space.k: %d (a merge needs at least 2 runs)", v)
		}
	}
	if spec.Space.D, err = req.Space.D.dimension("d"); err != nil {
		return optimize.Spec{}, err
	}
	if spec.Space.N, err = req.Space.N.dimension("n"); err != nil {
		return optimize.Spec{}, err
	}
	if spec.Space.CacheBlocks, err = req.Space.CacheBlocks.dimension("cache_blocks"); err != nil {
		return optimize.Spec{}, err
	}
	for _, name := range req.Space.Strategies {
		st, err := optimize.ParseStrategy(name)
		if err != nil {
			return optimize.Spec{}, badRequestf("space.strategies: %v", err)
		}
		spec.Space.Strategies = append(spec.Space.Strategies, st)
	}
	for _, name := range req.Space.Placements {
		p, err := layout.ParsePlacement(name)
		if err != nil {
			return optimize.Spec{}, badRequestf("space.placements: %v", err)
		}
		spec.Space.Placements = append(spec.Space.Placements, p)
	}

	if o := req.Objective; o != nil {
		if spec.Objective.Goal, err = optimize.ParseGoal(o.Goal); err != nil {
			return optimize.Spec{}, badRequestf("objective.goal: %v", err)
		}
		if o.DiskCost < 0 || o.RAMCostPerBlock < 0 || o.BaseCost < 0 {
			return optimize.Spec{}, badRequestf("objective: negative cost weights")
		}
		spec.Objective.DiskCost = o.DiskCost
		spec.Objective.RAMCostPerBlock = o.RAMCostPerBlock
		spec.Objective.BaseCost = o.BaseCost
	}
	if c := req.Constraints; c != nil {
		spec.Constraints = optimize.Constraints{MaxSeconds: c.MaxSeconds, MinSuccess: c.MinSuccess}
	}
	if sr := req.Search; sr != nil {
		if spec.Algorithm, err = optimize.ParseAlgorithm(sr.Algorithm); err != nil {
			return optimize.Spec{}, badRequestf("search.algorithm: %v", err)
		}
		if sr.MaxEvaluations > s.opts.MaxOptimizeEvals {
			return optimize.Spec{}, badRequestf("search.max_evaluations = %d exceeds the limit of %d", sr.MaxEvaluations, s.opts.MaxOptimizeEvals)
		}
		spec.Seed = sr.Seed
		spec.MaxEvaluations = sr.MaxEvaluations
		spec.Anneal = optimize.AnnealParams{Temp: sr.Temp, Cooling: sr.Cooling, Steps: sr.Steps}
	}
	if spec.MaxEvaluations == 0 && s.opts.MaxOptimizeEvals < 256 {
		spec.MaxEvaluations = s.opts.MaxOptimizeEvals // keep the package default under the service cap
	}
	if tp := req.Trials; tp != nil {
		if tp.Min > s.opts.MaxTrials || tp.Max > s.opts.MaxTrials {
			return optimize.Spec{}, badRequestf("trials policy exceeds the limit of %d", s.opts.MaxTrials)
		}
		spec.Trials = optimize.TrialPolicy{Min: tp.Min, Max: tp.Max, RelCI95: tp.RelCI95}
		if tp.RelCI95 > 0 && tp.Max == 0 {
			spec.Trials.Max = s.opts.MaxTrials
		}
	}
	if err := spec.Validate(); err != nil {
		return optimize.Spec{}, badRequestf("%v", err)
	}
	return spec, nil
}

// evaluateCandidate serves one search candidate through the exact path
// a /v1/simulate request takes — result cache, then singleflight, then
// a detached gated engine run — so concurrent searches and plain
// simulate traffic share every evaluation. Cached reports whether the
// answer involved no fresh engine work for this caller (a cache hit or
// a joined in-flight run).
func (s *Service) evaluateCandidate(ctx context.Context, cfg core.Config, trials int) (optimize.Eval, error) {
	key, err := resultKey(cfg, trials)
	if err != nil {
		return optimize.Eval{}, err
	}
	var body []byte
	cached := false
	if b, _, ok := s.cacheGet(key); ok {
		body, cached = b, true
	} else {
		c, leader := s.flights.lead(key)
		if leader {
			s.met.addCacheMisses(1)
			s.spawn([]string{key}, []*call{c}, []core.Config{cfg}, trials)
		} else {
			s.met.addDedupShared(1)
			cached = true
		}
		b, err := s.await(ctx, c)
		if err != nil {
			return optimize.Eval{}, err
		}
		body = b
	}
	var r core.ResultJSON
	if err := json.Unmarshal(body, &r); err != nil {
		return optimize.Eval{}, err
	}
	ev := optimize.Eval{
		Seconds: r.MeanSeconds,
		CI95:    r.CI95Seconds,
		Success: r.MeanSuccess,
		Cached:  cached,
	}
	var overlap float64
	for _, t := range r.Results {
		overlap += t.Overlap
		if t.CachePeak > ev.CachePeak {
			ev.CachePeak = t.CachePeak
		}
		ev.Blocks = t.MergedBlocks
	}
	if len(r.Results) > 0 {
		ev.Overlap = overlap / float64(len(r.Results))
	}
	return ev, nil
}

// Optimize runs one configuration search and returns the marshaled
// response body plus (cache-served, total) evaluation counts for the
// X-Cache accounting. The whole search shares one RequestTimeout
// budget; a search cut off by it fails rather than returning a partial
// optimum silently.
func (s *Service) Optimize(ctx context.Context, req OptimizeRequest) ([]byte, int, int, error) {
	spec, err := s.buildSpec(req)
	if err != nil {
		return nil, 0, 0, err
	}
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}
	start := time.Now() //detlint:allow nondet search-duration instrumentation measures real wall time, never simulation state
	res, err := optimize.Run(ctx, spec, optimize.EvaluatorFunc(s.evaluateCandidate))
	if err != nil {
		return nil, 0, 0, err
	}
	//detlint:allow nondet search-duration instrumentation measures real wall time, never simulation state
	s.met.addOptimize(int64(res.Evaluations), int64(res.CacheServed), time.Since(start).Seconds())

	out := optimizeResponse{
		Algorithm: spec.Algorithm.String(),
		Goal:      spec.Objective.Goal.String(),
		Seed:      spec.Seed,
		Result:    *res,
	}
	if out.Seed == 0 {
		out.Seed = 1 // the applied default; echo what actually drove the search
	}
	if req.Figure && res.Best != nil {
		var buf bytes.Buffer
		if err := optimize.TrajectoryFigure(spec, res).WriteSVG(&buf, 800, 400); err == nil {
			out.FigureSVG = buf.String()
		}
	}
	body, err := json.Marshal(out)
	if err != nil {
		return nil, 0, 0, err
	}
	return body, res.CacheServed, res.Evaluations, nil
}
