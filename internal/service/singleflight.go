package service

import "sync"

// call is one in-flight engine execution. Waiters block on done; val
// and err are written exactly once, before done is closed. once makes
// finish idempotent: the panic-recovery path in execute fails every
// call of the batch, including any it had already finished, and a
// second close of done would itself panic.
type call struct {
	done chan struct{}
	once sync.Once
	val  []byte
	err  error
}

// flightGroup deduplicates concurrent identical work: all requests for
// the same key share one execution. Unlike x/sync/singleflight, the
// leader here only *registers* the call — execution happens in a
// goroutine owned by the Service so a waiter's context cancellation
// never aborts work other waiters still want.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*call
}

// lead returns the call for key, creating it if absent. The second
// result reports whether the caller created it and therefore owns
// running the work and finishing the call.
func (g *flightGroup) lead(key string) (*call, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.calls == nil {
		g.calls = make(map[string]*call)
	}
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c := &call{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// finish publishes the result, wakes every waiter, and retires the key
// so later requests (a cache miss after eviction, or a failed run) can
// start a fresh flight. Finishing an already-finished call is a no-op:
// the first result stands.
func (g *flightGroup) finish(key string, c *call, val []byte, err error) {
	c.once.Do(func() {
		c.val, c.err = val, err
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	})
}
