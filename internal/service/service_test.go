package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

func TestSimulateCachedBytesIdentical(t *testing.T) {
	svc := New(Options{})
	cold, status, err := svc.Simulate(context.Background(), fastPoint(7))
	if err != nil {
		t.Fatal(err)
	}
	if status != CacheMiss {
		t.Fatalf("first request status %q, want miss", status)
	}
	warm, status, err := svc.Simulate(context.Background(), fastPoint(7))
	if err != nil {
		t.Fatal(err)
	}
	if status != CacheHit {
		t.Fatalf("second request status %q, want hit", status)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cached body differs from cold body")
	}
	if err := svc.Drain(testCtx(t, 5*time.Second)); err != nil {
		t.Fatal(err)
	}
}

// TestSingleflightSharesOneRun issues many concurrent identical
// requests against a single-slot service and asserts that they all
// succeed while the engine ran at most a couple of times — without
// dedup, a one-slot gate with a tiny queue would shed most of them.
func TestSingleflightSharesOneRun(t *testing.T) {
	svc := New(Options{MaxConcurrent: 1, MaxQueue: 1})
	const clients = 32
	var wg sync.WaitGroup
	errs := make([]error, clients)
	bodies := make([][]byte, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bodies[i], _, errs[i] = svc.Simulate(context.Background(), fastPoint(5))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d saw different bytes", i)
		}
	}
	hits, misses, shared := svc.met.snapshot()
	// Every client either hit the cache (arrived after the run
	// finished), led a fresh run (a miss), or joined one in flight
	// (shared) — the three statuses partition the traffic, so misses
	// count engine runs exactly. At most a couple of distinct runs can
	// have started between cache lookups and flight registration.
	if hits+misses+shared != clients {
		t.Fatalf("hits %d + misses %d + shared %d != %d clients", hits, misses, shared, clients)
	}
	if misses > 3 {
		t.Fatalf("%d distinct engine runs for identical requests (shared %d); singleflight not deduplicating", misses, shared)
	}
	if err := svc.Drain(testCtx(t, 5*time.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionShedsWith429(t *testing.T) {
	// One slot, default queue (4). The test itself pins the slot, so the
	// burst deterministically fills the queue and the excess is shed with
	// ErrOverloaded → 429 at the HTTP layer. (Pinning via a slow request
	// instead is racy: on a fast machine the burst drains quicker than it
	// arrives and nothing sheds.)
	svc := New(Options{MaxConcurrent: 1, MaxQueue: 0})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	if err := svc.gate.acquire(testCtx(t, time.Second)); err != nil {
		t.Fatal(err)
	}
	released := false
	defer func() {
		if !released {
			svc.gate.release()
		}
	}()

	const clients = 12
	codes := make([]int, clients)
	var answered atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(SimulateRequest{K: 8, D: 2, N: 4, BlocksPerRun: 400, Seed: uint64(1000 + i)})
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
			if err != nil {
				answered.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
			answered.Add(1)
		}(i)
	}
	// While the test holds the only slot, every request either queues
	// (at most 4) or is shed immediately — so exactly 8 answer now, all
	// with 429. Wait for them, then hand the slot back so the queued
	// four complete with 200.
	for deadline := time.Now().Add(10 * time.Second); answered.Load() < clients-4; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d shed requests answered", answered.Load(), clients-4)
		}
		time.Sleep(time.Millisecond)
	}
	svc.gate.release()
	released = true
	wg.Wait()
	var ok200, shed429 int
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			shed429++
		default:
			t.Fatalf("unexpected status %d (want only 200/429)", c)
		}
	}
	if ok200 == 0 {
		t.Fatal("no request succeeded")
	}
	if shed429 == 0 {
		t.Fatal("no request was shed: admission control is not bounding load")
	}
	if err := svc.Drain(testCtx(t, 10*time.Second)); err != nil {
		t.Fatal(err)
	}
}

// TestLoadMixedTraffic is the acceptance load test: 64 concurrent
// clients issue a mix of repeated and distinct configurations (some via
// sweeps), everything succeeds, the cache hit ratio on the repeated mix
// exceeds 0.5, cached responses are byte-identical to cold ones, and
// shutdown drains without leaking goroutines. Run under -race in CI.
func TestLoadMixedTraffic(t *testing.T) {
	before := runtime.NumGoroutine()

	// Request logging on (to a discarded sink) so the slog path runs
	// under -race with 64 concurrent clients.
	svc := New(Options{
		CacheEntries: 256,
		Logger:       slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
	ts := httptest.NewServer(svc.Handler())

	const (
		clients        = 64
		reqsPerClient  = 8
		distinctPoints = 16 // 512 requests over 16 points → hit-heavy
	)
	var (
		mu        sync.Mutex
		firstBody = make(map[uint64][]byte) // seed → first body seen
	)
	errCh := make(chan error, clients*reqsPerClient)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < reqsPerClient; r++ {
				seed := uint64((c*reqsPerClient+r)%distinctPoints + 1)
				if (c+r)%5 == 4 {
					// Every fifth request is a 3-point sweep drawn from
					// the same distinct pool.
					req := SweepRequest{Points: []SimulateRequest{
						fastPoint(seed),
						fastPoint(seed%distinctPoints + 1),
						fastPoint((seed+1)%distinctPoints + 1),
					}}
					buf, _ := json.Marshal(req)
					resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(buf))
					if err != nil {
						errCh <- err
						continue
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errCh <- fmt.Errorf("sweep status %d: %s", resp.StatusCode, body)
					}
					continue
				}
				buf, _ := json.Marshal(fastPoint(seed))
				resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(buf))
				if err != nil {
					errCh <- err
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("simulate status %d: %s", resp.StatusCode, body)
					continue
				}
				mu.Lock()
				if prev, ok := firstBody[seed]; ok {
					if !bytes.Equal(prev, body) {
						errCh <- fmt.Errorf("seed %d: response bytes changed between requests", seed)
					}
				} else {
					firstBody[seed] = body
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	hits, misses, _ := svc.met.snapshot()
	ratio := float64(hits) / float64(hits+misses)
	if ratio <= 0.5 {
		t.Fatalf("cache hit ratio %.3f (hits %d, misses %d), want > 0.5 on the repeated mix", ratio, hits, misses)
	}
	if len(firstBody) != distinctPoints {
		t.Fatalf("saw %d distinct points, want %d", len(firstBody), distinctPoints)
	}

	// Shutdown: close the server (waits for handlers), drain detached
	// runs, then verify the goroutine count returns to baseline.
	ts.Close()
	if err := svc.Drain(testCtx(t, 10*time.Second)); err != nil {
		t.Fatalf("drain: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSweepInvalidPointDoesNotPoisonFlights is the regression test for
// a singleflight leak: a sweep that failed validation partway used to
// leave flights it had already led registered but never spawned, so
// every later request for those configs joined a dead flight and hung
// until the request timeout. The whole batch must be validated before
// any flight is led.
func TestSweepInvalidPointDoesNotPoisonFlights(t *testing.T) {
	svc := New(Options{})
	_, _, _, err := svc.Sweep(context.Background(), SweepRequest{Points: []SimulateRequest{
		fastPoint(3), // valid: would have led a flight under the old code
		{K: 1},       // invalid: fails validation after the point above
	}})
	var reqErr *requestError
	if !errors.As(err, &reqErr) {
		t.Fatalf("sweep error = %v, want a bad-request error", err)
	}
	// The valid point must still be freshly servable, not stuck behind
	// a flight nobody runs.
	ctx := testCtx(t, 5*time.Second)
	if _, status, err := svc.Simulate(ctx, fastPoint(3)); err != nil || status != CacheMiss {
		t.Fatalf("simulate after failed sweep: status %q, err %v; want a fresh miss", status, err)
	}
	if err := svc.Drain(testCtx(t, 5*time.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestDrainWaitsForDetachedRuns(t *testing.T) {
	svc := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the requester abandons immediately…
	_, _, err := svc.Simulate(ctx, fastPoint(31))
	if err == nil {
		t.Fatal("cancelled request did not error")
	}
	// …but the detached run completes and lands in the cache.
	if err := svc.Drain(testCtx(t, 5*time.Second)); err != nil {
		t.Fatal(err)
	}
	_, status, err := svc.Simulate(context.Background(), fastPoint(31))
	if err != nil {
		t.Fatal(err)
	}
	if status != CacheHit {
		t.Fatalf("status %q after drain, want hit: the abandoned run should have been cached", status)
	}
}
