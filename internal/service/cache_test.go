package service

import (
	"fmt"
	"testing"
)

func TestLRUBoundAndEviction(t *testing.T) {
	c := newLRU(3)
	for i := 0; i < 5; i++ {
		c.add(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3", c.len())
	}
	for _, gone := range []string{"k0", "k1"} {
		if _, ok := c.get(gone); ok {
			t.Errorf("%s survived eviction", gone)
		}
	}
	for _, kept := range []string{"k2", "k3", "k4"} {
		if _, ok := c.get(kept); !ok {
			t.Errorf("%s was evicted early", kept)
		}
	}
}

func TestLRUGetPromotes(t *testing.T) {
	c := newLRU(2)
	c.add("a", []byte("A"))
	c.add("b", []byte("B"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.add("c", []byte("C")) // should evict b, the least recently used
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived though it was least recently used")
	}
	if v, ok := c.get("a"); !ok || string(v) != "A" {
		t.Fatalf("a = %q, %v", v, ok)
	}
}

func TestLRURefreshExistingKey(t *testing.T) {
	c := newLRU(2)
	c.add("a", []byte("old"))
	c.add("a", []byte("new"))
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	if v, _ := c.get("a"); string(v) != "new" {
		t.Fatalf("a = %q, want new", v)
	}
}
