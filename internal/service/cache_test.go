package service

import (
	"fmt"
	"testing"
)

func TestLRUBoundAndEviction(t *testing.T) {
	c := newLRU(3, 0)
	for i := 0; i < 5; i++ {
		c.add(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3", c.len())
	}
	for _, gone := range []string{"k0", "k1"} {
		if _, ok := c.get(gone); ok {
			t.Errorf("%s survived eviction", gone)
		}
	}
	for _, kept := range []string{"k2", "k3", "k4"} {
		if _, ok := c.get(kept); !ok {
			t.Errorf("%s was evicted early", kept)
		}
	}
}

func TestLRUGetPromotes(t *testing.T) {
	c := newLRU(2, 0)
	c.add("a", []byte("A"))
	c.add("b", []byte("B"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.add("c", []byte("C")) // should evict b, the least recently used
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived though it was least recently used")
	}
	if v, ok := c.get("a"); !ok || string(v) != "A" {
		t.Fatalf("a = %q, %v", v, ok)
	}
}

func TestLRURefreshExistingKey(t *testing.T) {
	c := newLRU(2, 0)
	c.add("a", []byte("old"))
	c.add("a", []byte("new"))
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	if v, _ := c.get("a"); string(v) != "new" {
		t.Fatalf("a = %q, want new", v)
	}
}

func TestLRUByteBound(t *testing.T) {
	c := newLRU(100, 10)
	c.add("a", []byte("aaaa")) // 4 bytes
	c.add("b", []byte("bbbb")) // 8 total
	c.add("c", []byte("cccc")) // 12 total: evicts a, the LRU entry
	if _, ok := c.get("a"); ok {
		t.Fatal("a survived the byte bound")
	}
	for _, kept := range []string{"b", "c"} {
		if _, ok := c.get(kept); !ok {
			t.Errorf("%s was evicted though the remaining set fits", kept)
		}
	}
	if entries, bytes := c.size(); entries != 2 || bytes != 8 {
		t.Fatalf("size = (%d entries, %d bytes), want (2, 8)", entries, bytes)
	}
	// Refreshing a key accounts the delta, not a second copy.
	c.add("b", []byte("bb"))
	if _, bytes := c.size(); bytes != 6 {
		t.Fatalf("bytes after refresh = %d, want 6", bytes)
	}
	// A value larger than the whole budget never displaces the rest: it
	// is evicted immediately and the previous entries survive.
	c.add("huge", make([]byte, 64))
	if _, ok := c.get("huge"); ok {
		t.Fatal("over-budget value was cached")
	}
	if entries, bytes := c.size(); entries != 2 || bytes != 6 {
		t.Fatalf("size after oversized add = (%d, %d), want (2, 6)", entries, bytes)
	}
}
