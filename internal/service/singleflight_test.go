package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestLeaderPanicFailsJoinersPromptly is the regression test for the
// singleflight panic gap: the engine run executes in a detached
// goroutine, so the HTTP panic-recovery middleware (which only shields
// handler goroutines) can never reach the joiners parked on the
// flight. Before execute grew its own recover, a panicking leader run
// either killed the daemon or left every joiner hanging until the
// request timeout on a poisoned key. Now the whole batch must fail
// promptly — well inside the request timeout — and the key must be
// immediately leadable again.
func TestLeaderPanicFailsJoinersPromptly(t *testing.T) {
	svc := New(Options{RequestTimeout: 30 * time.Second})
	svc.runGrid = func(ctx context.Context, cfgs []core.Config, trials, workers int) ([]core.Aggregate, error) {
		panic("injected engine panic")
	}

	const clients = 8
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = svc.Simulate(context.Background(), fastPoint(11))
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	for i, err := range errs {
		if err == nil {
			t.Fatalf("client %d: no error from a panicked run", i)
		}
		if !strings.Contains(err.Error(), "panic") {
			t.Fatalf("client %d: err = %v, want the panic surfaced", i, err)
		}
		// The panic error must map to a 500, not be mistaken for a
		// client mistake or a timeout.
		var reqErr *requestError
		if errors.As(err, &reqErr) || errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("client %d: panic error %v maps to %T, want a plain 500", i, err, err)
		}
	}
	// "Promptly" = the failure propagated, nobody sat out the 30s
	// request timeout.
	if elapsed > 10*time.Second {
		t.Fatalf("joiners took %v to fail, want prompt failure", elapsed)
	}
	if p := svc.met.panicsSnapshot(); p == 0 {
		t.Fatal("simd_panics_total not incremented by the engine panic")
	}

	// The key must not be poisoned: with a healthy engine the same
	// point runs fresh and succeeds.
	svc.runGrid = core.RunGridContext
	ctx := testCtx(t, 10*time.Second)
	if _, status, err := svc.Simulate(ctx, fastPoint(11)); err != nil || status != CacheMiss {
		t.Fatalf("simulate after panic: status %q, err %v; want a fresh successful miss", status, err)
	}
	if err := svc.Drain(testCtx(t, 5*time.Second)); err != nil {
		t.Fatal(err)
	}
}

// TestFinishIdempotent pins the property the panic path relies on:
// finishing a call twice keeps the first result and does not re-close
// the done channel.
func TestFinishIdempotent(t *testing.T) {
	var g flightGroup
	c, leader := g.lead("k")
	if !leader {
		t.Fatal("first lead was not leader")
	}
	g.finish("k", c, []byte("first"), nil)
	g.finish("k", c, nil, errors.New("late failure")) // must be a no-op
	<-c.done
	if string(c.val) != "first" || c.err != nil {
		t.Fatalf("call = (%q, %v), want the first finish to stand", c.val, c.err)
	}
}
