package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// optimizePoint is a small search over the fastPoint template: 2
// strategies × 2 prefetch depths at the natural cache size for each
// candidate, each a few-millisecond simulation.
func optimizePoint() OptimizeRequest {
	return OptimizeRequest{
		Template: &SimulateRequest{K: 4, D: 2, BlocksPerRun: 40},
		Space: OptimizeSpaceRequest{
			N:           &DimensionRequest{Values: []int{1, 2}},
			Strategies:  []string{"intra-unsync", "inter-unsync"},
			CacheBlocks: &DimensionRequest{Values: []int{0}},
		},
	}
}

// optResponse mirrors the optimize wire response for assertions.
type optResponse struct {
	Algorithm   string            `json:"algorithm"`
	Goal        string            `json:"goal"`
	Seed        uint64            `json:"seed"`
	Best        json.RawMessage   `json:"best"`
	Knee        json.RawMessage   `json:"knee"`
	Trace       []json.RawMessage `json:"trace"`
	Evaluations int               `json:"evaluations"`
	CacheServed int               `json:"cache_served"`
	Distinct    int               `json:"distinct_points"`
	Truncated   bool              `json:"truncated"`
	FigureSVG   string            `json:"figure_svg"`
}

func decodeOptResponse(t *testing.T, body []byte) optResponse {
	t.Helper()
	var r optResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("unmarshal optimize response: %v\n%s", err, body)
	}
	return r
}

// withoutCached strips the cached observability flag from a trace or
// best entry so warm and cold runs compare equal, per the determinism
// contract (only Cached may differ between runs of one spec).
func withoutCached(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	if len(raw) == 0 {
		return ""
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal entry: %v", err)
	}
	delete(m, "cached")
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestOptimizeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := postJSON(t, ts.URL+"/v1/optimize", optimizePoint())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "0/4" {
		t.Errorf("X-Cache = %q, want 0/4 (cold grid, no revisits)", got)
	}
	r := decodeOptResponse(t, body)
	if r.Algorithm != "grid" || r.Goal != "min_time" || r.Seed != 1 {
		t.Errorf("echoed search = %s/%s seed %d", r.Algorithm, r.Goal, r.Seed)
	}
	if r.Evaluations != 4 || r.Distinct != 4 || len(r.Trace) != 4 || r.Truncated {
		t.Errorf("evals %d distinct %d trace %d truncated %v", r.Evaluations, r.Distinct, len(r.Trace), r.Truncated)
	}
	if len(r.Best) == 0 || len(r.Knee) == 0 {
		t.Fatalf("best or knee missing: %s", body)
	}
	var best struct {
		Status string  `json:"status"`
		Secs   float64 `json:"seconds"`
		Params struct {
			N int `json:"n"`
		} `json:"params"`
	}
	if err := json.Unmarshal(r.Best, &best); err != nil {
		t.Fatal(err)
	}
	if best.Status != "ok" || best.Secs <= 0 {
		t.Errorf("best = %s", r.Best)
	}
	// Prefetching beats no-prefetch on this workload, so the optimum
	// is never the N=1 intra-run baseline.
	if best.Params.N == 1 {
		var baseline struct {
			InterRun bool `json:"inter_run"`
		}
		if err := json.Unmarshal(r.Best, &baseline); err == nil && !baseline.InterRun {
			t.Errorf("optimum is the no-prefetch baseline: %s", r.Best)
		}
	}
}

func TestOptimizeMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	postJSON(t, ts.URL+"/v1/optimize", optimizePoint())
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE simd_optimize_requests_total counter",
		"simd_optimize_requests_total 1",
		"# TYPE simd_optimize_evaluations_total counter",
		"simd_optimize_evaluations_total 4",
		"# TYPE simd_optimize_cache_served_total counter",
		"simd_optimize_cache_served_total 0",
		"# TYPE simd_optimize_search_seconds histogram",
		`simd_optimize_search_seconds_bucket{le="+Inf"} 1`,
		"simd_optimize_search_seconds_count 1",
		`simd_requests_total{endpoint="optimize",code="200"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestOptimizeWarmRepeatServedFromCache pins the cache-reuse
// acceptance bar: repeating a search on a warm service answers at
// least 90% of evaluations (here: all of them) from the result cache,
// visibly in the trace, the X-Cache header, and the
// simd_optimize_cache_served_total counter.
func TestOptimizeWarmRepeatServedFromCache(t *testing.T) {
	svc, ts := newTestServer(t, Options{})
	_, cold := postJSON(t, ts.URL+"/v1/optimize", optimizePoint())
	resp, warm := postJSON(t, ts.URL+"/v1/optimize", optimizePoint())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d: %s", resp.StatusCode, warm)
	}
	if got := resp.Header.Get("X-Cache"); got != "4/4" {
		t.Errorf("warm X-Cache = %q, want 4/4", got)
	}
	w := decodeOptResponse(t, warm)
	if w.CacheServed < (w.Evaluations*9+9)/10 {
		t.Errorf("warm repeat served %d of %d evaluations from cache, want >= 90%%", w.CacheServed, w.Evaluations)
	}
	for i, e := range w.Trace {
		var entry struct {
			Cached bool `json:"cached"`
		}
		if err := json.Unmarshal(e, &entry); err != nil || !entry.Cached {
			t.Errorf("warm trace[%d] not cache-served: %s", i, e)
		}
	}
	c := decodeOptResponse(t, cold)
	if withoutCached(t, c.Best) != withoutCached(t, w.Best) {
		t.Errorf("warm best differs from cold best:\n%s\n%s", c.Best, w.Best)
	}
	if _, _, served := svc.met.optimizeSnapshot(); served == 0 {
		t.Error("simd_optimize_cache_served_total still zero after a warm repeat")
	}
}

// TestOptimizeWorkerCountIndependence pins the tentpole determinism
// claim end to end: two cold services whose engines fan evaluations
// over different worker counts produce byte-identical response bodies
// for the same seeded search.
func TestOptimizeWorkerCountIndependence(t *testing.T) {
	req := optimizePoint()
	req.Space.D = &DimensionRequest{Min: 1, Max: 2}
	req.Search = &SearchRequest{Algorithm: "anneal", Seed: 5, MaxEvaluations: 16}
	req.Trials = &TrialPolicyRequest{Min: 2}

	run := func(workers int) []byte {
		t.Helper()
		_, ts := newTestServer(t, Options{Workers: workers})
		resp, body := postJSON(t, ts.URL+"/v1/optimize", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers=%d status %d: %s", workers, resp.StatusCode, body)
		}
		return body
	}
	one, eight := run(1), run(8)
	if !bytes.Equal(one, eight) {
		t.Fatalf("worker count changed the response:\n%s\n%s", one, eight)
	}
}

// TestOptimizeConcurrentSearchesShareEvaluations hammers one service
// with 32 concurrent searches over overlapping spaces. Candidates the
// spaces share flow through the same result cache and singleflight
// table as plain simulate traffic, so the searches must agree
// byte-for-byte on their optima (modulo the cached flag) and a healthy
// share of evaluations must be cache-served.
func TestOptimizeConcurrentSearchesShareEvaluations(t *testing.T) {
	svc, ts := newTestServer(t, Options{})
	spaces := []OptimizeSpaceRequest{
		{N: &DimensionRequest{Values: []int{1, 2}}, Strategies: []string{"intra-unsync", "inter-unsync"}},
		{N: &DimensionRequest{Values: []int{2, 4}}, Strategies: []string{"intra-unsync", "inter-unsync"}},
	}
	const clients = 32
	bodies := make([][]byte, clients)
	codes := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := optimizePoint()
			req.Space = spaces[i%2]
			resp, body := postJSON(t, ts.URL+"/v1/optimize", req)
			codes[i], bodies[i] = resp.StatusCode, body
		}(i)
	}
	wg.Wait()

	best := map[int]string{}
	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d: %s", i, codes[i], bodies[i])
		}
		r := decodeOptResponse(t, bodies[i])
		got := withoutCached(t, r.Best)
		if prev, ok := best[i%2]; !ok {
			best[i%2] = got
		} else if prev != got {
			t.Fatalf("client %d optimum diverged:\n%s\n%s", i, prev, got)
		}
	}
	if best[0] == best[1] {
		t.Fatalf("distinct spaces found identical optima: %s", best[0])
	}
	if _, evals, served := svc.met.optimizeSnapshot(); served == 0 || evals == 0 {
		t.Fatalf("no shared evaluations across %d overlapping searches (evals %d, served %d)", clients, evals, served)
	}
}

func TestOptimizeFigure(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := optimizePoint()
	req.Figure = true
	resp, body := postJSON(t, ts.URL+"/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	r := decodeOptResponse(t, body)
	if !strings.Contains(r.FigureSVG, "<svg") {
		t.Errorf("figure_svg missing or not SVG: %.80s", r.FigureSVG)
	}
}

func TestOptimizeRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxOptimizeEvals: 32, MaxTrials: 8})
	cases := []struct {
		name string
		mut  func(*OptimizeRequest)
		want string
	}{
		{"template trials", func(r *OptimizeRequest) { r.Template.Trials = 3 }, "template.trials"},
		{"template trace", func(r *OptimizeRequest) { r.Template.Trace = true }, "template.trace"},
		{"empty space", func(r *OptimizeRequest) { r.Space = OptimizeSpaceRequest{} }, "search space is empty"},
		{"unknown strategy", func(r *OptimizeRequest) { r.Space.Strategies = []string{"psychic"} }, "unknown strategy"},
		{"unknown placement", func(r *OptimizeRequest) { r.Space.Placements = []string{"shuffled"} }, "unknown placement"},
		{"values and range", func(r *OptimizeRequest) {
			r.Space.N = &DimensionRequest{Values: []int{1, 2}, Min: 1, Max: 4}
		}, "not both"},
		{"inverted range", func(r *OptimizeRequest) { r.Space.D = &DimensionRequest{Min: 4, Max: 2} }, "range"},
		{"k below 2", func(r *OptimizeRequest) { r.Space.K = &DimensionRequest{Values: []int{1, 4}} }, "at least 2 runs"},
		{"budget over cap", func(r *OptimizeRequest) { r.Search = &SearchRequest{MaxEvaluations: 64} }, "exceeds the limit"},
		{"trials over cap", func(r *OptimizeRequest) { r.Trials = &TrialPolicyRequest{Min: 2, Max: 16} }, "exceeds the limit"},
		{"negative cost", func(r *OptimizeRequest) { r.Objective = &ObjectiveRequest{DiskCost: -1} }, "negative cost"},
		{"unknown goal", func(r *OptimizeRequest) { r.Objective = &ObjectiveRequest{Goal: "max_vibes"} }, "unknown goal"},
		{"unknown algorithm", func(r *OptimizeRequest) { r.Search = &SearchRequest{Algorithm: "lbfgs"} }, "unknown algorithm"},
		{"invalid template", func(r *OptimizeRequest) { r.Template.D = 9 }, "not in"},
	}
	for _, tc := range cases {
		req := optimizePoint()
		tc.mut(&req)
		resp, body := postJSON(t, ts.URL+"/v1/optimize", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
			continue
		}
		if !strings.Contains(string(body), tc.want) {
			t.Errorf("%s: body %s, want substring %q", tc.name, body, tc.want)
		}
	}
}

// TestOptimizeSharesCacheWithSimulate proves the two endpoints draw
// from one pool: a point simulated via /v1/simulate is a cache hit for
// a later search that visits it.
func TestOptimizeSharesCacheWithSimulate(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	sim := SimulateRequest{K: 4, D: 2, N: 2, BlocksPerRun: 40}
	resp, body := postJSON(t, ts.URL+"/v1/simulate", sim)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp.StatusCode, body)
	}
	req := OptimizeRequest{
		Template: &SimulateRequest{K: 4, D: 2, BlocksPerRun: 40},
		Space: OptimizeSpaceRequest{
			N:           &DimensionRequest{Values: []int{1, 2}},
			CacheBlocks: &DimensionRequest{Values: []int{0}},
		},
	}
	resp, body = postJSON(t, ts.URL+"/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize: %d %s", resp.StatusCode, body)
	}
	if r := decodeOptResponse(t, body); r.CacheServed != 1 {
		t.Errorf("cache_served = %d, want exactly the pre-simulated point", r.CacheServed)
	}
}
