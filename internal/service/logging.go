package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"
)

// requestIDKey keys the request ID in a request context.
type requestIDKey struct{}

// RequestIDHeader is the header carrying the request ID: echoed from
// the client when present (so IDs propagate through proxies), assigned
// by the daemon otherwise, and always set on the response so client and
// server logs can be correlated.
const RequestIDHeader = "X-Request-ID"

// RequestIDFromContext returns the request ID propagated by the HTTP
// layer, or "" outside a request.
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// idSource mints process-unique request IDs: a random boot nonce (so
// IDs from different daemon instances never collide in aggregated logs)
// plus an atomic counter (so minting is lock-free and ordered).
type idSource struct {
	nonce string
	seq   atomic.Uint64
}

func newIDSource() *idSource {
	var b [6]byte
	// crypto/rand never fails on the supported platforms; an all-zero
	// nonce would still yield valid (just less distinctive) IDs.
	_, _ = rand.Read(b[:])
	return &idSource{nonce: hex.EncodeToString(b[:])}
}

func (s *idSource) next() string {
	return fmt.Sprintf("%s-%06d", s.nonce, s.seq.Add(1))
}

// countingWriter observes the status code and body bytes a handler
// writes, for the size histogram and the request log.
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (c *countingWriter) WriteHeader(code int) {
	if c.status == 0 {
		c.status = code
	}
	c.ResponseWriter.WriteHeader(code)
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.status == 0 {
		c.status = http.StatusOK
	}
	n, err := c.ResponseWriter.Write(p)
	c.bytes += int64(n)
	return n, err
}

// withRequestID assigns (or propagates) the request ID, exposes it on
// the response and through the request context, and — when a Logger is
// configured — emits one structured log line per request.
func (s *Service) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = s.ids.next()
		}
		w.Header().Set(RequestIDHeader, id)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))
		if s.opts.Logger == nil {
			next.ServeHTTP(w, r)
			return
		}
		start := time.Now() //detlint:allow nondet request logging measures real wall time, never simulation state
		cw := &countingWriter{ResponseWriter: w}
		next.ServeHTTP(cw, r)
		status := cw.status
		if status == 0 {
			status = http.StatusOK
		}
		//detlint:allow nondet request logging measures real wall time, never simulation state
		elapsed := time.Since(start)
		s.opts.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Int64("bytes", cw.bytes),
			slog.Float64("duration_ms", float64(elapsed.Microseconds())/1000),
			slog.String("cache", cw.Header().Get("X-Cache")),
		)
	})
}
