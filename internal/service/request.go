package service

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/sim"
)

// SimulateRequest is the wire form of one simulation point. Zero-value
// fields take the paper's defaults (k=25, D=5, N=1, 1000 blocks/run,
// natural cache, seed 1), so `{}` is a valid request for the paper's
// baseline. Enum fields are named strings — the same names the
// mergesim flags accept — and unknown names are rejected with a 400.
type SimulateRequest struct {
	K            int   `json:"k,omitempty"`
	D            int   `json:"d,omitempty"`
	N            int   `json:"n,omitempty"`
	BlocksPerRun int   `json:"blocks_per_run,omitempty"`
	RunLengths   []int `json:"run_lengths,omitempty"`

	InterRun     bool `json:"inter_run,omitempty"`
	Synchronized bool `json:"synchronized,omitempty"`
	AdaptiveN    bool `json:"adaptive_n,omitempty"`

	// CacheBlocks: 0 = the natural size (core.Config.DefaultCache),
	// -1 = unlimited, otherwise the capacity in blocks.
	CacheBlocks int `json:"cache_blocks,omitempty"`

	MergeMs float64 `json:"merge_ms,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`   // 0 = 1
	Trials  int     `json:"trials,omitempty"` // 0 = 1; capped by Options.MaxTrials

	Admission string `json:"admission,omitempty"`  // all-or-demand | greedy
	Schedule  string `json:"schedule,omitempty"`   // fcfs | sstf | scan
	Placement string `json:"placement,omitempty"`  // round-robin | clustered | striped
	RunPolicy string `json:"run_policy,omitempty"` // random | least-buffered | round-robin | oracle
	Disk      string `json:"disk,omitempty"`       // paper | modern

	Write *WriteRequest `json:"write,omitempty"`

	// Faults injects per-disk failure modes (see faults.Spec). Entries
	// must be in ascending disk order, one per disk; invalid specs are a
	// 400 with the validation text.
	Faults []FaultRequest `json:"faults,omitempty"`

	// Trace embeds a Chrome trace-event timeline of the run in the
	// response. Traced requests bypass the result cache and singleflight
	// (a cached or joined result has no trace to give), run their engine
	// under the same admission gate, and require trials = 1. The plain
	// result is still cached for later untraced requests.
	Trace bool `json:"trace,omitempty"`
}

// FaultRequest is the wire form of one disk's fault spec.
type FaultRequest struct {
	Disk          int             `json:"disk"`
	Slowdown      float64         `json:"slowdown,omitempty"`
	SlowdownAtMs  float64         `json:"slowdown_at_ms,omitempty"`
	ReadErrorProb float64         `json:"read_error_prob,omitempty"`
	MaxRetries    int             `json:"max_retries,omitempty"`
	Outages       []faults.Window `json:"outages,omitempty"`
}

// WriteRequest enables output-traffic modelling for a point.
type WriteRequest struct {
	Shared       bool `json:"shared,omitempty"`
	Disks        int  `json:"disks,omitempty"`
	BatchBlocks  int  `json:"batch_blocks,omitempty"`
	BufferBlocks int  `json:"buffer_blocks,omitempty"`
}

// SweepRequest fans a batch of points out through the shared engine
// pool in one admitted run. Trials applies to every point (0 = 1);
// per-point trials are rejected so a sweep has one unambiguous shape.
type SweepRequest struct {
	Points []SimulateRequest `json:"points"`
	Trials int               `json:"trials,omitempty"`
}

// requestError marks client mistakes (HTTP 400) as opposed to server
// failures.
type requestError struct{ msg string }

func (e *requestError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &requestError{msg: fmt.Sprintf(format, args...)}
}

// config materializes the request into a validated core.Config. The
// boundary is stricter than core.Config.Validate in one place: k < 2
// is rejected here, because a single-run "merge" is only meaningful
// when replaying a real sort's final pass, never as a service request
// (core keeps accepting K = 1 for that replay path).
func (r SimulateRequest) config() (core.Config, error) {
	cfg := core.Default()
	if r.K != 0 {
		if r.K < 2 {
			return core.Config{}, badRequestf("k = %d (a merge needs at least 2 runs)", r.K)
		}
		cfg.K = r.K
	}
	if r.D != 0 {
		cfg.D = r.D
	}
	if r.N != 0 {
		cfg.N = r.N
	}
	if r.BlocksPerRun != 0 {
		cfg.BlocksPerRun = r.BlocksPerRun
	}
	cfg.RunLengths = r.RunLengths
	cfg.InterRun = r.InterRun
	cfg.Synchronized = r.Synchronized
	cfg.AdaptiveN = r.AdaptiveN
	cfg.MergeTimePerBlock = sim.Ms(r.MergeMs)
	if r.Seed != 0 {
		cfg.Seed = r.Seed
	}

	switch r.Disk {
	case "", "paper":
		cfg.Disk = disk.PaperParams()
	case "modern":
		cfg.Disk = disk.ModernParams()
	default:
		return core.Config{}, badRequestf("unknown disk %q (want paper or modern)", r.Disk)
	}
	switch r.Schedule {
	case "", "fcfs":
		cfg.Disk.Discipline = disk.FCFS
	case "sstf":
		cfg.Disk.Discipline = disk.SSTF
	case "scan":
		cfg.Disk.Discipline = disk.SCAN
	default:
		return core.Config{}, badRequestf("unknown schedule %q (want fcfs, sstf or scan)", r.Schedule)
	}
	placement, err := layout.ParsePlacement(r.Placement)
	if err != nil {
		return core.Config{}, badRequestf("%v", err)
	}
	cfg.Placement = placement
	switch r.Admission {
	case "", "all-or-demand":
		cfg.Admission = cache.AllOrDemand
	case "greedy":
		cfg.Admission = cache.Greedy
	default:
		return core.Config{}, badRequestf("unknown admission %q (want all-or-demand or greedy)", r.Admission)
	}
	switch r.RunPolicy {
	case "", "random":
		cfg.RunPolicy = core.RandomRun
	case "least-buffered":
		cfg.RunPolicy = core.LeastBufferedRun
	case "round-robin":
		cfg.RunPolicy = core.RoundRobinRun
	case "oracle":
		cfg.RunPolicy = core.OracleRun
	default:
		return core.Config{}, badRequestf("unknown run_policy %q (want random, least-buffered, round-robin or oracle)", r.RunPolicy)
	}

	switch r.CacheBlocks {
	case 0:
		cfg.CacheBlocks = cfg.DefaultCache()
	case -1:
		cfg.CacheBlocks = cache.Unlimited
	default:
		if r.CacheBlocks < -1 {
			return core.Config{}, badRequestf("cache_blocks = %d (want -1, 0 or a positive size)", r.CacheBlocks)
		}
		cfg.CacheBlocks = r.CacheBlocks
	}

	if w := r.Write; w != nil {
		cfg.Write = core.WriteConfig{
			Enabled:      true,
			Shared:       w.Shared,
			Disks:        w.Disks,
			BatchBlocks:  w.BatchBlocks,
			BufferBlocks: w.BufferBlocks,
		}
	}

	if len(r.Faults) > 0 {
		spec := &faults.Spec{Disks: make([]faults.DiskSpec, len(r.Faults))}
		for i, f := range r.Faults {
			spec.Disks[i] = faults.DiskSpec{
				Disk:          f.Disk,
				Slowdown:      f.Slowdown,
				SlowdownAtMs:  f.SlowdownAtMs,
				ReadErrorProb: f.ReadErrorProb,
				MaxRetries:    f.MaxRetries,
				Outages:       f.Outages,
			}
		}
		cfg.Faults = spec
	}

	if err := cfg.Validate(); err != nil {
		return core.Config{}, &requestError{msg: err.Error()}
	}
	return cfg, nil
}
