// Package service is the simulation-as-a-service layer: a long-lived
// front-end over core.RunGrid with the serving internals a daemon
// needs to survive heavy repeated traffic.
//
// Serving path, in order:
//
//  1. Result cache — a simulation result is a pure function of
//     (core.Config, trials), so each point is keyed by the canonical
//     config hash (core.Config.Hash) plus the trial count and cached
//     in a size-bounded LRU. Repeat traffic is an O(1) lookup and the
//     cached bytes are the exact bytes the cold request produced.
//  2. Singleflight — concurrent requests for the same key share one
//     engine run; waiters block on the shared call instead of
//     duplicating work. Execution is detached from any single
//     requester's context so one impatient client cannot abort a run
//     other clients are waiting on.
//  3. Admission control — at most MaxConcurrent engine runs execute at
//     once, at most MaxQueue flights wait for a slot, and everything
//     beyond that is shed with ErrOverloaded (HTTP 429) instead of
//     letting goroutines pile up until the process collapses. Queued
//     flights that outlive the request timeout fail with
//     context.DeadlineExceeded (HTTP 503).
//
// Shutdown: stop accepting requests (http.Server.Shutdown drains
// handlers), then Drain waits for detached engine runs so the process
// exits with no simulation in flight.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/diskcache"
	"repro/internal/trace"
)

// Options configures a Service. Zero values take the documented
// defaults.
type Options struct {
	// CacheEntries bounds the result cache's entry count (default
	// 1024). Entries are whole marshaled response bodies, which range
	// from ~1 KiB (one trial) to hundreds of KiB (MaxTrials trials
	// with per-disk arrays), so the entry bound alone leaves worst-case
	// memory at CacheEntries × the largest body — use CacheBytes to cap
	// the total.
	CacheEntries int
	// CacheBytes bounds the total bytes of cached response bodies
	// (default 256 MiB; negative disables the byte bound). Whichever of
	// CacheEntries/CacheBytes bites first drives LRU eviction.
	CacheBytes int64
	// MaxConcurrent caps simultaneously executing engine runs
	// (default GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue caps flights waiting for a run slot before new work is
	// shed with ErrOverloaded (default 4 × MaxConcurrent).
	MaxQueue int
	// RequestTimeout bounds one request end to end: queue wait plus
	// engine run (default 60s).
	RequestTimeout time.Duration
	// MaxTrials bounds per-request replications (default 64).
	MaxTrials int
	// MaxPoints bounds sweep batch size (default 512).
	MaxPoints int
	// MaxOptimizeEvals bounds one configuration search's evaluation
	// budget (default 512). Requests asking for more are a 400; requests
	// asking for less get exactly what they asked for.
	MaxOptimizeEvals int
	// Workers caps the engine pool one admitted run fans out over
	// (default GOMAXPROCS).
	Workers int
	// MaxTraceEvents caps the events recorded for one traced simulate
	// request (default 200_000, ~a few MiB of response); past the cap
	// the trace truncates rather than the response growing unbounded.
	MaxTraceEvents int
	// Logger, when non-nil, receives one structured line per HTTP
	// request (see withRequestID). nil disables request logging;
	// request IDs are assigned either way.
	Logger *slog.Logger
	// DiskCache, when non-nil, is the persistent second tier behind the
	// in-memory LRU (see internal/diskcache). The caller owns opening
	// it — Open can fail, and whether a bad cache directory is fatal is
	// the daemon's call, not this package's. The Service takes over
	// writes, reads, and the index flush on Close. nil means
	// memory-only, exactly the pre-disk-tier behavior.
	DiskCache *diskcache.Cache
}

func (o Options) withDefaults() Options {
	if o.CacheEntries <= 0 {
		o.CacheEntries = 1024
	}
	switch {
	case o.CacheBytes == 0:
		o.CacheBytes = 256 << 20
	case o.CacheBytes < 0:
		o.CacheBytes = 0 // unbounded
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 4 * o.MaxConcurrent
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.MaxTrials <= 0 {
		o.MaxTrials = 64
	}
	if o.MaxPoints <= 0 {
		o.MaxPoints = 512
	}
	if o.MaxOptimizeEvals <= 0 {
		o.MaxOptimizeEvals = 512
	}
	if o.MaxTraceEvents <= 0 {
		o.MaxTraceEvents = 200_000
	}
	return o
}

// Service serves simulation requests. Create with New; safe for
// concurrent use.
type Service struct {
	opts    Options
	cache   *lru
	disk    *diskcache.Cache // nil = memory-only
	flights flightGroup
	gate    *gate
	met     *metrics
	ids     *idSource

	// runGrid is the engine entry point, a field so tests can substitute
	// failing or panicking engines without reaching into core.
	runGrid func(ctx context.Context, cfgs []core.Config, trials, workers int) ([]core.Aggregate, error)

	wg       sync.WaitGroup // detached engine executions
	draining atomic.Bool
}

// New returns a ready Service.
func New(opts Options) *Service {
	o := opts.withDefaults()
	return &Service{
		opts:    o,
		cache:   newLRU(o.CacheEntries, o.CacheBytes),
		disk:    o.DiskCache,
		gate:    newGate(o.MaxConcurrent, o.MaxQueue),
		met:     newMetrics(),
		ids:     newIDSource(),
		runGrid: core.RunGridContext,
	}
}

// CacheStatus reports how a simulate response was produced.
type CacheStatus string

const (
	// CacheHit: served from the in-memory result cache, no engine run.
	CacheHit CacheStatus = "hit"
	// CacheHitDisk: served from the persistent disk tier (CRC-verified
	// on the way out), no engine run.
	CacheHitDisk CacheStatus = "hit-disk"
	// CacheMiss: this request led a fresh engine run.
	CacheMiss CacheStatus = "miss"
	// CacheShared: joined an identical run another request started.
	CacheShared CacheStatus = "shared"
)

// resultKey keys the cache and singleflight: simulation results depend
// on the canonical config and the trial count, nothing else.
func resultKey(cfg core.Config, trials int) (string, error) {
	h, err := cfg.Hash()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s/%d", h, trials), nil
}

// cacheGet is the tiered lookup: memory, then disk. A disk hit is
// promoted into the memory tier only on its second access —
// scan-resistance, so one pass over a large keyspace (a big sweep
// replayed once) streams through the disk tier without evicting the
// memory tier's genuinely hot set. Counters: either tier's hit counts
// toward simd_cache_hits_total (the "no engine run" meaning the
// X-Cache accounting relies on); the disk tier additionally keeps its
// own hit/miss counters under simd_disk_cache_*.
func (s *Service) cacheGet(key string) ([]byte, CacheStatus, bool) {
	if b, ok := s.cache.get(key); ok {
		s.met.addCacheHits(1)
		return b, CacheHit, true
	}
	if s.disk != nil {
		if b, hits, ok := s.disk.Get(key); ok {
			if hits >= 2 {
				if !s.cache.add(key, b) {
					s.met.addRejected(1)
				}
			}
			s.met.addCacheHits(1)
			return b, CacheHitDisk, true
		}
	}
	return nil, CacheMiss, false
}

// cacheAdd stores a fresh result body in both tiers. Either tier may
// refuse (body larger than its whole budget, or the disk tier tripped
// to memory-only) — the body stays servable through the flight that
// produced it, and memory-tier rejections are counted so the resulting
// permanent misses are visible. Callers must not mutate b afterwards.
func (s *Service) cacheAdd(key string, b []byte) {
	if !s.cache.add(key, b) {
		s.met.addRejected(1)
	}
	if s.disk != nil {
		s.disk.Put(key, b)
	}
}

// diskStats snapshots the disk tier's counters (zero when memory-only).
func (s *Service) diskStats() diskcache.Stats {
	if s.disk == nil {
		return diskcache.Stats{}
	}
	return s.disk.Stats()
}

// Simulate serves one point aggregated over its trials, returning the
// marshaled core.ResultJSON body.
func (s *Service) Simulate(ctx context.Context, req SimulateRequest) ([]byte, CacheStatus, error) {
	trials, err := s.trials(req.Trials)
	if err != nil {
		return nil, "", err
	}
	cfg, err := req.config()
	if err != nil {
		return nil, "", err
	}
	key, err := resultKey(cfg, trials)
	if err != nil {
		return nil, "", err
	}
	if b, status, ok := s.cacheGet(key); ok {
		return b, status, nil
	}
	c, leader := s.flights.lead(key)
	status := CacheMiss
	if leader {
		s.met.addCacheMisses(1)
		s.spawn([]string{key}, []*call{c}, []core.Config{cfg}, trials)
	} else {
		s.met.addDedupShared(1)
		status = CacheShared
	}
	b, err := s.await(ctx, c)
	return b, status, err
}

// tracedResponse is the wire form of a traced simulate: the shared
// result schema plus the Chrome trace-event document and a truncation
// flag.
type tracedResponse struct {
	core.ResultJSON
	Trace json.RawMessage `json:"trace"`
	// TraceTruncated is always present on traced responses (no
	// omitempty): a clipped trace silently corrupts any attribution
	// built on it, so clients must be able to see "false" and trust it.
	TraceTruncated bool `json:"trace_truncated"`
}

// SimulateTraced serves one traced point. Tracing changes the serving
// path deliberately:
//
//   - The result cache is bypassed on lookup — cached entries hold the
//     plain result body, and a hit would mean no engine run and
//     therefore no trace.
//   - Singleflight is bypassed too: joining an in-flight untraced run
//     would yield a result without a trace, and two traced requests
//     cannot share one recorder. Each traced request runs its own
//     engine, admitted through the same gate as everything else.
//   - The plain result body (identical to an untraced run's — tracing
//     is observation-only) is still added to the cache under the normal
//     key, so the trace bytes never enter the cache.
//
// Trials > 1 is rejected: a trace records one replication's timeline.
func (s *Service) SimulateTraced(ctx context.Context, req SimulateRequest) ([]byte, error) {
	trials, err := s.trials(req.Trials)
	if err != nil {
		return nil, err
	}
	if trials != 1 {
		return nil, badRequestf("trace requires trials = 1 (a trace is one replication's timeline)")
	}
	cfg, err := req.config()
	if err != nil {
		return nil, err
	}
	key, err := resultKey(cfg, trials)
	if err != nil {
		return nil, err
	}
	rec := trace.New(s.opts.MaxTraceEvents)
	cfg.Trace = rec
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}
	if err := s.gate.acquire(ctx); err != nil {
		if err == ErrOverloaded {
			s.met.addShed()
		}
		return nil, err
	}
	defer s.gate.release()
	s.met.addCacheMisses(1)
	aggs, err := core.RunGridContext(ctx, []core.Config{cfg}, trials, 1)
	if err != nil {
		return nil, err
	}
	result := core.NewResultJSON(aggs[0])
	if plain, err := json.Marshal(result); err == nil {
		s.cacheAdd(key, plain)
	}
	if rec.Truncated() {
		s.met.addTraceTruncated()
	}
	result.TraceTruncated = rec.Truncated()
	var tb bytes.Buffer
	if err := rec.WriteChrome(&tb); err != nil {
		return nil, err
	}
	return json.Marshal(tracedResponse{
		ResultJSON:     result,
		Trace:          json.RawMessage(bytes.TrimRight(tb.Bytes(), "\n")),
		TraceTruncated: rec.Truncated(),
	})
}

// sweepResponse is the wire form of a sweep result: one shared-schema
// result per requested point, in request order.
type sweepResponse struct {
	Trials int               `json:"trials"`
	Points []json.RawMessage `json:"points"`
}

// Sweep serves a batch of points. Cached points are answered from the
// cache; the remainder — minus any point already in flight elsewhere —
// is fanned out through core.RunGrid as one admitted run, so a sweep
// occupies one concurrency slot regardless of size. Returns the body
// plus (hits, points) for the X-Cache accounting.
func (s *Service) Sweep(ctx context.Context, req SweepRequest) ([]byte, int, int, error) {
	if len(req.Points) == 0 {
		return nil, 0, 0, badRequestf("sweep has no points")
	}
	if len(req.Points) > s.opts.MaxPoints {
		return nil, 0, 0, badRequestf("%d points exceeds the limit of %d", len(req.Points), s.opts.MaxPoints)
	}
	trials, err := s.trials(req.Trials)
	if err != nil {
		return nil, 0, 0, err
	}

	// First pass: validate every point and compute every key before
	// touching the cache or the flight table. Leading a flight obliges
	// this request to spawn its execution — only execute retires a
	// flight key, so an error return between lead and spawn would leave
	// the key poisoned and every later request for it blocking on a
	// flight nobody runs. All request-shaped error paths therefore
	// happen here, where no flight exists yet.
	n := len(req.Points)
	cfgs := make([]core.Config, n)
	keys := make([]string, n)
	for i, p := range req.Points {
		if p.Trials != 0 {
			return nil, 0, 0, badRequestf("points[%d]: set trials at the sweep level, not per point", i)
		}
		if p.Trace {
			return nil, 0, 0, badRequestf("points[%d]: trace is not supported in sweeps; use /v1/simulate", i)
		}
		cfg, err := p.config()
		if err != nil {
			return nil, 0, 0, badRequestf("points[%d]: %v", i, err)
		}
		key, err := resultKey(cfg, trials)
		if err != nil {
			return nil, 0, 0, err
		}
		cfgs[i], keys[i] = cfg, key
	}

	// Second pass: cache lookups and flight registration. No return
	// until every led flight has been handed to spawn.
	out := make([]json.RawMessage, n)
	waits := make([]*call, n)
	var leadKeys []string
	var leadCalls []*call
	var leadCfgs []core.Config
	var hits, misses, shared int64
	for i := range req.Points {
		if b, _, ok := s.cacheGet(keys[i]); ok {
			out[i] = b
			hits++
			continue
		}
		c, leader := s.flights.lead(keys[i])
		waits[i] = c
		if leader {
			misses++
			leadKeys = append(leadKeys, keys[i])
			leadCalls = append(leadCalls, c)
			leadCfgs = append(leadCfgs, cfgs[i])
		} else {
			shared++
		}
	}
	// Hits were already counted inside cacheGet, tier by tier.
	s.met.addCacheMisses(misses)
	s.met.addDedupShared(shared)

	if len(leadCfgs) > 0 {
		s.spawn(leadKeys, leadCalls, leadCfgs, trials)
	}
	for i, c := range waits {
		if c == nil {
			continue
		}
		b, err := s.await(ctx, c)
		if err != nil {
			return nil, 0, 0, err
		}
		out[i] = b
	}
	body, err := json.Marshal(sweepResponse{Trials: trials, Points: out})
	if err != nil {
		return nil, 0, 0, err
	}
	return body, int(hits), n, nil
}

// trials resolves and bounds a requested trial count.
func (s *Service) trials(req int) (int, error) {
	switch {
	case req == 0:
		return 1, nil
	case req < 0:
		return 0, badRequestf("trials = %d", req)
	case req > s.opts.MaxTrials:
		return 0, badRequestf("trials = %d exceeds the limit of %d", req, s.opts.MaxTrials)
	}
	return req, nil
}

// spawn starts the detached execution of the flights this caller
// leads. Detached means: its lifetime is bounded by the service's
// RequestTimeout and tracked for Drain, not by any one requester's
// context.
func (s *Service) spawn(keys []string, calls []*call, cfgs []core.Config, trials int) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), s.opts.RequestTimeout)
		defer cancel()
		s.execute(ctx, keys, calls, cfgs, trials)
	}()
}

// execute admits one engine run for the batch, runs it, caches each
// point's body, and finishes every call at most once — on success,
// failure, or panic. The panic guard matters because execute runs in a
// detached goroutine: without it a panicking engine would kill the
// whole daemon, and the HTTP layer's recovery middleware (which only
// shields handler goroutines) answers the leader's request but could
// never reach the joiners parked on this flight. Recovering here fails
// the entire batch promptly (leader and joiners all see a 500) and
// retires every key, so the next request for any of them leads a
// fresh flight instead of hanging on a poisoned one.
func (s *Service) execute(ctx context.Context, keys []string, calls []*call, cfgs []core.Config, trials int) {
	fail := func(err error) {
		for i := range calls {
			s.flights.finish(keys[i], calls[i], nil, err)
		}
	}
	defer func() {
		if v := recover(); v != nil {
			s.met.addPanic()
			log.Printf("panic in detached engine run: %v\n%s", v, debug.Stack())
			// finish is idempotent, so calls that completed before the
			// panic keep their results; the rest fail now.
			fail(fmt.Errorf("internal: engine run panicked: %v", v))
		}
	}()
	if err := s.gate.acquire(ctx); err != nil {
		if err == ErrOverloaded {
			s.met.addShed()
		}
		fail(err)
		return
	}
	defer s.gate.release()
	aggs, err := s.runGrid(ctx, cfgs, trials, s.opts.Workers)
	if err != nil {
		fail(err)
		return
	}
	for i := range calls {
		b, err := json.Marshal(core.NewResultJSON(aggs[i]))
		if err == nil {
			s.cacheAdd(keys[i], b)
		}
		s.flights.finish(keys[i], calls[i], b, err)
	}
}

// await blocks until the shared call completes or the caller's context
// expires. An expired waiter abandons only its own wait — the run keeps
// going for everyone else and still lands in the cache.
func (s *Service) await(ctx context.Context, c *call) ([]byte, error) {
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}
	select {
	case <-c.done:
		return c.val, c.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// StartDraining flips the health endpoint to 503 so load balancers
// stop routing here while in-flight work completes.
func (s *Service) StartDraining() { s.draining.Store(true) }

// Draining reports whether StartDraining has been called.
func (s *Service) Draining() bool { return s.draining.Load() }

// Drain blocks until every detached engine execution has finished, or
// ctx expires. Call after http.Server.Shutdown: handlers are gone, but
// singleflight leaders may still be running for the cache's benefit.
func (s *Service) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close releases resources that survive Drain: today that is the disk
// tier's recency index, flushed so the next start restores exact LRU
// order. Call after Drain; a crash that skips Close costs the ordering
// hint, never entries (each was durable when its Put returned).
func (s *Service) Close() error {
	if s.disk == nil {
		return nil
	}
	return s.disk.Close()
}

// Stats is a point-in-time snapshot of the serving counters.
type Stats struct {
	CacheHits, CacheMisses, DedupShared int64
	CacheBytes                          int64
	CacheEntries, QueueDepth, InUse     int
	// Disk is the persistent tier's snapshot; zero when memory-only.
	Disk diskcache.Stats
}

// StatsSnapshot returns current serving counters (used by tests and
// the daemon's shutdown log).
func (s *Service) StatsSnapshot() Stats {
	hits, misses, shared := s.met.snapshot()
	entries, bytes := s.cache.size()
	return Stats{
		CacheHits:    hits,
		CacheMisses:  misses,
		DedupShared:  shared,
		CacheBytes:   bytes,
		CacheEntries: entries,
		QueueDepth:   s.gate.depth(),
		InUse:        s.gate.inUse(),
		Disk:         s.diskStats(),
	}
}
