package service

import (
	"fmt"
	"io"
	runtimemetrics "runtime/metrics"
)

// goMetricSamples are the runtime/metrics the daemon re-exports. Fixed
// set, fixed order: the scrape output must be schema-stable.
var goMetricSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/sched/pauses/total/gc:seconds",
}

// goPauseBuckets is the fixed exposition ladder for GC pause times, in
// seconds. The runtime's own histogram has hundreds of variable-width
// buckets; re-bucketing onto a stable ladder keeps the scrape small and
// the series comparable across Go versions.
var goPauseBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1,
}

// writeGoMetrics renders the daemon's Go runtime self-metrics
// (simd_go_* families) in Prometheus text format. Values are sampled at
// scrape time via runtime/metrics; the families are observability-only
// and never feed back into serving decisions.
func writeGoMetrics(w io.Writer) {
	samples := make([]runtimemetrics.Sample, len(goMetricSamples))
	for i, name := range goMetricSamples {
		samples[i].Name = name
	}
	runtimemetrics.Read(samples)

	fmt.Fprintln(w, "# HELP simd_go_goroutines Live goroutines in the daemon process.")
	fmt.Fprintln(w, "# TYPE simd_go_goroutines gauge")
	fmt.Fprintf(w, "simd_go_goroutines %d\n", uintValue(samples[0]))

	fmt.Fprintln(w, "# HELP simd_go_heap_objects_bytes Bytes of live heap objects (runtime/metrics /memory/classes/heap/objects).")
	fmt.Fprintln(w, "# TYPE simd_go_heap_objects_bytes gauge")
	fmt.Fprintf(w, "simd_go_heap_objects_bytes %d\n", uintValue(samples[1]))

	fmt.Fprintln(w, "# HELP simd_go_gc_pause_seconds Stop-the-world GC pause durations since process start, re-bucketed onto a fixed ladder.")
	fmt.Fprintln(w, "# TYPE simd_go_gc_pause_seconds histogram")
	writeRebucketed(w, "simd_go_gc_pause_seconds", samples[2])
}

// uintValue extracts a scalar sample, tolerating kind changes across Go
// versions (a missing metric renders as 0 rather than panicking a
// scrape).
func uintValue(s runtimemetrics.Sample) uint64 {
	switch s.Value.Kind() {
	case runtimemetrics.KindUint64:
		return s.Value.Uint64()
	case runtimemetrics.KindFloat64:
		return uint64(s.Value.Float64())
	default:
		return 0
	}
}

// writeRebucketed folds a runtime/metrics histogram onto the fixed
// goPauseBuckets ladder. Each runtime bucket's count lands in the first
// exposition bucket whose bound covers the runtime bucket's upper edge;
// the _sum line approximates using bucket midpoints, which is what any
// histogram consumer does anyway.
func writeRebucketed(w io.Writer, family string, s runtimemetrics.Sample) {
	cum := make([]uint64, len(goPauseBuckets))
	var inf, count uint64
	var sum float64
	if s.Value.Kind() == runtimemetrics.KindFloat64Histogram {
		h := s.Value.Float64Histogram()
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			count += c
			mid := midpoint(lo, hi)
			sum += mid * float64(c)
			placed := false
			for j, ub := range goPauseBuckets {
				if hi <= ub {
					cum[j] += c
					placed = true
					break
				}
			}
			if !placed {
				inf += c
			}
		}
	}
	var running uint64
	for j, ub := range goPauseBuckets {
		running += cum[j]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", family, ub, running)
	}
	running += inf
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", family, running)
	fmt.Fprintf(w, "%s_sum %g\n", family, sum)
	fmt.Fprintf(w, "%s_count %d\n", family, count)
}

// midpoint picks a representative value inside a runtime histogram
// bucket, clamping the infinite edge buckets.
func midpoint(lo, hi float64) float64 {
	const inf = 1e308
	if lo < -inf {
		lo = 0
	}
	if hi > inf {
		hi = lo
	}
	return (lo + hi) / 2
}
