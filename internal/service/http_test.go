package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fastPoint is a small configuration that simulates in a few
// milliseconds; vary seed (or shape) to make distinct points.
func fastPoint(seed uint64) SimulateRequest {
	return SimulateRequest{K: 4, D: 2, N: 2, BlocksPerRun: 40, Seed: seed}
}

func newTestServer(t *testing.T, opts Options) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(opts)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestSimulateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := postJSON(t, ts.URL+"/v1/simulate", fastPoint(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache = %q, want miss", got)
	}
	var rj struct {
		Strategy string `json:"strategy"`
		K        int    `json:"k"`
		Trials   int    `json:"trials"`
		Results  []struct {
			TotalSeconds float64 `json:"total_seconds"`
			MergedBlocks int64   `json:"merged_blocks"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &rj); err != nil {
		t.Fatalf("bad body %s: %v", body, err)
	}
	if rj.K != 4 || rj.Trials != 1 || len(rj.Results) != 1 {
		t.Fatalf("unexpected result shape: %+v", rj)
	}
	if rj.Results[0].MergedBlocks != 160 || rj.Results[0].TotalSeconds <= 0 {
		t.Fatalf("unexpected trial: %+v", rj.Results[0])
	}

	// Second identical request: served from cache, byte-identical.
	resp2, body2 := postJSON(t, ts.URL+"/v1/simulate", fastPoint(1))
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("X-Cache = %q on repeat, want hit", resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body, body2) {
		t.Fatalf("cached response differs from cold one:\n%s\n%s", body, body2)
	}
}

func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := SweepRequest{Points: []SimulateRequest{fastPoint(1), fastPoint(2), fastPoint(3)}, Trials: 2}
	resp, body := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sw struct {
		Trials int               `json:"trials"`
		Points []json.RawMessage `json:"points"`
	}
	if err := json.Unmarshal(body, &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Trials != 2 || len(sw.Points) != 3 {
		t.Fatalf("sweep shape: trials=%d points=%d", sw.Trials, len(sw.Points))
	}

	// A simulate for one of the sweep's points hits the shared cache.
	p := fastPoint(2)
	p.Trials = 2
	resp2, _ := postJSON(t, ts.URL+"/v1/simulate", p)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("simulate after sweep: X-Cache = %q, want hit", resp2.Header.Get("X-Cache"))
	}
	// And a repeat sweep is all hits.
	resp3, _ := postJSON(t, ts.URL+"/v1/sweep", req)
	if got := resp3.Header.Get("X-Cache"); got != "3/3" {
		t.Fatalf("repeat sweep X-Cache = %q, want 3/3", got)
	}
}

func TestBadRequestsAre400(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name string
		body string
	}{
		{"malformed JSON", `{"k": `},
		{"unknown field", `{"kay": 25}`},
		{"bad placement", `{"placement": "diagonal"}`},
		{"bad schedule", `{"schedule": "elevator"}`},
		{"invalid shape", `{"k": 1}`},
		{"negative trials", `{"trials": -1}`},
		{"trailing garbage", `{"k": 4}garbage`},
		{"concatenated objects", `{"k": 4}{"k": 8}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			out, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", resp.StatusCode, out)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(out, &e); err != nil || e.Error == "" {
				t.Fatalf("error body %s not actionable", out)
			}
		})
	}
}

func TestTrialsLimit(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxTrials: 4})
	p := fastPoint(1)
	p.Trials = 5
	resp, body := postJSON(t, ts.URL+"/v1/simulate", p)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
	}
}

func TestSweepPointLimit(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxPoints: 2})
	req := SweepRequest{Points: []SimulateRequest{fastPoint(1), fastPoint(2), fastPoint(3)}}
	resp, body := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
	}
}

func TestHealthzAndDraining(t *testing.T) {
	svc, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	svc.StartDraining()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	postJSON(t, ts.URL+"/v1/simulate", fastPoint(1))
	postJSON(t, ts.URL+"/v1/simulate", fastPoint(1))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`simd_requests_total{endpoint="simulate",code="200"} 2`,
		"simd_cache_hits_total 1",
		"simd_cache_misses_total 1",
		"simd_cache_entries 1",
		"# TYPE simd_cache_bytes gauge",
		"\nsimd_cache_bytes ",
		"# TYPE simd_build_info gauge",
		`simd_build_info{goversion="go`,
		"# TYPE simd_request_latency_seconds histogram",
		`simd_request_latency_seconds_bucket{endpoint="simulate",le="+Inf"} 2`,
		`simd_request_latency_seconds_count{endpoint="simulate"} 2`,
		"# TYPE simd_response_bytes histogram",
		`simd_response_bytes_bucket{endpoint="simulate",le="+Inf"} 2`,
		`simd_response_bytes_count{endpoint="simulate"} 2`,
		"simd_queue_depth 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

// TestMetricsExposition pins the wire details Prometheus scrapers
// depend on: the versioned text content type, a trailing newline, and
// ascending cumulative histogram buckets.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	postJSON(t, ts.URL+"/v1/simulate", fastPoint(1))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", got)
	}
	body, _ := io.ReadAll(resp.Body)
	if len(body) == 0 || body[len(body)-1] != '\n' {
		t.Errorf("exposition does not end with a newline")
	}
	// Cumulative bucket counts never decrease within one family.
	var prev int64 = -1
	inLatency := false
	for _, line := range strings.Split(string(body), "\n") {
		switch {
		case strings.HasPrefix(line, "simd_request_latency_seconds_bucket{"):
			inLatency = true
			var n int64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n); err != nil {
				t.Fatalf("unparseable bucket line %q: %v", line, err)
			}
			if n < prev {
				t.Errorf("bucket count decreased: %q after %d", line, prev)
			}
			prev = n
		case inLatency:
			inLatency = false
		}
	}
	if prev < 0 {
		t.Fatalf("no latency bucket lines in exposition:\n%s", body)
	}
}

// TestRequestIDHeader checks that the daemon assigns an ID when the
// client sends none, echoes a client-supplied one, and that two
// assigned IDs differ.
func TestRequestIDHeader(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	get := func(hdr string) string {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if hdr != "" {
			req.Header.Set(RequestIDHeader, hdr)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.Header.Get(RequestIDHeader)
	}
	a, b := get(""), get("")
	if a == "" || b == "" {
		t.Fatalf("assigned IDs empty: %q %q", a, b)
	}
	if a == b {
		t.Fatalf("two requests got the same assigned ID %q", a)
	}
	if got := get("client-supplied-7"); got != "client-supplied-7" {
		t.Fatalf("client ID not echoed: got %q", got)
	}
}

func TestTracedSimulate(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	p := fastPoint(7)
	p.Trace = true
	resp, body := postJSON(t, ts.URL+"/v1/simulate", p)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "bypass" {
		t.Fatalf("X-Cache = %q, want bypass", got)
	}
	var tr struct {
		K       int `json:"k"`
		Results []struct {
			MergedBlocks int64 `json:"merged_blocks"`
		} `json:"results"`
		Trace struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		} `json:"trace"`
		TraceTruncated bool `json:"trace_truncated"`
	}
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("bad traced body: %v", err)
	}
	if tr.K != 4 || len(tr.Results) != 1 || tr.Results[0].MergedBlocks != 160 {
		t.Fatalf("result fields wrong under trace: %+v", tr)
	}
	if len(tr.Trace.TraceEvents) == 0 {
		t.Fatalf("trace has no events")
	}
	if tr.TraceTruncated {
		t.Fatalf("small run truncated its trace")
	}

	// The traced run populated the plain cache: the same point untraced
	// is a hit with no trace in the body.
	p.Trace = false
	resp2, body2 := postJSON(t, ts.URL+"/v1/simulate", p)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("untraced repeat X-Cache = %q, want hit", got)
	}
	if bytes.Contains(body2, []byte("traceEvents")) {
		t.Fatalf("plain cached body leaked trace bytes: %s", body2)
	}
}

func TestTracedSimulateRejectsTrials(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	p := fastPoint(7)
	p.Trace = true
	p.Trials = 3
	resp, body := postJSON(t, ts.URL+"/v1/simulate", p)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
	}
}

func TestSweepRejectsTrace(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	p := fastPoint(1)
	p.Trace = true
	resp, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Points: []SimulateRequest{p}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
	}
}

func TestQueueTimeoutIs503(t *testing.T) {
	// One slot, generous queue, tiny timeout: a request stuck behind a
	// long run times out in queue and maps to 503.
	svc := New(Options{MaxConcurrent: 1, MaxQueue: 8, RequestTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	slow := SimulateRequest{K: 16, D: 4, N: 4, BlocksPerRun: 2000, Trials: 8, Seed: 99}
	done := make(chan struct{})
	go func() {
		defer close(done)
		postJSON(t, ts.URL+"/v1/simulate", slow)
	}()
	time.Sleep(10 * time.Millisecond) // let the slow run take the slot

	resp, body := postJSON(t, ts.URL+"/v1/simulate", fastPoint(424242))
	if resp.StatusCode != http.StatusServiceUnavailable && resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s), want 503 (timed out in queue) or 200 (slot freed in time)", resp.StatusCode, body)
	}
	<-done
	svc.Drain(testCtx(t, 5*time.Second))
}
