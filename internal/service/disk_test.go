package service

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/diskcache"
)

func mustDisk(t *testing.T, opts diskcache.Options) *diskcache.Cache {
	t.Helper()
	dc, err := diskcache.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return dc
}

// seedSweep runs the canonical warm-up sweep and returns its point
// bodies keyed by seed.
func seedSweep(t *testing.T, svc *Service, n int) map[uint64][]byte {
	t.Helper()
	bodies := make(map[uint64][]byte, n)
	for seed := uint64(1); seed <= uint64(n); seed++ {
		b, _, err := svc.Simulate(context.Background(), fastPoint(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		bodies[seed] = b
	}
	return bodies
}

// TestCrashRestartServesVerifiedEntries is the acceptance test for the
// persistent tier: populate it, tear one entry mid-write through the
// atomic-write fault hook (the SIGKILL-equivalent — the first Service
// is never Closed, so no index flush happens either), restart against
// the same directory, and require that the recovery scan quarantines
// the torn entry, that a warm repeat of the seed sweep is ≥ 90%
// disk-tier-served, and that every warm body is byte-identical to its
// cold compute. Runs under -race in CI.
func TestCrashRestartServesVerifiedEntries(t *testing.T) {
	dir := t.TempDir()
	const points = 10

	tearing := false
	dc := mustDisk(t, diskcache.Options{Dir: dir, TornWrite: func(key string, encoded []byte) []byte {
		if !tearing {
			return nil
		}
		return encoded[:len(encoded)*2/3] // the tail never hit the platter
	}})
	svc := New(Options{DiskCache: dc})
	cold := seedSweep(t, svc, points)
	if err := svc.Drain(testCtx(t, 10*time.Second)); err != nil {
		t.Fatal(err)
	}
	// One more point lands torn: the write is interrupted mid-entry.
	tearing = true
	if _, _, err := svc.Simulate(context.Background(), fastPoint(points+1)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Drain(testCtx(t, 10*time.Second)); err != nil {
		t.Fatal(err)
	}
	// No svc.Close(), no dc.Close(): the process is SIGKILLed here.

	// Restart: a fresh disk tier and Service over the same directory.
	dc2 := mustDisk(t, diskcache.Options{Dir: dir})
	if st := dc2.Stats(); st.Quarantined != 1 {
		t.Fatalf("recovery quarantined %d entries, want exactly the torn one", st.Quarantined)
	}
	svc2 := New(Options{DiskCache: dc2})
	var diskServed int
	for seed := uint64(1); seed <= points; seed++ {
		b, status, err := svc2.Simulate(context.Background(), fastPoint(seed))
		if err != nil {
			t.Fatalf("warm seed %d: %v", seed, err)
		}
		if status == CacheHitDisk {
			diskServed++
		}
		if !bytes.Equal(b, cold[seed]) {
			t.Fatalf("seed %d: warm body differs from cold compute", seed)
		}
	}
	if ratio := float64(diskServed) / float64(points); ratio < 0.9 {
		t.Fatalf("warm repeat %.0f%% disk-tier-served, want >= 90%%", 100*ratio)
	}
	// The torn point was never servable; recomputing it must succeed
	// and re-persist a good entry.
	b, status, err := svc2.Simulate(context.Background(), fastPoint(points+1))
	if err != nil || status != CacheMiss {
		t.Fatalf("torn point recompute: status %q, err %v, want a fresh miss", status, err)
	}
	if err := svc2.Drain(testCtx(t, 10*time.Second)); err != nil {
		t.Fatal(err)
	}
	dc3 := mustDisk(t, diskcache.Options{Dir: dir})
	svc3 := New(Options{DiskCache: dc3})
	if b2, status, err := svc3.Simulate(context.Background(), fastPoint(points+1)); err != nil || status != CacheHitDisk || !bytes.Equal(b, b2) {
		t.Fatalf("re-persisted torn point: status %q, err %v, identical %v", status, err, bytes.Equal(b, b2))
	}
}

// TestScanResistantPromotion pins the promotion policy: a disk hit
// enters the memory tier only on its second access, so a one-pass scan
// cannot flush the hot set.
func TestScanResistantPromotion(t *testing.T) {
	dir := t.TempDir()
	dc := mustDisk(t, diskcache.Options{Dir: dir})
	svc := New(Options{DiskCache: dc})
	seedSweep(t, svc, 1)
	if err := svc.Drain(testCtx(t, 10*time.Second)); err != nil {
		t.Fatal(err)
	}

	// Restart memory-cold.
	svc2 := New(Options{DiskCache: mustDisk(t, diskcache.Options{Dir: dir})})
	for i, want := range []CacheStatus{CacheHitDisk, CacheHitDisk, CacheHit} {
		_, status, err := svc2.Simulate(context.Background(), fastPoint(1))
		if err != nil {
			t.Fatal(err)
		}
		if status != want {
			t.Fatalf("access %d: status %q, want %q (promote on second disk hit)", i+1, status, want)
		}
	}
}

// TestBreakerDegradesToMemoryOnly forces disk I/O failures through the
// fault hook and requires: the tier trips open after the threshold,
// /v1/simulate keeps answering with correct (byte-identical) results,
// and the state gauge reports the trip on /metrics.
func TestBreakerDegradesToMemoryOnly(t *testing.T) {
	injected := errors.New("injected EIO")
	failing := false
	dc := mustDisk(t, diskcache.Options{
		Dir:              t.TempDir(),
		FailureThreshold: 2,
		ProbeEvery:       1000, // stay open for the whole test
		FailOp: func(op string) error {
			if failing {
				return injected
			}
			return nil
		},
	})
	svc := New(Options{DiskCache: dc})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	cold := seedSweep(t, svc, 4)
	failing = true

	// Distinct new points: each miss reaches the disk tier's Put and
	// fails until the breaker opens. Requests must keep succeeding
	// throughout — the dying volume costs persistence, not answers.
	for seed := uint64(10); seed < 16; seed++ {
		if _, _, err := svc.Simulate(context.Background(), fastPoint(seed)); err != nil {
			t.Fatalf("seed %d during disk failures: %v", seed, err)
		}
	}
	if st := svc.diskStats(); st.State != diskcache.StateOpen {
		t.Fatalf("breaker state = %d after repeated I/O failures, want open", st.State)
	}
	// Memory-only mode still serves cached results byte-identically…
	for seed := uint64(1); seed <= 4; seed++ {
		b, status, err := svc.Simulate(context.Background(), fastPoint(seed))
		if err != nil {
			t.Fatalf("warm seed %d in memory-only mode: %v", seed, err)
		}
		if status != CacheHit {
			t.Fatalf("warm seed %d: status %q, want memory hit", seed, status)
		}
		if !bytes.Equal(b, cold[seed]) {
			t.Fatalf("seed %d: memory-only body differs", seed)
		}
	}
	// …and the trip is visible on the metrics endpoint.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "simd_disk_cache_state 2") {
		t.Fatalf("metrics missing tripped state gauge:\n%s", grepLines(string(body), "disk_cache"))
	}
	if err := svc.Drain(testCtx(t, 10*time.Second)); err != nil {
		t.Fatal(err)
	}
}

// TestDiskTierMetricsExposition asserts every simd_disk_cache_* family
// and the per-tier rejection counter appear on /metrics with live
// values (also the metricreg reference for the family names).
func TestDiskTierMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	svc := New(Options{DiskCache: mustDisk(t, diskcache.Options{Dir: dir})})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	seedSweep(t, svc, 2)
	if err := svc.Drain(testCtx(t, 10*time.Second)); err != nil {
		t.Fatal(err)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"simd_disk_cache_hits_total 0",
		"simd_disk_cache_misses_total 2", // the two cold lookups
		"simd_disk_cache_writes_total 2",
		"simd_disk_cache_evictions_total 0",
		"simd_disk_cache_quarantined_total 0",
		"simd_disk_cache_state 0",
		`simd_cache_rejected_total{tier="memory"} 0`,
		`simd_cache_rejected_total{tier="disk"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, grepLines(text, "cache"))
		}
	}
	if !strings.Contains(text, "simd_disk_cache_bytes ") || strings.Contains(text, "simd_disk_cache_bytes 0\n") {
		t.Errorf("simd_disk_cache_bytes should be non-zero after two writes:\n%s", grepLines(text, "disk_cache_bytes"))
	}
}

// TestMemoryRejectionCounted pins the satellite fix: a body larger
// than the memory tier's whole byte budget is dropped, and the drop is
// counted instead of silent.
func TestMemoryRejectionCounted(t *testing.T) {
	svc := New(Options{CacheBytes: 16}) // smaller than any result body
	if _, _, err := svc.Simulate(context.Background(), fastPoint(1)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Drain(testCtx(t, 10*time.Second)); err != nil {
		t.Fatal(err)
	}
	svc.met.mu.Lock()
	rejected := svc.met.rejected
	svc.met.mu.Unlock()
	if rejected == 0 {
		t.Fatal("oversized body dropped without bumping simd_cache_rejected_total")
	}
	// The point stayed servable through its flight and is recomputed
	// (not poisoned) afterwards.
	if _, status, err := svc.Simulate(context.Background(), fastPoint(1)); err != nil || status != CacheMiss {
		t.Fatalf("after rejection: status %q, err %v, want a fresh miss", status, err)
	}
	if err := svc.Drain(testCtx(t, 10*time.Second)); err != nil {
		t.Fatal(err)
	}
}

// grepLines returns the lines of text containing pat, for focused
// failure messages.
func grepLines(text, pat string) string {
	var sb strings.Builder
	for _, ln := range strings.Split(text, "\n") {
		if strings.Contains(ln, pat) {
			sb.WriteString(ln)
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
