package service

import (
	"context"
	"encoding/json"

	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/trace"
)

// explainKey keys cached explain reports. It shares the config's
// canonical hash with the result cache but lives under its own suffix:
// an explain body embeds the attribution report, so it can never be
// served as a plain result (or vice versa).
func explainKey(cfg core.Config, trials int) (string, error) {
	key, err := resultKey(cfg, trials)
	if err != nil {
		return "", err
	}
	return key + "/explain", nil
}

// explainResponse is the wire form of an explain: the shared result
// schema plus the attribution report. TraceTruncated shadows the
// embedded omitempty field so explain clients always see an explicit
// boolean — an absent key would force them to guess whether the
// attribution covers the whole timeline.
type explainResponse struct {
	core.ResultJSON
	TraceTruncated bool            `json:"trace_truncated"`
	Explain        *explain.Report `json:"explain"`
}

// Explain serves one attributed point: it runs the config traced
// (trials = 1, admitted through the same gate as everything else),
// builds the internal/explain report, verifies the conservation
// invariant against the engine's own stall total, and returns result +
// report. The report is a pure function of the canonical config hash,
// so the whole body is cached under hash/trials/explain and a repeat
// request is a cache hit with no engine run; the plain result body is
// also cached under the normal key for later untraced requests.
//
// Requests with the trace flag set are rejected (explain consumes the
// trace internally; ask for one or the other), as are trials > 1 (a
// trace records one replication's timeline).
func (s *Service) Explain(ctx context.Context, req SimulateRequest) ([]byte, CacheStatus, error) {
	if req.Trace {
		return nil, CacheMiss, badRequestf("explain consumes the trace itself; drop the trace flag (use /v1/simulate with trace for raw spans)")
	}
	trials, err := s.trials(req.Trials)
	if err != nil {
		return nil, CacheMiss, err
	}
	if trials != 1 {
		return nil, CacheMiss, badRequestf("explain requires trials = 1 (attribution is one replication's timeline)")
	}
	cfg, err := req.config()
	if err != nil {
		return nil, CacheMiss, err
	}
	key, err := explainKey(cfg, trials)
	if err != nil {
		return nil, CacheMiss, err
	}
	if b, status, ok := s.cacheGet(key); ok {
		return b, status, nil
	}
	resKey, err := resultKey(cfg, trials)
	if err != nil {
		return nil, CacheMiss, err
	}

	rec := trace.New(s.opts.MaxTraceEvents)
	cfg.Trace = rec
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}
	if err := s.gate.acquire(ctx); err != nil {
		if err == ErrOverloaded {
			s.met.addShed()
		}
		return nil, CacheMiss, err
	}
	defer s.gate.release()
	s.met.addCacheMisses(1)
	aggs, err := core.RunGridContext(ctx, []core.Config{cfg}, trials, 1)
	if err != nil {
		return nil, CacheMiss, err
	}
	res := aggs[0].Results[0]
	result := core.NewResultJSON(aggs[0])
	result.TraceTruncated = rec.Truncated()
	if plain, err := json.Marshal(core.NewResultJSON(aggs[0])); err == nil {
		s.cacheAdd(resKey, plain)
	}

	rep := explain.Build(rec, explain.Options{Makespan: res.TotalTime})
	if rec.Truncated() {
		s.met.addTraceTruncated()
	} else if err := rep.Check(res.StallTime); err != nil {
		// A conservation failure on an untruncated trace is a bug, not
		// a client error; surface it as a 500 rather than serving an
		// attribution that doesn't add up.
		return nil, CacheMiss, err
	}
	body, err := json.Marshal(explainResponse{
		ResultJSON:     result,
		TraceTruncated: rec.Truncated(),
		Explain:        rep,
	})
	if err != nil {
		return nil, CacheMiss, err
	}
	// A truncated report is incomplete; keep it out of the cache so a
	// redeploy with a larger MaxTraceEvents can answer properly.
	if !rec.Truncated() {
		s.cacheAdd(key, body)
	}
	return body, CacheMiss, nil
}
