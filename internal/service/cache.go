package service

import (
	"container/list"
	"sync"
)

// lru is the size-bounded result cache: canonical config hash (plus
// trial count) → the marshaled response body. Values are stored and
// served as immutable byte slices, which is what makes cached responses
// byte-identical to the cold ones they were copied from.
type lru struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val []byte
}

func newLRU(max int) *lru {
	if max < 1 {
		max = 1
	}
	return &lru{max: max, ll: list.New(), items: make(map[string]*list.Element, max)}
}

// get returns the cached body for key and promotes it.
func (c *lru) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts (or refreshes) key, evicting the least recently used
// entry beyond capacity. Callers must not mutate val afterwards.
func (c *lru) add(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

// len reports the current entry count.
func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
