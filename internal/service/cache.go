package service

import (
	"container/list"
	"sync"
)

// lru is the size-bounded result cache: canonical config hash (plus
// trial count) → the marshaled response body. Values are stored and
// served as immutable byte slices, which is what makes cached responses
// byte-identical to the cold ones they were copied from.
//
// Bodies vary wildly in size (a 1-trial point is ~1 KiB; a
// MaxTrials-trial sweep point with per-disk arrays runs to hundreds of
// KiB), so the cache is bounded two ways: an entry count and a total
// byte budget, whichever bites first. Eviction is LRU order under
// either bound.
type lru struct {
	mu       sync.Mutex
	max      int        // entry bound
	maxBytes int64      // byte bound over stored values; 0 = unbounded
	bytes    int64      // current sum of len(val) over entries
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

type lruEntry struct {
	key string
	val []byte
}

func newLRU(max int, maxBytes int64) *lru {
	if max < 1 {
		max = 1
	}
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &lru{max: max, maxBytes: maxBytes, ll: list.New(), items: make(map[string]*list.Element, max)}
}

// get returns the cached body for key and promotes it.
func (c *lru) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts (or refreshes) key, then evicts least-recently-used
// entries until both the entry and byte bounds hold. A value larger
// than the whole byte budget is not admitted at all (and refreshing a
// key with one drops the stale entry) — it stays servable through the
// flight that produced it, it just never displaces the rest of the
// cache. The return reports admission, so callers can count
// budget-induced rejections (simd_cache_rejected_total): a false means
// every future request for this key is an engine run, which operators
// should see rather than infer. Callers must not mutate val afterwards.
func (c *lru) add(key string, val []byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes > 0 && int64(len(val)) > c.maxBytes {
		if el, ok := c.items[key]; ok {
			c.removeLocked(el)
		}
		return false
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*lruEntry)
		c.bytes += int64(len(val)) - int64(len(ent.val))
		ent.val = val
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
		c.bytes += int64(len(val))
	}
	// The freshly added entry always survives: it is at the front, it
	// fits the byte budget on its own, and max >= 1.
	for c.ll.Len() > c.max || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		c.removeLocked(c.ll.Back())
	}
	return true
}

func (c *lru) removeLocked(el *list.Element) {
	ent := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.bytes -= int64(len(ent.val))
}

// len reports the current entry count.
func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// size reports the current entry count and total stored bytes.
func (c *lru) size() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes
}
