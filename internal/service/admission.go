package service

import (
	"context"
	"errors"
	"sync"
)

// ErrOverloaded reports that the admission queue is full: the request
// was shed immediately (HTTP 429) instead of being allowed to pile up
// and collapse the service.
var ErrOverloaded = errors.New("service: overloaded, admission queue full")

// gate is the admission controller: at most cap engine runs execute
// concurrently, at most queue more may wait for a slot, and everything
// beyond that is shed with ErrOverloaded. Waiting is abandoned when the
// caller's context expires, which the HTTP layer maps to 503.
type gate struct {
	slots chan struct{} // buffered; one token per running job
	queue int

	mu      sync.Mutex
	waiting int
}

func newGate(capacity, queue int) *gate {
	if capacity < 1 {
		capacity = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &gate{slots: make(chan struct{}, capacity), queue: queue}
}

// acquire obtains a run slot. It returns nil when a slot is held,
// ErrOverloaded when the wait queue is full, or ctx.Err() when the
// context expires while queued.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	g.mu.Lock()
	if g.waiting >= g.queue {
		g.mu.Unlock()
		return ErrOverloaded
	}
	g.waiting++
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		g.waiting--
		g.mu.Unlock()
	}()
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot acquired with acquire.
func (g *gate) release() { <-g.slots }

// depth reports how many callers are queued for a slot.
func (g *gate) depth() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiting
}

// inUse reports how many slots are held.
func (g *gate) inUse() int { return len(g.slots) }
