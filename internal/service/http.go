package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"
)

// maxBodyBytes bounds a request body; a sweep of MaxPoints fully
// spelled-out points fits comfortably under 1 MiB.
const maxBodyBytes = 1 << 20

// Handler returns the daemon's HTTP API:
//
//	POST /v1/simulate  one point, aggregated over trials → core.ResultJSON
//	POST /v1/sweep     a batch of points → {"trials":N,"points":[...]}
//	POST /v1/explain   one traced point → result + stall-attribution report
//	GET  /healthz      {"status":"ok"} or 503 {"status":"draining"}
//	GET  /metrics      Prometheus text exposition
//
// Error statuses: 400 malformed or invalid request, 429 shed by
// admission control (Retry-After set), 503 timed out in queue or
// draining, 500 anything else.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.instrumented("simulate", s.handleSimulate))
	mux.HandleFunc("POST /v1/sweep", s.instrumented("sweep", s.handleSweep))
	mux.HandleFunc("POST /v1/optimize", s.instrumented("optimize", s.handleOptimize))
	mux.HandleFunc("POST /v1/explain", s.instrumented("explain", s.handleExplain))
	mux.HandleFunc("GET /healthz", s.instrumented("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrumented("metrics", s.handleMetrics))
	return s.withRequestID(mux)
}

// instrumented wraps a handler with request accounting — in-flight
// gauge, per-endpoint/status counter, latency histogram — and panic
// recovery: a panicking handler answers 500 and bumps
// simd_panics_total instead of killing the daemon (net/http would only
// kill the one connection, but a panic must still be a counted, alarmed
// event, not a silently dropped request).
func (s *Service) instrumented(endpoint string, fn func(http.ResponseWriter, *http.Request) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now() //detlint:allow nondet request-latency instrumentation measures real wall time, never simulation state
		s.met.requestStarted()
		cw := &countingWriter{ResponseWriter: w}
		code := http.StatusInternalServerError
		defer func() {
			if v := recover(); v != nil {
				s.met.addPanic()
				log.Printf("panic in %s handler: %v\n%s", endpoint, v, debug.Stack())
				// Best effort: if the handler already started its
				// response, the status line is gone and this write fails
				// on the wire, but the accounting below still records
				// the request as a 500.
				writeErrorBody(cw, http.StatusInternalServerError, "internal error")
			}
			//detlint:allow nondet request-latency instrumentation measures real wall time, never simulation state
			s.met.requestFinished(endpoint, code, time.Since(start).Seconds(), cw.bytes)
		}()
		code = fn(cw, r)
	}
}

func (s *Service) handleSimulate(w http.ResponseWriter, r *http.Request) int {
	var req SimulateRequest
	if code := decodeBody(w, r, &req); code != 0 {
		return code
	}
	if req.Trace {
		body, err := s.SimulateTraced(r.Context(), req)
		if err != nil {
			return s.writeError(w, err)
		}
		w.Header().Set("X-Cache", "bypass")
		return writeJSON(w, http.StatusOK, body)
	}
	body, status, err := s.Simulate(r.Context(), req)
	if err != nil {
		return s.writeError(w, err)
	}
	w.Header().Set("X-Cache", string(status))
	return writeJSON(w, http.StatusOK, body)
}

func (s *Service) handleExplain(w http.ResponseWriter, r *http.Request) int {
	var req SimulateRequest
	if code := decodeBody(w, r, &req); code != 0 {
		return code
	}
	body, status, err := s.Explain(r.Context(), req)
	if err != nil {
		return s.writeError(w, err)
	}
	w.Header().Set("X-Cache", string(status))
	return writeJSON(w, http.StatusOK, body)
}

func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) int {
	var req SweepRequest
	if code := decodeBody(w, r, &req); code != 0 {
		return code
	}
	body, hits, points, err := s.Sweep(r.Context(), req)
	if err != nil {
		return s.writeError(w, err)
	}
	w.Header().Set("X-Cache", fmt.Sprintf("%d/%d", hits, points))
	return writeJSON(w, http.StatusOK, body)
}

func (s *Service) handleOptimize(w http.ResponseWriter, r *http.Request) int {
	var req OptimizeRequest
	if code := decodeBody(w, r, &req); code != 0 {
		return code
	}
	body, served, evals, err := s.Optimize(r.Context(), req)
	if err != nil {
		return s.writeError(w, err)
	}
	w.Header().Set("X-Cache", fmt.Sprintf("%d/%d", served, evals))
	return writeJSON(w, http.StatusOK, body)
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) int {
	if s.Draining() {
		return writeJSON(w, http.StatusServiceUnavailable, []byte(`{"status":"draining"}`))
	}
	return writeJSON(w, http.StatusOK, []byte(`{"status":"ok"}`))
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) int {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	entries, bytes := s.cache.size()
	s.met.writePrometheus(w, s.gate.depth(), entries, bytes, s.diskStats())
	writeGoMetrics(w)
	return http.StatusOK
}

// decodeBody strictly decodes a bounded JSON body into dst; a non-zero
// return is the error status already written. Strict means strict to
// the end: a body must be exactly one JSON value, so trailing bytes
// (concatenated objects, stray garbage) are a 400, not silently
// ignored.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) int {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeErrorBody(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return http.StatusBadRequest
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		writeErrorBody(w, http.StatusBadRequest, "invalid request body: trailing data after JSON value")
		return http.StatusBadRequest
	}
	return 0
}

// writeError maps a service error onto its HTTP status.
func (s *Service) writeError(w http.ResponseWriter, err error) int {
	var reqErr *requestError
	switch {
	case errors.As(err, &reqErr):
		writeErrorBody(w, http.StatusBadRequest, err.Error())
		return http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeErrorBody(w, http.StatusTooManyRequests, err.Error())
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.met.addTimeout()
		writeErrorBody(w, http.StatusServiceUnavailable, "request timed out or was cancelled")
		return http.StatusServiceUnavailable
	default:
		writeErrorBody(w, http.StatusInternalServerError, err.Error())
		return http.StatusInternalServerError
	}
}

func writeErrorBody(w http.ResponseWriter, code int, msg string) {
	body, _ := json.Marshal(map[string]string{"error": msg})
	writeJSON(w, code, body)
}

func writeJSON(w http.ResponseWriter, code int, body []byte) int {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(code)
	w.Write(body)
	return code
}
