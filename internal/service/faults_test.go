package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestPanicRecovery is the hardening regression: a panicking handler
// must answer 500, bump simd_panics_total, and leave the daemon
// serving.
func TestPanicRecovery(t *testing.T) {
	svc := New(Options{})
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mux.HandleFunc("GET /boom", svc.instrumented("boom", func(http.ResponseWriter, *http.Request) int {
		panic("handler bug")
	}))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/boom")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panicking handler answered %d, want 500", resp.StatusCode)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("500 body %s is not the JSON error shape", body)
		}
	}

	// The daemon keeps serving real traffic after the panics.
	resp, body := postJSON(t, ts.URL+"/v1/simulate", fastPoint(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate after panic: status %d: %s", resp.StatusCode, body)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"simd_panics_total 2",
		`simd_requests_total{endpoint="boom",code="500"} 2`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q\n%s", want, metrics)
		}
	}
}

// TestFaultRequestsRejected pins the HTTP 400 path for invalid fault
// specs: the validation text reaches the client verbatim.
func TestFaultRequestsRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name    string
		body    string
		wantSub string
	}{
		{
			"nonexistent disk",
			`{"faults": [{"disk": 9, "slowdown": 2}]}`,
			"faults: spec 0 targets disk 9, want [0, D=5)",
		},
		{
			"slowdown below one",
			`{"faults": [{"disk": 0, "slowdown": 0.5}]}`,
			"slowdown 0.5 < 1",
		},
		{
			"negative probability",
			`{"faults": [{"disk": 0, "read_error_prob": -0.5}]}`,
			"read error probability -0.5 not in [0, 1]",
		},
		{
			"overlapping outages",
			`{"faults": [{"disk": 1, "outages": [{"start_ms": 0, "end_ms": 100}, {"start_ms": 50, "end_ms": 150}]}]}`,
			"outage windows overlap at 50 ms",
		},
		{
			"unknown fault field",
			`{"faults": [{"disk": 0, "slowness": 2}]}`,
			"unknown field",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			out, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", resp.StatusCode, out)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(out, &e); err != nil {
				t.Fatalf("error body %s is not JSON", out)
			}
			if !strings.Contains(e.Error, tc.wantSub) {
				t.Fatalf("error %q does not mention %q", e.Error, tc.wantSub)
			}
		})
	}
}

// TestFaultedSimulateServes runs a degraded-disk point end to end over
// HTTP and checks the fault counters ride the shared schema.
func TestFaultedSimulateServes(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := fastPoint(7)
	req.Faults = []FaultRequest{{Disk: 1, Slowdown: 3}}
	resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rj struct {
		Results []struct {
			SlowdownSeconds float64 `json:"fault_slowdown_seconds"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &rj); err != nil {
		t.Fatal(err)
	}
	if len(rj.Results) != 1 || rj.Results[0].SlowdownSeconds <= 0 {
		t.Fatalf("faulted point reported no slowdown time: %s", body)
	}

	// A healthy point's body must not mention fault counters at all, and
	// the faulted point must not poison its cache entry.
	_, healthy := postJSON(t, ts.URL+"/v1/simulate", fastPoint(7))
	if strings.Contains(string(healthy), "fault_") {
		t.Fatalf("healthy body leaks fault fields: %s", healthy)
	}
	resp2, body2 := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp2.Header.Get("X-Cache") != "hit" || string(body2) != string(body) {
		t.Fatalf("faulted repeat: X-Cache=%q, bytes equal=%v", resp2.Header.Get("X-Cache"), string(body2) == string(body))
	}
}

// TestUnreadableFaultIs500NotPoisoned: a run aborted by ErrUnreadable
// maps to 500, and the key is not left poisoned — a retry gets a fresh
// (still failing) run rather than hanging.
func TestUnreadableFaultIs500NotPoisoned(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := fastPoint(3)
	req.Faults = []FaultRequest{{Disk: 0, ReadErrorProb: 1, MaxRetries: 1}}
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("attempt %d: status %d, want 500; body %s", i, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "unreadable") {
			t.Fatalf("attempt %d: error body %s does not name the unreadable disk", i, body)
		}
	}
}

// TestClientDisconnectMidRun: killing the requester mid-run must not
// crash the daemon or poison the singleflight — the detached run
// finishes into the cache and a later request is served normally.
func TestClientDisconnectMidRun(t *testing.T) {
	svc, ts := newTestServer(t, Options{})
	point := SimulateRequest{K: 16, D: 4, N: 4, BlocksPerRun: 1500, Trials: 4, Seed: 17}
	buf, err := json.Marshal(point)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	hreq, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/simulate", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(hreq)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the run start
	cancel()                          // client walks away mid-run
	<-errc

	// The same point answers — joining the still-running detached run,
	// its cached result, or a fresh run. Either way the flight key is
	// live, not poisoned.
	resp, body := postJSON(t, ts.URL+"/v1/simulate", point)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-disconnect status %d: %s", resp.StatusCode, body)
	}
	// And shutdown still drains cleanly.
	if err := svc.Drain(testCtx(t, 10*time.Second)); err != nil {
		t.Fatalf("drain after disconnect: %v", err)
	}
}
