package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d equal draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("disks")
	c2 := parent.Split("merge")
	c3 := parent.Split("disks") // same label: must be identical
	if c1.Uint64() != c3.Uint64() {
		t.Fatal("Split with same label from same parent state differed")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("Split with different labels produced equal draws")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split("x")
	_ = a.Split("y")
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split advanced the parent stream")
	}
}

func TestSplitIndexedDistinct(t *testing.T) {
	parent := New(3)
	seen := make(map[uint64]int)
	for i := 0; i < 64; i++ {
		v := parent.SplitIndexed("disk", i).Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("SplitIndexed %d and %d produced equal first draws", i, j)
		}
		seen[v] = i
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(12)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(13)
	err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(14)
	const buckets, draws = 10, 100000
	var count [buckets]int
	for i := 0; i < draws; i++ {
		count[r.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range count {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d: count %d deviates from expected %v", b, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(15)
	err := quick.Check(func(n uint8) bool {
		m := int(n % 64)
		p := r.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(16)
	xs := []int{1, 2, 2, 3, 5, 8, 13}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("Shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(8.33)
	}
	mean := sum / n
	if math.Abs(mean-8.33) > 0.1 {
		t.Fatalf("Exponential(8.33) mean = %v", mean)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(18)
	for i := 0; i < 10000; i++ {
		v := r.UniformRange(3, 7)
		if v < 3 || v >= 7 {
			t.Fatalf("UniformRange(3,7) = %v", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(19)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestZipfUniformWhenThetaZero(t *testing.T) {
	r := New(20)
	z := NewZipf(8, 0)
	var count [8]int
	const draws = 80000
	for i := 0; i < draws; i++ {
		count[z.Draw(r)]++
	}
	want := float64(draws) / 8
	for b, c := range count {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("zipf(theta=0) bucket %d: %d, want ~%v", b, c, want)
		}
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	r := New(21)
	z := NewZipf(16, 1.0)
	var count [16]int
	for i := 0; i < 100000; i++ {
		count[z.Draw(r)]++
	}
	if !(count[0] > count[5] && count[5] > count[15]) {
		t.Fatalf("zipf(theta=1) counts not decreasing: %v", count)
	}
}

func TestZipfDrawInRange(t *testing.T) {
	r := New(22)
	err := quick.Check(func(n uint8, th uint8) bool {
		m := int(n%32) + 1
		z := NewZipf(m, float64(th%3))
		v := z.Draw(r)
		return v >= 0 && v < m
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUnbiasedSmallN(t *testing.T) {
	r := New(23)
	var count [3]int
	for i := 0; i < 300000; i++ {
		count[r.Uint64n(3)]++
	}
	for b, c := range count {
		if math.Abs(float64(c)-100000) > 5*math.Sqrt(100000) {
			t.Fatalf("Uint64n(3) bucket %d: %d", b, c)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Float64()
	}
}

func TestDistributionValidation(t *testing.T) {
	r := New(30)
	for _, fn := range []func(){
		func() { r.UniformRange(7, 3) },
		func() { r.Exponential(0) },
		func() { r.Exponential(-1) },
		func() { NewZipf(0, 1) },
		func() { NewZipf(4, -0.5) },
		func() { r.Uint64n(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid distribution arguments did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestZipfAccessors(t *testing.T) {
	z := NewZipf(9, 0.75)
	if z.N() != 9 || z.Theta() != 0.75 {
		t.Fatalf("N/Theta = %d/%v", z.N(), z.Theta())
	}
}

func TestUint64nLargeRange(t *testing.T) {
	// Exercise the rejection branch with a range just above 2^63, where
	// the acceptance threshold is substantial.
	r := New(31)
	n := uint64(1)<<63 + 12345
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(n); v >= n {
			t.Fatalf("Uint64n(%d) = %d", n, v)
		}
	}
}
