package rng

import "math"

// UniformRange returns a uniform float64 in [lo, hi). It panics if hi < lo.
func (r *Stream) UniformRange(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: UniformRange with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1,
// by inversion. Inversion (rather than ziggurat) keeps the draw count per
// sample fixed at one, which keeps streams easy to reason about.
func (r *Stream) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Exponential returns an exponentially distributed value with the given
// mean. It panics if mean <= 0.
func (r *Stream) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exponential with mean <= 0")
	}
	return mean * r.ExpFloat64()
}

// NormFloat64 returns a standard normal value using the Marsaglia polar
// method (two uniform draws per accepted pair; one value is cached).
func (r *Stream) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.haveGauss = true
		return u * f
	}
}

// Zipf draws from a Zipf distribution over {0, ..., n-1} with exponent
// theta >= 0 (theta == 0 is uniform). It is used by the skewed depletion
// workload extension. The implementation precomputes nothing; callers
// that need many draws should use NewZipf.
type Zipf struct {
	n     int
	theta float64
	// cdf[i] is the cumulative probability of values <= i.
	cdf []float64
}

// NewZipf builds a Zipf sampler over {0, ..., n-1} with the given
// exponent. It panics if n <= 0 or theta < 0.
func NewZipf(n int, theta float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with n <= 0")
	}
	if theta < 0 {
		panic("rng: NewZipf with theta < 0")
	}
	z := &Zipf{n: n, theta: theta, cdf: make([]float64, n)}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// N returns the size of the sampler's support.
func (z *Zipf) N() int { return z.n }

// Theta returns the sampler's exponent.
func (z *Zipf) Theta() float64 { return z.theta }

// Draw samples one value from the distribution using stream r.
func (z *Zipf) Draw(r *Stream) int {
	u := r.Float64()
	// Binary search for the first index with cdf >= u.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
