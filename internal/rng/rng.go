// Package rng provides a deterministic, splittable pseudo-random number
// generator for the simulation.
//
// Every stochastic component of the simulator (each disk's rotational
// latency, the merge engine's depletion choices, the prefetch run
// selection) draws from its own independent Stream, derived from a single
// experiment seed by Split. This guarantees that
//
//   - a whole experiment is reproducible from one uint64 seed, and
//   - adding or removing draws in one component never perturbs the
//     sequence seen by another (streams are independent by construction).
//
// The generator is xoshiro256**, seeded through SplitMix64, the standard
// pairing recommended by the xoshiro authors. The zero Stream is not
// valid; construct streams with New or Split.
package rng

import "math/bits"

// Stream is a deterministic source of pseudo-random numbers. It is not
// safe for concurrent use; in the simulator each process owns its stream.
type Stream struct {
	s [4]uint64

	// Cached second output of the Marsaglia polar method.
	gauss     float64
	haveGauss bool
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding, never for simulation draws.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Stream seeded from seed. Distinct seeds give streams that
// are, for simulation purposes, independent.
func New(seed uint64) *Stream {
	st := seed
	var s Stream
	for i := range s.s {
		s.s[i] = splitMix64(&st)
	}
	// xoshiro256** must not be seeded with the all-zero state; SplitMix64
	// cannot produce four consecutive zeros, so this is unreachable, but
	// guard anyway so a future seeding change cannot break the generator.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	return &s
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Stream) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Split derives a new independent Stream from r, keyed by label. Splitting
// with distinct labels yields distinct streams; the parent stream is not
// advanced, so the set of children is a pure function of (parent state,
// label).
func (r *Stream) Split(label string) *Stream {
	// Mix the label into the parent state with an FNV-1a style fold,
	// then run the result through New's SplitMix64 diffusion.
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
	}
	h ^= r.s[0]
	h = (h << 1) | (h >> 63)
	h ^= r.s[2]
	return New(h)
}

// SplitIndexed derives a child stream keyed by a label and an index, for
// per-disk and per-trial streams.
func (r *Stream) SplitIndexed(label string, index int) *Stream {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
	}
	h ^= uint64(index) * 0x9e3779b97f4a7c15
	h ^= r.s[0]
	h = (h << 1) | (h >> 63)
	h ^= r.s[2]
	return New(h)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's unbiased
// multiply-shift rejection method. It panics if n == 0.
func (r *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Perm returns a uniform random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements uniformly using swap.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
