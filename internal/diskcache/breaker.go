package diskcache

// Breaker states, exported through Stats.State and the
// simd_disk_cache_state gauge.
const (
	// StateClosed: the disk tier is healthy; every operation reaches it.
	StateClosed = 0
	// StateHalfOpen: the tier tripped and has now skipped enough
	// operations that the next one is let through as a recovery probe.
	StateHalfOpen = 1
	// StateOpen: too many consecutive I/O failures; operations are
	// answered memory-only (a Get is a fast miss, a Put is dropped)
	// without touching the disk.
	StateOpen = 2
)

// breaker is the disk tier's error-budget circuit breaker. It is
// deliberately counter-based, not clock-based: N consecutive I/O
// failures trip it open, the next K skipped operations re-arm it to
// half-open, and the single operation let through as the half-open
// probe decides — success closes the breaker, failure re-opens it.
// Counting operations instead of wall time keeps the state machine a
// pure function of the operation history, so tests (and replays) are
// deterministic and the package needs no clock.
//
// Not self-locking: the owning Cache's mutex guards it.
type breaker struct {
	threshold  int // consecutive failures that trip the breaker
	probeEvery int // skipped operations between half-open probes

	state    int
	failures int // consecutive failures while closed
	skipped  int // operations skipped while open
}

func newBreaker(threshold, probeEvery int) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	if probeEvery < 1 {
		probeEvery = 1
	}
	return &breaker{threshold: threshold, probeEvery: probeEvery}
}

// allow reports whether the next disk operation may proceed. While
// open it counts the operations it turns away; once probeEvery of
// them have been skipped it re-arms to half-open (that operation is
// still skipped), and the one after runs as the recovery probe — so a
// dead volume is re-probed every K operations rather than never, and
// the half-open state is observable on the state gauge between the
// re-arm and the probe.
func (b *breaker) allow() bool {
	switch b.state {
	case StateClosed, StateHalfOpen:
		return true
	default: // StateOpen
		b.skipped++
		if b.skipped >= b.probeEvery {
			b.state = StateHalfOpen
		}
		return false
	}
}

// success records a disk operation that completed; any state collapses
// back to closed.
func (b *breaker) success() {
	b.state = StateClosed
	b.failures = 0
	b.skipped = 0
}

// failure records a disk I/O failure. A half-open probe failing
// re-opens immediately; while closed, the trip waits for threshold
// consecutive failures so one transient error never degrades the tier.
func (b *breaker) failure() {
	switch b.state {
	case StateHalfOpen:
		b.state = StateOpen
		b.skipped = 0
	case StateClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = StateOpen
			b.skipped = 0
		}
	}
}
