package diskcache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk entry format, version 1. One file per cache entry:
//
//	offset 0   magic "SDC1" (4 bytes; the digit is the format version)
//	offset 4   key length, uint32 big-endian
//	offset 8   body length, uint32 big-endian
//	offset 12  key bytes
//	...        body bytes
//	trailer    CRC32-C (Castagnoli) over everything before it, uint32 BE
//
// The format is canonical: a file is valid iff it is byte-for-byte what
// EncodeEntry produces for its (key, body), with nothing missing and
// nothing appended. Truncation, bit rot, a torn page of zeros, or a
// foreign file all fail DecodeEntry, which is what lets the recovery
// scan sort a directory into servable entries and quarantine.
const (
	magic      = "SDC1"
	headerSize = 12 // magic + keyLen + bodyLen
	crcSize    = 4

	// maxKeyLen bounds the embedded key (cache keys are a 64-hex-char
	// hash plus a trial count; 4 KiB is generous headroom).
	maxKeyLen = 4096
	// maxBodyLen bounds one stored body. The service caps cached bodies
	// far below this; the decoder bound exists so a corrupt length field
	// cannot demand a giant slice.
	maxBodyLen = 1 << 30
)

// castagnoli is the CRC32-C table (the polynomial with hardware support
// on amd64/arm64, the same one used by iSCSI and ext4 metadata).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks a file that is not a valid cache entry: wrong magic,
// impossible lengths, truncation, trailing bytes, or a CRC mismatch.
// The recovery scan and the read path quarantine on it.
var ErrCorrupt = errors.New("diskcache: corrupt entry")

// EncodeEntry renders one cache entry in the on-disk format.
func EncodeEntry(key string, body []byte) []byte {
	buf := make([]byte, headerSize+len(key)+len(body)+crcSize)
	copy(buf, magic)
	binary.BigEndian.PutUint32(buf[4:], uint32(len(key)))
	binary.BigEndian.PutUint32(buf[8:], uint32(len(body)))
	copy(buf[headerSize:], key)
	copy(buf[headerSize+len(key):], body)
	sum := crc32.Checksum(buf[:len(buf)-crcSize], castagnoli)
	binary.BigEndian.PutUint32(buf[len(buf)-crcSize:], sum)
	return buf
}

// DecodeEntry validates data as one on-disk entry and returns the
// embedded key and body. The body aliases data — callers that keep it
// must not mutate data afterwards. Every failure wraps ErrCorrupt with
// the first check that failed, so quarantine logs say why.
func DecodeEntry(data []byte) (key string, body []byte, err error) {
	if len(data) < headerSize+crcSize {
		return "", nil, fmt.Errorf("%w: %d bytes, shorter than any entry", ErrCorrupt, len(data))
	}
	if string(data[:4]) != magic {
		return "", nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	keyLen := binary.BigEndian.Uint32(data[4:])
	bodyLen := binary.BigEndian.Uint32(data[8:])
	if keyLen == 0 || keyLen > maxKeyLen {
		return "", nil, fmt.Errorf("%w: key length %d out of range", ErrCorrupt, keyLen)
	}
	if bodyLen > maxBodyLen {
		return "", nil, fmt.Errorf("%w: body length %d out of range", ErrCorrupt, bodyLen)
	}
	want := headerSize + int(keyLen) + int(bodyLen) + crcSize
	if len(data) != want {
		return "", nil, fmt.Errorf("%w: %d bytes, header promises %d (truncated or trailing garbage)", ErrCorrupt, len(data), want)
	}
	sum := crc32.Checksum(data[:len(data)-crcSize], castagnoli)
	if got := binary.BigEndian.Uint32(data[len(data)-crcSize:]); got != sum {
		return "", nil, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrCorrupt, got, sum)
	}
	key = string(data[headerSize : headerSize+keyLen])
	body = data[headerSize+keyLen : headerSize+keyLen+bodyLen]
	return key, body, nil
}
