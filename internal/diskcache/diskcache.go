// Package diskcache is the persistent second tier of the simd result
// cache: one file per entry under a directory, behind the in-memory
// LRU and in front of the engine. It is built for the failure modes a
// long-lived daemon actually meets, in order of importance:
//
//   - Crash mid-write. Entries are written to a temp file, fsynced,
//     and atomically renamed into place, so a SIGKILL at any
//     instruction leaves either the complete entry or an orphan temp
//     file the next start removes — never a half-entry under the
//     final name.
//   - Corruption on disk. Every entry is framed (versioned magic,
//     lengths, embedded key) and sealed with a CRC32-C trailer; the
//     open-time recovery scan and every read re-verify it. A file
//     that fails is moved to <dir>/quarantine/ and counted — it is
//     never served, and never silently deleted (operators can
//     inspect what the volume did to it).
//   - A dying volume. Every disk operation feeds an error-budget
//     circuit breaker: consecutive I/O failures trip the tier to
//     memory-only, periodic half-open probes let it recover, and the
//     caller sees fast misses instead of hanging syscalls. The tier
//     degrades throughput, never availability or correctness.
//
// Eviction is LRU by access under a byte budget. Recency survives a
// graceful Close via a small index file; after a crash the scan falls
// back to file modification times, which is an approximation the LRU
// repairs as traffic touches entries.
//
// The cache never trusts its own index over the bytes on disk: a hit
// is only a hit after the entry re-decodes and its embedded key
// matches, so a renamed or recycled file can not serve the wrong body.
package diskcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

const (
	entrySuffix   = ".sce" // simd cache entry
	tmpSuffix     = ".tmp"
	indexName     = "INDEX"
	indexHeader   = "sdcindex v1"
	quarantineDir = "quarantine"
)

// Options configures Open. Zero values take the documented defaults.
type Options struct {
	// Dir is the cache directory (required). Created if absent, along
	// with Dir/quarantine.
	Dir string
	// MaxBytes bounds the total size of entry files (default 1 GiB;
	// negative disables the bound). Entries larger than the whole
	// budget are rejected, counted, and never written.
	MaxBytes int64
	// FailureThreshold is the number of consecutive disk I/O failures
	// that trip the tier to memory-only (default 5).
	FailureThreshold int
	// ProbeEvery is the number of operations skipped while tripped
	// before one is let through as a half-open recovery probe
	// (default 16).
	ProbeEvery int

	// FailOp is a test hook: when non-nil it is consulted before each
	// disk operation with "get" or "put", and a non-nil return is
	// treated as that operation's I/O failure. Production callers
	// leave it nil.
	FailOp func(op string) error
	// TornWrite is a test hook for the atomic-write path: when non-nil
	// and it returns a non-nil slice for an entry, Put writes that slice
	// directly to the final path — no temp file, no fsync, no rename —
	// and stops, simulating a machine crash that tore the entry after
	// the process thought it was written. The next Open must quarantine
	// it. Production callers leave it nil.
	TornWrite func(key string, encoded []byte) []byte
}

// Stats is a point-in-time snapshot of the tier's counters, the source
// for the simd_disk_cache_* metric families.
type Stats struct {
	Hits        int64 // entries served (decoded and CRC-verified)
	Misses      int64 // lookups not served, breaker skips included
	Writes      int64 // entries durably written
	Evictions   int64 // entries removed to fit the byte budget
	Quarantined int64 // corrupt files moved aside, scan and read time
	Rejected    int64 // bodies larger than the whole budget, dropped
	Entries     int   // servable entries in the index
	Bytes       int64 // total size of servable entry files
	State       int   // breaker state: StateClosed/StateHalfOpen/StateOpen
}

// Cache is the persistent tier. Create with Open; safe for concurrent
// use. One mutex guards index and I/O alike: the engine work this tier
// fronts is orders of magnitude slower than an entry file read, so
// single-writer simplicity wins over lock granularity.
type Cache struct {
	dir  string
	opts Options

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	index map[string]*list.Element
	bytes int64
	brk   *breaker

	hits, misses, writes   int64
	evictions, quarantined int64
	rejected               int64
}

// entry is one servable file in the index.
type entry struct {
	key  string
	name string // file name under dir (hash of key + entrySuffix)
	size int64
	hits int // in-memory access count, feeds scan-resistant promotion
}

// entryName maps a cache key to its file name. Keys contain '/' (hash
// slash trial count), so the name is a digest, and the embedded key in
// the file is what proves the mapping on every read.
func entryName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + entrySuffix
}

// Open creates or recovers the cache at opts.Dir. The recovery scan
// reads and fully verifies every entry file: valid ones enter the
// index, corrupt ones move to quarantine, orphan temp files from an
// interrupted write are removed. Recency is restored from the index
// file a graceful Close wrote, with modification-time order as the
// fallback for entries written after the last flush (or after a
// crash). The byte budget is enforced before Open returns.
func Open(opts Options) (*Cache, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("diskcache: Options.Dir is required")
	}
	switch {
	case opts.MaxBytes == 0:
		opts.MaxBytes = 1 << 30
	case opts.MaxBytes < 0:
		opts.MaxBytes = 0 // unbounded
	}
	if opts.FailureThreshold <= 0 {
		opts.FailureThreshold = 5
	}
	if opts.ProbeEvery <= 0 {
		opts.ProbeEvery = 16
	}
	if err := os.MkdirAll(filepath.Join(opts.Dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	c := &Cache{
		dir:   opts.Dir,
		opts:  opts,
		ll:    list.New(),
		index: make(map[string]*list.Element),
		brk:   newBreaker(opts.FailureThreshold, opts.ProbeEvery),
	}
	if err := c.recover(); err != nil {
		return nil, err
	}
	return c, nil
}

// recover is the open-time scan described on Open.
func (c *Cache) recover() error {
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	type found struct {
		e     entry
		mtime int64 // unix nanos, for the fallback ordering
	}
	byName := make(map[string]found)
	var names []string
	for _, de := range ents {
		name := de.Name()
		switch {
		case de.IsDir():
			continue
		case strings.HasSuffix(name, tmpSuffix):
			// An interrupted write's temp file: never renamed, so never
			// servable. Removing it is the whole cleanup.
			os.Remove(filepath.Join(c.dir, name))
			continue
		case name == indexName || !strings.HasSuffix(name, entrySuffix):
			continue
		}
		path := filepath.Join(c.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			// Unreadable at scan time: treat like corruption and move it
			// aside so the serving path never meets it.
			c.quarantineFile(name)
			continue
		}
		key, _, derr := DecodeEntry(data)
		if derr != nil || entryName(key) != name {
			c.quarantineFile(name)
			continue
		}
		info, err := de.Info()
		var mtime int64
		if err == nil {
			mtime = info.ModTime().UnixNano()
		}
		byName[name] = found{e: entry{key: key, name: name, size: int64(len(data))}, mtime: mtime}
		names = append(names, name)
	}

	// Recency: the index file (graceful close) lists names LRU-first;
	// entries it does not know about are newer than the flush (or the
	// flush never happened), so they follow in modification-time order.
	ordered := make([]string, 0, len(names))
	inIndex := make(map[string]bool)
	for _, name := range c.readIndexFile() {
		if _, ok := byName[name]; ok && !inIndex[name] {
			ordered = append(ordered, name)
			inIndex[name] = true
		}
	}
	rest := names[:0]
	for _, name := range names {
		if !inIndex[name] {
			rest = append(rest, name)
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		if byName[rest[i]].mtime != byName[rest[j]].mtime {
			return byName[rest[i]].mtime < byName[rest[j]].mtime
		}
		return rest[i] < rest[j]
	})
	ordered = append(ordered, rest...)

	for _, name := range ordered {
		f := byName[name]
		e := f.e
		c.index[e.key] = c.ll.PushFront(&e)
		c.bytes += e.size
	}
	// Budget may have shrunk since the files were written.
	c.evictLocked()
	return nil
}

// readIndexFile returns the recency order (LRU-first) a graceful Close
// persisted, or nil: the index is an ordering hint, so a missing,
// stale, or torn one costs accuracy, never correctness.
func (c *Cache) readIndexFile() []string {
	data, err := os.ReadFile(filepath.Join(c.dir, indexName))
	if err != nil {
		return nil
	}
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || lines[0] != indexHeader {
		return nil
	}
	return lines[1:]
}

// Get returns the stored body for key and whether it was served, plus
// the entry's access count so the caller can promote scan-resistantly
// (first disk hit: serve from disk; second: worth memory). A hit is
// only reported after the file re-decodes and its embedded key
// matches — a corrupt or mismatched file is quarantined and reported
// as a miss.
func (c *Cache) Get(key string) (body []byte, hits int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, present := c.index[key]
	if !present {
		c.misses++
		return nil, 0, false
	}
	if !c.brk.allow() {
		c.misses++
		return nil, 0, false
	}
	e := el.Value.(*entry)
	data, err := c.readEntry(e.name)
	if err != nil {
		c.brk.failure()
		c.misses++
		return nil, 0, false
	}
	gotKey, gotBody, derr := DecodeEntry(data)
	if derr != nil || gotKey != key {
		// Corruption under an indexed entry: the volume changed the
		// bytes after we wrote them. Quarantine is a containment
		// action, not an I/O failure — the breaker only judges whether
		// the disk answers, and it just did.
		c.brk.success()
		c.dropLocked(el)
		c.quarantineFile(e.name)
		c.misses++
		return nil, 0, false
	}
	c.brk.success()
	c.ll.MoveToFront(el)
	e.hits++
	c.hits++
	return gotBody, e.hits, true
}

// readEntry reads one entry file, honoring the fault-injection hook.
func (c *Cache) readEntry(name string) ([]byte, error) {
	if c.opts.FailOp != nil {
		if err := c.opts.FailOp("get"); err != nil {
			return nil, err
		}
	}
	return os.ReadFile(filepath.Join(c.dir, name))
}

// Put stores body under key. Storage failures are absorbed (the body
// stays servable from the memory tier and the flight that produced
// it); the breaker decides when to stop trying at all. A body whose
// entry would exceed the whole budget is rejected and counted. Callers
// must not mutate body afterwards.
func (c *Cache) Put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		// Results are deterministic: same key means same bytes, and the
		// scan or a previous Put verified them. Refresh recency only.
		c.ll.MoveToFront(el)
		return
	}
	encoded := EncodeEntry(key, body)
	size := int64(len(encoded))
	if c.opts.MaxBytes > 0 && size > c.opts.MaxBytes {
		c.rejected++
		return
	}
	if !c.brk.allow() {
		return
	}
	if c.opts.FailOp != nil {
		if err := c.opts.FailOp("put"); err != nil {
			c.brk.failure()
			return
		}
	}
	name := entryName(key)
	if c.opts.TornWrite != nil {
		if torn := c.opts.TornWrite(key, encoded); torn != nil {
			// Simulated machine crash: the entry lands torn under its
			// final name and this process never indexes it. The next
			// Open's scan must quarantine it.
			//detlint:allow lockdisc test-only torn-write hook: the simulated crash must land under the lock so the index never sees it
			os.WriteFile(filepath.Join(c.dir, name), torn, 0o644)
			return
		}
	}
	// Evict before writing so the budget holds even at the peak.
	c.bytes += size
	c.evictLocked()
	if err := c.writeAtomic(name, encoded); err != nil {
		c.bytes -= size
		c.brk.failure()
		return
	}
	c.brk.success()
	c.index[key] = c.ll.PushFront(&entry{key: key, name: name, size: size})
	c.writes++
}

// writeAtomic is the crash-safe write: temp file in the same
// directory, contents fsynced, atomic rename over the final name,
// directory fsynced best-effort (the rename is durable on its own for
// correctness — the directory sync narrows the window in which a
// power cut forgets a *successful* write, it never risks a torn one).
func (c *Cache) writeAtomic(name string, data []byte) error {
	tmp := filepath.Join(c.dir, name+tmpSuffix)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(c.dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(c.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// evictLocked removes least-recently-used entries until the byte
// budget holds. A file the OS refuses to delete is still dropped from
// the index (and the accounting): the next recovery scan will meet it
// again and either re-admit or re-evict it, which is the safe side of
// double-counting the budget forever.
func (c *Cache) evictLocked() {
	if c.opts.MaxBytes <= 0 {
		return
	}
	for c.bytes > c.opts.MaxBytes && c.ll.Len() > 0 {
		el := c.ll.Back()
		e := el.Value.(*entry)
		c.dropLocked(el)
		os.Remove(filepath.Join(c.dir, e.name))
		c.evictions++
	}
}

// dropLocked removes one element from the index and the accounting.
func (c *Cache) dropLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.index, e.key)
	c.bytes -= e.size
}

// quarantineFile moves a corrupt file aside and counts it. Quarantine
// keeps the evidence: operators can diff the file against what
// EncodeEntry would have produced and learn how the volume is failing.
// If even the rename fails, fall back to removal — a corrupt file must
// never stay where the scan could meet it again.
func (c *Cache) quarantineFile(name string) {
	src := filepath.Join(c.dir, name)
	if err := os.Rename(src, filepath.Join(c.dir, quarantineDir, name)); err != nil {
		os.Remove(src)
	}
	c.quarantined++
}

// Close flushes the recency index so the next Open restores LRU order
// exactly. Entry files need no flush — every one was durable the
// moment its Put returned. Close is part of graceful drain; a crash
// that skips it costs the ordering hint, nothing else.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sb strings.Builder
	sb.WriteString(indexHeader)
	for el := c.ll.Back(); el != nil; el = el.Prev() { // LRU-first
		sb.WriteString("\n")
		sb.WriteString(el.Value.(*entry).name)
	}
	if err := c.writeAtomic(indexName, []byte(sb.String())); err != nil {
		return fmt.Errorf("diskcache: flush index: %w", err)
	}
	return nil
}

// Stats returns a consistent snapshot of the tier's counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Writes:      c.writes,
		Evictions:   c.evictions,
		Quarantined: c.quarantined,
		Rejected:    c.rejected,
		Entries:     c.ll.Len(),
		Bytes:       c.bytes,
		State:       c.brk.state,
	}
}

// Len reports the number of servable entries (tests and logs).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
