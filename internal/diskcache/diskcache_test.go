package diskcache

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustOpen(t *testing.T, opts Options) *Cache {
	t.Helper()
	c, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPutGetRoundTrip(t *testing.T) {
	c := mustOpen(t, Options{Dir: t.TempDir()})
	body := []byte(`{"mean_seconds":1.25}`)
	c.Put("abc/3", body)
	got, hits, ok := c.Get("abc/3")
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("Get = %q, %v; want stored body", got, ok)
	}
	if hits != 1 {
		t.Fatalf("hits = %d, want 1 on first access", hits)
	}
	if _, hits, _ = c.Get("abc/3"); hits != 2 {
		t.Fatalf("hits = %d, want 2 on second access", hits)
	}
	st := c.Stats()
	if st.Writes != 1 || st.Hits != 2 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if _, _, ok := c.Get("nope"); ok {
		t.Fatal("Get of absent key succeeded")
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
}

func TestPutRefreshDoesNotRewrite(t *testing.T) {
	c := mustOpen(t, Options{Dir: t.TempDir()})
	c.Put("k/1", []byte("body"))
	c.Put("k/1", []byte("body"))
	if st := c.Stats(); st.Writes != 1 || st.Entries != 1 {
		t.Fatalf("stats after duplicate put = %+v, want one write, one entry", st)
	}
}

// TestRecoveryAfterCrash reopens a directory that was never Closed —
// the SIGKILL-equivalent. Every completed Put must be servable with
// byte-identical bodies; an interrupted write's temp file must be
// swept; a torn entry (machine-crash writeback loss, injected through
// the atomic-write hook) must be quarantined, not served.
func TestRecoveryAfterCrash(t *testing.T) {
	dir := t.TempDir()
	torn := false
	c := mustOpen(t, Options{Dir: dir, TornWrite: func(key string, encoded []byte) []byte {
		if !torn {
			return nil
		}
		return encoded[:len(encoded)/2] // half the entry reached the platter
	}})
	bodies := map[string][]byte{}
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("key%d/1", i)
		bodies[key] = []byte(strings.Repeat(fmt.Sprintf("body-%d ", i), 10))
		c.Put(key, bodies[key])
	}
	torn = true
	c.Put("torn/1", []byte("this entry dies in the machine crash"))
	// An orphan temp file from a write the crash interrupted earlier.
	if err := os.WriteFile(filepath.Join(dir, "deadbeef"+entrySuffix+tmpSuffix), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// No Close: the process is gone.

	r := mustOpen(t, Options{Dir: dir})
	if st := r.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1 (the torn entry)", st.Quarantined)
	}
	if got, err := filepath.Glob(filepath.Join(dir, quarantineDir, "*")); err != nil || len(got) != 1 {
		t.Fatalf("quarantine dir holds %v (err %v), want the one torn file", got, err)
	}
	if got, err := filepath.Glob(filepath.Join(dir, "*"+tmpSuffix)); err != nil || len(got) != 0 {
		t.Fatalf("temp files survived recovery: %v (err %v)", got, err)
	}
	if _, _, ok := r.Get("torn/1"); ok {
		t.Fatal("torn entry was served")
	}
	for key, want := range bodies {
		got, _, ok := r.Get(key)
		if !ok {
			t.Fatalf("%s lost across crash-restart", key)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s body differs across crash-restart", key)
		}
	}
}

// TestCloseRestoresLRUOrder checks that a graceful Close persists
// recency: after reopening, the entry that was least recently used
// before the close is the one a budget squeeze evicts first.
func TestCloseRestoresLRUOrder(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, Options{Dir: dir})
	pad := strings.Repeat("x", 100)
	c.Put("old/1", []byte("old"+pad))
	c.Put("mid/1", []byte("mid"+pad))
	c.Put("hot/1", []byte("hot"+pad))
	c.Get("old/1") // touch: now mid/1 is the LRU entry
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	entrySize := int64(len(EncodeEntry("old/1", []byte("old"+pad))))
	r := mustOpen(t, Options{Dir: dir, MaxBytes: 2 * entrySize})
	if st := r.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 under the shrunk budget", st.Evictions)
	}
	if _, _, ok := r.Get("mid/1"); ok {
		t.Fatal("mid/1 survived, but it was least recently used at close")
	}
	for _, kept := range []string{"old/1", "hot/1"} {
		if _, _, ok := r.Get(kept); !ok {
			t.Fatalf("%s was evicted though it was more recent", kept)
		}
	}
}

func TestEvictionUnderByteBudget(t *testing.T) {
	entry := func(i int) (string, []byte) {
		return fmt.Sprintf("k%d/1", i), bytes.Repeat([]byte{byte('a' + i)}, 64)
	}
	k0, b0 := entry(0)
	budget := 3 * int64(len(EncodeEntry(k0, b0)))
	c := mustOpen(t, Options{Dir: t.TempDir(), MaxBytes: budget})
	for i := 0; i < 5; i++ {
		k, b := entry(i)
		c.Put(k, b)
	}
	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 2 {
		t.Fatalf("entries %d evictions %d, want 3 and 2", st.Entries, st.Evictions)
	}
	if st.Bytes > budget {
		t.Fatalf("bytes %d over budget %d", st.Bytes, budget)
	}
	for _, gone := range []int{0, 1} {
		k, _ := entry(gone)
		if _, _, ok := c.Get(k); ok {
			t.Fatalf("%s survived eviction", k)
		}
	}
	for _, kept := range []int{2, 3, 4} {
		k, b := entry(kept)
		got, _, ok := c.Get(k)
		if !ok || !bytes.Equal(got, b) {
			t.Fatalf("%s = %q, %v", k, got, ok)
		}
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	c := mustOpen(t, Options{Dir: t.TempDir(), MaxBytes: 64})
	c.Put("big/1", bytes.Repeat([]byte("x"), 256))
	st := c.Stats()
	if st.Rejected != 1 || st.Writes != 0 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want the oversized body rejected, nothing written", st)
	}
}

// TestCorruptEntryQuarantinedOnRead flips bytes in a stored entry
// behind the cache's back; the next Get must quarantine it and report
// a miss, never serve the altered body.
func TestCorruptEntryQuarantinedOnRead(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, Options{Dir: dir})
	c.Put("victim/1", []byte("precious bytes"))
	path := filepath.Join(dir, entryName("victim/1"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get("victim/1"); ok {
		t.Fatal("corrupt entry was served")
	}
	st := c.Stats()
	if st.Quarantined != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want the entry quarantined and dropped", st)
	}
	if st.State != StateClosed {
		t.Fatalf("breaker state = %d after corruption, want closed (the disk answered)", st.State)
	}
	// A later Put of the same key stores a fresh, servable entry.
	c.Put("victim/1", []byte("precious bytes"))
	if got, _, ok := c.Get("victim/1"); !ok || string(got) != "precious bytes" {
		t.Fatalf("re-put entry = %q, %v", got, ok)
	}
}

// TestBreakerTripsAndRecovers forces I/O failures until the tier goes
// memory-only, then lets the volume heal and asserts a half-open probe
// closes the breaker again.
func TestBreakerTripsAndRecovers(t *testing.T) {
	injected := errors.New("injected EIO")
	c := mustOpen(t, Options{
		Dir:              t.TempDir(),
		FailureThreshold: 3,
		ProbeEvery:       4,
	})
	c.Put("seed/1", []byte("seed")) // stored while healthy
	c.opts.FailOp = func(op string) error { return injected }

	for i := 0; i < 3; i++ {
		if _, _, ok := c.Get("seed/1"); ok {
			t.Fatal("failing get served a body")
		}
	}
	if st := c.Stats(); st.State != StateOpen {
		t.Fatalf("state = %d after %d failures, want open", st.State, 3)
	}
	// While open, operations are skipped without touching the hook.
	calls := 0
	c.opts.FailOp = func(op string) error { calls++; return injected }
	for i := 0; i < 3; i++ {
		c.Get("seed/1")
	}
	if calls != 0 {
		t.Fatalf("tripped tier still reached the disk %d times", calls)
	}
	// The 4th skipped operation re-arms to half-open; the probe runs,
	// still fails, and the breaker re-opens.
	c.Get("seed/1")
	if st := c.Stats(); st.State != StateHalfOpen {
		t.Fatalf("state = %d, want half-open after ProbeEvery skips", st.State)
	}
	c.Get("seed/1") // the probe
	if st := c.Stats(); st.State != StateOpen {
		t.Fatalf("state = %d, want re-opened after a failed probe", st.State)
	}

	// Volume heals: the next probe succeeds and the tier closes.
	c.opts.FailOp = nil
	for i := 0; i < 4; i++ {
		c.Get("seed/1") // skips, then half-open
	}
	got, _, ok := c.Get("seed/1") // the probe, against a healthy disk
	if !ok || string(got) != "seed" {
		t.Fatalf("probe get = %q, %v; want the stored body", got, ok)
	}
	if st := c.Stats(); st.State != StateClosed {
		t.Fatalf("state = %d after successful probe, want closed", st.State)
	}
}

// TestWrongKeyFileNotServed plants a valid entry file under the name
// of a different key (a recycled or mis-renamed file): the embedded
// key check must refuse it at open time.
func TestWrongKeyFileNotServed(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, Options{Dir: dir})
	c.Put("honest/1", []byte("honest body"))
	// A valid entry for another key, copied over honest/1's file.
	if err := os.WriteFile(filepath.Join(dir, entryName("honest/1")), EncodeEntry("impostor/1", []byte("wrong body")), 0o644); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, Options{Dir: dir})
	if _, _, ok := r.Get("honest/1"); ok {
		t.Fatal("mismatched entry was served")
	}
	if st := r.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		key  string
		body string
	}{
		{"a/1", ""},
		{"deadbeef/64", `{"mean_seconds":0.5}`},
		{strings.Repeat("k", 80), strings.Repeat("v", 4096)},
	} {
		enc := EncodeEntry(tc.key, []byte(tc.body))
		key, body, err := DecodeEntry(enc)
		if err != nil {
			t.Fatalf("decode(encode(%q)): %v", tc.key, err)
		}
		if key != tc.key || string(body) != tc.body {
			t.Fatalf("round trip (%q, %q) → (%q, %q)", tc.key, tc.body, key, body)
		}
	}
}

func TestDecodeRejectsMutations(t *testing.T) {
	enc := EncodeEntry("key/2", []byte("some body bytes"))
	cases := map[string][]byte{
		"empty":            {},
		"short":            enc[:8],
		"truncated":        enc[:len(enc)-1],
		"trailing garbage": append(append([]byte{}, enc...), 0x00),
		"bad magic":        append([]byte("XXXX"), enc[4:]...),
	}
	flipped := append([]byte{}, enc...)
	flipped[headerSize+2] ^= 0x01
	cases["bit flip"] = flipped
	for name, data := range cases {
		if _, _, err := DecodeEntry(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}
