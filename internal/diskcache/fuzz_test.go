package diskcache

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeDiskCacheEntry drives arbitrary bytes through the on-disk
// codec — the exact bytes a recovery scan or a Get reads back from a
// volume that may have torn, truncated, zeroed, or bit-flipped them.
// The contract: DecodeEntry never panics, and any input it accepts is
// canonical — re-encoding the decoded (key, body) reproduces the input
// byte for byte, so a "successful" decode can never yield a body the
// CRC did not actually cover.
func FuzzDecodeDiskCacheEntry(f *testing.F) {
	f.Add(EncodeEntry("abc123/4", []byte(`{"mean_seconds":1.5}`)))
	f.Add(EncodeEntry("k/1", nil))
	f.Add(EncodeEntry(strings.Repeat("a", 80), bytes.Repeat([]byte{0xA5}, 300)))
	valid := EncodeEntry("mutate/2", []byte("body to mutate"))
	f.Add(valid[:len(valid)-1])                           // truncated trailer
	f.Add(append(append([]byte{}, valid...), 0x00))       // trailing byte
	f.Add(append([]byte("SDC2"), valid[4:]...))           // future version
	f.Add([]byte("SDC1"))                                 // header alone
	f.Add([]byte{})                                       // empty file
	f.Add(bytes.Repeat([]byte{0x00}, 64))                 // torn page of zeros
	f.Add([]byte("SDC1\xff\xff\xff\xff\xff\xff\xff\xff")) // absurd lengths

	f.Fuzz(func(t *testing.T, data []byte) {
		key, body, err := DecodeEntry(data)
		if err != nil {
			return // rejection is fine; not panicking is the contract
		}
		if !bytes.Equal(EncodeEntry(key, body), data) {
			t.Fatalf("accepted non-canonical input: key %q, %d body bytes from %d input bytes", key, len(body), len(data))
		}
	})
}
