package core

import "repro/internal/sim"

// Interval is one busy span of a disk on the simulated clock.
type Interval struct {
	Start, End sim.Time
}

// timelineCap bounds recorded intervals per disk so pathological runs
// cannot exhaust memory; at the paper's scale a disk serves a few
// thousand requests, well under the cap.
const timelineCap = 100_000

// timeline collects per-disk busy intervals when Config.RecordTimeline
// is set.
type timeline struct {
	disks   [][]Interval
	openAt  []sim.Time
	open    []bool
	dropped bool
}

func newTimeline(n int) *timeline {
	return &timeline{
		disks:  make([][]Interval, n),
		openAt: make([]sim.Time, n),
		open:   make([]bool, n),
	}
}

// observe records a busy transition of disk i.
func (t *timeline) observe(i int, at sim.Time, busy bool) {
	if busy {
		t.open[i] = true
		t.openAt[i] = at
		return
	}
	if !t.open[i] {
		return
	}
	t.open[i] = false
	if len(t.disks[i]) >= timelineCap {
		t.dropped = true
		return
	}
	t.disks[i] = append(t.disks[i], Interval{Start: t.openAt[i], End: at})
}

// finish closes any interval still open at the end instant.
func (t *timeline) finish(at sim.Time) {
	for i := range t.open {
		if t.open[i] {
			t.observe(i, at, false)
		}
	}
}
