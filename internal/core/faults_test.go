package core

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/faults"
)

// faulted returns the paper's base shape at reduced run length with one
// fail-slow disk, the grid the degraded-disk experiment sweeps.
func faulted(slowdown float64) Config {
	cfg := Default()
	cfg.K = 25
	cfg.D = 5
	cfg.N = 10
	cfg.BlocksPerRun = 100
	cfg.InterRun = true
	cfg.CacheBlocks = cfg.DefaultCache()
	if slowdown != 0 {
		cfg.Faults = &faults.Spec{Disks: []faults.DiskSpec{{Disk: 2, Slowdown: slowdown}}}
	}
	return cfg
}

// TestFailSlowMonotoneSlowdown pins the tentpole acceptance curve: a
// single degraded disk must slow the merge monotonically in its
// slowdown factor, and the engine must attribute the lost time.
func TestFailSlowMonotoneSlowdown(t *testing.T) {
	var prev Result
	for i, factor := range []float64{0, 2, 4, 8} {
		res := mustRun(t, faulted(factor))
		if i > 0 && res.TotalTime <= prev.TotalTime {
			t.Fatalf("slowdown %v total %v not above previous %v", factor, res.TotalTime, prev.TotalTime)
		}
		if factor == 0 {
			if res.Faults.Any() {
				t.Fatalf("healthy run has fault counters: %+v", res.Faults)
			}
		} else {
			if res.Faults.SlowdownTime <= 0 {
				t.Fatalf("slowdown %v attributed no slowdown time", factor)
			}
			if res.Faults.Retries != 0 || res.Faults.RetryTime != 0 || res.Faults.OutageTime != 0 {
				t.Fatalf("fail-slow run shows non-slowdown faults: %+v", res.Faults)
			}
			for d, s := range res.PerDisk {
				if (s.SlowdownTime > 0) != (d == 2) {
					t.Fatalf("disk %d slowdown time %v (only disk 2 is degraded)", d, s.SlowdownTime)
				}
			}
		}
		prev = res
	}
}

func TestSlowdownPhaseIn(t *testing.T) {
	full := mustRun(t, faulted(4))
	cfg := faulted(4)
	// Phase the slowdown in halfway through the healthy run's merge: less
	// of the run is degraded, so it must finish faster than degraded-from-
	// the-start but slower than healthy.
	healthy := mustRun(t, faulted(0))
	cfg.Faults.Disks[0].SlowdownAtMs = float64(healthy.TotalTime) / 2
	late := mustRun(t, cfg)
	if late.TotalTime >= full.TotalTime {
		t.Fatalf("late onset %v not faster than degraded-from-start %v", late.TotalTime, full.TotalTime)
	}
	if late.TotalTime <= healthy.TotalTime {
		t.Fatalf("late onset %v not slower than healthy %v", late.TotalTime, healthy.TotalTime)
	}
	if late.Faults.SlowdownTime <= 0 || late.Faults.SlowdownTime >= full.Faults.SlowdownTime {
		t.Fatalf("late onset attributed %v, want in (0, %v)", late.Faults.SlowdownTime, full.Faults.SlowdownTime)
	}
}

func TestTransientErrorsRetryAndRecover(t *testing.T) {
	cfg := faulted(0)
	cfg.Faults = &faults.Spec{Disks: []faults.DiskSpec{{Disk: 1, ReadErrorProb: 0.2}}}
	res := mustRun(t, cfg)
	if res.Faults.Retries == 0 || res.Faults.RetryTime <= 0 {
		t.Fatalf("p=0.2 produced no retries: %+v", res.Faults)
	}
	if res.MergedBlocks != cfg.TotalBlocks() {
		t.Fatalf("merged %d of %d blocks despite recovery", res.MergedBlocks, cfg.TotalBlocks())
	}
	for d, s := range res.PerDisk {
		if (s.Retries > 0) != (d == 1) {
			t.Fatalf("disk %d retries %d (only disk 1 is flaky)", d, s.Retries)
		}
	}
	healthy := mustRun(t, faulted(0))
	if res.TotalTime <= healthy.TotalTime {
		t.Fatalf("flaky run %v not slower than healthy %v", res.TotalTime, healthy.TotalTime)
	}
}

func TestOutageDelaysButCompletes(t *testing.T) {
	healthy := mustRun(t, faulted(0))
	cfg := faulted(0)
	// Take disk 0 down for the middle third of the healthy merge.
	start := float64(healthy.TotalTime) / 3
	cfg.Faults = &faults.Spec{Disks: []faults.DiskSpec{{
		Disk:    0,
		Outages: []faults.Window{{StartMs: start, EndMs: 2 * start}},
	}}}
	res := mustRun(t, cfg)
	if res.MergedBlocks != cfg.TotalBlocks() {
		t.Fatalf("merged %d of %d blocks after recovery", res.MergedBlocks, cfg.TotalBlocks())
	}
	if res.Faults.OutageTime <= 0 {
		t.Fatalf("outage attributed no wait time: %+v", res.Faults)
	}
	if res.TotalTime <= healthy.TotalTime {
		t.Fatalf("outage run %v not slower than healthy %v", res.TotalTime, healthy.TotalTime)
	}
}

func TestUnreadableDiskAbortsTyped(t *testing.T) {
	cfg := faulted(0)
	cfg.Faults = &faults.Spec{Disks: []faults.DiskSpec{{Disk: 3, ReadErrorProb: 1, MaxRetries: 2}}}
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("certain read errors did not abort the merge")
	}
	if !errors.Is(err, faults.ErrUnreadable) {
		t.Fatalf("error %v does not match faults.ErrUnreadable", err)
	}
	var ue *faults.UnreadableError
	if !errors.As(err, &ue) {
		t.Fatalf("error %v carries no *UnreadableError", err)
	}
	if ue.Disk != 3 || ue.Attempts != 3 {
		t.Fatalf("unreadable disk %d after %d attempts, want disk 3 after 3", ue.Disk, ue.Attempts)
	}
}

// TestFaultDeterminismAcrossWorkers is the ISSUE's determinism
// regression: identical seed and fault spec must yield byte-identical
// ResultJSON regardless of grid parallelism.
func TestFaultDeterminismAcrossWorkers(t *testing.T) {
	cfg := faulted(2)
	cfg.Faults.Disks[0].ReadErrorProb = 0.1
	cfg.Faults.Disks[0].Outages = []faults.Window{{StartMs: 500, EndMs: 1500}}

	marshal := func(workers int) []byte {
		aggs, err := RunGrid([]Config{cfg}, 3, workers)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := json.Marshal(NewResultJSON(aggs[0]))
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	serial := marshal(1)
	if string(serial) != string(marshal(1)) {
		t.Fatal("serial fault runs are not reproducible")
	}
	if string(serial) != string(marshal(8)) {
		t.Fatal("fault ResultJSON differs between workers=1 and workers=8")
	}
}

// TestZeroFaultByteIdentity pins the pay-for-what-you-use guarantee:
// attaching a nil or empty fault spec changes neither the simulated
// result bytes nor (for nil) the cache key.
func TestZeroFaultByteIdentity(t *testing.T) {
	base := faulted(0)
	baseJSON := func(c Config) string {
		agg, err := RunTrials(c, 2)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := json.Marshal(NewResultJSON(agg))
		if err != nil {
			t.Fatal(err)
		}
		return string(buf)
	}
	want := baseJSON(base)
	withEmpty := base
	withEmpty.Faults = &faults.Spec{}
	if got := baseJSON(withEmpty); got != want {
		t.Fatal("empty fault spec perturbed the result bytes")
	}

	baseHash, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	emptyHash, err := withEmpty.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if emptyHash != baseHash {
		t.Fatal("empty fault spec changed the cache key")
	}
	faultyCfg := faulted(2)
	faultyHash, err := faultyCfg.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if faultyHash == baseHash {
		t.Fatal("fail-slow spec did not change the cache key")
	}
}

// TestFaultCountersInResultJSON pins the wire schema: fault counters
// appear on faulted runs and are absent (omitempty) on healthy ones.
func TestFaultCountersInResultJSON(t *testing.T) {
	agg, err := RunTrials(faulted(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(NewResultJSON(agg))
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Results []struct {
			SlowdownSeconds float64 `json:"fault_slowdown_seconds"`
			Disks           []struct {
				SlowdownSeconds float64 `json:"fault_slowdown_seconds"`
			} `json:"disks"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Results[0].SlowdownSeconds <= 0 {
		t.Fatalf("trial-level fault_slowdown_seconds missing from %s", buf)
	}
	if decoded.Results[0].Disks[2].SlowdownSeconds <= 0 {
		t.Fatalf("disk-level fault_slowdown_seconds missing from %s", buf)
	}

	healthy, err := RunTrials(faulted(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	buf, err = json.Marshal(NewResultJSON(healthy))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"fault_retries", "fault_retry_seconds", "fault_outage_seconds", "fault_slowdown_seconds"} {
		if strings.Contains(string(buf), `"`+key+`"`) {
			t.Fatalf("healthy run emits %q: %s", key, buf)
		}
	}
}
