package core

import (
	"bytes"
	"testing"

	"repro/internal/faults"
	"repro/internal/trace"
)

// tracedConfig is a small merge exercising every instrumented path:
// inter-run prefetching, a finite-speed CPU, output modelling on a
// separate write disk, and a degraded disk (slowdown + retries).
func tracedConfig() Config {
	cfg := Default()
	cfg.K = 6
	cfg.D = 3
	cfg.BlocksPerRun = 40
	cfg.N = 3
	cfg.InterRun = true
	cfg.CacheBlocks = cfg.DefaultCache()
	cfg.MergeTimePerBlock = 0.05
	cfg.Write = WriteConfig{Enabled: true, Disks: 1}
	cfg.Faults = &faults.Spec{Disks: []faults.DiskSpec{{
		Disk:          1,
		Slowdown:      1.5,
		SlowdownAtMs:  50,
		ReadErrorProb: 0.05,
	}}}
	cfg.Seed = 42
	return cfg
}

// runTraced runs one traced replication on a grid with the given worker
// count and returns the aggregate plus the Chrome export bytes.
func runTraced(t *testing.T, workers int) (Aggregate, []byte) {
	t.Helper()
	cfg := tracedConfig()
	cfg.Trace = trace.New(0)
	aggs, err := RunGrid([]Config{cfg}, 1, workers)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.Trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if cfg.Trace.Len() == 0 {
		t.Fatal("traced run recorded no events")
	}
	if len(cfg.Trace.DiskSpans()) == 0 || len(cfg.Trace.CPUSpans()) == 0 ||
		len(cfg.Trace.PrefetchSpans()) == 0 || len(cfg.Trace.CacheSamples()) == 0 {
		t.Fatalf("span categories missing: disk=%d cpu=%d prefetch=%d cache=%d",
			len(cfg.Trace.DiskSpans()), len(cfg.Trace.CPUSpans()),
			len(cfg.Trace.PrefetchSpans()), len(cfg.Trace.CacheSamples()))
	}
	return aggs[0], buf.Bytes()
}

// TestTraceByteIdentity pins the tentpole determinism guarantee: for a
// fixed config and seed the exported trace is byte-identical at any
// worker count (traced grids are forced serial, and the recorder sees
// kernel event order, which is a pure function of config and seed).
func TestTraceByteIdentity(t *testing.T) {
	agg1, trace1 := runTraced(t, 1)
	agg8, trace8 := runTraced(t, 8)
	if !bytes.Equal(trace1, trace8) {
		t.Fatalf("trace bytes differ across worker counts: %d vs %d bytes", len(trace1), len(trace8))
	}
	if agg1.Results[0].TotalTime != agg8.Results[0].TotalTime {
		t.Fatalf("results differ across worker counts: %v vs %v",
			agg1.Results[0].TotalTime, agg8.Results[0].TotalTime)
	}
}

// TestTraceIsObservationOnly asserts a traced run produces exactly the
// result of an untraced one, and that tracing does not perturb the
// config's canonical hash (the service result cache depends on both).
func TestTraceIsObservationOnly(t *testing.T) {
	plain := tracedConfig()
	res, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	traced := tracedConfig()
	traced.Trace = trace.New(0)
	tres, err := Run(traced)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime != tres.TotalTime || res.StallTime != tres.StallTime ||
		res.Decisions != tres.Decisions || res.CachePeak != tres.CachePeak {
		t.Fatalf("traced result diverges: %+v vs %+v", res, tres)
	}
	ph, err := plain.Hash()
	if err != nil {
		t.Fatal(err)
	}
	th, err := traced.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ph != th {
		t.Fatalf("Trace field leaked into the canonical hash: %s vs %s", ph, th)
	}
}

// TestTraceOutageSpan asserts an outage window surfaces as an outage
// phase span on the affected disk's track.
func TestTraceOutageSpan(t *testing.T) {
	cfg := tracedConfig()
	cfg.Faults = &faults.Spec{Disks: []faults.DiskSpec{{
		Disk:    0,
		Outages: []faults.Window{{StartMs: 0.5, EndMs: 30}},
	}}}
	cfg.Trace = trace.New(0)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	for _, s := range cfg.Trace.DiskSpans() {
		if s.Phase == trace.PhaseOutage {
			if got := cfg.Trace.TrackName(s.Track); got != "disk 0" {
				t.Fatalf("outage span on track %q, want disk 0", got)
			}
			return
		}
	}
	t.Fatal("no outage span recorded")
}
