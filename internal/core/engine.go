package core

import (
	"fmt"

	"repro/internal/stats"

	"repro/internal/cache"
	"repro/internal/disk"
	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// engine holds the live state of one simulated merge.
type engine struct {
	cfg Config

	k      *sim.Kernel
	lay    *layout.Layout
	disks  []*disk.Disk
	cache  *cache.Cache
	model  workload.Model
	pick   *rng.Stream // inter-run prefetch run choice
	rrNext []int       // RoundRobinRun cursor per disk

	// Per-run bookkeeping. nextFetch[r] is the next block index of run
	// r to request from disk; inflight[r] counts requested,
	// not-yet-deposited blocks.
	nextFetch []int
	inflight  []int

	// consumedOf[r] counts merged blocks of run r; active lists runs
	// with unmerged blocks, positions tracked for O(1) removal.
	consumedOf []int
	active     []int
	activePos  []int

	// runArrival[r] is broadcast whenever a block of run r is deposited
	// (process engine only; the event machine watches arrivals directly).
	runArrival []*sim.Signal

	// m is the event-mode merge state machine (nil under EngineProcess).
	m *machine

	// Reusable planning buffers: one I/O decision is made per demand
	// miss, and planFetch runs entirely inside them so the steady state
	// allocates nothing. picked and inSet are cleared after every use.
	nominees []piece
	batchBuf []piece
	eligible []int
	picked   []bool
	inSet    []bool
	extBuf   []layout.Extent

	// Pooled in-flight request wrappers for the event-mode zero-alloc
	// submit paths (see machine.go).
	fetchFree []*fetchWrap
	writeFree []*writeWrap

	// Disk-concurrency accounting.
	busyCount    int
	lastBusyT    sim.Time
	busyIntegral float64
	nonZeroTime  float64

	// Output modelling (nil unless cfg.Write.Enabled).
	writer   *writer
	writeRot *rng.Stream

	// timeline is non-nil when cfg.RecordTimeline is set.
	timeline *timeline

	// Adaptive prefetch depth (AIMD; equals cfg.N when not adaptive).
	curN        int
	admitStreak int
	sumDepth    int64

	// Outcome counters.
	decisions      int64
	fullPrefetches int64
	stallTime      sim.Time
	stallHist      *stats.Histogram
	finish         sim.Time
}

// Run simulates one merge under cfg and returns its Result.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	e, err := newEngine(cfg)
	if err != nil {
		return Result{}, err
	}
	if CurrentEngineMode() == EngineProcess {
		e.k.Spawn("cpu", e.cpu)
	} else {
		e.m = newMachine(e)
		e.m.start()
	}
	if cfg.MaxSimTime > 0 {
		if err := e.k.RunUntil(cfg.MaxSimTime); err != nil {
			return Result{}, e.runError(err)
		}
		if e.finish == 0 { // CPU never completed: horizon reached
			e.finish = e.k.Now()
			res := e.result()
			res.TimedOut = true
			return res, nil
		}
		return e.result(), nil
	}
	if err := e.k.Run(); err != nil {
		return Result{}, e.runError(err)
	}
	return e.result(), nil
}

// runError translates a kernel failure: a stop triggered by an
// unreadable disk surfaces its typed fault (matchable with
// errors.Is(err, faults.ErrUnreadable)); anything else is a simulation
// failure.
func (e *engine) runError(err error) error {
	for _, d := range e.disks {
		if ferr := d.FaultError(); ferr != nil {
			return fmt.Errorf("core: %w", ferr)
		}
	}
	return fmt.Errorf("core: simulation failed: %w", err)
}

// RunTrials simulates trials independent replications (seeds Seed,
// Seed+1, ...) and aggregates them: a single-point RunGrid on the
// default worker pool. Replications run on parallel goroutines when no
// Tracer or request observer is installed; results are aggregated in
// trial order, so the outcome is identical to a serial run.
func RunTrials(cfg Config, trials int) (Aggregate, error) {
	aggs, err := RunGrid([]Config{cfg}, trials, 0)
	if err != nil {
		return Aggregate{}, err
	}
	return aggs[0], nil
}

func newEngine(cfg Config) (*engine, error) {
	k := sim.New()
	if cfg.Tracer != nil {
		k.SetTracer(cfg.Tracer)
	} else if cfg.Trace != nil {
		// The recorder doubles as the kernel tracer so process lifecycle
		// events land as marks on the CPU track.
		k.SetTracer(cfg.Trace)
	}
	lay, err := layout.NewLengths(cfg.Placement, cfg.runLengths(), cfg.D)
	if err != nil {
		return nil, err
	}
	c, err := cache.New(cfg.CacheBlocks, cfg.K)
	if err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	e := &engine{
		cfg:        cfg,
		k:          k,
		lay:        lay,
		cache:      c,
		pick:       root.Split("prefetch-pick"),
		rrNext:     make([]int, cfg.D),
		nextFetch:  make([]int, cfg.K),
		inflight:   make([]int, cfg.K),
		consumedOf: make([]int, cfg.K),
		active:     make([]int, cfg.K),
		activePos:  make([]int, cfg.K),
		runArrival: make([]*sim.Signal, cfg.K),
		nominees:   make([]piece, 0, cfg.D+1),
		batchBuf:   make([]piece, 0, cfg.D+1),
		eligible:   make([]int, 0, cfg.K),
		picked:     make([]bool, cfg.K),
		inSet:      make([]bool, cfg.K),
		extBuf:     make([]layout.Extent, 0, cfg.D),
	}
	e.stallHist = stats.NewHistogram(0, 200, 400) // per-miss stall, ms
	e.curN = cfg.N
	if cfg.AdaptiveN {
		e.curN = 1 // start conservatively; successes raise the depth
	}
	e.model = cfg.Workload
	if e.model == nil && cfg.WorkloadFactory != nil {
		// Direct Run calls are a single replication: trial 0.
		e.model = cfg.WorkloadFactory(0)
	}
	if e.model == nil {
		e.model = &workload.Uniform{R: root.Split("depletion")}
	}
	for r := 0; r < cfg.K; r++ {
		e.active[r] = r
		e.activePos[r] = r
		e.runArrival[r] = k.NewSignal()
	}
	var inj *faults.Injector
	if cfg.Faults != nil {
		inj = faults.NewInjector(*cfg.Faults, cfg.D, root.Split("faults"))
	}
	for d := 0; d < cfg.D; d++ {
		dk, err := disk.New(k, d, cfg.Disk, root.SplitIndexed("disk", d))
		if err != nil {
			return nil, err
		}
		dk.SetBusyObserver(e.observerFor(d))
		if cfg.OnRequest != nil {
			dk.SetRequestObserver(cfg.OnRequest)
		}
		dk.SetFaultInjector(inj.Disk(d))
		if cfg.Trace != nil {
			// Track 0 is the CPU; input disk d records on track 1+d.
			cfg.Trace.Track(trace.CPUTrack+1+d, fmt.Sprintf("disk %d", d))
			dk.SetTrace(cfg.Trace, trace.CPUTrack+1+d)
			if di := inj.Disk(d); di != nil {
				di.SetTrace(cfg.Trace, trace.CPUTrack+1+d)
			}
		}
		e.disks = append(e.disks, dk)
	}
	if cfg.Trace != nil {
		cfg.Trace.Track(trace.CPUTrack, "cpu")
		cfg.Trace.CacheSample(0, 0)
		c.SetOccupancyObserver(func(occ int) { cfg.Trace.CacheSample(k.Now(), occ) })
	}
	e.writeRot = root.Split("write")
	w, err := newWriter(e)
	if err != nil {
		return nil, err
	}
	e.writer = w
	if cfg.RecordTimeline {
		n := len(e.disks)
		if w != nil && !w.cfg.Shared {
			n += len(w.disks)
		}
		e.timeline = newTimeline(n)
	}
	return e, nil
}

// observerFor returns the busy observer for disk index i, feeding both
// the concurrency integral and, when enabled, the timeline.
func (e *engine) observerFor(i int) func(at sim.Time, busy bool) {
	return func(at sim.Time, busy bool) {
		e.observeBusy(at, busy)
		if e.timeline != nil {
			e.timeline.observe(i, at, busy)
		}
	}
}

// observeBusy integrates the number of concurrently busy disks.
func (e *engine) observeBusy(at sim.Time, busy bool) {
	dt := float64(at - e.lastBusyT)
	e.busyIntegral += float64(e.busyCount) * dt
	if e.busyCount > 0 {
		e.nonZeroTime += dt
	}
	e.lastBusyT = at
	if busy {
		e.busyCount++
	} else {
		e.busyCount--
	}
}

// remainingToFetch returns how many blocks of run r are neither fetched
// nor being fetched.
func (e *engine) remainingToFetch(r int) int {
	return e.lay.RunLength(r) - e.nextFetch[r]
}

// deactivate removes run r from the active set in O(1).
func (e *engine) deactivate(r int) {
	pos := e.activePos[r]
	last := len(e.active) - 1
	moved := e.active[last]
	e.active[pos] = moved
	e.activePos[moved] = pos
	e.active = e.active[:last]
	e.activePos[r] = -1
}

// cpu is the merge process: the paper's simulation loop.
func (e *engine) cpu(p *sim.Proc) {
	e.initialLoad(p)
	total := e.cfg.TotalBlocks()
	for merged := int64(0); merged < total; merged++ {
		j := e.model.Choose(e.active)

		// The invariant of the paper's loop is that every active run has
		// its leading block cached; replayed or skewed workloads can
		// break it, so wait defensively.
		if e.cache.Available(j) == 0 {
			e.fetchAndWait(p, j)
		}

		e.cache.Consume(j)
		e.consumedOf[j]++
		if e.consumedOf[j] == e.lay.RunLength(j) {
			e.deactivate(j)
		} else if e.cache.Available(j) == 0 {
			// The run's cached blocks are exhausted: the next block is
			// the demand-fetch block (paper §2). Fetch and wait per the
			// configured synchronization before merging proceeds.
			e.fetchAndWait(p, j)
		}

		if e.cfg.MergeTimePerBlock > 0 {
			t0 := p.Now()
			p.Sleep(e.cfg.MergeTimePerBlock)
			e.cfg.Trace.CPUSpan(trace.CPUCompute, t0, p.Now())
		}
		if e.writer != nil {
			e.writer.produce(p)
		}
	}
	if e.writer != nil {
		e.writer.drain(p)
	}
	e.finish = p.Now()
}

// fetchAndWait brings run j's next block into the cache: issues a fetch
// if one is not already in flight, then waits per the synchronization
// mode (whole batch when synchronized, demand block only otherwise).
func (e *engine) fetchAndWait(p *sim.Proc, j int) {
	start := p.Now()
	var batch []*sim.Completion
	if e.nextFetch[j] <= e.cache.NextToConsume(j) {
		batch = e.issueFetch(j)
	}
	if e.cfg.Synchronized {
		p.AwaitAll(batch...)
	}
	p.WaitFor(e.runArrival[j], func() bool { return e.cache.Available(j) > 0 })
	stall := p.Now() - start
	e.stallTime += stall
	e.stallHist.Add(stall.Milliseconds())
	e.cfg.Trace.CPUStallOn(j, start, p.Now())
}

// piece is one run's share of a fetch batch.
type piece struct {
	run int
	n   int
}

// planFetch performs one I/O decision for demand run j: it nominates a
// piece per disk (inter-run mode), sizes the batch against the cache's
// admission policy, and returns the trimmed batch. The result aliases
// the engine's reusable planning buffers and is valid until the next
// call. Both engine modes share it, so a decision is bit-for-bit the
// same under either.
func (e *engine) planFetch(j int) []piece {
	e.decisions++
	depth := e.curN
	e.sumDepth += int64(depth)

	wantJ := min(depth, e.remainingToFetch(j))
	if wantJ <= 0 {
		panic(fmt.Sprintf("core: demand fetch on exhausted run %d", j))
	}
	nominees := append(e.nominees[:0], piece{j, wantJ})
	want := wantJ

	if e.cfg.InterRun {
		home := e.homeDiskOf(j)
		// Under striped placement every run is resident on every disk,
		// so two disks could nominate the same run; picked prevents a
		// run from entering the batch twice.
		e.picked[j] = true
		for d := 0; d < e.cfg.D; d++ {
			if d == home {
				continue
			}
			r := e.choosePrefetchRun(d)
			if r < 0 {
				continue
			}
			e.picked[r] = true
			n := min(depth, e.remainingToFetch(r))
			nominees = append(nominees, piece{r, n})
			want += n
		}
	}
	e.nominees = nominees
	batch := nominees

	adm := e.cfg.Admission.Admit(e.cache, want)
	if adm.Full {
		e.fullPrefetches++
		e.adaptOnAdmit()
	} else {
		e.adaptOnReject()
		// Trim the batch to the admitted size. All-or-demand reduces to
		// the demand block alone; greedy keeps the demand run's piece
		// first and then fills the others in order with what fits.
		budget := adm.Blocks
		batch = e.batchBuf[:0]
		for i := range nominees {
			if budget == 0 {
				break
			}
			n := min(nominees[i].n, budget)
			if i == 0 && adm.Blocks < wantJ {
				n = min(n, adm.Blocks) // demand piece may shrink below N
			}
			batch = append(batch, piece{nominees[i].run, n})
			budget -= n
		}
		e.batchBuf = batch
	}

	if e.cfg.InterRun {
		for _, pc := range nominees {
			e.picked[pc.run] = false
		}
	}
	return batch
}

// issueFetch plans and submits the batch for demand run j on the
// process engine's completion-latch path. It returns the Done
// completions of all submitted requests.
func (e *engine) issueFetch(j int) []*sim.Completion {
	var completions []*sim.Completion
	for _, pc := range e.planFetch(j) {
		if !e.cache.Reserve(pc.n) {
			// Unreachable by construction: admission just checked space,
			// and the merge loop freed the demand block's slot first.
			panic("core: reservation failed after admission")
		}
		run := pc.run
		from := e.nextFetch[run]
		e.nextFetch[run] += pc.n
		e.inflight[run] += pc.n
		issued := e.k.Now()
		for _, ext := range e.lay.Extents(run, from, pc.n) {
			ext := ext
			req := &disk.Request{
				Start: ext.Start,
				Count: ext.Count,
				Tag:   run,
				OnBlock: func(i int, at sim.Time) {
					e.cache.Deposit(run, ext.BlockIndex(i))
					e.inflight[run]--
					e.runArrival[run].Broadcast()
					if i == ext.Count-1 {
						e.cfg.Trace.Prefetch(trace.CPUTrack+1+ext.Disk, run, ext.Count, issued, at)
					}
				},
			}
			e.disks[ext.Disk].Submit(req)
			completions = append(completions, req.Done)
		}
	}
	return completions
}

// homeDiskOf returns the disk that serves run r's demand fetch: its
// home disk for contiguous placements, or the disk holding the next
// block for striped placement.
func (e *engine) homeDiskOf(r int) int {
	if h := e.lay.HomeDisk(r); h >= 0 {
		return h
	}
	next := e.nextFetch[r]
	if next >= e.lay.RunLength(r) {
		next = e.lay.RunLength(r) - 1
	}
	return e.lay.DiskOf(r, next)
}

// choosePrefetchRun picks the run to prefetch on disk d per the
// configured policy, or -1 if no eligible run exists. Runs in e.picked
// (the demand run and runs already in this batch) are never chosen.
func (e *engine) choosePrefetchRun(d int) int {
	eligible := e.eligible[:0]
	for _, r := range e.lay.RunsOnDisk(d) {
		if !e.picked[r] && e.remainingToFetch(r) > 0 {
			eligible = append(eligible, r)
		}
	}
	e.eligible = eligible
	if len(eligible) == 0 {
		return -1
	}
	switch e.cfg.RunPolicy {
	case RandomRun:
		return eligible[e.pick.Intn(len(eligible))]
	case LeastBufferedRun:
		best, bestBuf := -1, int(^uint(0)>>1)
		for _, r := range eligible {
			buf := e.cache.Available(r) + e.inflight[r]
			if buf < bestBuf {
				best, bestBuf = r, buf
			}
		}
		return best
	case RoundRobinRun:
		r := eligible[e.rrNext[d]%len(eligible)]
		e.rrNext[d]++
		return r
	case OracleRun:
		if la, ok := e.model.(workload.Lookahead); ok {
			// The first future depletion naming an eligible run is the
			// most urgent prefetch this disk can make.
			const horizon = 4096
			for _, r := range eligible {
				e.inSet[r] = true
			}
			found := -1
			for i := 0; i < horizon; i++ {
				r, ok := la.Peek(i)
				if !ok {
					break
				}
				if e.inSet[r] {
					found = r
					break
				}
			}
			for _, r := range eligible {
				e.inSet[r] = false
			}
			if found >= 0 {
				return found
			}
		}
		return eligible[e.pick.Intn(len(eligible))]
	default:
		panic("core: unknown prefetch run policy")
	}
}

// initialLoad fills the cache with the first blocks of every run — N
// per run when the cache allows, at least one — and waits for all of
// them, as in the paper's initial state.
func (e *engine) initialLoad(p *sim.Proc) {
	base := min(e.cfg.N, e.cfg.CacheBlocks/e.cfg.K)
	if base < 1 {
		base = 1
	}
	var completions []*sim.Completion
	for r := 0; r < e.cfg.K; r++ {
		per := min(base, e.lay.RunLength(r))
		if !e.cache.Reserve(per) {
			panic("core: initial load exceeds cache")
		}
		e.nextFetch[r] = per
		e.inflight[r] = per
		run := r
		issued := p.Now()
		for _, ext := range e.lay.Extents(r, 0, per) {
			ext := ext
			req := &disk.Request{
				Start: ext.Start,
				Count: ext.Count,
				Tag:   run,
				OnBlock: func(i int, at sim.Time) {
					e.cache.Deposit(run, ext.BlockIndex(i))
					e.inflight[run]--
					e.runArrival[run].Broadcast()
					if i == ext.Count-1 {
						e.cfg.Trace.Prefetch(trace.CPUTrack+1+ext.Disk, run, ext.Count, issued, at)
					}
				},
			}
			e.disks[ext.Disk].Submit(req)
			completions = append(completions, req.Done)
		}
	}
	start := p.Now()
	p.AwaitAll(completions...)
	e.cfg.Trace.CPUSpan(trace.CPUStall, start, p.Now())
}

func (e *engine) result() Result {
	// Close the concurrency window at the finish instant.
	dt := float64(e.finish - e.lastBusyT)
	if dt > 0 {
		e.busyIntegral += float64(e.busyCount) * dt
		if e.busyCount > 0 {
			e.nonZeroTime += dt
		}
		e.lastBusyT = e.finish
	}
	res := Result{
		Config:         e.cfg,
		TotalTime:      e.finish,
		MergedBlocks:   e.cfg.TotalBlocks(),
		Decisions:      e.decisions,
		FullPrefetches: e.fullPrefetches,
		StallTime:      e.stallTime,
		CachePeak:      int64(e.cache.PeakOccupied()),
		MeanDepth:      float64(e.cfg.N),
	}
	if e.decisions > 0 {
		res.MeanDepth = float64(e.sumDepth) / float64(e.decisions)
	}
	if e.finish > 0 {
		res.MeanConcurrency = e.busyIntegral / float64(e.finish)
	}
	if e.nonZeroTime > 0 {
		res.MeanConcurrencyWhenBusy = e.busyIntegral / e.nonZeroTime
	}
	for _, d := range e.disks {
		res.PerDisk = append(res.PerDisk, d.Stats())
		res.Faults.add(d.Stats())
	}
	if e.writer != nil {
		res.WrittenBlocks = e.writer.written
		res.WriteStall = e.writer.writeStall
		if !e.writer.cfg.Shared {
			for _, d := range e.writer.disks {
				res.PerWriteDisk = append(res.PerWriteDisk, d.Stats())
			}
		}
	}
	if e.timeline != nil {
		e.timeline.finish(e.finish)
		res.Timeline = e.timeline.disks
	}
	res.StallHistogram = e.stallHist
	return res
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// adaptOnAdmit raises the adaptive depth additively after a streak of
// fully admitted batches.
func (e *engine) adaptOnAdmit() {
	if !e.cfg.AdaptiveN {
		return
	}
	e.admitStreak++
	// Raising on every admit overshoots straight into rejection; a
	// short streak keeps the controller near the knee.
	if e.admitStreak >= 4 && e.curN < e.cfg.N {
		e.curN++
		e.admitStreak = 0
	}
}

// adaptOnReject halves the adaptive depth when a full batch would not
// fit the cache.
func (e *engine) adaptOnReject() {
	if !e.cfg.AdaptiveN {
		return
	}
	e.admitStreak = 0
	if e.curN > 1 {
		e.curN /= 2
	}
}
