package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/disk"
	"repro/internal/layout"
)

// TestTrialsParallelDeterminism verifies the parallel trial runner
// produces exactly the serial aggregation (trials are seed-indexed and
// aggregated in order, so parallelism must be invisible).
func TestTrialsParallelDeterminism(t *testing.T) {
	cfg := small()
	cfg.N = 3
	cfg.InterRun = true
	cfg.CacheBlocks = cfg.DefaultCache()
	a, err := RunTrials(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrials(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTime.Mean() != b.TotalTime.Mean() || a.TotalTime.Variance() != b.TotalTime.Variance() {
		t.Fatalf("parallel trial aggregation not deterministic: %v vs %v", a.TotalTime, b.TotalTime)
	}
	for i := range a.Results {
		if a.Results[i].TotalTime != b.Results[i].TotalTime {
			t.Fatalf("trial %d differs between runs", i)
		}
	}
}

// TestConservationProperties drives randomized configurations and
// checks the conservation laws every simulation must satisfy:
//
//   - every disk block read equals every cache deposit equals every
//     consumed block equals K × BlocksPerRun (reads), plus writes;
//   - per-disk blocks match the layout's residency;
//   - stall time within [0, total]; concurrency within [0, D];
//   - cache peak within capacity; success ratio within [0, 1].
func TestConservationProperties(t *testing.T) {
	check := func(seed uint16, kSel, dSel, nSel, strat, place uint8) bool {
		k := int(kSel%10) + 2  // 2..11 runs
		d := int(dSel)%k%4 + 1 // 1..4 disks, <= k
		n := int(nSel%6) + 1   // 1..6
		blocks := 40
		cfg := Default()
		cfg.K = k
		cfg.D = d
		cfg.BlocksPerRun = blocks
		cfg.N = n
		cfg.InterRun = strat&1 != 0
		cfg.Synchronized = strat&2 != 0
		cfg.Admission = cache.AllOrDemand
		if strat&4 != 0 {
			cfg.Admission = cache.Greedy
		}
		switch place % 3 {
		case 0:
			cfg.Placement = layout.RoundRobin
		case 1:
			cfg.Placement = layout.Clustered
		case 2:
			cfg.Placement = layout.Striped
		}
		if cfg.Placement == layout.Striped && blocks < d {
			return true
		}
		cfg.Disk.Rotational = disk.RotUniform
		cfg.CacheBlocks = cfg.DefaultCache() + int(seed%64)
		cfg.Seed = uint64(seed) + 1

		res, err := Run(cfg)
		if err != nil {
			t.Logf("config rejected: %v", err)
			return true // invalid combinations may be rejected, not wrong
		}
		total := int64(k * blocks)
		if res.MergedBlocks != total {
			t.Logf("merged %d != %d", res.MergedBlocks, total)
			return false
		}
		var read int64
		for _, ds := range res.PerDisk {
			read += ds.Blocks
		}
		if read != total {
			t.Logf("disks read %d != %d", read, total)
			return false
		}
		if res.StallTime < 0 || res.StallTime > res.TotalTime {
			t.Logf("stall %v outside [0,%v]", res.StallTime, res.TotalTime)
			return false
		}
		if res.MeanConcurrency < 0 || res.MeanConcurrency > float64(d)+1e-9 {
			t.Logf("concurrency %v outside [0,%d]", res.MeanConcurrency, d)
			return false
		}
		if sr := res.SuccessRatio(); sr < 0 || sr > 1 {
			t.Logf("success ratio %v", sr)
			return false
		}
		if res.CachePeak > int64(cfg.CacheBlocks) {
			t.Logf("cache peak %d > capacity %d", res.CachePeak, cfg.CacheBlocks)
			return false
		}
		if res.FullPrefetches > res.Decisions {
			t.Logf("full %d > decisions %d", res.FullPrefetches, res.Decisions)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestConservationWithWrites extends the conservation check to output
// modelling: reads + writes are both conserved.
func TestConservationWithWrites(t *testing.T) {
	check := func(seed uint16, shared bool, wd uint8) bool {
		cfg := Default()
		cfg.K = 8
		cfg.D = 2
		cfg.BlocksPerRun = 50
		cfg.N = 4
		cfg.InterRun = true
		cfg.CacheBlocks = cache.Unlimited
		cfg.Seed = uint64(seed) + 1
		cfg.Write = WriteConfig{Enabled: true, Shared: shared, Disks: int(wd%3) + 1}
		res, err := Run(cfg)
		if err != nil {
			return true
		}
		if res.WrittenBlocks != res.MergedBlocks {
			return false
		}
		var moved int64
		for _, ds := range res.PerDisk {
			moved += ds.Blocks
		}
		for _, ds := range res.PerWriteDisk {
			moved += ds.Blocks
		}
		return moved == 2*res.MergedBlocks
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
