package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/disk"
	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// withEngineMode runs fn under the given mode and restores the default.
func withEngineMode(t *testing.T, m EngineMode, fn func()) {
	t.Helper()
	SetEngineMode(m)
	defer SetEngineMode(EngineEvent)
	fn()
}

// abConfigs is the config matrix the event core is checked against the
// process oracle on: every synchronization mode, placement, queue
// discipline, rotational model, run policy, admission policy, writer
// mode, fault flavour, and workload family the engine branches on.
func abConfigs() map[string]Config {
	small := func() Config {
		cfg := Default()
		cfg.K, cfg.D, cfg.BlocksPerRun = 8, 4, 60
		cfg.CacheBlocks = cfg.DefaultCache()
		return cfg
	}
	cfgs := map[string]Config{}

	cfgs["no-prefetch"] = small()

	c := small()
	c.N = 4
	c.Synchronized = true
	c.CacheBlocks = c.DefaultCache()
	cfgs["intra-sync"] = c

	c = small()
	c.N = 4
	c.CacheBlocks = c.DefaultCache()
	cfgs["intra-unsync"] = c

	c = small()
	c.N = 3
	c.InterRun = true
	c.Synchronized = true
	c.CacheBlocks = c.DefaultCache()
	cfgs["inter-sync"] = c

	c = small()
	c.N = 3
	c.InterRun = true
	c.CacheBlocks = c.DefaultCache()
	cfgs["inter-unsync"] = c

	c = small()
	c.N = 3
	c.InterRun = true
	c.Placement = layout.Striped
	c.CacheBlocks = c.DefaultCache()
	cfgs["striped"] = c

	c = small()
	c.N = 3
	c.InterRun = true
	c.Placement = layout.Clustered
	c.RunPolicy = LeastBufferedRun
	c.CacheBlocks = c.DefaultCache()
	cfgs["clustered-least-buffered"] = c

	c = small()
	c.N = 3
	c.InterRun = true
	c.RunPolicy = RoundRobinRun
	c.Disk.Discipline = disk.SSTF
	c.CacheBlocks = c.DefaultCache()
	cfgs["round-robin-sstf"] = c

	c = small()
	c.N = 4
	c.Disk.Discipline = disk.SCAN
	c.Disk.Rotational = disk.RotConstant
	cfgs["scan-rot-constant"] = c

	c = small()
	c.N = 4
	c.Disk.Rotational = disk.RotPositional
	cfgs["rot-positional"] = c

	c = small()
	c.N = 5
	c.InterRun = true
	c.Admission = cache.Greedy
	c.CacheBlocks = c.K*c.N/2 + c.K // tight: trims batches
	cfgs["greedy-tight-cache"] = c

	c = small()
	c.N = 6
	c.InterRun = true
	c.AdaptiveN = true
	c.CacheBlocks = c.K*c.N/2 + c.K
	cfgs["adaptive-n"] = c

	c = small()
	c.N = 3
	c.MergeTimePerBlock = sim.Ms(0.7)
	cfgs["finite-cpu"] = c

	c = small()
	c.N = 3
	c.Write = WriteConfig{Enabled: true, Disks: 2, BatchBlocks: 4, BufferBlocks: 10}
	cfgs["write-separate"] = c

	c = small()
	c.N = 3
	c.MergeTimePerBlock = sim.Ms(0.2)
	c.Write = WriteConfig{Enabled: true, Shared: true}
	cfgs["write-shared"] = c

	c = small()
	c.N = 3
	c.Faults = &faults.Spec{Disks: []faults.DiskSpec{
		{Disk: 0, Slowdown: 2.5, SlowdownAtMs: 200},
		{Disk: 2, ReadErrorProb: 0.05, MaxRetries: 50},
		{Disk: 3, Outages: []faults.Window{{StartMs: 100, EndMs: 400}}},
	}}
	cfgs["faulty-disks"] = c

	c = small()
	c.N = 3
	c.InterRun = true
	c.CacheBlocks = c.DefaultCache()
	c.WorkloadFactory = func(trial int) workload.Model {
		return &workload.Skewed{R: rng.New(uint64(trial) + 7), Theta: 0.8}
	}
	cfgs["skewed-workload"] = c

	c = small()
	c.N = 3
	c.InterRun = true
	c.RunPolicy = OracleRun
	c.CacheBlocks = c.DefaultCache()
	c.WorkloadFactory = func(trial int) workload.Model {
		seq := make([]int, 2000)
		for i := range seq {
			seq[i] = (i*(trial+3) + i/7) % 8
		}
		return &workload.Sequence{Runs: seq}
	}
	cfgs["oracle-sequence"] = c

	c = small()
	c.N = 4
	c.MaxSimTime = sim.Ms(1500) // cuts the merge short: partial results
	cfgs["timed-out"] = c

	return cfgs
}

// TestEngineModesByteIdentical runs the config matrix through the event
// core and the legacy process engine and requires byte-equal ResultJSON
// for every point: the two engines must be indistinguishable to any
// consumer of results.
func TestEngineModesByteIdentical(t *testing.T) {
	for name, cfg := range abConfigs() {
		t.Run(name, func(t *testing.T) {
			var eventJSON, procJSON []byte
			withEngineMode(t, EngineEvent, func() {
				eventJSON = resultBytes(t, cfg)
			})
			withEngineMode(t, EngineProcess, func() {
				procJSON = resultBytes(t, cfg)
			})
			if !bytes.Equal(eventJSON, procJSON) {
				t.Fatalf("engine modes diverge:\nevent:   %s\nprocess: %s", eventJSON, procJSON)
			}
		})
	}
}

func resultBytes(t *testing.T, cfg Config) []byte {
	t.Helper()
	agg, err := RunTrials(cfg, 2)
	if err != nil {
		t.Fatalf("RunTrials: %v", err)
	}
	b, err := json.Marshal(NewResultJSON(agg))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestEngineModesTraceByteIdentical runs one traced, fault-injected,
// writing merge under both engines and requires byte-equal Chrome and
// CSV trace exports: the event machine must emit every span and
// lifecycle mark at the instants the process engine does.
func TestEngineModesTraceByteIdentical(t *testing.T) {
	cfg := Default()
	cfg.K, cfg.D, cfg.BlocksPerRun = 6, 3, 50
	cfg.N = 3
	cfg.InterRun = true
	cfg.MergeTimePerBlock = sim.Ms(0.3)
	cfg.Write = WriteConfig{Enabled: true, Disks: 1, BatchBlocks: 3, BufferBlocks: 9}
	cfg.Faults = &faults.Spec{Disks: []faults.DiskSpec{
		{Disk: 1, Slowdown: 2, SlowdownAtMs: 100, Outages: []faults.Window{{StartMs: 50, EndMs: 250}}},
	}}
	cfg.CacheBlocks = cfg.DefaultCache()

	export := func() (chrome, csv string) {
		c := cfg
		c.Trace = trace.New(0)
		if _, err := Run(c); err != nil {
			t.Fatalf("Run: %v", err)
		}
		var cb, vb bytes.Buffer
		if err := c.Trace.WriteChrome(&cb); err != nil {
			t.Fatalf("WriteChrome: %v", err)
		}
		if err := c.Trace.WriteCSV(&vb); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		return cb.String(), vb.String()
	}

	var eventChrome, eventCSV, procChrome, procCSV string
	withEngineMode(t, EngineEvent, func() { eventChrome, eventCSV = export() })
	withEngineMode(t, EngineProcess, func() { procChrome, procCSV = export() })
	if eventChrome != procChrome {
		t.Errorf("chrome exports diverge between engine modes")
	}
	if eventCSV != procCSV {
		t.Errorf("csv exports diverge between engine modes")
	}
}

// TestEngineModesRequestLogIdentical replays the dispatch-level request
// observer under both engines; the streams must match record for
// record, which pins queue arrival order and service decomposition.
func TestEngineModesRequestLogIdentical(t *testing.T) {
	cfg := Default()
	cfg.K, cfg.D, cfg.BlocksPerRun = 6, 3, 40
	cfg.N = 3
	cfg.InterRun = true
	cfg.Write = WriteConfig{Enabled: true, Shared: true}
	cfg.CacheBlocks = cfg.DefaultCache()

	collect := func() []string {
		var log []string
		c := cfg
		c.OnRequest = func(rt disk.RequestTrace) {
			log = append(log, fmt.Sprintf("%+v", rt))
		}
		if _, err := Run(c); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return log
	}

	var eventLog, procLog []string
	withEngineMode(t, EngineEvent, func() { eventLog = collect() })
	withEngineMode(t, EngineProcess, func() { procLog = collect() })
	if len(eventLog) != len(procLog) {
		t.Fatalf("request counts diverge: event %d, process %d", len(eventLog), len(procLog))
	}
	for i := range eventLog {
		if eventLog[i] != procLog[i] {
			t.Fatalf("request %d diverges:\nevent:   %s\nprocess: %s", i, eventLog[i], procLog[i])
		}
	}
}
