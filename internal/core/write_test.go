package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/sim"
)

// writeBase returns the headline configuration with output modelling on.
func writeBase(shared bool, writeDisks int) Config {
	cfg := Default()
	cfg.N = 10
	cfg.InterRun = true
	cfg.CacheBlocks = cache.Unlimited
	cfg.Write = WriteConfig{Enabled: true, Shared: shared, Disks: writeDisks}
	return cfg
}

func TestWriteEveryBlockWritten(t *testing.T) {
	res := mustRun(t, writeBase(false, 2))
	if res.WrittenBlocks != res.MergedBlocks {
		t.Fatalf("wrote %d of %d merged blocks", res.WrittenBlocks, res.MergedBlocks)
	}
	var onWriteDisks int64
	for _, d := range res.PerWriteDisk {
		onWriteDisks += d.Blocks
	}
	if onWriteDisks != res.MergedBlocks {
		t.Fatalf("write disks carried %d blocks, want %d", onWriteDisks, res.MergedBlocks)
	}
	// Input disks carry exactly the reads.
	var onInput int64
	for _, d := range res.PerDisk {
		onInput += d.Blocks
	}
	if onInput != res.MergedBlocks {
		t.Fatalf("input disks carried %d blocks (writes leaked in?)", onInput)
	}
}

func TestSeparateWriteDisksBarelyCost(t *testing.T) {
	// The paper's justification for ignoring writes: with an output
	// array matching the input array (D disks), writes are sequential
	// and overlap reads, so the merge time barely moves. Allow a
	// moderate margin for batch latencies.
	noWrite := writeBase(false, 5)
	noWrite.Write.Enabled = false
	base := mustRun(t, noWrite)

	sep := mustRun(t, writeBase(false, 5))
	if sep.TotalTime > base.TotalTime*1.35 {
		t.Fatalf("separate write disks cost too much: %v vs %v", sep.TotalTime, base.TotalTime)
	}
}

func TestSharedWriteDisksContend(t *testing.T) {
	sep := mustRun(t, writeBase(false, 5))
	shared := mustRun(t, writeBase(true, 0))
	// Reads and writes on the same five arms must hurt substantially
	// compared with a separate five-disk output array.
	if shared.TotalTime < sep.TotalTime*sim.Time(1.5) {
		t.Fatalf("shared write disks too cheap: shared=%v separate=%v",
			shared.TotalTime, sep.TotalTime)
	}
	if len(shared.PerWriteDisk) != 0 {
		t.Fatal("shared mode should not report a separate write array")
	}
	// The input disks now carry reads + writes.
	var onInput int64
	for _, d := range shared.PerDisk {
		onInput += d.Blocks
	}
	if onInput != 2*shared.MergedBlocks {
		t.Fatalf("shared disks carried %d blocks, want %d", onInput, 2*shared.MergedBlocks)
	}
}

func TestWriteSingleOutputDiskBottleneck(t *testing.T) {
	// One output disk must absorb k·T·B of transfer; with 5 input disks
	// reading at kTB/5, the writer becomes the bottleneck and the total
	// approaches kTB on the output side.
	one := mustRun(t, writeBase(false, 1))
	two := mustRun(t, writeBase(false, 2))
	if one.TotalTime <= two.TotalTime {
		t.Fatalf("1 write disk (%v) not slower than 2 (%v)", one.TotalTime, two.TotalTime)
	}
	if one.WriteStall <= 0 {
		t.Fatal("bottlenecked writer shows no stall")
	}
}

func TestWriteBufferBoundsRunahead(t *testing.T) {
	cfg := writeBase(false, 1)
	cfg.Write.BatchBlocks = 5
	cfg.Write.BufferBlocks = 10
	res := mustRun(t, cfg)
	if res.WrittenBlocks != res.MergedBlocks {
		t.Fatalf("wrote %d of %d", res.WrittenBlocks, res.MergedBlocks)
	}
}

func TestWriteConfigValidation(t *testing.T) {
	cfg := writeBase(false, 1)
	cfg.Write.BatchBlocks = 10
	cfg.Write.BufferBlocks = 5
	if _, err := Run(cfg); err == nil {
		t.Fatal("buffer < batch accepted")
	}

	// Shared writes must fit the geometry: shrink the disk so input
	// plus output overflows.
	cfg = writeBase(true, 0)
	cfg.Disk.Geometry.Cylinders = 100 // 6400 blocks < 5000 input + 5000 output
	if _, err := Run(cfg); err == nil {
		t.Fatal("overflowing shared write config accepted")
	}
}

func TestWriteWithFiniteCPU(t *testing.T) {
	cfg := writeBase(false, 2)
	cfg.MergeTimePerBlock = sim.Ms(0.3)
	res := mustRun(t, cfg)
	if res.WrittenBlocks != res.MergedBlocks {
		t.Fatalf("wrote %d of %d", res.WrittenBlocks, res.MergedBlocks)
	}
}

func TestWriteDefaults(t *testing.T) {
	w := WriteConfig{Enabled: true}.withDefaults(7, 1)
	if w.Disks != 1 || w.BatchBlocks != 7 || w.BufferBlocks != 14 {
		t.Fatalf("defaults = %+v", w)
	}
	// The buffer scales with the output array so every arm can stream.
	w = WriteConfig{Enabled: true, Disks: 5}.withDefaults(10, 5)
	if w.BufferBlocks != 100 {
		t.Fatalf("5-disk buffer = %d, want 100", w.BufferBlocks)
	}
}

func TestTimelineRecording(t *testing.T) {
	cfg := Default()
	cfg.K, cfg.D, cfg.BlocksPerRun, cfg.N = 10, 2, 100, 5
	cfg.InterRun = true
	cfg.CacheBlocks = cache.Unlimited
	cfg.RecordTimeline = true
	cfg.Write = WriteConfig{Enabled: true, Disks: 1}
	res := mustRun(t, cfg)
	// 2 input disks + 1 write disk.
	if len(res.Timeline) != 3 {
		t.Fatalf("timeline tracks = %d", len(res.Timeline))
	}
	for i, ivs := range res.Timeline {
		if len(ivs) == 0 {
			t.Fatalf("disk %d recorded no intervals", i)
		}
		var busy sim.Time
		last := sim.Time(-1)
		for _, iv := range ivs {
			if iv.End <= iv.Start || iv.Start < last {
				t.Fatalf("disk %d: malformed interval %+v", i, iv)
			}
			last = iv.End
			busy += iv.End - iv.Start
		}
		// Busy intervals must match the disk's accounted busy time.
		var want sim.Time
		if i < cfg.D {
			want = res.PerDisk[i].BusyTime
		} else {
			want = res.PerWriteDisk[i-cfg.D].BusyTime
		}
		if diff := busy - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("disk %d: timeline busy %v != stats busy %v", i, busy, want)
		}
	}
}

func TestTimelineDisabledByDefault(t *testing.T) {
	res := mustRun(t, small())
	if res.Timeline != nil {
		t.Fatal("timeline recorded without RecordTimeline")
	}
}
