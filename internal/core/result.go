package core

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Result reports one simulated merge.
type Result struct {
	Config Config

	// TotalTime is the simulated instant at which the last block was
	// merged (including the initial cache load).
	TotalTime sim.Time

	// MergedBlocks is K * BlocksPerRun.
	//detlint:unit blocks
	MergedBlocks int64

	// Decisions counts I/O decision points (demand fetches issued);
	// FullPrefetches counts those admitted at full batch size. Their
	// ratio is the paper's success ratio.
	Decisions      int64
	FullPrefetches int64

	// StallTime is the total simulated time the CPU spent waiting on
	// fetches.
	StallTime sim.Time

	// MeanConcurrency is the time-average number of busy disks over the
	// whole merge; MeanConcurrencyWhenBusy conditions on at least one
	// disk being busy (the paper's "average overlap").
	MeanConcurrency         float64
	MeanConcurrencyWhenBusy float64

	// PerDisk holds each disk's accumulated statistics.
	PerDisk []disk.Stats

	// CachePeak is the high-water occupancy in blocks.
	CachePeak int64

	// Output-traffic metrics (zero unless Config.Write.Enabled).
	//detlint:unit blocks
	WrittenBlocks int64
	WriteStall    sim.Time
	// PerWriteDisk holds the separate output array's statistics; empty
	// in shared mode, where writes appear inside PerDisk.
	PerWriteDisk []disk.Stats

	// Timeline holds per-disk busy intervals (input disks first, then
	// any separate write disks) when Config.RecordTimeline is set.
	Timeline [][]Interval

	// MeanDepth is the average prefetch depth used at I/O decisions —
	// equal to Config.N for fixed-depth runs, the controller's average
	// under AdaptiveN.
	MeanDepth float64

	// StallHistogram holds the per-miss CPU stall times in ms over
	// [0, 200): the latency a user-visible merge pause costs. Use
	// Quantile for percentiles.
	StallHistogram *stats.Histogram

	// TimedOut reports that Config.MaxSimTime elapsed before the merge
	// finished; counters reflect the partial run up to the horizon.
	TimedOut bool

	// Faults totals the per-disk fault counters (all zero unless
	// Config.Faults is set); the per-disk breakdown lives in PerDisk.
	Faults FaultTotals
}

// FaultTotals aggregates the fault-injection counters across disks.
type FaultTotals struct {
	// Retries counts transient read errors recovered by re-reads.
	Retries int64
	// RetryTime is the service time those re-reads added.
	RetryTime sim.Time
	// OutageTime is dispatch time lost waiting out outage windows.
	OutageTime sim.Time
	// SlowdownTime is service time added by fail-slow multipliers.
	SlowdownTime sim.Time
}

// Any reports whether any fault counter is non-zero.
func (f FaultTotals) Any() bool {
	return f.Retries != 0 || f.RetryTime != 0 || f.OutageTime != 0 || f.SlowdownTime != 0
}

// add folds one disk's fault counters into the totals.
func (f *FaultTotals) add(s disk.Stats) {
	f.Retries += s.Retries
	f.RetryTime += s.RetryTime
	f.OutageTime += s.OutageTime
	f.SlowdownTime += s.SlowdownTime
}

// StallP95 returns the 95th-percentile per-miss stall.
func (r Result) StallP95() sim.Time {
	if r.StallHistogram == nil || r.StallHistogram.N() == 0 {
		return 0
	}
	return sim.Ms(r.StallHistogram.Quantile(0.95))
}

// SuccessRatio returns FullPrefetches/Decisions, the probability that a
// prefetch could be initiated at full size (1 when no decisions were
// needed, matching the paper's convention for ample caches).
func (r Result) SuccessRatio() float64 {
	if r.Decisions == 0 {
		return 1
	}
	return float64(r.FullPrefetches) / float64(r.Decisions)
}

// MeanBlockTime returns TotalTime divided by the merged block count:
// the effective per-block I/O time the analytic expressions predict for
// an infinitely fast CPU.
func (r Result) MeanBlockTime() sim.Time {
	if r.MergedBlocks == 0 {
		return 0
	}
	//detlint:allow simunits deliberate ms-per-block ratio: the conversion is the dimensional bridge
	return r.TotalTime / sim.Time(r.MergedBlocks)
}

// DiskUtilization returns mean per-disk busy fraction over TotalTime.
func (r Result) DiskUtilization() float64 {
	if r.TotalTime == 0 || len(r.PerDisk) == 0 {
		return 0
	}
	var busy sim.Time
	for _, d := range r.PerDisk {
		busy += d.BusyTime
	}
	return float64(busy) / (float64(r.TotalTime) * float64(len(r.PerDisk)))
}

// String summarizes the result in one line.
func (r Result) String() string {
	return fmt.Sprintf("%s k=%d D=%d N=%d C=%d: total=%.2fs success=%.3f overlap=%.2f",
		r.Config.StrategyName(), r.Config.K, r.Config.D, r.Config.N, r.Config.CacheBlocks,
		r.TotalTime.Seconds(), r.SuccessRatio(), r.MeanConcurrencyWhenBusy)
}

// Aggregate summarizes repeated trials of one configuration.
type Aggregate struct {
	Config Config
	Trials int

	TotalTime    stats.Summary // seconds
	SuccessRatio stats.Summary
	Concurrency  stats.Summary // mean busy disks given >= 1 busy
	StallTime    stats.Summary // seconds

	Results []Result
}

// MeanTotalSeconds returns the across-trial mean total time in seconds.
func (a Aggregate) MeanTotalSeconds() float64 { return a.TotalTime.Mean() }

// MeanSuccessRatio returns the across-trial mean success ratio.
func (a Aggregate) MeanSuccessRatio() float64 { return a.SuccessRatio.Mean() }

// String summarizes the aggregate.
func (a Aggregate) String() string {
	return fmt.Sprintf("%s k=%d D=%d N=%d C=%d: total=%.2fs ±%.2f success=%.3f (%d trials)",
		a.Config.StrategyName(), a.Config.K, a.Config.D, a.Config.N, a.Config.CacheBlocks,
		a.TotalTime.Mean(), a.TotalTime.CI95(), a.SuccessRatio.Mean(), a.Trials)
}
