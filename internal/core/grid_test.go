package core

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestRunGridMatchesSerialTrials(t *testing.T) {
	cfg := small()
	cfg.N = 3
	cfg.InterRun = true

	serial, err := RunGrid([]Config{cfg}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunGrid([]Config{cfg}, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, b := serial[0], par[0]
	if a.TotalTime.Mean() != b.TotalTime.Mean() ||
		a.SuccessRatio.Mean() != b.SuccessRatio.Mean() ||
		a.StallTime.Mean() != b.StallTime.Mean() {
		t.Fatalf("parallel aggregate differs: %+v vs %+v", a.TotalTime, b.TotalTime)
	}
	for i := range a.Results {
		if a.Results[i].TotalTime != b.Results[i].TotalTime {
			t.Fatalf("trial %d diverged: %v vs %v", i, a.Results[i].TotalTime, b.Results[i].TotalTime)
		}
	}
}

func TestRunGridKeepsPointOrder(t *testing.T) {
	cfgs := make([]Config, 4)
	for i := range cfgs {
		cfgs[i] = small()
		cfgs[i].K = 4 + 2*i
		cfgs[i].CacheBlocks = cfgs[i].DefaultCache()
	}
	aggs, err := RunGrid(cfgs, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != len(cfgs) {
		t.Fatalf("aggregates = %d", len(aggs))
	}
	for i, agg := range aggs {
		if agg.Config.K != cfgs[i].K {
			t.Fatalf("aggregate %d carries K=%d, want %d", i, agg.Config.K, cfgs[i].K)
		}
		if agg.Trials != 2 || len(agg.Results) != 2 {
			t.Fatalf("aggregate %d trials = %d", i, agg.Trials)
		}
		// Trial seeds must be cfg.Seed and cfg.Seed+1 in order.
		for trial, res := range agg.Results {
			if want := cfgs[i].Seed + uint64(trial); res.Config.Seed != want {
				t.Fatalf("aggregate %d trial %d seed = %d, want %d", i, trial, res.Config.Seed, want)
			}
		}
	}
}

func TestRunGridRejectsSharedWorkload(t *testing.T) {
	cfg := small()
	cfg.Workload = &workload.Sequence{Runs: []int{0, 1, 2}}
	_, err := RunGrid([]Config{cfg}, 2, 1)
	if err == nil {
		t.Fatal("stateful Workload accepted for multi-trial run")
	}
	if !strings.Contains(err.Error(), "WorkloadFactory") {
		t.Fatalf("error does not point at WorkloadFactory: %v", err)
	}
	// The single-trial path still accepts a plain Workload.
	cfg = small()
	cfg.Workload = uniformSequence(cfg.K, cfg.BlocksPerRun)
	if _, err := RunGrid([]Config{cfg}, 1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadFactoryPerTrial(t *testing.T) {
	cfg := small()
	seen := make(map[int]bool)
	var mu chan struct{} // factory runs concurrently; serialize the map
	mu = make(chan struct{}, 1)
	mu <- struct{}{}
	cfg.WorkloadFactory = func(trial int) workload.Model {
		<-mu
		seen[trial] = true
		mu <- struct{}{}
		return uniformSequence(cfg.K, cfg.BlocksPerRun)
	}
	agg, err := RunTrials(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Trials != 3 {
		t.Fatalf("trials = %d", agg.Trials)
	}
	for trial := 0; trial < 3; trial++ {
		if !seen[trial] {
			t.Fatalf("factory never called for trial %d", trial)
		}
	}
}

func TestRunGridRejectsZeroTrials(t *testing.T) {
	if _, err := RunGrid([]Config{small()}, 0, 1); err == nil {
		t.Fatal("zero trials accepted")
	}
}

// uniformSequence builds a replayable depletion trace touching every
// run round-robin — a minimal stateful workload for factory tests.
func uniformSequence(k, blocks int) *workload.Sequence {
	runs := make([]int, 0, k*blocks)
	for b := 0; b < blocks; b++ {
		for r := 0; r < k; r++ {
			runs = append(runs, r)
		}
	}
	return &workload.Sequence{Runs: runs}
}
