package core

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
)

// TestValidateRejectsInvalidConfigs is the table of invalid inputs the
// HTTP boundary (internal/service) relies on core to reject, asserting
// the error text names the offending value so a 400 response is
// actionable without reading source.
func TestValidateRejectsInvalidConfigs(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantSub string
	}{
		{"k zero", func(c *Config) { c.K = 0 }, "K = 0"},
		{"k negative", func(c *Config) { c.K = -3 }, "K = -3"},
		{"d zero", func(c *Config) { c.D = 0 }, "D = 0"},
		{"d exceeds k", func(c *Config) { c.K, c.D = 4, 9 }, "D = 9 not in [1, K=4]"},
		{"blocks per run zero", func(c *Config) { c.BlocksPerRun = 0 }, "BlocksPerRun = 0"},
		{"run lengths wrong count", func(c *Config) { c.RunLengths = []int{10, 10} }, "2 run lengths for K = 25"},
		{"run length zero", func(c *Config) { c.K, c.D, c.RunLengths = 3, 2, []int{10, 0, 10} }, "run 1 has 0 blocks"},
		{"n zero", func(c *Config) { c.N = 0 }, "N = 0"},
		{"n negative", func(c *Config) { c.N = -1 }, "N = -1"},
		{"n exceeds run length", func(c *Config) { c.N = 2000; c.CacheBlocks = 80000 }, "N = 2000 exceeds longest run 1000"},
		{"cache below demand minimum", func(c *Config) { c.CacheBlocks = c.K - 1 }, "cache 24 blocks < K = 25 (one block per run minimum)"},
		{"negative merge time", func(c *Config) { c.MergeTimePerBlock = sim.Ms(-1) }, "negative merge time"},
		{"bad disk geometry", func(c *Config) { c.Disk.Geometry.Cylinders = 0 }, "invalid geometry"},
		{"bad disk block size", func(c *Config) { c.Disk.BlockBytes = 0 }, "BlockBytes = 0"},
		{"data exceeds disk capacity", func(c *Config) { c.BlocksPerRun = 1 << 20 }, "geometry holds"},
		{"write buffer below batch", func(c *Config) {
			c.Write.Enabled = true
			c.Write.BatchBlocks = 8
			c.Write.BufferBlocks = 4
		}, "write buffer 4 smaller than batch 8"},
		{"fault on nonexistent disk", func(c *Config) {
			c.Faults = &faults.Spec{Disks: []faults.DiskSpec{{Disk: 5, Slowdown: 2}}}
		}, "faults: spec 0 targets disk 5, want [0, D=5)"},
		{"fault negative disk", func(c *Config) {
			c.Faults = &faults.Spec{Disks: []faults.DiskSpec{{Disk: -1}}}
		}, "targets disk -1"},
		{"fault slowdown below one", func(c *Config) {
			c.Faults = &faults.Spec{Disks: []faults.DiskSpec{{Disk: 0, Slowdown: 0.5}}}
		}, "slowdown 0.5 < 1 (a fail-slow disk cannot be faster)"},
		{"fault negative error probability", func(c *Config) {
			c.Faults = &faults.Spec{Disks: []faults.DiskSpec{{Disk: 0, ReadErrorProb: -0.1}}}
		}, "read error probability -0.1 not in [0, 1]"},
		{"fault probability above one", func(c *Config) {
			c.Faults = &faults.Spec{Disks: []faults.DiskSpec{{Disk: 0, ReadErrorProb: 1.5}}}
		}, "read error probability 1.5 not in [0, 1]"},
		{"fault overlapping outages", func(c *Config) {
			c.Faults = &faults.Spec{Disks: []faults.DiskSpec{{
				Disk:    1,
				Outages: []faults.Window{{StartMs: 0, EndMs: 100}, {StartMs: 50, EndMs: 200}},
			}}}
		}, "outage windows overlap at 50 ms"},
		{"fault inverted outage", func(c *Config) {
			c.Faults = &faults.Spec{Disks: []faults.DiskSpec{{
				Disk:    0,
				Outages: []faults.Window{{StartMs: 100, EndMs: 100}},
			}}}
		}, "outage 0 ends at 100 ms, not after its start 100 ms"},
		{"fault duplicate disk entries", func(c *Config) {
			c.Faults = &faults.Spec{Disks: []faults.DiskSpec{{Disk: 2, Slowdown: 2}, {Disk: 2, Slowdown: 3}}}
		}, "disk 2 out of order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Default()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid config")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestValidateAcceptsBoundaryConfigs pins the valid edge cases next to
// the invalid ones so the boundary is explicit.
func TestValidateAcceptsBoundaryConfigs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"default", func(c *Config) {}},
		{"single run replay", func(c *Config) { c.K, c.D, c.CacheBlocks = 1, 1, 1 }},
		{"cache exactly k", func(c *Config) { c.CacheBlocks = c.K }},
		{"d equals k", func(c *Config) { c.D = c.K }},
		{"n equals run length", func(c *Config) { c.N = c.BlocksPerRun; c.CacheBlocks = c.K * c.N }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Default()
			tc.mutate(&cfg)
			if err := cfg.Validate(); err != nil {
				t.Fatalf("Validate rejected a valid config: %v", err)
			}
		})
	}
}
