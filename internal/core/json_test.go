package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/disk"
	"repro/internal/workload"
)

func TestCanonicalJSONDeterministic(t *testing.T) {
	a, err := Default().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Default().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical encodings of equal configs differ:\n%s\n%s", a, b)
	}
	var m map[string]any
	if err := json.Unmarshal(a, &m); err != nil {
		t.Fatalf("canonical encoding is not valid JSON: %v", err)
	}
}

func TestHashSeparatesConfigs(t *testing.T) {
	base := Default()
	baseHash, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]Config{}
	v := base
	v.N = 10
	variants["N"] = v
	v = base
	v.Seed = 7
	variants["Seed"] = v
	v = base
	v.InterRun = true
	variants["InterRun"] = v
	v = base
	v.Disk.Discipline = disk.SSTF
	variants["Discipline"] = v
	v = base
	v.Write.Enabled = true
	variants["Write"] = v
	for name, cfg := range variants {
		h, err := cfg.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h == baseHash {
			t.Errorf("changing %s did not change the hash", name)
		}
	}
}

func TestCanonicalJSONRefusesCallbacks(t *testing.T) {
	cases := map[string]func(*Config){
		"Workload":        func(c *Config) { c.Workload = &workload.Sequence{} },
		"WorkloadFactory": func(c *Config) { c.WorkloadFactory = func(int) workload.Model { return &workload.Sequence{} } },
	}
	for name, set := range cases {
		cfg := Default()
		set(&cfg)
		if _, err := cfg.CanonicalJSON(); err == nil {
			t.Errorf("%s: CanonicalJSON accepted a non-encodable config", name)
		}
	}
}

// TestResultJSONMatchesAggregate pins the shared schema to the engine's
// aggregate so the CLI and the daemon cannot drift apart silently.
func TestResultJSONMatchesAggregate(t *testing.T) {
	cfg := Default()
	cfg.K = 4
	cfg.D = 2
	cfg.BlocksPerRun = 50
	cfg.N = 2
	cfg.CacheBlocks = cfg.DefaultCache()
	agg, err := RunTrials(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	rj := NewResultJSON(agg)
	if rj.Trials != 2 || len(rj.Results) != 2 {
		t.Fatalf("trials = %d, results = %d, want 2/2", rj.Trials, len(rj.Results))
	}
	if rj.K != cfg.K || rj.D != cfg.D || rj.N != cfg.N || rj.CacheBlocks != cfg.CacheBlocks {
		t.Fatalf("shape mismatch: %+v vs config %+v", rj, cfg)
	}
	if rj.Strategy != cfg.StrategyName() {
		t.Fatalf("strategy %q, want %q", rj.Strategy, cfg.StrategyName())
	}
	if rj.MeanSeconds != agg.TotalTime.Mean() {
		t.Fatalf("mean seconds %v, want %v", rj.MeanSeconds, agg.TotalTime.Mean())
	}
	for i, tr := range rj.Results {
		res := agg.Results[i]
		if tr.Seed != res.Config.Seed {
			t.Errorf("trial %d seed %d, want %d", i, tr.Seed, res.Config.Seed)
		}
		if tr.TotalSeconds != res.TotalTime.Seconds() {
			t.Errorf("trial %d total %v, want %v", i, tr.TotalSeconds, res.TotalTime.Seconds())
		}
		if len(tr.Disks) != cfg.D {
			t.Errorf("trial %d has %d disks, want %d", i, len(tr.Disks), cfg.D)
		}
	}
}
