package core

import (
	"testing"

	"repro/internal/sim"
)

// TestEventEngineSteadyStateZeroAlloc pins the event-mode merge engine
// at zero allocations per simulated time slice once warmed: block
// requests, cache waits, wakeups, and prefetch planning must all run on
// the engine's pooled wrappers and reused planning buffers. The runs
// are long enough that the measured slices sit strictly inside the
// steady-state merge (no start-up, no drain).
func TestEventEngineSteadyStateZeroAlloc(t *testing.T) {
	cfg := Default()
	cfg.K, cfg.D, cfg.BlocksPerRun = 8, 4, 50000
	cfg.N = 4
	cfg.InterRun = true
	cfg.CacheBlocks = cfg.DefaultCache()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	e, err := newEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.m = newMachine(e)
	e.m.start()

	// Warm up: run well past the initial load so wrapper pools, planning
	// buffers, disk queues, and calendar arrays have reached their
	// steady-state sizes.
	horizon := 2 * sim.Second
	if err := e.k.RunUntil(horizon); err != nil {
		t.Fatalf("warm-up RunUntil: %v", err)
	}
	if e.m.state == msDone {
		t.Fatal("merge finished during warm-up; grow BlocksPerRun")
	}

	slice := func() {
		horizon += 20 * sim.Millisecond
		if err := e.k.RunUntil(horizon); err != nil {
			t.Fatalf("RunUntil: %v", err)
		}
	}
	before := e.m.merged
	avg := testing.AllocsPerRun(100, slice)
	if e.m.state == msDone {
		t.Fatal("merge finished during measurement; grow BlocksPerRun")
	}
	if e.m.merged == before {
		t.Fatal("no blocks merged during measurement; the slices are too short")
	}
	if avg != 0 {
		t.Errorf("event-mode engine steady state allocates %.2f allocs/op, want 0", avg)
	}
}
