// Package core implements the paper's contribution: the merge phase of
// external mergesort reading k sorted runs from D independently
// operating disks through a RAM block cache, under the intra-run and
// inter-run prefetching strategies, in synchronized and unsynchronized
// variants, with an infinitely fast or finite-speed CPU.
//
// The engine reproduces the simulation model of the paper's §2.2: no
// record data is moved; block depletion follows a workload model (the
// Kwan–Baer uniform model by default); every block request is queued at
// its disk individually; prefetched blocks are buffered in the cache
// until consumed; and fetches are admitted against the cache according
// to the configured admission policy.
package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/disk"
	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// PrefetchRunPolicy selects which run an inter-run prefetch reads on
// each non-demand disk.
type PrefetchRunPolicy int

const (
	// RandomRun chooses uniformly among the disk's runs that still have
	// unfetched blocks — the paper's policy (its TR found fancier
	// heuristics not worth their bookkeeping).
	RandomRun PrefetchRunPolicy = iota
	// LeastBufferedRun chooses the run with the fewest cached plus
	// in-flight blocks (run-choice ablation).
	LeastBufferedRun
	// RoundRobinRun cycles deterministically through the disk's runs
	// (run-choice ablation).
	RoundRobinRun
	// OracleRun peeks into the workload's future depletions (only
	// possible for replayed traces implementing workload.Lookahead) and
	// prefetches the disk's run that will be depleted soonest. Note
	// that urgency-greedy lookahead is not offline-optimal: under a
	// tight cache, balancing buffers (LeastBufferedRun) can beat it —
	// the run-choice ablation measures exactly this. Falls back to
	// RandomRun when the workload cannot look ahead.
	OracleRun
)

// String implements fmt.Stringer.
func (p PrefetchRunPolicy) String() string {
	switch p {
	case RandomRun:
		return "random"
	case LeastBufferedRun:
		return "least-buffered"
	case RoundRobinRun:
		return "round-robin"
	case OracleRun:
		return "oracle"
	default:
		return fmt.Sprintf("PrefetchRunPolicy(%d)", int(p))
	}
}

// Config fully describes one simulated merge. The zero value is not
// runnable; start from Default and override.
type Config struct {
	K int // number of sorted runs
	D int // number of input disks
	// BlocksPerRun is the run length in blocks (uniform runs).
	//detlint:unit blocks
	BlocksPerRun int

	// RunLengths, when non-nil, gives each run its own block count
	// (replacement-selection runs are unequal); it overrides
	// BlocksPerRun and must have K entries. Used when replaying real
	// merge traces through the simulator.
	RunLengths []int

	// N is the intra-run prefetch depth: each fetch from a run reads N
	// contiguous blocks (N = 1 disables intra-run prefetching).
	N int

	// AdaptiveN, when set, treats N as an upper bound and adapts the
	// working depth per fetch with an AIMD controller on admission
	// outcomes: a rejected full batch halves the depth, a streak of
	// admitted ones raises it. This automates the paper's observation
	// that every cache size has its own optimal N.
	AdaptiveN bool

	// InterRun enables prefetching N blocks from one run on each
	// non-demand disk at every demand fetch ("All Disks One Run").
	InterRun bool

	// Synchronized makes the CPU wait for the entire fetch batch; when
	// false the CPU resumes as soon as the demand block is cached.
	Synchronized bool

	// CacheBlocks is the cache capacity C in blocks. Use
	// cache.Unlimited for the ample-cache experiments; DefaultCache
	// computes the paper's natural size.
	//detlint:unit blocks
	CacheBlocks int

	// MergeTimePerBlock is the CPU cost of merging one block; zero
	// models the paper's infinitely fast CPU.
	MergeTimePerBlock sim.Time

	// MaxSimTime aborts the simulation once the virtual clock passes
	// this horizon (zero = unlimited). Run returns the partial result
	// with TimedOut set — a guard for sweeps that may hit pathological
	// configurations. Note: a timed-out run abandons its parked merge
	// goroutine (a few KB each); guard rare outliers with it rather
	// than timing out by design in tight loops.
	MaxSimTime sim.Time

	Disk      disk.Params
	Placement layout.Placement
	Admission cache.AdmissionPolicy
	RunPolicy PrefetchRunPolicy

	// Faults, when non-nil, injects per-disk failure modes (fail-slow
	// multipliers, transient read errors with retry-by-reread, outage
	// windows) into the input disks. nil is the paper's always-healthy
	// model and costs nothing — the engine takes the exact same code
	// paths as before the fault layer existed. A run whose re-read
	// budget is exhausted fails with faults.ErrUnreadable.
	Faults *faults.Spec

	// Write models the merge's output traffic (disabled by default,
	// matching the paper's separate-write-disks assumption).
	Write WriteConfig

	// Workload chooses the depletion model; nil means the Kwan–Baer
	// uniform model seeded from Seed. A Model is stateful, so a non-nil
	// Workload is only valid for single-trial runs: RunTrials/RunGrid
	// refuse it with trials > 1 rather than sharing one model across
	// replications. Multi-trial runs use WorkloadFactory.
	Workload workload.Model

	// WorkloadFactory, when non-nil, builds a fresh depletion model for
	// each replication; trial is the 0-based replication index. It takes
	// precedence over Workload and is the only way to run a caller-
	// supplied model across multiple trials. Replications may run on
	// parallel goroutines, so the factory must be safe for concurrent
	// calls and must derive any randomness from the trial index, never
	// from shared mutable state.
	WorkloadFactory func(trial int) workload.Model

	Seed uint64

	// Tracer, if non-nil, observes the simulation.
	Tracer sim.Tracer

	// Trace, if non-nil, records an execution timeline into the given
	// recorder: per-disk seek/rotation/retry/transfer spans, CPU
	// compute/stall intervals, prefetch issue→complete spans and
	// cache-occupancy samples, all in simulated time (see
	// internal/trace). Observation only — a traced run produces the
	// exact result of an untraced one, and the field is excluded from
	// the canonical encoding, so traced and untraced configs share a
	// Hash. Like Tracer, it forces RunTrials/RunGrid serial.
	Trace *trace.Recorder

	// RecordTimeline captures per-disk busy intervals into
	// Result.Timeline (bounded; see core.Interval).
	RecordTimeline bool

	// OnRequest, if non-nil, observes every disk request at dispatch
	// (input and output disks alike). Like Tracer, it forces RunTrials
	// to run serially.
	OnRequest func(disk.RequestTrace)
}

// Default returns the paper's base configuration: k=25 runs of 1000
// blocks on D=5 disks, N=1, no inter-run prefetching, the calibrated
// RA-series disk, round-robin placement, the all-or-demand admission
// policy and an infinitely fast CPU. The cache defaults to DefaultCache.
func Default() Config {
	cfg := Config{
		K:            25,
		D:            5,
		BlocksPerRun: 1000,
		N:            1,
		Disk:         disk.PaperParams(),
		Placement:    layout.RoundRobin,
		Admission:    cache.AllOrDemand,
		RunPolicy:    RandomRun,
		Seed:         1,
	}
	cfg.CacheBlocks = cfg.DefaultCache()
	return cfg
}

// DefaultCache returns the cache size that makes every prefetch
// admissible: kN blocks for intra-run-only configurations (the paper
// shows kN is necessary and sufficient), plus DN headroom for one full
// inter-run batch when InterRun is set.
func (c Config) DefaultCache() int {
	size := c.K * c.N
	if c.InterRun {
		size += c.D * c.N
	}
	return size
}

// StrategyName returns the paper's name for the configured strategy.
func (c Config) StrategyName() string {
	var base string
	switch {
	case c.InterRun:
		base = "all-disks-one-run" // inter-run (+ intra-run when N > 1)
	case c.N > 1:
		base = "demand-run-only" // intra-run
	default:
		base = "no-prefetch"
	}
	if c.Synchronized {
		return base + "/sync"
	}
	return base + "/unsync"
}

// runLengths returns the per-run block counts, expanding the uniform
// case. Call only on validated configs.
func (c Config) runLengths() []int {
	if c.RunLengths != nil {
		return c.RunLengths
	}
	lengths := make([]int, c.K)
	for i := range lengths {
		lengths[i] = c.BlocksPerRun
	}
	return lengths
}

// TotalBlocks returns the number of blocks the merge will consume.
func (c Config) TotalBlocks() int64 {
	if c.RunLengths == nil {
		return int64(c.K) * int64(c.BlocksPerRun)
	}
	var total int64
	for _, n := range c.RunLengths {
		total += int64(n)
	}
	return total
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.K <= 0:
		return fmt.Errorf("core: K = %d", c.K)
	case c.D <= 0 || c.D > c.K:
		return fmt.Errorf("core: D = %d not in [1, K=%d]", c.D, c.K)
	case c.RunLengths == nil && c.BlocksPerRun <= 0:
		return fmt.Errorf("core: BlocksPerRun = %d", c.BlocksPerRun)
	case c.RunLengths != nil && len(c.RunLengths) != c.K:
		return fmt.Errorf("core: %d run lengths for K = %d", len(c.RunLengths), c.K)
	case c.N <= 0:
		return fmt.Errorf("core: N = %d", c.N)
	case c.CacheBlocks < c.K:
		return fmt.Errorf("core: cache %d blocks < K = %d (one block per run minimum)", c.CacheBlocks, c.K)
	case c.MergeTimePerBlock < 0:
		return fmt.Errorf("core: negative merge time %v", c.MergeTimePerBlock)
	}
	longest := 0
	for r, n := range c.runLengths() {
		if n <= 0 {
			return fmt.Errorf("core: run %d has %d blocks", r, n)
		}
		if n > longest {
			longest = n
		}
	}
	if c.N > longest {
		return fmt.Errorf("core: N = %d exceeds longest run %d", c.N, longest)
	}
	if err := c.Disk.Validate(); err != nil {
		return err
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(c.D); err != nil {
			return err
		}
	}
	lay, err := layout.NewLengths(c.Placement, c.runLengths(), c.D)
	if err != nil {
		return err
	}
	if need, have := lay.MaxBlocksOnDisk(), c.Disk.CapacityBlocks(); need > have {
		return fmt.Errorf("core: layout needs %d blocks on a disk, geometry holds %d", need, have)
	}
	return c.Write.validate(c)
}
