package core

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/workload"
)

// fixedTrace builds a shuffled depletion order with `blocks` entries
// per run.
func fixedTrace(seed uint64, k, blocks int) []int {
	trace := make([]int, 0, k*blocks)
	for r := 0; r < k; r++ {
		for b := 0; b < blocks; b++ {
			trace = append(trace, r)
		}
	}
	s := rng.New(seed)
	s.Shuffle(len(trace), func(i, j int) { trace[i], trace[j] = trace[j], trace[i] })
	return trace
}

func TestOracleRunUsesLookahead(t *testing.T) {
	trace := fixedTrace(3, 10, 100)
	run := func(pol PrefetchRunPolicy) Result {
		cfg := Default()
		cfg.K = 10
		cfg.D = 2
		cfg.BlocksPerRun = 100
		cfg.N = 5
		cfg.InterRun = true
		cfg.CacheBlocks = 120
		cfg.RunPolicy = pol
		cfg.Workload = &workload.Sequence{Runs: append([]int(nil), trace...)}
		return mustRun(t, cfg)
	}
	oracle := run(OracleRun)
	random := run(RandomRun)
	if oracle.MergedBlocks != random.MergedBlocks {
		t.Fatalf("merged counts differ: %d vs %d", oracle.MergedBlocks, random.MergedBlocks)
	}
	// On a replayed trace with a tight cache, urgency-lookahead should
	// at minimum not lose badly to random choice.
	if oracle.TotalTime > random.TotalTime*12/10 {
		t.Fatalf("oracle (%v) much slower than random (%v)", oracle.TotalTime, random.TotalTime)
	}
}

func TestOracleFallsBackWithoutLookahead(t *testing.T) {
	// Uniform workload has no lookahead: the oracle must degrade to
	// random and still complete.
	cfg := Default()
	cfg.K = 10
	cfg.D = 2
	cfg.BlocksPerRun = 50
	cfg.N = 3
	cfg.InterRun = true
	cfg.CacheBlocks = cfg.DefaultCache()
	cfg.RunPolicy = OracleRun
	res := mustRun(t, cfg)
	if res.MergedBlocks != 500 {
		t.Fatalf("merged = %d", res.MergedBlocks)
	}
}

func TestSequencePeek(t *testing.T) {
	s := &workload.Sequence{Runs: []int{4, 2, 7}}
	if r, ok := s.Peek(0); !ok || r != 4 {
		t.Fatalf("Peek(0) = %d, %v", r, ok)
	}
	if r, ok := s.Peek(2); !ok || r != 7 {
		t.Fatalf("Peek(2) = %d, %v", r, ok)
	}
	if _, ok := s.Peek(3); ok {
		t.Fatal("Peek beyond end succeeded")
	}
	s.Choose([]int{2, 4, 7}) // consumes 4
	if r, ok := s.Peek(0); !ok || r != 2 {
		t.Fatalf("Peek after Choose = %d, %v", r, ok)
	}
	if _, ok := s.Peek(-1); ok {
		t.Fatal("negative Peek succeeded")
	}
}

func TestPolicyStringsComplete(t *testing.T) {
	if OracleRun.String() != "oracle" {
		t.Fatalf("oracle string = %q", OracleRun.String())
	}
	if PrefetchRunPolicy(99).String() == "" {
		t.Fatal("unknown policy string empty")
	}
}
