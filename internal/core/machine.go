package core

import (
	"sync/atomic"

	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/sim"
	"repro/internal/trace"
)

// EngineMode selects how core.Run drives a simulated merge.
type EngineMode int32

const (
	// EngineEvent (the default) runs the merge as an explicit state
	// machine dispatched directly on the event calendar: a block request
	// is a handful of heap events, with no goroutine parking and no
	// steady-state allocation.
	EngineEvent EngineMode = iota
	// EngineProcess is the original process-oriented engine — one
	// goroutine interleaved with the kernel through sim.Proc — kept as
	// the readable reference implementation and as the oracle the A/B
	// byte-identity tests compare the event core against.
	EngineProcess
)

// engineMode is process-global rather than a Config field on purpose:
// the two engines are bit-for-bit equivalent, so the mode is an
// execution detail that must not enter the canonical config encoding
// (it would change every cache key for no observable difference).
var engineMode atomic.Int32

// SetEngineMode selects the engine for subsequent core.Run calls. It
// must not be toggled while runs are in flight; grid workers read it
// once per run.
func SetEngineMode(m EngineMode) { engineMode.Store(int32(m)) }

// CurrentEngineMode returns the mode SetEngineMode last selected.
func CurrentEngineMode() EngineMode { return EngineMode(engineMode.Load()) }

// mstate is the merge machine's wait point: which resumption the next
// step call performs.
type mstate uint8

const (
	msInitLoad    mstate = iota // awaiting the initial cache fill
	msDemandWait                // fetch wait before consuming (leading block absent)
	msRefillWait                // fetch wait after consuming (demand refill)
	msMergeSleep                // per-block merge compute time elapsing
	msProduceWait               // write-behind buffer full
	msDrainWait                 // tail writes landing
	msDone
)

// machine is the event-driven merge engine: the same control flow as
// engine.cpu, but with every park point reified as a state so the merge
// advances by plain event dispatch instead of goroutine handoffs.
//
// Equivalence with the process engine is exact, not approximate. Every
// place the process engine parks and is woken through an After(0) hop
// (Completion.Complete, Signal.Broadcast, Sleep), the machine schedules
// its step function at the same position inside the same event, so
// same-instant event ordering — and with it every RNG draw and cache
// decision — is identical. The A/B tests assert byte-equal results.
type machine struct {
	e *engine

	// stepFn caches the step method value: it is scheduled once per
	// resumption and would otherwise allocate a closure each time.
	stepFn func()

	state  mstate
	merged int64
	total  int64

	// j is the demand run of the fetch wait in progress.
	j int

	// awaitLeft counts outstanding awaited requests (synchronized
	// batches and the initial load); the step runs when it reaches zero,
	// mirroring Proc.AwaitAll.
	awaitLeft int

	// watchRun is the run whose next arrival wakes the machine, or -1.
	// Mirrors parking on runArrival[j] with Signal.Wait: the notifier
	// clears it and schedules a same-instant step, which re-checks the
	// condition and may re-register.
	watchRun int

	// watchBuffer marks the machine parked on the writer (a freed
	// write-behind buffer slot, or the drain emptying).
	watchBuffer bool

	stallStart sim.Time // start of the fetch wait in progress
	sleepStart sim.Time // start of the merge-compute sleep
	waitStart  sim.Time // start of the writer wait in progress
}

func newMachine(e *engine) *machine {
	m := &machine{e: e, total: e.cfg.TotalBlocks(), watchRun: -1}
	m.stepFn = m.step
	return m
}

// start schedules the machine's first event, mirroring Spawn: liveness
// is retained immediately, the body starts after already-pending
// same-instant events, and the tracer sees the same lifecycle marks the
// process engine emits.
func (m *machine) start() {
	e := m.e
	e.k.Retain()
	e.k.After(0, func() {
		if tr := e.k.Tracer(); tr != nil {
			tr.Event(e.k.Now(), "proc-start", "cpu")
		}
		m.initialLoad()
	})
}

// initialLoad issues the paper's initial state — the first blocks of
// every run, N per run when the cache allows, at least one — and parks
// until all of them land.
func (m *machine) initialLoad() {
	e := m.e
	base := min(e.cfg.N, e.cfg.CacheBlocks/e.cfg.K)
	if base < 1 {
		base = 1
	}
	n := 0
	for r := 0; r < e.cfg.K; r++ {
		per := min(base, e.lay.RunLength(r))
		if !e.cache.Reserve(per) {
			panic("core: initial load exceeds cache")
		}
		e.nextFetch[r] = per
		e.inflight[r] = per
		n += e.submitRun(r, 0, per, true)
	}
	m.stallStart = e.k.Now()
	m.state = msInitLoad
	m.awaitLeft = n
}

// step resumes the machine after the wait its state records, then runs
// the merge forward until the next park or completion. It is only ever
// invoked as a kernel event.
func (m *machine) step() {
	e := m.e
	switch m.state {
	case msInitLoad:
		e.cfg.Trace.CPUSpan(trace.CPUStall, m.stallStart, e.k.Now())
		m.advance()
	case msDemandWait:
		if !m.arrivalCheck() {
			return
		}
		if !m.consume() {
			return
		}
		m.resumeAfterConsume()
	case msRefillWait:
		if !m.arrivalCheck() {
			return
		}
		m.resumeAfterConsume()
	case msMergeSleep:
		e.cfg.Trace.CPUSpan(trace.CPUCompute, m.sleepStart, e.k.Now())
		m.resumeAfterMerge()
	case msProduceWait:
		if !m.produceCheck() {
			return
		}
		m.finishProduce()
		m.merged++
		m.advance()
	case msDrainWait:
		m.drainCheck()
	case msDone:
		panic("core: merge machine stepped after completion")
	}
}

// advance runs merge-loop iterations from the top until the machine
// parks or the merge completes.
func (m *machine) advance() {
	e := m.e
	for m.merged < m.total {
		m.j = e.model.Choose(e.active)

		// The invariant of the paper's loop is that every active run has
		// its leading block cached; replayed or skewed workloads can
		// break it, so wait defensively.
		if e.cache.Available(m.j) == 0 && !m.beginFetch(msDemandWait) {
			return
		}
		if !m.consume() {
			return
		}
		if !m.postMerge() {
			return
		}
		if e.writer != nil && !m.produce() {
			return
		}
		m.merged++
	}
	m.finishUp()
}

// resumeAfterConsume continues an iteration from just after the
// consume step (a satisfied refill wait lands here).
func (m *machine) resumeAfterConsume() {
	if !m.postMerge() {
		return
	}
	m.resumeAfterMerge()
}

// resumeAfterMerge continues an iteration from just after the merge
// compute time.
func (m *machine) resumeAfterMerge() {
	if m.e.writer != nil && !m.produce() {
		return
	}
	m.merged++
	m.advance()
}

// beginFetch starts the fetch wait for demand run m.j (the event-mode
// fetchAndWait): issue a fetch unless one is already in flight, await
// the whole batch when synchronized, then wait for the leading block.
// It reports whether the wait completed inline.
func (m *machine) beginFetch(st mstate) bool {
	e := m.e
	m.state = st
	m.stallStart = e.k.Now()
	if e.nextFetch[m.j] <= e.cache.NextToConsume(m.j) {
		n := e.submitBatch(e.planFetch(m.j), e.cfg.Synchronized)
		if e.cfg.Synchronized && n > 0 {
			m.awaitLeft = n
			return false
		}
	}
	return m.arrivalCheck()
}

// arrivalCheck finishes the fetch wait if run j's leading block is
// cached, registering for its next arrival otherwise.
func (m *machine) arrivalCheck() bool {
	e := m.e
	if e.cache.Available(m.j) > 0 {
		now := e.k.Now()
		stall := now - m.stallStart
		e.stallTime += stall
		e.stallHist.Add(stall.Milliseconds())
		e.cfg.Trace.CPUStallOn(m.j, m.stallStart, now)
		return true
	}
	m.watchRun = m.j
	return false
}

// consume merges run j's leading block: the loop body between the
// demand wait and the merge time. It reports false when the refill
// fetch parked the machine.
func (m *machine) consume() bool {
	e := m.e
	j := m.j
	e.cache.Consume(j)
	e.consumedOf[j]++
	if e.consumedOf[j] == e.lay.RunLength(j) {
		e.deactivate(j)
	} else if e.cache.Available(j) == 0 {
		// The run's cached blocks are exhausted: the next block is
		// the demand-fetch block (paper §2). Fetch and wait per the
		// configured synchronization before merging proceeds.
		if !m.beginFetch(msRefillWait) {
			return false
		}
	}
	return true
}

// postMerge elapses the per-block merge compute time, if configured.
func (m *machine) postMerge() bool {
	e := m.e
	if e.cfg.MergeTimePerBlock > 0 {
		m.state = msMergeSleep
		m.sleepStart = e.k.Now()
		e.k.After(e.cfg.MergeTimePerBlock, m.stepFn)
		return false
	}
	return true
}

// produce hands the merged block to the write-behind writer, parking
// while the buffer is full (the event-mode writer.produce). Callers
// guard on e.writer != nil.
func (m *machine) produce() bool {
	e := m.e
	m.state = msProduceWait
	m.waitStart = e.k.Now()
	if !m.produceCheck() {
		return false
	}
	m.finishProduce()
	return true
}

// produceCheck reports whether the write-behind buffer has room,
// registering for the next freed slot otherwise.
func (m *machine) produceCheck() bool {
	w := m.e.writer
	if w.pending+w.outstanding < w.cfg.BufferBlocks {
		return true
	}
	m.watchBuffer = true
	return false
}

// finishProduce buffers the produced block and flushes a full batch.
func (m *machine) finishProduce() {
	w := m.e.writer
	w.writeStall += m.e.k.Now() - m.waitStart
	w.pending++
	if w.pending >= w.cfg.BatchBlocks {
		m.flush(w.pending)
	}
}

// flush submits a write of n buffered blocks to the next round-robin
// target on the pooled no-wait path (the event-mode writer.flush).
func (m *machine) flush(n int) {
	e := m.e
	w := e.writer
	target := w.nextTarget
	w.nextTarget = (w.nextTarget + 1) % len(w.disks)
	addr := w.nextAddr[target]
	w.nextAddr[target] += n
	w.pending -= n
	w.outstanding += n
	ww := e.getWriteWrap()
	ww.req.Start, ww.req.Count, ww.req.Tag = addr, n, "write"
	w.disks[target].SubmitNoWait(&ww.req)
}

// finishUp ends the merge loop: flush the ragged write tail and wait
// for all writes to land, then finish.
func (m *machine) finishUp() {
	e := m.e
	if e.writer != nil {
		if e.writer.pending > 0 {
			m.flush(e.writer.pending)
		}
		m.state = msDrainWait
		m.waitStart = e.k.Now()
		m.drainCheck()
		return
	}
	m.finish()
}

// drainCheck completes the run once every submitted write has landed.
func (m *machine) drainCheck() {
	w := m.e.writer
	if w.outstanding != 0 {
		m.watchBuffer = true
		return
	}
	w.writeStall += m.e.k.Now() - m.waitStart
	m.finish()
}

// finish records the merge's completion instant and releases the
// machine's liveness hold, mirroring the process body returning.
func (m *machine) finish() {
	e := m.e
	e.finish = e.k.Now()
	m.state = msDone
	if tr := e.k.Tracer(); tr != nil {
		tr.Event(e.k.Now(), "proc-end", "cpu")
	}
	e.k.Release()
}

// noteArrival observes every deposited block (the event-mode
// runArrival broadcast): when the machine is parked on that run's
// arrival it schedules a same-instant step, which re-checks the
// arrival condition exactly like a Signal waiter re-checking WaitFor.
func (m *machine) noteArrival(run int) {
	if m.watchRun == run {
		m.watchRun = -1
		m.e.k.After(0, m.stepFn)
	}
}

// noteBatchDone observes an awaited request's last block landing; the
// machine proceeds when the whole batch is in, exactly where AwaitAll
// would have scheduled the process's final wake.
func (m *machine) noteBatchDone() {
	m.awaitLeft--
	if m.awaitLeft == 0 {
		m.e.k.After(0, m.stepFn)
	}
}

// noteWriteSlot observes a written block freeing a buffer slot (the
// event-mode bufferFree broadcast).
func (m *machine) noteWriteSlot() {
	if m.watchBuffer {
		m.watchBuffer = false
		m.e.k.After(0, m.stepFn)
	}
}

// fetchWrap is a pooled in-flight read request: the Request, its
// delivery context, and a bound-once OnBlock. The wrapper frees itself
// as its last block lands, so a steady-state fetch allocates nothing.
type fetchWrap struct {
	e       *engine
	req     disk.Request
	run     int
	ext     layout.Extent
	issued  sim.Time
	awaited bool
}

// onBlock is the delivery callback, field for field the same sequence
// as the process engine's closure: deposit, in-flight accounting,
// arrival wake, completion span — then batch accounting where
// Done.Complete would have run.
func (w *fetchWrap) onBlock(i int, at sim.Time) {
	e := w.e
	e.cache.Deposit(w.run, w.ext.BlockIndex(i))
	e.inflight[w.run]--
	e.m.noteArrival(w.run)
	if i == w.ext.Count-1 {
		e.cfg.Trace.Prefetch(trace.CPUTrack+1+w.ext.Disk, w.run, w.ext.Count, w.issued, at)
		if w.awaited {
			e.m.noteBatchDone()
		}
		// Safe to recycle here: reuse can only happen in a later event
		// (machine steps are always scheduled, never run inline), and
		// the disk is done reading the request by then.
		e.fetchFree = append(e.fetchFree, w)
	}
}

func (e *engine) getFetchWrap() *fetchWrap {
	if n := len(e.fetchFree); n > 0 {
		w := e.fetchFree[n-1]
		e.fetchFree[n-1] = nil
		e.fetchFree = e.fetchFree[:n-1]
		return w
	}
	w := &fetchWrap{e: e}
	w.req.OnBlock = w.onBlock
	return w
}

// writeWrap is the pooled write-request counterpart of fetchWrap.
type writeWrap struct {
	e   *engine
	req disk.Request
}

func (w *writeWrap) onBlock(i int, at sim.Time) {
	wr := w.e.writer
	wr.outstanding--
	wr.written++
	w.e.m.noteWriteSlot()
	if i == w.req.Count-1 {
		w.e.writeFree = append(w.e.writeFree, w)
	}
}

func (e *engine) getWriteWrap() *writeWrap {
	if n := len(e.writeFree); n > 0 {
		w := e.writeFree[n-1]
		e.writeFree[n-1] = nil
		e.writeFree = e.writeFree[:n-1]
		return w
	}
	w := &writeWrap{e: e}
	w.req.OnBlock = w.onBlock
	return w
}

// submitRun submits the fetch of run r's blocks [from, from+n) as
// per-disk pooled no-wait requests and returns how many requests were
// submitted. Contiguous placements take a single-extent fast path;
// striped runs decompose through the layout.
func (e *engine) submitRun(run, from, n int, awaited bool) int {
	issued := e.k.Now()
	if h := e.lay.HomeDisk(run); h >= 0 {
		w := e.getFetchWrap()
		w.run, w.issued, w.awaited = run, issued, awaited
		w.ext = layout.Extent{Disk: h, Start: e.lay.RunStart(run) + from, Count: n, FromIdx: from, Stride: 1}
		w.req.Start, w.req.Count, w.req.Tag = w.ext.Start, n, run
		e.disks[h].SubmitNoWait(&w.req)
		return 1
	}
	e.extBuf = e.lay.AppendExtents(e.extBuf[:0], run, from, n)
	for _, ext := range e.extBuf {
		w := e.getFetchWrap()
		w.run, w.ext, w.issued, w.awaited = run, ext, issued, awaited
		w.req.Start, w.req.Count, w.req.Tag = ext.Start, ext.Count, run
		e.disks[ext.Disk].SubmitNoWait(&w.req)
	}
	return len(e.extBuf)
}

// submitBatch reserves cache space for and submits a planned batch,
// returning the number of disk requests submitted (the event-mode
// issueFetch submission loop).
func (e *engine) submitBatch(batch []piece, awaited bool) int {
	count := 0
	for _, pc := range batch {
		if !e.cache.Reserve(pc.n) {
			// Unreachable by construction: admission just checked space,
			// and the merge loop freed the demand block's slot first.
			panic("core: reservation failed after admission")
		}
		from := e.nextFetch[pc.run]
		e.nextFetch[pc.run] += pc.n
		e.inflight[pc.run] += pc.n
		count += e.submitRun(pc.run, from, pc.n, awaited)
	}
	return count
}
