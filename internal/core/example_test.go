package core_test

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
)

// ExampleRun simulates the paper's headline configuration with
// deterministic rotational latency so the output is exact.
func ExampleRun() {
	cfg := core.Default() // k=25 runs, D=5 disks, calibrated drive
	cfg.N = 10            // intra-run prefetch depth
	cfg.InterRun = true   // prefetch one run on every disk per miss
	cfg.Synchronized = true
	cfg.CacheBlocks = cache.Unlimited
	cfg.Disk.Rotational = disk.RotConstant // exact-output determinism

	res, err := core.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("strategy: %s\n", cfg.StrategyName())
	fmt.Printf("merged %d blocks in %.1f s\n", res.MergedBlocks, res.TotalTime.Seconds())
	fmt.Printf("success ratio: %.1f\n", res.SuccessRatio())
	// Output:
	// strategy: all-disks-one-run/sync
	// merged 25000 blocks in 18.0 s
	// success ratio: 1.0
}

// ExampleRunTrials averages independent replications, as the paper
// does for every plotted point.
func ExampleRunTrials() {
	cfg := core.Default()
	cfg.K, cfg.D, cfg.BlocksPerRun = 10, 2, 100
	cfg.CacheBlocks = cfg.DefaultCache()

	agg, err := core.RunTrials(cfg, 5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d trials, all merged %d blocks\n", agg.Trials, agg.Results[0].MergedBlocks)
	// Output:
	// 5 trials, all merged 1000 blocks
}

// ExampleConfig_DefaultCache shows the paper's natural cache sizes.
func ExampleConfig_DefaultCache() {
	cfg := core.Default()
	cfg.K, cfg.D, cfg.N = 25, 5, 10
	fmt.Println("intra-run:", cfg.DefaultCache())
	cfg.InterRun = true
	fmt.Println("inter-run:", cfg.DefaultCache())
	// Output:
	// intra-run: 250
	// inter-run: 300
}
