package core

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/trace"
)

// WriteConfig models the merge output traffic the paper deliberately
// excludes ("the write traffic will not be considered in this study"
// — it assumes a separate set of output disks). Enabling it lets the
// library both validate that assumption (separate write disks barely
// move the total) and quantify what happens when reads and writes
// share arms.
type WriteConfig struct {
	// Enabled turns on output modelling; every merged block produces
	// one output block.
	Enabled bool

	// Shared routes writes to the input disks (contention!) instead of
	// a separate output array.
	Shared bool

	// Disks is the size of the separate output array (ignored when
	// Shared; default 1).
	Disks int

	// BatchBlocks is the write-behind granularity: output blocks
	// accumulate and are written Batch at a time, amortizing seek and
	// latency exactly like intra-run prefetching does for reads
	// (default: the read-side N).
	BatchBlocks int

	// BufferBlocks bounds the unwritten output the CPU may run ahead
	// by; a full buffer stalls the merge. The default is two batches
	// per output target, enough to keep every target streaming.
	BufferBlocks int
}

// withDefaults resolves defaulted fields against the read-side config.
// targets is the number of output disks writes will round-robin over.
func (w WriteConfig) withDefaults(readN, targets int) WriteConfig {
	if w.Disks <= 0 {
		w.Disks = 1
	}
	if w.BatchBlocks <= 0 {
		w.BatchBlocks = readN
	}
	if w.BufferBlocks <= 0 {
		w.BufferBlocks = 2 * w.BatchBlocks * targets
	}
	return w
}

// targets returns how many disks output traffic spreads over.
func (w WriteConfig) targets(c Config) int {
	if w.Shared {
		return c.D
	}
	if w.Disks <= 0 {
		return 1
	}
	return w.Disks
}

// validate reports the first write-config error, or nil.
func (w WriteConfig) validate(c Config) error {
	if !w.Enabled {
		return nil
	}
	ww := w.withDefaults(c.N, w.targets(c))
	if ww.BufferBlocks < ww.BatchBlocks {
		return fmt.Errorf("core: write buffer %d smaller than batch %d", ww.BufferBlocks, ww.BatchBlocks)
	}
	if !w.Shared {
		return nil
	}
	// Shared mode appends output after the input runs; the geometry
	// must hold both.
	lengths := c.runLengths()
	perDisk := make([]int, c.D)
	for r, n := range lengths {
		perDisk[r%c.D] += n // approximation of round-robin packing
	}
	out := int(c.TotalBlocks())/c.D + 1
	for _, used := range perDisk {
		if used+out > c.Disk.CapacityBlocks() {
			return fmt.Errorf("core: shared write traffic needs %d blocks on a disk, geometry holds %d",
				used+out, c.Disk.CapacityBlocks())
		}
	}
	return nil
}

// writer manages the merge's output stream inside the engine.
type writer struct {
	cfg   WriteConfig
	e     *engine
	disks []*disk.Disk // the output targets (input disks when shared)

	// nextAddr[i] is the next sequential output address on target i;
	// target selection is round-robin for balance.
	nextAddr   []int
	nextTarget int

	pending     int // produced, unwritten blocks (buffered)
	outstanding int // blocks inside submitted write requests

	bufferFree *sim.Signal

	// Stats.
	written    int64
	writeStall sim.Time
}

// newWriter wires output modelling into the engine; returns nil when
// disabled.
func newWriter(e *engine) (*writer, error) {
	if !e.cfg.Write.Enabled {
		return nil, nil
	}
	w := &writer{
		cfg:        e.cfg.Write.withDefaults(e.cfg.N, e.cfg.Write.targets(e.cfg)),
		e:          e,
		bufferFree: e.k.NewSignal(),
	}
	if w.cfg.Shared {
		w.disks = e.disks
		// Output regions start after each disk's resident input runs.
		w.nextAddr = make([]int, len(e.disks))
		for dk := range e.disks {
			used := 0
			for _, r := range e.lay.RunsOnDisk(dk) {
				if e.lay.HomeDisk(r) == dk {
					used += e.lay.RunLength(r)
				}
			}
			if e.lay.Placement().String() == "striped" {
				used = e.lay.MaxBlocksOnDisk()
			}
			w.nextAddr[dk] = used
		}
		return w, nil
	}
	// Separate output array: fresh disks numbered after the input ones.
	w.nextAddr = make([]int, w.cfg.Disks)
	for i := 0; i < w.cfg.Disks; i++ {
		id := len(e.disks) + i
		dk, err := disk.New(e.k, id, e.cfg.Disk, e.writeRot.SplitIndexed("write-disk", i))
		if err != nil {
			return nil, err
		}
		dk.SetBusyObserver(e.observerFor(id))
		if e.cfg.OnRequest != nil {
			dk.SetRequestObserver(e.cfg.OnRequest)
		}
		if e.cfg.Trace != nil {
			e.cfg.Trace.Track(trace.CPUTrack+1+id, fmt.Sprintf("write %d", i))
			dk.SetTrace(e.cfg.Trace, trace.CPUTrack+1+id)
		}
		w.disks = append(w.disks, dk)
	}
	return w, nil
}

// produce is called by the CPU for every merged block. It stalls the
// calling process when the write-behind buffer is full, then batches
// the block for writing.
func (w *writer) produce(p *sim.Proc) {
	start := p.Now()
	p.WaitFor(w.bufferFree, func() bool {
		return w.pending+w.outstanding < w.cfg.BufferBlocks
	})
	w.writeStall += p.Now() - start
	w.pending++
	if w.pending >= w.cfg.BatchBlocks {
		w.flush(w.pending)
	}
}

// flush submits a write of n buffered blocks to the next target.
// Buffer slots free as individual blocks land on the platter.
func (w *writer) flush(n int) {
	target := w.nextTarget
	w.nextTarget = (w.nextTarget + 1) % len(w.disks)
	addr := w.nextAddr[target]
	w.nextAddr[target] += n
	w.pending -= n
	w.outstanding += n
	w.disks[target].Submit(&disk.Request{
		Start: addr,
		Count: n,
		Tag:   "write",
		OnBlock: func(i int, at sim.Time) {
			w.outstanding--
			w.written++
			w.bufferFree.Broadcast()
		},
	})
}

// drain flushes any ragged tail and waits until all writes land.
func (w *writer) drain(p *sim.Proc) {
	if w.pending > 0 {
		w.flush(w.pending)
	}
	start := p.Now()
	p.WaitFor(w.bufferFree, func() bool { return w.outstanding == 0 })
	w.writeStall += p.Now() - start
}
