package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/cache"
	"repro/internal/faults"
)

// This file is the serving boundary of the core package: the one
// result-JSON schema shared by `mergesim -json` and the simd HTTP
// daemon, and the canonical configuration encoding whose hash keys the
// daemon's result cache.

// DiskJSON is one disk's statistics in the shared result schema. The
// fault counters carry omitempty so a zero-fault run emits exactly the
// pre-fault-layer bytes.
type DiskJSON struct {
	Requests    int64   `json:"requests"`
	Blocks      int64   `json:"blocks"`
	BusySeconds float64 `json:"busy_seconds"`
	MeanSeekCyl float64 `json:"mean_seek_cylinders"`
	MaxQueueLen int     `json:"max_queue_len"`

	FaultRetries    int64   `json:"fault_retries,omitempty"`
	RetrySeconds    float64 `json:"fault_retry_seconds,omitempty"`
	OutageSeconds   float64 `json:"fault_outage_seconds,omitempty"`
	SlowdownSeconds float64 `json:"fault_slowdown_seconds,omitempty"`
}

// TrialJSON is one replication's metrics in the shared result schema.
type TrialJSON struct {
	Seed          uint64     `json:"seed"`
	TotalSeconds  float64    `json:"total_seconds"`
	SuccessRatio  float64    `json:"success_ratio"`
	Overlap       float64    `json:"mean_busy_disks"`
	StallSeconds  float64    `json:"cpu_stall_seconds"`
	StallP95Ms    float64    `json:"stall_p95_ms"`
	MeanDepth     float64    `json:"mean_prefetch_depth"`
	CachePeak     int64      `json:"cache_peak_blocks"`
	MergedBlocks  int64      `json:"merged_blocks"`
	WrittenBlocks int64      `json:"written_blocks,omitempty"`
	Disks         []DiskJSON `json:"disks"`

	// Fault totals across disks; all omitted on a zero-fault run.
	FaultRetries    int64   `json:"fault_retries,omitempty"`
	RetrySeconds    float64 `json:"fault_retry_seconds,omitempty"`
	OutageSeconds   float64 `json:"fault_outage_seconds,omitempty"`
	SlowdownSeconds float64 `json:"fault_slowdown_seconds,omitempty"`
}

// ResultJSON is the machine-readable summary of an Aggregate: the one
// schema emitted by every front-end (CLI and HTTP alike), so clients
// can switch between them without reparsing.
type ResultJSON struct {
	Strategy     string      `json:"strategy"`
	K            int         `json:"k"`
	D            int         `json:"d"`
	N            int         `json:"n"`
	BlocksPerRun int         `json:"blocks_per_run"`
	CacheBlocks  int         `json:"cache_blocks"`
	Trials       int         `json:"trials"`
	MeanSeconds  float64     `json:"mean_total_seconds"`
	CI95Seconds  float64     `json:"ci95_total_seconds"`
	MeanSuccess  float64     `json:"mean_success_ratio"`
	Results      []TrialJSON `json:"results"`

	// TraceTruncated is set by traced front-ends when the run's trace
	// recorder hit its event cap: the result numbers are complete (the
	// engine never depends on the recorder) but the exported trace — and
	// anything derived from it — is not. Absent on untraced runs.
	TraceTruncated bool `json:"trace_truncated,omitempty"`
}

// NewResultJSON converts an Aggregate into the shared result schema.
func NewResultJSON(agg Aggregate) ResultJSON {
	cfg := agg.Config
	out := ResultJSON{
		Strategy:     cfg.StrategyName(),
		K:            cfg.K,
		D:            cfg.D,
		N:            cfg.N,
		BlocksPerRun: cfg.BlocksPerRun,
		CacheBlocks:  cfg.CacheBlocks,
		Trials:       agg.Trials,
		MeanSeconds:  agg.TotalTime.Mean(),
		CI95Seconds:  agg.TotalTime.CI95(),
		MeanSuccess:  agg.SuccessRatio.Mean(),
	}
	for _, r := range agg.Results {
		tj := TrialJSON{
			Seed:          r.Config.Seed,
			TotalSeconds:  r.TotalTime.Seconds(),
			SuccessRatio:  r.SuccessRatio(),
			Overlap:       r.MeanConcurrencyWhenBusy,
			StallSeconds:  r.StallTime.Seconds(),
			StallP95Ms:    r.StallP95().Milliseconds(),
			MeanDepth:     r.MeanDepth,
			CachePeak:     r.CachePeak,
			MergedBlocks:  r.MergedBlocks,
			WrittenBlocks: r.WrittenBlocks,
		}
		tj.FaultRetries = r.Faults.Retries
		tj.RetrySeconds = r.Faults.RetryTime.Seconds()
		tj.OutageSeconds = r.Faults.OutageTime.Seconds()
		tj.SlowdownSeconds = r.Faults.SlowdownTime.Seconds()
		for _, d := range r.PerDisk {
			tj.Disks = append(tj.Disks, DiskJSON{
				Requests:        d.Requests,
				Blocks:          d.Blocks,
				BusySeconds:     d.BusyTime.Seconds(),
				MeanSeekCyl:     d.MeanSeekDistance(),
				MaxQueueLen:     d.MaxQueueLen,
				FaultRetries:    d.Retries,
				RetrySeconds:    d.RetryTime.Seconds(),
				OutageSeconds:   d.OutageTime.Seconds(),
				SlowdownSeconds: d.SlowdownTime.Seconds(),
			})
		}
		out.Results = append(out.Results, tj)
	}
	return out
}

// canonicalConfig mirrors every value field of Config in a fixed order
// with stable string names for the enums. Changing it invalidates every
// cached result keyed by Hash, so only extend it — never reorder.
type canonicalConfig struct {
	K            int     `json:"k"`
	D            int     `json:"d"`
	BlocksPerRun int     `json:"blocks_per_run"`
	RunLengths   []int   `json:"run_lengths,omitempty"`
	N            int     `json:"n"`
	AdaptiveN    bool    `json:"adaptive_n"`
	InterRun     bool    `json:"inter_run"`
	Synchronized bool    `json:"synchronized"`
	CacheBlocks  int     `json:"cache_blocks"`
	Unlimited    bool    `json:"unlimited_cache"`
	MergeMs      float64 `json:"merge_time_ms"`
	MaxSimMs     float64 `json:"max_sim_time_ms"`

	DiskCylinders    int     `json:"disk_cylinders"`
	DiskHeads        int     `json:"disk_heads"`
	DiskSectors      int     `json:"disk_sectors_per_track"`
	DiskSectorBytes  int     `json:"disk_sector_bytes"`
	DiskBlockBytes   int     `json:"disk_block_bytes"`
	DiskSeekMs       float64 `json:"disk_seek_ms_per_cyl"`
	DiskRotMs        float64 `json:"disk_avg_rotational_ms"`
	DiskTransferMs   float64 `json:"disk_transfer_ms_per_block"`
	DiskSeekModel    string  `json:"disk_seek_model"`
	DiskSeekSettleMs float64 `json:"disk_seek_settle_ms"`
	DiskSeekSqrtMs   float64 `json:"disk_seek_sqrt_ms"`
	DiskRotModel     string  `json:"disk_rotational_model"`
	DiskDiscipline   string  `json:"disk_discipline"`

	Placement string `json:"placement"`
	Admission string `json:"admission"`
	RunPolicy string `json:"run_policy"`

	WriteEnabled bool `json:"write_enabled"`
	WriteShared  bool `json:"write_shared"`
	WriteDisks   int  `json:"write_disks"`
	WriteBatch   int  `json:"write_batch_blocks"`
	WriteBuffer  int  `json:"write_buffer_blocks"`

	Seed           uint64 `json:"seed"`
	RecordTimeline bool   `json:"record_timeline"`

	// Appended after the fields above (see the ordering rule); omitted
	// when nil so every pre-fault-layer cache key is unchanged.
	Faults []canonicalFault `json:"faults,omitempty"`
}

// canonicalFault mirrors faults.DiskSpec with fixed field order.
type canonicalFault struct {
	Disk          int             `json:"disk"`
	Slowdown      float64         `json:"slowdown,omitempty"`
	SlowdownAtMs  float64         `json:"slowdown_at_ms,omitempty"`
	ReadErrorProb float64         `json:"read_error_prob,omitempty"`
	MaxRetries    int             `json:"max_retries,omitempty"`
	Outages       []faults.Window `json:"outages,omitempty"`
}

// CanonicalJSON returns a deterministic JSON encoding of the
// configuration's value fields: equal configurations produce identical
// bytes, so the encoding (and its Hash) can key a result cache.
// Configurations carrying runtime callbacks or caller-supplied workload
// models are refused — their results are not a pure function of the
// encodable state.
func (c Config) CanonicalJSON() ([]byte, error) {
	switch {
	case c.Workload != nil:
		return nil, fmt.Errorf("core: config with a caller-supplied Workload has no canonical encoding")
	case c.WorkloadFactory != nil:
		return nil, fmt.Errorf("core: config with a WorkloadFactory has no canonical encoding")
	case c.Tracer != nil:
		return nil, fmt.Errorf("core: config with a Tracer has no canonical encoding")
	case c.OnRequest != nil:
		return nil, fmt.Errorf("core: config with an OnRequest observer has no canonical encoding")
	}
	cc := canonicalConfig{
		K:            c.K,
		D:            c.D,
		BlocksPerRun: c.BlocksPerRun,
		RunLengths:   c.RunLengths,
		N:            c.N,
		AdaptiveN:    c.AdaptiveN,
		InterRun:     c.InterRun,
		Synchronized: c.Synchronized,
		CacheBlocks:  c.CacheBlocks,
		Unlimited:    c.CacheBlocks == cache.Unlimited,
		MergeMs:      c.MergeTimePerBlock.Milliseconds(),
		MaxSimMs:     c.MaxSimTime.Milliseconds(),

		DiskCylinders:    c.Disk.Geometry.Cylinders,
		DiskHeads:        c.Disk.Geometry.Heads,
		DiskSectors:      c.Disk.Geometry.SectorsPerTrack,
		DiskSectorBytes:  c.Disk.Geometry.SectorBytes,
		DiskBlockBytes:   c.Disk.BlockBytes,
		DiskSeekMs:       c.Disk.SeekPerCylinder.Milliseconds(),
		DiskRotMs:        c.Disk.AvgRotational.Milliseconds(),
		DiskTransferMs:   c.Disk.TransferPerBlock.Milliseconds(),
		DiskSeekModel:    c.Disk.Seek.String(),
		DiskSeekSettleMs: c.Disk.SeekSettle.Milliseconds(),
		DiskSeekSqrtMs:   c.Disk.SeekSqrtCoeff.Milliseconds(),
		DiskRotModel:     c.Disk.Rotational.String(),
		DiskDiscipline:   c.Disk.Discipline.String(),

		Placement: c.Placement.String(),
		Admission: c.Admission.String(),
		RunPolicy: c.RunPolicy.String(),

		WriteEnabled: c.Write.Enabled,
		WriteShared:  c.Write.Shared,
		WriteDisks:   c.Write.Disks,
		WriteBatch:   c.Write.BatchBlocks,
		WriteBuffer:  c.Write.BufferBlocks,

		Seed:           c.Seed,
		RecordTimeline: c.RecordTimeline,
	}
	if c.Faults != nil {
		// A non-nil spec with no entries appends nothing, so it encodes
		// identically to nil: equal behavior means equal hash.
		for _, ds := range c.Faults.Disks {
			cc.Faults = append(cc.Faults, canonicalFault{
				Disk:          ds.Disk,
				Slowdown:      ds.Slowdown,
				SlowdownAtMs:  ds.SlowdownAtMs,
				ReadErrorProb: ds.ReadErrorProb,
				MaxRetries:    ds.MaxRetries,
				Outages:       ds.Outages,
			})
		}
	}
	return json.Marshal(cc)
}

// Hash returns a hex SHA-256 of CanonicalJSON: a stable identity for
// the simulation a configuration describes. Two configs with equal
// hashes produce identical Results (the engine is deterministic in its
// configuration), which is what makes result caching sound.
func (c Config) Hash() (string, error) {
	buf, err := c.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:]), nil
}
