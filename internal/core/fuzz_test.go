package core

import (
	"encoding/json"
	"testing"
)

// FuzzCanonicalJSONRoundTrip feeds arbitrary bytes into the canonical
// config schema and checks the property the result cache depends on:
// decode → encode reaches a fixed point in one step, so the hash of a
// canonical encoding is stable across decode/encode cycles. If the
// encoder ever became order- or representation-unstable (map fields,
// float formatting drift, omitempty asymmetries), equal configurations
// would stop producing equal cache keys.
func FuzzCanonicalJSONRoundTrip(f *testing.F) {
	if seed, err := Default().CanonicalJSON(); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"k":25,"d":5,"run_lengths":[1,2,3],"unlimited_cache":true}`))
	f.Add([]byte(`{"faults":[{"disk":1,"slowdown":2,"outages":[{"start_ms":5,"end_ms":9}]}]}`))
	f.Add([]byte(`{"merge_time_ms":0.1,"disk_seek_ms_per_cyl":1e-9,"seed":18446744073709551615}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"k":"not a number"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var cc canonicalConfig
		if err := json.Unmarshal(data, &cc); err != nil {
			return // not a canonical encoding; nothing to round-trip
		}
		enc1, err := json.Marshal(cc)
		if err != nil {
			t.Fatalf("canonical value failed to re-encode: %v", err)
		}
		var cc2 canonicalConfig
		if err := json.Unmarshal(enc1, &cc2); err != nil {
			t.Fatalf("canonical encoding failed to decode: %v\nencoding: %s", err, enc1)
		}
		enc2, err := json.Marshal(cc2)
		if err != nil {
			t.Fatalf("round-tripped value failed to re-encode: %v", err)
		}
		if string(enc1) != string(enc2) {
			t.Fatalf("canonical encoding is not a fixed point:\nfirst:  %s\nsecond: %s", enc1, enc2)
		}
	})
}
