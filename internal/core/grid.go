package core

import (
	"context"
	"fmt"

	"repro/internal/parallel"
)

// RunGrid simulates every configuration in cfgs for trials independent
// replications each (seeds cfg.Seed, cfg.Seed+1, ...) and returns one
// Aggregate per configuration, in input order. The full point × trial
// grid is flattened into one job list and executed on the shared
// bounded-worker pool (workers <= 0 means GOMAXPROCS), so a sweep
// saturates the machine even when each point runs few trials.
//
// Determinism: each job's seed derives from its configuration and trial
// index alone, and results are aggregated in (point, trial) order, so
// the outcome is byte-identical to a serial sweep regardless of worker
// count. Configurations carrying a Tracer, a Trace recorder, or an
// OnRequest observer force the whole grid serial: those callbacks and
// the recorder are not synchronized.
func RunGrid(cfgs []Config, trials, workers int) ([]Aggregate, error) {
	return RunGridContext(context.Background(), cfgs, trials, workers)
}

// RunGridContext is RunGrid with cooperative cancellation: once ctx is
// done no further (point, trial) jobs start, in-flight jobs finish, and
// the call returns ctx.Err() with no aggregates. Cancellation
// granularity is one simulation job — a single pathological Run is
// bounded by Config.MaxSimTime, not by ctx.
func RunGridContext(ctx context.Context, cfgs []Config, trials, workers int) ([]Aggregate, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("core: trials = %d", trials)
	}
	for i, cfg := range cfgs {
		if trials > 1 && cfg.Workload != nil && cfg.WorkloadFactory == nil {
			return nil, fmt.Errorf(
				"core: config %d: Workload is a stateful model and cannot be shared across %d trials; set WorkloadFactory instead",
				i, trials)
		}
		if cfg.Tracer != nil || cfg.Trace != nil || cfg.OnRequest != nil {
			workers = 1
		}
	}
	jobs := len(cfgs) * trials
	results := make([]Result, jobs)
	errs := make([]error, jobs)
	if err := parallel.DoContext(ctx, jobs, workers, func(j int) {
		point, trial := j/trials, j%trials
		c := cfgs[point]
		c.Seed += uint64(trial)
		if c.WorkloadFactory != nil {
			c.Workload = c.WorkloadFactory(trial)
		}
		results[j], errs[j] = Run(c)
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	aggs := make([]Aggregate, len(cfgs))
	for i, cfg := range cfgs {
		aggs[i] = aggregate(cfg, results[i*trials:(i+1)*trials])
	}
	return aggs, nil
}

// aggregate folds one configuration's trial results, in trial order, so
// the floating-point sums match a serial run exactly.
func aggregate(cfg Config, results []Result) Aggregate {
	agg := Aggregate{Config: cfg, Trials: len(results)}
	for _, res := range results {
		agg.Results = append(agg.Results, res)
		agg.TotalTime.Add(res.TotalTime.Seconds())
		agg.SuccessRatio.Add(res.SuccessRatio())
		agg.Concurrency.Add(res.MeanConcurrencyWhenBusy)
		agg.StallTime.Add(res.StallTime.Seconds())
	}
	return agg
}
