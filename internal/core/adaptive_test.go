package core

import (
	"testing"

	"repro/internal/cache"
)

// adaptiveAt runs the headline shape at cache size c with the adaptive
// controller bounded by maxN.
func adaptiveAt(t *testing.T, c, maxN int) Result {
	t.Helper()
	cfg := Default()
	cfg.N = maxN
	cfg.AdaptiveN = true
	cfg.InterRun = true
	cfg.CacheBlocks = c
	return mustRun(t, cfg)
}

// fixedAt runs the same shape at a fixed depth.
func fixedAt(t *testing.T, c, n int) Result {
	t.Helper()
	cfg := Default()
	cfg.N = n
	cfg.InterRun = true
	cfg.CacheBlocks = c
	return mustRun(t, cfg)
}

func TestAdaptiveTracksBestFixedN(t *testing.T) {
	// The paper: "for a given cache size, there is an optimal value of
	// N". The AIMD controller should get within striking distance of
	// the best fixed depth at every cache size without retuning.
	for _, c := range []int{200, 500, 1000} {
		best := fixedAt(t, c, 1).TotalTime
		for _, n := range []int{2, 5, 10, 15, 20} {
			if r := fixedAt(t, c, n); r.TotalTime < best {
				best = r.TotalTime
			}
		}
		ad := adaptiveAt(t, c, 30)
		if ad.TotalTime > best*16/10 {
			t.Fatalf("C=%d: adaptive %v vs best fixed %v (>1.6x)", c, ad.TotalTime, best)
		}
	}
}

func TestAdaptiveDepthRespondsToCache(t *testing.T) {
	tight := adaptiveAt(t, 200, 30)
	ample := adaptiveAt(t, 2000, 30)
	if !(ample.MeanDepth > tight.MeanDepth) {
		t.Fatalf("mean depth did not grow with cache: tight %v, ample %v",
			tight.MeanDepth, ample.MeanDepth)
	}
	if tight.MeanDepth < 1 || ample.MeanDepth > 30 {
		t.Fatalf("depths out of bounds: %v, %v", tight.MeanDepth, ample.MeanDepth)
	}
}

func TestAdaptiveFixedDepthReported(t *testing.T) {
	res := fixedAt(t, 500, 10)
	if res.MeanDepth != 10 {
		t.Fatalf("fixed-depth MeanDepth = %v", res.MeanDepth)
	}
}

func TestAdaptiveWithUnlimitedCacheGrowsToBound(t *testing.T) {
	cfg := Default()
	cfg.N = 8
	cfg.AdaptiveN = true
	cfg.InterRun = true
	cfg.CacheBlocks = cache.Unlimited
	res := mustRun(t, cfg)
	// Nothing ever rejects: the controller should climb to the bound
	// and stay there for most decisions.
	if res.MeanDepth < 6 {
		t.Fatalf("mean depth %v did not approach bound 8", res.MeanDepth)
	}
	if res.SuccessRatio() != 1 {
		t.Fatalf("success = %v", res.SuccessRatio())
	}
}

func TestAdaptiveIntraOnly(t *testing.T) {
	cfg := Default()
	cfg.N = 12
	cfg.AdaptiveN = true
	cfg.CacheBlocks = 100 // < kN: fixed N=12 would reject constantly
	res := mustRun(t, cfg)
	if res.MergedBlocks != 25000 {
		t.Fatalf("merged = %d", res.MergedBlocks)
	}
	if res.MeanDepth >= 12 {
		t.Fatalf("tight cache mean depth = %v", res.MeanDepth)
	}
}
