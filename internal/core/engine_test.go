package core

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/sim"
	"repro/internal/workload"
)

// small returns a fast configuration for structural tests: 6 runs of 40
// blocks on 2 disks with deterministic rotation.
func small() Config {
	cfg := Default()
	cfg.K = 6
	cfg.D = 2
	cfg.BlocksPerRun = 40
	cfg.N = 1
	cfg.Disk.Rotational = disk.RotConstant
	cfg.CacheBlocks = cfg.DefaultCache()
	return cfg
}

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunMergesEveryBlock(t *testing.T) {
	res := mustRun(t, small())
	if res.MergedBlocks != 240 {
		t.Fatalf("merged = %d", res.MergedBlocks)
	}
	var blocks int64
	for _, d := range res.PerDisk {
		blocks += d.Blocks
	}
	if blocks != 240 {
		t.Fatalf("disks transferred %d blocks, want 240", blocks)
	}
	if res.TotalTime <= 0 {
		t.Fatal("non-positive total time")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := small()
	cfg.N = 3
	cfg.InterRun = true
	cfg.CacheBlocks = cfg.DefaultCache()
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.TotalTime != b.TotalTime || a.Decisions != b.Decisions ||
		a.FullPrefetches != b.FullPrefetches || a.StallTime != b.StallTime {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := small()
	a := mustRun(t, cfg)
	cfg.Seed = 999
	b := mustRun(t, cfg)
	if a.TotalTime == b.TotalTime {
		t.Fatal("different seeds produced identical totals (suspicious)")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.D = 0 },
		func(c *Config) { c.D = c.K + 1 },
		func(c *Config) { c.BlocksPerRun = 0 },
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.N = c.BlocksPerRun + 1 },
		func(c *Config) { c.CacheBlocks = c.K - 1 },
		func(c *Config) { c.MergeTimePerBlock = -1 },
		func(c *Config) { c.Disk.BlockBytes = 0 },
		func(c *Config) { c.K = 200; c.D = 1 }, // 200k blocks > disk capacity
	}
	for i, mutate := range bad {
		cfg := Default()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestSingleDiskMatchesEq1(t *testing.T) {
	cfg := Default()
	cfg.D = 1
	res := mustRun(t, cfg)
	// eq1: 339.8 s. One trial of 25000 blocks self-averages tightly.
	if got := res.TotalTime.Seconds(); math.Abs(got-339.8) > 3 {
		t.Fatalf("single-disk no-prefetch total = %v s, want ≈339.8", got)
	}
	// No prefetching: one decision per block beyond the initial load.
	if res.Decisions != int64(25*1000-25) {
		t.Fatalf("decisions = %d", res.Decisions)
	}
	if res.SuccessRatio() != 1 {
		t.Fatalf("success ratio = %v with ample cache", res.SuccessRatio())
	}
}

func TestMultiDiskNoPrefetchMatchesEq3(t *testing.T) {
	cfg := Default() // k=25, D=5, N=1
	res := mustRun(t, cfg)
	if got := res.TotalTime.Seconds(); math.Abs(got-287.25) > 3 {
		t.Fatalf("multi-disk no-prefetch total = %v s, want ≈287.25", got)
	}
}

func TestIntraSyncMatchesEq4(t *testing.T) {
	cfg := Default()
	cfg.N = 10
	cfg.Synchronized = true
	cfg.CacheBlocks = cfg.DefaultCache()
	res := mustRun(t, cfg)
	if got := res.TotalTime.Seconds(); math.Abs(got-88.6) > 1.5 {
		t.Fatalf("sync intra total = %v s, want ≈88.6", got)
	}
	// Synchronized operation admits no overlap: mean concurrency given
	// busy must stay essentially 1.
	if res.MeanConcurrencyWhenBusy > 1.05 {
		t.Fatalf("sync overlap = %v, want ≈1", res.MeanConcurrencyWhenBusy)
	}
}

func TestInterSyncMatchesEq5(t *testing.T) {
	cfg := Default()
	cfg.N = 10
	cfg.InterRun = true
	cfg.Synchronized = true
	cfg.CacheBlocks = cache.Unlimited
	res := mustRun(t, cfg)
	if got := res.TotalTime.Seconds(); math.Abs(got-20.5) > 0.8 {
		t.Fatalf("sync inter total = %v s, want ≈20.5", got)
	}
	if res.SuccessRatio() != 1 {
		t.Fatalf("success ratio = %v with unlimited cache", res.SuccessRatio())
	}
}

func TestUnsyncIntraConcurrencyNearUrnGame(t *testing.T) {
	// Large N, unsynchronized intra-run on 5 disks: the average overlap
	// should approach the urn-game value 2.51 (paper §3.2). At N=30 the
	// asymptote is not fully attained; accept the band the paper's own
	// figures show.
	cfg := Default()
	cfg.N = 30
	cfg.CacheBlocks = cfg.DefaultCache()
	res := mustRun(t, cfg)
	if res.MeanConcurrencyWhenBusy < 1.6 || res.MeanConcurrencyWhenBusy > 3.2 {
		t.Fatalf("unsync intra overlap = %v, want near 2.51", res.MeanConcurrencyWhenBusy)
	}
	// And the speedup must be reflected in total time vs synchronized.
	sync := cfg
	sync.Synchronized = true
	syncRes := mustRun(t, sync)
	if !(res.TotalTime < syncRes.TotalTime) {
		t.Fatalf("unsync (%v) not faster than sync (%v)", res.TotalTime, syncRes.TotalTime)
	}
}

func TestUnsyncInterApproachesFloor(t *testing.T) {
	// k=25, D=5, large N, ample cache: total approaches kT·B/D = 13.3 s.
	cfg := Default()
	cfg.N = 50
	cfg.InterRun = true
	cfg.CacheBlocks = cache.Unlimited
	res := mustRun(t, cfg)
	got := res.TotalTime.Seconds()
	if got < 13.3 {
		t.Fatalf("total %v s beat the transfer floor 13.3 s", got)
	}
	if got > 18 {
		t.Fatalf("total %v s too far above the floor for N=50", got)
	}
}

func TestStrategyOrderingAtPaperPoint(t *testing.T) {
	// At k=25, D=5, N=10, ample cache, unsynchronized: inter-run beats
	// intra-run beats no-prefetch (figure 3.2 ordering).
	base := Default()
	base.CacheBlocks = cache.Unlimited

	noPrefetch := mustRun(t, base)

	intra := base
	intra.N = 10
	intraRes := mustRun(t, intra)

	inter := intra
	inter.InterRun = true
	interRes := mustRun(t, inter)

	if !(interRes.TotalTime < intraRes.TotalTime && intraRes.TotalTime < noPrefetch.TotalTime) {
		t.Fatalf("ordering violated: inter=%v intra=%v none=%v",
			interRes.TotalTime, intraRes.TotalTime, noPrefetch.TotalTime)
	}
}

func TestMoreDisksFaster(t *testing.T) {
	cfg := Default()
	cfg.K = 50
	cfg.N = 10
	cfg.InterRun = true
	cfg.CacheBlocks = cache.Unlimited

	cfg.D = 5
	d5 := mustRun(t, cfg)
	cfg.D = 10
	d10 := mustRun(t, cfg)
	if !(d10.TotalTime < d5.TotalTime) {
		t.Fatalf("10 disks (%v) not faster than 5 (%v)", d10.TotalTime, d5.TotalTime)
	}
}

func TestSuccessRatioFallsWithSmallerCache(t *testing.T) {
	cfg := Default()
	cfg.N = 10
	cfg.InterRun = true

	cfg.CacheBlocks = 1200
	big := mustRun(t, cfg)
	cfg.CacheBlocks = 400
	mid := mustRun(t, cfg)
	cfg.CacheBlocks = 100
	tiny := mustRun(t, cfg)

	if !(big.SuccessRatio() >= mid.SuccessRatio() && mid.SuccessRatio() >= tiny.SuccessRatio()) {
		t.Fatalf("success ratio not monotone: %v %v %v",
			big.SuccessRatio(), mid.SuccessRatio(), tiny.SuccessRatio())
	}
	if tiny.SuccessRatio() > 0.35 {
		t.Fatalf("100-block cache success ratio = %v, should be poor", tiny.SuccessRatio())
	}
	if big.SuccessRatio() < 0.9 {
		t.Fatalf("1200-block cache success ratio = %v, should be high", big.SuccessRatio())
	}
	// Bigger cache must not be slower.
	if big.TotalTime > tiny.TotalTime {
		t.Fatalf("bigger cache slower: %v vs %v", big.TotalTime, tiny.TotalTime)
	}
}

func TestFiniteCPUAddsTime(t *testing.T) {
	cfg := Default()
	cfg.N = 10
	cfg.InterRun = true
	cfg.Synchronized = true
	cfg.CacheBlocks = cache.Unlimited
	fast := mustRun(t, cfg)

	cfg.MergeTimePerBlock = sim.Ms(0.7)
	slow := mustRun(t, cfg)
	if !(slow.TotalTime > fast.TotalTime) {
		t.Fatalf("finite CPU not slower: %v vs %v", slow.TotalTime, fast.TotalTime)
	}
	// Synchronized: merge time adds nearly linearly (no overlap):
	// expect at least +0.7ms × 25000 = 17.5 s.
	added := (slow.TotalTime - fast.TotalTime).Seconds()
	if added < 15 {
		t.Fatalf("sync finite CPU added only %v s", added)
	}
}

func TestFiniteCPUUnsyncOverlapsBetterThanSync(t *testing.T) {
	cfg := Default()
	cfg.N = 10
	cfg.InterRun = true
	cfg.CacheBlocks = cache.Unlimited
	cfg.MergeTimePerBlock = sim.Ms(0.5)

	cfg.Synchronized = false
	unsync := mustRun(t, cfg)
	cfg.Synchronized = true
	sync := mustRun(t, cfg)

	if !(unsync.TotalTime < sync.TotalTime) {
		t.Fatalf("unsync (%v) not faster than sync (%v) with finite CPU",
			unsync.TotalTime, sync.TotalTime)
	}
}

func TestStallTimeBounded(t *testing.T) {
	res := mustRun(t, small())
	if res.StallTime < 0 || res.StallTime > res.TotalTime {
		t.Fatalf("stall time %v outside [0, %v]", res.StallTime, res.TotalTime)
	}
}

func TestTrialsAggregate(t *testing.T) {
	cfg := small()
	agg, err := RunTrials(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Trials != 5 || len(agg.Results) != 5 {
		t.Fatalf("trials = %d, results = %d", agg.Trials, len(agg.Results))
	}
	if agg.TotalTime.N() != 5 {
		t.Fatalf("summary n = %d", agg.TotalTime.N())
	}
	// Distinct seeds: at least two distinct totals.
	if agg.TotalTime.Min() == agg.TotalTime.Max() {
		t.Fatal("all trials identical (seeding broken)")
	}
	if agg.String() == "" || agg.Results[0].String() == "" {
		t.Fatal("empty String")
	}
	if _, err := RunTrials(cfg, 0); err == nil {
		t.Fatal("RunTrials(0) accepted")
	}
}

func TestSequenceWorkloadRoundRobinDepletion(t *testing.T) {
	// A round-robin depletion sequence is fully deterministic; verify
	// the engine completes and consumes in the given order via the
	// per-run consumption invariant (all runs drain together).
	cfg := small()
	var seqRuns []int
	for b := 0; b < cfg.BlocksPerRun; b++ {
		for r := 0; r < cfg.K; r++ {
			seqRuns = append(seqRuns, r)
		}
	}
	cfg.Workload = &workload.Sequence{Runs: seqRuns}
	res := mustRun(t, cfg)
	if res.MergedBlocks != int64(cfg.K*cfg.BlocksPerRun) {
		t.Fatalf("merged = %d", res.MergedBlocks)
	}
}

func TestStripedPlacementCompletes(t *testing.T) {
	cfg := small()
	cfg.Placement = layout.Striped
	cfg.N = 4
	cfg.CacheBlocks = cfg.DefaultCache()
	res := mustRun(t, cfg)
	if res.MergedBlocks != 240 {
		t.Fatalf("striped merged = %d", res.MergedBlocks)
	}
	// Striping spreads a single run's fetch over both disks: with N=4
	// both disks must have carried traffic.
	for i, d := range res.PerDisk {
		if d.Blocks == 0 {
			t.Fatalf("disk %d idle under striping", i)
		}
	}
}

func TestGreedyAdmissionCompletes(t *testing.T) {
	cfg := Default()
	cfg.K = 10
	cfg.D = 2
	cfg.BlocksPerRun = 100
	cfg.N = 5
	cfg.InterRun = true
	cfg.Admission = cache.Greedy
	cfg.CacheBlocks = 25 // tight: forces partial admissions
	res := mustRun(t, cfg)
	if res.MergedBlocks != 1000 {
		t.Fatalf("greedy merged = %d", res.MergedBlocks)
	}
	if res.SuccessRatio() >= 1 {
		t.Fatal("tight cache should produce partial admissions")
	}
}

func TestRunPolicies(t *testing.T) {
	for _, pol := range []PrefetchRunPolicy{RandomRun, LeastBufferedRun, RoundRobinRun} {
		cfg := small()
		cfg.N = 2
		cfg.InterRun = true
		cfg.RunPolicy = pol
		cfg.CacheBlocks = cache.Unlimited
		res := mustRun(t, cfg)
		if res.MergedBlocks != 240 {
			t.Fatalf("policy %v merged %d", pol, res.MergedBlocks)
		}
	}
	if RandomRun.String() != "random" || LeastBufferedRun.String() != "least-buffered" ||
		RoundRobinRun.String() != "round-robin" {
		t.Fatal("policy strings wrong")
	}
}

func TestSSTFDisciplineCompletes(t *testing.T) {
	cfg := small()
	cfg.N = 4
	cfg.InterRun = true
	cfg.Disk.Discipline = disk.SSTF
	cfg.CacheBlocks = cache.Unlimited
	res := mustRun(t, cfg)
	if res.MergedBlocks != 240 {
		t.Fatalf("SSTF merged = %d", res.MergedBlocks)
	}
}

func TestStrategyNames(t *testing.T) {
	cfg := Default()
	if cfg.StrategyName() != "no-prefetch/unsync" {
		t.Fatalf("name = %q", cfg.StrategyName())
	}
	cfg.N = 10
	if cfg.StrategyName() != "demand-run-only/unsync" {
		t.Fatalf("name = %q", cfg.StrategyName())
	}
	cfg.InterRun = true
	cfg.Synchronized = true
	if cfg.StrategyName() != "all-disks-one-run/sync" {
		t.Fatalf("name = %q", cfg.StrategyName())
	}
}

func TestDefaultCacheSizes(t *testing.T) {
	cfg := Default()
	cfg.K, cfg.N = 25, 10
	if got := cfg.DefaultCache(); got != 250 {
		t.Fatalf("intra default cache = %d, want kN = 250", got)
	}
	cfg.InterRun = true
	if got := cfg.DefaultCache(); got != 300 {
		t.Fatalf("inter default cache = %d, want kN + DN = 300", got)
	}
}

func TestResultAccessors(t *testing.T) {
	res := mustRun(t, small())
	if res.MeanBlockTime() <= 0 {
		t.Fatal("mean block time not positive")
	}
	u := res.DiskUtilization()
	if u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
	var zero Result
	if zero.SuccessRatio() != 1 || zero.MeanBlockTime() != 0 || zero.DiskUtilization() != 0 {
		t.Fatal("zero result accessors wrong")
	}
}

func TestConcurrencyNeverExceedsD(t *testing.T) {
	cfg := Default()
	cfg.K = 20
	cfg.D = 4
	cfg.BlocksPerRun = 200
	cfg.N = 8
	cfg.InterRun = true
	cfg.CacheBlocks = cache.Unlimited
	res := mustRun(t, cfg)
	if res.MeanConcurrency > float64(cfg.D) || res.MeanConcurrencyWhenBusy > float64(cfg.D) {
		t.Fatalf("concurrency %v/%v exceeds D=%d",
			res.MeanConcurrency, res.MeanConcurrencyWhenBusy, cfg.D)
	}
	if res.MeanConcurrencyWhenBusy < res.MeanConcurrency {
		t.Fatal("conditional concurrency below unconditional")
	}
}

func TestEveryDiskCarriesItsRuns(t *testing.T) {
	cfg := Default()
	cfg.K = 10
	cfg.D = 5
	cfg.BlocksPerRun = 100
	cfg.CacheBlocks = cfg.DefaultCache()
	res := mustRun(t, cfg)
	for i, d := range res.PerDisk {
		// Each disk holds 2 runs of 100 blocks.
		if d.Blocks != 200 {
			t.Fatalf("disk %d transferred %d, want 200", i, d.Blocks)
		}
	}
}

func TestStallHistogramConsistent(t *testing.T) {
	cfg := Default()
	cfg.D = 1
	res := mustRun(t, cfg)
	h := res.StallHistogram
	if h == nil || h.N() == 0 {
		t.Fatal("no stall samples")
	}
	// Histogram mean x count must reconcile with total stall time.
	total := h.Mean() * float64(h.N())
	if diff := total - res.StallTime.Milliseconds(); diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("histogram total %.3f != stall %.3f ms", total, res.StallTime.Milliseconds())
	}
	// Single-disk no-prefetch stalls are one full block service:
	// roughly seek + latency + transfer, so p95 sits well under 50 ms.
	p95 := res.StallP95()
	if p95 <= 0 || p95 > 50 {
		t.Fatalf("p95 stall = %v", p95)
	}
	var zero Result
	if zero.StallP95() != 0 {
		t.Fatal("zero result p95")
	}
}

func TestOnRequestObserverSeesEveryDispatch(t *testing.T) {
	cfg := small()
	cfg.N = 3
	cfg.InterRun = true
	cfg.CacheBlocks = cache.Unlimited
	cfg.Write = WriteConfig{Enabled: true, Disks: 1}
	var traces []disk.RequestTrace
	cfg.OnRequest = func(tr disk.RequestTrace) { traces = append(traces, tr) }
	res := mustRun(t, cfg)

	var wantReqs int64
	for _, d := range res.PerDisk {
		wantReqs += d.Requests
	}
	for _, d := range res.PerWriteDisk {
		wantReqs += d.Requests
	}
	if int64(len(traces)) != wantReqs {
		t.Fatalf("observed %d dispatches, disks served %d", len(traces), wantReqs)
	}
	var blocks int64
	for _, tr := range traces {
		if tr.Count <= 0 || tr.Started < tr.Enqueued {
			t.Fatalf("malformed trace %+v", tr)
		}
		blocks += int64(tr.Count)
	}
	if blocks != 2*res.MergedBlocks { // reads + writes
		t.Fatalf("observed %d blocks, want %d", blocks, 2*res.MergedBlocks)
	}
}

func TestOnRequestForcesSerialTrials(t *testing.T) {
	// The observer is not synchronized; RunTrials must not run trials
	// concurrently when it is installed. Appending from multiple
	// goroutines would race (and fail under -race).
	cfg := small()
	n := 0
	cfg.OnRequest = func(disk.RequestTrace) { n++ }
	agg, err := RunTrials(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || agg.Trials != 4 {
		t.Fatalf("observer saw %d dispatches over %d trials", n, agg.Trials)
	}
}

func TestGreedyDemandPieceShrinks(t *testing.T) {
	// With greedy admission and nearly no free space, the demand piece
	// itself must shrink below N (covering the trim path) and the merge
	// still completes.
	cfg := Default()
	cfg.K = 6
	cfg.D = 2
	cfg.BlocksPerRun = 60
	cfg.N = 8
	cfg.InterRun = true
	cfg.Admission = cache.Greedy
	cfg.CacheBlocks = 8 // barely above K
	res := mustRun(t, cfg)
	if res.MergedBlocks != 360 {
		t.Fatalf("merged = %d", res.MergedBlocks)
	}
	if res.MeanDepth <= 0 {
		t.Fatalf("mean depth = %v", res.MeanDepth)
	}
}

func TestStripedInterRunDemandRouting(t *testing.T) {
	// Striped placement has no home disk; the demand fetch must route
	// to the disk holding the next block (homeDiskOf striped path).
	cfg := Default()
	cfg.K = 6
	cfg.D = 3
	cfg.BlocksPerRun = 60
	cfg.N = 3
	cfg.InterRun = true
	cfg.Placement = layout.Striped
	cfg.CacheBlocks = cache.Unlimited
	res := mustRun(t, cfg)
	if res.MergedBlocks != 360 {
		t.Fatalf("merged = %d", res.MergedBlocks)
	}
	for i, d := range res.PerDisk {
		if d.Blocks == 0 {
			t.Fatalf("disk %d idle under striped inter-run", i)
		}
	}
}

func TestRunRejectsKernelFailure(t *testing.T) {
	// A workload model that names an inactive run would stall the merge
	// only if the engine lacked its defensive wait; verify it instead
	// completes through the fallback (covering the Available==0 path at
	// selection).
	cfg := small()
	trace := make([]int, 0, cfg.K*cfg.BlocksPerRun)
	// Pathological order: drain run 0 fully first, then the rest.
	for r := 0; r < cfg.K; r++ {
		for b := 0; b < cfg.BlocksPerRun; b++ {
			trace = append(trace, r)
		}
	}
	cfg.Workload = &workload.Sequence{Runs: trace}
	res := mustRun(t, cfg)
	if res.MergedBlocks != int64(cfg.K*cfg.BlocksPerRun) {
		t.Fatalf("merged = %d", res.MergedBlocks)
	}
}

func TestMaxSimTimeAborts(t *testing.T) {
	cfg := Default()
	cfg.D = 1
	cfg.MaxSimTime = 10 * sim.Second // full merge needs ~340 s
	res := mustRun(t, cfg)
	if !res.TimedOut {
		t.Fatal("run did not time out")
	}
	if res.TotalTime > cfg.MaxSimTime {
		t.Fatalf("clock %v passed horizon %v", res.TotalTime, cfg.MaxSimTime)
	}
	// Partial counters are still coherent.
	if res.Decisions == 0 || res.StallTime > res.TotalTime {
		t.Fatalf("partial result incoherent: %+v", res)
	}
}

func TestMaxSimTimeGenerous(t *testing.T) {
	cfg := small()
	cfg.MaxSimTime = 1000 * sim.Second
	res := mustRun(t, cfg)
	if res.TimedOut {
		t.Fatal("generous horizon timed out")
	}
	if res.MergedBlocks != 240 {
		t.Fatalf("merged = %d", res.MergedBlocks)
	}
}
