package experiments

import (
	"testing"

	"repro/internal/core"
)

// TestEngineModesRenderIdentical is the figure-level half of the
// event-core equivalence contract (the config-matrix half lives in
// internal/core): the full quick figure set, rendered once through the
// event-driven engine and once through the legacy process engine, must
// produce byte-identical CSVs and tables. The event core is an
// optimization, never a model change.
func TestEngineModesRenderIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick figure set under both engine modes")
	}
	specs := All()
	run := func(m core.EngineMode) string {
		core.SetEngineMode(m)
		defer core.SetEngineMode(core.EngineEvent)
		outs, err := RunAll(specs, Options{Trials: 1, Seed: 7, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		return render(t, outs)
	}
	event := run(core.EngineEvent)
	proc := run(core.EngineProcess)
	if event != proc {
		t.Fatalf("figure output diverged between engine modes:\n%s", firstDiff(event, proc))
	}
}
