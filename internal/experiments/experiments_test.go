package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/table"
)

// quick returns fast options for tests: 1 trial, coarse grids.
func quick() Options { return Options{Trials: 1, Seed: 7, Quick: true} }

func runSpec(t *testing.T, id string) Output {
	t.Helper()
	spec, err := Find(id)
	if err != nil {
		t.Fatal(err)
	}
	out, err := spec.Run(quick())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func seriesByLabel(t *testing.T, f *table.Figure, label string) *table.Series {
	t.Helper()
	for _, s := range f.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("figure %s has no series %q", f.ID, label)
	return nil
}

func TestAllSpecsDistinctIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range All() {
		if seen[s.ID] {
			t.Fatalf("duplicate spec id %q", s.ID)
		}
		seen[s.ID] = true
		if s.Title == "" || s.Run == nil {
			t.Fatalf("spec %q incomplete", s.ID)
		}
	}
}

func TestFindUnknown(t *testing.T) {
	if _, err := Find("9.9z"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestFig32aShape(t *testing.T) {
	out := runSpec(t, "3.2a")
	if len(out.Figures) != 1 {
		t.Fatalf("figures = %d", len(out.Figures))
	}
	f := out.Figures[0]
	if len(f.Series) != 3 {
		t.Fatalf("series = %d", len(f.Series))
	}
	single := seriesByLabel(t, f, "Demand Run Only (25 runs, 1 disk)")
	multi := seriesByLabel(t, f, "Demand Run Only (25 runs, 5 disks)")
	inter := seriesByLabel(t, f, "All Disks One Run (25 runs, 5 disks)")

	// Paper shape 1: every curve decreases with N.
	for _, s := range f.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1]*1.02 {
				t.Fatalf("series %q not decreasing: %v", s.Label, s.Y)
			}
		}
	}
	// Paper shape 2: at every N, inter <= multi-intra <= single-intra.
	for i := range single.X {
		if !(inter.Y[i] <= multi.Y[i] && multi.Y[i] <= single.Y[i]) {
			t.Fatalf("ordering violated at N=%v: %v %v %v",
				single.X[i], inter.Y[i], multi.Y[i], single.Y[i])
		}
	}
	// Paper shape 3: N=1 single disk is the Kwan–Baer baseline ≈ 340 s.
	if single.Y[0] < 320 || single.Y[0] > 360 {
		t.Fatalf("baseline = %v s", single.Y[0])
	}
}

func TestFig32bShape(t *testing.T) {
	out := runSpec(t, "3.2b")
	f := out.Figures[0]
	if len(f.Series) != 4 {
		t.Fatalf("series = %d", len(f.Series))
	}
	d10 := seriesByLabel(t, f, "All Disks One Run (50 runs, 10 disks)")
	d5 := seriesByLabel(t, f, "All Disks One Run (50 runs, 5 disks)")
	// 10 disks dominates 5 disks for the inter-run strategy.
	for i := range d10.X {
		if d10.Y[i] > d5.Y[i] {
			t.Fatalf("10 disks slower at N=%v: %v vs %v", d10.X[i], d10.Y[i], d5.Y[i])
		}
	}
}

func TestFig33Shape(t *testing.T) {
	out := runSpec(t, "3.3")
	f := out.Figures[0]
	if len(f.Series) != 4 {
		t.Fatalf("series = %d", len(f.Series))
	}
	interU := seriesByLabel(t, f, "All Disks One Run (Unsynchronized)")
	intraS := seriesByLabel(t, f, "Demand Run Only (Synchronized)")
	// Paper: inter-run with N=10 outperforms intra-run over the whole
	// CPU-speed range; sync curves rise faster than unsync.
	for i := range interU.X {
		if interU.Y[i] >= intraS.Y[i] {
			t.Fatalf("inter unsync not best at merge time %v", interU.X[i])
		}
	}
	last := len(intraS.Y) - 1
	if intraS.Y[last] <= intraS.Y[0] {
		t.Fatal("sync curve did not rise with CPU cost")
	}
}

func TestFig35aShapes(t *testing.T) {
	out := runSpec(t, "3.5a")
	if len(out.Figures) != 2 {
		t.Fatalf("want time+ratio figures, got %d", len(out.Figures))
	}
	ft, fr := out.Figures[0], out.Figures[1]
	if ft.ID != "3.5a" || fr.ID != "3.6a" {
		t.Fatalf("ids = %s/%s", ft.ID, fr.ID)
	}
	// Success ratio rises with cache size for every N; time falls.
	for _, s := range fr.Series {
		first, lastV := s.Y[0], s.Y[len(s.Y)-1]
		if lastV < first {
			t.Fatalf("success ratio fell with cache: %q %v", s.Label, s.Y)
		}
		if lastV < 0.95 {
			t.Fatalf("ample cache ratio = %v for %q", lastV, s.Label)
		}
	}
	for _, s := range ft.Series {
		if s.Y[len(s.Y)-1] > s.Y[0]*1.02 {
			t.Fatalf("time rose with cache for %q: %v", s.Label, s.Y)
		}
	}
	// Paper shape: at the largest cache, bigger N wins (amortization);
	// at the smallest, N=10's time must not beat N=1 substantially
	// (its success ratio starves).
	n1 := seriesByLabel(t, ft, "N=1")
	n10 := seriesByLabel(t, ft, "N=10")
	lastIdx := len(n1.Y) - 1
	if n10.Y[lastIdx] >= n1.Y[lastIdx] {
		t.Fatalf("at ample cache N=10 (%v) should beat N=1 (%v)", n10.Y[lastIdx], n1.Y[lastIdx])
	}
}

func TestAnchorsTable(t *testing.T) {
	out := runSpec(t, "anchors")
	if len(out.Tables) != 1 {
		t.Fatalf("tables = %d", len(out.Tables))
	}
	tb := out.Tables[0]
	if len(tb.Rows) != 9 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Every relative error below 10% (asymptotic row is the loosest).
	for _, row := range tb.Rows {
		rel := row[len(row)-1]
		rel = strings.TrimSuffix(strings.TrimPrefix(rel, "+"), "%")
		rel = strings.TrimPrefix(rel, "-")
		v, err := strconv.ParseFloat(rel, 64)
		if err != nil {
			t.Fatalf("bad rel err cell %q", row[len(row)-1])
		}
		if v > 12 {
			t.Fatalf("anchor %q off by %v%%", row[0], v)
		}
	}
}

func TestConcurrencyTable(t *testing.T) {
	out := runSpec(t, "concurrency")
	tb := out.Tables[0]
	if len(tb.Rows) < 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestAblationsRun(t *testing.T) {
	for _, id := range []string{
		"ablation-admission", "ablation-runchoice", "ablation-rotation",
		"ablation-placement", "ablation-scheduler", "ablation-seekmodel",
		"ext-write-traffic", "ext-multipass", "tr-markov", "ext-realtrace",
		"ext-adaptive-n", "ext-k100", "ext-modern-disk",
	} {
		out := runSpec(t, id)
		if len(out.Figures)+len(out.Tables) == 0 {
			t.Fatalf("%s produced nothing", id)
		}
	}
}

func TestCacheGrid(t *testing.T) {
	g := cacheGrid(25, 1200, false)
	if g[0] != 25 {
		t.Fatalf("grid starts at %d, want k", g[0])
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not increasing: %v", g)
		}
		if g[i] > 1200 {
			t.Fatalf("grid exceeds max: %v", g)
		}
	}
	if len(cacheGrid(25, 1200, true)) >= len(g) {
		t.Fatal("quick grid not coarser")
	}
}

func TestOptionsNormalized(t *testing.T) {
	o := Options{}.normalized()
	if o.Trials != 5 || o.Seed != 1 {
		t.Fatalf("normalized = %+v", o)
	}
}
