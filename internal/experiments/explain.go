package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/sim"
	"repro/internal/table"
	"repro/internal/trace"
)

// extStallAttribution replays the paper's figure-3.5a buffer sweep
// (k=25 runs, D=5 disks, N=10) with a finite-speed CPU and a trace
// recorder attached to every point, then pushes each trace through the
// explain layer to decompose the makespan into where the time actually
// went. The output is a pair of stacked-bar figures — one for combined
// inter+intra prefetching, one for demand-run-only — whose segments sum
// to the makespan at every cache size (the conservation invariant,
// drawn). Traced points run single-trial and serial; determinism makes
// one trial exact, not noisy.
func extStallAttribution(o Options) (Output, error) {
	o = o.normalized()
	fInter := stallFigure("ext-stall-attribution",
		"Extension: where the time goes — All Disks One Run (25 runs, 5 disks, N=10)")
	fIntra := stallFigure("ext-stall-attribution-intra",
		"Extension: where the time goes — Demand Run Only (25 runs, 5 disks, N=10)")

	g := newGrid(o)
	g.trials = 1 // traced runs are deterministic; replication adds nothing

	var firstErr error
	for _, inter := range []bool{true, false} {
		fig := fIntra
		if inter {
			fig = fInter
		}
		for _, c := range cacheGrid(25, 1200, o.Quick) {
			cfg := baseConfig(25, 5, 10)
			cfg.InterRun = inter
			cfg.CacheBlocks = c
			cfg.MergeTimePerBlock = sim.Ms(0.3)
			rec := trace.New(0)
			cfg.Trace = rec
			x := float64(c)
			g.add(cfg, func(a core.Aggregate) {
				res := a.Results[0]
				rep := explain.Build(rec, explain.Options{Makespan: res.TotalTime})
				if err := rep.Check(res.StallTime); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("cache %d blocks: %w", c, err)
				}
				stackPoint(fig, x, rep)
			})
		}
	}
	if err := g.run(); err != nil {
		return Output{}, err
	}
	if firstErr != nil {
		return Output{}, fmt.Errorf("explain conservation violated: %w", firstErr)
	}
	return Output{Figures: []*table.Figure{fInter, fIntra}}, nil
}

// stallFigure allocates one stacked attribution figure with the fixed
// eight-component legend. Series order is stacking order, bottom-up:
// useful work first, then the attributed stall phases, then the
// leftovers, idle on top.
func stallFigure(id, title string) *table.Figure {
	f := &table.Figure{
		ID:      id,
		Title:   title,
		XLabel:  "cache size (blocks)",
		YLabel:  "time (seconds)",
		Stacked: true,
	}
	for _, label := range []string{
		"compute", "initial load",
		"stall: seek", "stall: rotation", "stall: transfer",
		"stall: queued", "stall: other", "cpu idle",
	} {
		f.AddSeries(label)
	}
	return f
}

// stackPoint files one report's CPU-time decomposition at x, in
// seconds. The eight components partition the makespan exactly:
// CPU compute + initial load + demand stall + idle tile the CPU track
// (explain.Check enforces it), and the stall slice is further split by
// the blocking disk's phase. "stall: other" gathers retry, outage and
// anything the attribution cascade could not pin to a fetch.
func stackPoint(f *table.Figure, x float64, rep *explain.Report) {
	// A derived residual (idle) can land a hair below zero from float
	// association; clamp so the CSV never prints "-0".
	sec := func(t sim.Time) float64 {
		if t < 0 && t > -explain.Epsilon {
			return 0
		}
		return float64(t) / 1000
	}
	other := rep.Stall.ByPhase.Retry + rep.Stall.ByPhase.Outage + rep.Stall.Unattributed
	for i, v := range []float64{
		sec(rep.CPU.Compute),
		sec(rep.CPU.InitialLoad),
		sec(rep.Stall.ByPhase.Seek),
		sec(rep.Stall.ByPhase.Rotation),
		sec(rep.Stall.ByPhase.Transfer),
		sec(rep.Stall.Queued),
		sec(other),
		sec(rep.CPU.Idle),
	} {
		f.Series[i].Point(x, v)
	}
}
