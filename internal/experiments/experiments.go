// Package experiments defines one reproducible generator per figure of
// the paper's evaluation (§3), plus the anchor-validation tables and
// the design-choice ablations called out in DESIGN.md. Each generator
// returns text-renderable figures whose series mirror the paper's
// legends, so the harness output can be compared against the paper
// panel by panel.
package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/table"
)

// Options tunes experiment execution.
type Options struct {
	// Trials is the number of independent replications averaged per
	// point (the paper averages 5).
	Trials int
	// Seed is the base seed; trials use Seed, Seed+1, ...
	Seed uint64
	// Quick coarsens sweep grids for use in tests and smoke runs.
	Quick bool
	// Workers bounds the parallel executor's fan-out at each level
	// (sweep points × trials, and concurrent specs under RunAll).
	// 0 means GOMAXPROCS; 1 forces the serial reference order. Results
	// are byte-identical at any setting.
	Workers int
}

// DefaultOptions mirrors the paper: 5 trials.
func DefaultOptions() Options { return Options{Trials: 5, Seed: 1} }

func (o Options) normalized() Options {
	if o.Trials <= 0 {
		o.Trials = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Output is what one experiment produces.
type Output struct {
	Figures []*table.Figure
	Tables  []*table.Table
}

// Spec names one experiment.
type Spec struct {
	ID    string
	Title string
	Run   func(Options) (Output, error)
}

// All returns every experiment, paper figures first, then validation
// and ablations.
func All() []Spec {
	return []Spec{
		{ID: "3.2a", Title: "Total time vs N, k=25 (1000 blocks/run), unsynchronized", Run: fig32a},
		{ID: "3.2b", Title: "Total time vs N, k=50, unsynchronized", Run: fig32b},
		{ID: "3.2c", Title: "Total time vs N, expanded view, 5 disks, k=25 and 50", Run: fig32c},
		{ID: "3.3", Title: "Effect of finite-speed CPU, k=25, D=5, N=10", Run: fig33},
		{ID: "3.5a", Title: "Execution time and success ratio vs cache size, 25 runs, 5 disks", Run: fig35a},
		{ID: "3.5b", Title: "Execution time and success ratio vs cache size, 50 runs, 5 disks", Run: fig35b},
		{ID: "3.5c", Title: "Execution time and success ratio vs cache size, 50 runs, 10 disks", Run: fig35c},
		{ID: "anchors", Title: "Closed-form anchors (eqs 1-5) vs simulation", Run: anchors},
		{ID: "concurrency", Title: "Urn-game concurrency vs simulated overlap", Run: concurrency},
		{ID: "tr-markov", Title: "TR Markov analysis: admission-policy parallelism", Run: trMarkov},
		{ID: "ablation-admission", Title: "Cache admission: all-or-demand vs greedy", Run: ablationAdmission},
		{ID: "ablation-runchoice", Title: "Inter-run prefetch run choice policies", Run: ablationRunChoice},
		{ID: "ablation-rotation", Title: "Rotational latency models", Run: ablationRotation},
		{ID: "ablation-placement", Title: "Run placement: round-robin vs clustered vs striped", Run: ablationPlacement},
		{ID: "ablation-scheduler", Title: "Disk queue discipline: FCFS vs SSTF", Run: ablationScheduler},
		{ID: "ablation-seekmodel", Title: "Seek curve: linear vs affine-sqrt", Run: ablationSeekModel},
		{ID: "ext-write-traffic", Title: "Extension: modelling the output write traffic", Run: extWriteTraffic},
		{ID: "ext-multipass", Title: "Extension: multi-pass regime and planner", Run: extMultiPass},
		{ID: "ext-realtrace", Title: "Extension: real merge trace replayed through the simulator", Run: extRealTrace},
		{ID: "ext-adaptive-n", Title: "Extension: adaptive prefetch depth (AIMD controller)", Run: extAdaptiveN},
		{ID: "ext-k100", Title: "Extension: the k=100 sweep the paper omitted", Run: extK100},
		{ID: "ext-modern-disk", Title: "Extension: the strategies on a late-2000s drive", Run: extModernDisk},
		{ID: "ext-degraded-disk", Title: "Extension: one disk fail-slow — strategy sensitivity to a degraded arm", Run: extDegradedDisk},
		{ID: "ext-stall-attribution", Title: "Extension: where the time goes — stall attribution over the buffer sweep", Run: extStallAttribution},
	}
}

// Find returns the spec whose ID matches, or an error listing options.
func Find(id string) (Spec, error) {
	for _, s := range All() {
		if s.ID == id {
			return s, nil
		}
	}
	var ids []string
	for _, s := range All() {
		ids = append(ids, s.ID)
	}
	return Spec{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// nGrid returns the intra-run prefetch depths swept on the x axis of
// figure 3.2.
func nGrid(quick bool) []int {
	if quick {
		return []int{1, 5, 15, 30}
	}
	return []int{1, 2, 3, 5, 8, 10, 15, 20, 25, 30}
}

// baseConfig returns the paper's configuration for k runs on d disks
// with intra-run depth n.
func baseConfig(k, d, n int) core.Config {
	cfg := core.Default()
	cfg.K = k
	cfg.D = d
	cfg.N = n
	cfg.CacheBlocks = cfg.DefaultCache()
	return cfg
}

// intraConfig is "Demand Run Only": intra-run prefetching with the
// paper's natural kN cache.
func intraConfig(k, d, n int) core.Config {
	return baseConfig(k, d, n)
}

// interConfig is "All Disks One Run": combined inter+intra prefetching.
// The figure-3.2 curves assume an ample cache (success ratio 1).
func interConfig(k, d, n int) core.Config {
	cfg := baseConfig(k, d, n)
	cfg.InterRun = true
	cfg.CacheBlocks = cache.Unlimited
	return cfg
}

// sweepN schedules one series' points — mean total seconds over the N
// grid — on g.
func sweepN(g *grid, s *table.Series, mk func(n int) core.Config) {
	for _, n := range nGrid(g.o.Quick) {
		g.addPoint(s, float64(n), mk(n))
	}
}

func fig32a(o Options) (Output, error) {
	o = o.normalized()
	f := &table.Figure{
		ID: "3.2a", Title: "Fetching N Blocks (25 runs)",
		XLabel: "N", YLabel: "total time (seconds)",
	}
	curves := []struct {
		label string
		mk    func(n int) core.Config
	}{
		{"All Disks One Run (25 runs, 5 disks)", func(n int) core.Config { return interConfig(25, 5, n) }},
		{"Demand Run Only (25 runs, 5 disks)", func(n int) core.Config { return intraConfig(25, 5, n) }},
		{"Demand Run Only (25 runs, 1 disk)", func(n int) core.Config { return intraConfig(25, 1, n) }},
	}
	g := newGrid(o)
	for _, c := range curves {
		sweepN(g, f.AddSeries(c.label), c.mk)
	}
	if err := g.run(); err != nil {
		return Output{}, err
	}
	return Output{Figures: []*table.Figure{f}}, nil
}

func fig32b(o Options) (Output, error) {
	o = o.normalized()
	f := &table.Figure{
		ID: "3.2b", Title: "Fetching N Blocks (50 runs)",
		XLabel: "N", YLabel: "total time (seconds)",
	}
	curves := []struct {
		label string
		mk    func(n int) core.Config
	}{
		{"All Disks One Run (50 runs, 10 disks)", func(n int) core.Config { return interConfig(50, 10, n) }},
		{"All Disks One Run (50 runs, 5 disks)", func(n int) core.Config { return interConfig(50, 5, n) }},
		{"Demand Run Only (50 runs, 10 disks)", func(n int) core.Config { return intraConfig(50, 10, n) }},
		{"Demand Run Only (50 runs, 1 disk)", func(n int) core.Config { return intraConfig(50, 1, n) }},
	}
	g := newGrid(o)
	for _, c := range curves {
		sweepN(g, f.AddSeries(c.label), c.mk)
	}
	if err := g.run(); err != nil {
		return Output{}, err
	}
	return Output{Figures: []*table.Figure{f}}, nil
}

func fig32c(o Options) (Output, error) {
	o = o.normalized()
	f := &table.Figure{
		ID: "3.2c", Title: "Fetching N Blocks: Expanded View (5 Disks, 25 and 50 runs)",
		XLabel: "N", YLabel: "total time (seconds)",
	}
	curves := []struct {
		label string
		mk    func(n int) core.Config
	}{
		{"All Disks One Run (25 runs, 5 disks)", func(n int) core.Config { return interConfig(25, 5, n) }},
		{"All Disks One Run (50 runs, 5 disks)", func(n int) core.Config { return interConfig(50, 5, n) }},
		{"Demand Run Only (25 runs, 5 disks)", func(n int) core.Config { return intraConfig(25, 5, n) }},
		{"Demand Run Only (50 runs, 5 disks)", func(n int) core.Config { return intraConfig(50, 5, n) }},
	}
	g := newGrid(o)
	for _, c := range curves {
		sweepN(g, f.AddSeries(c.label), c.mk)
	}
	if err := g.run(); err != nil {
		return Output{}, err
	}
	return Output{Figures: []*table.Figure{f}}, nil
}

func fig33(o Options) (Output, error) {
	o = o.normalized()
	f := &table.Figure{
		ID: "3.3", Title: "Effect of Finite-Speed CPU (25 runs, 5 disks, N=10)",
		XLabel: "merge time per block (ms)", YLabel: "total execution time (seconds)",
	}
	mts := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	if o.Quick {
		mts = []float64{0, 0.35, 0.7}
	}
	curves := []struct {
		label string
		inter bool
		sync  bool
	}{
		{"All Disks One Run (Unsynchronized)", true, false},
		{"All Disks One Run (Synchronized)", true, true},
		{"Demand Run Only (Unsynchronized)", false, false},
		{"Demand Run Only (Synchronized)", false, true},
	}
	g := newGrid(o)
	for _, c := range curves {
		s := f.AddSeries(c.label)
		for _, mt := range mts {
			var cfg core.Config
			if c.inter {
				cfg = interConfig(25, 5, 10)
			} else {
				cfg = intraConfig(25, 5, 10)
			}
			cfg.Synchronized = c.sync
			cfg.MergeTimePerBlock = sim.Ms(mt)
			g.addPoint(s, mt, cfg)
		}
	}
	if err := g.run(); err != nil {
		return Output{}, err
	}
	return Output{Figures: []*table.Figure{f}}, nil
}

// cacheGrid returns the cache sizes swept for figures 3.5/3.6.
func cacheGrid(k, maxSize int, quick bool) []int {
	full := []int{k, 2 * k, 100, 150, 200, 250, 300, 400, 500, 600, 800, 1000, 1200, 1600, 2000, 2400, 2800, 3200, 3500}
	var grid []int
	last := 0
	for _, c := range full {
		if c <= maxSize && c > last {
			if quick && len(grid) > 0 && c < last+max(2*k, 200) {
				continue
			}
			grid = append(grid, c)
			last = c
		}
	}
	return grid
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// cacheSweep produces the paired figures 3.5x (time) and 3.6x
// (success ratio) for one (k, D) shape.
func cacheSweep(idTime, idRatio string, k, d, maxCache int, o Options) (Output, error) {
	o = o.normalized()
	ft := &table.Figure{
		ID:     idTime,
		Title:  fmt.Sprintf("Total Execution Time vs. Cache Size: All Disks One Run (%d runs, %d disks)", k, d),
		XLabel: "cache size (blocks)", YLabel: "execution time (seconds)",
	}
	fr := &table.Figure{
		ID:     idRatio,
		Title:  fmt.Sprintf("Effect of Cache Size: All Disks One Run (%d runs, %d disks)", k, d),
		XLabel: "cache size (blocks)", YLabel: "success ratio",
	}
	g := newGrid(o)
	for _, n := range []int{1, 5, 10} {
		st := ft.AddSeries(fmt.Sprintf("N=%d", n))
		sr := fr.AddSeries(fmt.Sprintf("N=%d", n))
		for _, c := range cacheGrid(k, maxCache, o.Quick) {
			cfg := baseConfig(k, d, n)
			cfg.InterRun = true
			cfg.CacheBlocks = c
			x := float64(c)
			g.add(cfg, func(a core.Aggregate) {
				st.Point(x, a.TotalTime.Mean())
				sr.Point(x, a.SuccessRatio.Mean())
			})
		}
	}
	if err := g.run(); err != nil {
		return Output{}, err
	}
	return Output{Figures: []*table.Figure{ft, fr}}, nil
}

func fig35a(o Options) (Output, error) { return cacheSweep("3.5a", "3.6a", 25, 5, 1200, o) }
func fig35b(o Options) (Output, error) { return cacheSweep("3.5b", "3.6b", 50, 5, 1600, o) }
func fig35c(o Options) (Output, error) { return cacheSweep("3.5c", "3.6c", 50, 10, 3500, o) }
