package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/table"
)

// anchors reproduces the paper's §3.1/§3.2 spot checks: each analytic
// expression evaluated at the configurations quoted in the prose,
// against the simulated value.
func anchors(o Options) (Output, error) {
	o = o.normalized()
	t := &table.Table{
		Title:   "Closed-form anchors vs simulation (seconds)",
		Columns: []string{"case", "equation", "analytic", "simulated", "rel err"},
	}

	type anchorCase struct {
		name     string
		eq       string
		analytic float64
		cfg      core.Config
	}

	mk := func(k, d, n int, inter, sync bool, cacheBlocks int) core.Config {
		cfg := baseConfig(k, d, n)
		cfg.InterRun = inter
		cfg.Synchronized = sync
		if cacheBlocks != 0 {
			cfg.CacheBlocks = cacheBlocks
		}
		return cfg
	}
	model := func(k, d, n int) analysis.Model {
		cfg := core.Default()
		return analysis.FromConfig(cfg.Disk, k, d, n, cfg.BlocksPerRun)
	}

	cases := []anchorCase{
		{
			name: "no prefetch, k=25, D=1", eq: "eq 1",
			analytic: model(25, 1, 1).TotalTime(model(25, 1, 1).Eq1NoPrefetchSingleDisk(), 1000).Seconds(),
			cfg:      mk(25, 1, 1, false, false, 0),
		},
		{
			name: "no prefetch, k=50, D=1", eq: "eq 1",
			analytic: model(50, 1, 1).TotalTime(model(50, 1, 1).Eq1NoPrefetchSingleDisk(), 1000).Seconds(),
			cfg:      mk(50, 1, 1, false, false, 0),
		},
		{
			name: "intra N=10, k=25, D=1", eq: "eq 2",
			analytic: model(25, 1, 10).TotalTime(model(25, 1, 10).Eq2IntraSingleDisk(), 1000).Seconds(),
			cfg:      mk(25, 1, 10, false, false, 0),
		},
		{
			name: "intra N=10, k=50, D=1", eq: "eq 2",
			analytic: model(50, 1, 10).TotalTime(model(50, 1, 10).Eq2IntraSingleDisk(), 1000).Seconds(),
			cfg:      mk(50, 1, 10, false, false, 0),
		},
		{
			name: "no prefetch, k=25, D=5", eq: "eq 3",
			analytic: model(25, 5, 1).TotalTime(model(25, 5, 1).Eq3NoPrefetchMultiDisk(), 1000).Seconds(),
			cfg:      mk(25, 5, 1, false, false, 0),
		},
		{
			name: "no prefetch, k=50, D=10", eq: "eq 3",
			analytic: model(50, 10, 1).TotalTime(model(50, 10, 1).Eq3NoPrefetchMultiDisk(), 1000).Seconds(),
			cfg:      mk(50, 10, 1, false, false, 0),
		},
		{
			name: "sync intra N=10, k=25, D=5", eq: "eq 4",
			analytic: model(25, 5, 10).TotalTime(model(25, 5, 10).Eq4IntraMultiDiskSync(), 1000).Seconds(),
			cfg:      mk(25, 5, 10, false, true, 0),
		},
		{
			name: "sync inter N=10, k=25, D=5", eq: "eq 5",
			analytic: model(25, 5, 10).TotalTime(model(25, 5, 10).Eq5InterMultiDiskSync(), 1000).Seconds(),
			cfg:      mk(25, 5, 10, true, true, cache.Unlimited),
		},
		{
			name: "unsync intra N=30, k=25, D=5 (asymptotic)", eq: "eq4/urn",
			analytic: model(25, 5, 30).IntraUnsyncAsymptotic(1000).Seconds(),
			cfg:      mk(25, 5, 30, false, false, 0),
		},
	}

	g := newGrid(o)
	for _, c := range cases {
		c := c
		g.add(c.cfg, func(a core.Aggregate) {
			secs := a.TotalTime.Mean()
			rel := (secs - c.analytic) / c.analytic
			t.AddRow(c.name, c.eq,
				fmt.Sprintf("%.2f", c.analytic),
				fmt.Sprintf("%.2f", secs),
				fmt.Sprintf("%+.1f%%", 100*rel))
		})
	}
	if err := g.run(); err != nil {
		return Output{}, err
	}
	return Output{Tables: []*table.Table{t}}, nil
}

// trMarkov reconstructs the companion TR's Markov analysis that the
// paper cites for its admission-policy choice: D disks with one run
// each behind a C-block cache; steady-state average I/O parallelism of
// all-or-nothing vs greedy admission, from the exact chain.
func trMarkov(o Options) (Output, error) {
	t := &table.Table{
		Title:   "TR Markov model: steady-state I/O parallelism (one run per disk)",
		Columns: []string{"D", "C", "all-or-nothing", "greedy-fill", "winner"},
	}
	// Larger D·C shapes explode the partition state space; D=10 at
	// C=30 (~3k states) is the practical ceiling for an exact solve.
	shapes := []struct{ d, c int }{
		{5, 10}, {5, 15}, {5, 20}, {5, 30}, {5, 50},
		{10, 30},
	}
	if o.Quick {
		shapes = shapes[:3]
	}
	// The exact chain solves are CPU-bound and independent per shape, so
	// they fan out like simulation points; rows are filed in shape order.
	type solved struct{ aon, greedy float64 }
	results, err := parallel.Map(len(shapes), o.Workers, func(i int) (solved, error) {
		s := shapes[i]
		aonChain, err := analysis.NewMarkovChain(s.d, s.c, analysis.AllOrNothing)
		if err != nil {
			return solved{}, err
		}
		aon, _, err := aonChain.Solve(1e-10, 8000)
		if err != nil {
			return solved{}, err
		}
		gChain, err := analysis.NewMarkovChain(s.d, s.c, analysis.GreedyFill)
		if err != nil {
			return solved{}, err
		}
		greedy, _, err := gChain.Solve(1e-10, 8000)
		if err != nil {
			return solved{}, err
		}
		return solved{aon: aon, greedy: greedy}, nil
	})
	if err != nil {
		return Output{}, err
	}
	for i, s := range shapes {
		winner := "all-or-nothing"
		if results[i].greedy > results[i].aon {
			winner = "greedy-fill"
		}
		t.AddRow(fmt.Sprintf("%d", s.d), fmt.Sprintf("%d", s.c),
			fmt.Sprintf("%.3f", results[i].aon), fmt.Sprintf("%.3f", results[i].greedy), winner)
	}
	return Output{Tables: []*table.Table{t}}, nil
}

// concurrency compares the simulated average disk overlap of
// unsynchronized intra-run prefetching at large N against the exact
// urn-game expectation and its √(πD/2) − 1/3 asymptote.
func concurrency(o Options) (Output, error) {
	o = o.normalized()
	t := &table.Table{
		Title:   "Average I/O overlap: urn game vs simulation (N=30, unsynchronized intra-run)",
		Columns: []string{"D", "k", "urn exact", "asymptote", "simulated"},
	}
	shapes := []struct{ d, k int }{{5, 25}, {10, 50}, {20, 100}}
	if o.Quick {
		shapes = shapes[:2]
	}
	g := newGrid(o)
	for _, s := range shapes {
		s := s
		g.add(intraConfig(s.k, s.d, 30), func(a core.Aggregate) {
			t.AddRow(
				fmt.Sprintf("%d", s.d),
				fmt.Sprintf("%d", s.k),
				fmt.Sprintf("%.2f", analysis.UrnGameExpectedLength(s.d)),
				fmt.Sprintf("%.2f", analysis.UrnGameAsymptote(s.d)),
				fmt.Sprintf("%.2f", a.Concurrency.Mean()),
			)
		})
	}
	if err := g.run(); err != nil {
		return Output{}, err
	}
	return Output{Tables: []*table.Table{t}}, nil
}
