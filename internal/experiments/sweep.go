package experiments

import (
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/table"
)

// grid collects an experiment's simulation points so they can all be
// dispatched to the parallel executor in one flat batch instead of
// being simulated one by one inside nested sweep loops.
//
// Usage: a generator add()s every (configuration, consumer) pair it
// needs — the consumer is a closure that files the point's Aggregate
// into a series or table row — then calls run() once. run() evaluates
// all points (o.Workers bounds the fan-out; every point still runs
// o.Trials replications) and invokes the consumers serially in add()
// order, so figures and tables fill in exactly the order a sequential
// sweep would produce, byte for byte.
type grid struct {
	o      Options
	trials int
	cfgs   []core.Config
	emit   []func(core.Aggregate)
}

// newGrid returns an empty grid running o.Trials replications per point.
func newGrid(o Options) *grid { return &grid{o: o, trials: o.Trials} }

// add schedules cfg as one sweep point, seeded from the options, and
// registers emit to consume its aggregate.
func (g *grid) add(cfg core.Config, emit func(core.Aggregate)) {
	cfg.Seed = g.o.Seed
	g.addSeeded(cfg, emit)
}

// addSeeded schedules cfg with whatever seed it already carries —
// for points that derive per-point seeds themselves.
func (g *grid) addSeeded(cfg core.Config, emit func(core.Aggregate)) {
	g.cfgs = append(g.cfgs, cfg)
	g.emit = append(g.emit, emit)
}

// addPoint plots the across-trial mean total time (seconds) at x on s.
func (g *grid) addPoint(s *table.Series, x float64, cfg core.Config) {
	g.add(cfg, func(a core.Aggregate) { s.Point(x, a.TotalTime.Mean()) })
}

// run evaluates every scheduled point and feeds the consumers in order.
func (g *grid) run() error {
	aggs, err := core.RunGrid(g.cfgs, g.trials, g.o.Workers)
	if err != nil {
		return err
	}
	for i, agg := range aggs {
		g.emit[i](agg)
	}
	return nil
}

// RunAll executes every spec and returns their outputs in spec order.
// Specs are independent, so they run concurrently on the shared
// executor (o.Workers bounds each level of the fan-out; 1 forces the
// fully serial reference order). Output is deterministic either way:
// each spec assembles its own figures, and the slice preserves input
// order.
func RunAll(specs []Spec, o Options) ([]Output, error) {
	workers := o.Workers
	if len(specs) == 1 {
		workers = 1
	}
	return parallel.Map(len(specs), workers, func(i int) (Output, error) {
		return specs[i].Run(o)
	})
}
