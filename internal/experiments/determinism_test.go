package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// render flattens every artifact of a full experiment run — figure CSVs
// and table text, in spec order — into one byte stream for comparison.
func render(t *testing.T, outs []Output) string {
	t.Helper()
	var sb strings.Builder
	for _, out := range outs {
		for _, f := range out.Figures {
			sb.WriteString("figure " + f.ID + "\n")
			if err := f.WriteCSV(&sb); err != nil {
				t.Fatal(err)
			}
		}
		for _, tb := range out.Tables {
			if err := tb.WriteText(&sb); err != nil {
				t.Fatal(err)
			}
		}
	}
	return sb.String()
}

// TestParallelMatchesSerial is the determinism contract: the full quick
// experiment set, run once serially (the reference) and once through the
// parallel executor with more workers than cores, must render
// byte-identical figure CSVs and tables. Seeds derive from point and
// trial indices, never from worker identity, and results are collected
// by index — so any divergence here means a scheduling-dependent code
// path leaked into the simulation.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick figure set twice")
	}
	specs := All()
	serial, err := RunAll(specs, Options{Trials: 1, Seed: 7, Quick: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAll(specs, Options{Trials: 1, Seed: 7, Quick: true, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	want, got := render(t, serial), render(t, par)
	if want != got {
		t.Fatalf("parallel output diverged from serial reference:\nserial:\n%s\nparallel:\n%s",
			firstDiff(want, got), firstDiff(got, want))
	}
}

// TestParallelMatchesSerialMultiTrial covers the trial axis of the grid:
// aggregation must fold per-trial results in trial order regardless of
// completion order, so float sums are bit-identical.
func TestParallelMatchesSerialMultiTrial(t *testing.T) {
	spec, err := Find("3.2a")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunAll([]Spec{spec}, Options{Trials: 3, Seed: 7, Quick: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAll([]Spec{spec}, Options{Trials: 3, Seed: 7, Quick: true, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if want, got := render(t, serial), render(t, par); want != got {
		t.Fatalf("multi-trial parallel output diverged:\n%s", firstDiff(want, got))
	}
}

// firstDiff returns the line where a and b first disagree, for readable
// failure output.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := range al {
		if i >= len(bl) || al[i] != bl[i] {
			other := "<missing>"
			if i < len(bl) {
				other = bl[i]
			}
			return "line " + strconv.Itoa(i) + ": " + al[i] + " vs " + other
		}
	}
	return "<identical prefix, lengths differ>"
}
