package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/workload"
)

// ablationAdmission compares the paper's all-or-demand admission policy
// against the rejected greedy alternative over the figure-3.5a cache
// sweep (k=25, D=5, N=10). The paper's Markov-analysis argument is that
// greedy's partial fetches delay the return to full-concurrency states;
// all-or-demand should win at mid-size caches.
func ablationAdmission(o Options) (Output, error) {
	o = o.normalized()
	f := &table.Figure{
		ID: "ablation-admission", Title: "Admission policy (25 runs, 5 disks, N=10)",
		XLabel: "cache size (blocks)", YLabel: "execution time (seconds)",
	}
	g := newGrid(o)
	for _, pol := range []cache.AdmissionPolicy{cache.AllOrDemand, cache.Greedy} {
		s := f.AddSeries(pol.String())
		for _, c := range cacheGrid(25, 1200, o.Quick) {
			cfg := baseConfig(25, 5, 10)
			cfg.InterRun = true
			cfg.CacheBlocks = c
			cfg.Admission = pol
			g.addPoint(s, float64(c), cfg)
		}
	}
	if err := g.run(); err != nil {
		return Output{}, err
	}
	return Output{Figures: []*table.Figure{f}}, nil
}

// ablationRunChoice compares how the inter-run strategy picks the run
// to prefetch on each disk: random (paper), least-buffered,
// round-robin, and an oracle with perfect lookahead. All policies
// replay the same pre-drawn depletion traces so differences are purely
// the policy's. The paper's TR found informed (head-position) policies
// marginal; buffer-informed and oracle choices quantify the actual
// headroom at a constrained cache.
func ablationRunChoice(o Options) (Output, error) {
	o = o.normalized()
	t := &table.Table{
		Title:   "Inter-run prefetch run choice (k=25, D=5, N=10, C=500, shared traces)",
		Columns: []string{"policy", "total (s)", "success ratio"},
	}
	const k, blocks = 25, 1000
	policies := []core.PrefetchRunPolicy{
		core.RandomRun, core.LeastBufferedRun, core.RoundRobinRun, core.OracleRun,
	}
	totals := make(map[core.PrefetchRunPolicy]*stats.Summary)
	ratios := make(map[core.PrefetchRunPolicy]*stats.Summary)
	for _, pol := range policies {
		totals[pol] = &stats.Summary{}
		ratios[pol] = &stats.Summary{}
	}
	// Every (trial, policy) pair replays the same pre-drawn trace, so
	// each is an independent single-replication point: the grid runs
	// them with trials = 1 and per-point seeds and workloads.
	g := newGrid(o)
	g.trials = 1
	for trial := 0; trial < o.Trials; trial++ {
		trace := uniformTrace(o.Seed+uint64(trial), k, blocks)
		for _, pol := range policies {
			pol := pol
			cfg := baseConfig(k, 5, 10)
			cfg.InterRun = true
			cfg.CacheBlocks = 500
			cfg.RunPolicy = pol
			cfg.Seed = o.Seed + uint64(trial)
			cfg.Workload = &workload.Sequence{Runs: append([]int(nil), trace...)}
			g.addSeeded(cfg, func(a core.Aggregate) {
				res := a.Results[0]
				totals[pol].Add(res.TotalTime.Seconds())
				ratios[pol].Add(res.SuccessRatio())
			})
		}
	}
	if err := g.run(); err != nil {
		return Output{}, err
	}
	for _, pol := range policies {
		t.AddRow(pol.String(),
			fmt.Sprintf("%.2f", totals[pol].Mean()),
			fmt.Sprintf("%.3f", ratios[pol].Mean()))
	}
	return Output{Tables: []*table.Table{t}}, nil
}

// uniformTrace draws a full depletion order with exactly `blocks`
// depletions per run, uniformly interleaved — the Kwan–Baer model as a
// replayable sequence.
func uniformTrace(seed uint64, k, blocks int) []int {
	trace := make([]int, 0, k*blocks)
	for r := 0; r < k; r++ {
		for b := 0; b < blocks; b++ {
			trace = append(trace, r)
		}
	}
	r := rng.New(seed).Split("trace")
	r.Shuffle(len(trace), func(i, j int) { trace[i], trace[j] = trace[j], trace[i] })
	return trace
}

// ablationRotation compares the paper's mean-uniform rotational model
// against a constant-latency and a positional (angle-tracking) model.
func ablationRotation(o Options) (Output, error) {
	o = o.normalized()
	t := &table.Table{
		Title:   "Rotational latency model (k=25, D=5, N=10, inter-run, ample cache)",
		Columns: []string{"model", "total (s)"},
	}
	g := newGrid(o)
	for _, m := range []disk.RotationalModel{disk.RotUniform, disk.RotConstant, disk.RotPositional} {
		m := m
		cfg := interConfig(25, 5, 10)
		cfg.Disk.Rotational = m
		g.add(cfg, func(a core.Aggregate) {
			t.AddRow(m.String(), fmt.Sprintf("%.2f", a.TotalTime.Mean()))
		})
	}
	if err := g.run(); err != nil {
		return Output{}, err
	}
	return Output{Tables: []*table.Table{t}}, nil
}

// ablationPlacement compares run placements. Striping a run over all
// disks parallelizes even a single intra-run fetch, at the price of
// occupying every arm; the bench shows where each wins.
func ablationPlacement(o Options) (Output, error) {
	o = o.normalized()
	t := &table.Table{
		Title:   "Run placement (k=25, D=5, N=10, intra-run only)",
		Columns: []string{"placement", "strategy", "total (s)"},
	}
	g := newGrid(o)
	for _, pl := range []layout.Placement{layout.RoundRobin, layout.Clustered, layout.Striped} {
		for _, inter := range []bool{false, true} {
			pl := pl
			cfg := baseConfig(25, 5, 10)
			cfg.Placement = pl
			cfg.InterRun = inter
			name := "demand-run-only"
			if inter {
				cfg.CacheBlocks = cache.Unlimited
				name = "all-disks-one-run"
			}
			g.add(cfg, func(a core.Aggregate) {
				t.AddRow(pl.String(), name, fmt.Sprintf("%.2f", a.TotalTime.Mean()))
			})
		}
	}
	if err := g.run(); err != nil {
		return Output{}, err
	}
	return Output{Tables: []*table.Table{t}}, nil
}

// ablationSeekModel compares the paper's linear seek curve against an
// acceleration-limited affine-√distance curve (2 ms settle +
// 0.5 ms·√cylinders, a realistic late-80s drive), for each strategy.
// The paper concedes its linear law is only an approximation; the
// bench shows the strategy ordering — and inter-run's dominance — is
// robust to the curve's shape.
func ablationSeekModel(o Options) (Output, error) {
	o = o.normalized()
	t := &table.Table{
		Title:   "Seek curve (k=25, D=5, N=10): linear (paper) vs affine-sqrt",
		Columns: []string{"strategy", "linear (s)", "affine-sqrt (s)"},
	}
	strategies := []struct {
		name  string
		n     int
		inter bool
	}{
		{"no prefetch", 1, false},
		{"demand-run-only N=10", 10, false},
		{"all-disks-one-run N=10", 10, true},
	}
	g := newGrid(o)
	rows := make([][]string, len(strategies))
	for i, s := range strategies {
		rows[i] = []string{s.name, "", ""}
		for j, model := range []disk.SeekModel{disk.SeekLinear, disk.SeekAffineSqrt} {
			cell := &rows[i][j+1]
			cfg := baseConfig(25, 5, s.n)
			cfg.InterRun = s.inter
			if s.inter {
				cfg.CacheBlocks = cache.Unlimited
			}
			cfg.Disk.Seek = model
			cfg.Disk.SeekSettle = 2      // ms: head settle
			cfg.Disk.SeekSqrtCoeff = 0.5 // ms per sqrt(cylinder)
			g.add(cfg, func(a core.Aggregate) {
				*cell = fmt.Sprintf("%.2f", a.TotalTime.Mean())
			})
		}
	}
	if err := g.run(); err != nil {
		return Output{}, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return Output{Tables: []*table.Table{t}}, nil
}

// ablationScheduler compares FCFS (paper) against SSTF queueing under
// inter-run prefetching, where queues actually form.
func ablationScheduler(o Options) (Output, error) {
	o = o.normalized()
	t := &table.Table{
		Title:   "Disk queue discipline (k=50, D=5, N=10, inter-run, C=800)",
		Columns: []string{"discipline", "total (s)", "success ratio"},
	}
	g := newGrid(o)
	for _, disc := range []disk.Discipline{disk.FCFS, disk.SSTF, disk.SCAN} {
		disc := disc
		cfg := baseConfig(50, 5, 10)
		cfg.InterRun = true
		cfg.CacheBlocks = 800
		cfg.Disk.Discipline = disc
		g.add(cfg, func(a core.Aggregate) {
			t.AddRow(disc.String(),
				fmt.Sprintf("%.2f", a.TotalTime.Mean()),
				fmt.Sprintf("%.3f", a.SuccessRatio.Mean()))
		})
	}
	if err := g.run(); err != nil {
		return Output{}, err
	}
	return Output{Tables: []*table.Table{t}}, nil
}
