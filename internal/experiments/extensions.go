package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/extsort"
	"repro/internal/parallel"
	"repro/internal/plan"
	"repro/internal/rng"
	"repro/internal/table"
)

// extWriteTraffic probes the paper's separate-write-disks assumption:
// it compares the headline configuration with no output modelling,
// with a separate output array, and with writes sharing the input
// arms. The paper's exclusion of write traffic is justified exactly
// when the first two rows coincide.
func extWriteTraffic(o Options) (Output, error) {
	o = o.normalized()
	t := &table.Table{
		Title:   "Write traffic (k=25, D=5, N=10, inter-run, ample cache)",
		Columns: []string{"output model", "total (s)", "write stall (s)"},
	}
	cases := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"ignored (paper)", func(c *core.Config) {}},
		{"separate array, 5 disks", func(c *core.Config) {
			c.Write = core.WriteConfig{Enabled: true, Disks: 5}
		}},
		{"separate array, 2 disks", func(c *core.Config) {
			c.Write = core.WriteConfig{Enabled: true, Disks: 2}
		}},
		{"shared with input disks", func(c *core.Config) {
			c.Write = core.WriteConfig{Enabled: true, Shared: true}
		}},
	}
	g := newGrid(o)
	for _, cs := range cases {
		cs := cs
		cfg := interConfig(25, 5, 10)
		cfg.CacheBlocks = cache.Unlimited
		cs.mut(&cfg)
		g.add(cfg, func(a core.Aggregate) {
			var stall float64
			for _, r := range a.Results {
				stall += r.WriteStall.Seconds()
			}
			stall /= float64(len(a.Results))
			t.AddRow(cs.name, fmt.Sprintf("%.2f", a.TotalTime.Mean()), fmt.Sprintf("%.2f", stall))
		})
	}
	if err := g.run(); err != nil {
		return Output{}, err
	}
	return Output{Tables: []*table.Table{t}}, nil
}

// extMultiPass probes the regime the paper does not study: a full
// multi-pass sort where later passes merge few, very long runs. There
// the inter-run policy's forced per-disk refills let lone runs hoard
// the cache, the success ratio collapses with run length, and plain
// intra-run prefetching wins — the finding behind the calibrated
// planner's per-pass strategy choice.
func extMultiPass(o Options) (Output, error) {
	o = o.normalized()
	t := &table.Table{
		Title:   "Extension: few long runs (k=18, D=5, N=16, C=1024) — inter-run degrades with run length",
		Columns: []string{"blocks/run", "inter+intra (ms/blk)", "inter success", "intra N=56 (ms/blk)"},
	}
	lengths := []int{200, 1000, 5000, 20000}
	if o.Quick {
		lengths = []int{200, 5000}
	}
	g := newGrid(o)
	g.trials = 1
	rows := make([][]string, len(lengths))
	for i, bpr := range lengths {
		rows[i] = []string{fmt.Sprintf("%d", bpr), "", "", ""}
		row := rows[i]
		inter := core.Default()
		inter.K, inter.D, inter.BlocksPerRun, inter.N = 18, 5, bpr, 16
		inter.InterRun = true
		inter.CacheBlocks = 1024
		intra := inter
		intra.InterRun = false
		intra.N = min(56, bpr)
		g.add(inter, func(a core.Aggregate) {
			res := a.Results[0]
			row[1] = fmt.Sprintf("%.3f", float64(res.TotalTime)/float64(res.MergedBlocks))
			row[2] = fmt.Sprintf("%.3f", res.SuccessRatio())
		})
		g.add(intra, func(a core.Aggregate) {
			res := a.Results[0]
			row[3] = fmt.Sprintf("%.3f", float64(res.TotalTime)/float64(res.MergedBlocks))
		})
	}
	if err := g.run(); err != nil {
		return Output{}, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}

	// And the planner's answer: calibrated vs analytic for a deep sort.
	// The planner comparison runs its own probe simulations, so skip it
	// in quick mode.
	if o.Quick {
		return Output{Tables: []*table.Table{t}}, nil
	}
	pt := &table.Table{
		Title:   "Extension: multi-pass planner (1M blocks, memory 1024, D=5)",
		Columns: []string{"planner", "passes", "strategy", "merge estimate (s)"},
	}
	j := plan.Job{TotalBlocks: 1 << 20, MemoryBlocks: 1024, D: 5, InterRun: true}
	analytic, err := plan.Build(j)
	if err != nil {
		return Output{}, err
	}
	calibrated, err := plan.BuildCalibrated(j, o.Seed)
	if err != nil {
		return Output{}, err
	}
	describe := func(name string, p plan.Plan) {
		strategy := "intra"
		if len(p.Passes) > 0 && p.Passes[0].InterRun {
			strategy = "inter+intra"
		}
		pt.AddRow(name, fmt.Sprintf("%d", p.NumPasses()), strategy,
			fmt.Sprintf("%.0f", p.Estimated.Seconds()))
	}
	describe("analytic (eq 4/5)", analytic)
	describe("calibrated (simulation-scored)", calibrated)
	return Output{Tables: []*table.Table{t, pt}}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// extModernDisk re-runs the headline comparison on a late-2000s SATA
// drive: transfer time shrinks ~65x while rotational latency only
// halves, so the mechanical overheads the paper's prefetching
// amortizes dominate even harder — the strategies age well.
func extModernDisk(o Options) (Output, error) {
	o = o.normalized()
	t := &table.Table{
		Title:   "Extension: 1992 RA-series vs late-2000s SATA (k=25, D=5, unsynchronized)",
		Columns: []string{"strategy", "1992 drive (s)", "modern drive (s)"},
	}
	strategies := []struct {
		name  string
		n     int
		inter bool
	}{
		{"no prefetch", 1, false},
		{"intra-run N=10", 10, false},
		{"inter+intra N=10", 10, true},
		{"inter+intra N=30", 30, true},
	}
	g := newGrid(o)
	rows := make([][]string, len(strategies))
	for i, s := range strategies {
		rows[i] = []string{s.name, "", ""}
		for j, params := range []disk.Params{disk.PaperParams(), disk.ModernParams()} {
			cell := &rows[i][j+1]
			cfg := baseConfig(25, 5, s.n)
			cfg.InterRun = s.inter
			if s.inter {
				cfg.CacheBlocks = cache.Unlimited
			}
			cfg.Disk = params
			g.add(cfg, func(a core.Aggregate) {
				*cell = fmt.Sprintf("%.2f", a.TotalTime.Mean())
			})
		}
	}
	if err := g.run(); err != nil {
		return Output{}, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return Output{Tables: []*table.Table{t}}, nil
}

// extK100 reproduces the experiment the paper ran but omitted "for
// reasons of space": the figure-3.2 sweep at k = 100 runs. The same
// shapes must hold at the larger merge order.
func extK100(o Options) (Output, error) {
	o = o.normalized()
	f := &table.Figure{
		ID: "ext-k100", Title: "Fetching N Blocks (100 runs) — the sweep the paper omitted",
		XLabel: "N", YLabel: "total time (seconds)",
	}
	curves := []struct {
		label string
		mk    func(n int) core.Config
	}{
		{"All Disks One Run (100 runs, 10 disks)", func(n int) core.Config { return interConfig(100, 10, n) }},
		{"All Disks One Run (100 runs, 5 disks)", func(n int) core.Config { return interConfig(100, 5, n) }},
		{"Demand Run Only (100 runs, 10 disks)", func(n int) core.Config { return intraConfig(100, 10, n) }},
		{"Demand Run Only (100 runs, 1 disk)", func(n int) core.Config { return intraConfig(100, 1, n) }},
	}
	g := newGrid(o)
	for _, c := range curves {
		sweepN(g, f.AddSeries(c.label), c.mk)
	}
	if err := g.run(); err != nil {
		return Output{}, err
	}
	return Output{Figures: []*table.Figure{f}}, nil
}

// extAdaptiveN compares the AIMD depth controller against fixed
// prefetch depths over the figure-3.5a cache sweep: the paper observes
// that every cache size has its own optimal N; the controller should
// track it without per-configuration tuning.
func extAdaptiveN(o Options) (Output, error) {
	o = o.normalized()
	f := &table.Figure{
		ID: "ext-adaptive-n", Title: "Adaptive prefetch depth (25 runs, 5 disks, inter-run)",
		XLabel: "cache size (blocks)", YLabel: "execution time (seconds)",
	}
	depth := &table.Figure{
		ID: "ext-adaptive-n-depth", Title: "Controller mean depth vs cache size",
		XLabel: "cache size (blocks)", YLabel: "mean prefetch depth",
	}
	caches := cacheGrid(25, 1200, o.Quick)
	g := newGrid(o)
	for _, n := range []int{1, 5, 10} {
		s := f.AddSeries(fmt.Sprintf("fixed N=%d", n))
		for _, c := range caches {
			cfg := baseConfig(25, 5, n)
			cfg.InterRun = true
			cfg.CacheBlocks = c
			g.addPoint(s, float64(c), cfg)
		}
	}
	s := f.AddSeries("adaptive (bound 30)")
	sd := depth.AddSeries("adaptive (bound 30)")
	for _, c := range caches {
		cfg := baseConfig(25, 5, 30)
		cfg.AdaptiveN = true
		cfg.InterRun = true
		cfg.CacheBlocks = c
		x := float64(c)
		g.add(cfg, func(a core.Aggregate) {
			var meanDepth float64
			for _, r := range a.Results {
				meanDepth += r.MeanDepth
			}
			meanDepth /= float64(len(a.Results))
			s.Point(x, a.TotalTime.Mean())
			sd.Point(x, meanDepth)
		})
	}
	if err := g.run(); err != nil {
		return Output{}, err
	}
	return Output{Figures: []*table.Figure{f, depth}}, nil
}

// extRealTrace sorts real records and replays the merge's actual
// block-depletion trace through the simulator, comparing the strategy
// ordering against the paper's random-depletion model, and random
// prefetch-run choice against forecast-driven (oracle) choice.
func extRealTrace(o Options) (Output, error) {
	o = o.normalized()
	sortCfg := extsort.DefaultConfig()
	sortCfg.MemoryBlocks = 200
	records := 500_000
	if o.Quick {
		records = 100_000
		sortCfg.MemoryBlocks = 100
	}

	r := rng.New(o.Seed)
	data := make([]byte, records*sortCfg.RecordSize)
	for i := 0; i+8 <= len(data); i += 8 {
		b := r.Uint64()
		for j := 0; j < 8; j++ {
			data[i+j] = byte(b >> (8 * j))
		}
	}
	in, err := extsort.NewSliceReader(data, sortCfg.RecordSize)
	if err != nil {
		return Output{}, err
	}
	store := extsort.NewMemStore()
	out := extsort.NewCountingWriter(sortCfg)
	st, err := extsort.Sort(sortCfg, in, store, out)
	if err != nil {
		return Output{}, err
	}
	if !out.Ordered() {
		return Output{}, fmt.Errorf("experiments: real sort produced unordered output")
	}

	t := &table.Table{
		Title: fmt.Sprintf("Extension: real merge trace (%d records, %d runs) replayed through the simulator (D=5)",
			st.Records, st.Runs),
		Columns: []string{"strategy", "total (s)", "overlap"},
	}
	// The run-choice comparison only bites at a constrained cache, so
	// the inter-run rows run both ample and tight configurations.
	cases := []struct {
		name   string
		n      int
		inter  bool
		policy core.PrefetchRunPolicy
		cache  int
	}{
		{"no prefetch", 1, false, core.RandomRun, cache.Unlimited},
		{"intra-run N=10", 10, false, core.RandomRun, cache.Unlimited},
		{"inter+intra N=10, ample cache", 10, true, core.RandomRun, cache.Unlimited},
		{"inter+intra N=10, C=700, random", 10, true, core.RandomRun, 700},
		{"inter+intra N=10, C=700, forecast-oracle", 10, true, core.OracleRun, 700},
		{"inter+intra N=10, C=700, least-buffered", 10, true, core.LeastBufferedRun, 700},
	}
	// Every case replays the same captured trace through its own fresh
	// Sequence model, so the replays are independent simulation points.
	results, err := parallel.Map(len(cases), o.Workers, func(i int) (core.Result, error) {
		cs := cases[i]
		base := core.Default()
		base.D = 5
		base.N = cs.n
		base.InterRun = cs.inter
		base.RunPolicy = cs.policy
		base.CacheBlocks = cs.cache
		base.Seed = o.Seed
		return extsort.SimulateMerge(store.RunBlocks(), st.Trace, base)
	})
	if err != nil {
		return Output{}, err
	}
	for i, cs := range cases {
		t.AddRow(cs.name,
			fmt.Sprintf("%.2f", results[i].TotalTime.Seconds()),
			fmt.Sprintf("%.2f", results[i].MeanConcurrencyWhenBusy))
	}
	return Output{Tables: []*table.Table{t}}, nil
}
