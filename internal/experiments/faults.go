package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/table"
)

// extDegradedDisk measures what the paper's always-healthy-disk
// assumption hides: how each prefetching strategy degrades when one of
// the D disks fail-slows. Inter-run prefetching couples every decision
// point to all D disks — a synchronized batch waits for the slow arm on
// every fetch — so its curve should steepen fastest, while intra-run
// unsynchronized only pays on the fraction of demand fetches that land
// on the degraded disk.
func extDegradedDisk(o Options) (Output, error) {
	o = o.normalized()
	f := &table.Figure{
		ID: "ext-degraded-disk", Title: "Degraded disk: one arm fail-slow (k=25, 5 disks, N=10)",
		XLabel: "slowdown factor of disk 2", YLabel: "total time (seconds)",
	}
	factors := []float64{1, 1.5, 2, 3, 4}
	if o.Quick {
		factors = []float64{1, 2, 4}
	}
	strategies := []struct {
		label       string
		inter, sync bool
	}{
		{"All Disks One Run, synchronized", true, true},
		{"All Disks One Run, unsynchronized", true, false},
		{"Demand Run Only, synchronized", false, true},
		{"Demand Run Only, unsynchronized", false, false},
	}
	mk := func(inter, sync bool, factor float64) core.Config {
		var cfg core.Config
		if inter {
			cfg = interConfig(25, 5, 10)
		} else {
			cfg = intraConfig(25, 5, 10)
		}
		cfg.Synchronized = sync
		if factor > 1 {
			cfg.Faults = &faults.Spec{Disks: []faults.DiskSpec{{Disk: 2, Slowdown: factor}}}
		}
		return cfg
	}
	g := newGrid(o)
	for _, st := range strategies {
		s := f.AddSeries(st.label)
		for _, factor := range factors {
			g.addPoint(s, factor, mk(st.inter, st.sync, factor))
		}
	}

	// Fault accounting at a fixed 2x degradation, plus a flaky-disk row
	// (transient read errors, recovered by re-reads) for the same
	// headline strategy.
	t := &table.Table{
		Title:   "Fault accounting (k=25, D=5, N=10, disk 2 degraded)",
		Columns: []string{"fault", "strategy", "total (s)", "retries", "retry (s)", "slowdown (s)"},
	}
	type row struct {
		fault, label string
		cfg          core.Config
	}
	var rows []row
	for _, st := range strategies[:2] {
		rows = append(rows, row{"fail-slow 2x", st.label, mk(st.inter, st.sync, 2)})
	}
	flaky := mk(true, false, 1)
	flaky.Faults = &faults.Spec{Disks: []faults.DiskSpec{{Disk: 2, ReadErrorProb: 0.05}}}
	rows = append(rows, row{"read errors p=0.05", strategies[1].label, flaky})
	for _, r := range rows {
		r := r
		g.add(r.cfg, func(a core.Aggregate) {
			var ft core.FaultTotals
			for _, res := range a.Results {
				ft.Retries += res.Faults.Retries
				ft.RetryTime += res.Faults.RetryTime
				ft.SlowdownTime += res.Faults.SlowdownTime
			}
			n := float64(len(a.Results))
			t.AddRow(r.fault, r.label,
				fmt.Sprintf("%.2f", a.TotalTime.Mean()),
				fmt.Sprintf("%.1f", float64(ft.Retries)/n),
				fmt.Sprintf("%.2f", ft.RetryTime.Seconds()/n),
				fmt.Sprintf("%.2f", ft.SlowdownTime.Seconds()/n))
		})
	}
	if err := g.run(); err != nil {
		return Output{}, err
	}
	return Output{Figures: []*table.Figure{f}, Tables: []*table.Table{t}}, nil
}
