package plan

import (
	"math"
	"strings"
	"testing"

	"repro/internal/disk"
)

func job(blocks int64, memory, d int, inter bool) Job {
	return Job{
		TotalBlocks:  blocks,
		MemoryBlocks: memory,
		D:            d,
		InterRun:     inter,
		Disk:         disk.PaperParams(),
	}
}

func TestSinglePassWhenRunsFitFanIn(t *testing.T) {
	// 25000 blocks, memory 1000: 25 initial runs; fan-in up to 1000/N
	// easily covers 25 in one pass.
	p, err := Build(job(25000, 1000, 5, true))
	if err != nil {
		t.Fatal(err)
	}
	if p.InitialRuns != 25 {
		t.Fatalf("initial runs = %d", p.InitialRuns)
	}
	if p.NumPasses() != 1 {
		t.Fatalf("passes = %d, want 1:\n%s", p.NumPasses(), p)
	}
	if p.Passes[0].RunsOut != 1 {
		t.Fatalf("final pass leaves %d runs", p.Passes[0].RunsOut)
	}
}

func TestMultiplePassesWhenMemoryTight(t *testing.T) {
	// 100000 blocks, memory 100: 1000 initial runs; fan-in at most
	// ~100, so at least 2 passes.
	p, err := Build(job(100000, 100, 5, false))
	if err != nil {
		t.Fatal(err)
	}
	if p.InitialRuns != 1000 {
		t.Fatalf("initial runs = %d", p.InitialRuns)
	}
	if p.NumPasses() < 2 {
		t.Fatalf("passes = %d, want >= 2:\n%s", p.NumPasses(), p)
	}
	last := p.Passes[len(p.Passes)-1]
	if last.RunsOut != 1 {
		t.Fatalf("plan does not end in one run:\n%s", p)
	}
	// Run counts chain correctly.
	for i := 1; i < len(p.Passes); i++ {
		if p.Passes[i].RunsIn != p.Passes[i-1].RunsOut {
			t.Fatalf("pass chain broken:\n%s", p)
		}
	}
}

func TestMoreMemoryNeverWorse(t *testing.T) {
	small, err := Build(job(50000, 100, 5, true))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(job(50000, 1000, 5, true))
	if err != nil {
		t.Fatal(err)
	}
	if big.Estimated > small.Estimated {
		t.Fatalf("more memory estimated slower: %v vs %v", big.Estimated, small.Estimated)
	}
	if big.NumPasses() > small.NumPasses() {
		t.Fatalf("more memory, more passes: %d vs %d", big.NumPasses(), small.NumPasses())
	}
}

func TestMoreDisksNeverWorse(t *testing.T) {
	d1, err := Build(job(50000, 500, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	d5, err := Build(job(50000, 500, 5, false))
	if err != nil {
		t.Fatal(err)
	}
	if d5.Estimated > d1.Estimated {
		t.Fatalf("more disks estimated slower: %v vs %v", d5.Estimated, d1.Estimated)
	}
}

func TestAlreadySortedData(t *testing.T) {
	p, err := Build(job(500, 1000, 5, false))
	if err != nil {
		t.Fatal(err)
	}
	if p.InitialRuns != 1 || p.NumPasses() != 0 || p.Estimated != 0 {
		t.Fatalf("tiny job plan wrong: %+v", p)
	}
	if p.FormationTime <= 0 {
		t.Fatal("formation sweep missing")
	}
}

func TestValidation(t *testing.T) {
	bad := []Job{
		job(0, 100, 5, false),
		job(100, 1, 5, false),
		job(100, 100, 0, false),
	}
	for i, j := range bad {
		if _, err := Build(j); err == nil {
			t.Fatalf("bad job %d accepted", i)
		}
	}
}

func TestDefaultDiskFilledIn(t *testing.T) {
	j := job(1000, 100, 2, false)
	j.Disk = disk.Params{} // zero: Build must substitute the paper's
	if _, err := Build(j); err != nil {
		t.Fatal(err)
	}
}

func TestPlanStringReadable(t *testing.T) {
	p, err := Build(job(100000, 100, 5, true))
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"initial runs 1000", "pass 0", "total merge estimate"} {
		if !strings.Contains(s, want) {
			t.Fatalf("plan string missing %q:\n%s", want, s)
		}
	}
}

func TestSimulatePassAgreesWithEstimate(t *testing.T) {
	p, err := Build(job(25000, 600, 5, true))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPasses() != 1 {
		t.Fatalf("expected single pass:\n%s", p)
	}
	simT, res, err := p.SimulatePass(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MergedBlocks == 0 {
		t.Fatal("nothing simulated")
	}
	// The analytic pass estimate uses the synchronized expressions and
	// assumes a saturated success ratio; the unsynchronized simulation
	// should land within a moderate band of it.
	ratio := float64(simT) / float64(p.Passes[0].Estimated)
	if math.IsNaN(ratio) || ratio < 0.4 || ratio > 1.7 {
		t.Fatalf("simulated/estimated = %v (sim %v, est %v)", ratio, simT, p.Passes[0].Estimated)
	}
}

func TestSimulatePassCapsLongRuns(t *testing.T) {
	// 2M blocks, memory 200: very long second-pass runs must be capped
	// to the geometry and still simulate.
	p, err := Build(job(2_000_000, 200, 5, false))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPasses() < 2 {
		t.Fatalf("expected multi-pass:\n%s", p)
	}
	last := p.NumPasses() - 1
	simT, _, err := p.SimulatePass(last, 1)
	if err != nil {
		t.Fatal(err)
	}
	if simT <= 0 {
		t.Fatal("no simulated time")
	}
	if _, _, err := p.SimulatePass(99, 1); err == nil {
		t.Fatal("out-of-range pass accepted")
	}
}
