package plan

import (
	"testing"
)

func TestBuildCalibratedBasics(t *testing.T) {
	p, err := BuildCalibrated(job(25000, 1000, 5, true), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.InitialRuns != 25 || p.NumPasses() < 1 {
		t.Fatalf("plan shape: %+v", p)
	}
	last := p.Passes[p.NumPasses()-1]
	if last.RunsOut != 1 {
		t.Fatalf("plan does not finish:\n%s", p)
	}
}

func TestBuildCalibratedAvoidsInterRunPathology(t *testing.T) {
	// Deep multi-pass regime: few long runs per pass. The inter-run
	// policy starves there (lone runs per disk hoard the cache); the
	// calibrated planner must fall back to intra-run passes even though
	// the job allows inter-run. 64k blocks keeps the probe set cheap
	// while preserving the regime.
	j := job(1<<16, 256, 5, true)
	p, err := BuildCalibrated(j, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, pass := range p.Passes {
		if pass.InterRun && pass.FanIn < 2*j.D {
			t.Fatalf("calibrated plan kept inter-run at %d runs on %d disks:\n%s",
				pass.FanIn, j.D, p)
		}
	}
	// And its whole schedule must be no slower than the analytic plan's
	// when both are validated by simulation.
	analytic, err := Build(j)
	if err != nil {
		t.Fatal(err)
	}
	simTotal := func(pl Plan) float64 {
		total := 0.0
		for i := range pl.Passes {
			s, _, err := pl.SimulatePass(i, 1)
			if err != nil {
				t.Fatal(err)
			}
			total += s.Seconds()
		}
		return total
	}
	cal, ana := simTotal(p), simTotal(analytic)
	if cal > ana*1.1 {
		t.Fatalf("calibrated schedule (%.1fs) slower than analytic (%.1fs)\ncal:\n%s\nana:\n%s",
			cal, ana, p, analytic)
	}
}

func TestBuildCalibratedValidationAgreement(t *testing.T) {
	p, err := BuildCalibrated(job(60000, 500, 5, true), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Passes {
		simT, _, err := p.SimulatePass(i, 1)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(simT) / float64(p.Passes[i].Estimated)
		if ratio < 0.6 || ratio > 1.6 {
			t.Fatalf("pass %d: simulated/estimated = %v:\n%s", i, ratio, p)
		}
	}
}

func TestBuildCalibratedSmallJob(t *testing.T) {
	p, err := BuildCalibrated(job(500, 1000, 5, true), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPasses() != 0 {
		t.Fatalf("tiny job needed %d passes", p.NumPasses())
	}
}

func TestBuildCalibratedValidation(t *testing.T) {
	if _, err := BuildCalibrated(job(0, 100, 5, false), 1); err == nil {
		t.Fatal("bad job accepted")
	}
}

func TestProbeLengthBounds(t *testing.T) {
	pc := newProbeCache(job(1<<30, 1024, 5, true), 1)
	// Huge pass length: bounded by budget/geometry.
	l := pc.probeLength(1000, 1<<40)
	if l > 300 || l < 50 {
		t.Fatalf("probe length for 1000 runs = %d", l)
	}
	// Small pass length: probe uses it directly.
	if got := pc.probeLength(10, 120); got != 120 {
		t.Fatalf("short-pass probe length = %d", got)
	}
	// Never below the floor.
	if got := pc.probeLength(100000, 1<<40); got < 50 {
		t.Fatalf("probe floor violated: %d", got)
	}
}
