// Package plan builds multi-pass external mergesort plans on top of the
// paper's single-merge model. The paper analyses one merge pass; a
// whole sort first forms ⌈B/M⌉ runs and then merges them in one or more
// passes, with the merge order (fan-in) limited by the cache: a fan-in
// of k with prefetch depth N needs roughly kN blocks of cache, plus DN
// for inter-run batches. This package searches (N, fan-in) pairs for
// the cheapest plan under the paper's analytic expressions, and can
// validate any pass against the simulator.
package plan

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/sim"
)

// Job describes a sort to plan.
type Job struct {
	// TotalBlocks is the data size in blocks.
	TotalBlocks int64
	// MemoryBlocks is the RAM available, in blocks — the run-formation
	// load size and the merge-phase cache capacity C.
	MemoryBlocks int
	// D is the number of input disks per pass (output goes to a
	// separate array, per the paper's model).
	D int
	// InterRun selects combined inter+intra prefetching for the merge
	// passes; otherwise intra-run only.
	InterRun bool
	// Disk gives the drive parameters (default: the paper's).
	Disk disk.Params
}

// Validate reports the first job error, or nil.
func (j Job) Validate() error {
	switch {
	case j.TotalBlocks <= 0:
		return fmt.Errorf("plan: TotalBlocks = %d", j.TotalBlocks)
	case j.MemoryBlocks < 2:
		return fmt.Errorf("plan: MemoryBlocks = %d (need at least 2 for a merge)", j.MemoryBlocks)
	case j.D <= 0:
		return fmt.Errorf("plan: D = %d", j.D)
	}
	return j.Disk.Validate()
}

// Pass is one merge pass of a plan.
type Pass struct {
	Index  int
	RunsIn int
	// FanIn is the merge order: each group merges up to FanIn runs.
	FanIn   int
	Merges  int
	RunsOut int
	// RunBlocksIn is the (average) input run length in blocks.
	RunBlocksIn int64
	// N is the intra-run prefetch depth the pass uses.
	N int
	// InterRun reports whether the pass uses inter-run prefetching.
	InterRun bool
	// Estimated is the analytic time for the whole pass.
	Estimated sim.Time
}

// Plan is a full multi-pass schedule.
type Plan struct {
	Job         Job
	InitialRuns int
	Passes      []Pass
	// Estimated is the analytic total over all merge passes (run
	// formation I/O is one additional read+write sweep, reported
	// separately as FormationTime).
	Estimated sim.Time
	// FormationTime estimates the run-formation sweep: every block is
	// read once and written once sequentially.
	FormationTime sim.Time
}

// passTime estimates one pass analytically: merging groups of fanIn
// runs with depth N, every data block is read once at the per-block
// rate of the paper's equations (eq 5 for inter-run, eq 4 for
// intra-run, both synchronized — a deliberately conservative bound).
func passTime(job Job, fanIn, n int, blocks int64) sim.Time {
	d := job.D
	if d > fanIn {
		d = fanIn
	}
	m := analysis.FromConfig(job.Disk, fanIn, d, n, int(minI64(int64(job.MemoryBlocks), blocks)))
	// The analytic per-block rate uses m = run length in cylinders;
	// recompute with the true run length for this pass.
	m.M = float64(blocks) / float64(fanIn) / float64(job.Disk.BlocksPerCylinder())
	var perBlock sim.Time
	if job.InterRun {
		perBlock = m.Eq5InterMultiDiskSync()
	} else {
		perBlock = m.Eq4IntraMultiDiskSync()
	}
	return perBlock * sim.Time(blocks)
}

// Build searches prefetch depths and fan-ins for the cheapest plan.
func Build(job Job) (Plan, error) {
	if job.Disk.BlockBytes == 0 {
		job.Disk = disk.PaperParams()
	}
	if err := job.Validate(); err != nil {
		return Plan{}, err
	}
	initialRuns := int((job.TotalBlocks + int64(job.MemoryBlocks) - 1) / int64(job.MemoryBlocks))
	plan := Plan{Job: job, InitialRuns: initialRuns}

	// Run formation: one sequential read + write sweep of the data.
	seq := job.Disk.TransferPerBlock * sim.Time(job.TotalBlocks)
	plan.FormationTime = 2 * seq / sim.Time(job.D)

	if initialRuns <= 1 {
		return plan, nil // already sorted after formation
	}

	best := sim.Time(math.Inf(1))
	bestN := 0
	c := job.MemoryBlocks
	for n := 1; n <= c; n++ {
		fanIn := maxFanIn(job, c, n)
		if fanIn < 2 {
			break
		}
		if fanIn > initialRuns {
			fanIn = initialRuns
		}
		total := estimateSchedule(job, initialRuns, fanIn, n)
		if total < best {
			best = total
			bestN = n
		}
	}
	if bestN == 0 {
		return Plan{}, fmt.Errorf("plan: memory %d too small for any merge fan-in", c)
	}

	// Materialize the chosen schedule.
	fanIn := maxFanIn(job, c, bestN)
	runs := initialRuns
	runBlocks := (job.TotalBlocks + int64(initialRuns) - 1) / int64(initialRuns)
	idx := 0
	for runs > 1 {
		f := fanIn
		if f > runs {
			f = runs
		}
		merges := (runs + f - 1) / f
		p := Pass{
			Index:       idx,
			RunsIn:      runs,
			FanIn:       f,
			Merges:      merges,
			RunsOut:     merges,
			RunBlocksIn: runBlocks,
			N:           bestN,
			InterRun:    job.InterRun,
			Estimated:   passTime(job, f, bestN, job.TotalBlocks),
		}
		plan.Passes = append(plan.Passes, p)
		plan.Estimated += p.Estimated
		runs = merges
		runBlocks *= int64(f)
		idx++
	}
	return plan, nil
}

// maxFanIn bounds the merge order for a cache of c blocks at depth n.
// Intra-run prefetching needs exactly kN blocks (the paper shows kN is
// necessary and sufficient for a success ratio of 1). Inter-run
// refills land on random runs, so per-run buffers random-walk well
// above their mean; measured against the figure-3.6 sweeps, the
// success ratio saturates near c ≈ 4·(kN + DN), and the planner's
// analytic pass estimates assume a saturated ratio, so it plans inside
// that region.
func maxFanIn(job Job, c, n int) int {
	if job.InterRun {
		return (c/4 - job.D*n) / n
	}
	return c / n
}

// estimateSchedule returns the analytic total of merging initialRuns
// runs with the given fan-in and depth.
func estimateSchedule(job Job, initialRuns, fanIn, n int) sim.Time {
	var total sim.Time
	runs := initialRuns
	for runs > 1 {
		f := fanIn
		if f > runs {
			f = runs
		}
		total += passTime(job, f, n, job.TotalBlocks)
		runs = (runs + f - 1) / f
	}
	return total
}

// Passes returns the number of merge passes.
func (p Plan) NumPasses() int { return len(p.Passes) }

// String renders the plan as an aligned table.
func (p Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan: %d blocks, memory %d blocks, D=%d, initial runs %d\n",
		p.Job.TotalBlocks, p.Job.MemoryBlocks, p.Job.D, p.InitialRuns)
	fmt.Fprintf(&sb, "  formation sweep: %.1fs\n", p.FormationTime.Seconds())
	for _, pass := range p.Passes {
		strategy := "intra"
		if pass.InterRun {
			strategy = "inter+intra"
		}
		fmt.Fprintf(&sb, "  pass %d: %4d runs -> %4d (fan-in %d, N=%d, %s)  est %.1fs\n",
			pass.Index, pass.RunsIn, pass.RunsOut, pass.FanIn, pass.N, strategy, pass.Estimated.Seconds())
	}
	fmt.Fprintf(&sb, "  total merge estimate: %.1fs\n", p.Estimated.Seconds())
	return sb.String()
}

// SimulatePass validates one pass of the plan against the simulator.
// It simulates a single representative merge group at full fidelity
// and scales to the whole pass (per-block cost is group-size invariant
// once the group shape is fixed). Run lengths are capped so the group
// fits the disk geometry; time scales linearly with blocks, so the
// scaled estimate stays faithful.
func (p Plan) SimulatePass(i int, seed uint64) (sim.Time, core.Result, error) {
	if i < 0 || i >= len(p.Passes) {
		return 0, core.Result{}, fmt.Errorf("plan: pass %d of %d", i, len(p.Passes))
	}
	pass := p.Passes[i]
	d := p.Job.D
	if d > pass.FanIn {
		d = pass.FanIn
	}

	runBlocks := pass.RunBlocksIn
	// Cap the simulated group so ⌈fanIn/D⌉ runs fit one disk. Shorter
	// simulated runs shorten seeks a little, so the scaled estimate is
	// marginally optimistic for very long runs; the transfer-dominated
	// regimes the planner picks make this a second-order effect.
	perDisk := (pass.FanIn + d - 1) / d
	maxRun := int64(p.Job.Disk.CapacityBlocks() / perDisk)
	if runBlocks > maxRun {
		runBlocks = maxRun
	}

	cfg := core.Default()
	cfg.K = pass.FanIn
	cfg.D = d
	cfg.BlocksPerRun = int(runBlocks)
	cfg.N = pass.N
	cfg.InterRun = pass.InterRun
	cfg.Disk = p.Job.Disk
	cfg.CacheBlocks = p.Job.MemoryBlocks
	cfg.Seed = seed
	res, err := core.Run(cfg)
	if err != nil {
		return 0, core.Result{}, err
	}
	// Scale the simulated per-block rate to the whole pass: all groups
	// together process every data block exactly once.
	perBlock := float64(res.TotalTime) / float64(res.MergedBlocks)
	return sim.Time(perBlock * float64(p.Job.TotalBlocks)), res, nil
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
