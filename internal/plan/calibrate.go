package plan

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/sim"
)

// BuildCalibrated plans like Build, but scores every candidate
// (prefetch depth, fan-in, strategy) with short simulations instead of
// the closed forms, choosing the strategy per pass.
//
// The analytic expressions assume the paper's operating regime —
// several runs per disk and a cache generous relative to the kN + DN
// working set. Multi-pass plans leave that regime: later passes merge
// few, very long runs, where the inter-run policy force-feeds the one
// or two runs on each disk until they hoard the cache, the success
// ratio collapses, and plain intra-run prefetching (whose kN cache
// requirement the paper proves sufficient for a success ratio of 1,
// independent of run length) wins. Calibration discovers this
// automatically; it is the planner's main reason to exist.
//
// The returned plan's pass estimates are the scaled probe results.
func BuildCalibrated(job Job, seed uint64) (Plan, error) {
	if job.Disk.BlockBytes == 0 {
		job.Disk = defaultDisk()
	}
	if err := job.Validate(); err != nil {
		return Plan{}, err
	}
	initialRuns := int((job.TotalBlocks + int64(job.MemoryBlocks) - 1) / int64(job.MemoryBlocks))
	plan := Plan{Job: job, InitialRuns: initialRuns}
	seq := job.Disk.TransferPerBlock * sim.Time(job.TotalBlocks)
	plan.FormationTime = 2 * seq / sim.Time(job.D)
	if initialRuns <= 1 {
		return plan, nil
	}

	strategies := []bool{false}
	if job.InterRun {
		strategies = []bool{false, true}
	}

	type candidate struct {
		n, fanIn int
		inter    bool
		total    sim.Time
	}
	best := candidate{total: sim.Time(math.Inf(1))}
	probes := newProbeCache(job, seed)
	c := job.MemoryBlocks
	for _, inter := range strategies {
		for _, n := range []int{1, 2, 4, 8, 16, 24, 32} {
			if n > c {
				break
			}
			fanIn := c / n
			if inter {
				fanIn = (c - job.D*n) / n
			}
			if fanIn < 2 {
				continue
			}
			if fanIn > initialRuns {
				fanIn = initialRuns
			}
			total, err := probes.schedule(initialRuns, fanIn, n, inter)
			if err != nil {
				return Plan{}, err
			}
			if total < best.total {
				best = candidate{n: n, fanIn: fanIn, inter: inter, total: total}
			}
		}
	}
	if best.n == 0 {
		return Plan{}, fmt.Errorf("plan: memory %d too small for any merge fan-in", c)
	}

	runs := initialRuns
	runBlocks := (job.TotalBlocks + int64(initialRuns) - 1) / int64(initialRuns)
	idx := 0
	for runs > 1 {
		f := best.fanIn
		if f > runs {
			f = runs
		}
		rate, err := probes.rate(f, best.n, best.inter, runBlocks)
		if err != nil {
			return Plan{}, err
		}
		merges := (runs + f - 1) / f
		p := Pass{
			Index:       idx,
			RunsIn:      runs,
			FanIn:       f,
			Merges:      merges,
			RunsOut:     merges,
			RunBlocksIn: runBlocks,
			N:           best.n,
			InterRun:    best.inter,
			Estimated:   sim.Time(float64(rate) * float64(job.TotalBlocks)),
		}
		plan.Passes = append(plan.Passes, p)
		plan.Estimated += p.Estimated
		runs = merges
		runBlocks *= int64(f)
		idx++
	}
	return plan, nil
}

// probeCache memoizes per-block merge rates measured by short
// simulations, keyed by pass shape.
type probeCache struct {
	job   Job
	seed  uint64
	rates map[probeKey]sim.Time
}

type probeKey struct {
	fanIn, n, length int
	inter            bool
}

func newProbeCache(job Job, seed uint64) *probeCache {
	return &probeCache{job: job, seed: seed, rates: make(map[probeKey]sim.Time)}
}

// schedule scores the whole multi-pass schedule of a candidate.
func (pc *probeCache) schedule(initialRuns, fanIn, n int, inter bool) (sim.Time, error) {
	var total sim.Time
	runs := initialRuns
	runBlocks := (pc.job.TotalBlocks + int64(initialRuns) - 1) / int64(initialRuns)
	for runs > 1 {
		f := fanIn
		if f > runs {
			f = runs
		}
		rate, err := pc.rate(f, n, inter, runBlocks)
		if err != nil {
			return 0, err
		}
		total += sim.Time(float64(rate) * float64(pc.job.TotalBlocks))
		runs = (runs + f - 1) / f
		runBlocks *= int64(f)
	}
	return total, nil
}

// probeLength picks the simulated run length for a pass of fanIn runs
// of passLen blocks: long enough to reach the cache's steady state
// (inter-run degradation develops over thousands of blocks), short
// enough to keep the probe affordable, and within the disk geometry.
func (pc *probeCache) probeLength(fanIn int, passLen int64) int {
	const budget = 300_000 // total probe blocks
	length := int(passLen)
	if byBudget := budget / fanIn; length > byBudget {
		length = byBudget
	}
	d := pc.job.D
	if d > fanIn {
		d = fanIn
	}
	perDisk := (fanIn + d - 1) / d
	if byGeom := pc.job.Disk.CapacityBlocks() / perDisk; length > byGeom {
		length = byGeom
	}
	if length < 50 {
		length = 50
	}
	return length
}

// rate measures (or recalls) the per-block rate of one pass shape.
func (pc *probeCache) rate(fanIn, n int, inter bool, passLen int64) (sim.Time, error) {
	length := pc.probeLength(fanIn, passLen)
	key := probeKey{fanIn: fanIn, n: n, length: length, inter: inter}
	if r, ok := pc.rates[key]; ok {
		return r, nil
	}
	d := pc.job.D
	if d > fanIn {
		d = fanIn
	}
	cfg := core.Default()
	cfg.K = fanIn
	cfg.D = d
	cfg.BlocksPerRun = length
	cfg.N = n
	if n > length {
		cfg.N = length
	}
	cfg.InterRun = inter
	cfg.Disk = pc.job.Disk
	cfg.CacheBlocks = pc.job.MemoryBlocks
	cfg.Seed = pc.seed
	res, err := core.Run(cfg)
	if err != nil {
		return 0, err
	}
	//detlint:allow simunits deliberate ms-per-block rate: the conversion is the dimensional bridge
	r := res.TotalTime / sim.Time(res.MergedBlocks)
	pc.rates[key] = r
	return r, nil
}

// defaultDisk returns the paper's calibrated drive parameters.
func defaultDisk() disk.Params { return disk.PaperParams() }
