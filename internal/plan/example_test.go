package plan_test

import (
	"fmt"

	"repro/internal/plan"
)

// ExampleBuild plans a sort whose initial runs exceed any single
// merge's fan-in, forcing multiple passes.
func ExampleBuild() {
	p, err := plan.Build(plan.Job{
		TotalBlocks:  100_000, // ~400 MB at 4 KB blocks
		MemoryBlocks: 100,     // 1000 initial runs
		D:            5,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("initial runs: %d\n", p.InitialRuns)
	fmt.Printf("merge passes: %d\n", p.NumPasses())
	fmt.Printf("final pass leaves %d run\n", p.Passes[p.NumPasses()-1].RunsOut)
	// Output:
	// initial runs: 1000
	// merge passes: 3
	// final pass leaves 1 run
}

// ExampleBuildCalibrated shows the simulation-scored planner choosing
// the pass strategy itself: in the deep multi-pass regime it switches
// to intra-run prefetching, which the analytic expressions miss.
func ExampleBuildCalibrated() {
	p, err := plan.BuildCalibrated(plan.Job{
		TotalBlocks:  1 << 16, // 64k blocks
		MemoryBlocks: 256,
		D:            5,
		InterRun:     true, // allowed, not forced
	}, 1)
	if err != nil {
		panic(err)
	}
	pass := p.Passes[0]
	strategy := "intra-run"
	if pass.InterRun {
		strategy = "inter+intra"
	}
	fmt.Printf("pass 0 merges %d runs at fan-in %d using %s prefetching\n",
		pass.RunsIn, pass.FanIn, strategy)
	// Output:
	// pass 0 merges 256 runs at fan-in 16 using intra-run prefetching
}
