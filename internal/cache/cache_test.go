package cache

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, capacity, k int) *Cache {
	t.Helper()
	c, err := New(capacity, k)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(10, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := New(4, 5); err == nil {
		t.Fatal("capacity < k accepted")
	}
	if _, err := New(5, 5); err != nil {
		t.Fatal("capacity == k rejected")
	}
}

func TestReserveDepositConsumeCycle(t *testing.T) {
	c := mustNew(t, 10, 2)
	if !c.Reserve(3) {
		t.Fatal("Reserve(3) failed with empty cache")
	}
	if c.Free() != 7 || c.Reserved() != 3 || c.Resident() != 0 {
		t.Fatalf("after reserve: free=%d reserved=%d resident=%d", c.Free(), c.Reserved(), c.Resident())
	}
	c.Deposit(0, 0)
	c.Deposit(0, 1)
	c.Deposit(1, 0)
	if c.Reserved() != 0 || c.Resident() != 3 {
		t.Fatalf("after deposits: reserved=%d resident=%d", c.Reserved(), c.Resident())
	}
	if c.Available(0) != 2 || c.Available(1) != 1 {
		t.Fatalf("available = %d/%d", c.Available(0), c.Available(1))
	}
	c.Consume(0)
	if c.Available(0) != 1 || c.Free() != 8 {
		t.Fatalf("after consume: avail=%d free=%d", c.Available(0), c.Free())
	}
	if c.NextToConsume(0) != 1 {
		t.Fatalf("next to consume = %d", c.NextToConsume(0))
	}
	if err := c.Invariant(); err != nil {
		t.Fatal(err)
	}
}

func TestReserveRefusesOversubscription(t *testing.T) {
	c := mustNew(t, 5, 2)
	if !c.Reserve(5) {
		t.Fatal("full reserve failed")
	}
	if c.Reserve(1) {
		t.Fatal("oversubscribing reserve succeeded")
	}
	if c.Free() != 0 {
		t.Fatalf("free = %d", c.Free())
	}
}

func TestUnreserve(t *testing.T) {
	c := mustNew(t, 5, 1)
	c.Reserve(4)
	c.Unreserve(3)
	if c.Free() != 4 || c.Reserved() != 1 {
		t.Fatalf("free=%d reserved=%d", c.Free(), c.Reserved())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Unreserve beyond reserved did not panic")
		}
	}()
	c.Unreserve(2)
}

func TestOutOfOrderDeposit(t *testing.T) {
	c := mustNew(t, 10, 1)
	c.Reserve(4)
	c.Deposit(0, 2) // gap: 0,1 missing
	c.Deposit(0, 3)
	if c.Available(0) != 0 {
		t.Fatalf("available with gap = %d, want 0", c.Available(0))
	}
	c.Deposit(0, 0)
	if c.Available(0) != 1 {
		t.Fatalf("available = %d, want 1", c.Available(0))
	}
	c.Deposit(0, 1) // fills the gap: 0..3 all contiguous
	if c.Available(0) != 4 {
		t.Fatalf("available = %d, want 4", c.Available(0))
	}
	if err := c.Invariant(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleDepositPanics(t *testing.T) {
	c := mustNew(t, 10, 1)
	c.Reserve(3)
	c.Deposit(0, 0)
	for _, idx := range []int{0, 2} {
		idx := idx
		if idx == 2 {
			c.Deposit(0, 2)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("double deposit of %d did not panic", idx)
				}
			}()
			c.Deposit(0, idx)
		}()
	}
}

func TestDepositWithoutReservationPanics(t *testing.T) {
	c := mustNew(t, 10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("deposit without reservation did not panic")
		}
	}()
	c.Deposit(0, 0)
}

func TestConsumeEmptyPanics(t *testing.T) {
	c := mustNew(t, 10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("consume of empty run did not panic")
		}
	}()
	c.Consume(0)
}

func TestCounters(t *testing.T) {
	c := mustNew(t, 10, 1)
	c.Reserve(5)
	for i := 0; i < 5; i++ {
		c.Deposit(0, i)
	}
	for i := 0; i < 3; i++ {
		c.Consume(0)
	}
	if c.Deposits() != 5 || c.Consumed() != 3 {
		t.Fatalf("deposits=%d consumed=%d", c.Deposits(), c.Consumed())
	}
	if c.PeakOccupied() != 5 {
		t.Fatalf("peak = %d", c.PeakOccupied())
	}
}

func TestUnlimitedCapacity(t *testing.T) {
	c := mustNew(t, Unlimited, 3)
	if !c.Reserve(1 << 30) {
		t.Fatal("huge reserve failed on unlimited cache")
	}
	if err := c.Invariant(); err != nil {
		t.Fatal(err)
	}
}

func TestAllOrDemandPolicy(t *testing.T) {
	c := mustNew(t, 10, 1)
	a := AllOrDemand.Admit(c, 8)
	if !a.Full || a.Blocks != 8 {
		t.Fatalf("fit case: %+v", a)
	}
	c.Reserve(7)
	a = AllOrDemand.Admit(c, 8)
	if a.Full || a.Blocks != 1 {
		t.Fatalf("no-fit case: %+v, want demand only", a)
	}
}

func TestGreedyPolicy(t *testing.T) {
	c := mustNew(t, 10, 1)
	c.Reserve(7)
	a := Greedy.Admit(c, 8)
	if a.Full || a.Blocks != 3 {
		t.Fatalf("greedy partial: %+v, want 3 blocks", a)
	}
	c.Reserve(3)
	a = Greedy.Admit(c, 8)
	if a.Full || a.Blocks != 1 {
		t.Fatalf("greedy full cache: %+v, want demand block", a)
	}
}

func TestAdmitWantValidation(t *testing.T) {
	c := mustNew(t, 10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Admit(0) did not panic")
		}
	}()
	AllOrDemand.Admit(c, 0)
}

func TestPolicyStrings(t *testing.T) {
	if AllOrDemand.String() != "all-or-demand" || Greedy.String() != "greedy" {
		t.Fatal("policy strings wrong")
	}
}

// TestInvariantUnderRandomOps drives the cache with a random but legal
// operation sequence and checks the structural invariant throughout.
func TestInvariantUnderRandomOps(t *testing.T) {
	err := quick.Check(func(ops []uint8) bool {
		const k = 4
		c, err := New(12, k)
		if err != nil {
			return false
		}
		nextIdx := make([]int, k)  // next index to deposit per run
		inflight := make([]int, k) // reserved-but-not-deposited per run
		for _, op := range ops {
			run := int(op) % k
			switch (op / 4) % 3 {
			case 0: // reserve one block for run
				if c.Reserve(1) {
					inflight[run]++
				}
			case 1: // deposit next block if one is in flight
				if inflight[run] > 0 {
					c.Deposit(run, nextIdx[run])
					nextIdx[run]++
					inflight[run]--
				}
			case 2: // consume if available
				if c.Available(run) > 0 {
					c.Consume(run)
				}
			}
			if err := c.Invariant(); err != nil {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCapacityAccessor(t *testing.T) {
	c := mustNew(t, 17, 3)
	if c.Capacity() != 17 {
		t.Fatalf("Capacity = %d", c.Capacity())
	}
	if AdmissionPolicy(9).String() == "" {
		t.Fatal("unknown policy string empty")
	}
}

func TestInvariantViolationsDetected(t *testing.T) {
	// Drive the cache into internally inconsistent states through its
	// unexported fields to prove Invariant actually detects them.
	c := mustNew(t, 10, 2)
	c.Reserve(2)
	c.Deposit(0, 0)
	c.resident = 5 // lie
	if c.Invariant() == nil {
		t.Fatal("resident mismatch not detected")
	}
	c = mustNew(t, 10, 2)
	c.runs[0].nextConsume = 3
	if c.Invariant() == nil {
		t.Fatal("consume-past-avail not detected")
	}
	c = mustNew(t, 10, 2)
	c.reserved = 99
	if c.Invariant() == nil {
		t.Fatal("overflow not detected")
	}
	c = mustNew(t, 10, 2)
	c.reserved = -1
	if c.Invariant() == nil {
		t.Fatal("negative reservation not detected")
	}
}
