// Package cache models the RAM-based disk cache of capacity C blocks
// that stands between the merge CPU and the disks.
//
// The cache tracks, per run, how many blocks are resident and
// consumable in merge order. Space is reserved when a fetch is issued
// (so concurrent prefetches can never oversubscribe RAM), converted to
// a resident block when the disk delivers it, and freed when the merge
// consumes the block. Deposits carry the run-relative block index so
// out-of-order arrival (striped layouts, SSTF scheduling) still exposes
// only the contiguous prefix to the merge, which consumes strictly in
// run order.
//
// The admission policies from the paper live here too: AllOrDemand
// prefetches from all disks only when the whole batch fits (the policy
// the paper adopts, based on the Markov analysis of its companion
// technical report), and Greedy fills whatever space is available (the
// rejected alternative, kept for the ablation bench).
package cache

import "fmt"

// Unlimited configures a cache with no capacity constraint.
const Unlimited = int(^uint(0) >> 1)

type runState struct {
	nextConsume int          // next run block index the merge will take
	nextAvail   int          // first index not yet contiguously resident
	arrived     map[int]bool // out-of-order residents beyond nextAvail
}

// Cache is the block cache. It is not safe for concurrent use; in the
// simulator it is touched only from kernel context.
type Cache struct {
	capacity int
	resident int // blocks consumable or waiting past a gap
	reserved int // blocks with space claimed but not yet delivered

	runs []runState

	// onOccupancy, when set, is invoked with the new Occupied value
	// after every change (reserve, unreserve, deposit keeps occupancy
	// flat so it does not fire there, consume). Observation only.
	onOccupancy func(occupied int)

	// Statistics.
	deposits     int64
	consumed     int64
	peakOccupied int
}

// New returns a cache of the given capacity (in blocks) serving k runs.
// capacity must be at least k — the merge needs one resident block per
// run, exactly as in the Kwan–Baer baseline. Use Unlimited for an
// unconstrained cache.
func New(capacity, k int) (*Cache, error) {
	if k <= 0 {
		return nil, fmt.Errorf("cache: k = %d", k)
	}
	if capacity < k {
		return nil, fmt.Errorf("cache: capacity %d < k = %d (need one block per run)", capacity, k)
	}
	c := &Cache{capacity: capacity, runs: make([]runState, k)}
	for i := range c.runs {
		c.runs[i].arrived = make(map[int]bool)
	}
	return c, nil
}

// SetOccupancyObserver installs fn to be called with the new occupancy
// (resident + reserved blocks) after every occupancy change. A nil fn
// removes the observer. The observer must not mutate the cache.
func (c *Cache) SetOccupancyObserver(fn func(occupied int)) { c.onOccupancy = fn }

// occupancyChanged notifies the observer, if any.
func (c *Cache) occupancyChanged() {
	if c.onOccupancy != nil {
		c.onOccupancy(c.Occupied())
	}
}

// Capacity returns the configured capacity in blocks.
func (c *Cache) Capacity() int { return c.capacity }

// Free returns the unclaimed space in blocks.
func (c *Cache) Free() int { return c.capacity - c.resident - c.reserved }

// Occupied returns resident plus reserved blocks.
func (c *Cache) Occupied() int { return c.resident + c.reserved }

// Resident returns the number of delivered, unconsumed blocks.
func (c *Cache) Resident() int { return c.resident }

// Reserved returns the number of in-flight claimed blocks.
func (c *Cache) Reserved() int { return c.reserved }

// PeakOccupied returns the high-water mark of Occupied.
func (c *Cache) PeakOccupied() int { return c.peakOccupied }

// Deposits returns the total number of blocks delivered.
func (c *Cache) Deposits() int64 { return c.deposits }

// Consumed returns the total number of blocks consumed.
func (c *Cache) Consumed() int64 { return c.consumed }

// Available returns how many blocks of run r the merge could consume
// right now (the contiguous resident prefix).
func (c *Cache) Available(r int) int {
	rs := &c.runs[r]
	return rs.nextAvail - rs.nextConsume
}

// NextToConsume returns the run-relative index of the block the merge
// will take next from run r.
func (c *Cache) NextToConsume(r int) int { return c.runs[r].nextConsume }

// Reserve claims space for n in-flight blocks. It reports whether the
// claim succeeded; on false the cache is unchanged.
func (c *Cache) Reserve(n int) bool {
	if n < 0 {
		panic("cache: Reserve with negative n")
	}
	if c.Free() < n {
		return false
	}
	c.reserved += n
	if occ := c.Occupied(); occ > c.peakOccupied {
		c.peakOccupied = occ
	}
	c.occupancyChanged()
	return true
}

// Unreserve releases space claimed by Reserve that will not be used
// (e.g. a fetch clamped at end of run after the reservation).
func (c *Cache) Unreserve(n int) {
	if n < 0 || n > c.reserved {
		panic(fmt.Sprintf("cache: Unreserve(%d) with reserved=%d", n, c.reserved))
	}
	c.reserved -= n
	c.occupancyChanged()
}

// Deposit converts one reserved slot into a resident block: run r's
// block idx has been delivered by a disk. Depositing without a prior
// reservation, depositing a block at or before the consume point, or
// depositing the same block twice panics — each indicates an engine bug.
func (c *Cache) Deposit(r, idx int) {
	if c.reserved <= 0 {
		panic("cache: Deposit without reservation")
	}
	rs := &c.runs[r]
	if idx < rs.nextAvail {
		panic(fmt.Sprintf("cache: run %d block %d deposited twice (nextAvail=%d)", r, idx, rs.nextAvail))
	}
	// Fast path: in-order arrival with no out-of-order backlog — the
	// overwhelmingly common case under contiguous placement — touches no
	// map at all.
	if idx == rs.nextAvail && len(rs.arrived) == 0 {
		rs.nextAvail++
		c.reserved--
		c.resident++
		c.deposits++
		return
	}
	if rs.arrived[idx] {
		panic(fmt.Sprintf("cache: run %d block %d deposited twice", r, idx))
	}
	c.reserved--
	c.resident++
	c.deposits++
	if idx == rs.nextAvail {
		rs.nextAvail++
		for rs.arrived[rs.nextAvail] {
			delete(rs.arrived, rs.nextAvail)
			rs.nextAvail++
		}
	} else {
		rs.arrived[idx] = true
	}
}

// Consume removes the leading block of run r, freeing its space. It
// panics if no block of r is available.
func (c *Cache) Consume(r int) {
	rs := &c.runs[r]
	if rs.nextAvail == rs.nextConsume {
		panic(fmt.Sprintf("cache: Consume on run %d with no available block", r))
	}
	rs.nextConsume++
	c.resident--
	c.consumed++
	c.occupancyChanged()
}

// Invariant checks internal consistency; tests call it after operation
// sequences. It returns an error rather than panicking so property
// tests can report it.
func (c *Cache) Invariant() error {
	total := 0
	for i := range c.runs {
		rs := &c.runs[i]
		if rs.nextConsume > rs.nextAvail {
			return fmt.Errorf("run %d: consume point %d past avail %d", i, rs.nextConsume, rs.nextAvail)
		}
		total += rs.nextAvail - rs.nextConsume + len(rs.arrived)
	}
	if total != c.resident {
		return fmt.Errorf("resident = %d but per-run total = %d", c.resident, total)
	}
	if c.resident < 0 || c.reserved < 0 {
		return fmt.Errorf("negative occupancy: resident=%d reserved=%d", c.resident, c.reserved)
	}
	if c.Occupied() > c.capacity {
		return fmt.Errorf("occupied %d exceeds capacity %d", c.Occupied(), c.capacity)
	}
	return nil
}
