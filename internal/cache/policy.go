package cache

import "fmt"

// AdmissionPolicy decides how much of a desired prefetch batch is
// admitted given the cache's free space. The engine calls Admit with
// the number of blocks it would like to fetch beyond the demand block's
// own batch; see the policy descriptions for the exact contract.
type AdmissionPolicy int

const (
	// AllOrDemand admits the full batch when it fits and otherwise only
	// the single demand block. This is the policy the paper adopts: its
	// companion Markov analysis shows that sacrificing partial
	// concurrency frees cache space sooner and yields higher average
	// I/O parallelism than greedy filling.
	AllOrDemand AdmissionPolicy = iota
	// Greedy admits as much of the batch as fits (never less than the
	// demand block). The paper's rejected "first alternative", kept for
	// the ablation bench.
	Greedy
)

// String implements fmt.Stringer.
func (p AdmissionPolicy) String() string {
	switch p {
	case AllOrDemand:
		return "all-or-demand"
	case Greedy:
		return "greedy"
	default:
		return fmt.Sprintf("AdmissionPolicy(%d)", int(p))
	}
}

// Admission is the outcome of an admission decision.
type Admission struct {
	// Full reports whether the entire desired batch was admitted; the
	// success ratio is the fraction of decisions with Full == true.
	Full bool
	// Blocks is the admitted size in blocks, demand block included.
	// It is at least 1.
	Blocks int
}

// Admit decides the admitted batch size for a prefetch wanting `want`
// blocks in total (demand block included) against cache c. It only
// decides; the caller performs the reservation so it can split the
// batch across disks. want must be >= 1.
func (p AdmissionPolicy) Admit(c *Cache, want int) Admission {
	if want < 1 {
		panic("cache: Admit with want < 1")
	}
	free := c.Free()
	switch p {
	case AllOrDemand:
		if free >= want {
			return Admission{Full: true, Blocks: want}
		}
		return Admission{Full: false, Blocks: 1}
	case Greedy:
		if free >= want {
			return Admission{Full: true, Blocks: want}
		}
		n := free
		if n < 1 {
			n = 1 // the demand block always proceeds
		}
		return Admission{Full: false, Blocks: n}
	default:
		panic("cache: unknown admission policy")
	}
}
