package faults

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name    string
		spec    Spec
		d       int
		wantSub string
	}{
		{"disk out of range", Spec{Disks: []DiskSpec{{Disk: 5}}}, 5, "targets disk 5, want [0, D=5)"},
		{"negative disk", Spec{Disks: []DiskSpec{{Disk: -1}}}, 5, "targets disk -1"},
		{"descending disks", Spec{Disks: []DiskSpec{{Disk: 2}, {Disk: 1}}}, 5, "disk 1 out of order"},
		{"duplicate disks", Spec{Disks: []DiskSpec{{Disk: 1}, {Disk: 1}}}, 5, "disk 1 out of order"},
		{"slowdown below one", Spec{Disks: []DiskSpec{{Disk: 0, Slowdown: 0.9}}}, 5, "slowdown 0.9 < 1"},
		{"negative slowdown onset", Spec{Disks: []DiskSpec{{Disk: 0, Slowdown: 2, SlowdownAtMs: -5}}}, 5, "slowdown_at_ms -5 is negative"},
		{"negative probability", Spec{Disks: []DiskSpec{{Disk: 0, ReadErrorProb: -0.2}}}, 5, "read error probability -0.2 not in [0, 1]"},
		{"probability above one", Spec{Disks: []DiskSpec{{Disk: 0, ReadErrorProb: 2}}}, 5, "read error probability 2 not in [0, 1]"},
		{"negative retries", Spec{Disks: []DiskSpec{{Disk: 0, MaxRetries: -1}}}, 5, "max retries -1 is negative"},
		{"negative outage start", Spec{Disks: []DiskSpec{{Disk: 0, Outages: []Window{{StartMs: -1, EndMs: 5}}}}}, 5, "outage 0 starts at -1 ms"},
		{"empty outage", Spec{Disks: []DiskSpec{{Disk: 0, Outages: []Window{{StartMs: 5, EndMs: 5}}}}}, 5, "outage 0 ends at 5 ms"},
		{"inverted outage", Spec{Disks: []DiskSpec{{Disk: 0, Outages: []Window{{StartMs: 5, EndMs: 2}}}}}, 5, "outage 0 ends at 2 ms"},
		{"overlapping outages", Spec{Disks: []DiskSpec{{Disk: 0, Outages: []Window{{StartMs: 0, EndMs: 10}, {StartMs: 9, EndMs: 20}}}}}, 5, "outage windows overlap at 9 ms"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate(tc.d)
			if err == nil {
				t.Fatal("Validate accepted an invalid spec")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestValidateAcceptsHealthyAndBoundarySpecs(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"empty", Spec{}},
		{"zero-value disk entry", Spec{Disks: []DiskSpec{{Disk: 0}}}},
		{"slowdown exactly one", Spec{Disks: []DiskSpec{{Disk: 0, Slowdown: 1}}}},
		{"probability bounds", Spec{Disks: []DiskSpec{{Disk: 0, ReadErrorProb: 1}, {Disk: 1}}}},
		{"adjacent outages", Spec{Disks: []DiskSpec{{Disk: 3, Outages: []Window{{StartMs: 0, EndMs: 10}, {StartMs: 10, EndMs: 20}}}}}},
		{"all disks faulted", Spec{Disks: []DiskSpec{{Disk: 0}, {Disk: 1}, {Disk: 2}, {Disk: 3}, {Disk: 4}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.spec.Validate(5); err != nil {
				t.Fatalf("Validate rejected a valid spec: %v", err)
			}
		})
	}
}

func TestSlowdownPhasesIn(t *testing.T) {
	in := NewInjector(Spec{Disks: []DiskSpec{{Disk: 1, Slowdown: 2.5, SlowdownAtMs: 100}}}, 3, rng.New(1))
	di := in.Disk(1)
	if f := di.Slowdown(sim.Ms(99)); f != 1 {
		t.Fatalf("slowdown %v before onset, want 1", f)
	}
	if f := di.Slowdown(sim.Ms(100)); f != 2.5 {
		t.Fatalf("slowdown %v at onset, want 2.5", f)
	}
	if in.Disk(0) != nil || in.Disk(2) != nil {
		t.Fatal("healthy disks have non-nil injectors")
	}
	if in.Disk(99) != nil {
		t.Fatal("out-of-range disk has a non-nil injector")
	}
	var nilInj *Injector
	if nilInj.Disk(0) != nil {
		t.Fatal("nil injector returned a disk injector")
	}
}

func TestOutageWait(t *testing.T) {
	in := NewInjector(Spec{Disks: []DiskSpec{{
		Disk:    0,
		Outages: []Window{{StartMs: 10, EndMs: 20}, {StartMs: 30, EndMs: 35}},
	}}}, 1, rng.New(1))
	di := in.Disk(0)
	cases := []struct {
		at   float64
		want float64
	}{
		{0, 0}, {9.5, 0}, {10, 10}, {15, 5}, {19.999, 0.001},
		{20, 0}, {25, 0}, {30, 5}, {34, 1}, {35, 0}, {100, 0},
	}
	for _, tc := range cases {
		got := float64(di.OutageWait(sim.Ms(tc.at)))
		if diff := got - tc.want; diff < -1e-9 || diff > 1e-9 {
			t.Errorf("OutageWait(%v ms) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestDrawErrorDeterministicAndBounded(t *testing.T) {
	draw := func() []bool {
		in := NewInjector(Spec{Disks: []DiskSpec{{Disk: 0, ReadErrorProb: 0.3}}}, 1, rng.New(42))
		di := in.Disk(0)
		out := make([]bool, 200)
		for i := range out {
			out[i] = di.DrawError()
		}
		return out
	}
	a, b := draw(), draw()
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical injectors", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("%d/%d errors at p=0.3: degenerate stream", hits, len(a))
	}

	sure := NewInjector(Spec{Disks: []DiskSpec{{Disk: 0, ReadErrorProb: 1}}}, 1, rng.New(1)).Disk(0)
	if !sure.DrawError() {
		t.Fatal("p=1 did not draw an error")
	}
	never := NewInjector(Spec{Disks: []DiskSpec{{Disk: 0, Slowdown: 2}}}, 1, rng.New(1)).Disk(0)
	if never.DrawError() {
		t.Fatal("p=0 drew an error")
	}
}

func TestMaxRetriesDefault(t *testing.T) {
	in := NewInjector(Spec{Disks: []DiskSpec{
		{Disk: 0, ReadErrorProb: 0.1},
		{Disk: 1, ReadErrorProb: 0.1, MaxRetries: 7},
	}}, 2, rng.New(1))
	if got := in.Disk(0).MaxRetries(); got != DefaultMaxRetries {
		t.Fatalf("default max retries = %d, want %d", got, DefaultMaxRetries)
	}
	if got := in.Disk(1).MaxRetries(); got != 7 {
		t.Fatalf("max retries = %d, want 7", got)
	}
}

func TestUnreadableErrorIs(t *testing.T) {
	err := error(&UnreadableError{Disk: 2, Start: 480, Attempts: 4})
	if !errors.Is(err, ErrUnreadable) {
		t.Fatal("UnreadableError does not match ErrUnreadable")
	}
	want := "faults: disk 2 unreadable at block 480 after 4 attempts"
	if err.Error() != want {
		t.Fatalf("error text %q, want %q", err, want)
	}
	var ue *UnreadableError
	if !errors.As(err, &ue) || ue.Disk != 2 {
		t.Fatal("errors.As failed to recover *UnreadableError")
	}
}
