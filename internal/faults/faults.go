// Package faults is the deterministic fault-injection layer of the
// simulator: it describes how individual disks misbehave — fail-slow
// service-time inflation, transient read errors that force re-reads,
// and whole-disk outage windows — and supplies the per-disk runtime
// injectors the disk model consults at dispatch time.
//
// The paper's model assumes D identical, always-healthy disks; the
// interaction between prefetching strategy and disk parallelism is most
// interesting exactly when that assumption breaks, because a single
// degraded disk serializes every inter-run prefetch batch that touches
// it. A Spec is part of core.Config: it validates like the rest of the
// configuration, has a canonical JSON form (so result caching stays
// sound), and all randomness derives from a dedicated split of the
// simulation seed, so a faulty run is exactly as reproducible as a
// healthy one.
package faults

import (
	"errors"
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DefaultMaxRetries is the re-read cap applied when DiskSpec.MaxRetries
// is zero: a request that still errors after this many re-reads makes
// the disk unreadable and aborts the merge with ErrUnreadable.
const DefaultMaxRetries = 3

// ErrUnreadable reports that a disk exhausted its re-read budget on a
// request: the merge cannot complete because one of its runs is no
// longer readable. Match with errors.Is; the concrete error is an
// *UnreadableError carrying the disk, block and attempt count.
var ErrUnreadable = errors.New("faults: disk unreadable after retries")

// UnreadableError is the typed failure of an exhausted re-read budget.
type UnreadableError struct {
	Disk     int // disk index
	Start    int // first block of the failed request
	Attempts int // reads attempted (initial + retries)
}

// Error implements error.
func (e *UnreadableError) Error() string {
	return fmt.Sprintf("faults: disk %d unreadable at block %d after %d attempts", e.Disk, e.Start, e.Attempts)
}

// Is reports ErrUnreadable as this error's sentinel.
func (e *UnreadableError) Is(target error) bool { return target == ErrUnreadable }

// Window is one whole-disk outage: the disk dispatches no requests in
// [StartMs, EndMs) of the simulated clock; queued work waits and is
// served after recovery.
type Window struct {
	StartMs float64 `json:"start_ms"`
	EndMs   float64 `json:"end_ms"`
}

// DiskSpec describes the faults of one input disk. The zero value of
// every fault field means "healthy" for that dimension, so a spec can
// inject exactly one failure mode at a time.
type DiskSpec struct {
	// Disk is the input-disk index the faults apply to.
	Disk int

	// Slowdown multiplies the disk's service time (seek, rotation and
	// transfer alike) — the fail-slow model. 0 means no slowdown;
	// otherwise it must be >= 1.
	Slowdown float64

	// SlowdownAtMs is the simulated instant the slowdown phases in;
	// before it the disk runs at full speed. 0 means degraded from the
	// start.
	SlowdownAtMs float64

	// ReadErrorProb is the per-request probability of a transient read
	// error. Each error costs one re-read — a fresh rotational latency
	// plus the full transfer again — before any block of the request is
	// delivered.
	ReadErrorProb float64

	// MaxRetries caps re-reads per request (0 = DefaultMaxRetries). A
	// request that errors on every attempt aborts the merge with
	// ErrUnreadable.
	MaxRetries int

	// Outages are the disk's downtime windows, in ascending,
	// non-overlapping order.
	Outages []Window
}

// maxRetries resolves the re-read cap.
func (d DiskSpec) maxRetries() int {
	if d.MaxRetries == 0 {
		return DefaultMaxRetries
	}
	return d.MaxRetries
}

// Spec is the fault environment of one simulated merge: at most one
// entry per disk, in ascending disk order (Validate enforces both,
// which is what gives the spec a canonical encoding).
type Spec struct {
	Disks []DiskSpec
}

// Validate reports the first error in the spec against a merge using d
// input disks, or nil. The error text names the offending value; the
// HTTP 400 path serves it verbatim.
func (s *Spec) Validate(d int) error {
	prev := -1
	for i, ds := range s.Disks {
		if ds.Disk < 0 || ds.Disk >= d {
			return fmt.Errorf("faults: spec %d targets disk %d, want [0, D=%d)", i, ds.Disk, d)
		}
		if ds.Disk <= prev {
			return fmt.Errorf("faults: spec %d: disk %d out of order (entries must be ascending, one per disk)", i, ds.Disk)
		}
		prev = ds.Disk
		if ds.Slowdown != 0 && ds.Slowdown < 1 {
			return fmt.Errorf("faults: disk %d: slowdown %v < 1 (a fail-slow disk cannot be faster)", ds.Disk, ds.Slowdown)
		}
		if ds.SlowdownAtMs < 0 {
			return fmt.Errorf("faults: disk %d: slowdown_at_ms %v is negative", ds.Disk, ds.SlowdownAtMs)
		}
		if ds.ReadErrorProb < 0 || ds.ReadErrorProb > 1 {
			return fmt.Errorf("faults: disk %d: read error probability %v not in [0, 1]", ds.Disk, ds.ReadErrorProb)
		}
		if ds.MaxRetries < 0 {
			return fmt.Errorf("faults: disk %d: max retries %d is negative", ds.Disk, ds.MaxRetries)
		}
		prevEnd := 0.0
		for j, w := range ds.Outages {
			if w.StartMs < 0 {
				return fmt.Errorf("faults: disk %d: outage %d starts at %v ms", ds.Disk, j, w.StartMs)
			}
			if w.EndMs <= w.StartMs {
				return fmt.Errorf("faults: disk %d: outage %d ends at %v ms, not after its start %v ms", ds.Disk, j, w.EndMs, w.StartMs)
			}
			if j > 0 && w.StartMs < prevEnd {
				return fmt.Errorf("faults: disk %d: outage windows overlap at %v ms (windows must be ascending and disjoint)", ds.Disk, w.StartMs)
			}
			prevEnd = w.EndMs
		}
	}
	return nil
}

// Injector is the runtime form of a Spec: one DiskInjector per faulted
// disk, each with its own split of the fault RNG stream so error draws
// on one disk never perturb another's.
type Injector struct {
	disks []*DiskInjector // indexed by disk; nil = healthy
}

// NewInjector materializes a validated spec for a merge with d input
// disks. r must be a stream dedicated to fault draws.
func NewInjector(s Spec, d int, r *rng.Stream) *Injector {
	in := &Injector{disks: make([]*DiskInjector, d)}
	for _, ds := range s.Disks {
		in.disks[ds.Disk] = &DiskInjector{
			spec: ds,
			r:    r.SplitIndexed("fault-disk", ds.Disk),
		}
	}
	return in
}

// Disk returns the injector for disk i, or nil when i is healthy.
func (in *Injector) Disk(i int) *DiskInjector {
	if in == nil || i >= len(in.disks) {
		return nil
	}
	return in.disks[i]
}

// DiskInjector is the per-disk fault state the disk model consults on
// every dispatch. Like the disk itself it is driven from kernel events
// only, so it needs no locking.
type DiskInjector struct {
	spec DiskSpec
	r    *rng.Stream

	tr         *trace.Recorder // nil when untraced
	trTrack    int
	slowMarked bool
}

// SetTrace attaches a trace recorder (nil-safe) so fault transitions
// land as marks on the owning disk's track.
func (di *DiskInjector) SetTrace(tr *trace.Recorder, track int) {
	di.tr = tr
	di.trTrack = track
}

// Slowdown returns the service-time multiplier in effect at the
// simulated instant at (1 = full speed).
func (di *DiskInjector) Slowdown(at sim.Time) float64 {
	if di.spec.Slowdown == 0 || float64(at) < di.spec.SlowdownAtMs {
		return 1
	}
	if !di.slowMarked {
		di.slowMarked = true
		di.tr.Mark(di.trTrack, "fault-slowdown-on", at)
	}
	return di.spec.Slowdown
}

// OutageWait returns how long a dispatch at the simulated instant at
// must wait for the disk to recover (0 = the disk is up).
func (di *DiskInjector) OutageWait(at sim.Time) sim.Time {
	t := float64(at)
	for _, w := range di.spec.Outages {
		if t < w.StartMs {
			return 0 // windows are ascending; nothing earlier can cover at
		}
		if t < w.EndMs {
			return sim.Time(w.EndMs - t)
		}
	}
	return 0
}

// DrawError reports whether one read attempt suffers a transient error.
// Draws consume the disk's dedicated stream in dispatch order, so a
// fault run is deterministic under any worker count.
func (di *DiskInjector) DrawError() bool {
	if di.spec.ReadErrorProb == 0 {
		return false
	}
	if di.spec.ReadErrorProb >= 1 {
		return true
	}
	return di.r.Float64() < di.spec.ReadErrorProb
}

// MaxRetries returns the re-read cap for this disk.
func (di *DiskInjector) MaxRetries() int { return di.spec.maxRetries() }
