// Package analysis implements the paper's closed-form performance
// models: equations (1)–(5) for the average per-block I/O time of each
// strategy, the urn-game analysis of the asymptotic disk concurrency of
// unsynchronized intra-run prefetching, and the transfer-time lower
// bounds. The validation tests compare simulation output against these
// expressions exactly as the paper does.
package analysis

import (
	"math"

	"repro/internal/disk"
	"repro/internal/sim"
)

// Model carries the parameters the expressions need.
type Model struct {
	S sim.Time // seek time per cylinder
	R sim.Time // average rotational latency (half a revolution)
	T sim.Time // transfer time per block
	M float64  // run length in cylinders (m)

	K int // runs
	D int // disks
	N int // intra-run prefetch depth
}

// FromConfig derives a Model from disk parameters and merge shape.
func FromConfig(p disk.Params, k, d, n, blocksPerRun int) Model {
	return Model{
		S: p.SeekPerCylinder,
		R: p.AvgRotational,
		T: p.TransferPerBlock,
		M: float64(blocksPerRun) / float64(p.BlocksPerCylinder()),
		K: k,
		D: d,
		N: n,
	}
}

// ExpectedMoves returns E[x], the expected seek distance in runs under
// the Kwan–Baer random depletion model with k runs on one disk:
// P(x=0) = 1/k, P(x=i) = 2(k−i)/k², so E[x] = (k²−1)/(3k) ≈ k/3.
func ExpectedMoves(k int) float64 {
	fk := float64(k)
	return (fk*fk - 1) / (3 * fk)
}

// movesPerDisk is the expected seek distance in runs for a disk holding
// k/D runs (⌈k/D⌉ when D does not divide k, per the paper).
func (m Model) movesPerDisk() float64 {
	runsPerDisk := (m.K + m.D - 1) / m.D
	return ExpectedMoves(runsPerDisk)
}

// seekTime converts an expected move count (in runs) to time: each run
// spans M cylinders.
func (m Model) seekTime(moves float64) sim.Time {
	return sim.Time(moves * m.M * float64(m.S))
}

// Eq1NoPrefetchSingleDisk returns equation (1): the average time to
// fetch one block with k runs on one disk and no prefetching,
// τ = m·(k/3)·S + R + T (using the exact (k²−1)/3k moves).
func (m Model) Eq1NoPrefetchSingleDisk() sim.Time {
	return m.seekTime(ExpectedMoves(m.K)) + m.R + m.T
}

// Eq2IntraSingleDisk returns equation (2): intra-run prefetching of N
// blocks on one disk amortizes seek and latency, τ = m·(k/3N)·S + R/N + T.
func (m Model) Eq2IntraSingleDisk() sim.Time {
	n := sim.Time(m.N)
	return m.seekTime(ExpectedMoves(m.K))/n + m.R/n + m.T
}

// Eq3NoPrefetchMultiDisk returns equation (3): k runs spread over D
// disks without prefetching, τ = m·(k/3D)·S + R + T. Only the seek
// shrinks: requests to a disk remain random over its k/D runs.
func (m Model) Eq3NoPrefetchMultiDisk() sim.Time {
	return m.seekTime(m.movesPerDisk()) + m.R + m.T
}

// Eq4IntraMultiDiskSync returns equation (4): synchronized intra-run
// prefetching of N blocks over D disks, τ = m·(k/3ND)·S + R/N + T.
// There is no overlap — the win over (2) is the shorter seek.
func (m Model) Eq4IntraMultiDiskSync() sim.Time {
	n := sim.Time(m.N)
	return m.seekTime(m.movesPerDisk())/n + m.R/n + m.T
}

// Eq5InterMultiDiskSync returns equation (5): synchronized inter-run
// prefetching reading N blocks from every disk on each operation. The
// service time of the batch is dominated by the slowest disk:
// E[max of D uniform latencies] = 2RD/(D+1), and the batch moves N·D
// blocks, so per block τ = m·k·S/(3·N·D²) + 2R/(N(D+1)) + T/D.
func (m Model) Eq5InterMultiDiskSync() sim.Time {
	n := float64(m.N)
	d := float64(m.D)
	seek := float64(m.seekTime(m.movesPerDisk())) / (n * d)
	rot := 2 * float64(m.R) * d / (d + 1) / (n * d)
	xfer := float64(m.T) / d
	return sim.Time(seek + rot + xfer)
}

// TotalTime converts a per-block time to a total for the whole merge of
// k runs of blocksPerRun blocks.
func (m Model) TotalTime(perBlock sim.Time, blocksPerRun int) sim.Time {
	return perBlock * sim.Time(m.K*blocksPerRun)
}

// SingleDiskFloor returns the transfer-bound lower bound for one disk:
// T per block.
func (m Model) SingleDiskFloor(blocksPerRun int) sim.Time {
	return m.T * sim.Time(m.K*blocksPerRun)
}

// MultiDiskFloor returns the lower bound with D disks: the total
// transfer time divided by D.
func (m Model) MultiDiskFloor(blocksPerRun int) sim.Time {
	return m.T * sim.Time(m.K*blocksPerRun) / sim.Time(m.D)
}

// UrnGameExpectedLength returns the exact expected length of the
// paper's urn game with D urns: balls are thrown into uniformly random
// urns until one lands in an occupied urn; the length is the number of
// occupied urns (equivalently, E[len] = Σ_{j≥1} Q_j with
// Q_j = Π_{i=1}^{j-1} (D−i)/D). This is the asymptotic average number
// of concurrently busy disks under unsynchronized intra-run prefetching.
func UrnGameExpectedLength(d int) float64 {
	if d <= 0 {
		return 0
	}
	sum := 0.0
	q := 1.0 // Q_1
	for j := 1; j <= d; j++ {
		sum += q
		q *= float64(d-j) / float64(d)
	}
	return sum
}

// UrnGameAsymptote returns the paper's closed-form approximation
// √(πD/2) − 1/3 + O(D^−1/2) for the expected game length.
func UrnGameAsymptote(d int) float64 {
	return math.Sqrt(math.Pi*float64(d)/2) - 1.0/3.0
}

// UrnGameLengthPMF returns P_j for j = 1..D: the probability the game
// has length exactly j.
func UrnGameLengthPMF(d int) []float64 {
	pmf := make([]float64, d)
	q := 1.0
	for j := 1; j <= d; j++ {
		// P_j = (j/D)·Q_j where Q_j is the probability of reaching j.
		pmf[j-1] = q * float64(j) / float64(d)
		q *= float64(d-j) / float64(d)
	}
	return pmf
}

// IntraUnsyncAsymptotic estimates the unsynchronized intra-run total
// time for large N as the synchronized time divided by the urn-game
// concurrency, as the paper does for its asymptotic estimates.
func (m Model) IntraUnsyncAsymptotic(blocksPerRun int) sim.Time {
	sync := m.TotalTime(m.Eq4IntraMultiDiskSync(), blocksPerRun)
	return sim.Time(float64(sync) / UrnGameExpectedLength(m.D))
}

// OptimalNForCache returns a rule-of-thumb prefetch depth for a cache
// of c blocks under combined inter+intra prefetching: the paper
// observes that for a given cache size there is an optimal N balancing
// amortization against success ratio. Because inter-run refills land on
// random runs, per-run buffers random-walk to roughly twice their mean,
// so the knee sits near k·N + D·N ≈ c/2; this returns that N (at least
// 1). The ablation bench validates it against a full simulated N-scan.
func (m Model) OptimalNForCache(c int) int {
	n := c / (2 * (m.K + m.D))
	if n < 1 {
		return 1
	}
	return n
}
