package analysis

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func solve(t *testing.T, d, c int, pol MarkovPolicy) (par, rate float64) {
	t.Helper()
	m, err := NewMarkovChain(d, c, pol)
	if err != nil {
		t.Fatal(err)
	}
	par, rate, err = m.Solve(1e-10, 8000)
	if err != nil {
		t.Fatal(err)
	}
	return par, rate
}

func TestMarkovValidation(t *testing.T) {
	if _, err := NewMarkovChain(0, 5, AllOrNothing); err == nil {
		t.Fatal("D=0 accepted")
	}
	if _, err := NewMarkovChain(3, 2, AllOrNothing); err == nil {
		t.Fatal("C<D accepted")
	}
	if _, err := NewMarkovChain(2, 500, AllOrNothing); err == nil {
		t.Fatal("huge C accepted")
	}
	if AllOrNothing.String() != "all-or-nothing" || GreedyFill.String() != "greedy-fill" {
		t.Fatal("policy strings wrong")
	}
}

func TestMarkovSingleDiskDegenerate(t *testing.T) {
	// One disk: every fetch has parallelism 1 under either policy.
	for _, pol := range []MarkovPolicy{AllOrNothing, GreedyFill} {
		par, rate := solve(t, 1, 4, pol)
		if math.Abs(par-1) > 1e-9 {
			t.Fatalf("%v: parallelism = %v", pol, par)
		}
		// With one run every depletion empties it: fetch rate 1.
		if math.Abs(rate-1) > 1e-9 {
			t.Fatalf("%v: fetch rate = %v", pol, rate)
		}
	}
}

func TestMarkovMinimalCacheBothPoliciesDegrade(t *testing.T) {
	// C = D: after the initial working set there is never room for a
	// full batch beyond... the demand fetch frees and refills one slot,
	// so both policies serve demand-only: parallelism 1.
	for _, pol := range []MarkovPolicy{AllOrNothing, GreedyFill} {
		par, _ := solve(t, 4, 4, pol)
		if math.Abs(par-1) > 1e-9 {
			t.Fatalf("%v at C=D: parallelism = %v", pol, par)
		}
	}
}

func TestMarkovAmpleCacheApproachesD(t *testing.T) {
	// A generous cache raises parallelism toward D, but even C = 10·D
	// does not reach it: occupancy drifts to the cache boundary where
	// demand-only fetches recur — the same slow saturation the full
	// simulator's success-ratio sweeps (figure 3.6) exhibit.
	par, _ := solve(t, 5, 50, AllOrNothing)
	if par < 4.0 || par >= 5.0 {
		t.Fatalf("ample-cache parallelism = %v, want in [4, 5)", par)
	}
}

// TestMarkovReproducesTRClaim is the reconstruction of the companion
// TR's result the paper cites: for the configurations the paper uses
// (D >= 4 disks with a cache of at least ~3D blocks), all-or-nothing
// admission yields higher average I/O parallelism than greedy filling.
// At very tight caches (C = 2D) the chain shows greedy marginally
// ahead — the same small-cache reversal the full simulator's admission
// ablation finds.
func TestMarkovReproducesTRClaim(t *testing.T) {
	cases := []struct{ d, c int }{
		{4, 16}, {4, 24}, {4, 40},
		{5, 15}, {5, 20}, {5, 30}, {5, 50},
	}
	for _, tc := range cases {
		aon, _ := solve(t, tc.d, tc.c, AllOrNothing)
		greedy, _ := solve(t, tc.d, tc.c, GreedyFill)
		if aon < greedy {
			t.Fatalf("D=%d C=%d: all-or-nothing %v < greedy %v", tc.d, tc.c, aon, greedy)
		}
	}
	// The tight-cache reversal, pinned down so a model change that
	// flips it is noticed.
	aon, _ := solve(t, 5, 10, AllOrNothing)
	greedy, _ := solve(t, 5, 10, GreedyFill)
	if aon >= greedy {
		t.Fatalf("expected greedy to win at C=2D: aon %v, greedy %v", aon, greedy)
	}
}

func TestMarkovParallelismMonotoneInCache(t *testing.T) {
	prev := 0.0
	for _, c := range []int{5, 10, 15, 20, 30} {
		par, _ := solve(t, 5, c, AllOrNothing)
		if par+1e-9 < prev {
			t.Fatalf("parallelism not monotone in C: %v after %v", par, prev)
		}
		prev = par
	}
}

// TestMarkovMatchesMonteCarlo cross-validates the exact chain against
// a direct simulation of the same abstract model.
func TestMarkovMatchesMonteCarlo(t *testing.T) {
	const d, c = 4, 12
	for _, pol := range []MarkovPolicy{AllOrNothing, GreedyFill} {
		exact, _ := solve(t, d, c, pol)

		r := rng.New(99)
		levels := make([]int, d)
		for i := range levels {
			levels[i] = 1
		}
		var parSum, fetches float64
		const steps = 400000
		for s := 0; s < steps; s++ {
			i := r.Intn(d)
			if levels[i] == 0 {
				t.Fatal("model invariant violated")
			}
			levels[i]--
			if levels[i] > 0 {
				continue
			}
			used := 0
			for _, v := range levels {
				used += v
			}
			free := c - used
			switch pol {
			case AllOrNothing:
				if free >= d {
					for j := range levels {
						levels[j]++
					}
					parSum += float64(d)
				} else {
					levels[i]++
					parSum++
				}
			case GreedyFill:
				grant := free
				if grant > d {
					grant = d
				}
				if grant < 1 {
					grant = 1
				}
				levels[i]++
				// Distinct random recipients among the other disks.
				others := make([]int, 0, d-1)
				for j := 0; j < d; j++ {
					if j != i {
						others = append(others, j)
					}
				}
				r.Shuffle(len(others), func(a, b int) { others[a], others[b] = others[b], others[a] })
				for _, j := range others[:grant-1] {
					levels[j]++
				}
				parSum += float64(grant)
			}
			fetches++
		}
		mc := parSum / fetches
		if math.Abs(mc-exact) > 0.05 {
			t.Fatalf("%v: monte carlo %v vs exact %v", pol, mc, exact)
		}
	}
}

func TestMarkovStateSpaceSize(t *testing.T) {
	m, err := NewMarkovChain(3, 6, AllOrNothing)
	if err != nil {
		t.Fatal(err)
	}
	// Sorted vectors of 3 levels >= 1 with sum <= 6:
	// (1,1,1)(1,1,2)(1,1,3)(1,1,4)(1,2,2)(1,2,3)(2,2,2) = 7.
	if m.NumStates() != 7 {
		t.Fatalf("states = %d, want 7", m.NumStates())
	}
}
