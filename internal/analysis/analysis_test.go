package analysis

import (
	"math"
	"testing"

	"repro/internal/disk"
	"repro/internal/rng"
)

func paperModel(k, d, n int) Model {
	return FromConfig(disk.PaperParams(), k, d, n, 1000)
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestExpectedMovesExact(t *testing.T) {
	// E[x] = (k²−1)/3k; for k=25: 624/75 = 8.32; for k=50: 2499/150 = 16.66.
	if !almost(ExpectedMoves(25), 8.32, 1e-12) {
		t.Fatalf("E[x] k=25 = %v", ExpectedMoves(25))
	}
	if !almost(ExpectedMoves(50), 16.66, 1e-12) {
		t.Fatalf("E[x] k=50 = %v", ExpectedMoves(50))
	}
	// ≈ k/3 for large k.
	if !almost(ExpectedMoves(1000), 1000.0/3, 0.01) {
		t.Fatalf("E[x] k=1000 = %v", ExpectedMoves(1000))
	}
}

func TestExpectedMovesMatchesDistribution(t *testing.T) {
	// Direct expectation over the stated PMF.
	for _, k := range []int{2, 5, 25, 50} {
		want := 0.0
		fk := float64(k)
		for i := 1; i <= k-1; i++ {
			want += float64(i) * 2 * (fk - float64(i)) / (fk * fk)
		}
		if !almost(ExpectedMoves(k), want, 1e-12) {
			t.Fatalf("k=%d: formula %v != direct %v", k, ExpectedMoves(k), want)
		}
	}
}

func TestExpectedMovesMatchesMonteCarlo(t *testing.T) {
	// The moves model: the head sits at run i, the next request targets
	// run j, both uniform; distance |i−j|.
	r := rng.New(5)
	const k, draws = 25, 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		a, b := r.Intn(k), r.Intn(k)
		d := a - b
		if d < 0 {
			d = -d
		}
		sum += float64(d)
	}
	mc := sum / draws
	if !almost(mc, ExpectedMoves(k), 0.05) {
		t.Fatalf("monte carlo %v vs formula %v", mc, ExpectedMoves(k))
	}
}

// The anchor values below are the calibrated reconstruction of the
// paper's reported numbers (DESIGN.md §1).

func TestEq1Anchors(t *testing.T) {
	m := paperModel(25, 1, 1)
	tau := float64(m.Eq1NoPrefetchSingleDisk())
	if !almost(tau, 13.59, 0.02) {
		t.Fatalf("eq1 k=25: τ = %v ms, want ≈13.59", tau)
	}
	total := m.TotalTime(m.Eq1NoPrefetchSingleDisk(), 1000).Seconds()
	if !almost(total, 339.8, 0.5) {
		t.Fatalf("eq1 k=25 total = %v s", total)
	}
	m50 := paperModel(50, 1, 1)
	if total := m50.TotalTime(m50.Eq1NoPrefetchSingleDisk(), 1000).Seconds(); !almost(total, 810, 1.5) {
		t.Fatalf("eq1 k=50 total = %v s", total)
	}
}

func TestEq2Anchors(t *testing.T) {
	m := paperModel(25, 1, 10)
	if total := m.TotalTime(m.Eq2IntraSingleDisk(), 1000).Seconds(); !almost(total, 93.8, 0.3) {
		t.Fatalf("eq2 k=25 N=10 total = %v s", total)
	}
	m50 := paperModel(50, 1, 10)
	if total := m50.TotalTime(m50.Eq2IntraSingleDisk(), 1000).Seconds(); !almost(total, 200.7, 0.5) {
		t.Fatalf("eq2 k=50 N=10 total = %v s", total)
	}
}

func TestEq3Anchors(t *testing.T) {
	// Exact moves for 5 runs/disk: E[x] = (25−1)/15 = 1.6, so
	// τ = 15.625·1.6·0.02 + 10.99 = 11.49 ms → 287.25 s (the k/3D
	// approximation gives 287.8; the paper prose shows "2xx.x").
	m := paperModel(25, 5, 1)
	if total := m.TotalTime(m.Eq3NoPrefetchMultiDisk(), 1000).Seconds(); !almost(total, 287.25, 0.5) {
		t.Fatalf("eq3 k=25 D=5 total = %v s", total)
	}
	m2 := paperModel(50, 10, 1)
	if total := m2.TotalTime(m2.Eq3NoPrefetchMultiDisk(), 1000).Seconds(); !almost(total, 574.5, 1.0) {
		t.Fatalf("eq3 k=50 D=10 total = %v s", total)
	}
}

func TestEq4Anchor(t *testing.T) {
	m := paperModel(25, 5, 10)
	if total := m.TotalTime(m.Eq4IntraMultiDiskSync(), 1000).Seconds(); !almost(total, 88.6, 0.3) {
		t.Fatalf("eq4 k=25 D=5 N=10 total = %v s", total)
	}
}

func TestEq5Anchor(t *testing.T) {
	m := paperModel(25, 5, 10)
	tau := float64(m.Eq5InterMultiDiskSync())
	if !almost(tau, 0.820, 0.005) {
		t.Fatalf("eq5 τ = %v ms, want ≈0.820", tau)
	}
	if total := m.TotalTime(m.Eq5InterMultiDiskSync(), 1000).Seconds(); !almost(total, 20.5, 0.2) {
		t.Fatalf("eq5 total = %v s", total)
	}
}

func TestEquationOrdering(t *testing.T) {
	// For any prefetching depth, more machinery can only help:
	// eq1 >= eq2 (N amortization), eq1 >= eq3 (seek sharing),
	// eq3 >= eq4, eq4 >= eq5 for the paper's configuration.
	m := paperModel(50, 5, 10)
	e1 := m.Eq1NoPrefetchSingleDisk()
	e2 := m.Eq2IntraSingleDisk()
	e3 := m.Eq3NoPrefetchMultiDisk()
	e4 := m.Eq4IntraMultiDiskSync()
	e5 := m.Eq5InterMultiDiskSync()
	if !(e1 >= e2 && e1 >= e3 && e3 >= e4 && e4 >= e5) {
		t.Fatalf("ordering violated: %v %v %v %v %v", e1, e2, e3, e4, e5)
	}
}

func TestEqLimits(t *testing.T) {
	// As N grows, eq2 and eq4 approach T.
	m := paperModel(25, 5, 100000)
	if got := float64(m.Eq2IntraSingleDisk()); !almost(got, 2.66, 0.01) {
		t.Fatalf("eq2 N→∞ = %v", got)
	}
	if got := float64(m.Eq4IntraMultiDiskSync()); !almost(got, 2.66, 0.01) {
		t.Fatalf("eq4 N→∞ = %v", got)
	}
	// eq5 approaches T/D.
	if got := float64(m.Eq5InterMultiDiskSync()); !almost(got, 2.66/5, 0.01) {
		t.Fatalf("eq5 N→∞ = %v", got)
	}
}

func TestUrnGameExactValues(t *testing.T) {
	// The paper evaluates the first two terms for D = 5, 10, 20 and
	// reports average overlaps 2.51, 3.66 and 6.29. The exact sum for
	// D=5 is 2.5104; for 10, 3.6606; for 20, ~5.29379... using the
	// recurrence. Verify against a direct computation.
	cases := map[int]float64{
		5:  2.5104,
		10: 3.660216,
	}
	for d, want := range cases {
		if got := UrnGameExpectedLength(d); !almost(got, want, 1e-4) {
			t.Fatalf("urn(%d) = %v, want %v", d, got, want)
		}
	}
}

func TestUrnGamePMFSumsToOne(t *testing.T) {
	for _, d := range []int{1, 2, 5, 10, 20, 64} {
		pmf := UrnGameLengthPMF(d)
		sum, mean := 0.0, 0.0
		for j, p := range pmf {
			sum += p
			mean += float64(j+1) * p
		}
		if !almost(sum, 1, 1e-9) {
			t.Fatalf("pmf(%d) sums to %v", d, sum)
		}
		if !almost(mean, UrnGameExpectedLength(d), 1e-9) {
			t.Fatalf("pmf mean %v != expected length %v", mean, UrnGameExpectedLength(d))
		}
	}
}

func TestUrnGameMonteCarlo(t *testing.T) {
	r := rng.New(77)
	for _, d := range []int{5, 10} {
		const rounds = 100000
		sum := 0
		for i := 0; i < rounds; i++ {
			occupied := make([]bool, d)
			length := 0
			for {
				u := r.Intn(d)
				if occupied[u] {
					break
				}
				occupied[u] = true
				length++
				if length == d {
					break
				}
			}
			sum += length
		}
		mc := float64(sum) / rounds
		if !almost(mc, UrnGameExpectedLength(d), 0.02) {
			t.Fatalf("urn(%d) MC = %v, formula %v", d, mc, UrnGameExpectedLength(d))
		}
	}
}

func TestUrnGameAsymptoteQuality(t *testing.T) {
	for _, d := range []int{5, 10, 20, 100} {
		exact := UrnGameExpectedLength(d)
		approx := UrnGameAsymptote(d)
		if math.Abs(exact-approx) > 0.15 {
			t.Fatalf("asymptote for D=%d: exact %v approx %v", d, exact, approx)
		}
	}
}

func TestUrnGameSqrtDScaling(t *testing.T) {
	// The key qualitative claim: concurrency grows like √D, far below D.
	e20 := UrnGameExpectedLength(20)
	e5 := UrnGameExpectedLength(5)
	ratio := e20 / e5
	if !(ratio > 1.8 && ratio < 2.2) { // √(20/5) = 2
		t.Fatalf("√D scaling violated: ratio = %v", ratio)
	}
	if e20 >= 20.0/2 {
		t.Fatalf("concurrency %v suspiciously close to D", e20)
	}
}

func TestFloors(t *testing.T) {
	m := paperModel(25, 5, 10)
	if got := m.SingleDiskFloor(1000).Seconds(); !almost(got, 66.5, 0.01) {
		t.Fatalf("single floor = %v", got)
	}
	if got := m.MultiDiskFloor(1000).Seconds(); !almost(got, 13.3, 0.01) {
		t.Fatalf("multi floor = %v", got)
	}
	m50 := paperModel(50, 5, 10)
	if got := m50.MultiDiskFloor(1000).Seconds(); !almost(got, 26.6, 0.01) {
		t.Fatalf("k=50 D=5 floor = %v", got)
	}
}

func TestIntraUnsyncAsymptoticAnchor(t *testing.T) {
	// sync(N=30, k=25, D=5) / 2.5104 ≈ 29.4 s.
	m := paperModel(25, 5, 30)
	got := m.IntraUnsyncAsymptotic(1000).Seconds()
	if !almost(got, 29.4, 0.3) {
		t.Fatalf("asymptotic unsync = %v s, want ≈29.4", got)
	}
	// k=50, D=10, N=30: ≈ 40.4 s.
	m2 := paperModel(50, 10, 30)
	if got := m2.IntraUnsyncAsymptotic(1000).Seconds(); !almost(got, 40.4, 0.4) {
		t.Fatalf("asymptotic unsync k=50 D=10 = %v s", got)
	}
}

func TestOptimalNForCache(t *testing.T) {
	m := paperModel(25, 5, 1)
	if got := m.OptimalNForCache(600); got != 10 { // 600/(2*(25+5))
		t.Fatalf("optimal N = %d", got)
	}
	if got := m.OptimalNForCache(10); got != 1 {
		t.Fatalf("tiny cache optimal N = %d", got)
	}
}

func TestUrnGameEdgeCases(t *testing.T) {
	if UrnGameExpectedLength(0) != 0 {
		t.Fatal("D=0 should be 0")
	}
	if UrnGameExpectedLength(1) != 1 {
		t.Fatal("D=1 should be 1")
	}
}

func TestCeilingRunsPerDisk(t *testing.T) {
	// k=7, D=2 → ⌈7/2⌉ = 4 runs per disk in the seek expression.
	m := paperModel(7, 2, 1)
	want := m.seekTime(ExpectedMoves(4)) + m.R + m.T
	if got := m.Eq3NoPrefetchMultiDisk(); got != want {
		t.Fatalf("eq3 with non-dividing D: %v != %v", got, want)
	}
}
