package analysis_test

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/disk"
)

// ExampleModel reproduces the paper's §3 spot calculations.
func ExampleModel() {
	m := analysis.FromConfig(disk.PaperParams(), 25, 5, 10, 1000)

	fmt.Printf("eq1 single-disk no-prefetch: %.1f s\n",
		m.TotalTime(m.Eq1NoPrefetchSingleDisk(), 1000).Seconds())
	fmt.Printf("eq4 sync intra, 5 disks:     %.1f s\n",
		m.TotalTime(m.Eq4IntraMultiDiskSync(), 1000).Seconds())
	fmt.Printf("eq5 sync inter, 5 disks:     %.1f s\n",
		m.TotalTime(m.Eq5InterMultiDiskSync(), 1000).Seconds())
	fmt.Printf("transfer floor kTB/D:        %.1f s\n",
		m.MultiDiskFloor(1000).Seconds())
	// Output:
	// eq1 single-disk no-prefetch: 339.8 s
	// eq4 sync intra, 5 disks:     88.6 s
	// eq5 sync inter, 5 disks:     20.5 s
	// transfer floor kTB/D:        13.3 s
}

// ExampleUrnGameExpectedLength evaluates the paper's concurrency law:
// unsynchronized intra-run prefetching overlaps only ~√(πD/2) disks.
func ExampleUrnGameExpectedLength() {
	for _, d := range []int{5, 10, 20} {
		fmt.Printf("D=%2d: %.2f of %d disks busy\n", d, analysis.UrnGameExpectedLength(d), d)
	}
	// Output:
	// D= 5: 2.51 of 5 disks busy
	// D=10: 3.66 of 10 disks busy
	// D=20: 5.29 of 20 disks busy
}

// ExampleMarkovChain solves the companion TR's abstract model: D disks
// with one run each, comparing the two cache admission policies by
// steady-state I/O parallelism.
func ExampleMarkovChain() {
	for _, pol := range []analysis.MarkovPolicy{analysis.AllOrNothing, analysis.GreedyFill} {
		chain, err := analysis.NewMarkovChain(5, 20, pol)
		if err != nil {
			panic(err)
		}
		par, _, err := chain.Solve(1e-10, 8000)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-14s %.3f disks per fetch\n", pol, par)
	}
	// Output:
	// all-or-nothing 3.255 disks per fetch
	// greedy-fill    3.225 disks per fetch
}
