package analysis

import (
	"fmt"
	"math"
)

// This file reconstructs the Markov analysis of the paper's companion
// technical report (Pai, Schaffer, Varman, "Markov Analysis of
// Multiple-Disk Prefetching Strategies for External MergeSort"), which
// the paper cites to justify its all-or-demand cache admission policy:
// "we consider both alternatives for handling an almost-full cache, for
// the case of D disks with one run per disk ... the average I/O
// parallelism obtained by the second alternative is superior to making
// a random choice, for all reasonable values of cache size."
//
// The abstract model: D disks, one (unbounded) run per disk, a cache of
// C blocks. At each step one block is depleted from a uniformly random
// run. When the depleted run has no cached blocks left, an I/O
// operation fetches its next block, and — space permitting — one block
// from every other disk too:
//
//   - AllOrNothing (the paper's choice): fetch from all D disks if D
//     blocks fit in the cache, else fetch only the demand block;
//   - GreedyFill: fetch the demand block plus as many other disks'
//     blocks as fit.
//
// The figure of merit is the steady-state average I/O parallelism: the
// expected number of disks participating in a fetch.

// MarkovPolicy selects the admission rule of the abstract model.
type MarkovPolicy int

const (
	// AllOrNothing fetches from every disk or only the demand disk.
	AllOrNothing MarkovPolicy = iota
	// GreedyFill fetches from the demand disk plus as many others as fit.
	GreedyFill
)

// String implements fmt.Stringer.
func (p MarkovPolicy) String() string {
	switch p {
	case AllOrNothing:
		return "all-or-nothing"
	case GreedyFill:
		return "greedy-fill"
	default:
		return fmt.Sprintf("MarkovPolicy(%d)", int(p))
	}
}

// MarkovChain is the exact discrete chain of the abstract model. States
// are multisets of per-run buffer levels (runs are exchangeable, so
// sorted level vectors index the chain), which keeps the state space
// tractable for the D and C the TR studied.
type MarkovChain struct {
	D      int
	C      int
	Policy MarkovPolicy

	states []state // sorted level vectors
	index  map[string]int
}

type state []int

func (s state) key() string {
	b := make([]byte, len(s))
	for i, v := range s {
		b[i] = byte(v)
	}
	return string(b)
}

// NewMarkovChain enumerates the state space for D disks and a C-block
// cache. D must be at least 1 and C at least D (one cached block per
// run is the minimum working set).
func NewMarkovChain(d, c int, policy MarkovPolicy) (*MarkovChain, error) {
	if d < 1 {
		return nil, fmt.Errorf("analysis: markov D = %d", d)
	}
	if c < d {
		return nil, fmt.Errorf("analysis: markov C = %d < D = %d", c, d)
	}
	if c > 255 {
		return nil, fmt.Errorf("analysis: markov C = %d too large to enumerate", c)
	}
	m := &MarkovChain{D: d, C: c, Policy: policy, index: map[string]int{}}
	// Enumerate sorted vectors with sum <= C and every level >= 1: a
	// fetch always restores the demand run's block, so the reachable
	// class never contains a zero level between steps.
	var rec func(s state, min, budget int)
	rec = func(s state, min, budget int) {
		if len(s) == d {
			cp := append(state(nil), s...)
			m.index[cp.key()] = len(m.states)
			m.states = append(m.states, cp)
			return
		}
		for v := min; v <= budget; v++ {
			rec(append(s, v), v, budget-v)
		}
	}
	rec(nil, 1, c)
	return m, nil
}

// NumStates returns the size of the collapsed state space.
func (m *MarkovChain) NumStates() int { return len(m.states) }

// outcome is one probabilistic successor of a depletion step.
type outcome struct {
	next state
	prob float64
	par  int // fetch parallelism; 0 when no fetch occurred
}

// step applies one depletion from run position i (levels sorted
// ascending) of s and returns the distribution of successors.
func (m *MarkovChain) step(s state, i int) []outcome {
	next := append(state(nil), s...)
	next[i]--
	if next[i] > 0 {
		return []outcome{{next: next, prob: 1}}
	}
	// Demand fetch for run i; others get one block as space allows.
	used := 0
	for _, v := range next {
		used += v
	}
	free := m.C - used
	switch m.Policy {
	case AllOrNothing:
		if free >= m.D {
			for j := range next {
				next[j]++
			}
			return []outcome{{next: next, prob: 1, par: m.D}}
		}
		next[i]++
		return []outcome{{next: next, prob: 1, par: 1}}
	case GreedyFill:
		grant := free
		if grant > m.D {
			grant = m.D
		}
		if grant < 1 {
			grant = 1 // the demand block always proceeds
		}
		next[i]++
		extra := grant - 1
		if extra == 0 {
			return []outcome{{next: next, prob: 1, par: 1}}
		}
		// The TR's policy picks which other disks to fill uniformly at
		// random: enumerate all size-`extra` subsets of the other
		// positions, each equally likely.
		var others []int
		for j := range next {
			if j != i {
				others = append(others, j)
			}
		}
		subsets := combinations(others, extra)
		prob := 1 / float64(len(subsets))
		outs := make([]outcome, 0, len(subsets))
		for _, sub := range subsets {
			nn := append(state(nil), next...)
			for _, j := range sub {
				nn[j]++
			}
			outs = append(outs, outcome{next: nn, prob: prob, par: grant})
		}
		return outs
	default:
		panic("analysis: unknown markov policy")
	}
}

// combinations returns all size-k subsets of xs.
func combinations(xs []int, k int) [][]int {
	if k == 0 {
		return [][]int{{}}
	}
	if k > len(xs) {
		return nil
	}
	var out [][]int
	// Include xs[0].
	for _, rest := range combinations(xs[1:], k-1) {
		sub := append([]int{xs[0]}, rest...)
		out = append(out, sub)
	}
	// Exclude xs[0].
	out = append(out, combinations(xs[1:], k)...)
	return out
}

// sortLevels canonicalizes a level vector.
func sortLevels(s state) state {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s
}

// Solve computes the stationary distribution by power iteration and
// returns the steady-state average I/O parallelism (expected disks per
// fetch) and the fetch rate (fetches per depletion).
func (m *MarkovChain) Solve(tol float64, maxIter int) (parallelism, fetchRate float64, err error) {
	n := len(m.states)
	pi := make([]float64, n)
	// Start from the minimal working set: one block per run.
	ones := make(state, m.D)
	for i := range ones {
		ones[i] = 1
	}
	pi[m.index[ones.key()]] = 1

	// Precompute transitions: from each state, D equiprobable depletion
	// choices (by sorted position), each possibly branching over random
	// prefetch recipients.
	type edge struct {
		to   int
		prob float64
		par  int
	}
	trans := make([][]edge, n)
	for si, s := range m.states {
		for i := 0; i < m.D; i++ {
			for _, out := range m.step(s, i) {
				nx := sortLevels(out.next)
				ti, ok := m.index[nx.key()]
				if !ok {
					return 0, 0, fmt.Errorf("analysis: markov transition left state space")
				}
				trans[si] = append(trans[si], edge{
					to:   ti,
					prob: out.prob / float64(m.D),
					par:  out.par,
				})
			}
		}
	}

	next := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		for i := range next {
			next[i] = 0
		}
		for si, p := range pi {
			if p == 0 {
				continue
			}
			for _, e := range trans[si] {
				next[e.to] += p * e.prob
			}
		}
		delta := 0.0
		for i := range next {
			delta += math.Abs(next[i] - pi[i])
		}
		pi, next = next, pi
		if delta < tol {
			break
		}
	}

	// Rewards over the stationary distribution.
	var parSum, fetchP float64
	for si, p := range pi {
		if p == 0 {
			continue
		}
		for _, e := range trans[si] {
			if e.par > 0 {
				parSum += p * e.prob * float64(e.par)
				fetchP += p * e.prob
			}
		}
	}
	if fetchP == 0 {
		return 0, 0, fmt.Errorf("analysis: no fetches in steady state")
	}
	return parSum / fetchP, fetchP, nil
}
