package explain_test

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/explain"
	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// abConfigs mirrors the engine A/B matrix from internal/core's
// engineab_test.go: every synchronization mode, placement, queue
// discipline, rotational model, run policy, admission policy, writer
// mode, fault flavour, and workload family. The conservation invariant
// must hold on every point the engines are pinned on.
func abConfigs() map[string]core.Config {
	small := func() core.Config {
		cfg := core.Default()
		cfg.K, cfg.D, cfg.BlocksPerRun = 8, 4, 60
		cfg.CacheBlocks = cfg.DefaultCache()
		return cfg
	}
	cfgs := map[string]core.Config{}

	cfgs["no-prefetch"] = small()

	c := small()
	c.N = 4
	c.Synchronized = true
	c.CacheBlocks = c.DefaultCache()
	cfgs["intra-sync"] = c

	c = small()
	c.N = 4
	c.CacheBlocks = c.DefaultCache()
	cfgs["intra-unsync"] = c

	c = small()
	c.N = 3
	c.InterRun = true
	c.Synchronized = true
	c.CacheBlocks = c.DefaultCache()
	cfgs["inter-sync"] = c

	c = small()
	c.N = 3
	c.InterRun = true
	c.CacheBlocks = c.DefaultCache()
	cfgs["inter-unsync"] = c

	c = small()
	c.N = 3
	c.InterRun = true
	c.Placement = layout.Striped
	c.CacheBlocks = c.DefaultCache()
	cfgs["striped"] = c

	c = small()
	c.N = 3
	c.InterRun = true
	c.Placement = layout.Clustered
	c.RunPolicy = core.LeastBufferedRun
	c.CacheBlocks = c.DefaultCache()
	cfgs["clustered-least-buffered"] = c

	c = small()
	c.N = 3
	c.InterRun = true
	c.RunPolicy = core.RoundRobinRun
	c.Disk.Discipline = disk.SSTF
	c.CacheBlocks = c.DefaultCache()
	cfgs["round-robin-sstf"] = c

	c = small()
	c.N = 4
	c.Disk.Discipline = disk.SCAN
	c.Disk.Rotational = disk.RotConstant
	cfgs["scan-rot-constant"] = c

	c = small()
	c.N = 4
	c.Disk.Rotational = disk.RotPositional
	cfgs["rot-positional"] = c

	c = small()
	c.N = 5
	c.InterRun = true
	c.Admission = cache.Greedy
	c.CacheBlocks = c.K*c.N/2 + c.K
	cfgs["greedy-tight-cache"] = c

	c = small()
	c.N = 6
	c.InterRun = true
	c.AdaptiveN = true
	c.CacheBlocks = c.K*c.N/2 + c.K
	cfgs["adaptive-n"] = c

	c = small()
	c.N = 3
	c.MergeTimePerBlock = sim.Ms(0.7)
	cfgs["finite-cpu"] = c

	c = small()
	c.N = 3
	c.Write = core.WriteConfig{Enabled: true, Disks: 2, BatchBlocks: 4, BufferBlocks: 10}
	cfgs["write-separate"] = c

	c = small()
	c.N = 3
	c.MergeTimePerBlock = sim.Ms(0.2)
	c.Write = core.WriteConfig{Enabled: true, Shared: true}
	cfgs["write-shared"] = c

	c = small()
	c.N = 3
	c.Faults = &faults.Spec{Disks: []faults.DiskSpec{
		{Disk: 0, Slowdown: 2.5, SlowdownAtMs: 200},
		{Disk: 2, ReadErrorProb: 0.05, MaxRetries: 50},
		{Disk: 3, Outages: []faults.Window{{StartMs: 100, EndMs: 400}}},
	}}
	cfgs["faulty-disks"] = c

	c = small()
	c.N = 3
	c.InterRun = true
	c.CacheBlocks = c.DefaultCache()
	c.WorkloadFactory = func(trial int) workload.Model {
		return &workload.Skewed{R: rng.New(uint64(trial) + 7), Theta: 0.8}
	}
	cfgs["skewed-workload"] = c

	c = small()
	c.N = 3
	c.InterRun = true
	c.RunPolicy = core.OracleRun
	c.CacheBlocks = c.DefaultCache()
	c.WorkloadFactory = func(trial int) workload.Model {
		seq := make([]int, 2000)
		for i := range seq {
			seq[i] = (i*(trial+3) + i/7) % 8
		}
		return &workload.Sequence{Runs: seq}
	}
	cfgs["oracle-sequence"] = c

	c = small()
	c.N = 4
	c.MaxSimTime = sim.Ms(1500)
	cfgs["timed-out"] = c

	return cfgs
}

// runTraced executes one traced replication and returns the result with
// its recorder.
func runTraced(t *testing.T, cfg core.Config, workers int) (core.Result, *trace.Recorder) {
	t.Helper()
	cfg.Trace = trace.New(0)
	aggs, err := core.RunGrid([]core.Config{cfg}, 1, workers)
	if err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	return aggs[0].Results[0], cfg.Trace
}

// TestConservationMatrix replays the full A/B config matrix and demands
// the conservation invariant on each point: the report's per-disk and
// CPU decompositions tile the makespan and the attributed stall total
// equals Result.StallTime.
func TestConservationMatrix(t *testing.T) {
	for name, cfg := range abConfigs() {
		t.Run(name, func(t *testing.T) {
			res, rec := runTraced(t, cfg, 1)
			rep := explain.Build(rec, explain.Options{Makespan: res.TotalTime})
			if err := rep.Check(res.StallTime); err != nil {
				t.Fatal(err)
			}
			if len(rep.Disks) == 0 {
				t.Fatal("report has no disks")
			}
			for _, d := range rep.Disks {
				if d.Utilization <= 0 {
					t.Fatalf("disk %s has zero utilization", d.Name)
				}
			}
		})
	}
}

// TestAttributionCoversStalls requires the blocking-fetch cascade to
// explain every demand stall on the matrix: unattributed time means the
// join logic lost a span, not that the system behaved unusually.
func TestAttributionCoversStalls(t *testing.T) {
	for name, cfg := range abConfigs() {
		t.Run(name, func(t *testing.T) {
			res, rec := runTraced(t, cfg, 1)
			rep := explain.Build(rec, explain.Options{Makespan: res.TotalTime})
			if rep.Stall.Unattributed != 0 {
				t.Fatalf("unattributed stall %v of total %v", rep.Stall.Unattributed, rep.Stall.Total)
			}
			if rep.Stall.Total > 0 && len(rep.Chains) == 0 {
				t.Fatal("stalls present but no chains extracted")
			}
		})
	}
}

// TestReportByteIdentityAcrossWorkers pins determinism end to end: the
// marshaled report from a workers=1 grid equals the workers=8 one.
func TestReportByteIdentityAcrossWorkers(t *testing.T) {
	cfg := tracedConfig()
	build := func(workers int) []byte {
		res, rec := runTraced(t, cfg, workers)
		rep := explain.Build(rec, explain.Options{Makespan: res.TotalTime})
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	b1, b8 := build(1), build(8)
	if !bytes.Equal(b1, b8) {
		t.Fatalf("report bytes differ across worker counts:\n1: %s\n8: %s", b1, b8)
	}
}

// tracedConfig exercises every instrumented path: inter-run prefetch, a
// finite CPU, separate write disks, and a degraded disk.
func tracedConfig() core.Config {
	cfg := core.Default()
	cfg.K = 6
	cfg.D = 3
	cfg.BlocksPerRun = 40
	cfg.N = 3
	cfg.InterRun = true
	cfg.CacheBlocks = cfg.DefaultCache()
	cfg.MergeTimePerBlock = 0.05
	cfg.Write = core.WriteConfig{Enabled: true, Disks: 1}
	cfg.Faults = &faults.Spec{Disks: []faults.DiskSpec{{
		Disk:          1,
		Slowdown:      1.5,
		SlowdownAtMs:  50,
		ReadErrorProb: 0.05,
	}}}
	cfg.Seed = 42
	return cfg
}

// TestDiskSpansTileBusyTime is the invariant explain leans on: per
// track, phase spans never overlap, and the non-outage span lengths sum
// to the disk's accumulated Stats.BusyTime.
func TestDiskSpansTileBusyTime(t *testing.T) {
	for name, cfg := range abConfigs() {
		t.Run(name, func(t *testing.T) {
			res, rec := runTraced(t, cfg, 1)
			byTrack := map[int][]trace.DiskSpan{}
			for _, s := range rec.DiskSpans() {
				byTrack[s.Track] = append(byTrack[s.Track], s)
			}
			busyOf := map[int]sim.Time{}
			for _, track := range sortedKeys(byTrack) {
				spans := byTrack[track]
				sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
				var busy sim.Time
				for i, s := range spans {
					if s.End <= s.Start {
						t.Fatalf("track %d: empty span %+v", track, s)
					}
					// Adjacent requests abut exactly in simulated time, but
					// the next dispatch instant is computed as now+total
					// while the previous span's end accumulated phase by
					// phase — the two differ in the last float bits, so
					// "never overlap" holds up to association jitter.
					if i > 0 {
						jitter := sim.Time(1e-9 * float64(spans[i-1].End))
						if s.Start < spans[i-1].End-jitter {
							t.Fatalf("track %d: span %d overlaps predecessor: %+v after %+v",
								track, i, s, spans[i-1])
						}
					}
					if s.Phase != trace.PhaseOutage {
						busy += s.End - s.Start
					}
				}
				busyOf[track] = busy
			}
			for d, st := range res.PerDisk {
				requireBusyMatch(t, rec.TrackName(trace.CPUTrack+1+d), busyOf[trace.CPUTrack+1+d], st.BusyTime)
			}
			for i, st := range res.PerWriteDisk {
				track := trace.CPUTrack + 1 + len(res.PerDisk) + i
				requireBusyMatch(t, rec.TrackName(track), busyOf[track], st.BusyTime)
			}
		})
	}
}

func requireBusyMatch(t *testing.T, name string, spanBusy, statsBusy sim.Time) {
	t.Helper()
	diff := spanBusy - statsBusy
	if diff < 0 {
		diff = -diff
	}
	tol := explain.Epsilon + sim.Time(1e-9*float64(statsBusy))
	if diff > tol {
		t.Fatalf("%s: span busy %v != stats busy %v (Δ %v)", name, spanBusy, statsBusy, diff)
	}
}

func sortedKeys(m map[int][]trace.DiskSpan) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// TestCSVRoundtripReport pins traceq's file mode: a report built from a
// WriteCSV→ReadCSV roundtrip matches the live-recorder report byte for
// byte.
func TestCSVRoundtripReport(t *testing.T) {
	res, rec := runTraced(t, tracedConfig(), 1)
	opts := explain.Options{Makespan: res.TotalTime}
	live, err := json.Marshal(explain.Build(rec, opts))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := json.Marshal(explain.Build(loaded, opts))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, reloaded) {
		t.Fatalf("report changed across CSV roundtrip:\nlive:     %s\nreloaded: %s", live, reloaded)
	}
}

// TestTruncatedReportFailsCheck: a capped trace must refuse to
// masquerade as a complete attribution.
func TestTruncatedReportFailsCheck(t *testing.T) {
	cfg := tracedConfig()
	cfg.Trace = trace.New(50)
	aggs, err := core.RunGrid([]core.Config{cfg}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Trace.Truncated() {
		t.Fatal("tiny cap did not truncate")
	}
	rep := explain.Build(cfg.Trace, explain.Options{Makespan: aggs[0].Results[0].TotalTime})
	if !rep.Truncated {
		t.Fatal("report did not propagate truncation")
	}
	if err := rep.Check(aggs[0].Results[0].StallTime); err == nil {
		t.Fatal("Check accepted a truncated trace")
	}
}

// TestWriteTextAndSVG smoke-checks the renderers on a real trace.
func TestWriteTextAndSVG(t *testing.T) {
	res, rec := runTraced(t, tracedConfig(), 1)
	rep := explain.Build(rec, explain.Options{Makespan: res.TotalTime})
	var txt, svg bytes.Buffer
	if err := rep.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(txt.Bytes(), []byte("stall attribution")) {
		t.Fatalf("text report missing sections:\n%s", txt.String())
	}
	if err := explain.WriteTimelineSVG(&svg, rec, rep); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(svg.Bytes(), []byte("<svg ")) || !bytes.Contains(svg.Bytes(), []byte("</svg>")) {
		t.Fatal("timeline is not an SVG document")
	}
}
