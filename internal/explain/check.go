package explain

import (
	"fmt"

	"repro/internal/sim"
)

// Check enforces the conservation invariant: every disk's phase
// breakdown plus idle tiles the makespan, the CPU's compute + stall +
// initial load + idle tiles the makespan, stall attribution is lossless
// (by-disk + unattributed = total; by-phase + queued = attributed), and
// the trace-side stall total matches the engine-side total stallTime
// (pass Result.StallTime). A truncated trace fails outright: dropped
// spans make every identity unverifiable.
//
// Tolerance is Epsilon plus a makespan-relative term covering float
// re-association, which in practice leaves residuals at exactly zero
// because the report repeats the engine's own additions in order.
func (rep *Report) Check(stallTime sim.Time) error {
	if rep.Truncated {
		return fmt.Errorf("explain: trace truncated at the event cap; report is incomplete")
	}
	tol := Epsilon + sim.Time(1e-9*float64(rep.Makespan))
	abs := func(t sim.Time) sim.Time {
		if t < 0 {
			return -t
		}
		return t
	}
	for _, d := range rep.Disks {
		if abs(d.Phases.Busy()-d.Busy) > tol {
			return fmt.Errorf("explain: disk %s phase sum %v != busy %v", d.Name, d.Phases.Busy(), d.Busy)
		}
		if abs(d.Busy+d.Idle-rep.Makespan) > tol {
			return fmt.Errorf("explain: disk %s busy %v + idle %v != makespan %v",
				d.Name, d.Busy, d.Idle, rep.Makespan)
		}
		if d.Idle < -tol {
			return fmt.Errorf("explain: disk %s busy %v exceeds makespan %v", d.Name, d.Busy, rep.Makespan)
		}
	}
	cpu := rep.CPU
	if abs(cpu.Compute+cpu.Stall+cpu.InitialLoad+cpu.Idle-rep.Makespan) > tol {
		return fmt.Errorf("explain: cpu compute %v + stall %v + initial %v + idle %v != makespan %v",
			cpu.Compute, cpu.Stall, cpu.InitialLoad, cpu.Idle, rep.Makespan)
	}
	if cpu.Idle < -tol {
		return fmt.Errorf("explain: cpu accounted time exceeds makespan %v by %v", rep.Makespan, -cpu.Idle)
	}
	var attributed sim.Time
	for _, d := range rep.Stall.ByDisk {
		attributed += d.Stall
	}
	if abs(attributed+rep.Stall.Unattributed-rep.Stall.Total) > tol {
		return fmt.Errorf("explain: stall by-disk %v + unattributed %v != total %v",
			attributed, rep.Stall.Unattributed, rep.Stall.Total)
	}
	if abs(rep.Stall.ByPhase.Busy()+rep.Stall.Queued-attributed) > tol {
		return fmt.Errorf("explain: stall by-phase %v + queued %v != attributed %v",
			rep.Stall.ByPhase.Busy(), rep.Stall.Queued, attributed)
	}
	if abs(rep.Stall.Total-stallTime) > tol {
		return fmt.Errorf("explain: trace stall total %v != engine stall time %v (Δ %v)",
			rep.Stall.Total, stallTime, rep.Stall.Total-stallTime)
	}
	return nil
}
