// Package explain turns a recorded trace into an attribution report:
// where did the makespan go, per disk and per mechanical phase; which
// disk and which fetch each CPU stall was actually waiting on; how deep
// the disk queues and the cache ran, time-weighted; and which stall
// chains dominated the critical path.
//
// The analysis is a pure function of the recorder's contents — no
// clocks, no randomness, no maps iterated without sorting — so a report
// is byte-identical across runs and worker counts whenever the trace
// is, which internal/core guarantees for a fixed (config, seed).
//
// Conservation is the load-bearing property: per disk,
// busy + idle = makespan; on the CPU,
// compute + stall + initial load + idle = makespan; and the attributed
// stall total must equal core's Result.StallTime (both sides sum the
// same recorded intervals). Check enforces all of it within Epsilon,
// and the property tests in this package replay the engine A/B config
// matrix through it.
package explain

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Epsilon is the absolute slack allowed on conservation identities, in
// milliseconds. The sums involved repeat the engine's own additions in
// the same order, so observed residuals are zero; the slack covers
// re-associated float addition if an exporter round-trip reorders
// spans.
const Epsilon sim.Time = 1e-6

// Options parameterizes Build.
type Options struct {
	// Makespan is the run's finish instant (Result.TotalTime). Zero
	// means infer it as the last recorded span end, which is correct
	// for completed merges but undershoots runs cut by MaxSimTime.
	Makespan sim.Time
	// TopChains bounds the critical-path extraction (default 5).
	TopChains int
}

// PhaseBreakdown is busy time split by mechanical phase, in ms.
type PhaseBreakdown struct {
	Seek     sim.Time `json:"seek_ms"`
	Rotation sim.Time `json:"rotation_ms"`
	Retry    sim.Time `json:"retry_ms"`
	Transfer sim.Time `json:"transfer_ms"`
	Outage   sim.Time `json:"outage_ms"`
}

// add accumulates d ms into the bucket for phase p.
func (b *PhaseBreakdown) add(p trace.Phase, d sim.Time) {
	switch p {
	case trace.PhaseSeek:
		b.Seek += d
	case trace.PhaseRotation:
		b.Rotation += d
	case trace.PhaseRetry:
		b.Retry += d
	case trace.PhaseTransfer:
		b.Transfer += d
	case trace.PhaseOutage:
		b.Outage += d
	}
}

// Busy returns the breakdown's total.
func (b PhaseBreakdown) Busy() sim.Time {
	return b.Seek + b.Rotation + b.Retry + b.Transfer + b.Outage
}

// Distribution summarizes a step function (queue depth, cache
// occupancy) time-weighted over the whole makespan.
type Distribution struct {
	// Mean is the time-weighted average level (the integral of the step
	// function divided by the makespan).
	Mean float64 `json:"mean"`
	// Max is the highest sampled level.
	Max int `json:"max"`
	// P95 is the smallest level at or below which the step function
	// spends at least 95% of the makespan.
	P95 int `json:"p95"`
}

// DiskReport is one disk track's share of the makespan.
type DiskReport struct {
	Name   string         `json:"name"`
	Phases PhaseBreakdown `json:"phases"`
	// Busy = Phases.Busy(); Idle = makespan − Busy. Busy + Idle is the
	// per-disk conservation identity.
	Busy        sim.Time `json:"busy_ms"`
	Idle        sim.Time `json:"idle_ms"`
	Utilization float64  `json:"utilization"`
	// Queue summarizes the track's queue-depth step function; all-zero
	// when the trace carries no queue samples for the track.
	Queue Distribution `json:"queue"`
	// Prefetches / PrefetchBlocks count fetch spans served by this
	// track (zero for write disks: output requests are not prefetches).
	Prefetches     int `json:"prefetches"`
	PrefetchBlocks int `json:"prefetch_blocks"`

	track int
}

// CPUReport is the merge CPU's share of the makespan.
type CPUReport struct {
	Compute sim.Time `json:"compute_ms"`
	// Stall is demand-stall time (spans attributed to a run), the trace
	// twin of Result.StallTime.
	Stall sim.Time `json:"stall_ms"`
	// InitialLoad is the up-front wait for the first batch of every
	// run, which core excludes from StallTime.
	InitialLoad sim.Time `json:"initial_load_ms"`
	// Idle is the remainder: output-drain waits (not traced as spans)
	// and scheduling gaps.
	Idle        sim.Time `json:"idle_ms"`
	Utilization float64  `json:"utilization"`
}

// DiskStall is stall time attributed to one blocking disk.
type DiskStall struct {
	Name  string   `json:"name"`
	Stall sim.Time `json:"stall_ms"`
	Count int      `json:"count"`

	track int
}

// StallReport decomposes total demand-stall time by blocking disk and
// by what that disk was mechanically doing during the stall.
type StallReport struct {
	Total  sim.Time    `json:"total_ms"`
	ByDisk []DiskStall `json:"by_disk"`
	// ByPhase intersects each attributed stall interval with the
	// blocking disk's phase spans: the stall time the disk spent
	// seeking, rotating, transferring, ... for anyone's request.
	ByPhase PhaseBreakdown `json:"by_phase"`
	// Queued is the attributed remainder: the blocking disk was idle or
	// parked while the CPU waited (the fetch sat in queue).
	Queued sim.Time `json:"queued_ms"`
	// Unattributed is stall time no prefetch span explains; nonzero
	// values indicate a truncated trace.
	Unattributed sim.Time `json:"unattributed_ms"`
}

// Chain is one critical-path entry: a CPU stall, the fetch that ended
// it, and what the blocking disk spent the wait on.
type Chain struct {
	Run      int      `json:"run"`
	Start    sim.Time `json:"start_ms"`
	End      sim.Time `json:"end_ms"`
	Duration sim.Time `json:"duration_ms"`
	// Disk names the blocking track ("" when unattributed); Issued is
	// when its fetch entered the system — Issued < Start means the
	// fetch was already in flight when the CPU hit the wall.
	Disk   string         `json:"disk,omitempty"`
	Issued sim.Time       `json:"issued_ms"`
	Phases PhaseBreakdown `json:"phases"`
	Queued sim.Time       `json:"queued_ms"`
}

// Report is the full attribution report. All durations are simulated
// milliseconds; JSON field names carry the unit.
type Report struct {
	Makespan sim.Time `json:"makespan_ms"`
	// Truncated propagates the recorder's event-cap flag: a truncated
	// trace yields an untrustworthy report (conservation will fail).
	Truncated bool         `json:"truncated"`
	CPU       CPUReport    `json:"cpu"`
	Disks     []DiskReport `json:"disks"`
	Stall     StallReport  `json:"stall"`
	Cache     Distribution `json:"cache"`
	Chains    []Chain      `json:"chains"`
}

// Build computes the attribution report for a recorded trace. It never
// mutates the recorder.
func Build(r *trace.Recorder, opts Options) *Report {
	makespan := opts.Makespan
	if makespan <= 0 {
		makespan = lastInstant(r)
	}
	topN := opts.TopChains
	if topN <= 0 {
		topN = 5
	}
	rep := &Report{Makespan: makespan, Truncated: r.Truncated()}

	// Per-disk phase accounting. Spans recorded past the makespan (a
	// MaxSimTime cutoff leaves dispatched requests running) are clamped
	// to it so per-disk totals stay conservative.
	byTrack := map[int]*DiskReport{}
	trackOrder := []int{}
	diskOf := func(track int) *DiskReport {
		d, ok := byTrack[track]
		if !ok {
			d = &DiskReport{Name: r.TrackName(track), track: track}
			byTrack[track] = d
			trackOrder = append(trackOrder, track)
		}
		return d
	}
	diskSpans := map[int][]trace.DiskSpan{}
	for _, s := range r.DiskSpans() {
		start, end, ok := clamp(s.Start, s.End, makespan)
		if !ok {
			continue
		}
		d := diskOf(s.Track)
		d.Phases.add(s.Phase, end-start)
		diskSpans[s.Track] = append(diskSpans[s.Track], trace.DiskSpan{
			Track: s.Track, Phase: s.Phase, Start: start, End: end})
	}
	for _, p := range r.PrefetchSpans() {
		d := diskOf(p.Track)
		d.Prefetches++
		d.PrefetchBlocks += p.Blocks
	}

	// Queue distributions per track.
	queues := map[int][]trace.QueueSample{}
	for _, q := range r.QueueSamples() {
		queues[q.Track] = append(queues[q.Track], q)
	}
	for t, samples := range queues {
		diskOf(t).Queue = stepDistribution(samples, makespan)
	}

	sort.Ints(trackOrder)
	for _, t := range trackOrder {
		d := byTrack[t]
		d.Busy = d.Phases.Busy()
		d.Idle = makespan - d.Busy
		if makespan > 0 {
			d.Utilization = float64(d.Busy / makespan)
		}
		rep.Disks = append(rep.Disks, *d)
	}

	// CPU accounting. Initial-load stalls carry no run identity and are
	// reported separately: core excludes them from Result.StallTime.
	var stalls []trace.CPUSpan
	for _, s := range r.CPUSpans() {
		start, end, ok := clamp(s.Start, s.End, makespan)
		if !ok {
			continue
		}
		d := end - start
		switch {
		case s.Kind == trace.CPUCompute:
			rep.CPU.Compute += d
		case s.Run >= 0:
			rep.CPU.Stall += d
			stalls = append(stalls, trace.CPUSpan{Kind: s.Kind, Run: s.Run, Start: start, End: end})
		default:
			rep.CPU.InitialLoad += d
		}
	}
	rep.CPU.Idle = makespan - rep.CPU.Compute - rep.CPU.Stall - rep.CPU.InitialLoad
	if makespan > 0 {
		rep.CPU.Utilization = float64(rep.CPU.Compute / makespan)
	}

	// Stall attribution + critical chains.
	rep.Stall.Total = rep.CPU.Stall
	attrStall := map[int]*DiskStall{}
	prefetches := r.PrefetchSpans()
	var chains []Chain
	for _, s := range stalls {
		c := Chain{Run: s.Run, Start: s.Start, End: s.End, Duration: s.End - s.Start}
		p := blockingFetch(prefetches, s)
		if p == nil {
			rep.Stall.Unattributed += c.Duration
			c.Issued = s.Start
			chains = append(chains, c)
			continue
		}
		ds, ok := attrStall[p.Track]
		if !ok {
			ds = &DiskStall{Name: r.TrackName(p.Track), track: p.Track}
			attrStall[p.Track] = ds
		}
		ds.Stall += c.Duration
		ds.Count++
		c.Disk = ds.Name
		c.Issued = p.Issued
		c.Phases, c.Queued = decompose(s.Start, s.End, diskSpans[p.Track])
		rep.Stall.ByPhase.Seek += c.Phases.Seek
		rep.Stall.ByPhase.Rotation += c.Phases.Rotation
		rep.Stall.ByPhase.Retry += c.Phases.Retry
		rep.Stall.ByPhase.Transfer += c.Phases.Transfer
		rep.Stall.ByPhase.Outage += c.Phases.Outage
		rep.Stall.Queued += c.Queued
		chains = append(chains, c)
	}
	stallTracks := make([]int, 0, len(attrStall))
	for t := range attrStall {
		stallTracks = append(stallTracks, t)
	}
	sort.Ints(stallTracks)
	for _, t := range stallTracks {
		rep.Stall.ByDisk = append(rep.Stall.ByDisk, *attrStall[t])
	}

	sort.SliceStable(chains, func(i, j int) bool {
		//detlint:allow floatcmp sort tie-break on recorded span bits: identical values must compare equal so the order is deterministic, no tolerance wanted
		if chains[i].Duration != chains[j].Duration {
			return chains[i].Duration > chains[j].Duration
		}
		//detlint:allow floatcmp sort tie-break on recorded span bits: identical values must compare equal so the order is deterministic, no tolerance wanted
		if chains[i].Start != chains[j].Start {
			return chains[i].Start < chains[j].Start
		}
		return chains[i].Run < chains[j].Run
	})
	if len(chains) > topN {
		chains = chains[:topN]
	}
	rep.Chains = chains

	// Cache occupancy distribution.
	rep.Cache = cacheDistribution(r.CacheSamples(), makespan)
	return rep
}

// blockingFetch names the prefetch span a stall was waiting on, by a
// cascade of increasingly loose joins:
//
//  1. A same-run fetch in flight at the stall's end — the stall ended
//     because a block of run s.Run arrived, so the fetch that spans the
//     wake-up instant is the blocker. Earliest-issued wins ties.
//  2. Any-run fetch completing exactly at the stall's end: under
//     Synchronized batches the CPU waits for the whole batch, so the
//     wake-up fetch can serve a different run.
//  3. A same-run fetch merely overlapping the stall (latest-done wins):
//     covers arrival races where the waking deposit was recorded just
//     before the stall span closed.
//
// Returns nil when nothing matches (a truncated trace).
func blockingFetch(prefetches []trace.PrefetchSpan, s trace.CPUSpan) *trace.PrefetchSpan {
	var best *trace.PrefetchSpan
	for i := range prefetches {
		p := &prefetches[i]
		if p.Run != s.Run || p.Issued > s.End || p.Done < s.End {
			continue
		}
		if best == nil || p.Issued < best.Issued {
			best = p
		}
	}
	if best != nil {
		return best
	}
	for i := range prefetches {
		p := &prefetches[i]
		//detlint:allow floatcmp synchronized batches wake the CPU at the exact recorded completion instant; both sides are the same kernel timestamp, so equality is bit-identity, not arithmetic
		if p.Done == s.End {
			if best == nil || p.Issued < best.Issued {
				best = p
			}
		}
	}
	if best != nil {
		return best
	}
	for i := range prefetches {
		p := &prefetches[i]
		if p.Run != s.Run || p.Done <= s.Start || p.Issued >= s.End {
			continue
		}
		if best == nil || p.Done > best.Done {
			best = p
		}
	}
	return best
}

// decompose intersects the interval [start, end) with a track's phase
// spans, returning per-phase overlap and the uncovered remainder.
func decompose(start, end sim.Time, spans []trace.DiskSpan) (PhaseBreakdown, sim.Time) {
	var b PhaseBreakdown
	for _, sp := range spans {
		lo, hi := sp.Start, sp.End
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		if hi > lo {
			b.add(sp.Phase, hi-lo)
		}
	}
	queued := (end - start) - b.Busy()
	if queued < 0 {
		queued = 0
	}
	return b, queued
}

// stepDistribution integrates a right-continuous step function given by
// chronological samples over [0, makespan]; the level is 0 before the
// first sample and holds the last sample's value to the end.
func stepDistribution(samples []trace.QueueSample, makespan sim.Time) Distribution {
	if len(samples) == 0 || makespan <= 0 {
		return Distribution{}
	}
	levels := make([]trace.QueueSample, len(samples))
	copy(levels, samples)
	sort.SliceStable(levels, func(i, j int) bool { return levels[i].At < levels[j].At })
	timeAt := map[int]sim.Time{}
	var integral float64
	maxDepth := 0
	prevAt, prevDepth := sim.Time(0), 0
	account := func(until sim.Time, depth int) {
		if until > prevAt {
			dt := until - prevAt
			timeAt[depth] += dt
			integral += float64(depth) * float64(dt)
		}
	}
	for _, s := range levels {
		at := s.At
		if at > makespan {
			at = makespan
		}
		account(at, prevDepth)
		prevAt, prevDepth = at, s.Depth
		if s.Depth > maxDepth {
			maxDepth = s.Depth
		}
	}
	account(makespan, prevDepth)

	depths := make([]int, 0, len(timeAt))
	for d := range timeAt {
		depths = append(depths, d)
	}
	sort.Ints(depths)
	var cum sim.Time
	p95 := maxDepth
	for _, d := range depths {
		cum += timeAt[d]
		if float64(cum) >= 0.95*float64(makespan) {
			p95 = d
			break
		}
	}
	return Distribution{Mean: integral / float64(makespan), Max: maxDepth, P95: p95}
}

// cacheDistribution adapts cache samples to stepDistribution.
func cacheDistribution(samples []trace.CacheSample, makespan sim.Time) Distribution {
	qs := make([]trace.QueueSample, len(samples))
	for i, s := range samples {
		qs[i] = trace.QueueSample{At: s.At, Depth: s.Occupied}
	}
	return stepDistribution(qs, makespan)
}

// clamp restricts [start, end) to [0, makespan), reporting false for
// intervals entirely outside it.
func clamp(start, end, makespan sim.Time) (sim.Time, sim.Time, bool) {
	if start >= makespan || end <= start {
		return 0, 0, false
	}
	if end > makespan {
		end = makespan
	}
	return start, end, true
}

// lastInstant scans every recorded event for the latest timestamp.
func lastInstant(r *trace.Recorder) sim.Time {
	var last sim.Time
	for _, s := range r.DiskSpans() {
		if s.End > last {
			last = s.End
		}
	}
	for _, s := range r.CPUSpans() {
		if s.End > last {
			last = s.End
		}
	}
	for _, s := range r.PrefetchSpans() {
		if s.Done > last {
			last = s.Done
		}
	}
	for _, s := range r.CacheSamples() {
		if s.At > last {
			last = s.At
		}
	}
	for _, s := range r.QueueSamples() {
		if s.At > last {
			last = s.At
		}
	}
	for _, m := range r.Marks() {
		if m.At > last {
			last = m.At
		}
	}
	return last
}
