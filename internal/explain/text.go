package explain

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// WriteText renders the report as a fixed-width human-readable summary.
// The layout is stable: scripts may diff two reports line by line.
func (rep *Report) WriteText(w io.Writer) error {
	ew := &errWriter{w: w}
	pct := func(t sim.Time) float64 {
		if rep.Makespan <= 0 {
			return 0
		}
		return 100 * float64(t/rep.Makespan)
	}
	fmt.Fprintf(ew, "makespan %.3f ms", float64(rep.Makespan))
	if rep.Truncated {
		fmt.Fprintf(ew, "  [TRUNCATED TRACE — totals incomplete]")
	}
	fmt.Fprintf(ew, "\n\ncpu\n")
	fmt.Fprintf(ew, "  compute      %12.3f ms  %5.1f%%\n", float64(rep.CPU.Compute), pct(rep.CPU.Compute))
	fmt.Fprintf(ew, "  stall        %12.3f ms  %5.1f%%\n", float64(rep.CPU.Stall), pct(rep.CPU.Stall))
	fmt.Fprintf(ew, "  initial load %12.3f ms  %5.1f%%\n", float64(rep.CPU.InitialLoad), pct(rep.CPU.InitialLoad))
	fmt.Fprintf(ew, "  idle         %12.3f ms  %5.1f%%\n", float64(rep.CPU.Idle), pct(rep.CPU.Idle))

	fmt.Fprintf(ew, "\ndisks\n  %-12s %9s%9s%9s%10s%9s%8s%7s%7s\n",
		"", "seek", "rot", "retry", "transfer", "outage", "util", "q-mean", "q-max")
	for _, d := range rep.Disks {
		fmt.Fprintf(ew, "  %-12s %9.1f%9.1f%9.1f%10.1f%9.1f%7.1f%%%7.2f%7d\n",
			d.Name, float64(d.Phases.Seek), float64(d.Phases.Rotation), float64(d.Phases.Retry),
			float64(d.Phases.Transfer), float64(d.Phases.Outage),
			100*d.Utilization, d.Queue.Mean, d.Queue.Max)
	}

	fmt.Fprintf(ew, "\nstall attribution  (total %.3f ms)\n", float64(rep.Stall.Total))
	for _, d := range rep.Stall.ByDisk {
		fmt.Fprintf(ew, "  %-12s %12.3f ms  %5.1f%%  (%d stalls)\n",
			d.Name, float64(d.Stall), pct(d.Stall), d.Count)
	}
	if rep.Stall.Unattributed > 0 {
		fmt.Fprintf(ew, "  %-12s %12.3f ms\n", "unattributed", float64(rep.Stall.Unattributed))
	}
	b := rep.Stall.ByPhase
	fmt.Fprintf(ew, "  by phase: seek %.1f  rotation %.1f  retry %.1f  transfer %.1f  outage %.1f  queued %.1f\n",
		float64(b.Seek), float64(b.Rotation), float64(b.Retry), float64(b.Transfer),
		float64(b.Outage), float64(rep.Stall.Queued))

	fmt.Fprintf(ew, "\ncache occupancy: mean %.2f  p95 %d  max %d blocks\n",
		rep.Cache.Mean, rep.Cache.P95, rep.Cache.Max)

	if len(rep.Chains) > 0 {
		fmt.Fprintf(ew, "\ntop stall chains\n")
		for i, c := range rep.Chains {
			disk := c.Disk
			if disk == "" {
				disk = "?"
			}
			fmt.Fprintf(ew, "  %2d. run %-3d %9.3f ms  [%.3f → %.3f]  on %-8s queued %.3f\n",
				i+1, c.Run, float64(c.Duration), float64(c.Start), float64(c.End),
				disk, float64(c.Queued))
		}
	}
	return ew.err
}

// errWriter latches the first write error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
		return len(p), nil
	}
	return n, nil
}
