package explain

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Timeline rendering geometry, in SVG user units.
const (
	svgWidth     = 1000
	svgLabelW    = 80
	svgRowH      = 22
	svgRowGap    = 6
	svgTopPad    = 28
	svgBottomPad = 34
)

// phaseColor maps each mechanical phase to its timeline fill. The
// palette matches the stacked attribution figure so the two renderings
// read together.
func phaseColor(p trace.Phase) string {
	switch p {
	case trace.PhaseSeek:
		return "#d95f02"
	case trace.PhaseRotation:
		return "#e6ab02"
	case trace.PhaseRetry:
		return "#e7298a"
	case trace.PhaseTransfer:
		return "#1b9e77"
	case trace.PhaseOutage:
		return "#666666"
	default:
		return "#999999"
	}
}

// WriteTimelineSVG renders the trace as a static timeline: one row per
// track (CPU first, then each disk in track order), disk busy segments
// colored by phase, CPU compute in blue and stalls in red, and the
// top stall chains outlined on the CPU row. The output is deterministic
// for a deterministic trace.
func WriteTimelineSVG(w io.Writer, r *trace.Recorder, rep *Report) error {
	makespan := rep.Makespan
	if makespan <= 0 {
		return fmt.Errorf("explain: timeline needs a positive makespan")
	}
	tracks := []int{trace.CPUTrack}
	seen := map[int]bool{trace.CPUTrack: true}
	for _, s := range r.DiskSpans() {
		if !seen[s.Track] {
			seen[s.Track] = true
			tracks = append(tracks, s.Track)
		}
	}
	sort.Ints(tracks)

	plotW := float64(svgWidth - svgLabelW - 10)
	x := func(t sim.Time) float64 {
		return float64(svgLabelW) + plotW*float64(t/makespan)
	}
	rowY := map[int]int{}
	for i, t := range tracks {
		rowY[t] = svgTopPad + i*(svgRowH+svgRowGap)
	}
	height := svgTopPad + len(tracks)*(svgRowH+svgRowGap) + svgBottomPad

	ew := &errWriter{w: w}
	fmt.Fprintf(ew, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		svgWidth, height, svgWidth, height)
	fmt.Fprintf(ew, `<rect width="%d" height="%d" fill="white"/>`+"\n", svgWidth, height)
	fmt.Fprintf(ew, `<text x="%d" y="16" font-family="sans-serif" font-size="12">trace timeline — makespan %.3f ms</text>`+"\n",
		svgLabelW, float64(makespan))

	for _, t := range tracks {
		y := rowY[t]
		fmt.Fprintf(ew, `<text x="4" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			y+svgRowH-7, r.TrackName(t))
		fmt.Fprintf(ew, `<rect x="%d" y="%d" width="%.1f" height="%d" fill="#f4f4f4"/>`+"\n",
			svgLabelW, y, plotW, svgRowH)
	}

	for _, s := range r.DiskSpans() {
		start, end, ok := clamp(s.Start, s.End, makespan)
		if !ok {
			continue
		}
		y := rowY[s.Track]
		fmt.Fprintf(ew, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s"><title>%s %s %.3f–%.3f ms</title></rect>`+"\n",
			x(start), y, segWidth(x(start), x(end)), svgRowH,
			phaseColor(s.Phase), r.TrackName(s.Track), s.Phase, float64(start), float64(end))
	}
	for _, s := range r.CPUSpans() {
		start, end, ok := clamp(s.Start, s.End, makespan)
		if !ok {
			continue
		}
		color := "#3366cc"
		label := "compute"
		if s.Kind == trace.CPUStall {
			color, label = "#cc3333", "stall"
			if s.Run >= 0 {
				label = fmt.Sprintf("stall (run %d)", s.Run)
			}
		}
		y := rowY[trace.CPUTrack]
		fmt.Fprintf(ew, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s"><title>%s %.3f–%.3f ms</title></rect>`+"\n",
			x(start), y, segWidth(x(start), x(end)), svgRowH, color, label, float64(start), float64(end))
	}
	// Outline the top stall chains so the eye lands on the critical path.
	for _, c := range rep.Chains {
		y := rowY[trace.CPUTrack]
		fmt.Fprintf(ew, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="none" stroke="black" stroke-width="1.5"/>`+"\n",
			x(c.Start), y-2, segWidth(x(c.Start), x(c.End)), svgRowH+4)
	}

	// Time axis.
	axisY := height - svgBottomPad + 14
	fmt.Fprintf(ew, `<line x1="%d" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
		svgLabelW, axisY, float64(svgLabelW)+plotW, axisY)
	for i := 0; i <= 4; i++ {
		t := makespan * sim.Time(i) / 4
		fmt.Fprintf(ew, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%.0f</text>`+"\n",
			x(t), axisY+14, float64(t))
	}
	fmt.Fprintf(ew, "</svg>\n")
	return ew.err
}

// segWidth keeps even sub-pixel spans visible.
func segWidth(x0, x1 float64) float64 {
	w := x1 - x0
	if w < 0.3 {
		return 0.3
	}
	return w
}
