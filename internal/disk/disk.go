package disk

import (
	"fmt"
	"math"

	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Request is one I/O operation: Count contiguous blocks starting at
// block address Start (a flat block index on the disk). The disk pays
// one seek plus one rotational latency, then delivers blocks every
// TransferPerBlock.
//
// Completion is observable at three grains: OnBlock fires per block as
// it lands (i is the 0-based index within the request), FirstDone
// completes with the first block (what an unsynchronized demand fetch
// waits on) and Done completes with the last.
type Request struct {
	// Start is a flat block address on the disk.
	//detlint:unit blocks
	Start int
	// Count is the request length.
	//detlint:unit blocks
	Count int

	// OnBlock, if non-nil, is invoked at the simulated instant each
	// block finishes transferring.
	OnBlock func(i int, at sim.Time)

	// FirstDone and Done are created by Submit.
	FirstDone *sim.Completion
	Done      *sim.Completion

	// Tag carries caller context (e.g. which run the fetch serves).
	Tag any

	enqueuedAt sim.Time
}

// RequestTrace is the dispatch record of one request, for structured
// request logging.
type RequestTrace struct {
	Disk     int      `json:"disk"`
	Start    int      `json:"start_block"`
	Count    int      `json:"blocks"`
	Tag      any      `json:"tag,omitempty"`
	Enqueued sim.Time `json:"enqueued_ms"`
	Started  sim.Time `json:"started_ms"`
	Seek     sim.Time `json:"seek_ms"`
	Rotation sim.Time `json:"rotation_ms"`
	Transfer sim.Time `json:"transfer_ms"`
}

// Stats aggregates a disk's activity over a run.
type Stats struct {
	Requests int64
	// Blocks counts blocks transferred.
	//detlint:unit blocks
	Blocks int64

	SeekTime     sim.Time
	RotTime      sim.Time
	TransferTime sim.Time
	BusyTime     sim.Time

	QueueWait    sim.Time // total time requests spent queued
	MaxQueueLen  int
	SeekDistance int64 // total cylinders travelled

	// Fault counters, all zero unless a fault injector is installed
	// (see SetFaultInjector).
	Retries      int64    // transient read errors recovered by re-reads
	RetryTime    sim.Time // service time added by those re-reads
	OutageTime   sim.Time // dispatch time lost waiting out outage windows
	SlowdownTime sim.Time // service time added by the fail-slow multiplier
}

// MeanServiceTime returns average (seek + latency + transfer) per request.
func (s Stats) MeanServiceTime() sim.Time {
	if s.Requests == 0 {
		return 0
	}
	return s.BusyTime / sim.Time(s.Requests)
}

// MeanBlockTime returns the average busy time charged per block.
func (s Stats) MeanBlockTime() sim.Time {
	if s.Blocks == 0 {
		return 0
	}
	//detlint:allow simunits deliberate ms-per-block ratio: the conversion is the dimensional bridge
	return s.BusyTime / sim.Time(s.Blocks)
}

// MeanSeekDistance returns the average seek distance per request, in
// cylinders.
func (s Stats) MeanSeekDistance() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.SeekDistance) / float64(s.Requests)
}

// Disk is one independently operating drive. It is driven entirely by
// kernel events; Submit may be called from process or event context.
type Disk struct {
	id     int
	k      *sim.Kernel
	params Params
	rot    *rng.Stream

	blocksPerCyl int
	capBlocks    int
	curCylinder  int
	busy         bool
	queue        []*Request
	sweepDir     int // SCAN direction: +1 toward higher cylinders

	// cur is the request in service; its block-delivery events read it
	// through blockFns, a table of pre-built per-block-index thunks that
	// is grown once and reused for every request, so steady-state
	// dispatch schedules no fresh closures. Deliveries are chained — each
	// block's event schedules the next from svcStart/svcBase/svcTpb — so
	// the calendar holds one delivery event per disk instead of one per
	// outstanding block.
	cur      *Request
	blockFns []func()
	svcStart sim.Time // dispatch instant of cur
	svcBase  sim.Time // seek + rotation + retries of cur
	svcTpb   sim.Time // per-block transfer of cur (after slowdown)

	// unparkFn resumes dispatch after an outage window; bound once.
	unparkFn func()

	stats Stats

	// onBusy, if set, observes busy-state transitions; the engine uses
	// it to integrate cross-disk concurrency.
	onBusy func(at sim.Time, busy bool)

	// onRequest, if set, observes every request at dispatch.
	onRequest func(RequestTrace)

	// inj, if set, injects faults at dispatch time; parked records a
	// pending outage wake-up so concurrent submits don't double-book it.
	inj      *faults.DiskInjector
	parked   bool
	faultErr error

	// tr, when non-nil, records this disk's busy-time decomposition on
	// trace track trTrack. A nil recorder costs one nil check per phase.
	tr      *trace.Recorder
	trTrack int
}

// New creates a disk on kernel k. The rotation stream must be dedicated
// to this disk so that draws are reproducible irrespective of the other
// disks' traffic.
func New(k *sim.Kernel, id int, params Params, rot *rng.Stream) (*Disk, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if rot == nil {
		return nil, fmt.Errorf("disk %d: nil rotation stream", id)
	}
	d := &Disk{
		id:           id,
		k:            k,
		params:       params,
		rot:          rot,
		blocksPerCyl: params.BlocksPerCylinder(),
		capBlocks:    params.CapacityBlocks(),
		sweepDir:     1,
	}
	d.unparkFn = d.unpark
	return d, nil
}

// ID returns the disk's identifier.
func (d *Disk) ID() int { return d.id }

// Params returns the disk's configuration.
func (d *Disk) Params() Params { return d.params }

// Stats returns a snapshot of accumulated statistics.
func (d *Disk) Stats() Stats { return d.stats }

// Busy reports whether a request is in service.
func (d *Disk) Busy() bool { return d.busy }

// QueueLen returns the number of requests waiting (excluding in service).
func (d *Disk) QueueLen() int { return len(d.queue) }

// CurrentCylinder returns the head position.
func (d *Disk) CurrentCylinder() int { return d.curCylinder }

// SetBusyObserver installs fn to be called on every busy transition.
func (d *Disk) SetBusyObserver(fn func(at sim.Time, busy bool)) { d.onBusy = fn }

// SetRequestObserver installs fn to be called at every request dispatch
// with its timing decomposition.
func (d *Disk) SetRequestObserver(fn func(RequestTrace)) { d.onRequest = fn }

// SetTrace attaches a trace recorder (nil-safe): every dispatched
// request is decomposed into seek/rotation/retry/transfer phase spans
// on the given track, outage parks become outage spans, and every
// enqueue and dispatch drops a queue-depth sample. The recorder is
// observation-only — attaching one never changes timing.
func (d *Disk) SetTrace(tr *trace.Recorder, track int) {
	d.tr = tr
	d.trTrack = track
}

// SetFaultInjector installs the disk's fault model (nil = healthy). The
// injector is consulted at every dispatch: outage windows park the
// queue until recovery, the fail-slow multiplier inflates service time,
// and transient read errors re-read the request (a fresh rotational
// latency plus the full transfer) up to the injector's retry cap —
// beyond it the disk becomes unreadable, FaultError is set, and the
// simulation stops.
func (d *Disk) SetFaultInjector(inj *faults.DiskInjector) { d.inj = inj }

// FaultError returns the fatal fault that stopped the simulation, or
// nil. Non-nil only after the kernel run returns sim.ErrStopped.
func (d *Disk) FaultError() error { return d.faultErr }

// CylinderOf maps a block address to its cylinder.
func (d *Disk) CylinderOf(block int) int { return block / d.blocksPerCyl }

// Submit enqueues req and starts service if the disk is idle. It
// initializes req.FirstDone and req.Done and returns req for chaining.
func (d *Disk) Submit(req *Request) *Request {
	req.FirstDone = d.k.NewCompletion()
	req.Done = d.k.NewCompletion()
	return d.enqueue(req)
}

// SubmitNoWait enqueues req without allocating completion latches: the
// caller observes progress through OnBlock alone (req.FirstDone and
// req.Done are nil). This is the zero-alloc path the event-mode engine
// submits on; the request struct itself may be pooled and resubmitted
// once its last OnBlock has fired. The hotpath tag roots the hotalloc
// analyzer here — the same property CI's zero-alloc benchmark gate
// measures on BenchmarkDiskRequest.
//
//detlint:hotpath
func (d *Disk) SubmitNoWait(req *Request) *Request {
	req.FirstDone = nil
	req.Done = nil
	return d.enqueue(req)
}

func (d *Disk) enqueue(req *Request) *Request {
	if req.Count <= 0 {
		panic(fmt.Sprintf("disk %d: request with Count=%d", d.id, req.Count))
	}
	last := req.Start + req.Count - 1
	if req.Start < 0 || last >= d.capBlocks {
		panic(fmt.Sprintf("disk %d: request [%d, %d] outside capacity %d blocks",
			d.id, req.Start, last, d.capBlocks))
	}
	req.enqueuedAt = d.k.Now()
	//detlint:allow hotalloc amortized: the queue's backing array reaches steady-state capacity and is reused
	d.queue = append(d.queue, req)
	if len(d.queue) > d.stats.MaxQueueLen {
		d.stats.MaxQueueLen = len(d.queue)
	}
	d.tr.QueueSample(d.trTrack, req.enqueuedAt, len(d.queue))
	if !d.busy {
		d.startNext()
	}
	return req
}

// pickNext removes and returns the next request according to the queue
// discipline. The queue is non-empty.
func (d *Disk) pickNext() *Request {
	idx := 0
	switch d.params.Discipline {
	case FCFS:
		// Arrival order: the head of the queue.
	case SSTF:
		best := math.MaxInt
		for i, r := range d.queue {
			dist := d.CylinderOf(r.Start) - d.curCylinder
			if dist < 0 {
				dist = -dist
			}
			if dist < best {
				best = dist
				idx = i
			}
		}
	case SCAN:
		idx = d.pickSCAN()
	}
	r := d.queue[idx]
	//detlint:allow hotalloc compaction within the existing backing array; removing an element never grows it
	d.queue = append(d.queue[:idx], d.queue[idx+1:]...)
	return r
}

// pickSCAN returns the queue index of the nearest request in the
// current sweep direction, reversing the sweep when nothing lies
// ahead. Ties on distance break by arrival order.
func (d *Disk) pickSCAN() int {
	if idx, ok := d.nearestSCAN(d.sweepDir); ok {
		return idx
	}
	d.sweepDir = -d.sweepDir
	idx, _ := d.nearestSCAN(d.sweepDir)
	return idx
}

// nearestSCAN returns the queued request closest to the head in
// direction dir. A method rather than a closure in pickSCAN: pickSCAN
// runs on every SCAN dispatch, and the closure was an allocation there.
func (d *Disk) nearestSCAN(dir int) (int, bool) {
	bestIdx, bestDist := -1, math.MaxInt
	for i, r := range d.queue {
		delta := (d.CylinderOf(r.Start) - d.curCylinder) * dir
		if delta < 0 {
			continue
		}
		if delta < bestDist {
			bestDist = delta
			bestIdx = i
		}
	}
	return bestIdx, bestIdx >= 0
}

// rotationalLatency draws the latency for a request starting at the
// given block, at the current simulated time.
func (d *Disk) rotationalLatency(startBlock int, at sim.Time) sim.Time {
	R := d.params.AvgRotational
	switch d.params.Rotational {
	case RotConstant:
		return R
	case RotUniform:
		return sim.Time(d.rot.UniformRange(0, 2*float64(R)))
	case RotPositional:
		// One revolution takes 2R. The angular offset of a block within
		// its track is its index within the track over the track size.
		period := 2 * float64(R)
		if period == 0 {
			return 0
		}
		blocksPerTrack := d.params.Geometry.SectorsPerTrack * d.params.Geometry.SectorBytes / d.params.BlockBytes
		if blocksPerTrack == 0 {
			blocksPerTrack = 1
		}
		target := float64(startBlock%blocksPerTrack) / float64(blocksPerTrack) * period
		now := math.Mod(float64(at), period)
		lat := target - now
		if lat < 0 {
			lat += period
		}
		return sim.Time(lat)
	default:
		panic("disk: unknown rotational model")
	}
}

// startNext dispatches the head-of-queue request. Called only when idle
// and the queue is non-empty.
func (d *Disk) startNext() {
	if d.parked {
		return // an outage wake-up is already scheduled
	}
	now := d.k.Now()
	if d.inj != nil {
		if wait := d.inj.OutageWait(now); wait > 0 {
			// The disk is down: nothing dispatches until the window ends.
			// Requests submitted meanwhile just queue behind the park.
			d.parked = true
			d.stats.OutageTime += wait
			d.tr.DiskPhase(d.trTrack, trace.PhaseOutage, now, now+wait)
			d.k.After(wait, d.unparkFn)
			return
		}
	}
	req := d.pickNext()
	d.tr.QueueSample(d.trTrack, now, len(d.queue))
	d.setBusy(true)
	d.stats.Requests++
	d.stats.Blocks += int64(req.Count)
	d.stats.QueueWait += now - req.enqueuedAt

	targetCyl := d.CylinderOf(req.Start)
	distance := targetCyl - d.curCylinder
	if distance < 0 {
		distance = -distance
	}
	seek := d.params.SeekTime(distance)
	rot := d.rotationalLatency(req.Start, now+seek)
	//detlint:allow simunits blocks times ms-per-block yields ms: the conversion is the dimensional bridge
	transfer := sim.Time(req.Count) * d.params.TransferPerBlock
	tpb := d.params.TransferPerBlock

	// Fault injection: fail-slow inflation first, then transient read
	// errors, each re-read paying a fresh rotational latency plus the
	// full (inflated) transfer before any block is delivered.
	var retryTime sim.Time
	if d.inj != nil {
		if f := d.inj.Slowdown(now); f > 1 {
			d.stats.SlowdownTime += (seek + rot + transfer) * sim.Time(f-1)
			seek *= sim.Time(f)
			rot *= sim.Time(f)
			transfer *= sim.Time(f)
			tpb *= sim.Time(f)
		}
		for retries := 0; d.inj.DrawError(); retries++ {
			if retries == d.inj.MaxRetries() {
				//detlint:allow hotalloc terminal fault path: allocates once as the simulation stops
				d.faultErr = &faults.UnreadableError{Disk: d.id, Start: req.Start, Attempts: retries + 1}
				d.k.Stop()
				return
			}
			d.stats.Retries++
			retryTime += d.rotationalLatency(req.Start, now+seek+rot+retryTime) + transfer
		}
		d.stats.RetryTime += retryTime
	}

	d.stats.SeekDistance += int64(distance)
	d.stats.SeekTime += seek
	d.stats.RotTime += rot
	d.stats.TransferTime += transfer
	d.stats.BusyTime += seek + rot + retryTime + transfer

	// The head finishes over the last block transferred.
	d.curCylinder = d.CylinderOf(req.Start + req.Count - 1)

	if d.tr != nil {
		// One span per phase, in service order; retries (re-read latency
		// plus transfer) sit between rotation and the delivered transfer.
		d.tr.DiskPhase(d.trTrack, trace.PhaseSeek, now, now+seek)
		d.tr.DiskPhase(d.trTrack, trace.PhaseRotation, now+seek, now+seek+rot)
		d.tr.DiskPhase(d.trTrack, trace.PhaseRetry, now+seek+rot, now+seek+rot+retryTime)
		d.tr.DiskPhase(d.trTrack, trace.PhaseTransfer, now+seek+rot+retryTime, now+seek+rot+retryTime+transfer)
	}

	if d.onRequest != nil {
		d.onRequest(RequestTrace{
			Disk:     d.id,
			Start:    req.Start,
			Count:    req.Count,
			Tag:      req.Tag,
			Enqueued: req.enqueuedAt,
			Started:  now,
			Seek:     seek,
			Rotation: rot + retryTime,
			Transfer: transfer,
		})
	}

	// Deliveries are chained: only block 0's event is scheduled here and
	// each delivery schedules its successor, keeping the calendar at one
	// pending delivery per disk. Every instant is computed as
	// now + (base + (i+1)*tpb) — the exact expression an up-front loop
	// would use — so timestamps are bit-identical to scheduling all
	// blocks at dispatch. Chaining preserves same-instant cross-disk
	// ordering too: tied deliveries fire in seq order, and each fires
	// before scheduling its successor, so successors inherit the same
	// relative order at the next instant. The thunks read d.cur at fire
	// time; only one request is ever in service, and d.cur is not
	// cleared until its last block has been delivered.
	//
	// Degenerate zero-cost transfers (tpb <= 0) collapse all deliveries
	// onto one instant, where chained events would interleave with
	// unrelated same-instant work that an up-front schedule precedes;
	// keep the up-front loop for that case so ordering is unchanged.
	d.cur = req
	d.growBlockFns(req.Count)
	if tpb > 0 {
		d.svcStart, d.svcBase, d.svcTpb = now, seek+rot+retryTime, tpb
		d.k.At(now+(seek+rot+retryTime+sim.Time(1)*tpb), d.blockFns[0])
		return
	}
	d.svcTpb = 0 // deliver must not chain for an up-front-scheduled request
	for i := 0; i < req.Count; i++ {
		d.k.After(seek+rot+retryTime+sim.Time(i+1)*tpb, d.blockFns[i])
	}
}

// growBlockFns extends the delivery-thunk table to cover n blocks.
func (d *Disk) growBlockFns(n int) {
	for i := len(d.blockFns); i < n; i++ {
		i := i
		//detlint:allow hotalloc the thunk table is grown once to the deepest request and reused for every later dispatch
		d.blockFns = append(d.blockFns, func() { d.deliver(i) })
	}
}

// deliver completes block i of the in-service request: per-block
// callback, completion latches, and — after the last block — the next
// dispatch.
func (d *Disk) deliver(i int) {
	req := d.cur
	if i+1 < req.Count && d.svcTpb > 0 {
		d.k.At(d.svcStart+(d.svcBase+sim.Time(i+2)*d.svcTpb), d.blockFns[i+1])
	}
	if req.OnBlock != nil {
		req.OnBlock(i, d.k.Now())
	}
	if i == 0 && req.FirstDone != nil {
		req.FirstDone.Complete()
	}
	if i == req.Count-1 {
		if req.Done != nil {
			req.Done.Complete()
		}
		d.cur = nil
		d.setBusy(false)
		if len(d.queue) > 0 {
			d.startNext()
		}
	}
}

// unpark resumes dispatch when an outage window ends.
func (d *Disk) unpark() {
	d.parked = false
	if !d.busy && len(d.queue) > 0 {
		d.startNext()
	}
}

func (d *Disk) setBusy(b bool) {
	if d.busy == b {
		return
	}
	d.busy = b
	if d.onBusy != nil {
		d.onBusy(d.k.Now(), b)
	}
}
