// Package disk models the magnetic disks of the paper's I/O subsystem:
// a linear seek (S per cylinder), rotational latency with mean R (half a
// revolution), and a fixed per-block transfer time T. Requests for N
// contiguous blocks pay one seek and one rotational latency and then
// stream blocks at T apiece — the amortization that intra-run prefetching
// exploits.
//
// Each Disk serves one request at a time from a queue (FCFS in the
// paper; SSTF is provided for the scheduling ablation) and reports each
// block of a multi-block request as it lands, which is what lets the
// unsynchronized strategies resume the CPU after the demand block while
// the tail of the fetch is still streaming.
package disk

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Geometry describes the mechanical layout used to map block addresses
// to cylinders. Only BlocksPerCylinder derives from it; the simulator
// does not model head switches within a cylinder.
type Geometry struct {
	Cylinders       int // seek range; must cover the resident data
	Heads           int // surfaces per cylinder
	SectorsPerTrack int
	SectorBytes     int
}

// Bytes returns the total capacity in bytes.
func (g Geometry) Bytes() int64 {
	return int64(g.Cylinders) * int64(g.Heads) * int64(g.SectorsPerTrack) * int64(g.SectorBytes)
}

// CylinderBytes returns the capacity of one cylinder in bytes.
func (g Geometry) CylinderBytes() int {
	return g.Heads * g.SectorsPerTrack * g.SectorBytes
}

// RotationalModel selects how rotational latency is drawn per request.
type RotationalModel int

const (
	// RotUniform draws latency uniformly from [0, 2R): the paper's model,
	// whose mean is the quoted average latency R.
	RotUniform RotationalModel = iota
	// RotConstant charges exactly R on every request. Useful for
	// validating simulation against the closed-form expressions without
	// sampling noise.
	RotConstant
	// RotPositional tracks platter angle through simulated time and
	// charges the true rotation needed to bring the target block under
	// the head (an ablation beyond the paper's model).
	RotPositional
)

// String implements fmt.Stringer.
func (m RotationalModel) String() string {
	switch m {
	case RotUniform:
		return "uniform"
	case RotConstant:
		return "constant"
	case RotPositional:
		return "positional"
	default:
		return fmt.Sprintf("RotationalModel(%d)", int(m))
	}
}

// Discipline selects the queueing policy of a disk.
type Discipline int

const (
	// FCFS serves requests in arrival order (the paper's model).
	FCFS Discipline = iota
	// SSTF serves the queued request with the shortest seek from the
	// current head position (scheduling ablation).
	SSTF
	// SCAN serves requests in elevator order: the head sweeps in its
	// current direction, serving the nearest request ahead of it, and
	// reverses when none remain (scheduling ablation).
	SCAN
)

// String implements fmt.Stringer.
func (d Discipline) String() string {
	switch d {
	case FCFS:
		return "fcfs"
	case SSTF:
		return "sstf"
	case SCAN:
		return "scan"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// SeekModel selects the seek-time curve.
type SeekModel int

const (
	// SeekLinear charges distance × SeekPerCylinder — the paper's
	// model, which it notes "overestimates the seek penalty" but keeps
	// for simplicity.
	SeekLinear SeekModel = iota
	// SeekAffineSqrt charges SeekSettle + SeekSqrtCoeff·√distance for
	// any non-zero move: the square-root acceleration-limited curve of
	// real drives (seek-model ablation).
	SeekAffineSqrt
)

// String implements fmt.Stringer.
func (m SeekModel) String() string {
	switch m {
	case SeekLinear:
		return "linear"
	case SeekAffineSqrt:
		return "affine-sqrt"
	default:
		return fmt.Sprintf("SeekModel(%d)", int(m))
	}
}

// Params fully specifies a disk's timing and layout model.
type Params struct {
	Geometry Geometry

	// BlockBytes is the unit of transfer.
	//detlint:unit bytes
	BlockBytes int

	SeekPerCylinder  sim.Time // S
	AvgRotational    sim.Time // R: half of one revolution
	TransferPerBlock sim.Time // T

	// Seek selects the seek curve; SeekSettle and SeekSqrtCoeff apply
	// only to SeekAffineSqrt.
	Seek          SeekModel
	SeekSettle    sim.Time // fixed head-settle component
	SeekSqrtCoeff sim.Time // per-√cylinder component

	Rotational RotationalModel
	Discipline Discipline
}

// SeekTime returns the time to move the head dist cylinders (dist >= 0).
func (p Params) SeekTime(dist int) sim.Time {
	if dist <= 0 {
		return 0
	}
	switch p.Seek {
	case SeekLinear:
		return sim.Time(dist) * p.SeekPerCylinder
	case SeekAffineSqrt:
		return p.SeekSettle + sim.Time(math.Sqrt(float64(dist)))*p.SeekSqrtCoeff
	default:
		panic("disk: unknown seek model")
	}
}

// BlocksPerCylinder returns how many transfer blocks fit in a cylinder.
func (p Params) BlocksPerCylinder() int {
	return p.Geometry.CylinderBytes() / p.BlockBytes
}

// CapacityBlocks returns the disk capacity in transfer blocks.
func (p Params) CapacityBlocks() int {
	return p.Geometry.Cylinders * p.BlocksPerCylinder()
}

// Validate reports the first configuration error, or nil.
func (p Params) Validate() error {
	switch {
	case p.Geometry.Cylinders <= 0 || p.Geometry.Heads <= 0 ||
		p.Geometry.SectorsPerTrack <= 0 || p.Geometry.SectorBytes <= 0:
		return fmt.Errorf("disk: invalid geometry %+v", p.Geometry)
	case p.BlockBytes <= 0:
		return fmt.Errorf("disk: BlockBytes = %d", p.BlockBytes)
	case p.Geometry.CylinderBytes()%p.BlockBytes != 0:
		return fmt.Errorf("disk: cylinder size %d not a multiple of block size %d",
			p.Geometry.CylinderBytes(), p.BlockBytes)
	case p.SeekPerCylinder < 0 || p.AvgRotational < 0 || p.TransferPerBlock <= 0:
		return fmt.Errorf("disk: non-positive timing parameters S=%v R=%v T=%v",
			p.SeekPerCylinder, p.AvgRotational, p.TransferPerBlock)
	}
	return nil
}

// ModernParams returns a late-2000s 7200 RPM SATA drive for the
// "does this still matter" extension experiment: ~100 MB/s streaming
// (0.04 ms per 4 KB block), 4.17 ms average rotational latency, and a
// much flatter seek profile. Mechanical latency dwarfs transfer even
// more than in 1992, so prefetching matters more, not less.
func ModernParams() Params {
	return Params{
		Geometry: Geometry{
			Cylinders:       20000,
			Heads:           4,
			SectorsPerTrack: 512,
			SectorBytes:     4096,
		},
		BlockBytes:       4096,
		SeekPerCylinder:  sim.Ms(0.0005),
		AvgRotational:    sim.Ms(4.17),
		TransferPerBlock: sim.Ms(0.04),
		Rotational:       RotUniform,
		Discipline:       FCFS,
	}
}

// PaperParams returns the calibrated reconstruction of the paper's
// RA-series disk model (see DESIGN.md §1): a 4096-byte block, 64 blocks
// per cylinder, S = 0.02 ms/cylinder, R = 8.33 ms (3600 RPM) and
// T = 2.66 ms/block, FCFS queueing and uniform rotational latency.
func PaperParams() Params {
	return Params{
		Geometry: Geometry{
			Cylinders:       1600,
			Heads:           4,
			SectorsPerTrack: 16,
			SectorBytes:     4096,
		},
		BlockBytes:       4096,
		SeekPerCylinder:  sim.Ms(0.02),
		AvgRotational:    sim.Ms(8.33),
		TransferPerBlock: sim.Ms(2.66),
		Rotational:       RotUniform,
		Discipline:       FCFS,
	}
}
